file(REMOVE_RECURSE
  "CMakeFiles/topology.dir/topology.cpp.o"
  "CMakeFiles/topology.dir/topology.cpp.o.d"
  "topology"
  "topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
