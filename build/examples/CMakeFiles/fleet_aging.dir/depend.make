# Empty dependencies file for fleet_aging.
# This may be replaced when dependencies are built.
