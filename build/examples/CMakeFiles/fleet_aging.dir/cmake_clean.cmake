file(REMOVE_RECURSE
  "CMakeFiles/fleet_aging.dir/fleet_aging.cpp.o"
  "CMakeFiles/fleet_aging.dir/fleet_aging.cpp.o.d"
  "fleet_aging"
  "fleet_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
