file(REMOVE_RECURSE
  "CMakeFiles/planned_aging.dir/planned_aging.cpp.o"
  "CMakeFiles/planned_aging.dir/planned_aging.cpp.o.d"
  "planned_aging"
  "planned_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planned_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
