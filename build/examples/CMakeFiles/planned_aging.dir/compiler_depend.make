# Empty compiler generated dependencies file for planned_aging.
# This may be replaced when dependencies are built.
