# Empty compiler generated dependencies file for solar_day.
# This may be replaced when dependencies are built.
