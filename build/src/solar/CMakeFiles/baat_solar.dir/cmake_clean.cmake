file(REMOVE_RECURSE
  "CMakeFiles/baat_solar.dir/irradiance.cpp.o"
  "CMakeFiles/baat_solar.dir/irradiance.cpp.o.d"
  "CMakeFiles/baat_solar.dir/location.cpp.o"
  "CMakeFiles/baat_solar.dir/location.cpp.o.d"
  "CMakeFiles/baat_solar.dir/solar_day.cpp.o"
  "CMakeFiles/baat_solar.dir/solar_day.cpp.o.d"
  "CMakeFiles/baat_solar.dir/trace_io.cpp.o"
  "CMakeFiles/baat_solar.dir/trace_io.cpp.o.d"
  "CMakeFiles/baat_solar.dir/weather.cpp.o"
  "CMakeFiles/baat_solar.dir/weather.cpp.o.d"
  "libbaat_solar.a"
  "libbaat_solar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
