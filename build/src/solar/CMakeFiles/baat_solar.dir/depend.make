# Empty dependencies file for baat_solar.
# This may be replaced when dependencies are built.
