
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solar/irradiance.cpp" "src/solar/CMakeFiles/baat_solar.dir/irradiance.cpp.o" "gcc" "src/solar/CMakeFiles/baat_solar.dir/irradiance.cpp.o.d"
  "/root/repo/src/solar/location.cpp" "src/solar/CMakeFiles/baat_solar.dir/location.cpp.o" "gcc" "src/solar/CMakeFiles/baat_solar.dir/location.cpp.o.d"
  "/root/repo/src/solar/solar_day.cpp" "src/solar/CMakeFiles/baat_solar.dir/solar_day.cpp.o" "gcc" "src/solar/CMakeFiles/baat_solar.dir/solar_day.cpp.o.d"
  "/root/repo/src/solar/trace_io.cpp" "src/solar/CMakeFiles/baat_solar.dir/trace_io.cpp.o" "gcc" "src/solar/CMakeFiles/baat_solar.dir/trace_io.cpp.o.d"
  "/root/repo/src/solar/weather.cpp" "src/solar/CMakeFiles/baat_solar.dir/weather.cpp.o" "gcc" "src/solar/CMakeFiles/baat_solar.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
