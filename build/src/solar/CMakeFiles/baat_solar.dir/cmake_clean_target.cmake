file(REMOVE_RECURSE
  "libbaat_solar.a"
)
