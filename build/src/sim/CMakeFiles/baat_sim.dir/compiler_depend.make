# Empty compiler generated dependencies file for baat_sim.
# This may be replaced when dependencies are built.
