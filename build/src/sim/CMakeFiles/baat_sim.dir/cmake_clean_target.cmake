file(REMOVE_RECURSE
  "libbaat_sim.a"
)
