
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cli.cpp" "src/sim/CMakeFiles/baat_sim.dir/cli.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/cli.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/baat_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/baat_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/multiday.cpp" "src/sim/CMakeFiles/baat_sim.dir/multiday.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/multiday.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/baat_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/results.cpp" "src/sim/CMakeFiles/baat_sim.dir/results.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/results.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/baat_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/baat_sim.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/baat_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/baat_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/baat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/baat_server.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/baat_power.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/baat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/baat_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
