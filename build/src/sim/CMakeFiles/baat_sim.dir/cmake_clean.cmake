file(REMOVE_RECURSE
  "CMakeFiles/baat_sim.dir/cli.cpp.o"
  "CMakeFiles/baat_sim.dir/cli.cpp.o.d"
  "CMakeFiles/baat_sim.dir/cluster.cpp.o"
  "CMakeFiles/baat_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/baat_sim.dir/experiment.cpp.o"
  "CMakeFiles/baat_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/baat_sim.dir/multiday.cpp.o"
  "CMakeFiles/baat_sim.dir/multiday.cpp.o.d"
  "CMakeFiles/baat_sim.dir/report.cpp.o"
  "CMakeFiles/baat_sim.dir/report.cpp.o.d"
  "CMakeFiles/baat_sim.dir/results.cpp.o"
  "CMakeFiles/baat_sim.dir/results.cpp.o.d"
  "CMakeFiles/baat_sim.dir/scenario.cpp.o"
  "CMakeFiles/baat_sim.dir/scenario.cpp.o.d"
  "libbaat_sim.a"
  "libbaat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
