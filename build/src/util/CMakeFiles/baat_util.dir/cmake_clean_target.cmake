file(REMOVE_RECURSE
  "libbaat_util.a"
)
