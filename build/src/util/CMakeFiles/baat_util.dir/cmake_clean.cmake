file(REMOVE_RECURSE
  "CMakeFiles/baat_util.dir/csv.cpp.o"
  "CMakeFiles/baat_util.dir/csv.cpp.o.d"
  "CMakeFiles/baat_util.dir/logging.cpp.o"
  "CMakeFiles/baat_util.dir/logging.cpp.o.d"
  "CMakeFiles/baat_util.dir/rng.cpp.o"
  "CMakeFiles/baat_util.dir/rng.cpp.o.d"
  "CMakeFiles/baat_util.dir/stats.cpp.o"
  "CMakeFiles/baat_util.dir/stats.cpp.o.d"
  "libbaat_util.a"
  "libbaat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
