# Empty compiler generated dependencies file for baat_util.
# This may be replaced when dependencies are built.
