
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/baat_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/baat_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/trace_replay.cpp" "src/workload/CMakeFiles/baat_workload.dir/trace_replay.cpp.o" "gcc" "src/workload/CMakeFiles/baat_workload.dir/trace_replay.cpp.o.d"
  "/root/repo/src/workload/vm.cpp" "src/workload/CMakeFiles/baat_workload.dir/vm.cpp.o" "gcc" "src/workload/CMakeFiles/baat_workload.dir/vm.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/baat_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/baat_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
