file(REMOVE_RECURSE
  "libbaat_workload.a"
)
