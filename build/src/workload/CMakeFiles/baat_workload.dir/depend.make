# Empty dependencies file for baat_workload.
# This may be replaced when dependencies are built.
