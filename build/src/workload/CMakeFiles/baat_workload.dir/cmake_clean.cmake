file(REMOVE_RECURSE
  "CMakeFiles/baat_workload.dir/arrivals.cpp.o"
  "CMakeFiles/baat_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/baat_workload.dir/trace_replay.cpp.o"
  "CMakeFiles/baat_workload.dir/trace_replay.cpp.o.d"
  "CMakeFiles/baat_workload.dir/vm.cpp.o"
  "CMakeFiles/baat_workload.dir/vm.cpp.o.d"
  "CMakeFiles/baat_workload.dir/workload.cpp.o"
  "CMakeFiles/baat_workload.dir/workload.cpp.o.d"
  "libbaat_workload.a"
  "libbaat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
