# Empty compiler generated dependencies file for baat_battery.
# This may be replaced when dependencies are built.
