file(REMOVE_RECURSE
  "CMakeFiles/baat_battery.dir/aging.cpp.o"
  "CMakeFiles/baat_battery.dir/aging.cpp.o.d"
  "CMakeFiles/baat_battery.dir/bank.cpp.o"
  "CMakeFiles/baat_battery.dir/bank.cpp.o.d"
  "CMakeFiles/baat_battery.dir/battery.cpp.o"
  "CMakeFiles/baat_battery.dir/battery.cpp.o.d"
  "CMakeFiles/baat_battery.dir/chemistry.cpp.o"
  "CMakeFiles/baat_battery.dir/chemistry.cpp.o.d"
  "CMakeFiles/baat_battery.dir/cycle_life.cpp.o"
  "CMakeFiles/baat_battery.dir/cycle_life.cpp.o.d"
  "CMakeFiles/baat_battery.dir/kibam.cpp.o"
  "CMakeFiles/baat_battery.dir/kibam.cpp.o.d"
  "CMakeFiles/baat_battery.dir/probe.cpp.o"
  "CMakeFiles/baat_battery.dir/probe.cpp.o.d"
  "CMakeFiles/baat_battery.dir/rainflow.cpp.o"
  "CMakeFiles/baat_battery.dir/rainflow.cpp.o.d"
  "CMakeFiles/baat_battery.dir/service.cpp.o"
  "CMakeFiles/baat_battery.dir/service.cpp.o.d"
  "CMakeFiles/baat_battery.dir/thermal.cpp.o"
  "CMakeFiles/baat_battery.dir/thermal.cpp.o.d"
  "libbaat_battery.a"
  "libbaat_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
