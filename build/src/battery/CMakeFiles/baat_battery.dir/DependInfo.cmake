
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/aging.cpp" "src/battery/CMakeFiles/baat_battery.dir/aging.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/aging.cpp.o.d"
  "/root/repo/src/battery/bank.cpp" "src/battery/CMakeFiles/baat_battery.dir/bank.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/bank.cpp.o.d"
  "/root/repo/src/battery/battery.cpp" "src/battery/CMakeFiles/baat_battery.dir/battery.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/battery.cpp.o.d"
  "/root/repo/src/battery/chemistry.cpp" "src/battery/CMakeFiles/baat_battery.dir/chemistry.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/chemistry.cpp.o.d"
  "/root/repo/src/battery/cycle_life.cpp" "src/battery/CMakeFiles/baat_battery.dir/cycle_life.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/cycle_life.cpp.o.d"
  "/root/repo/src/battery/kibam.cpp" "src/battery/CMakeFiles/baat_battery.dir/kibam.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/kibam.cpp.o.d"
  "/root/repo/src/battery/probe.cpp" "src/battery/CMakeFiles/baat_battery.dir/probe.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/probe.cpp.o.d"
  "/root/repo/src/battery/rainflow.cpp" "src/battery/CMakeFiles/baat_battery.dir/rainflow.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/rainflow.cpp.o.d"
  "/root/repo/src/battery/service.cpp" "src/battery/CMakeFiles/baat_battery.dir/service.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/service.cpp.o.d"
  "/root/repo/src/battery/thermal.cpp" "src/battery/CMakeFiles/baat_battery.dir/thermal.cpp.o" "gcc" "src/battery/CMakeFiles/baat_battery.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
