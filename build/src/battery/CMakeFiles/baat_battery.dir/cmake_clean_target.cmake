file(REMOVE_RECURSE
  "libbaat_battery.a"
)
