file(REMOVE_RECURSE
  "libbaat_telemetry.a"
)
