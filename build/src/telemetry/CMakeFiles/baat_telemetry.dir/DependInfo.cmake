
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/metrics.cpp" "src/telemetry/CMakeFiles/baat_telemetry.dir/metrics.cpp.o" "gcc" "src/telemetry/CMakeFiles/baat_telemetry.dir/metrics.cpp.o.d"
  "/root/repo/src/telemetry/power_table.cpp" "src/telemetry/CMakeFiles/baat_telemetry.dir/power_table.cpp.o" "gcc" "src/telemetry/CMakeFiles/baat_telemetry.dir/power_table.cpp.o.d"
  "/root/repo/src/telemetry/sensor.cpp" "src/telemetry/CMakeFiles/baat_telemetry.dir/sensor.cpp.o" "gcc" "src/telemetry/CMakeFiles/baat_telemetry.dir/sensor.cpp.o.d"
  "/root/repo/src/telemetry/soh.cpp" "src/telemetry/CMakeFiles/baat_telemetry.dir/soh.cpp.o" "gcc" "src/telemetry/CMakeFiles/baat_telemetry.dir/soh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/baat_battery.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
