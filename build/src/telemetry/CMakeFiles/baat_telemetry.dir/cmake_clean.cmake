file(REMOVE_RECURSE
  "CMakeFiles/baat_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/baat_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/baat_telemetry.dir/power_table.cpp.o"
  "CMakeFiles/baat_telemetry.dir/power_table.cpp.o.d"
  "CMakeFiles/baat_telemetry.dir/sensor.cpp.o"
  "CMakeFiles/baat_telemetry.dir/sensor.cpp.o.d"
  "CMakeFiles/baat_telemetry.dir/soh.cpp.o"
  "CMakeFiles/baat_telemetry.dir/soh.cpp.o.d"
  "libbaat_telemetry.a"
  "libbaat_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
