# Empty dependencies file for baat_telemetry.
# This may be replaced when dependencies are built.
