# Empty compiler generated dependencies file for baat_server.
# This may be replaced when dependencies are built.
