file(REMOVE_RECURSE
  "CMakeFiles/baat_server.dir/server.cpp.o"
  "CMakeFiles/baat_server.dir/server.cpp.o.d"
  "libbaat_server.a"
  "libbaat_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
