file(REMOVE_RECURSE
  "libbaat_server.a"
)
