file(REMOVE_RECURSE
  "CMakeFiles/baat_core.dir/baat_h_policy.cpp.o"
  "CMakeFiles/baat_core.dir/baat_h_policy.cpp.o.d"
  "CMakeFiles/baat_core.dir/baat_p_policy.cpp.o"
  "CMakeFiles/baat_core.dir/baat_p_policy.cpp.o.d"
  "CMakeFiles/baat_core.dir/baat_policy.cpp.o"
  "CMakeFiles/baat_core.dir/baat_policy.cpp.o.d"
  "CMakeFiles/baat_core.dir/baat_s_policy.cpp.o"
  "CMakeFiles/baat_core.dir/baat_s_policy.cpp.o.d"
  "CMakeFiles/baat_core.dir/cost.cpp.o"
  "CMakeFiles/baat_core.dir/cost.cpp.o.d"
  "CMakeFiles/baat_core.dir/demand.cpp.o"
  "CMakeFiles/baat_core.dir/demand.cpp.o.d"
  "CMakeFiles/baat_core.dir/ebuff_policy.cpp.o"
  "CMakeFiles/baat_core.dir/ebuff_policy.cpp.o.d"
  "CMakeFiles/baat_core.dir/forecast.cpp.o"
  "CMakeFiles/baat_core.dir/forecast.cpp.o.d"
  "CMakeFiles/baat_core.dir/hiding.cpp.o"
  "CMakeFiles/baat_core.dir/hiding.cpp.o.d"
  "CMakeFiles/baat_core.dir/lifetime.cpp.o"
  "CMakeFiles/baat_core.dir/lifetime.cpp.o.d"
  "CMakeFiles/baat_core.dir/maintenance.cpp.o"
  "CMakeFiles/baat_core.dir/maintenance.cpp.o.d"
  "CMakeFiles/baat_core.dir/planned.cpp.o"
  "CMakeFiles/baat_core.dir/planned.cpp.o.d"
  "CMakeFiles/baat_core.dir/policy.cpp.o"
  "CMakeFiles/baat_core.dir/policy.cpp.o.d"
  "CMakeFiles/baat_core.dir/slowdown.cpp.o"
  "CMakeFiles/baat_core.dir/slowdown.cpp.o.d"
  "CMakeFiles/baat_core.dir/weighted_aging.cpp.o"
  "CMakeFiles/baat_core.dir/weighted_aging.cpp.o.d"
  "libbaat_core.a"
  "libbaat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
