file(REMOVE_RECURSE
  "libbaat_core.a"
)
