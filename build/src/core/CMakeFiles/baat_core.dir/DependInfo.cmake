
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baat_h_policy.cpp" "src/core/CMakeFiles/baat_core.dir/baat_h_policy.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/baat_h_policy.cpp.o.d"
  "/root/repo/src/core/baat_p_policy.cpp" "src/core/CMakeFiles/baat_core.dir/baat_p_policy.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/baat_p_policy.cpp.o.d"
  "/root/repo/src/core/baat_policy.cpp" "src/core/CMakeFiles/baat_core.dir/baat_policy.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/baat_policy.cpp.o.d"
  "/root/repo/src/core/baat_s_policy.cpp" "src/core/CMakeFiles/baat_core.dir/baat_s_policy.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/baat_s_policy.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/baat_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/demand.cpp" "src/core/CMakeFiles/baat_core.dir/demand.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/demand.cpp.o.d"
  "/root/repo/src/core/ebuff_policy.cpp" "src/core/CMakeFiles/baat_core.dir/ebuff_policy.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/ebuff_policy.cpp.o.d"
  "/root/repo/src/core/forecast.cpp" "src/core/CMakeFiles/baat_core.dir/forecast.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/forecast.cpp.o.d"
  "/root/repo/src/core/hiding.cpp" "src/core/CMakeFiles/baat_core.dir/hiding.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/hiding.cpp.o.d"
  "/root/repo/src/core/lifetime.cpp" "src/core/CMakeFiles/baat_core.dir/lifetime.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/lifetime.cpp.o.d"
  "/root/repo/src/core/maintenance.cpp" "src/core/CMakeFiles/baat_core.dir/maintenance.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/maintenance.cpp.o.d"
  "/root/repo/src/core/planned.cpp" "src/core/CMakeFiles/baat_core.dir/planned.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/planned.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/baat_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/slowdown.cpp" "src/core/CMakeFiles/baat_core.dir/slowdown.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/slowdown.cpp.o.d"
  "/root/repo/src/core/weighted_aging.cpp" "src/core/CMakeFiles/baat_core.dir/weighted_aging.cpp.o" "gcc" "src/core/CMakeFiles/baat_core.dir/weighted_aging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/baat_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/baat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/baat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/baat_server.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/baat_solar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
