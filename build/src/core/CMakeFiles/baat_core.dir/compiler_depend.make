# Empty compiler generated dependencies file for baat_core.
# This may be replaced when dependencies are built.
