
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/centralized.cpp" "src/power/CMakeFiles/baat_power.dir/centralized.cpp.o" "gcc" "src/power/CMakeFiles/baat_power.dir/centralized.cpp.o.d"
  "/root/repo/src/power/meter.cpp" "src/power/CMakeFiles/baat_power.dir/meter.cpp.o" "gcc" "src/power/CMakeFiles/baat_power.dir/meter.cpp.o.d"
  "/root/repo/src/power/rack_pool.cpp" "src/power/CMakeFiles/baat_power.dir/rack_pool.cpp.o" "gcc" "src/power/CMakeFiles/baat_power.dir/rack_pool.cpp.o.d"
  "/root/repo/src/power/router.cpp" "src/power/CMakeFiles/baat_power.dir/router.cpp.o" "gcc" "src/power/CMakeFiles/baat_power.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/baat_battery.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
