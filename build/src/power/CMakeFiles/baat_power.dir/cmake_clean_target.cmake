file(REMOVE_RECURSE
  "libbaat_power.a"
)
