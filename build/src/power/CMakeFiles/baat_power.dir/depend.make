# Empty dependencies file for baat_power.
# This may be replaced when dependencies are built.
