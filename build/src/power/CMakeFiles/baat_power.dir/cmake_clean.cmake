file(REMOVE_RECURSE
  "CMakeFiles/baat_power.dir/centralized.cpp.o"
  "CMakeFiles/baat_power.dir/centralized.cpp.o.d"
  "CMakeFiles/baat_power.dir/meter.cpp.o"
  "CMakeFiles/baat_power.dir/meter.cpp.o.d"
  "CMakeFiles/baat_power.dir/rack_pool.cpp.o"
  "CMakeFiles/baat_power.dir/rack_pool.cpp.o.d"
  "CMakeFiles/baat_power.dir/router.cpp.o"
  "CMakeFiles/baat_power.dir/router.cpp.o.d"
  "libbaat_power.a"
  "libbaat_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baat_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
