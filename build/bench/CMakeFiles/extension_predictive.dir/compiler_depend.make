# Empty compiler generated dependencies file for extension_predictive.
# This may be replaced when dependencies are built.
