file(REMOVE_RECURSE
  "CMakeFiles/extension_predictive.dir/extension_predictive.cpp.o"
  "CMakeFiles/extension_predictive.dir/extension_predictive.cpp.o.d"
  "extension_predictive"
  "extension_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
