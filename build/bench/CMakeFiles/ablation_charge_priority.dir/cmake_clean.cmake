file(REMOVE_RECURSE
  "CMakeFiles/ablation_charge_priority.dir/ablation_charge_priority.cpp.o"
  "CMakeFiles/ablation_charge_priority.dir/ablation_charge_priority.cpp.o.d"
  "ablation_charge_priority"
  "ablation_charge_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_charge_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
