# Empty compiler generated dependencies file for ablation_charge_priority.
# This may be replaced when dependencies are built.
