# Empty compiler generated dependencies file for fig17_server_expansion.
# This may be replaced when dependencies are built.
