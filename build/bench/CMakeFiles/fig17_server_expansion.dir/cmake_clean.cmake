file(REMOVE_RECURSE
  "CMakeFiles/fig17_server_expansion.dir/fig17_server_expansion.cpp.o"
  "CMakeFiles/fig17_server_expansion.dir/fig17_server_expansion.cpp.o.d"
  "fig17_server_expansion"
  "fig17_server_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_server_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
