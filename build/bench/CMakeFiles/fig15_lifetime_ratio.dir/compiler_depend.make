# Empty compiler generated dependencies file for fig15_lifetime_ratio.
# This may be replaced when dependencies are built.
