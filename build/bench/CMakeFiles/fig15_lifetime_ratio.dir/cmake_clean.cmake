file(REMOVE_RECURSE
  "CMakeFiles/fig15_lifetime_ratio.dir/fig15_lifetime_ratio.cpp.o"
  "CMakeFiles/fig15_lifetime_ratio.dir/fig15_lifetime_ratio.cpp.o.d"
  "fig15_lifetime_ratio"
  "fig15_lifetime_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_lifetime_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
