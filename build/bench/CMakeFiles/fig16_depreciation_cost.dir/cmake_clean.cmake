file(REMOVE_RECURSE
  "CMakeFiles/fig16_depreciation_cost.dir/fig16_depreciation_cost.cpp.o"
  "CMakeFiles/fig16_depreciation_cost.dir/fig16_depreciation_cost.cpp.o.d"
  "fig16_depreciation_cost"
  "fig16_depreciation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_depreciation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
