# Empty dependencies file for fig16_depreciation_cost.
# This may be replaced when dependencies are built.
