# Empty dependencies file for fig03_voltage_aging.
# This may be replaced when dependencies are built.
