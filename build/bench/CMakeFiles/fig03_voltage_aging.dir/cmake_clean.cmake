file(REMOVE_RECURSE
  "CMakeFiles/fig03_voltage_aging.dir/fig03_voltage_aging.cpp.o"
  "CMakeFiles/fig03_voltage_aging.dir/fig03_voltage_aging.cpp.o.d"
  "fig03_voltage_aging"
  "fig03_voltage_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_voltage_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
