# Empty compiler generated dependencies file for fig21_dod_performance.
# This may be replaced when dependencies are built.
