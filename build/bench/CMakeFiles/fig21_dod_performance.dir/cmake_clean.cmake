file(REMOVE_RECURSE
  "CMakeFiles/fig21_dod_performance.dir/fig21_dod_performance.cpp.o"
  "CMakeFiles/fig21_dod_performance.dir/fig21_dod_performance.cpp.o.d"
  "fig21_dod_performance"
  "fig21_dod_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_dod_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
