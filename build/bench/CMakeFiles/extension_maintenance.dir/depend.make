# Empty dependencies file for extension_maintenance.
# This may be replaced when dependencies are built.
