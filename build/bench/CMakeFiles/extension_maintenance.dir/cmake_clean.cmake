file(REMOVE_RECURSE
  "CMakeFiles/extension_maintenance.dir/extension_maintenance.cpp.o"
  "CMakeFiles/extension_maintenance.dir/extension_maintenance.cpp.o.d"
  "extension_maintenance"
  "extension_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
