# Empty compiler generated dependencies file for fig22_planned_aging.
# This may be replaced when dependencies are built.
