file(REMOVE_RECURSE
  "CMakeFiles/fig22_planned_aging.dir/fig22_planned_aging.cpp.o"
  "CMakeFiles/fig22_planned_aging.dir/fig22_planned_aging.cpp.o.d"
  "fig22_planned_aging"
  "fig22_planned_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_planned_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
