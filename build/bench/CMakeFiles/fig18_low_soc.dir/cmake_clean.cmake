file(REMOVE_RECURSE
  "CMakeFiles/fig18_low_soc.dir/fig18_low_soc.cpp.o"
  "CMakeFiles/fig18_low_soc.dir/fig18_low_soc.cpp.o.d"
  "fig18_low_soc"
  "fig18_low_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_low_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
