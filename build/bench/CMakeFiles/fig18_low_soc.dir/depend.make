# Empty dependencies file for fig18_low_soc.
# This may be replaced when dependencies are built.
