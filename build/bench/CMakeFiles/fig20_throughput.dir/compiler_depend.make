# Empty compiler generated dependencies file for fig20_throughput.
# This may be replaced when dependencies are built.
