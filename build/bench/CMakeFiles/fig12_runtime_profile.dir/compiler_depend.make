# Empty compiler generated dependencies file for fig12_runtime_profile.
# This may be replaced when dependencies are built.
