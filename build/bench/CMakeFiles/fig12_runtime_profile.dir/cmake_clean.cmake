file(REMOVE_RECURSE
  "CMakeFiles/fig12_runtime_profile.dir/fig12_runtime_profile.cpp.o"
  "CMakeFiles/fig12_runtime_profile.dir/fig12_runtime_profile.cpp.o.d"
  "fig12_runtime_profile"
  "fig12_runtime_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_runtime_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
