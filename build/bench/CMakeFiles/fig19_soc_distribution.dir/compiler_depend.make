# Empty compiler generated dependencies file for fig19_soc_distribution.
# This may be replaced when dependencies are built.
