file(REMOVE_RECURSE
  "CMakeFiles/fig19_soc_distribution.dir/fig19_soc_distribution.cpp.o"
  "CMakeFiles/fig19_soc_distribution.dir/fig19_soc_distribution.cpp.o.d"
  "fig19_soc_distribution"
  "fig19_soc_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_soc_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
