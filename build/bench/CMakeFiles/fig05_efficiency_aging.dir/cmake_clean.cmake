file(REMOVE_RECURSE
  "CMakeFiles/fig05_efficiency_aging.dir/fig05_efficiency_aging.cpp.o"
  "CMakeFiles/fig05_efficiency_aging.dir/fig05_efficiency_aging.cpp.o.d"
  "fig05_efficiency_aging"
  "fig05_efficiency_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_efficiency_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
