# Empty compiler generated dependencies file for fig05_efficiency_aging.
# This may be replaced when dependencies are built.
