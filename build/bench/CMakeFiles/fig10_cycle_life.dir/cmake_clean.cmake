file(REMOVE_RECURSE
  "CMakeFiles/fig10_cycle_life.dir/fig10_cycle_life.cpp.o"
  "CMakeFiles/fig10_cycle_life.dir/fig10_cycle_life.cpp.o.d"
  "fig10_cycle_life"
  "fig10_cycle_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cycle_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
