# Empty dependencies file for fig10_cycle_life.
# This may be replaced when dependencies are built.
