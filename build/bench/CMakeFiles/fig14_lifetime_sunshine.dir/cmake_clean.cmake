file(REMOVE_RECURSE
  "CMakeFiles/fig14_lifetime_sunshine.dir/fig14_lifetime_sunshine.cpp.o"
  "CMakeFiles/fig14_lifetime_sunshine.dir/fig14_lifetime_sunshine.cpp.o.d"
  "fig14_lifetime_sunshine"
  "fig14_lifetime_sunshine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_lifetime_sunshine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
