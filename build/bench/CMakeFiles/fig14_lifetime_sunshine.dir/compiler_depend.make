# Empty compiler generated dependencies file for fig14_lifetime_sunshine.
# This may be replaced when dependencies are built.
