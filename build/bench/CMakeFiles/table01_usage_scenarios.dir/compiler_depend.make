# Empty compiler generated dependencies file for table01_usage_scenarios.
# This may be replaced when dependencies are built.
