file(REMOVE_RECURSE
  "CMakeFiles/table01_usage_scenarios.dir/table01_usage_scenarios.cpp.o"
  "CMakeFiles/table01_usage_scenarios.dir/table01_usage_scenarios.cpp.o.d"
  "table01_usage_scenarios"
  "table01_usage_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_usage_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
