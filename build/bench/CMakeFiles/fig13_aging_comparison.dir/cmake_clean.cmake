file(REMOVE_RECURSE
  "CMakeFiles/fig13_aging_comparison.dir/fig13_aging_comparison.cpp.o"
  "CMakeFiles/fig13_aging_comparison.dir/fig13_aging_comparison.cpp.o.d"
  "fig13_aging_comparison"
  "fig13_aging_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_aging_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
