# Empty dependencies file for fig13_aging_comparison.
# This may be replaced when dependencies are built.
