# Empty dependencies file for fig04_capacity_aging.
# This may be replaced when dependencies are built.
