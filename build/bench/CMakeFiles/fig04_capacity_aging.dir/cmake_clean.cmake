file(REMOVE_RECURSE
  "CMakeFiles/fig04_capacity_aging.dir/fig04_capacity_aging.cpp.o"
  "CMakeFiles/fig04_capacity_aging.dir/fig04_capacity_aging.cpp.o.d"
  "fig04_capacity_aging"
  "fig04_capacity_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_capacity_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
