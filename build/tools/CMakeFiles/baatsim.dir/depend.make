# Empty dependencies file for baatsim.
# This may be replaced when dependencies are built.
