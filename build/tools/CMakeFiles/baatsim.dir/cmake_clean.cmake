file(REMOVE_RECURSE
  "CMakeFiles/baatsim.dir/baatsim.cpp.o"
  "CMakeFiles/baatsim.dir/baatsim.cpp.o.d"
  "baatsim"
  "baatsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baatsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
