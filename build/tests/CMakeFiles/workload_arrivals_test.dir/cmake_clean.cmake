file(REMOVE_RECURSE
  "CMakeFiles/workload_arrivals_test.dir/workload_arrivals_test.cpp.o"
  "CMakeFiles/workload_arrivals_test.dir/workload_arrivals_test.cpp.o.d"
  "workload_arrivals_test"
  "workload_arrivals_test.pdb"
  "workload_arrivals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_arrivals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
