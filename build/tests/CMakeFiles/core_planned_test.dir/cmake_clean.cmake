file(REMOVE_RECURSE
  "CMakeFiles/core_planned_test.dir/core_planned_test.cpp.o"
  "CMakeFiles/core_planned_test.dir/core_planned_test.cpp.o.d"
  "core_planned_test"
  "core_planned_test.pdb"
  "core_planned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_planned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
