# Empty dependencies file for core_planned_test.
# This may be replaced when dependencies are built.
