file(REMOVE_RECURSE
  "CMakeFiles/battery_thermal_test.dir/battery_thermal_test.cpp.o"
  "CMakeFiles/battery_thermal_test.dir/battery_thermal_test.cpp.o.d"
  "battery_thermal_test"
  "battery_thermal_test.pdb"
  "battery_thermal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_thermal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
