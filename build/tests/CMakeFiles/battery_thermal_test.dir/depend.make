# Empty dependencies file for battery_thermal_test.
# This may be replaced when dependencies are built.
