# Empty dependencies file for core_weighted_aging_test.
# This may be replaced when dependencies are built.
