# Empty dependencies file for battery_bank_test.
# This may be replaced when dependencies are built.
