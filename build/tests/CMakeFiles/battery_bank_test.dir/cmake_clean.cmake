file(REMOVE_RECURSE
  "CMakeFiles/battery_bank_test.dir/battery_bank_test.cpp.o"
  "CMakeFiles/battery_bank_test.dir/battery_bank_test.cpp.o.d"
  "battery_bank_test"
  "battery_bank_test.pdb"
  "battery_bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
