# Empty compiler generated dependencies file for core_hiding_test.
# This may be replaced when dependencies are built.
