file(REMOVE_RECURSE
  "CMakeFiles/core_hiding_test.dir/core_hiding_test.cpp.o"
  "CMakeFiles/core_hiding_test.dir/core_hiding_test.cpp.o.d"
  "core_hiding_test"
  "core_hiding_test.pdb"
  "core_hiding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hiding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
