file(REMOVE_RECURSE
  "CMakeFiles/power_router_test.dir/power_router_test.cpp.o"
  "CMakeFiles/power_router_test.dir/power_router_test.cpp.o.d"
  "power_router_test"
  "power_router_test.pdb"
  "power_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
