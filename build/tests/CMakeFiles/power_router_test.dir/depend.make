# Empty dependencies file for power_router_test.
# This may be replaced when dependencies are built.
