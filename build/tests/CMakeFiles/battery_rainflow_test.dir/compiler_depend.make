# Empty compiler generated dependencies file for battery_rainflow_test.
# This may be replaced when dependencies are built.
