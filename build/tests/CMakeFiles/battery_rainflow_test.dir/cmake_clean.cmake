file(REMOVE_RECURSE
  "CMakeFiles/battery_rainflow_test.dir/battery_rainflow_test.cpp.o"
  "CMakeFiles/battery_rainflow_test.dir/battery_rainflow_test.cpp.o.d"
  "battery_rainflow_test"
  "battery_rainflow_test.pdb"
  "battery_rainflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_rainflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
