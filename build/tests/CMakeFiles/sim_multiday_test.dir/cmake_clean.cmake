file(REMOVE_RECURSE
  "CMakeFiles/sim_multiday_test.dir/sim_multiday_test.cpp.o"
  "CMakeFiles/sim_multiday_test.dir/sim_multiday_test.cpp.o.d"
  "sim_multiday_test"
  "sim_multiday_test.pdb"
  "sim_multiday_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_multiday_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
