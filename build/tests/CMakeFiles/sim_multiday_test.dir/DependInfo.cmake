
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_multiday_test.cpp" "tests/CMakeFiles/sim_multiday_test.dir/sim_multiday_test.cpp.o" "gcc" "tests/CMakeFiles/sim_multiday_test.dir/sim_multiday_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/baat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/baat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/baat_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/baat_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/baat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/baat_power.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/baat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/baat_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/baat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
