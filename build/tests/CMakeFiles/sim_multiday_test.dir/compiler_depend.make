# Empty compiler generated dependencies file for sim_multiday_test.
# This may be replaced when dependencies are built.
