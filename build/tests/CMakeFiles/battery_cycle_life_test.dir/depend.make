# Empty dependencies file for battery_cycle_life_test.
# This may be replaced when dependencies are built.
