file(REMOVE_RECURSE
  "CMakeFiles/battery_cycle_life_test.dir/battery_cycle_life_test.cpp.o"
  "CMakeFiles/battery_cycle_life_test.dir/battery_cycle_life_test.cpp.o.d"
  "battery_cycle_life_test"
  "battery_cycle_life_test.pdb"
  "battery_cycle_life_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_cycle_life_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
