file(REMOVE_RECURSE
  "CMakeFiles/core_forecast_test.dir/core_forecast_test.cpp.o"
  "CMakeFiles/core_forecast_test.dir/core_forecast_test.cpp.o.d"
  "core_forecast_test"
  "core_forecast_test.pdb"
  "core_forecast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_forecast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
