# Empty dependencies file for core_forecast_test.
# This may be replaced when dependencies are built.
