file(REMOVE_RECURSE
  "CMakeFiles/sim_cli_test.dir/sim_cli_test.cpp.o"
  "CMakeFiles/sim_cli_test.dir/sim_cli_test.cpp.o.d"
  "sim_cli_test"
  "sim_cli_test.pdb"
  "sim_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
