file(REMOVE_RECURSE
  "CMakeFiles/battery_aging_test.dir/battery_aging_test.cpp.o"
  "CMakeFiles/battery_aging_test.dir/battery_aging_test.cpp.o.d"
  "battery_aging_test"
  "battery_aging_test.pdb"
  "battery_aging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_aging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
