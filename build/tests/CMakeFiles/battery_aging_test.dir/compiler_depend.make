# Empty compiler generated dependencies file for battery_aging_test.
# This may be replaced when dependencies are built.
