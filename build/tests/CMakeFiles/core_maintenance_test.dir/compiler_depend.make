# Empty compiler generated dependencies file for core_maintenance_test.
# This may be replaced when dependencies are built.
