file(REMOVE_RECURSE
  "CMakeFiles/core_maintenance_test.dir/core_maintenance_test.cpp.o"
  "CMakeFiles/core_maintenance_test.dir/core_maintenance_test.cpp.o.d"
  "core_maintenance_test"
  "core_maintenance_test.pdb"
  "core_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
