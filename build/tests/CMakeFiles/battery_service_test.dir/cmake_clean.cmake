file(REMOVE_RECURSE
  "CMakeFiles/battery_service_test.dir/battery_service_test.cpp.o"
  "CMakeFiles/battery_service_test.dir/battery_service_test.cpp.o.d"
  "battery_service_test"
  "battery_service_test.pdb"
  "battery_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
