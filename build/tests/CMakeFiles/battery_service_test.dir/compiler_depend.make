# Empty compiler generated dependencies file for battery_service_test.
# This may be replaced when dependencies are built.
