# Empty dependencies file for battery_chemistry_test.
# This may be replaced when dependencies are built.
