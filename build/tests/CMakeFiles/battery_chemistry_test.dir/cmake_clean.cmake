file(REMOVE_RECURSE
  "CMakeFiles/battery_chemistry_test.dir/battery_chemistry_test.cpp.o"
  "CMakeFiles/battery_chemistry_test.dir/battery_chemistry_test.cpp.o.d"
  "battery_chemistry_test"
  "battery_chemistry_test.pdb"
  "battery_chemistry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_chemistry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
