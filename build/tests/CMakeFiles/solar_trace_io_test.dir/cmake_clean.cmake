file(REMOVE_RECURSE
  "CMakeFiles/solar_trace_io_test.dir/solar_trace_io_test.cpp.o"
  "CMakeFiles/solar_trace_io_test.dir/solar_trace_io_test.cpp.o.d"
  "solar_trace_io_test"
  "solar_trace_io_test.pdb"
  "solar_trace_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_trace_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
