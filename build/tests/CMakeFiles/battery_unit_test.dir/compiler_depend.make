# Empty compiler generated dependencies file for battery_unit_test.
# This may be replaced when dependencies are built.
