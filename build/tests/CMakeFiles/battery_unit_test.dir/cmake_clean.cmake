file(REMOVE_RECURSE
  "CMakeFiles/battery_unit_test.dir/battery_unit_test.cpp.o"
  "CMakeFiles/battery_unit_test.dir/battery_unit_test.cpp.o.d"
  "battery_unit_test"
  "battery_unit_test.pdb"
  "battery_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
