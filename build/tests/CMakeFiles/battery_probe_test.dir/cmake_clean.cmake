file(REMOVE_RECURSE
  "CMakeFiles/battery_probe_test.dir/battery_probe_test.cpp.o"
  "CMakeFiles/battery_probe_test.dir/battery_probe_test.cpp.o.d"
  "battery_probe_test"
  "battery_probe_test.pdb"
  "battery_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
