# Empty compiler generated dependencies file for battery_probe_test.
# This may be replaced when dependencies are built.
