# Empty dependencies file for telemetry_soh_test.
# This may be replaced when dependencies are built.
