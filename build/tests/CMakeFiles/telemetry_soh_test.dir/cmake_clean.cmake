file(REMOVE_RECURSE
  "CMakeFiles/telemetry_soh_test.dir/telemetry_soh_test.cpp.o"
  "CMakeFiles/telemetry_soh_test.dir/telemetry_soh_test.cpp.o.d"
  "telemetry_soh_test"
  "telemetry_soh_test.pdb"
  "telemetry_soh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_soh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
