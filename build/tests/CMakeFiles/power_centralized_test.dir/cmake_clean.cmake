file(REMOVE_RECURSE
  "CMakeFiles/power_centralized_test.dir/power_centralized_test.cpp.o"
  "CMakeFiles/power_centralized_test.dir/power_centralized_test.cpp.o.d"
  "power_centralized_test"
  "power_centralized_test.pdb"
  "power_centralized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
