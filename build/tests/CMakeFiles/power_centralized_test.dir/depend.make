# Empty dependencies file for power_centralized_test.
# This may be replaced when dependencies are built.
