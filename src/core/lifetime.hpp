#pragma once

// Battery lifetime prediction (§IV-D "proactively predicts battery
// lifetime"; Figs 14/15). Two estimators that the benches cross-check:
//
//  1. health extrapolation — fit the observed capacity-fade rate and project
//     when health crosses the 80% end-of-life line ([30]);
//  2. throughput budgeting — divide the cycle-life curve's lifetime Ah at
//     the observed typical DoD by the observed daily Ah draw.

#include "battery/cycle_life.hpp"
#include "util/units.hpp"

namespace baat::core {

using util::AmpereHours;

struct LifetimeEstimate {
  double days = 0.0;          ///< expected total service life, days
  /// The estimate hit its `max_days` clamp: no fade was observed, or the
  /// projection lands past the horizon. `days` then holds the horizon
  /// itself — a bound, not a prediction — and reports must say "beyond
  /// horizon" instead of presenting it as a day number.
  bool beyond_horizon = false;
  double years() const { return days / 365.0; }
};

/// Estimator 1: health moved from `health_start` to `health_now` over
/// `elapsed_days`; linear projection to `eol_health`. If no fade was
/// observed, returns `max_days` (the battery outlives the horizon).
LifetimeEstimate extrapolate_lifetime(double health_start, double health_now,
                                      double elapsed_days, double eol_health = 0.80,
                                      double max_days = 20.0 * 365.0);

/// Estimator 2: lifetime Ah at the typical cycling depth divided by daily Ah.
LifetimeEstimate lifetime_from_throughput(const battery::CycleLifeCurve& curve,
                                          AmpereHours nameplate, double typical_dod,
                                          AmpereHours daily_throughput,
                                          double max_days = 20.0 * 365.0);

}  // namespace baat::core
