#pragma once

// Eq 7 — planned aging: DoD_goal = (C_total − C_used) / Cycle_plan × 100%.
// Synchronizes the battery's end-of-life with the datacenter's by spending
// exactly the remaining Ah budget over the remaining planned cycles, then
// retargets the slowdown controller's SoC knee at 1 − DoD_goal (§IV-D).

#include "util/units.hpp"

namespace baat::core {

using util::AmpereHours;

struct DodGoal {
  double dod = 0.0;          ///< planned depth of discharge, fraction
  double soc_trigger = 1.0;  ///< 1 − DoD_goal: the retargeted slowdown knee
};

/// Eq 7, with the result clamped to a safe operating band: DoD below
/// `dod_min` wastes battery (discard before wear-out), DoD above `dod_max`
/// is "over 90% DoD", the upper bound §VI-G names.
DodGoal planned_dod(AmpereHours c_total, AmpereHours c_used, double cycles_plan,
                    AmpereHours per_cycle_capacity, double dod_min = 0.10,
                    double dod_max = 0.90);

/// Remaining planned cycles given a service window and observed cycling
/// cadence (cycles per day), the "estimated from the battery usage log"
/// input of Eq 7.
double cycles_remaining(double service_days_remaining, double cycles_per_day);

}  // namespace baat::core
