#pragma once

// Table 3: the (power, energy) demand classification of a workload and its
// implied sensitivity of each aging metric. "The power demand is treated as
// Large if the load power consumption exceeds 50% of the peak power";
// energy is More/Less by the load's running length and total energy request.

#include <string_view>

#include "server/server.hpp"
#include "util/units.hpp"
#include "workload/workload.hpp"

namespace baat::core {

using util::WattHours;

enum class PowerClass { Large, Small };
enum class EnergyClass { More, Less };

[[nodiscard]] std::string_view power_class_name(PowerClass c);
[[nodiscard]] std::string_view energy_class_name(EnergyClass c);

struct DemandClass {
  PowerClass power = PowerClass::Small;
  EnergyClass energy = EnergyClass::Less;

  friend bool operator==(const DemandClass&, const DemandClass&) = default;
};

/// Raw demand numbers a classifier consumes.
struct DemandProfile {
  /// Peak load power as a fraction of the server's peak dynamic range.
  double power_fraction_of_peak = 0.0;
  /// Total energy the load will request over its run (services: per day).
  WattHours energy_request{0.0};
};

struct DemandThresholds {
  double power_large_fraction = 0.50;      ///< Table 3's 50%-of-peak rule
  WattHours energy_more{200.0};            ///< More/Less split for the request
};

/// Estimate a workload's demand profile on a given server class from its
/// spec (the "coarse granularity power profile" of §IV-B.2a).
DemandProfile profile_for(const workload::Spec& spec, const server::ServerSpec& host);

/// Table 3 classification.
DemandClass classify(const DemandProfile& profile,
                     const DemandThresholds& thresholds = {});

/// Table 3's sensitivity of a metric to the demand class, turned into the
/// Eq 6 weighting factors: High → 0.50, Medium → 0.30, Low → 0.20.
struct AgingWeights {
  double a_cf = 0.3;
  double b_pc = 0.3;
  double c_nat = 0.3;
};

[[nodiscard]] AgingWeights weights_for(const DemandClass& c);

}  // namespace baat::core
