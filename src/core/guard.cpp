#include "core/guard.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace baat::core {

TelemetryGuard::TelemetryGuard(const GuardParams& params, std::size_t nodes)
    : params_(params), nodes_(nodes) {
  BAAT_REQUIRE(params_.soc_floor < params_.soc_ceil, "guard soc range is empty");
  BAAT_REQUIRE(params_.max_rate_per_s > 0.0, "guard rate limit must be positive");
  BAAT_REQUIRE(params_.max_staleness.value() > 0.0, "guard staleness must be positive");
  BAAT_REQUIRE(params_.staleness_tau.value() > 0.0, "guard tau must be positive");
  BAAT_REQUIRE(params_.conservative_soc >= 0.0 && params_.conservative_soc <= 1.0,
               "guard conservative soc must be in [0, 1]");
  if (params_.enabled) {
    obs::Registry& reg = obs::global_registry();
    fallback_range_ = &reg.counter("policy.fallback", "range");
    fallback_rate_ = &reg.counter("policy.fallback", "rate");
    fallback_stale_ = &reg.counter("policy.fallback", "stale");
  }
}

double TelemetryGuard::filter_soc(std::size_t node, double raw_soc,
                                  util::Seconds reading_time, util::Seconds now) {
  if (!params_.enabled) return raw_soc;
  BAAT_REQUIRE(node < nodes_.size(), "guard node index out of range");
  NodeState& st = nodes_[node];
  if (st.last_eval == now.value()) return st.last_result;  // same decision instant

  const char* reason = nullptr;
  obs::Counter* counter = nullptr;
  if (now.value() - reading_time.value() > params_.max_staleness.value()) {
    reason = "stale";
    counter = fallback_stale_;
  } else if (raw_soc < params_.soc_floor || raw_soc > params_.soc_ceil ||
             !std::isfinite(raw_soc)) {
    reason = "range";
    counter = fallback_range_;
  } else if (st.has_good && now.value() > st.last_good_time) {
    const double rate =
        std::fabs(raw_soc - st.last_good) / (now.value() - st.last_good_time);
    if (rate > params_.max_rate_per_s) {
      reason = "rate";
      counter = fallback_rate_;
    }
  }

  double result = raw_soc;
  if (reason == nullptr) {
    st.has_good = true;
    st.last_good = std::clamp(raw_soc, 0.0, 1.0);
    st.last_good_time = now.value();
  } else {
    // Exponential staleness discount: trust the last good estimate fully
    // when it is fresh, slide toward the conservative assumption as the
    // outage ages. Never having seen a good sample degenerates to the
    // conservative value outright.
    const double anchor = st.has_good ? st.last_good : params_.conservative_soc;
    const double age = st.has_good ? std::max(0.0, now.value() - st.last_good_time)
                                   : params_.staleness_tau.value() * 1e3;
    const double w = std::exp(-age / params_.staleness_tau.value());
    result = params_.conservative_soc + (anchor - params_.conservative_soc) * w;
    ++fallbacks_;
    if (counter != nullptr) counter->inc();
    obs::emit(obs::EventKind::PolicyFallback, static_cast<int>(node), raw_soc, reason);
  }
  st.last_eval = now.value();
  st.last_result = result;
  return result;
}

void TelemetryGuard::save_state(snapshot::SnapshotWriter& w) const {
  w.write_u64(nodes_.size());
  for (const NodeState& n : nodes_) {
    w.write_bool(n.has_good);
    w.write_f64(n.last_good);
    w.write_f64(n.last_good_time);
    w.write_f64(n.last_eval);
    w.write_f64(n.last_result);
  }
  w.write_u64(fallbacks_);
}

void TelemetryGuard::load_state(snapshot::SnapshotReader& r) {
  const auto n = static_cast<std::size_t>(r.read_u64());
  if (n != nodes_.size()) {
    throw snapshot::SnapshotError("telemetry-guard snapshot covers " + std::to_string(n) +
                                  " nodes but the scenario builds " +
                                  std::to_string(nodes_.size()));
  }
  for (NodeState& node : nodes_) {
    node.has_good = r.read_bool();
    node.last_good = r.read_f64();
    node.last_good_time = r.read_f64();
    node.last_eval = r.read_f64();
    node.last_result = r.read_f64();
  }
  fallbacks_ = r.read_u64();
}

}  // namespace baat::core
