#include "core/planned.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::core {

DodGoal planned_dod(AmpereHours c_total, AmpereHours c_used, double cycles_plan,
                    AmpereHours per_cycle_capacity, double dod_min, double dod_max) {
  BAAT_REQUIRE(c_total.value() > 0.0, "C_total must be positive");
  BAAT_REQUIRE(c_used.value() >= 0.0, "C_used must be >= 0");
  BAAT_REQUIRE(cycles_plan > 0.0, "Cycle_plan must be positive");
  BAAT_REQUIRE(per_cycle_capacity.value() > 0.0, "per-cycle capacity must be positive");
  BAAT_REQUIRE(dod_min > 0.0 && dod_min < dod_max && dod_max <= 1.0,
               "DoD band must satisfy 0 < min < max <= 1");

  // Eq 7 yields Ah per planned cycle; normalizing by the unit's capacity
  // turns it into a depth-of-discharge fraction.
  const double remaining_ah = std::max(0.0, (c_total - c_used).value());
  const double ah_per_cycle = remaining_ah / cycles_plan;
  const double dod_raw = ah_per_cycle / per_cycle_capacity.value();

  DodGoal g;
  g.dod = std::clamp(dod_raw, dod_min, dod_max);
  g.soc_trigger = 1.0 - g.dod;
  return g;
}

double cycles_remaining(double service_days_remaining, double cycles_per_day) {
  BAAT_REQUIRE(service_days_remaining >= 0.0, "service days must be >= 0");
  BAAT_REQUIRE(cycles_per_day > 0.0, "cycles per day must be positive");
  return std::max(1.0, service_days_remaining * cycles_per_day);
}

}  // namespace baat::core
