#include "core/policies.hpp"

namespace baat::core {

Actions EBuffPolicy::on_control_tick(const PolicyContext& ctx) {
  // e-Buff is aging-oblivious: keep everything at nominal frequency and let
  // the router drain batteries as deep as chemistry allows.
  Actions actions;
  for (const NodeView& n : ctx.nodes) {
    if (n.dvfs_level != n.dvfs_top) {
      actions.dvfs.push_back(DvfsAction{n.index, n.dvfs_top, "nominal_frequency"});
    }
  }
  return actions;
}

std::optional<std::size_t> EBuffPolicy::place_vm(const PolicyContext& ctx, double cores,
                                                 double mem_gb,
                                                 const DemandProfile& /*demand*/) {
  return place_least_loaded(ctx, cores, mem_gb);
}

}  // namespace baat::core
