#pragma once

// Concrete policy classes behind make_policy(). Table 4:
//   e-Buff  — aggressively use the battery as a green energy buffer
//   BAAT-s  — aging-aware DVFS throttling only (slow down)
//   BAAT-h  — aging-aware VM migration only (hide variation)
//   BAAT    — coordinated hiding + slowing (+ optional planned aging)

#include <vector>

#include "core/policy.hpp"

namespace baat::core {

/// Aggressive energy buffering (the [4, 7]-style baseline): no aging logic,
/// least-loaded placement, never migrates, never throttles.
class EBuffPolicy final : public AgingPolicy {
 public:
  explicit EBuffPolicy(const PolicyParams& params) : params_(params) {}
  [[nodiscard]] std::string_view name() const override { return "e-Buff"; }
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::EBuff; }
  Actions on_control_tick(const PolicyContext& ctx) override;
  std::optional<std::size_t> place_vm(const PolicyContext& ctx, double cores,
                                      double mem_gb, const DemandProfile& demand) override;

 private:
  PolicyParams params_;
};

/// Slowdown-only BAAT: Fig 9's DDT/DR check, acting purely through DVFS —
/// "a passive solution [that] leads to workload performance degradation"
/// (§VI-B).
class BaatSPolicy final : public AgingPolicy {
 public:
  explicit BaatSPolicy(const PolicyParams& params) : params_(params) {}
  [[nodiscard]] std::string_view name() const override { return "BAAT-s"; }
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::BaatS; }
  Actions on_control_tick(const PolicyContext& ctx) override;
  std::optional<std::size_t> place_vm(const PolicyContext& ctx, double cores,
                                      double mem_gb, const DemandProfile& demand) override;

 private:
  PolicyParams params_;
};

/// Hiding-only BAAT: migrates work off a stressed node but "lacks the
/// holistic battery node aging information ... which makes the migration
/// become random and low efficiency" (§VI-B) — the target is drawn randomly
/// from the feasible set.
class BaatHPolicy final : public AgingPolicy {
 public:
  explicit BaatHPolicy(const PolicyParams& params);
  [[nodiscard]] std::string_view name() const override { return "BAAT-h"; }
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::BaatH; }
  Actions on_control_tick(const PolicyContext& ctx) override;
  std::optional<std::size_t> place_vm(const PolicyContext& ctx, double cores,
                                      double mem_gb, const DemandProfile& demand) override;
  void save_state(snapshot::SnapshotWriter& w) const override;
  void load_state(snapshot::SnapshotReader& r) override;

 private:
  PolicyParams params_;
  util::Rng rng_;
  std::vector<Seconds> last_migration_;  ///< per-node cooldown
};

/// Full BAAT: weighted-aging placement and rebalance (Fig 8), slowdown with
/// migration preferred over DVFS (Fig 9), aging-aware charge priority, and
/// optional Eq 7 planned aging when `planned.cycles_plan > 0`.
class BaatPolicy final : public AgingPolicy {
 public:
  explicit BaatPolicy(const PolicyParams& params, bool planned);
  [[nodiscard]] std::string_view name() const override {
    return planned_ ? "BAAT-planned" : "BAAT";
  }
  [[nodiscard]] PolicyKind kind() const override {
    return planned_ ? PolicyKind::BaatPlanned : PolicyKind::Baat;
  }
  Actions on_control_tick(const PolicyContext& ctx) override;
  std::optional<std::size_t> place_vm(const PolicyContext& ctx, double cores,
                                      double mem_gb, const DemandProfile& demand) override;

  /// The SoC knee currently in force for a node (Eq 7 override when planned).
  [[nodiscard]] double effective_soc_trigger(const NodeView& node) const;

  void save_state(snapshot::SnapshotWriter& w) const override;
  void load_state(snapshot::SnapshotReader& r) override;

 private:
  PolicyParams params_;
  bool planned_;
  std::vector<Seconds> last_migration_;
};

/// Predictive BAAT — an extension beyond the paper (its "proactive"
/// direction, §IV-D): full BAAT plus solar-energy budgeting over the rest
/// of the duty window. When the forecast supply plus the reserve above the
/// knee cannot cover the remaining demand, it sheds power *before* the
/// batteries enter the deep-discharge band that reactive BAAT waits for.
class BaatPredictivePolicy final : public AgingPolicy {
 public:
  explicit BaatPredictivePolicy(const PolicyParams& params);
  [[nodiscard]] std::string_view name() const override { return "BAAT-p"; }
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::BaatPredictive; }
  Actions on_control_tick(const PolicyContext& ctx) override;
  std::optional<std::size_t> place_vm(const PolicyContext& ctx, double cores,
                                      double mem_gb, const DemandProfile& demand) override;
  void save_state(snapshot::SnapshotWriter& w) const override;
  void load_state(snapshot::SnapshotReader& r) override;

 private:
  PolicyParams params_;
  BaatPolicy inner_;
  SolarForecaster forecaster_;
};

/// Shared helper: least-loaded placement for aging-oblivious policies.
std::optional<std::size_t> place_least_loaded(const PolicyContext& ctx, double cores,
                                              double mem_gb);

}  // namespace baat::core
