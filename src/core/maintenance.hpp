#pragma once

// Fleet battery maintenance planning — the operational layer behind the
// paper's economics (§VI-D): "datacenter operators have to replace
// batteries that undergo faster aging irregularly, which unavoidably
// increases battery maintenance and replacement cost." Given per-node SoH
// projections, this plans replacements over the datacenter's remaining life
// and prices the plan, so the Fig 16/17 savings can be traced to concrete
// replacement schedules instead of a single depreciation number.

#include <vector>

#include "core/cost.hpp"
#include "util/units.hpp"

namespace baat::core {

/// One node's projected battery wear.
struct NodeWear {
  std::size_t node = 0;
  double eol_day = 0.0;  ///< projected end-of-life, days from now
};

struct ReplacementEvent {
  double day = 0.0;
  std::vector<std::size_t> nodes;  ///< units swapped in this service visit
};

struct MaintenancePlanParams {
  /// Remaining datacenter life to plan for (after which everything is
  /// scrapped anyway — §VI-G's synchronization argument).
  double horizon_days = 10.0 * 365.0;
  /// Replacements within this window are batched into one service visit —
  /// the irregular-replacement overhead the paper warns about is per visit.
  double batching_window_days = 30.0;
  /// Fixed cost of rolling a technician to the site, per visit.
  Dollars truck_roll_cost{120.0};
};

struct MaintenancePlan {
  std::vector<ReplacementEvent> visits;
  double total_replacements = 0.0;
  Dollars total_cost{0.0};  ///< units + truck rolls over the horizon

  [[nodiscard]] Dollars annualized(double horizon_days) const {
    return Dollars{total_cost.value() / (horizon_days / 365.0)};
  }
};

/// Build the replacement schedule: each node is replaced every `eol_day`
/// days (its observed wear cadence) until the horizon; nearby replacements
/// are batched into shared service visits.
MaintenancePlan plan_replacements(const std::vector<NodeWear>& fleet,
                                  const MaintenancePlanParams& params,
                                  const CostParams& cost);

/// Number of service visits saved by batching, vs one visit per unit.
std::size_t visits_saved(const MaintenancePlan& plan);

}  // namespace baat::core
