#include "core/lifetime.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::core {

LifetimeEstimate extrapolate_lifetime(double health_start, double health_now,
                                      double elapsed_days, double eol_health,
                                      double max_days) {
  BAAT_REQUIRE(health_start > 0.0 && health_start <= 1.0, "health_start must be in (0, 1]");
  // health_now == 0 is a valid observation (an open cell is already at end
  // of life); the linear projection below handles it without a special case.
  BAAT_REQUIRE(health_now >= 0.0 && health_now <= health_start,
               "health_now must be in [0, health_start]");
  BAAT_REQUIRE(elapsed_days > 0.0, "elapsed_days must be positive");
  BAAT_REQUIRE(eol_health > 0.0 && eol_health < 1.0, "eol_health must be in (0, 1)");

  const double fade = health_start - health_now;
  if (fade <= 1e-12) return LifetimeEstimate{max_days, true};
  const double fade_per_day = fade / elapsed_days;
  const double days = (health_start - eol_health) / fade_per_day;
  return LifetimeEstimate{std::min(days, max_days), days > max_days};
}

LifetimeEstimate lifetime_from_throughput(const battery::CycleLifeCurve& curve,
                                          AmpereHours nameplate, double typical_dod,
                                          AmpereHours daily_throughput,
                                          double max_days) {
  BAAT_REQUIRE(daily_throughput.value() >= 0.0, "daily throughput must be >= 0");
  if (daily_throughput.value() <= 1e-9) return LifetimeEstimate{max_days, true};
  const AmpereHours budget = curve.lifetime_throughput(typical_dod, nameplate);
  const double days = budget.value() / daily_throughput.value();
  return LifetimeEstimate{std::min(days, max_days), days > max_days};
}

}  // namespace baat::core
