#include <algorithm>

#include "core/policies.hpp"
#include "core/slowdown.hpp"

namespace baat::core {

BaatPredictivePolicy::BaatPredictivePolicy(const PolicyParams& params)
    : params_(params), inner_(params, /*planned=*/false), forecaster_(params.forecast) {}

Actions BaatPredictivePolicy::on_control_tick(const PolicyContext& ctx) {
  forecaster_.observe(ctx.time_of_day, ctx.solar_now);
  Actions actions = inner_.on_control_tick(ctx);

  // Energy budgeting over the rest of the duty window: if the forecast
  // solar plus the charge stored above the slowdown knee cannot cover the
  // fleet's remaining demand, shed power *now* — before the batteries are
  // dragged through the deep-discharge band reactive BAAT waits for.
  const double remaining_h =
      std::max(0.0, (params_.day_end - ctx.time_of_day).value()) / 3600.0;
  if (remaining_h <= 0.0) return actions;

  double demand_wh = 0.0;
  double reserve_wh = 0.0;
  for (const NodeView& n : ctx.nodes) {
    demand_wh += n.server_power.value() * remaining_h;
    // Charge above the knee, through the inverter, at nominal voltage — a
    // controller-side estimate from the power table's SoC.
    const double above = std::max(0.0, n.soc - params_.slowdown.soc_trigger);
    reserve_wh += above * params_.planned.nameplate.value() * 12.0 * 0.92;
  }
  const double solar_wh = forecaster_.forecast_remaining_energy(ctx.time_of_day).value();
  const double shortfall = demand_wh - solar_wh - reserve_wh;
  if (shortfall <= 0.0) return actions;

  // Preemptive cap: step every node that is not already acting one DVFS
  // level down (dedup against whatever the inner policy requested).
  for (const NodeView& n : ctx.nodes) {
    if (!n.powered_on || n.dvfs_level == 0) continue;
    const bool already = std::any_of(actions.dvfs.begin(), actions.dvfs.end(),
                                     [&n](const DvfsAction& a) { return a.node == n.index; });
    if (already) continue;
    actions.dvfs.push_back(DvfsAction{n.index, n.dvfs_level - 1, "predictive_cap"});
  }
  return actions;
}

std::optional<std::size_t> BaatPredictivePolicy::place_vm(const PolicyContext& ctx,
                                                          double cores, double mem_gb,
                                                          const DemandProfile& demand) {
  return inner_.place_vm(ctx, cores, mem_gb, demand);
}

void BaatPredictivePolicy::save_state(snapshot::SnapshotWriter& w) const {
  inner_.save_state(w);
  forecaster_.save_state(w);
}

void BaatPredictivePolicy::load_state(snapshot::SnapshotReader& r) {
  inner_.load_state(r);
  forecaster_.load_state(r);
}

}  // namespace baat::core
