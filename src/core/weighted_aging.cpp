#include "core/weighted_aging.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"
#include "util/units.hpp"

namespace baat::core {

AgingSignals aging_signals(const AgingMetrics& m, const AgingSignalParams& p) {
  AgingSignals s;
  // CF: "when the charge factor is too low, sulphation and stratification
  // may become the major causes of fast aging; above its normal range,
  // shedding, water loss and corrosion" (§III-B). Both tails count.
  s.s_cf = std::max(0.0, p.cf_low - m.cf) +
           p.cf_over_weight * std::max(0.0, m.cf - p.cf_high);
  // PC: Eq 4 value is 0.25 when all Ah flows at high SoC, 1.0 when all flows
  // deep; rescale to [0, 1].
  s.s_pc = util::clamp01((m.pc - 0.25) / 0.75);
  // NAT is already an aging fraction; rescale into the same O(1) band.
  s.s_nat = std::max(0.0, m.nat) * p.nat_scale;
  return s;
}

double weighted_aging(const AgingMetrics& m, const AgingWeights& w,
                      const AgingSignalParams& p) {
  const AgingSignals s = aging_signals(m, p);
  return w.a_cf * s.s_cf + w.b_pc * s.s_pc + w.c_nat * s.s_nat;
}

std::vector<std::size_t> rank_by_weighted_aging(std::span<const AgingMetrics> metrics,
                                                const AgingWeights& w,
                                                const AgingSignalParams& p) {
  std::vector<double> scores(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    scores[i] = weighted_aging(metrics[i], w, p);
  }
  std::vector<std::size_t> order(metrics.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  return order;
}

}  // namespace baat::core
