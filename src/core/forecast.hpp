#pragma once

// Short-horizon solar forecasting — the input a *proactive* battery manager
// needs (§IV-D "proactively predicts battery lifetime"; the intermittency
// handling of §IV-C presumes some view of whether the supply will return).
// The estimator blends the deterministic clear-sky envelope with an EWMA of
// the observed attenuation (persistence forecasting — the standard baseline
// for sub-hour solar horizons).

#include "snapshot/serialize.hpp"
#include "solar/irradiance.hpp"
#include "util/units.hpp"

namespace baat::core {

using util::Seconds;
using util::WattHours;
using util::Watts;

struct ForecastParams {
  solar::SunWindow window{};
  Watts plant_peak{1500.0};
  /// EWMA horizon for the observed attenuation.
  Seconds attenuation_window{util::minutes(30.0)};
  /// Attenuation assumed before any observation arrives.
  double prior_attenuation = 0.6;
  /// Largest downward attenuation step a single observation may cause.
  /// 1.0 (the default) is unclamped; the fault layer tightens this so one
  /// glitched meter reading or a momentary PV dropout cannot collapse the
  /// whole forecast in a single control period.
  double max_attenuation_drop_per_obs = 1.0;
};

class SolarForecaster {
 public:
  explicit SolarForecaster(ForecastParams params);

  /// Feed one observation of plant output at a time of day.
  void observe(Seconds time_of_day, Watts output);

  /// Estimated attenuation (cloudiness) right now, in [0, 1].
  [[nodiscard]] double attenuation() const { return attenuation_; }

  /// Forecast plant output at a (later) time of day under persistence.
  [[nodiscard]] Watts forecast_power(Seconds time_of_day) const;

  /// Forecast the solar energy still to come between `from` and sunset.
  [[nodiscard]] WattHours forecast_remaining_energy(Seconds from) const;

  /// Checkpoint support: the EWMA attenuation and the last-observation time.
  void save_state(snapshot::SnapshotWriter& w) const {
    w.write_f64(attenuation_);
    w.write_f64(last_obs_.value());
  }
  void load_state(snapshot::SnapshotReader& r) {
    attenuation_ = r.read_f64();
    last_obs_ = Seconds{r.read_f64()};
  }

 private:
  ForecastParams params_;
  double attenuation_;
  Seconds last_obs_{-1.0};
};

}  // namespace baat::core
