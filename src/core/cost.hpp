#pragma once

// Cost and TCO model (Figs 16/17). Longer battery life cuts annual
// depreciation; §VI-D's key observation is that the savings can buy extra
// servers without raising total cost of ownership.

#include <cstddef>

#include "util/units.hpp"

namespace baat::core {

using util::Dollars;

struct CostParams {
  Dollars battery_unit_cost{90.0};     ///< one 12 V 35 Ah VRLA block
  std::size_t battery_units = 12;      ///< the prototype's array (Fig 11)
  Dollars server_cost{2000.0};
  double server_life_years = 5.0;      ///< IT refresh cadence
  Dollars server_annual_opex{150.0};   ///< power/maintenance per server-year
};

/// Annual battery depreciation for a fleet whose units last `lifetime_years`.
Dollars annual_battery_depreciation(const CostParams& p, double lifetime_years);

/// Annual cost of owning one server (capex amortized + opex).
Dollars server_annual_cost(const CostParams& p);

/// Servers that can be added while keeping TCO constant, given the annual
/// battery savings of a better policy (Fig 17). Fractional result — callers
/// floor it for a purchasable count.
double servers_addable_at_constant_tco(const CostParams& p, Dollars annual_savings);

}  // namespace baat::core
