#pragma once

// Fig 8 — aging-driven scheduling that *hides* aging variation: place new
// load on the healthiest battery node (smallest Eq 6 weighted aging) and,
// when the spread across the fleet grows, migrate work off the worst node.

#include <optional>

#include "core/policy.hpp"
#include "core/weighted_aging.hpp"

namespace baat::core {

/// Weighted aging of every node for a given demand class.
std::vector<double> node_scores(const PolicyContext& ctx, const AgingWeights& w,
                                const AgingSignalParams& p);

/// Fig 8 placement: among powered-on nodes with room for (cores, mem),
/// the one with the smallest weighted aging for this demand's class.
std::optional<std::size_t> select_placement(
    const PolicyContext& ctx, double cores, double mem_gb, const DemandProfile& demand,
    const DemandThresholds& thresholds, const AgingSignalParams& signals,
    std::optional<AgingWeights> weights_override = {});

/// Consolidation-time rebalance: if the weighted-aging spread between the
/// worst and best node exceeds `threshold`, propose moving one migratable
/// VM from the worst node to the best node that can host it.
std::optional<MigrationAction> propose_rebalance(const PolicyContext& ctx,
                                                 const AgingWeights& w,
                                                 const AgingSignalParams& signals,
                                                 double threshold);

}  // namespace baat::core
