#include "core/forecast.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace baat::core {

SolarForecaster::SolarForecaster(ForecastParams params)
    : params_(params), attenuation_(params.prior_attenuation) {
  BAAT_REQUIRE(params_.plant_peak.value() > 0.0, "plant peak must be positive");
  BAAT_REQUIRE(params_.attenuation_window.value() > 0.0, "window must be positive");
  BAAT_REQUIRE(params_.prior_attenuation >= 0.0 && params_.prior_attenuation <= 1.0,
               "prior attenuation must be in [0, 1]");
  BAAT_REQUIRE(params_.max_attenuation_drop_per_obs > 0.0 &&
                   params_.max_attenuation_drop_per_obs <= 1.0,
               "max attenuation drop must be in (0, 1]");
}

void SolarForecaster::observe(Seconds time_of_day, Watts output) {
  BAAT_REQUIRE(output.value() >= 0.0, "output must be >= 0");
  const double clear = solar::clear_sky_fraction(params_.window, time_of_day);
  // Attenuation is only observable when the clear-sky envelope is
  // meaningfully above zero (dawn/dusk readings carry no signal).
  if (clear < 0.05) return;
  const double observed = std::clamp(
      output.value() / (params_.plant_peak.value() * clear), 0.0, 1.0);
  double alpha = 1.0;
  if (last_obs_.value() >= 0.0) {
    const double gap = std::max(0.0, (time_of_day - last_obs_).value());
    alpha = 1.0 - std::exp(-gap / params_.attenuation_window.value());
  }
  // Downward steps are rate-limited (upward ones never are): sunshine
  // returning should be believed immediately, sunshine "vanishing" may be a
  // meter glitch. With the default limit of 1.0 the clamp can never bind,
  // since both values live in [0, 1].
  const double target = attenuation_ + alpha * (observed - attenuation_);
  attenuation_ = std::max(target, attenuation_ - params_.max_attenuation_drop_per_obs);
  last_obs_ = time_of_day;
}

Watts SolarForecaster::forecast_power(Seconds time_of_day) const {
  const double clear = solar::clear_sky_fraction(params_.window, time_of_day);
  return Watts{params_.plant_peak.value() * clear * attenuation_};
}

WattHours SolarForecaster::forecast_remaining_energy(Seconds from) const {
  const double start = std::max(from.value(), params_.window.sunrise.value());
  const double end = params_.window.sunset.value();
  if (start >= end) return WattHours{0.0};
  // Integrate the persistence forecast over the rest of the sun window at
  // 5-minute resolution.
  double wh = 0.0;
  for (double t = start; t < end; t += 300.0) {
    wh += forecast_power(Seconds{t}).value() * 300.0 / 3600.0;
  }
  return WattHours{wh};
}

}  // namespace baat::core
