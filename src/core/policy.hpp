#pragma once

// The policy interface between the BAAT controller and the simulator (or a
// real cluster). A policy sees only what the prototype's control server
// sees — sensor-derived metrics, estimated SoC, server power readings and
// the VM inventory — and actuates only what it can actuate: VM migration,
// DVFS, battery charge priority and discharge floors (Fig 7).

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/demand.hpp"
#include "core/forecast.hpp"
#include "snapshot/serialize.hpp"
#include "core/weighted_aging.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/vm.hpp"

namespace baat::core {

using util::Seconds;
using util::Watts;
using workload::VmId;

/// What a policy knows about one VM on a node.
struct VmView {
  VmId id = -1;
  workload::Kind kind{};
  double cores = 0.0;
  double mem_gb = 0.0;
  bool migratable = false;
  DemandProfile demand{};
};

/// What a policy knows about one battery/server node.
struct NodeView {
  std::size_t index = 0;
  bool powered_on = true;
  double soc = 1.0;                       ///< estimated from telemetry
  /// Metrics over the recent control horizon (daily-reset log) — what the
  /// slowdown check (Fig 9) reads.
  telemetry::AgingMetrics metrics{};
  /// Life-long cumulative metrics — what the hiding scheduler (Fig 8) ranks
  /// nodes by, since aging variation is a lifetime property.
  telemetry::AgingMetrics metrics_life{};
  double cores_free = 0.0;
  double mem_free_gb = 0.0;
  int dvfs_level = 0;
  int dvfs_top = 0;
  Watts server_power{0.0};
  Watts battery_draw{0.0};                ///< current discharge power at the load
  /// Largest load power the battery can sustain for the 2-minute reserve
  /// window (the P_threshold of Fig 9).
  Watts sustainable_reserve_power{0.0};
  std::vector<VmView> vms;
};

struct PolicyContext {
  Seconds now{0.0};
  /// Seconds since midnight of the current day.
  Seconds time_of_day{0.0};
  /// Plant output right now (the IPDU-side reading a controller has).
  Watts solar_now{0.0};
  std::vector<NodeView> nodes;
};

struct MigrationAction {
  VmId vm = -1;
  std::size_t from = 0;
  std::size_t to = 0;
  /// Why the policy acted (static string: "low_soc_hiding",
  /// "aging_rebalance", ...). Carried into the actuation's trace event so
  /// the aging ledger's story can be joined with the decisions behind it.
  const char* cause = "";
};

struct DvfsAction {
  std::size_t node = 0;
  int level = 0;
  /// Why the policy acted (see MigrationAction::cause).
  const char* cause = "";
};

/// Everything a policy may request this control period. Empty vectors mean
/// "no change"; `charge_priority`, when set, must be a permutation of node
/// indices; `discharge_floor_soc`, when set, must be per-node.
struct Actions {
  std::vector<MigrationAction> migrations;
  std::vector<DvfsAction> dvfs;
  std::vector<std::size_t> charge_priority;
  std::vector<double> discharge_floor_soc;
};

enum class PolicyKind { EBuff, BaatS, BaatH, Baat, BaatPlanned, BaatPredictive };

[[nodiscard]] std::string_view policy_kind_name(PolicyKind k);

struct SlowdownParams {
  double soc_trigger = 0.40;       ///< Fig 9: act below 40% SoC
  double soc_recover = 0.55;       ///< hysteresis: restore DVFS above this
  double ddt_threshold = 0.05;     ///< Eq 5 fraction (recent log) that arms the response
  double dr_margin = 0.85;         ///< act when draw > margin × P_threshold
  /// DR also fires when the recent discharge C-rate exceeds this while deep
  /// discharged (§III-E: "high discharge rate during low SoC duration").
  double dr_c_threshold = 0.20;
  /// Below the knee, any sustained battery drain above this arms the
  /// response — this is what makes the knee (and Eq 7's planned override of
  /// it) actually modulate how deep the battery serves load before BAAT
  /// starts capping.
  double drain_watts_threshold = 25.0;
  Seconds reserve_window{120.0};   ///< T_threshold: 2-minute reserve ([42])
};

/// Parameters of the planned-aging extension (Eq 7); disabled when
/// `cycles_plan` is 0.
struct PlannedAgingParams {
  util::AmpereHours total_throughput{0.0};  ///< C_total: nameplate life-long Ah
  double cycles_plan = 0.0;                 ///< Cycle_plan: cycles until discard
  util::AmpereHours nameplate{35.0};        ///< per-cycle capacity for Eq 7's DoD
};

struct PolicyParams {
  SlowdownParams slowdown{};
  PlannedAgingParams planned{};
  AgingSignalParams signals{};
  DemandThresholds demand_thresholds{};
  std::uint64_t seed = 1;
  /// Minimum weighted-aging spread that justifies a hiding migration.
  double rebalance_threshold = 0.08;
  /// Ablation knob: when false, full BAAT leaves charging on the physical
  /// proportional split instead of steering surplus to the worst battery.
  bool use_charge_priority = true;
  /// Ablation knob: when set, placement uses these Eq 6 weights for every
  /// demand class instead of the Table 3 mapping.
  std::optional<AgingWeights> placement_weights_override{};
  /// End of the server-duty window — the horizon the predictive extension
  /// budgets solar energy against.
  Seconds day_end{util::hours(18.5)};
  /// Forecast configuration for the predictive extension.
  ForecastParams forecast{};
};

/// Observability hook: count what a policy asked for this control period
/// under `policy.decisions{migration|dvfs|charge_priority|discharge_floor}`
/// plus `policy.control_ticks`. The driver (Cluster, or a live control
/// server) calls this once per on_control_tick result.
void record_actions(const Actions& actions);

class AgingPolicy {
 public:
  virtual ~AgingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual PolicyKind kind() const = 0;

  /// Called once per control period.
  virtual Actions on_control_tick(const PolicyContext& ctx) = 0;

  /// Choose the node for a new VM ("when datacenter operators deploy new
  /// applications", §IV-B.2). Returns nullopt if nothing can host it.
  virtual std::optional<std::size_t> place_vm(const PolicyContext& ctx,
                                              double cores, double mem_gb,
                                              const DemandProfile& demand) = 0;

  /// Checkpoint support. Stateless policies (e-Buff, BAAT-s, plain BAAT's
  /// parameters) keep the no-op default; policies carrying runtime state
  /// (migration cooldowns, the BAAT-h RNG, the predictive forecaster)
  /// override both. Save/load pairs must consume symmetric bytes.
  virtual void save_state(snapshot::SnapshotWriter& w) const { (void)w; }
  virtual void load_state(snapshot::SnapshotReader& r) { (void)r; }
};

std::unique_ptr<AgingPolicy> make_policy(PolicyKind kind, const PolicyParams& params);

}  // namespace baat::core
