#pragma once

// Fig 9 — the aging slowdown check. When a node's battery sits below the
// SoC trigger, the controller checks DDT and DR against their thresholds;
// if either fires, it prefers migrating a VM away (no performance loss) and
// falls back to stepping DVFS down. When the battery recovers, DVFS is
// restored. P_threshold is "the maximal current that can sustain discharge
// for 2 minutes" — we express it as the sustainable reserve power the node
// view carries.

#include <optional>

#include "core/policy.hpp"

namespace baat::core {

enum class SlowdownDecision { None, Act, Restore };

/// Evaluate Fig 9's trigger for one node. `soc_trigger_override`, when set,
/// replaces the 40% knee — this is how planned aging retargets the
/// controller ("replacing the low SoC value ... with 1 − DoD_goal", §IV-D).
SlowdownDecision assess_slowdown(const NodeView& node, const SlowdownParams& params,
                                 std::optional<double> soc_trigger_override = {});

/// The VM to shed first under slowdown: the migratable VM with the largest
/// footprint (sheds the most power per migration).
std::optional<VmView> select_shed_vm(const NodeView& node);

}  // namespace baat::core
