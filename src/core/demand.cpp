#include "core/demand.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::core {

std::string_view power_class_name(PowerClass c) {
  return c == PowerClass::Large ? "Large" : "Small";
}

std::string_view energy_class_name(EnergyClass c) {
  return c == EnergyClass::More ? "More" : "Less";
}

DemandProfile profile_for(const workload::Spec& spec, const server::ServerSpec& host) {
  DemandProfile p;
  // Peak utilization of the VM's vCPUs, scaled by the share of the host it
  // occupies, against the host's dynamic power range.
  const double peak_util = util::clamp01(spec.base_util + spec.swing);
  const double host_share = std::min(1.0, spec.cores / host.cores);
  p.power_fraction_of_peak = peak_util * host_share;

  const double dyn_range_w = (host.peak - host.idle).value();
  const double avg_util = spec.base_util;
  // Services (duration 0) are assessed per day — they keep requesting energy
  // for as long as they run.
  const double duration_h =
      spec.duration.value() > 0.0 ? spec.duration.value() / 3600.0 : 24.0;
  p.energy_request = WattHours{avg_util * host_share * dyn_range_w * duration_h};
  return p;
}

DemandClass classify(const DemandProfile& profile, const DemandThresholds& thresholds) {
  BAAT_REQUIRE(profile.power_fraction_of_peak >= 0.0, "power fraction must be >= 0");
  BAAT_REQUIRE(profile.energy_request.value() >= 0.0, "energy request must be >= 0");
  DemandClass c;
  c.power = profile.power_fraction_of_peak > thresholds.power_large_fraction
                ? PowerClass::Large
                : PowerClass::Small;
  c.energy = profile.energy_request > thresholds.energy_more ? EnergyClass::More
                                                             : EnergyClass::Less;
  return c;
}

AgingWeights weights_for(const DemandClass& c) {
  // Table 3, with §IV-B.2b's mapping High = 0.5, Medium = 0.3, Low = 0.2:
  //   Power  Energy | ΔNAT    ΔCF   ΔPC
  //   Large  Less   | Medium  High  High
  //   Large  More   | High    High  High
  //   Small  More   | High    Low   Medium
  //   Small  Less   | Low     Low   Low
  constexpr double kHigh = 0.50;
  constexpr double kMedium = 0.30;
  constexpr double kLow = 0.20;
  if (c.power == PowerClass::Large && c.energy == EnergyClass::Less) {
    return AgingWeights{kHigh, kHigh, kMedium};
  }
  if (c.power == PowerClass::Large && c.energy == EnergyClass::More) {
    return AgingWeights{kHigh, kHigh, kHigh};
  }
  if (c.power == PowerClass::Small && c.energy == EnergyClass::More) {
    return AgingWeights{kLow, kMedium, kHigh};
  }
  return AgingWeights{kLow, kLow, kLow};
}

}  // namespace baat::core
