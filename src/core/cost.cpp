#include "core/cost.hpp"

#include "util/require.hpp"

namespace baat::core {

Dollars annual_battery_depreciation(const CostParams& p, double lifetime_years) {
  BAAT_REQUIRE(lifetime_years > 0.0, "lifetime must be positive");
  return Dollars{p.battery_unit_cost.value() * static_cast<double>(p.battery_units) /
                 lifetime_years};
}

Dollars server_annual_cost(const CostParams& p) {
  BAAT_REQUIRE(p.server_life_years > 0.0, "server life must be positive");
  return Dollars{p.server_cost.value() / p.server_life_years +
                 p.server_annual_opex.value()};
}

double servers_addable_at_constant_tco(const CostParams& p, Dollars annual_savings) {
  BAAT_REQUIRE(annual_savings.value() >= 0.0, "savings must be >= 0");
  return annual_savings.value() / server_annual_cost(p).value();
}

}  // namespace baat::core
