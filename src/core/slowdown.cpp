#include "core/slowdown.hpp"

namespace baat::core {

SlowdownDecision assess_slowdown(const NodeView& node, const SlowdownParams& params,
                                 std::optional<double> soc_trigger_override) {
  const double trigger = soc_trigger_override.value_or(params.soc_trigger);
  const double recover = std::max(params.soc_recover, trigger + 0.10);

  if (node.soc >= recover) return SlowdownDecision::Restore;
  if (node.soc >= trigger) return SlowdownDecision::None;

  // Below the trigger: check DDT and DR (Fig 9). DR fires either when the
  // present draw endangers the 2-minute reserve (P_threshold) or when the
  // recent discharge C-rate is high for a deeply discharged battery.
  const bool ddt_fired = node.metrics.ddt >= params.ddt_threshold;
  const bool reserve_fired =
      node.sustainable_reserve_power.value() <= 0.0 ||
      node.battery_draw.value() >
          params.dr_margin * node.sustainable_reserve_power.value();
  const bool rate_fired = node.metrics.dr_c_rate >= params.dr_c_threshold;
  const bool drain_fired =
      node.battery_draw.value() > params.drain_watts_threshold;
  return (ddt_fired || reserve_fired || rate_fired || drain_fired)
             ? SlowdownDecision::Act
             : SlowdownDecision::None;
}

std::optional<VmView> select_shed_vm(const NodeView& node) {
  std::optional<VmView> pick;
  for (const VmView& v : node.vms) {
    if (!v.migratable) continue;
    if (!pick || v.cores > pick->cores) pick = v;
  }
  return pick;
}

}  // namespace baat::core
