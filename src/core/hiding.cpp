#include "core/hiding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace baat::core {

std::vector<double> node_scores(const PolicyContext& ctx, const AgingWeights& w,
                                const AgingSignalParams& p) {
  std::vector<double> scores;
  scores.reserve(ctx.nodes.size());
  for (const NodeView& n : ctx.nodes) {
    scores.push_back(weighted_aging(n.metrics_life, w, p));
  }
  return scores;
}

std::optional<std::size_t> select_placement(
    const PolicyContext& ctx, double cores, double mem_gb, const DemandProfile& demand,
    const DemandThresholds& thresholds, const AgingSignalParams& signals,
    std::optional<AgingWeights> weights_override) {
  const AgingWeights w =
      weights_override.value_or(weights_for(classify(demand, thresholds)));
  std::optional<std::size_t> best;
  double best_score = std::numeric_limits<double>::infinity();
  double best_free = -1.0;
  for (const NodeView& n : ctx.nodes) {
    if (!n.powered_on || n.cores_free < cores || n.mem_free_gb < mem_gb) continue;
    const double score = weighted_aging(n.metrics_life, w, signals);
    // Tie-break on free capacity: on a fresh fleet every node scores the
    // same, and without this the scheduler would pile everything onto the
    // first node instead of balancing (the paper's Fig 8 intent).
    const bool tie = std::fabs(score - best_score) < 1e-6;
    if (score < best_score - 1e-6 || (tie && n.cores_free > best_free)) {
      best_score = std::min(score, best_score);
      best_free = n.cores_free;
      best = n.index;
    }
  }
  return best;
}

std::optional<MigrationAction> propose_rebalance(const PolicyContext& ctx,
                                                 const AgingWeights& w,
                                                 const AgingSignalParams& signals,
                                                 double threshold) {
  if (ctx.nodes.size() < 2) return std::nullopt;
  const std::vector<double> scores = node_scores(ctx, w, signals);

  // Worst node that actually has something migratable.
  std::optional<std::size_t> worst;
  double worst_score = -std::numeric_limits<double>::infinity();
  for (const NodeView& n : ctx.nodes) {
    const bool has_migratable =
        std::any_of(n.vms.begin(), n.vms.end(), [](const VmView& v) { return v.migratable; });
    if (!has_migratable) continue;
    if (scores[n.index] > worst_score) {
      worst_score = scores[n.index];
      worst = n.index;
    }
  }
  if (!worst) return std::nullopt;

  // Smallest VM on the worst node — moving it costs the least downtime.
  const NodeView& from = ctx.nodes[*worst];
  const VmView* victim = nullptr;
  for (const VmView& v : from.vms) {
    if (!v.migratable) continue;
    if (victim == nullptr || v.cores < victim->cores) victim = &v;
  }
  if (victim == nullptr) return std::nullopt;

  // Best node that can host the victim.
  std::optional<std::size_t> best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const NodeView& n : ctx.nodes) {
    if (n.index == *worst || !n.powered_on) continue;
    if (n.cores_free < victim->cores || n.mem_free_gb < victim->mem_gb) continue;
    if (scores[n.index] < best_score) {
      best_score = scores[n.index];
      best = n.index;
    }
  }
  if (!best) return std::nullopt;
  if (worst_score - best_score < threshold) return std::nullopt;

  return MigrationAction{victim->id, *worst, *best, "aging_rebalance"};
}

}  // namespace baat::core
