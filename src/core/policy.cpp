#include "core/policy.hpp"

#include "core/policies.hpp"
#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace baat::core {

std::string_view policy_kind_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::EBuff: return "e-Buff";
    case PolicyKind::BaatS: return "BAAT-s";
    case PolicyKind::BaatH: return "BAAT-h";
    case PolicyKind::Baat: return "BAAT";
    case PolicyKind::BaatPlanned: return "BAAT-planned";
    case PolicyKind::BaatPredictive: return "BAAT-p";
  }
  return "?";
}

std::unique_ptr<AgingPolicy> make_policy(PolicyKind kind, const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::EBuff: return std::make_unique<EBuffPolicy>(params);
    case PolicyKind::BaatS: return std::make_unique<BaatSPolicy>(params);
    case PolicyKind::BaatH: return std::make_unique<BaatHPolicy>(params);
    case PolicyKind::Baat: return std::make_unique<BaatPolicy>(params, false);
    case PolicyKind::BaatPlanned:
      BAAT_REQUIRE(params.planned.cycles_plan > 0.0,
                   "BAAT-planned requires planned.cycles_plan > 0");
      return std::make_unique<BaatPolicy>(params, true);
    case PolicyKind::BaatPredictive:
      return std::make_unique<BaatPredictivePolicy>(params);
  }
  throw util::PreconditionError("unknown policy kind");
}

void record_actions(const Actions& actions) {
  // Per-call resolution (no static caching): the active registry is
  // per-thread under the sweep engine.
  obs::Registry& reg = obs::global_registry();
  obs::Counter& ticks = reg.counter("policy.control_ticks");
  obs::Counter& migrations = reg.counter("policy.decisions", "migration");
  obs::Counter& dvfs = reg.counter("policy.decisions", "dvfs");
  obs::Counter& charge = reg.counter("policy.decisions", "charge_priority");
  obs::Counter& floor = reg.counter("policy.decisions", "discharge_floor");
  ticks.inc();
  if (!actions.migrations.empty()) {
    migrations.inc(static_cast<double>(actions.migrations.size()));
  }
  if (!actions.dvfs.empty()) dvfs.inc(static_cast<double>(actions.dvfs.size()));
  if (!actions.charge_priority.empty()) charge.inc();
  if (!actions.discharge_floor_soc.empty()) floor.inc();
}

std::optional<std::size_t> place_least_loaded(const PolicyContext& ctx, double cores,
                                              double mem_gb) {
  std::optional<std::size_t> best;
  double best_free = -1.0;
  for (const NodeView& n : ctx.nodes) {
    if (!n.powered_on || n.cores_free < cores || n.mem_free_gb < mem_gb) continue;
    if (n.cores_free > best_free) {
      best_free = n.cores_free;
      best = n.index;
    }
  }
  return best;
}

}  // namespace baat::core
