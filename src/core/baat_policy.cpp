#include <algorithm>
#include <limits>
#include <numeric>

#include "core/hiding.hpp"
#include "core/planned.hpp"
#include "core/policies.hpp"
#include "core/slowdown.hpp"

namespace baat::core {

namespace {
constexpr double kMigrationCooldownS = 300.0;
/// Fleet-ranking weights: §VI-B compares policies "using Eq-6 with same
/// weighting factors", i.e. a neutral equal-weight blend.
constexpr AgingWeights kNeutralWeights{1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
}  // namespace

BaatPolicy::BaatPolicy(const PolicyParams& params, bool planned)
    : params_(params), planned_(planned) {}

double BaatPolicy::effective_soc_trigger(const NodeView& node) const {
  if (!planned_) return params_.slowdown.soc_trigger;
  // Eq 7: spend the remaining Ah budget evenly over the remaining planned
  // cycles; C_used is recovered from the node's NAT (NAT = C_used / C_total).
  const util::AmpereHours c_used{node.metrics_life.nat *
                                 params_.planned.total_throughput.value()};
  const DodGoal goal =
      planned_dod(params_.planned.total_throughput, c_used, params_.planned.cycles_plan,
                  params_.planned.nameplate);
  return goal.soc_trigger;
}

Actions BaatPolicy::on_control_tick(const PolicyContext& ctx) {
  if (last_migration_.size() != ctx.nodes.size()) {
    last_migration_.assign(ctx.nodes.size(), Seconds{-kMigrationCooldownS});
  }

  Actions actions;
  const std::vector<double> scores = node_scores(ctx, kNeutralWeights, params_.signals);

  // Track capacity headroom consumed by migrations proposed this tick so we
  // never over-commit a target node.
  std::vector<double> cores_free(ctx.nodes.size()), mem_free(ctx.nodes.size());
  for (const NodeView& n : ctx.nodes) {
    cores_free[n.index] = n.cores_free;
    mem_free[n.index] = n.mem_free_gb;
  }

  for (const NodeView& n : ctx.nodes) {
    const double trigger = effective_soc_trigger(n);
    switch (assess_slowdown(n, params_.slowdown, trigger)) {
      case SlowdownDecision::Act: {
        // Fig 9: prefer migration (no performance penalty), DVFS as fallback.
        bool migrated = false;
        if ((ctx.now - last_migration_[n.index]).value() >= kMigrationCooldownS) {
          if (const std::optional<VmView> victim = select_shed_vm(n)) {
            // Target: healthiest node (weighted aging) that can host the VM
            // and is not itself under its own trigger.
            std::optional<std::size_t> best;
            double best_score = std::numeric_limits<double>::infinity();
            for (const NodeView& other : ctx.nodes) {
              if (other.index == n.index || !other.powered_on) continue;
              if (cores_free[other.index] < victim->cores ||
                  mem_free[other.index] < victim->mem_gb) {
                continue;
              }
              if (other.soc < effective_soc_trigger(other) + 0.10) continue;
              if (scores[other.index] < best_score) {
                best_score = scores[other.index];
                best = other.index;
              }
            }
            if (best) {
              actions.migrations.push_back(
                  MigrationAction{victim->id, n.index, *best, "low_soc_hiding"});
              cores_free[*best] -= victim->cores;
              mem_free[*best] -= victim->mem_gb;
              last_migration_[n.index] = ctx.now;
              migrated = true;
            }
          }
        }
        if (!migrated && n.dvfs_level > 0) {
          actions.dvfs.push_back(DvfsAction{n.index, n.dvfs_level - 1, "low_soc_slowdown"});
        }
        break;
      }
      case SlowdownDecision::Restore:
        if (n.dvfs_level < n.dvfs_top) {
          actions.dvfs.push_back(DvfsAction{n.index, n.dvfs_level + 1, "soc_recovered"});
        }
        break;
      case SlowdownDecision::None:
        break;
    }
  }

  // Fig 8's consolidation-time rebalance: when the lifetime weighted-aging
  // spread across the fleet is large, move one VM from the worst node to the
  // healthiest one (at most one such move per control period).
  if (actions.migrations.empty()) {
    if (const auto move =
            propose_rebalance(ctx, kNeutralWeights, params_.signals,
                              params_.rebalance_threshold)) {
      if ((ctx.now - last_migration_[move->from]).value() >= kMigrationCooldownS) {
        actions.migrations.push_back(*move);
        last_migration_[move->from] = ctx.now;
      }
    }
  }

  // Planned aging "regulates the battery DoD" (§IV-D): enforce Eq 7's goal
  // as a hard discharge floor at 1 − DoD_goal, in addition to retargeting
  // the slowdown knee. Plain BAAT leaves the floor unset — Fig 9's response
  // is soft.
  if (planned_) {
    actions.discharge_floor_soc.resize(ctx.nodes.size());
    for (const NodeView& n : ctx.nodes) {
      actions.discharge_floor_soc[n.index] = effective_soc_trigger(n);
    }
  }

  // Aging-aware charge priority: the worst battery gets surplus solar first,
  // so it "can obtain more solar charging chances and has higher CF" (§VI-B).
  if (!params_.use_charge_priority) return actions;
  actions.charge_priority.resize(ctx.nodes.size());
  std::iota(actions.charge_priority.begin(), actions.charge_priority.end(),
            std::size_t{0});
  std::stable_sort(actions.charge_priority.begin(), actions.charge_priority.end(),
                   [&scores](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  return actions;
}

std::optional<std::size_t> BaatPolicy::place_vm(const PolicyContext& ctx, double cores,
                                                double mem_gb,
                                                const DemandProfile& demand) {
  return select_placement(ctx, cores, mem_gb, demand, params_.demand_thresholds,
                          params_.signals, params_.placement_weights_override);
}

void BaatPolicy::save_state(snapshot::SnapshotWriter& w) const {
  // The cooldown vector is sized lazily on the first control tick, so its
  // length (possibly zero) is itself state.
  w.write_u64(last_migration_.size());
  for (const Seconds& t : last_migration_) w.write_f64(t.value());
}

void BaatPolicy::load_state(snapshot::SnapshotReader& r) {
  const auto n = static_cast<std::size_t>(r.read_u64());
  last_migration_.clear();
  last_migration_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) last_migration_.push_back(Seconds{r.read_f64()});
}

}  // namespace baat::core
