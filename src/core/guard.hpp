#pragma once

// Degraded-mode telemetry guard — the controller-side defence the paper's
// prototype needed against its drifting NI sensors (§V-A): before BAAT acts
// on an estimated SoC, the guard checks that the estimate is plausible
// (range and rate-of-change) and fresh (the newest sensor sample behind it
// is recent). When a check fails, the controller falls back to its last
// known-good estimate, discounted exponentially toward a conservative SoC
// as the outage ages — stale confidence decays, it is not trusted forever.
//
// Every rejected estimate is observable: `policy.fallback{range|rate|stale}`
// counters plus a PolicyFallback trace event per degraded decision. The
// guard is disabled by default and enabled with the fault layer, so clean
// runs are byte-identical to builds without it.

#include <cstddef>
#include <vector>

#include "obs/metrics.hpp"
#include "snapshot/serialize.hpp"
#include "util/units.hpp"

namespace baat::core {

struct GuardParams {
  bool enabled = false;
  /// Plausible SoC estimate range; outside it the reading is rejected.
  double soc_floor = -0.001;
  double soc_ceil = 1.001;
  /// Largest believable |dSoC/dt| in 1/s. 1e-3/s is ~3.6 full swings per
  /// hour — far beyond any sustainable C-rate of the prototype's VRLA units.
  double max_rate_per_s = 1.0e-3;
  /// Newest sensor sample older than this ⇒ the estimate is stale.
  util::Seconds max_staleness{util::minutes(10.0)};
  /// Decay constant of the staleness discount toward `conservative_soc`.
  util::Seconds staleness_tau{util::minutes(30.0)};
  /// Where a blind controller assumes the battery sits — low enough to act
  /// cautiously, high enough not to declare an instant emergency.
  double conservative_soc = 0.25;
};

class TelemetryGuard {
 public:
  TelemetryGuard() = default;
  /// Registers the `policy.fallback` counters iff `params.enabled` — a
  /// disabled guard must not add rows to the metrics export.
  TelemetryGuard(const GuardParams& params, std::size_t nodes);

  [[nodiscard]] bool enabled() const { return params_.enabled; }

  /// Validate node `node`'s estimated SoC and return the value the policy
  /// should act on. `reading_time` is the timestamp of the newest sensor
  /// sample behind the estimate (stale injections keep old timestamps, so
  /// staleness is visible here); `now` is the decision time. Evaluations at
  /// the same `now` are cached, so calling twice per tick cannot double-count
  /// fallbacks or double-advance state.
  double filter_soc(std::size_t node, double raw_soc, util::Seconds reading_time,
                    util::Seconds now);

  /// Fallbacks taken so far (all nodes, all reasons).
  [[nodiscard]] std::uint64_t fallback_count() const { return fallbacks_; }

  /// Checkpoint support: per-node last-good/eval state and the fallback
  /// total. The `policy.fallback` counter handles stay bound to the live
  /// registry (their values restore with the registry itself).
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  struct NodeState {
    bool has_good = false;
    double last_good = 1.0;
    double last_good_time = 0.0;
    double last_eval = -1.0;   ///< dedupe key: decision timestamp
    double last_result = 1.0;
  };

  GuardParams params_{};
  std::vector<NodeState> nodes_;
  std::uint64_t fallbacks_ = 0;
  obs::Counter* fallback_range_ = nullptr;
  obs::Counter* fallback_rate_ = nullptr;
  obs::Counter* fallback_stale_ = nullptr;
};

}  // namespace baat::core
