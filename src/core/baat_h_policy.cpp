#include <algorithm>
#include <limits>

#include "core/hiding.hpp"
#include "core/policies.hpp"
#include "core/slowdown.hpp"

namespace baat::core {

namespace {
constexpr double kMigrationCooldownS = 1800.0;
/// Fleet-ranking weights for identifying the fastest-aging node.
constexpr AgingWeights kNeutralWeights{1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
}  // namespace

BaatHPolicy::BaatHPolicy(const PolicyParams& params)
    : params_(params), rng_(util::Rng::stream(params.seed, "baat-h")) {}

Actions BaatHPolicy::on_control_tick(const PolicyContext& ctx) {
  if (last_migration_.size() != ctx.nodes.size()) {
    last_migration_.assign(ctx.nodes.size(), Seconds{-kMigrationCooldownS});
  }

  Actions actions;
  if (ctx.nodes.size() < 2) return actions;

  // Hiding (Fig 8): identify the fastest-aging node by lifetime weighted
  // aging and migrate work off it. BAAT-h can rank its *own* nodes' aging,
  // but it "lacks the holistic battery node aging information" for target
  // selection (§VI-B) — so the destination is drawn randomly from whatever
  // has capacity and SoC headroom, which is what makes it "random and low
  // efficiency" with "frequent VM stop and restart" overhead (§VI-F).
  const std::vector<double> scores = node_scores(ctx, kNeutralWeights, params_.signals);
  std::size_t worst = 0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[worst]) worst = i;
    if (scores[i] < scores[best]) best = i;
  }
  if (scores[worst] - scores[best] < params_.rebalance_threshold) return actions;
  if ((ctx.now - last_migration_[worst]).value() < kMigrationCooldownS) return actions;

  // Move the smallest migratable VM — cautious, since the target is blind.
  const NodeView& from = ctx.nodes[worst];
  const VmView* victim = nullptr;
  for (const VmView& v : from.vms) {
    if (!v.migratable) continue;
    if (victim == nullptr || v.cores < victim->cores) victim = &v;
  }
  if (victim == nullptr) return actions;

  std::vector<std::size_t> feasible;
  for (const NodeView& other : ctx.nodes) {
    if (other.index == worst || !other.powered_on) continue;
    if (other.cores_free < victim->cores || other.mem_free_gb < victim->mem_gb) continue;
    if (other.soc < params_.slowdown.soc_trigger + 0.10) continue;
    feasible.push_back(other.index);
  }
  if (feasible.empty()) return actions;

  const std::size_t to = feasible[rng_.uniform_index(feasible.size())];
  actions.migrations.push_back(MigrationAction{victim->id, worst, to, "low_soc_hiding"});
  last_migration_[worst] = ctx.now;
  return actions;
}

std::optional<std::size_t> BaatHPolicy::place_vm(const PolicyContext& ctx, double cores,
                                                 double mem_gb,
                                                 const DemandProfile& demand) {
  // Placement is aging-aware (it is the "hiding" half of BAAT).
  return select_placement(ctx, cores, mem_gb, demand, params_.demand_thresholds,
                          params_.signals, params_.placement_weights_override);
}

void BaatHPolicy::save_state(snapshot::SnapshotWriter& w) const {
  rng_.save_state(w);
  w.write_u64(last_migration_.size());
  for (const Seconds& t : last_migration_) w.write_f64(t.value());
}

void BaatHPolicy::load_state(snapshot::SnapshotReader& r) {
  rng_.load_state(r);
  const auto n = static_cast<std::size_t>(r.read_u64());
  last_migration_.clear();
  last_migration_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) last_migration_.push_back(Seconds{r.read_f64()});
}

}  // namespace baat::core
