#include "core/maintenance.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::core {

MaintenancePlan plan_replacements(const std::vector<NodeWear>& fleet,
                                  const MaintenancePlanParams& params,
                                  const CostParams& cost) {
  BAAT_REQUIRE(params.horizon_days > 0.0, "horizon must be positive");
  BAAT_REQUIRE(params.batching_window_days >= 0.0, "batching window must be >= 0");

  // Expand each node's periodic replacements over the horizon.
  struct Due {
    double day;
    std::size_t node;
  };
  std::vector<Due> due;
  for (const NodeWear& w : fleet) {
    BAAT_REQUIRE(w.eol_day > 0.0, "projected end-of-life must be positive");
    for (double d = w.eol_day; d < params.horizon_days; d += w.eol_day) {
      due.push_back(Due{d, w.node});
    }
  }
  std::sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
    return a.day < b.day || (a.day == b.day && a.node < b.node);
  });

  MaintenancePlan plan;
  plan.total_replacements = static_cast<double>(due.size());

  // Greedy batching: a visit at the first due date absorbs everything due
  // within the window (serviced slightly early — safe, never late).
  std::size_t i = 0;
  while (i < due.size()) {
    ReplacementEvent visit;
    visit.day = due[i].day;
    while (i < due.size() && due[i].day <= visit.day + params.batching_window_days) {
      visit.nodes.push_back(due[i].node);
      ++i;
    }
    plan.visits.push_back(std::move(visit));
  }

  const double unit_cost =
      cost.battery_unit_cost.value() * plan.total_replacements;
  const double visit_cost =
      params.truck_roll_cost.value() * static_cast<double>(plan.visits.size());
  plan.total_cost = Dollars{unit_cost + visit_cost};
  return plan;
}

std::size_t visits_saved(const MaintenancePlan& plan) {
  std::size_t total_units = 0;
  for (const ReplacementEvent& v : plan.visits) total_units += v.nodes.size();
  return total_units - plan.visits.size();
}

}  // namespace baat::core
