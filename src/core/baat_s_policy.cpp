#include "core/policies.hpp"
#include "core/slowdown.hpp"

namespace baat::core {

Actions BaatSPolicy::on_control_tick(const PolicyContext& ctx) {
  Actions actions;
  for (const NodeView& n : ctx.nodes) {
    switch (assess_slowdown(n, params_.slowdown)) {
      case SlowdownDecision::Act:
        // DVFS-only slowdown: step one level down ("perform DVFS ... to
        // reduce power demand and promote the chances of battery charging",
        // §IV-C.2).
        if (n.dvfs_level > 0) {
          actions.dvfs.push_back(DvfsAction{n.index, n.dvfs_level - 1, "low_soc_slowdown"});
        }
        break;
      case SlowdownDecision::Restore:
        if (n.dvfs_level < n.dvfs_top) {
          actions.dvfs.push_back(DvfsAction{n.index, n.dvfs_level + 1, "soc_recovered"});
        }
        break;
      case SlowdownDecision::None:
        break;
    }
  }
  return actions;
}

std::optional<std::size_t> BaatSPolicy::place_vm(const PolicyContext& ctx, double cores,
                                                 double mem_gb,
                                                 const DemandProfile& /*demand*/) {
  // BAAT-s has no placement intelligence (Table 4): least-loaded, like e-Buff.
  return place_least_loaded(ctx, cores, mem_gb);
}

}  // namespace baat::core
