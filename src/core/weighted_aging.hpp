#pragma once

// Eq 6: Weighted_aging = a·ΔCF + b·ΔPC + c·ΔNAT.
//
// The metrics have different natural scales and polarities (a *low* CF is
// bad, a *high* PC — in the literal Eq 4 convention — is bad, a high NAT is
// bad), so we first turn each into a non-negative "aging signal" that grows
// with aging stress, then apply the Table 3 weights. A larger weighted value
// means a faster-aging node; BAAT places load on the node with the smallest
// value (Fig 8).

#include <cstddef>
#include <span>
#include <vector>

#include "core/demand.hpp"
#include "telemetry/metrics.hpp"

namespace baat::core {

using telemetry::AgingMetrics;

struct AgingSignalParams {
  /// CF below this indicates under-recharge (normal band is 1–1.3, §III-B).
  double cf_low = 1.05;
  /// CF above this indicates chronic float/over-charge.
  double cf_high = 1.30;
  /// Weight of over-charge deviation relative to under-charge.
  double cf_over_weight = 0.5;
  /// NAT scale factor: NAT is a life-fraction (~0.1 over six months) while
  /// the other signals are O(1) ratios; this brings it into the same band.
  double nat_scale = 3.0;
};

/// Non-negative aging-stress signals derived from the raw metrics.
struct AgingSignals {
  double s_cf = 0.0;
  double s_pc = 0.0;
  double s_nat = 0.0;
};

AgingSignals aging_signals(const AgingMetrics& m, const AgingSignalParams& p = {});

/// Eq 6 with Table 3 weights.
double weighted_aging(const AgingMetrics& m, const AgingWeights& w,
                      const AgingSignalParams& p = {});

/// Node indices sorted by weighted aging, ascending (healthiest first) —
/// the ranking step of Fig 8.
std::vector<std::size_t> rank_by_weighted_aging(std::span<const AgingMetrics> metrics,
                                                const AgingWeights& w,
                                                const AgingSignalParams& p = {});

}  // namespace baat::core
