#pragma once

// Front-end battery sensors (§V-A.2). The prototype measures voltage,
// current and surface temperature of each battery through NI hardware;
// Table 2 lists exactly these variables plus working time. We sample the
// same observables, with optional Gaussian measurement noise so the control
// path never quietly depends on ground truth it would not have in hardware.

#include "battery/battery.hpp"
#include "snapshot/serialize.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace baat::telemetry {

using util::Amperes;
using util::Celsius;
using util::Seconds;
using util::Volts;

/// One sensor sample — the Table 2 schema.
struct SensorReading {
  Seconds time{0.0};
  Volts voltage{0.0};
  Amperes current{0.0};   ///< >0 discharge
  Celsius temperature{0.0};
};

/// Checkpoint helpers shared by everything that retains readings (the power
/// table's history ring, the fault injector's stuck/last slots).
inline void save_state(snapshot::SnapshotWriter& w, const SensorReading& s) {
  w.write_f64(s.time.value());
  w.write_f64(s.voltage.value());
  w.write_f64(s.current.value());
  w.write_f64(s.temperature.value());
}

inline void load_state(snapshot::SnapshotReader& r, SensorReading& s) {
  s.time = Seconds{r.read_f64()};
  s.voltage = Volts{r.read_f64()};
  s.current = Amperes{r.read_f64()};
  s.temperature = Celsius{r.read_f64()};
}

struct SensorNoise {
  double voltage_sigma = 0.01;   ///< volts
  double current_sigma = 0.05;   ///< amperes
  double temperature_sigma = 0.2;  ///< kelvin
};

class BatterySensor {
 public:
  BatterySensor(SensorNoise noise, util::Rng rng);

  /// Sample the battery as it carries `actual_current` at time `now`.
  SensorReading read(const battery::Battery& bat, Amperes actual_current, Seconds now);

  /// Checkpoint support: only the noise RNG advances at runtime.
  void save_state(snapshot::SnapshotWriter& w) const { rng_.save_state(w); }
  void load_state(snapshot::SnapshotReader& r) { rng_.load_state(r); }

 private:
  SensorNoise noise_;
  util::Rng rng_;
};

}  // namespace baat::telemetry
