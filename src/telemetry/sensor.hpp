#pragma once

// Front-end battery sensors (§V-A.2). The prototype measures voltage,
// current and surface temperature of each battery through NI hardware;
// Table 2 lists exactly these variables plus working time. We sample the
// same observables, with optional Gaussian measurement noise so the control
// path never quietly depends on ground truth it would not have in hardware.

#include "battery/battery.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace baat::telemetry {

using util::Amperes;
using util::Celsius;
using util::Seconds;
using util::Volts;

/// One sensor sample — the Table 2 schema.
struct SensorReading {
  Seconds time{0.0};
  Volts voltage{0.0};
  Amperes current{0.0};   ///< >0 discharge
  Celsius temperature{0.0};
};

struct SensorNoise {
  double voltage_sigma = 0.01;   ///< volts
  double current_sigma = 0.05;   ///< amperes
  double temperature_sigma = 0.2;  ///< kelvin
};

class BatterySensor {
 public:
  BatterySensor(SensorNoise noise, util::Rng rng);

  /// Sample the battery as it carries `actual_current` at time `now`.
  SensorReading read(const battery::Battery& bat, Amperes actual_current, Seconds now);

 private:
  SensorNoise noise_;
  util::Rng rng_;
};

}  // namespace baat::telemetry
