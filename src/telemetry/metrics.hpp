#pragma once

// The five battery aging metrics of §III, computed from a PowerTable:
//
//   NAT — normalized Ah throughput (Eq 1)
//   CF  — charge factor (Eq 2)
//   PC  — partial cycling (Eq 3–4)
//   DDT — deep discharge time (Eq 5)
//   DR  — discharge rate (§III-E), reported as a C-rate
//
// Note on PC's sign convention: Eq 4 weights the low-SoC range highest, so
// by the formula a *higher* PC means more Ah cycled at low SoC (worse). The
// paper's evaluation narrative, however, reports PC with "higher = healthier"
// (sunny days have high PC, aged e-Buff batteries have a *reduced* PC,
// §VI-A/B). We expose both: `pc` is the literal Eq 4 value and `pc_health`
// is the inverted presentation the figures use. EXPERIMENTS.md documents
// this discrepancy in the paper.

#include "telemetry/power_table.hpp"
#include "util/units.hpp"

namespace baat::telemetry {

struct MetricParams {
  /// CAP_nom of Eq 1: the nominal life-long Ah output of the unit. We take
  /// nameplate capacity × rated full-DoD cycles (§III-A, [31, 32]).
  AmpereHours lifetime_throughput{35.0 * 1000.0};
  /// Nameplate capacity, for expressing DR as a C-rate.
  AmpereHours nameplate{35.0};
};

struct AgingMetrics {
  double nat = 0.0;        ///< Eq 1, fraction of life-long throughput used
  double cf = 1.0;         ///< Eq 2, charge/discharge Ah ratio
  double pc = 0.25;        ///< Eq 4 literal value, in [0.25, 1]; higher = worse
  double pc_health = 1.0;  ///< inverted presentation, in [0, 1]; higher = better
  double ddt = 0.0;        ///< Eq 5, fraction of time below 40% SoC
  double dr_c_rate = 0.0;  ///< recent discharge current / nameplate capacity
};

/// Compute all five metrics from a power table's accumulators.
AgingMetrics compute_metrics(const PowerTable& table, const MetricParams& params);

}  // namespace baat::telemetry
