#pragma once

// The per-battery "power table" (Table 2, Fig 7): the utilization history
// log the BAAT controller derives all five aging metrics from. Everything
// here is computed from *sensor readings only* — SoC is estimated from the
// measured voltage and current the way the prototype's control server does,
// never read from the battery's internal state.

#include <deque>

#include "battery/chemistry.hpp"
#include "telemetry/sensor.hpp"
#include "util/units.hpp"

namespace baat::telemetry {

using util::AmpereHours;
using util::Seconds;

/// SoC estimation scheme (ablated by bench/ablation_estimator).
enum class SocEstimation {
  /// Coulomb counting anchored to voltage readings at near-rest currents —
  /// robust to the aged cell's resistance growth (the default).
  RestAnchoredCoulomb,
  /// Naive voltage-lookup with a nominal I·R correction — biases low on
  /// aged cells under load.
  VoltageOnly,
};

struct PowerTableParams {
  battery::LeadAcidParams chemistry{};  ///< nominal chemistry for SoC estimation
  /// OCV curve shape used to invert voltage readings into SoC. LFP's flat
  /// plateau makes VoltageOnly estimation nearly blind over mid-SoC — the
  /// stress case for voltage-based estimators.
  battery::OcvCurve ocv_curve = battery::OcvCurve::LeadAcidQuadratic;
  SocEstimation estimation = SocEstimation::RestAnchoredCoulomb;
  /// Exponential window for the discharge-rate metric (DR, §III-E).
  Seconds dr_window{util::minutes(10.0)};
  /// Ring-buffer depth of raw samples kept for inspection/debugging.
  std::size_t history_depth = 1024;
};

class PowerTable {
 public:
  explicit PowerTable(PowerTableParams params);

  /// Fold one sensor reading covering `dt` into the log.
  void record(const SensorReading& reading, Seconds dt);

  // --- accumulators the metric engine consumes (Eq 1–5 numerators) ---------
  [[nodiscard]] AmpereHours ah_discharged() const { return ah_discharged_; }
  [[nodiscard]] AmpereHours ah_charged() const { return ah_charged_; }
  /// Discharge Ah per Eq 3 SoC range: 0=A [80,100], 1=B [60,80), 2=C [40,60), 3=D [0,40).
  [[nodiscard]] AmpereHours ah_in_range(std::size_t range) const;
  [[nodiscard]] Seconds time_total() const { return time_total_; }
  [[nodiscard]] Seconds time_below_40() const { return time_below_40_; }
  /// Exponentially-weighted recent discharge current (amperes), the DR signal.
  [[nodiscard]] double recent_discharge_amps() const { return dr_ewma_; }

  /// SoC estimated from the latest reading (voltage + I·R correction).
  [[nodiscard]] double estimated_soc() const { return soc_estimate_; }

  [[nodiscard]] const std::deque<SensorReading>& history() const { return history_; }
  [[nodiscard]] const PowerTableParams& params() const { return params_; }

  /// Checkpoint support: accumulators, the EWMA/SoC estimate and the raw
  /// sample ring. Params are configuration and are rebuilt by the scenario.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  PowerTableParams params_;
  AmpereHours ah_discharged_{0.0};
  AmpereHours ah_charged_{0.0};
  AmpereHours ah_by_range_[4] = {AmpereHours{0}, AmpereHours{0}, AmpereHours{0},
                                 AmpereHours{0}};
  Seconds time_total_{0.0};
  Seconds time_below_40_{0.0};
  double dr_ewma_ = 0.0;
  double soc_estimate_ = 1.0;
  std::deque<SensorReading> history_;
};

}  // namespace baat::telemetry
