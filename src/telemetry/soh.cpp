#include "telemetry/soh.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace baat::telemetry {

SohEstimator::SohEstimator(double eol_capacity) : eol_capacity_(eol_capacity) {
  BAAT_REQUIRE(eol_capacity > 0.0 && eol_capacity < 1.0,
               "end-of-life capacity must be in (0, 1)");
}

void SohEstimator::add_probe(double day, double capacity_fraction) {
  BAAT_REQUIRE(day >= 0.0, "day must be >= 0");
  // 0 is a legal measurement — an open-cell failure probes as zero capacity
  // (it used to be rejected here, which crashed the monthly probe feed the
  // first time a dead battery was tested).
  BAAT_REQUIRE(capacity_fraction >= 0.0 && capacity_fraction <= 1.2,
               "capacity fraction out of plausible range");
  BAAT_REQUIRE(samples_.empty() || day > samples_.back().day,
               "probes must arrive in chronological order");
  samples_.push_back(SohSample{day, capacity_fraction});
}

void SohEstimator::fit(double& slope, double& intercept) const {
  BAAT_REQUIRE(samples_.size() >= 2, "fit needs at least two probes");
  const auto n = static_cast<double>(samples_.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (const SohSample& s : samples_) {
    sx += s.day;
    sy += s.capacity;
    sxx += s.day * s.day;
    sxy += s.day * s.capacity;
  }
  const double denom = n * sxx - sx * sx;
  BAAT_REQUIRE(std::fabs(denom) > 1e-12, "probe days are degenerate");
  slope = (n * sxy - sx * sy) / denom;
  intercept = (sy - slope * sx) / n;
}

double SohEstimator::capacity_at(double day) const {
  double slope = 0.0;
  double intercept = 0.0;
  fit(slope, intercept);
  return slope * day + intercept;
}

double SohEstimator::fade_per_day() const {
  double slope = 0.0;
  double intercept = 0.0;
  fit(slope, intercept);
  return std::max(0.0, -slope);
}

std::optional<double> SohEstimator::projected_eol_day() const {
  if (samples_.size() < 2) return std::nullopt;
  double slope = 0.0;
  double intercept = 0.0;
  fit(slope, intercept);
  if (slope >= -1e-12) return std::nullopt;  // no observed fade
  return (eol_capacity_ - intercept) / slope;
}

bool SohEstimator::measured_eol() const {
  return std::any_of(samples_.begin(), samples_.end(), [this](const SohSample& s) {
    return s.capacity <= eol_capacity_;
  });
}

void SohEstimator::save_state(snapshot::SnapshotWriter& w) const {
  w.write_f64(eol_capacity_);
  w.write_u64(samples_.size());
  for (const SohSample& s : samples_) {
    w.write_f64(s.day);
    w.write_f64(s.capacity);
  }
}

void SohEstimator::load_state(snapshot::SnapshotReader& r) {
  eol_capacity_ = r.read_f64();
  const auto n = r.read_u64();
  samples_.clear();
  samples_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    SohSample s;
    s.day = r.read_f64();
    s.capacity = r.read_f64();
    samples_.push_back(s);
  }
}

}  // namespace baat::telemetry
