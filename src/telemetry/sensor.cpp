#include "telemetry/sensor.hpp"

namespace baat::telemetry {

BatterySensor::BatterySensor(SensorNoise noise, util::Rng rng)
    : noise_(noise), rng_(rng) {}

SensorReading BatterySensor::read(const battery::Battery& bat, Amperes actual_current,
                                  Seconds now) {
  SensorReading r;
  r.time = now;
  r.voltage = Volts{bat.terminal_voltage(actual_current).value() +
                    rng_.normal(0.0, noise_.voltage_sigma)};
  r.current = Amperes{actual_current.value() + rng_.normal(0.0, noise_.current_sigma)};
  r.temperature =
      Celsius{bat.temperature().value() + rng_.normal(0.0, noise_.temperature_sigma)};
  return r;
}

}  // namespace baat::telemetry
