#include "telemetry/power_table.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace baat::telemetry {

PowerTable::PowerTable(PowerTableParams params) : params_(std::move(params)) {
  BAAT_REQUIRE(params_.dr_window.value() > 0.0, "DR window must be positive");
}

void PowerTable::record(const SensorReading& reading, Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");

  // SoC estimate. Default scheme: rest-anchored coulomb counting, the
  // standard BMS approach the prototype's control server can implement from
  // Table 2's sensors — integrate the measured current against the
  // nameplate capacity, and pull the estimate toward the voltage-derived
  // value only when the current is small (under load the ohmic drop of an
  // *aged* cell would bias a pure voltage estimate badly, since the
  // controller only knows the nominal internal resistance).
  const double ocv_est = reading.voltage.value() +
                         reading.current.value() * params_.chemistry.r_internal_ohms;
  const double soc_v = battery::soc_from_voltage(params_.chemistry,
                                                 util::Volts{ocv_est},
                                                 params_.ocv_curve);
  if (params_.estimation == SocEstimation::VoltageOnly) {
    soc_estimate_ = soc_v;
  } else {
    soc_estimate_ -= reading.current.value() * dt.value() / 3600.0 /
                     params_.chemistry.capacity_c20.value();
    soc_estimate_ = util::clamp01(soc_estimate_);
    const double rest_threshold = 0.1 * params_.chemistry.capacity_c20.value();
    if (std::fabs(reading.current.value()) < rest_threshold) {
      // Per-minute-scale blend: anchors fully within a few idle minutes.
      const double alpha = 1.0 - std::exp(-dt.value() / 300.0);
      soc_estimate_ += alpha * (soc_v - soc_estimate_);
    }
  }

  const double i = reading.current.value();
  const AmpereHours q{std::fabs(i) * dt.value() / 3600.0};
  if (i > 0.0) {
    ah_discharged_ += q;
    std::size_t range = 3;
    if (soc_estimate_ >= 0.8) {
      range = 0;
    } else if (soc_estimate_ >= 0.6) {
      range = 1;
    } else if (soc_estimate_ >= 0.4) {
      range = 2;
    }
    ah_by_range_[range] += q;
  } else if (i < 0.0) {
    ah_charged_ += q;
  }

  time_total_ += dt;
  if (soc_estimate_ < 0.40) time_below_40_ += dt;

  // DR: exponentially weighted discharge current over the configured window.
  const double alpha = 1.0 - std::exp(-dt.value() / params_.dr_window.value());
  const double discharge = std::max(0.0, i);
  dr_ewma_ += alpha * (discharge - dr_ewma_);

  history_.push_back(reading);
  while (history_.size() > params_.history_depth) history_.pop_front();
}

AmpereHours PowerTable::ah_in_range(std::size_t range) const {
  BAAT_REQUIRE(range < 4, "SoC range index must be 0..3");
  return ah_by_range_[range];
}

void PowerTable::save_state(snapshot::SnapshotWriter& w) const {
  w.write_f64(ah_discharged_.value());
  w.write_f64(ah_charged_.value());
  for (const AmpereHours& ah : ah_by_range_) w.write_f64(ah.value());
  w.write_f64(time_total_.value());
  w.write_f64(time_below_40_.value());
  w.write_f64(dr_ewma_);
  w.write_f64(soc_estimate_);
  w.write_u64(history_.size());
  // Qualified: the member function would otherwise hide the free helper.
  for (const SensorReading& s : history_) telemetry::save_state(w, s);
}

void PowerTable::load_state(snapshot::SnapshotReader& r) {
  ah_discharged_ = AmpereHours{r.read_f64()};
  ah_charged_ = AmpereHours{r.read_f64()};
  for (AmpereHours& ah : ah_by_range_) ah = AmpereHours{r.read_f64()};
  time_total_ = Seconds{r.read_f64()};
  time_below_40_ = Seconds{r.read_f64()};
  dr_ewma_ = r.read_f64();
  soc_estimate_ = r.read_f64();
  const auto n = r.read_u64();
  history_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    SensorReading s;
    telemetry::load_state(r, s);
    history_.push_back(s);
  }
}

}  // namespace baat::telemetry
