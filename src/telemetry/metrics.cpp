#include "telemetry/metrics.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::telemetry {

AgingMetrics compute_metrics(const PowerTable& table, const MetricParams& params) {
  BAAT_REQUIRE(params.lifetime_throughput.value() > 0.0,
               "lifetime throughput must be positive");
  BAAT_REQUIRE(params.nameplate.value() > 0.0, "nameplate must be positive");

  AgingMetrics m;

  // Eq 1 — NAT = Q_AT / CAP_nom.
  m.nat = table.ah_discharged().value() / params.lifetime_throughput.value();

  // Eq 2 — CF = Ah_charge / Ah_discharge. With no discharge history yet the
  // ratio is undefined; report the nominal 1.0 and let callers treat the
  // node as unexercised. Clamp to a sane band so one sensor glitch cannot
  // produce an absurd ranking signal.
  const double discharged = table.ah_discharged().value();
  if (discharged > 1e-9) {
    m.cf = std::clamp(table.ah_charged().value() / discharged, 0.0, 5.0);
  } else {
    m.cf = 1.0;
  }

  // Eq 3–4 — PC: probability-weighted SoC-range mix of the discharge Ah.
  if (discharged > 1e-9) {
    const double pa = table.ah_in_range(0).value() / discharged;
    const double pb = table.ah_in_range(1).value() / discharged;
    const double pc_range = table.ah_in_range(2).value() / discharged;
    const double pd = table.ah_in_range(3).value() / discharged;
    m.pc = (pa * 1.0 + pb * 2.0 + pc_range * 3.0 + pd * 4.0) / 4.0;
    // Inverted presentation: 1 when all output happens at high SoC (range A),
    // 0 when everything happens deep in range D.
    m.pc_health = (1.0 - m.pc) / 0.75 * 1.0;
    m.pc_health = std::clamp(m.pc_health, 0.0, 1.0);
  }

  // Eq 5 — DDT: time fraction below 40% SoC.
  const double t_total = table.time_total().value();
  if (t_total > 0.0) {
    m.ddt = table.time_below_40().value() / t_total;
  }

  // DR as a C-rate (amperes per nameplate Ah).
  m.dr_c_rate = table.recent_discharge_amps() / params.nameplate.value();

  return m;
}

}  // namespace baat::telemetry
