#pragma once

// Online state-of-health estimation from periodic capacity probes — the
// software side of the paper's monthly instrumented measurements (Figs 3–5)
// and the input to §IV-D's "proactively predicts battery lifetime". A least
// squares line through the probe history gives the fade rate and the
// projected end-of-life crossing.

#include <optional>
#include <vector>

#include "snapshot/serialize.hpp"

namespace baat::telemetry {

struct SohSample {
  double day = 0.0;       ///< days since deployment
  double capacity = 1.0;  ///< measured capacity fraction of nameplate
};

class SohEstimator {
 public:
  /// `eol_capacity`: the end-of-life line, 0.8 per [30].
  explicit SohEstimator(double eol_capacity = 0.80);

  void add_probe(double day, double capacity_fraction);

  [[nodiscard]] std::size_t probe_count() const { return samples_.size(); }

  /// Least-squares capacity estimate at `day`; requires >= 2 probes.
  [[nodiscard]] double capacity_at(double day) const;
  /// Fitted fade per day (>= 0 clamped); requires >= 2 probes.
  [[nodiscard]] double fade_per_day() const;
  /// Projected day the fit crosses end-of-life; nullopt while the fit shows
  /// no fade (or with fewer than 2 probes).
  [[nodiscard]] std::optional<double> projected_eol_day() const;
  /// True once a *measured* probe has crossed the end-of-life line.
  [[nodiscard]] bool measured_eol() const;

  [[nodiscard]] const std::vector<SohSample>& samples() const { return samples_; }

  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  void fit(double& slope, double& intercept) const;

  double eol_capacity_;
  std::vector<SohSample> samples_;
};

}  // namespace baat::telemetry
