#pragma once

// Facade for the observability layer: metrics registry (obs/metrics.hpp),
// structured event trace (obs/trace.hpp) and scoped hot-path timers
// (obs/timer.hpp). See DESIGN.md "Observability" for the event taxonomy
// and the determinism contract.

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace baat::obs {

/// Zero every metric, clear the trace ring and turn tracing/profiling off.
/// Metric entries (and therefore cached handles) survive.
void reset_all();

}  // namespace baat::obs
