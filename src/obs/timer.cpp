#include "obs/timer.hpp"

namespace baat::obs {

Histogram& profile_histogram(const std::string& site) {
  return global_registry().histogram("profile." + site + "_ns", duration_bounds_ns());
}

}  // namespace baat::obs
