#pragma once

// Metrics registry — the twin's replacement for the paper's NI-sensor power
// tables as a *runtime* window: named counters, gauges and fixed-bucket
// histograms with deterministic JSON/CSV export.
//
// Design rules (they are what make the layer safe to leave on):
//  * Handles are stable: the registry never erases an entry, so a
//    `Counter&` resolved once (e.g. a static local in a hot path, or a
//    member pointer in Cluster) stays valid for the life of the process.
//    `reset()` zeroes values in place.
//  * Exports are deterministic: entries iterate in sorted name order and
//    numbers are printed with a fixed format, so two identically seeded
//    runs produce byte-identical files (guarded by a regression test).
//  * No locks, no atomics: a registry is only ever touched by one thread.
//    The parallel sweep engine (sim/sweep.hpp) gives each job its own
//    registry via the thread-local override below and merges them into the
//    caller's registry in job-index order at join, so concurrency never
//    changes an exported byte.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "snapshot/serialize.hpp"
#include "util/stats.hpp"

namespace baat::obs {

/// Monotonically increasing value (events, ticks, decisions).
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  /// Fold another counter in (sweep join): counts add.
  void merge(const Counter& other) { value_ += other.value_; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

  void save_state(snapshot::SnapshotWriter& w) const { w.write_f64(value_); }
  void load_state(snapshot::SnapshotReader& r) { value_ = r.read_f64(); }

 private:
  double value_ = 0.0;
};

/// Last-write-wins value (SoC, health, queue depth).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Fold another gauge in (sweep join): last writer wins, so merging in
  /// job-index order leaves the highest-index job's value.
  void merge(const Gauge& other) { value_ = other.value_; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

  void save_state(snapshot::SnapshotWriter& w) const { w.write_f64(value_); }
  void load_state(snapshot::SnapshotReader& r) { value_ = r.read_f64(); }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of
/// the finite buckets, ascending; one implicit overflow bucket catches the
/// rest. Tracks count/sum/min/max alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double v);
  /// Fold another histogram with identical bounds in (sweep join). The
  /// count/sum/min/max summary rides on util::RunningStats::merge.
  void merge(const Histogram& other);
  [[nodiscard]] std::size_t count() const { return stats_.count(); }
  /// Exact accumulated sum (kept separately from the Welford state so the
  /// exported value does not pick up mean-reconstruction rounding).
  [[nodiscard]] double sum() const { return sum_; }
  /// Valid only when count() > 0.
  [[nodiscard]] double min() const { return stats_.count() == 0 ? 0.0 : stats_.min(); }
  [[nodiscard]] double max() const { return stats_.count() == 0 ? 0.0 : stats_.max(); }
  [[nodiscard]] double mean() const {
    return stats_.count() == 0 ? 0.0 : sum_ / static_cast<double>(stats_.count());
  }

  /// Finite buckets plus the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  /// Upper edge of bucket `b`; the last bucket has no finite edge and
  /// returns +infinity.
  [[nodiscard]] double bucket_upper(std::size_t b) const;
  [[nodiscard]] std::size_t bucket_value(std::size_t b) const { return counts_[b]; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  void reset();

  /// Checkpoint support: load_state replaces bounds and counts wholesale,
  /// so a registry restore can get-or-create the entry with placeholder
  /// bounds and then overwrite it.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
  util::RunningStats stats_;
  double sum_ = 0.0;
};

/// Named metric store. Metric names use dotted paths with an optional
/// `{label}` dimension suffix, e.g. `policy.decisions{migration}` or
/// `node.health{3}`.
class Registry {
 public:
  Registry();
  // Every special member that destroys or transfers entry nodes retires the
  // involved ids (both sides of a move): a cached handle (entry pointer +
  // registry id) can only validate while its nodes are alive and owned by
  // the registry presenting that id. reset() and merge() keep nodes, and
  // therefore keep the id.
  Registry(const Registry& other);
  Registry(Registry&& other) noexcept;
  Registry& operator=(const Registry& other);
  Registry& operator=(Registry&& other) noexcept;
  ~Registry() = default;

  /// Process-unique identity of this registry's current entry set. Hot
  /// paths intern handles (`Counter*`) once and revalidate with one integer
  /// compare instead of a map lookup per tick — keying on id rather than
  /// object address is what makes the cache sound when a registry dies and
  /// another is allocated at the same address (the parallel sweep does
  /// exactly that).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  Counter& counter(const std::string& name);
  Counter& counter(const std::string& name, const std::string& label);
  Gauge& gauge(const std::string& name);
  Gauge& gauge(const std::string& name, const std::string& label);
  /// Registers the histogram on first use; later calls with the same name
  /// return the existing instance (the bounds argument is then ignored).
  Histogram& histogram(const std::string& name, const std::vector<double>& upper_bounds);

  /// Lookup without registering; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Read-only iteration (sorted by name) for exporters and reports.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zero every metric in place. Entries (and therefore handles) survive.
  void reset();

  /// Fold `other` in: counters add, gauges take the incoming value,
  /// histograms merge bucket-wise (bounds must match). Registering absent
  /// entries as needed. The sweep engine calls this once per job in
  /// job-index order, which keeps merged exports deterministic.
  void merge(const Registry& other);

  /// Checkpoint support. save_state writes every entry; load_state
  /// get-or-creates each saved entry and overwrites its value in place, so
  /// cached handles stay valid and entries registered before the restore
  /// (e.g. during Cluster construction) pick up their checkpointed values.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

  /// Deterministic exports: sorted names, fixed number formatting.
  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
  [[nodiscard]] std::string json() const;
  [[nodiscard]] std::string csv() const;

 private:
  std::uint64_t id_;
  // std::map: stable addresses (required for handle stability) and sorted
  // iteration (required for deterministic export).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The registry the instrumented hot paths feed: the thread's override when
/// one is installed (a sweep job's private registry), otherwise the
/// process-wide registry.
Registry& global_registry();

/// Install a thread-local registry override (nullptr restores the
/// process-wide default). The sweep engine brackets each job with this so
/// instrumentation from parallel jobs never shares state; returns the
/// previous override so scopes can nest.
Registry* set_thread_registry(Registry* registry);

/// Exponential nanosecond bucket edges (100 ns … 1 s) shared by all
/// scoped-timer histograms.
const std::vector<double>& duration_bounds_ns();

/// Format a double the way the exporters do (integers without a decimal
/// point, otherwise shortest round-trip form; non-finite values as the
/// literal platform-independent spellings "nan" / "inf" / "-inf").
/// Exposed for tests.
std::string format_number(double v);

/// Quote and escape `s` as a JSON string literal (shared by the metric and
/// trace exporters).
std::string json_quote(const std::string& s);

/// Quote and escape `s` as an RFC 4180 CSV field (embedded quotes doubled,
/// newlines escaped C-style so rows stay line-oriented).
std::string csv_quote(const std::string& s);

}  // namespace baat::obs
