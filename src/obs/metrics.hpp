#pragma once

// Metrics registry — the twin's replacement for the paper's NI-sensor power
// tables as a *runtime* window: named counters, gauges and fixed-bucket
// histograms with deterministic JSON/CSV export.
//
// Design rules (they are what make the layer safe to leave on):
//  * Handles are stable: the registry never erases an entry, so a
//    `Counter&` resolved once (e.g. a static local in a hot path, or a
//    member pointer in Cluster) stays valid for the life of the process.
//    `reset()` zeroes values in place.
//  * Exports are deterministic: entries iterate in sorted name order and
//    numbers are printed with a fixed format, so two identically seeded
//    runs produce byte-identical files (guarded by a regression test).
//  * Single-threaded by design, like the rest of the simulator — plain
//    doubles, no atomics.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace baat::obs {

/// Monotonically increasing value (events, ticks, decisions).
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins value (SoC, health, queue depth).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of
/// the finite buckets, ascending; one implicit overflow bucket catches the
/// rest. Tracks count/sum/min/max alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double v);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Valid only when count() > 0.
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Finite buckets plus the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  /// Upper edge of bucket `b`; the last bucket has no finite edge and
  /// returns +infinity.
  [[nodiscard]] double bucket_upper(std::size_t b) const;
  [[nodiscard]] std::size_t bucket_value(std::size_t b) const { return counts_[b]; }

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric store. Metric names use dotted paths with an optional
/// `{label}` dimension suffix, e.g. `policy.decisions{migration}` or
/// `node.health{3}`.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Counter& counter(const std::string& name, const std::string& label);
  Gauge& gauge(const std::string& name);
  Gauge& gauge(const std::string& name, const std::string& label);
  /// Registers the histogram on first use; later calls with the same name
  /// return the existing instance (the bounds argument is then ignored).
  Histogram& histogram(const std::string& name, const std::vector<double>& upper_bounds);

  /// Lookup without registering; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Read-only iteration (sorted by name) for exporters and reports.
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zero every metric in place. Entries (and therefore handles) survive.
  void reset();

  /// Deterministic exports: sorted names, fixed number formatting.
  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
  [[nodiscard]] std::string json() const;
  [[nodiscard]] std::string csv() const;

 private:
  // std::map: stable addresses (required for handle stability) and sorted
  // iteration (required for deterministic export).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry the instrumented hot paths feed.
Registry& global_registry();

/// Exponential nanosecond bucket edges (100 ns … 1 s) shared by all
/// scoped-timer histograms.
const std::vector<double>& duration_bounds_ns();

/// Format a double the way the exporters do (integers without a decimal
/// point, otherwise shortest round-trip form). Exposed for tests.
std::string format_number(double v);

/// Quote and escape `s` as a JSON string literal (shared by the metric and
/// trace exporters).
std::string json_quote(const std::string& s);

}  // namespace baat::obs
