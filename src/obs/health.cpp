#include "obs/health.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace baat::obs {

std::string_view health_severity_name(HealthSeverity s) {
  switch (s) {
    case HealthSeverity::Warn: return "warn";
    case HealthSeverity::Error: return "error";
    case HealthSeverity::Fatal: return "fatal";
  }
  return "?";
}

double health_severity_score(HealthSeverity s) {
  switch (s) {
    case HealthSeverity::Warn: return 1.0;
    case HealthSeverity::Error: return 10.0;
    case HealthSeverity::Fatal: return 1000.0;
  }
  return 0.0;
}

void HealthLog::record(HealthIncident incident) {
  ++total_;
  score_ += health_severity_score(incident.severity);
  if (incident.severity == HealthSeverity::Fatal) fatal_seen_ = true;

  // Counters are created on first incident only: a healthy run must leave
  // the registry — and every byte exported from it — untouched.
  global_registry()
      .counter("health." + std::string(health_severity_name(incident.severity)))
      .inc();
  emit(EventKind::Health, incident.node, incident.value,
       std::string(health_severity_name(incident.severity)) + ":" + incident.check +
           (incident.detail.empty() ? "" : " " + incident.detail));

  if (incidents_.size() < kDefaultCapacity) {
    incidents_.push_back(std::move(incident));
  } else {
    ++dropped_;
  }
}

std::string HealthLog::report(std::string_view headline) const {
  std::ostringstream os;
  os << headline << "\n";
  os << "health score " << format_number(score_) << " from " << total_
     << " incident(s)";
  if (dropped_ > 0) os << " (" << dropped_ << " beyond the log cap not listed)";
  os << "\n";
  for (const HealthIncident& i : incidents_) {
    os << "  [" << health_severity_name(i.severity) << "] day " << i.day << " t="
       << format_number(i.ts) << "s ";
    if (i.node >= 0) os << "node " << i.node << " ";
    os << i.check << " value=" << format_number(i.value);
    if (!i.detail.empty()) os << " (" << i.detail << ")";
    os << "\n";
  }
  return os.str();
}

void HealthLog::save_state(snapshot::SnapshotWriter& w) const {
  w.write_u64(incidents_.size());
  for (const HealthIncident& i : incidents_) {
    w.write_string(i.check);
    w.write_u8(static_cast<std::uint8_t>(i.severity));
    w.write_i64(i.node);
    w.write_f64(i.value);
    w.write_string(i.detail);
    w.write_f64(i.ts);
    w.write_i64(i.day);
  }
  w.write_u64(total_);
  w.write_u64(dropped_);
  w.write_f64(score_);
  w.write_bool(fatal_seen_);
}

void HealthLog::load_state(snapshot::SnapshotReader& r) {
  const std::uint64_t n = r.read_u64();
  incidents_.clear();
  incidents_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t k = 0; k < n; ++k) {
    HealthIncident i;
    i.check = r.read_string();
    i.severity = static_cast<HealthSeverity>(r.read_u8());
    i.node = static_cast<int>(r.read_i64());
    i.value = r.read_f64();
    i.detail = r.read_string();
    i.ts = r.read_f64();
    i.day = static_cast<long>(r.read_i64());
    incidents_.push_back(std::move(i));
  }
  total_ = static_cast<std::size_t>(r.read_u64());
  dropped_ = static_cast<std::size_t>(r.read_u64());
  score_ = r.read_f64();
  fatal_seen_ = r.read_bool();
}

}  // namespace baat::obs
