#pragma once

// Run-health primitives (DESIGN.md §5g): a bounded incident log with a
// summable severity score, fed by the sim-layer watchdog's declarative
// invariant checks. Incidents mirror into the structured trace
// (EventKind::Health) and into lazily created `health.<severity>` counters
// — lazily so a healthy run's metrics registry (and therefore every
// exported byte) is identical to a build without the watchdog.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/serialize.hpp"

namespace baat::obs {

enum class HealthSeverity {
  Warn,   ///< suspicious but survivable (stall, drift near tolerance)
  Error,  ///< an invariant failed; the run continues but is tainted
  Fatal,  ///< state is corrupt; the watchdog aborts the run
};

std::string_view health_severity_name(HealthSeverity s);

/// Score contribution of one incident; the log sums these so "how sick is
/// this run" is one number (Warn 1, Error 10, Fatal 1000).
double health_severity_score(HealthSeverity s);

/// One invariant violation, stamped with simulated time.
struct HealthIncident {
  std::string check;  ///< invariant name: "soc_range", "energy_balance", ...
  HealthSeverity severity = HealthSeverity::Warn;
  int node = -1;      ///< -1 = cluster-wide
  double value = 0.0; ///< check-specific magnitude (the bad SoC, the watt gap)
  std::string detail;
  double ts = 0.0;    ///< simulated seconds
  long day = 0;
};

/// Raised by the watchdog when a Fatal incident (or a fatal cumulative
/// score) is hit. what() is the full readable abort report.
class WatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounded incident log. Recording also emits an EventKind::Health trace
/// event and bumps the lazy `health.<severity>` counter, so incidents reach
/// all three observability surfaces from one call.
class HealthLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  void record(HealthIncident incident);

  [[nodiscard]] double score() const { return score_; }
  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] bool any_fatal() const { return fatal_seen_; }
  [[nodiscard]] const std::vector<HealthIncident>& incidents() const { return incidents_; }

  /// Readable multi-line report (the abort message and the blackbox
  /// health.txt both use this).
  [[nodiscard]] std::string report(std::string_view headline) const;

  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  std::vector<HealthIncident> incidents_;  ///< first kDefaultCapacity kept
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
  double score_ = 0.0;
  bool fatal_seen_ = false;
};

}  // namespace baat::obs
