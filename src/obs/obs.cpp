#include "obs/obs.hpp"

namespace baat::obs {

void reset_all() {
  global_registry().reset();
  global_trace().clear();
  set_trace_enabled(false);
  set_profiling_enabled(false);
}

}  // namespace baat::obs
