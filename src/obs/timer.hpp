#pragma once

// Scoped RAII timers for the simulator's hot paths (Battery::step,
// route_power, Cluster::run_day, run_multi_day). Disabled by default: the
// constructor then reads one bool and skips the clock entirely, so leaving
// a timer compiled into a hot loop costs ~a branch (bounded by a
// microbench and a regression test). When enabled, each scope feeds a
// nanosecond histogram in the *active* registry (the thread's sweep-job
// registry if one is installed, else the process-wide one) under
// `profile.<site>_ns`. The histogram handle is resolved per scope, not
// cached in a static: a cached handle would pin every thread to whichever
// registry happened to be active at first execution — a data race under
// the parallel sweep engine.
//
// Wall-clock durations are inherently non-deterministic, which is why
// profiling is a separate switch from metrics/tracing: the byte-identical
// export guarantee holds for everything except these profile histograms.

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace baat::obs {

namespace detail {
// Written only from single-threaded phases; sweep workers only read it.
inline bool g_profiling_enabled = false;
}

inline bool profiling_enabled() { return detail::g_profiling_enabled; }
inline void set_profiling_enabled(bool enabled) { detail::g_profiling_enabled = enabled; }

/// Register (or look up) the nanosecond histogram `profile.<site>_ns` in
/// the active registry.
Histogram& profile_histogram(const std::string& site);

class ScopedTimer {
 public:
  /// The registry lookup happens only when profiling is on; the off path is
  /// one bool load.
  explicit ScopedTimer(const char* site) {
    if (profiling_enabled()) {
      sink_ = &profile_histogram(site);
      start_ = std::chrono::steady_clock::now();
    }
  }
  explicit ScopedTimer(Histogram& sink) : sink_(profiling_enabled() ? &sink : nullptr) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      sink_->add(static_cast<double>(ns));
    }
  }

 private:
  Histogram* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace baat::obs

/// Time the enclosing scope under `profile.<site>_ns` in the active
/// registry.
#define BAAT_OBS_TIMED(site) \
  ::baat::obs::ScopedTimer baat_obs_timed_scope_ { site }
