#pragma once

// Scoped RAII timers for the simulator's hot paths (Battery::step,
// route_power, Cluster::run_day, run_multi_day). Disabled by default: the
// constructor then reads one bool and skips the clock entirely, so leaving
// a timer compiled into a hot loop costs ~a branch (bounded by a
// microbench and a regression test). When enabled, each scope feeds a
// nanosecond histogram in the global registry under `profile.<site>_ns`.
//
// Wall-clock durations are inherently non-deterministic, which is why
// profiling is a separate switch from metrics/tracing: the byte-identical
// export guarantee holds for everything except these profile histograms.

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace baat::obs {

namespace detail {
inline bool g_profiling_enabled = false;
}

inline bool profiling_enabled() { return detail::g_profiling_enabled; }
inline void set_profiling_enabled(bool enabled) { detail::g_profiling_enabled = enabled; }

/// Register (once) the nanosecond histogram `profile.<site>_ns` in the
/// global registry.
Histogram& profile_histogram(const std::string& site);

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) : sink_(profiling_enabled() ? &sink : nullptr) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      sink_->add(static_cast<double>(ns));
    }
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace baat::obs

/// Time the enclosing scope under `profile.<site>_ns`. The histogram handle
/// is resolved once per call site (registry entries are never erased, so
/// the static reference stays valid).
#define BAAT_OBS_TIMED(site)                                            \
  static ::baat::obs::Histogram& baat_obs_timed_hist_ =                 \
      ::baat::obs::profile_histogram(site);                             \
  ::baat::obs::ScopedTimer baat_obs_timed_scope_ { baat_obs_timed_hist_ }
