#pragma once

// Crash flight recorder (DESIGN.md §5g): when a run dies — watchdog trip,
// uncaught exception, fatal signal — the last-N trace ring, the metrics
// registry, the ledger rollups and (at a day boundary) a snapshot are
// dumped into a `blackbox-<day>/` bundle for post-mortem analysis with
// tools/blackbox_dump.py.
//
// This layer is content-agnostic: the sim layer assembles the bundle files
// (it knows about clusters and ledgers); this writer only guarantees the
// bundle appears atomically — everything is written into a temporary
// directory that one rename() publishes, so a half-written bundle is never
// observable under the final name.

#include <functional>
#include <string>
#include <vector>

namespace baat::obs {

/// One file of a flight-recorder bundle.
struct BlackboxFile {
  std::string name;     ///< file name inside the bundle (no directories)
  std::string content;  ///< raw bytes
};

/// Atomically materialize `blackbox-<day>/` under `parent_dir` (empty =
/// current directory) containing `files`. An existing bundle of the same
/// name is replaced. Returns the bundle path; throws std::runtime_error on
/// I/O failure.
std::string write_blackbox_bundle(const std::string& parent_dir, long day,
                                  const std::vector<BlackboxFile>& files);

/// Install the process-wide dump hook the crash handlers invoke. The hook
/// must be safe to call once from a dying process: write the bundle, touch
/// nothing else. Pass nullptr (or call clear) to remove.
void set_crash_dump_hook(std::function<void(const char* reason)> hook);
void clear_crash_dump_hook();

/// Install fatal-signal (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) and std::terminate
/// handlers that run the dump hook, then hand the crash back to the default
/// behavior so exit codes and cores are preserved. Idempotent. Writing
/// files from a signal handler is formally unsafe; a flight recorder takes
/// that best-effort trade knowingly — the process is already dead.
void install_crash_handlers();

}  // namespace baat::obs
