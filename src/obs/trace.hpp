#pragma once

// Structured event trace — a bounded ring of typed events emitted by the
// policies, the power router, the battery probes and the cluster loop.
// Events are stamped with *simulated* time (util/sim_clock.hpp), so the
// trace of a 180-day run is a deterministic artifact of the seed: two
// identically seeded runs export byte-identical traces.
//
// Two export formats:
//  * JSONL — one event object per line, easy to grep/jq;
//  * Chrome trace_event JSON — opens directly in chrome://tracing or
//    Perfetto, with one track ("thread") per battery node.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/serialize.hpp"

namespace baat::obs {

enum class EventKind {
  DayStart,
  DayEnd,
  PolicySwitch,
  ChargePriority,   ///< router charge order changed by the policy
  DischargeFloor,   ///< planned-aging floor (Eq 7) installed or moved
  ProbeRun,         ///< offline monthly battery probe (Figs 3-5)
  JobDeploy,
  JobQueued,        ///< job could not be placed, entered the retry queue
  Migration,
  Dvfs,
  LowSocEnter,      ///< node battery dropped below the 40% knee
  LowSocExit,
  UnmetDemand,      ///< router could not cover a node's load this tick
  Brownout,
  NodeRestart,
  BatteryEol,
  FaultInjected,    ///< a fault-plan entry fired (src/fault)
  PolicyFallback,   ///< controller rejected telemetry, used degraded estimate
  Health,           ///< run-health watchdog incident (obs/health.hpp)
};

/// Stable snake_case name used in both export formats.
std::string_view event_kind_name(EventKind kind);

struct TraceEvent {
  double ts = 0.0;          ///< simulated seconds since run start
  long day = 0;             ///< simulated day index
  EventKind kind{};
  int node = -1;            ///< battery/server node, -1 = cluster-wide
  double value = 0.0;       ///< kind-specific payload (SoC, watts, ...)
  std::string detail;       ///< kind-specific free text
};

/// Fixed-capacity ring: pushing past capacity evicts the oldest event and
/// counts it as dropped, so a multi-month run keeps the most recent window.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void push(TraceEvent event);
  /// The slot the next event should be written into (allocation-free fast
  /// path used by emit()): a cleared or evicted slot is handed back with its
  /// detail-string capacity intact, so a steady-state tick loop emits events
  /// without touching the heap. The caller must overwrite every field.
  [[nodiscard]] TraceEvent& next_slot();
  /// Append every event of `other` (oldest first), honouring this ring's
  /// capacity. The sweep engine folds per-job traces in with this, in
  /// job-index order, so the merged trace is deterministic.
  void merge(const TraceBuffer& other);
  /// Re-size the ring; releases contents and the dropped counter.
  void set_capacity(std::size_t capacity);
  /// Empty the ring. Slots (and their string capacity) are kept alive for
  /// reuse by next_slot(), so clearing between days stays allocation-free.
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events evicted because the ring was full.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Events oldest → newest.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void write_jsonl(std::ostream& out) const;
  void write_chrome_trace(std::ostream& out) const;

  /// Checkpoint support: round-trips capacity, the retained window (oldest
  /// first) and the dropped counter, so a resumed run exports the same
  /// trace bytes as one that never paused.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
};

/// The trace the instrumented layers feed: the thread's override when one
/// is installed (a sweep job's private buffer), otherwise the process-wide
/// trace.
TraceBuffer& global_trace();

/// Install a thread-local trace override (nullptr restores the process-wide
/// default); returns the previous override so scopes can nest. Paired with
/// obs::set_thread_registry by the sweep engine.
TraceBuffer* set_thread_trace(TraceBuffer* trace);

/// Tracing master switch; `emit` below is a no-op while disabled (default).
/// The flag is written only from single-threaded phases (CLI setup, test
/// setup, between sweeps); worker threads only read it.
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Emit into the global trace, stamped from the simulated clock. No-op when
/// tracing is disabled, so call sites can stay unconditional. The detail
/// text is copied into a reused ring slot — no per-event allocation once
/// the ring's slots have grown to the working detail lengths.
void emit(EventKind kind, int node = -1, double value = 0.0, std::string_view detail = {});

}  // namespace baat::obs
