#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <set>

#include "obs/metrics.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::obs {

namespace {
bool g_trace_enabled = false;
}

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::DayStart: return "day_start";
    case EventKind::DayEnd: return "day_end";
    case EventKind::PolicySwitch: return "policy_switch";
    case EventKind::ChargePriority: return "charge_priority";
    case EventKind::DischargeFloor: return "discharge_floor";
    case EventKind::ProbeRun: return "probe_run";
    case EventKind::JobDeploy: return "job_deploy";
    case EventKind::JobQueued: return "job_queued";
    case EventKind::Migration: return "migration";
    case EventKind::Dvfs: return "dvfs";
    case EventKind::LowSocEnter: return "low_soc_enter";
    case EventKind::LowSocExit: return "low_soc_exit";
    case EventKind::UnmetDemand: return "unmet_demand";
    case EventKind::Brownout: return "brownout";
    case EventKind::NodeRestart: return "node_restart";
    case EventKind::BatteryEol: return "battery_eol";
    case EventKind::FaultInjected: return "fault_injected";
    case EventKind::PolicyFallback: return "policy_fallback";
    case EventKind::Health: return "health";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  BAAT_REQUIRE(capacity > 0, "trace capacity must be positive");
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

void TraceBuffer::push(TraceEvent event) { next_slot() = std::move(event); }

TraceEvent& TraceBuffer::next_slot() {
  if (size_ < capacity_) {
    if (size_ < ring_.size()) return ring_[size_++];  // reuse a cleared slot
    ring_.emplace_back();
    ++size_;
    return ring_.back();
  }
  // Full: hand back the oldest slot for overwrite.
  TraceEvent& slot = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  return slot;
}

void TraceBuffer::merge(const TraceBuffer& other) {
  for (TraceEvent& e : other.events()) push(std::move(e));
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  BAAT_REQUIRE(capacity > 0, "trace capacity must be positive");
  capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void TraceBuffer::clear() {
  // Keep the ring's elements alive: next_slot() reuses them (and their
  // detail-string capacity), so a clear-per-day loop never re-allocates.
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  if (size_ < capacity_) {
    // Not yet wrapped: the first size_ slots, already in order (the ring may
    // hold more live-but-cleared slots beyond size_).
    return {ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(size_)};
  }
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

void TraceBuffer::save_state(snapshot::SnapshotWriter& w) const {
  w.write_u64(capacity_);
  w.write_u64(dropped_);
  const std::vector<TraceEvent> evs = events();
  w.write_u64(evs.size());
  for (const TraceEvent& e : evs) {
    w.write_f64(e.ts);
    w.write_i64(e.day);
    w.write_u8(static_cast<std::uint8_t>(e.kind));
    w.write_i64(e.node);
    w.write_f64(e.value);
    w.write_string(e.detail);
  }
}

void TraceBuffer::load_state(snapshot::SnapshotReader& r) {
  set_capacity(static_cast<std::size_t>(r.read_u64()));
  const std::size_t dropped = static_cast<std::size_t>(r.read_u64());
  const auto n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEvent& e = next_slot();
    e.ts = r.read_f64();
    e.day = static_cast<long>(r.read_i64());
    e.kind = static_cast<EventKind>(r.read_u8());
    e.node = static_cast<int>(r.read_i64());
    e.value = r.read_f64();
    e.detail = r.read_string();
  }
  // The replayed pushes above cannot evict (n <= saved capacity), so the
  // dropped counter carries over verbatim.
  dropped_ = dropped;
}

void TraceBuffer::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : events()) {
    out << "{\"ts\": " << format_number(e.ts) << ", \"day\": " << e.day
        << ", \"kind\": " << json_quote(std::string(event_kind_name(e.kind)))
        << ", \"node\": " << e.node << ", \"value\": " << format_number(e.value)
        << ", \"detail\": " << json_quote(e.detail) << "}\n";
  }
}

void TraceBuffer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> evs = events();
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Track metadata: tid 0 is the cluster, tid n+1 is battery node n.
  std::set<int> tids;
  for (const TraceEvent& e : evs) tids.insert(e.node + 1);
  bool first = true;
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, "
         "\"args\": {\"name\": \"baatsim\"}}";
  first = false;
  for (const int tid : tids) {
    const std::string label =
        tid == 0 ? std::string("cluster") : "node " + std::to_string(tid - 1);
    out << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": " << tid
        << ", \"args\": {\"name\": " << json_quote(label) << "}}";
  }

  for (const TraceEvent& e : evs) {
    // Instant events on the node's track, simulated time in microseconds.
    out << (first ? "" : ",\n") << "{\"name\": "
        << json_quote(std::string(event_kind_name(e.kind)))
        << ", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": " << e.node + 1
        << ", \"ts\": " << format_number(e.ts * 1e6) << ", \"args\": {\"day\": " << e.day
        << ", \"value\": " << format_number(e.value)
        << ", \"detail\": " << json_quote(e.detail) << "}}";
    first = false;
  }
  out << "\n]}\n";
}

namespace {
thread_local TraceBuffer* t_trace = nullptr;
}  // namespace

TraceBuffer& global_trace() {
  if (t_trace != nullptr) return *t_trace;
  static TraceBuffer trace;
  return trace;
}

TraceBuffer* set_thread_trace(TraceBuffer* trace) {
  TraceBuffer* previous = t_trace;
  t_trace = trace;
  return previous;
}

bool trace_enabled() { return g_trace_enabled; }

void set_trace_enabled(bool enabled) { g_trace_enabled = enabled; }

void emit(EventKind kind, int node, double value, std::string_view detail) {
  if (!g_trace_enabled) return;
  // Fill a reused ring slot in place; assign() keeps the slot string's
  // existing capacity, so steady-state emission is allocation-free.
  TraceEvent& e = global_trace().next_slot();
  e.ts = std::max(0.0, util::sim_time());
  e.day = std::max(0L, util::sim_day());
  e.kind = kind;
  e.node = node;
  e.value = value;
  e.detail.assign(detail.begin(), detail.end());
}

}  // namespace baat::obs
