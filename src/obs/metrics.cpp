#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace baat::obs {

namespace {

std::string labeled(const std::string& name, const std::string& label) {
  return name + "{" + label + "}";
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> g_next{1};
  return g_next.fetch_add(1, std::memory_order_relaxed);
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << json_quote(s);
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  // Non-finite values bypass printf: "%g" output for them is
  // platform-dependent ("nan" vs "nan(ind)" vs "-1.#IND"), and exports must
  // be byte-identical everywhere. Matches glibc's spelling.
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0.0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string csv_quote(const std::string& s) {
  // RFC 4180: wrap in quotes, double any embedded quote. Embedded newlines
  // and carriage returns are legal inside a quoted field but wreck
  // line-oriented consumers, so they are escaped C-style instead.
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\"\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  BAAT_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  stats_.add(v);
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  BAAT_REQUIRE(bounds_ == other.bounds_,
               "histogram merge requires identical bucket bounds");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  stats_.merge(other.stats_);
  sum_ += other.sum_;
}

double Histogram::bucket_upper(std::size_t b) const {
  BAAT_REQUIRE(b < counts_.size(), "bucket index out of range");
  if (b == bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[b];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), std::size_t{0});
  stats_ = util::RunningStats{};
  sum_ = 0.0;
}

void Histogram::save_state(snapshot::SnapshotWriter& w) const {
  w.write_f64_vec(bounds_);
  w.write_u64(counts_.size());
  for (std::size_t c : counts_) w.write_u64(c);
  stats_.save_state(w);
  w.write_f64(sum_);
}

void Histogram::load_state(snapshot::SnapshotReader& r) {
  bounds_ = r.read_f64_vec();
  const auto n = static_cast<std::size_t>(r.read_u64());
  if (n != bounds_.size() + 1) {
    throw snapshot::SnapshotError("metric histogram state is inconsistent: " +
                                  std::to_string(n) + " buckets for " +
                                  std::to_string(bounds_.size()) + " bounds");
  }
  counts_.assign(n, 0);
  for (auto& c : counts_) c = static_cast<std::size_t>(r.read_u64());
  stats_.load_state(r);
  sum_ = r.read_f64();
}

// Identity rule: every operation that may destroy or transfer map nodes
// retires the affected object's id by drawing a fresh one. A cached handle
// (Counter* + id) can therefore only validate while the nodes it points at
// are alive and still owned by the registry presenting that id. reset() and
// merge() keep existing nodes, so they keep the id too.

Registry::Registry() : id_(next_registry_id()) {}

Registry::Registry(const Registry& other)
    : id_(next_registry_id()),
      counters_(other.counters_),
      gauges_(other.gauges_),
      histograms_(other.histograms_) {}

Registry::Registry(Registry&& other) noexcept
    : id_(next_registry_id()),
      counters_(std::move(other.counters_)),
      gauges_(std::move(other.gauges_)),
      histograms_(std::move(other.histograms_)) {
  other.id_ = next_registry_id();  // its nodes left with us
}

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) return *this;
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  id_ = next_registry_id();  // our previous nodes are gone
  return *this;
}

Registry& Registry::operator=(Registry&& other) noexcept {
  if (this == &other) return *this;
  counters_ = std::move(other.counters_);
  gauges_ = std::move(other.gauges_);
  histograms_ = std::move(other.histograms_);
  id_ = next_registry_id();
  other.id_ = next_registry_id();
  return *this;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Counter& Registry::counter(const std::string& name, const std::string& label) {
  return counters_[labeled(name, label)];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Gauge& Registry::gauge(const std::string& name, const std::string& label) {
  return gauges_[labeled(name, label)];
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{upper_bounds}).first->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

void Registry::save_state(snapshot::SnapshotWriter& w) const {
  w.write_u64(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.write_string(name);
    c.save_state(w);
  }
  w.write_u64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.write_string(name);
    g.save_state(w);
  }
  w.write_u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.write_string(name);
    h.save_state(w);
  }
}

void Registry::load_state(snapshot::SnapshotReader& r) {
  const auto n_counters = r.read_u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = r.read_string();
    counters_[name].load_state(r);
  }
  const auto n_gauges = r.read_u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string name = r.read_string();
    gauges_[name].load_state(r);
  }
  const auto n_histograms = r.read_u64();
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    const std::string name = r.read_string();
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      // Placeholder bounds; load_state replaces them wholesale.
      it = histograms_.emplace(name, Histogram(std::vector<double>{0.0})).first;
    }
    it->second.load_state(r);
  }
}

void Registry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    ";
    write_json_string(out, name);
    out << ": " << format_number(c.value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    ";
    write_json_string(out, name);
    out << ": " << format_number(g.value());
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    ";
    write_json_string(out, name);
    out << ": {\"count\": " << h.count() << ", \"sum\": " << format_number(h.sum());
    if (h.count() > 0) {
      out << ", \"min\": " << format_number(h.min())
          << ", \"max\": " << format_number(h.max());
    }
    out << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      if (b > 0) out << ", ";
      const double upper = h.bucket_upper(b);
      out << "{\"le\": ";
      if (std::isinf(upper)) {
        out << "\"inf\"";
      } else {
        out << format_number(upper);
      }
      out << ", \"count\": " << h.bucket_value(b) << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

void Registry::write_csv(std::ostream& out) const {
  out << "type,name,field,value\n";
  for (const auto& [name, c] : counters_) {
    out << "counter," << csv_quote(name) << ",value," << format_number(c.value()) << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge," << csv_quote(name) << ",value," << format_number(g.value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram," << csv_quote(name) << ",count," << h.count() << "\n";
    out << "histogram," << csv_quote(name) << ",sum," << format_number(h.sum()) << "\n";
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      const double upper = h.bucket_upper(b);
      out << "histogram," << csv_quote(name) << ",le_"
          << (std::isinf(upper) ? std::string("inf") : format_number(upper)) << ","
          << h.bucket_value(b) << "\n";
    }
  }
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Registry::csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

namespace {
// Sweep jobs run with a private registry installed here, so parallel
// simulations never contend on (or pollute) the process-wide instance.
thread_local Registry* t_registry = nullptr;
}  // namespace

Registry& global_registry() {
  if (t_registry != nullptr) return *t_registry;
  static Registry registry;
  return registry;
}

Registry* set_thread_registry(Registry* registry) {
  Registry* previous = t_registry;
  t_registry = registry;
  return previous;
}

const std::vector<double>& duration_bounds_ns() {
  static const std::vector<double> bounds{
      100.0,    250.0,    500.0,    1e3,   2.5e3, 5e3,   1e4,   2.5e4,
      5e4,      1e5,      2.5e5,    5e5,   1e6,   2.5e6, 5e6,   1e7,
      2.5e7,    5e7,      1e8,      1e9};
  return bounds;
}

}  // namespace baat::obs
