#include "obs/blackbox.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace baat::obs {

namespace fs = std::filesystem;

std::string write_blackbox_bundle(const std::string& parent_dir, long day,
                                  const std::vector<BlackboxFile>& files) {
  const fs::path parent = parent_dir.empty() ? fs::path{"."} : fs::path{parent_dir};
  const fs::path final_dir = parent / ("blackbox-" + std::to_string(day));
  // Unique per call so two dumps racing (signal during dump) cannot collide.
  static std::atomic<unsigned> g_seq{0};
  const fs::path tmp_dir =
      parent / ("blackbox-" + std::to_string(day) + ".tmp-" +
                std::to_string(g_seq.fetch_add(1, std::memory_order_relaxed)));

  std::error_code ec;
  fs::remove_all(tmp_dir, ec);
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    throw std::runtime_error("blackbox: cannot create " + tmp_dir.string() + ": " +
                             ec.message());
  }
  for (const BlackboxFile& f : files) {
    std::ofstream out(tmp_dir / f.name, std::ios::binary | std::ios::trunc);
    out.write(f.content.data(), static_cast<std::streamsize>(f.content.size()));
    if (!out) {
      throw std::runtime_error("blackbox: cannot write " + (tmp_dir / f.name).string());
    }
  }
  // Publish: drop any stale bundle, then one rename makes the new one
  // visible complete-or-not-at-all.
  fs::remove_all(final_dir, ec);
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    throw std::runtime_error("blackbox: cannot publish " + final_dir.string() + ": " +
                             ec.message());
  }
  return final_dir.string();
}

namespace {

std::function<void(const char*)>& dump_hook() {
  static std::function<void(const char*)> g_hook;
  return g_hook;
}

std::atomic<bool> g_dumping{false};

void run_dump_hook(const char* reason) noexcept {
  // One dump per process: a crash inside the dump must not recurse.
  if (g_dumping.exchange(true)) return;
  try {
    if (dump_hook()) dump_hook()(reason);
  } catch (...) {
    // The process is dying; swallow so the original crash surfaces.
  }
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_with_dump() {
  run_dump_hook("uncaught exception (std::terminate)");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void signal_with_dump(int sig) {
  run_dump_hook("fatal signal");
  // Restore default disposition and re-raise so the exit status (and any
  // core dump) is what the crash would have produced anyway.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void set_crash_dump_hook(std::function<void(const char* reason)> hook) {
  dump_hook() = std::move(hook);
  g_dumping.store(false);
}

void clear_crash_dump_hook() { dump_hook() = nullptr; }

void install_crash_handlers() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  g_prev_terminate = std::set_terminate(terminate_with_dump);
  std::signal(SIGSEGV, signal_with_dump);
  std::signal(SIGFPE, signal_with_dump);
  std::signal(SIGABRT, signal_with_dump);
#ifdef SIGBUS
  std::signal(SIGBUS, signal_with_dump);
#endif
}

}  // namespace baat::obs
