#include "server/server.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::server {

double DvfsLadder::factor(int level) const {
  BAAT_REQUIRE(level >= 0 && level < levels(), "DVFS level out of range");
  return freq_factors[static_cast<std::size_t>(level)];
}

Server::Server(ServerSpec spec) : spec_(std::move(spec)), dvfs_level_(spec_.dvfs.top()) {
  BAAT_REQUIRE(spec_.peak > spec_.idle, "peak power must exceed idle power");
  BAAT_REQUIRE(spec_.cores > 0.0 && spec_.mem_gb > 0.0, "server capacity must be positive");
  BAAT_REQUIRE(!spec_.dvfs.freq_factors.empty(), "DVFS ladder must be non-empty");
  BAAT_REQUIRE(std::is_sorted(spec_.dvfs.freq_factors.begin(), spec_.dvfs.freq_factors.end()),
               "DVFS ladder must be ascending");
}

bool Server::can_host(double cores, double mem_gb) const {
  return on_ && cores_free() >= cores && mem_free_gb() >= mem_gb;
}

void Server::attach(VmId vm, double cores, double mem_gb) {
  BAAT_REQUIRE(!hosts(vm), "VM already attached");
  BAAT_REQUIRE(can_host(cores, mem_gb), "server lacks capacity for VM");
  vms_.push_back(HostedVm{vm, 0.0, cores, mem_gb});
}

void Server::detach(VmId vm) {
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [vm](const HostedVm& h) { return h.vm == vm; });
  BAAT_REQUIRE(it != vms_.end(), "VM not attached to this server");
  vms_.erase(it);
}

bool Server::hosts(VmId vm) const {
  return std::any_of(vms_.begin(), vms_.end(),
                     [vm](const HostedVm& h) { return h.vm == vm; });
}

double Server::cores_free() const {
  double used = 0.0;
  for (const auto& h : vms_) used += h.cores;
  return spec_.cores - used;
}

double Server::mem_free_gb() const {
  double used = 0.0;
  for (const auto& h : vms_) used += h.mem_gb;
  return spec_.mem_gb - used;
}

void Server::set_demand(VmId vm, double util) {
  BAAT_REQUIRE(util >= 0.0 && util <= 1.0, "utilization must be in [0, 1]");
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [vm](const HostedVm& h) { return h.vm == vm; });
  BAAT_REQUIRE(it != vms_.end(), "VM not attached to this server");
  it->demand_util = util;
}

double Server::total_demand_util() const {
  double core_demand = 0.0;
  for (const auto& h : vms_) core_demand += h.demand_util * h.cores;
  return std::min(1.0, core_demand / spec_.cores);
}

void Server::set_dvfs_level(int level) {
  BAAT_REQUIRE(level >= 0 && level < spec_.dvfs.levels(), "DVFS level out of range");
  dvfs_level_ = level;
}

void Server::power_off() { on_ = false; }

void Server::power_on() { on_ = true; }

Watts Server::power(double total_util) const {
  BAAT_REQUIRE(total_util >= 0.0 && total_util <= 1.0, "utilization must be in [0, 1]");
  if (!on_) return Watts{0.0};
  const double f = freq_factor();
  const double idle = spec_.idle.value() * (0.6 + 0.4 * f);
  const double dynamic = (spec_.peak - spec_.idle).value() * total_util * f * f;
  return Watts{idle + dynamic};
}

void Server::save_state(snapshot::SnapshotWriter& w) const {
  if (!vms_.empty()) {
    throw snapshot::SnapshotError(
        "server still hosts VMs; snapshots are only taken at day boundaries "
        "after the workload has drained");
  }
  w.write_i64(dvfs_level_);
  w.write_bool(on_);
  w.write_f64(downtime_.value());
}

void Server::load_state(snapshot::SnapshotReader& r) {
  const int level = static_cast<int>(r.read_i64());
  if (level < 0 || level >= spec_.dvfs.levels()) {
    throw snapshot::SnapshotError("server snapshot carries DVFS level " +
                                  std::to_string(level) + " outside this spec's ladder");
  }
  dvfs_level_ = level;
  on_ = r.read_bool();
  downtime_ = Seconds{r.read_f64()};
}

}  // namespace baat::server
