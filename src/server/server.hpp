#pragma once

// Compute server model. The prototype's nodes (IBM x330 / HP ProLiant,
// Fig 11) expose exactly the knobs BAAT actuates: DVFS frequency scaling
// ("through software driver we can dynamically set the frequency of
// processors", §V-B) and VM hosting with CPU/memory capacity limits that
// constrain migration (§IV-C.2). Power follows the standard linear
// utilization model with a frequency-quadratic dynamic term.

#include <vector>

#include "snapshot/serialize.hpp"
#include "util/units.hpp"
#include "workload/vm.hpp"

namespace baat::server {

using util::Seconds;
using util::Watts;
using workload::VmId;

/// Discrete DVFS ladder; level 0 is the slowest, back() is nominal.
struct DvfsLadder {
  std::vector<double> freq_factors{0.50, 0.67, 0.83, 1.00};

  [[nodiscard]] int levels() const { return static_cast<int>(freq_factors.size()); }
  [[nodiscard]] int top() const { return levels() - 1; }
  [[nodiscard]] double factor(int level) const;
};

struct ServerSpec {
  Watts idle{80.0};
  Watts peak{180.0};
  double cores = 8.0;
  double mem_gb = 16.0;
  DvfsLadder dvfs{};
};

/// A VM placed on a server, with the utilization it demanded this tick.
struct HostedVm {
  VmId vm = -1;
  double demand_util = 0.0;   ///< of its own vCPUs
  double cores = 0.0;
  double mem_gb = 0.0;
};

class Server {
 public:
  explicit Server(ServerSpec spec);

  [[nodiscard]] const ServerSpec& spec() const { return spec_; }

  // --- VM hosting -----------------------------------------------------------
  [[nodiscard]] bool can_host(double cores, double mem_gb) const;
  void attach(VmId vm, double cores, double mem_gb);
  void detach(VmId vm);
  [[nodiscard]] bool hosts(VmId vm) const;
  [[nodiscard]] const std::vector<HostedVm>& hosted() const { return vms_; }
  [[nodiscard]] double cores_free() const;
  [[nodiscard]] double mem_free_gb() const;

  /// Record this tick's demanded utilization for a hosted VM.
  void set_demand(VmId vm, double util);

  /// Aggregate CPU utilization demanded by all hosted VMs (fraction of the
  /// server's cores, clamped to 1).
  [[nodiscard]] double total_demand_util() const;

  // --- DVFS -----------------------------------------------------------------
  [[nodiscard]] int dvfs_level() const { return dvfs_level_; }
  void set_dvfs_level(int level);
  [[nodiscard]] double freq_factor() const { return spec_.dvfs.factor(dvfs_level_); }

  // --- power state -----------------------------------------------------------
  [[nodiscard]] bool powered_on() const { return on_; }
  void power_off();
  void power_on();
  [[nodiscard]] Seconds downtime() const { return downtime_; }
  void add_downtime(Seconds dt) { downtime_ += dt; }

  /// Electrical power drawn at a given aggregate utilization and the current
  /// DVFS level: idle·(0.6 + 0.4f) + (peak - idle)·util·f² — frequency (and
  /// the accompanying voltage) scaling trims both the dynamic term and a
  /// portion of the platform idle power. Zero when powered off.
  [[nodiscard]] Watts power(double total_util) const;
  /// Convenience: power at this tick's recorded demand.
  [[nodiscard]] Watts power_now() const { return power(total_demand_util()); }

  /// Checkpoint support. Snapshots are taken at day boundaries, after the
  /// cluster has drained every VM, so only the power/DVFS state is carried;
  /// save refuses a server that still hosts VMs.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  ServerSpec spec_;
  std::vector<HostedVm> vms_;
  int dvfs_level_;
  bool on_ = true;
  Seconds downtime_{0.0};
};

}  // namespace baat::server
