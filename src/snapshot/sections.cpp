#include "snapshot/sections.hpp"

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <utility>

namespace baat::snapshot {

namespace {

constexpr char kSectMagic[8] = {'B', 'A', 'A', 'T', 'S', 'E', 'C', 'T'};
constexpr std::size_t kSectHeaderSize = 28;
constexpr std::size_t kSectionPrefixSize = 12;  // u64 size + u32 crc

}  // namespace

SectionFileWriter::SectionFileWriter(std::string path, std::uint64_t config_hash,
                                     std::uint64_t section_count)
    : path_(std::move(path)), tmp_(path_ + ".tmp"), declared_(section_count) {
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw SnapshotError("cannot open '" + tmp_ + "' for writing");
  }
  SnapshotWriter header;
  for (char c : kSectMagic) header.write_u8(static_cast<std::uint8_t>(c));
  header.write_u32(kSectionFormatVersion);
  header.write_u64(config_hash);
  header.write_u64(section_count);
  out_.write(reinterpret_cast<const char*>(header.bytes().data()),
             static_cast<std::streamsize>(header.size()));
  if (!out_) {
    throw SnapshotError("I/O error writing snapshot header to '" + tmp_ + "'");
  }
}

SectionFileWriter::~SectionFileWriter() {
  if (!committed_) {
    out_.close();
    std::error_code ignore;
    std::filesystem::remove(tmp_, ignore);
  }
}

void SectionFileWriter::append(std::span<const std::uint8_t> payload) {
  if (committed_) {
    throw SnapshotError("snapshot '" + path_ + "' is already committed");
  }
  if (written_ == declared_) {
    throw SnapshotError("snapshot '" + path_ + "' declared " + std::to_string(declared_) +
                        " sections but more were appended");
  }
  SnapshotWriter prefix;
  prefix.write_u64(payload.size());
  prefix.write_u32(crc32(payload));
  out_.write(reinterpret_cast<const char*>(prefix.bytes().data()),
             static_cast<std::streamsize>(prefix.size()));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) {
    throw SnapshotError("I/O error writing snapshot section " + std::to_string(written_) +
                        " to '" + tmp_ + "'");
  }
  ++written_;
}

void SectionFileWriter::commit() {
  if (committed_) {
    throw SnapshotError("snapshot '" + path_ + "' is already committed");
  }
  if (written_ != declared_) {
    throw SnapshotError("snapshot '" + path_ + "' declared " + std::to_string(declared_) +
                        " sections but only " + std::to_string(written_) + " were appended");
  }
  out_.flush();
  out_.close();
  if (out_.fail()) {
    std::error_code ignore;
    std::filesystem::remove(tmp_, ignore);
    throw SnapshotError("I/O error finishing snapshot '" + tmp_ + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_, path_, ec);
  if (ec) {
    std::error_code ignore;
    std::filesystem::remove(tmp_, ignore);
    throw SnapshotError("cannot rename '" + tmp_ + "' to '" + path_ + "': " + ec.message());
  }
  committed_ = true;
}

SectionFileReader::SectionFileReader(std::string path, std::uint64_t expected_config_hash)
    : path_(std::move(path)) {
  in_.open(path_, std::ios::binary);
  if (!in_) {
    throw SnapshotError("cannot open snapshot file '" + path_ + "'");
  }
  std::vector<std::uint8_t> raw(kSectHeaderSize);
  in_.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
  if (in_.gcount() != static_cast<std::streamsize>(kSectHeaderSize)) {
    throw SnapshotError("snapshot file '" + path_ + "' is truncated: " +
                        std::to_string(in_.gcount()) + " bytes, header needs " +
                        std::to_string(kSectHeaderSize));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (raw[i] != static_cast<std::uint8_t>(kSectMagic[i])) {
      throw SnapshotError("'" + path_ + "' is not a BAAT sectioned snapshot (bad magic)");
    }
  }
  SnapshotReader reader(std::span<const std::uint8_t>(raw).subspan(8));
  header_.version = reader.read_u32();
  header_.config_hash = reader.read_u64();
  header_.section_count = reader.read_u64();
  if (header_.version != kSectionFormatVersion) {
    throw SnapshotError("snapshot file '" + path_ + "' has format version " +
                        std::to_string(header_.version) + " but this build reads version " +
                        std::to_string(kSectionFormatVersion) +
                        "; re-run from scratch or use a matching build");
  }
  if (expected_config_hash != 0 && header_.config_hash != expected_config_hash) {
    char got[32];
    char want[32];
    std::snprintf(got, sizeof got, "%016llx",
                  static_cast<unsigned long long>(header_.config_hash));
    std::snprintf(want, sizeof want, "%016llx",
                  static_cast<unsigned long long>(expected_config_hash));
    throw SnapshotError("snapshot file '" + path_ + "' was produced under config hash " +
                        std::string(got) + " but the current scenario hashes to " + want +
                        "; resuming a different scenario is refused (same seed, shards, nodes, "
                        "days, policy, faults, demand and math mode are required)");
  }
}

std::vector<std::uint8_t> SectionFileReader::read_section() {
  if (read_ == header_.section_count) {
    throw SnapshotError("snapshot file '" + path_ + "' holds " +
                        std::to_string(header_.section_count) +
                        " sections but more were requested");
  }
  std::vector<std::uint8_t> prefix(kSectionPrefixSize);
  in_.read(reinterpret_cast<char*>(prefix.data()), static_cast<std::streamsize>(prefix.size()));
  if (in_.gcount() != static_cast<std::streamsize>(kSectionPrefixSize)) {
    throw SnapshotError("snapshot file '" + path_ + "' is truncated in section " +
                        std::to_string(read_) + " header");
  }
  SnapshotReader reader{std::span<const std::uint8_t>(prefix)};
  const std::uint64_t size = reader.read_u64();
  const std::uint32_t crc = reader.read_u32();
  std::vector<std::uint8_t> payload;
  // Grow in bounded chunks so a corrupted size field cannot drive a
  // multi-gigabyte allocation before the truncation is noticed.
  constexpr std::uint64_t kChunk = 1 << 20;
  std::uint64_t left = size;
  while (left > 0) {
    const std::uint64_t take = left < kChunk ? left : kChunk;
    const std::size_t base = payload.size();
    payload.resize(base + static_cast<std::size_t>(take));
    in_.read(reinterpret_cast<char*>(payload.data() + base),
             static_cast<std::streamsize>(take));
    if (in_.gcount() != static_cast<std::streamsize>(take)) {
      throw SnapshotError("snapshot file '" + path_ + "' is truncated: section " +
                          std::to_string(read_) + " declares " + std::to_string(size) +
                          " bytes but the file ends early");
    }
    left -= take;
  }
  if (crc32(payload) != crc) {
    throw SnapshotError("snapshot file '" + path_ + "' is corrupted: section " +
                        std::to_string(read_) + " CRC mismatch");
  }
  ++read_;
  return payload;
}

void SectionFileReader::finish() {
  if (read_ != header_.section_count) {
    throw SnapshotError("snapshot file '" + path_ + "' holds " +
                        std::to_string(header_.section_count) + " sections but only " +
                        std::to_string(read_) + " were read");
  }
  char extra = 0;
  in_.read(&extra, 1);
  if (in_.gcount() != 0) {
    throw SnapshotError("snapshot file '" + path_ + "' has trailing bytes after the last "
                        "section; the file is corrupted");
  }
}

}  // namespace baat::snapshot
