#pragma once

// Streamed sectioned snapshot container (DESIGN.md §5h).
//
// The flat "BAATSNAP" container (snapshot.hpp) serializes the whole sim
// state through one contiguous payload buffer; that is fine for a 48-cell
// cluster but a 100k-cell sharded datacenter would funnel hundreds of
// megabytes through a single vector and re-CRC the lot on every
// checkpoint. The "BAATSECT" container instead holds an ordered sequence
// of independently CRC-protected sections — section 0 is the global
// coordinator state, sections 1..N are one shard each — streamed to disk
// as they are produced, so peak memory stays one shard's payload and a
// corrupted shard is reported by index.
//
// Layout (all little-endian, same scalar encoding as serialize.hpp):
//   magic   "BAATSECT"                      8 bytes
//   version u32                             4
//   config  u64 scenario config hash        8
//   count   u64 number of sections          8
//   then per section:
//     size  u64 payload bytes
//     crc   u32 CRC-32 of the payload
//     payload
//
// Writing goes through a tmp file + atomic rename exactly like
// write_snapshot_file: a crash mid-checkpoint leaves the previous
// checkpoint intact, never a half-written file.

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "snapshot/serialize.hpp"

namespace baat::snapshot {

inline constexpr std::uint32_t kSectionFormatVersion = 1;

/// Parsed "BAATSECT" file header.
struct SectionFileHeader {
  std::uint32_t version = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t section_count = 0;
};

/// Streams sections into `<path>.tmp`; commit() renames the tmp file over
/// `path` once every declared section has been appended. If the writer is
/// destroyed before commit() the tmp file is removed, so an exception
/// mid-checkpoint cannot clobber the previous good checkpoint.
class SectionFileWriter {
 public:
  /// Opens the tmp file and writes the header. `section_count` is declared
  /// up front so a truncated file is detectable without a trailer.
  SectionFileWriter(std::string path, std::uint64_t config_hash, std::uint64_t section_count);
  ~SectionFileWriter();

  SectionFileWriter(const SectionFileWriter&) = delete;
  SectionFileWriter& operator=(const SectionFileWriter&) = delete;

  /// Appends one section (size + CRC + payload) and flushes it to the OS.
  void append(std::span<const std::uint8_t> payload);

  /// Validates that exactly `section_count` sections were appended, then
  /// atomically renames the tmp file over the target path.
  void commit();

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  std::uint64_t declared_ = 0;
  std::uint64_t written_ = 0;
  bool committed_ = false;
};

/// Reads a "BAATSECT" file section by section, CRC-checking each payload
/// as it is pulled, so only one section's bytes are resident at a time.
class SectionFileReader {
 public:
  /// Opens the file and validates magic/version/config hash. Pass
  /// `expected_config_hash == 0` to skip the config check (used by
  /// inspection tooling).
  SectionFileReader(std::string path, std::uint64_t expected_config_hash);

  [[nodiscard]] const SectionFileHeader& header() const { return header_; }
  [[nodiscard]] std::uint64_t sections_read() const { return read_; }

  /// Reads and CRC-checks the next section's payload. Throws SnapshotError
  /// if all declared sections were already consumed, on truncation, or on
  /// CRC mismatch (the message names the section index).
  std::vector<std::uint8_t> read_section();

  /// Throws unless every declared section was read and the file ends
  /// exactly there — trailing garbage means corruption.
  void finish();

 private:
  std::string path_;
  std::ifstream in_;
  SectionFileHeader header_;
  std::uint64_t read_ = 0;
};

}  // namespace baat::snapshot
