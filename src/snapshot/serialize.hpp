#pragma once

// Binary serialization primitives for state snapshots (DESIGN.md §5f).
//
// Snapshots must round-trip the simulation state *bit-identically* — a
// resumed run has to reproduce the uninterrupted run byte-for-byte — so
// every scalar is written in a fixed little-endian layout and doubles are
// transported as their raw IEEE-754 bit patterns (std::bit_cast), never
// through text formatting. The writer appends to a growable byte buffer;
// the reader walks a borrowed byte span and throws SnapshotError (with a
// byte offset) on any underrun instead of reading past the end, so a
// truncated or corrupted file is a readable failure, never UB.
//
// This layer is deliberately dependency-free (pure std) and knows nothing
// about batteries or clusters: domain types serialize themselves via
// save_state(SnapshotWriter&) / load_state(SnapshotReader&) members living
// next to their private state.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace baat::snapshot {

/// Raised on any malformed snapshot: truncation, bad magic, CRC mismatch,
/// version or config-hash mismatch. The message is meant for the user.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Appends fixed-layout little-endian scalars to a byte buffer.
class SnapshotWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  /// Raw IEEE-754 bit pattern; NaN payloads and signed zeros survive.
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  /// u64 length prefix + raw bytes.
  void write_string(std::string_view s);

  void write_f64_vec(const std::vector<double>& v);
  void write_u64_vec(const std::vector<std::uint64_t>& v);
  void write_u8_vec(const std::vector<std::uint8_t>& v);
  void write_bool_vec(const std::vector<bool>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Walks a borrowed byte span; throws SnapshotError on underrun. The span
/// must outlive the reader.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  bool read_bool() { return read_u8() != 0; }
  std::string read_string();

  std::vector<double> read_f64_vec();
  std::vector<std::uint64_t> read_u64_vec();
  std::vector<std::uint8_t> read_u8_vec();
  std::vector<bool> read_bool_vec();

  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  /// True once every byte has been consumed; callers check this after a
  /// full load to catch trailing garbage.
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t n);
  /// Length prefix for a sequence about to be materialized; bounds the
  /// claimed count by the bytes actually left so a corrupted length cannot
  /// drive a multi-gigabyte allocation before the underrun is noticed.
  std::size_t read_length(std::size_t elem_size);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace baat::snapshot
