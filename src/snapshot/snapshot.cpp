#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace baat::snapshot {

namespace {

constexpr char kMagic[8] = {'B', 'A', 'A', 'T', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderSize = 32;

std::vector<std::uint8_t> read_all_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("cannot open snapshot file '" + path + "'");
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw SnapshotError("I/O error reading snapshot file '" + path + "'");
  }
  return bytes;
}

/// Validates everything in the container and returns (header, full bytes).
std::pair<SnapshotHeader, std::vector<std::uint8_t>> read_and_check(const std::string& path) {
  std::vector<std::uint8_t> bytes = read_all_bytes(path);
  if (bytes.size() < kHeaderSize) {
    throw SnapshotError("snapshot file '" + path + "' is truncated: " +
                        std::to_string(bytes.size()) + " bytes, header needs " +
                        std::to_string(kHeaderSize));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i])) {
      throw SnapshotError("'" + path + "' is not a BAAT snapshot (bad magic)");
    }
  }
  SnapshotReader header_reader(std::span<const std::uint8_t>(bytes).subspan(8, kHeaderSize - 8));
  SnapshotHeader h;
  h.version = header_reader.read_u32();
  h.config_hash = header_reader.read_u64();
  h.payload_size = header_reader.read_u64();
  h.payload_crc = header_reader.read_u32();
  if (h.version != kFormatVersion) {
    throw SnapshotError("snapshot file '" + path + "' has format version " +
                        std::to_string(h.version) + " but this build reads version " +
                        std::to_string(kFormatVersion) +
                        "; re-run from scratch or use a matching build");
  }
  if (bytes.size() - kHeaderSize != h.payload_size) {
    throw SnapshotError("snapshot file '" + path + "' is truncated or padded: header declares " +
                        std::to_string(h.payload_size) + " payload bytes but the file holds " +
                        std::to_string(bytes.size() - kHeaderSize));
  }
  const auto payload = std::span<const std::uint8_t>(bytes).subspan(kHeaderSize);
  const std::uint32_t crc = crc32(payload);
  if (crc != h.payload_crc) {
    throw SnapshotError("snapshot file '" + path + "' is corrupted: payload CRC mismatch");
  }
  return {h, std::move(bytes)};
}

}  // namespace

std::vector<std::uint8_t> snapshot_container_bytes(std::uint64_t config_hash,
                                                   std::span<const std::uint8_t> payload) {
  SnapshotWriter container;
  for (char c : kMagic) container.write_u8(static_cast<std::uint8_t>(c));
  container.write_u32(kFormatVersion);
  container.write_u64(config_hash);
  container.write_u64(payload.size());
  container.write_u32(crc32(payload));
  std::vector<std::uint8_t> bytes = container.bytes();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

void write_snapshot_file(const std::string& path, std::uint64_t config_hash,
                         std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> bytes = snapshot_container_bytes(config_hash, payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError("cannot open '" + tmp + "' for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ignore;
      std::filesystem::remove(tmp, ignore);
      throw SnapshotError("I/O error writing snapshot to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignore;
    std::filesystem::remove(tmp, ignore);
    throw SnapshotError("cannot rename '" + tmp + "' to '" + path + "': " + ec.message());
  }
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path,
                                             std::uint64_t expected_config_hash) {
  auto [header, bytes] = read_and_check(path);
  if (expected_config_hash != 0 && header.config_hash != expected_config_hash) {
    char got[32];
    char want[32];
    std::snprintf(got, sizeof got, "%016llx",
                  static_cast<unsigned long long>(header.config_hash));
    std::snprintf(want, sizeof want, "%016llx",
                  static_cast<unsigned long long>(expected_config_hash));
    throw SnapshotError("snapshot file '" + path + "' was produced under config hash " + got +
                        " but the current scenario hashes to " + want +
                        "; resuming a different scenario is refused (same seed, nodes, days, "
                        "policy, faults and math mode are required)");
  }
  return {bytes.begin() + 32, bytes.end()};
}

SnapshotHeader read_snapshot_header(const std::string& path) {
  return read_and_check(path).first;
}

}  // namespace baat::snapshot
