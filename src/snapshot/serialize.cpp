#include "snapshot/serialize.hpp"

#include <array>
#include <bit>

namespace baat::snapshot {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SnapshotWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void SnapshotWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void SnapshotWriter::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void SnapshotWriter::write_string(std::string_view s) {
  write_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void SnapshotWriter::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

void SnapshotWriter::write_u64_vec(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  for (std::uint64_t x : v) write_u64(x);
}

void SnapshotWriter::write_u8_vec(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void SnapshotWriter::write_bool_vec(const std::vector<bool>& v) {
  write_u64(v.size());
  for (bool b : v) write_u8(b ? 1 : 0);
}

void SnapshotReader::require(std::size_t n) {
  if (remaining() < n) {
    throw SnapshotError("snapshot truncated: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + " but only " +
                        std::to_string(remaining()) + " remain");
  }
}

std::size_t SnapshotReader::read_length(std::size_t elem_size) {
  const std::uint64_t n = read_u64();
  if (elem_size > 0 && n > remaining() / elem_size) {
    throw SnapshotError("snapshot corrupted: sequence of " + std::to_string(n) +
                        " elements at offset " + std::to_string(pos_) +
                        " exceeds the bytes remaining in the payload");
  }
  return static_cast<std::size_t>(n);
}

std::uint8_t SnapshotReader::read_u8() {
  require(1);
  return bytes_[pos_++];
}

std::uint32_t SnapshotReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t SnapshotReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double SnapshotReader::read_f64() {
  return std::bit_cast<double>(read_u64());
}

std::string SnapshotReader::read_string() {
  const std::size_t n = read_length(1);
  require(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> SnapshotReader::read_f64_vec() {
  const std::size_t n = read_length(8);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(read_f64());
  return v;
}

std::vector<std::uint64_t> SnapshotReader::read_u64_vec() {
  const std::size_t n = read_length(8);
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(read_u64());
  return v;
}

std::vector<std::uint8_t> SnapshotReader::read_u8_vec() {
  const std::size_t n = read_length(1);
  require(n);
  std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return v;
}

std::vector<bool> SnapshotReader::read_bool_vec() {
  const std::size_t n = read_length(1);
  std::vector<bool> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(read_u8() != 0);
  return v;
}

}  // namespace baat::snapshot
