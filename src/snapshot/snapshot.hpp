#pragma once

// Versioned snapshot *files* (DESIGN.md §5f): the container around a
// serialized payload. Layout, all little-endian:
//
//   offset  size  field
//        0     8  magic "BAATSNAP"
//        8     4  format version (kFormatVersion)
//       12     8  config hash — fingerprint of the scenario that produced
//                 the state; resuming under a different scenario is refused
//       20     8  payload size in bytes
//       28     4  CRC-32 of the payload
//       32     n  payload (SnapshotWriter bytes)
//
// Files are committed atomically: the bytes are written to "<path>.tmp" and
// renamed over the destination, so a crash mid-write leaves either the old
// snapshot or none — never a half-written file that a later resume would
// trip over. Readers verify magic, version, config hash, declared size and
// CRC before handing out a single payload byte; every failure is a
// SnapshotError with a message naming the file and the mismatch.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snapshot/serialize.hpp"

namespace baat::snapshot {

/// Bump whenever the payload layout changes; old files are refused with a
/// readable error rather than misinterpreted.
inline constexpr std::uint32_t kFormatVersion = 2;  // v2: fleet aging-attribution ledger state

/// The parsed container header (everything before the payload).
struct SnapshotHeader {
  std::uint32_t version = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

/// The full container (header + payload) as a byte vector — what
/// write_snapshot_file puts on disk. Exposed so in-memory consumers (the
/// crash flight recorder bundles a snapshot among other files) share the
/// exact on-disk format.
std::vector<std::uint8_t> snapshot_container_bytes(std::uint64_t config_hash,
                                                   std::span<const std::uint8_t> payload);

/// Atomically writes `payload` to `path` (tmp file + rename). Throws
/// SnapshotError on any filesystem failure.
void write_snapshot_file(const std::string& path, std::uint64_t config_hash,
                         std::span<const std::uint8_t> payload);

/// Reads, validates and returns the payload of the snapshot at `path`.
/// Throws SnapshotError if the file is missing, truncated, corrupted, from
/// a different format version, or — unless `expected_config_hash` is 0 —
/// was produced under a different scenario fingerprint.
std::vector<std::uint8_t> read_snapshot_file(const std::string& path,
                                             std::uint64_t expected_config_hash);

/// Parses and validates only the header (magic + version + size + CRC are
/// still checked against the file contents). Used by tools that want to
/// inspect a snapshot's provenance without loading state.
SnapshotHeader read_snapshot_header(const std::string& path);

}  // namespace baat::snapshot
