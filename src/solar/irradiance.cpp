#include "solar/irradiance.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace baat::solar {

double clear_sky_fraction(const SunWindow& w, Seconds time_of_day) {
  BAAT_REQUIRE(w.sunset > w.sunrise, "sun window must have positive length");
  const double t = time_of_day.value();
  if (t <= w.sunrise.value() || t >= w.sunset.value()) return 0.0;
  const double x = (t - w.sunrise.value()) / w.length().value();
  const double s = std::sin(std::numbers::pi * x);
  return s * s;
}

double clear_sky_hours(const SunWindow& w) {
  BAAT_REQUIRE(w.sunset > w.sunrise, "sun window must have positive length");
  // ∫₀¹ sin²(πx) dx = 1/2 exactly.
  return w.length().value() / 3600.0 * 0.5;
}

}  // namespace baat::solar
