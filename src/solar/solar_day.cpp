#include "solar/solar_day.hpp"

#include <cmath>

#include "util/require.hpp"

namespace baat::solar {

SolarDay::SolarDay(const PlantSpec& spec, DayType type, util::Rng rng)
    : spec_(spec), type_(type) {
  BAAT_REQUIRE(spec_.sample_period.value() > 0.0, "sample period must be positive");
  BAAT_REQUIRE(spec_.peak.value() > 0.0, "plant peak must be positive");

  const WeatherClassParams wp = weather_params(type);
  CloudProcess clouds{wp, rng.fork("clouds")};

  const double dt = spec_.sample_period.value();
  const auto n = static_cast<std::size_t>(std::ceil(86400.0 / dt));
  samples_.resize(n, 0.0);

  double raw_energy_wh = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const Seconds t{(static_cast<double>(k) + 0.5) * dt};
    const double clear = clear_sky_fraction(spec_.window, t);
    const double att = clouds.next();
    const double w = spec_.peak.value() * clear * att;
    samples_[k] = w;
    raw_energy_wh += w * dt / 3600.0;
  }

  if (spec_.normalize_energy && raw_energy_wh > 0.0) {
    const double jitter = 1.0 + spec_.energy_jitter * rng.fork("energy").normal();
    const double target_wh = wp.daily_energy_kwh * 1000.0 * std::max(0.5, jitter);
    const double scale = target_wh / raw_energy_wh;
    for (double& s : samples_) s *= scale;
    raw_energy_wh = target_wh;
  }
  energy_ = WattHours{raw_energy_wh};
}

Watts SolarDay::power(Seconds time_of_day) const {
  const double t = time_of_day.value();
  BAAT_REQUIRE(t >= 0.0 && t < 86400.0, "time of day must be in [0, 86400)");
  const auto idx = static_cast<std::size_t>(t / spec_.sample_period.value());
  return Watts{samples_[std::min(idx, samples_.size() - 1)]};
}

}  // namespace baat::solar
