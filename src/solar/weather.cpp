#include "solar/weather.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace baat::solar {

std::string_view day_type_name(DayType t) {
  switch (t) {
    case DayType::Sunny: return "Sunny";
    case DayType::Cloudy: return "Cloudy";
    case DayType::Rainy: return "Rainy";
  }
  return "?";
}

WeatherClassParams weather_params(DayType t) {
  // Energy targets from §VI-A: 8 / 6 / 3 kWh. Sunny days are steady,
  // cloudy days churn hard (broken cloud), rainy days are dim and dull.
  switch (t) {
    case DayType::Sunny: return {0.95, 0.03, 0.97, 8.0};
    case DayType::Cloudy: return {0.55, 0.18, 0.90, 6.0};
    case DayType::Rainy: return {0.25, 0.08, 0.95, 3.0};
  }
  return {0.5, 0.1, 0.9, 5.0};
}

CloudProcess::CloudProcess(const WeatherClassParams& params, util::Rng rng)
    : params_(params), rng_(rng), state_(params.mean_attenuation) {}

double CloudProcess::next() {
  const double rho = params_.correlation;
  state_ = params_.mean_attenuation +
           rho * (state_ - params_.mean_attenuation) + params_.sigma * rng_.normal();
  state_ = std::clamp(state_, 0.02, 1.0);
  return state_;
}

}  // namespace baat::solar
