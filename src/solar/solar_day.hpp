#pragma once

// One day of solar plant output at a fixed sample period, pre-generated so
// that matched experiments (the paper re-runs each policy under "the most
// similar solar generation scenarios", §VI-B) can share the exact same trace.

#include <vector>

#include "solar/irradiance.hpp"
#include "solar/weather.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace baat::solar {

using util::Seconds;
using util::WattHours;
using util::Watts;

struct PlantSpec {
  Watts peak{1500.0};        ///< clear-sky peak output of the PV line
  SunWindow window{};
  Seconds sample_period{util::seconds(60.0)};
  /// When true, scale the generated trace so the daily energy hits the
  /// weather class target (±jitter) — this is how we reproduce the paper's
  /// 8/6/3 kWh budget methodology exactly.
  bool normalize_energy = true;
  double energy_jitter = 0.05;  ///< relative day-to-day jitter on the target
};

class SolarDay {
 public:
  /// Generates a day of the given weather type. Deterministic in (spec, type, rng).
  SolarDay(const PlantSpec& spec, DayType type, util::Rng rng);

  /// Plant output at time-of-day t (stairstep over the sample period).
  [[nodiscard]] Watts power(Seconds time_of_day) const;

  [[nodiscard]] WattHours daily_energy() const { return energy_; }
  [[nodiscard]] DayType type() const { return type_; }
  [[nodiscard]] const PlantSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  PlantSpec spec_;
  DayType type_;
  std::vector<double> samples_;  // watts per sample slot
  WattHours energy_{0.0};
};

}  // namespace baat::solar
