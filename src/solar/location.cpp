#include "solar/location.hpp"

#include "util/require.hpp"

namespace baat::solar {

Location::Location(double sunshine_fraction) : fraction_(sunshine_fraction) {
  BAAT_REQUIRE(sunshine_fraction >= 0.0 && sunshine_fraction <= 1.0,
               "sunshine fraction must be in [0, 1]");
}

double Location::probability(DayType t) const {
  switch (t) {
    case DayType::Sunny: return fraction_;
    case DayType::Cloudy: return (1.0 - fraction_) * 0.6;
    case DayType::Rainy: return (1.0 - fraction_) * 0.4;
  }
  return 0.0;
}

double Location::expected_daily_energy_kwh() const {
  double e = 0.0;
  for (DayType t : {DayType::Sunny, DayType::Cloudy, DayType::Rainy}) {
    e += probability(t) * weather_params(t).daily_energy_kwh;
  }
  return e;
}

DayType Location::sample_day(util::Rng& rng) const {
  const double u = rng.uniform();
  if (u < probability(DayType::Sunny)) return DayType::Sunny;
  if (u < probability(DayType::Sunny) + probability(DayType::Cloudy)) return DayType::Cloudy;
  return DayType::Rainy;
}

std::vector<DayType> Location::sample_days(std::size_t n, util::Rng& rng) const {
  std::vector<DayType> days;
  days.reserve(n);
  for (std::size_t i = 0; i < n; ++i) days.push_back(sample_day(rng));
  return days;
}

}  // namespace baat::solar
