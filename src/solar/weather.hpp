#pragma once

// Weather day classes and the cloud attenuation process. The paper profiles
// its prototype under Sunny / Cloudy / Rainy days with total daily solar
// budgets of 8 / 6 / 3 kWh respectively (§VI-A, Fig 12); we reproduce those
// classes with an AR(1) attenuation process whose mean and variability
// differ per class.

#include <string_view>

#include "util/rng.hpp"

namespace baat::solar {

enum class DayType { Sunny, Cloudy, Rainy };

[[nodiscard]] std::string_view day_type_name(DayType t);

struct WeatherClassParams {
  double mean_attenuation;   ///< long-run mean of the attenuation process
  double sigma;              ///< innovation scale (cloud churn)
  double correlation;        ///< AR(1) coefficient per sample step
  double daily_energy_kwh;   ///< target plant output for the prototype scale
};

/// Paper-calibrated parameters for a weather class.
[[nodiscard]] WeatherClassParams weather_params(DayType t);

/// AR(1) cloud attenuation in [0, 1]; sample once per simulation step.
class CloudProcess {
 public:
  CloudProcess(const WeatherClassParams& params, util::Rng rng);

  /// Next attenuation sample (multiplies the clear-sky output).
  double next();

 private:
  WeatherClassParams params_;
  util::Rng rng_;
  double state_;
};

}  // namespace baat::solar
