#pragma once

// Geographic solar availability, parameterized by "sunshine fraction — the
// percentage of time when sunshine is recorded" ([41], used as the x-axis of
// Figs 14 and 17). A location turns the fraction into a distribution over
// weather day types and generates reproducible day sequences.

#include <vector>

#include "solar/weather.hpp"
#include "util/rng.hpp"

namespace baat::solar {

class Location {
 public:
  /// sunshine_fraction in [0, 1].
  explicit Location(double sunshine_fraction);

  [[nodiscard]] double sunshine_fraction() const { return fraction_; }

  /// P(Sunny) = fraction; the overcast remainder splits 60/40 into
  /// Cloudy/Rainy (broken cloud is more common than all-day rain).
  [[nodiscard]] double probability(DayType t) const;

  /// Expected daily plant energy in kWh at the prototype scale.
  [[nodiscard]] double expected_daily_energy_kwh() const;

  /// Sample one day's weather.
  DayType sample_day(util::Rng& rng) const;

  /// Sample a sequence of n days.
  std::vector<DayType> sample_days(std::size_t n, util::Rng& rng) const;

 private:
  double fraction_;
};

}  // namespace baat::solar
