#pragma once

// Solar trace import/export. The generated weather classes reproduce the
// paper's 8/6/3 kWh budget methodology, but a downstream user will want to
// feed *their* PV telemetry: this reads/writes a simple two-column CSV
// (seconds-of-day, watts) and adapts it into the SolarDay interface the
// rest of the system consumes.

#include <iosfwd>
#include <string>
#include <vector>

#include "solar/solar_day.hpp"
#include "util/units.hpp"

namespace baat::solar {

/// A measured (or exported) one-day power trace at a fixed sample period.
struct SolarTrace {
  util::Seconds sample_period{util::seconds(60.0)};
  std::vector<double> watts;  ///< one sample per period slot, from midnight

  [[nodiscard]] util::WattHours daily_energy() const;
  [[nodiscard]] util::Watts power(util::Seconds time_of_day) const;
};

/// Write a trace as "seconds,watts" CSV with a header row.
void write_trace_csv(std::ostream& out, const SolarTrace& trace);
void write_trace_csv(const std::string& path, const SolarTrace& trace);

/// Parse a "seconds,watts" CSV (header optional). Samples must be evenly
/// spaced and start at second 0; throws util::PreconditionError otherwise.
SolarTrace read_trace_csv(std::istream& in);
SolarTrace read_trace_csv(const std::string& path);

/// Sample a generated SolarDay into an exportable trace.
SolarTrace trace_from_day(const SolarDay& day,
                          util::Seconds sample_period = util::seconds(60.0));

}  // namespace baat::solar
