#pragma once

// Clear-sky irradiance shape over a day. The prototype taps "one solar power
// line from the PV panel on the roof" (§V-A); we model its clear-sky output
// as the standard sin² bell between sunrise and sunset, to be multiplied by
// a cloud attenuation process (weather.hpp) and the panel rating.

#include "util/units.hpp"

namespace baat::solar {

using util::Seconds;

struct SunWindow {
  Seconds sunrise{util::hours(6.5)};
  Seconds sunset{util::hours(19.5)};

  [[nodiscard]] Seconds length() const { return sunset - sunrise; }
};

/// Fraction [0, 1] of peak clear-sky output at time-of-day `t` (seconds from
/// midnight); 0 outside the sun window. Shape: sin²(π·(t-rise)/length).
double clear_sky_fraction(const SunWindow& w, Seconds time_of_day);

/// ∫ clear_sky_fraction dt over the whole day, in hours — the "equivalent
/// peak-sun hours" of the window (length/2 for the sin² shape).
double clear_sky_hours(const SunWindow& w);

}  // namespace baat::solar
