#include "solar/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace baat::solar {

util::WattHours SolarTrace::daily_energy() const {
  double wh = 0.0;
  for (double w : watts) wh += w * sample_period.value() / 3600.0;
  return util::WattHours{wh};
}

util::Watts SolarTrace::power(util::Seconds time_of_day) const {
  BAAT_REQUIRE(!watts.empty(), "empty trace");
  const double t = time_of_day.value();
  BAAT_REQUIRE(t >= 0.0 && t < 86400.0, "time of day must be in [0, 86400)");
  const auto idx = static_cast<std::size_t>(t / sample_period.value());
  return util::Watts{watts[std::min(idx, watts.size() - 1)]};
}

void write_trace_csv(std::ostream& out, const SolarTrace& trace) {
  out << "seconds,watts\n";
  for (std::size_t i = 0; i < trace.watts.size(); ++i) {
    out << static_cast<long>(static_cast<double>(i) * trace.sample_period.value())
        << ',' << trace.watts[i] << '\n';
  }
  if (!out) throw std::runtime_error("solar trace write failed");
}

void write_trace_csv(const std::string& path, const SolarTrace& trace) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot open " + path);
  write_trace_csv(out, trace);
}

SolarTrace read_trace_csv(std::istream& in) {
  SolarTrace trace;
  trace.watts.clear();
  std::string line;
  double prev_t = -1.0;
  double period = -1.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("seconds", 0) == 0) continue;  // header
    std::istringstream cells{line};
    std::string t_str;
    std::string w_str;
    BAAT_REQUIRE(std::getline(cells, t_str, ',') && std::getline(cells, w_str, ','),
                 "trace row must be 'seconds,watts'");
    double t = 0.0;
    double w = 0.0;
    try {
      t = std::stod(t_str);
      w = std::stod(w_str);
    } catch (const std::exception&) {
      throw util::PreconditionError("unparseable trace row: " + line);
    }
    BAAT_REQUIRE(w >= 0.0, "trace power must be >= 0");
    if (trace.watts.empty()) {
      BAAT_REQUIRE(t == 0.0, "trace must start at second 0");
    } else if (period < 0.0) {
      period = t - prev_t;
      BAAT_REQUIRE(period > 0.0, "trace timestamps must increase");
    } else {
      BAAT_REQUIRE(std::fabs((t - prev_t) - period) < 1e-6,
                   "trace samples must be evenly spaced");
    }
    prev_t = t;
    trace.watts.push_back(w);
  }
  BAAT_REQUIRE(trace.watts.size() >= 2, "trace needs at least two samples");
  trace.sample_period = util::Seconds{period};
  return trace;
}

SolarTrace read_trace_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_trace_csv(in);
}

SolarTrace trace_from_day(const SolarDay& day, util::Seconds sample_period) {
  BAAT_REQUIRE(sample_period.value() > 0.0, "sample period must be positive");
  SolarTrace trace;
  trace.sample_period = sample_period;
  const auto n = static_cast<std::size_t>(86400.0 / sample_period.value());
  trace.watts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace.watts.push_back(
        day.power(util::Seconds{static_cast<double>(i) * sample_period.value()}).value());
  }
  return trace;
}

}  // namespace baat::solar
