#pragma once

// Offline battery test procedures — the instrumented measurements behind
// Figs 3, 4 and 5. Each probe works on a *copy* of the battery (Battery is
// a value type), so probing never perturbs the unit under simulation, just
// like the paper's monthly capacity tests on the prototype.

#include "battery/battery.hpp"

namespace baat::battery {

struct ProbeResult {
  Volts full_voltage{0.0};        ///< terminal voltage, fully charged, C/20 load (Fig 3)
  double capacity_fraction = 0.0; ///< delivered Ah / nameplate on a full C/10 cycle (Fig 4)
  util::WattHours energy_per_cycle{0.0};  ///< Wh delivered in that cycle (Fig 4)
  double round_trip_efficiency = 0.0;     ///< Wh out / Wh in over a full cycle (Fig 5)
};

/// Fully recharge a battery copy at its natural acceptance rate. Returns the
/// charged copy. `step` is the integration step of the test rig.
Battery charge_to_full(Battery b, Seconds step = util::minutes(1.0));

/// Run the monthly test procedure on a copy of `b`: charge to full, read the
/// loaded terminal voltage, discharge at ~C/10 to the cutoff while metering
/// energy, then recharge while metering energy.
ProbeResult run_probe(const Battery& b, Seconds step = util::minutes(1.0));

}  // namespace baat::battery
