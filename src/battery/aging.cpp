#include "battery/aging.hpp"

#include "battery/step_math.hpp"
#include "util/require.hpp"

namespace baat::battery {

// The rate equations and effect mappings live in step_math.hpp, shared with
// the fleet tick kernel; AgingModel is the stateful object-per-cell wrapper.

AgingModel::AgingModel(AgingParams params, AmpereHours nameplate_capacity, int cells)
    : params_(params), capacity_(nameplate_capacity), cells_(cells) {
  BAAT_REQUIRE(capacity_.value() > 0.0, "nameplate capacity must be positive");
  BAAT_REQUIRE(cells_ > 0, "cell count must be positive");
}

void AgingModel::step(const OperatingPoint& op, Seconds dt) {
  detail::aging_mechanism_step(params_, capacity_.value(), cells_, op, dt,
                               arrhenius_factor(op.temperature), state_);
}

void AgingModel::on_full_charge() {
  state_.stratification *= params_.stratification_heal_factor;
}

double AgingModel::capacity_fraction() const {
  return detail::aging_capacity_fraction(params_, state_);
}

double AgingModel::resistance_factor() const {
  return detail::aging_resistance_factor(params_, state_);
}

Volts AgingModel::ocv_sag_per_cell() const {
  return Volts{detail::aging_ocv_sag_v(params_, capacity_fraction())};
}

double AgingModel::coulombic_derating() const {
  return detail::aging_coulombic_derating_f(params_, capacity_fraction());
}

}  // namespace baat::battery
