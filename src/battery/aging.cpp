#include "battery/aging.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace baat::battery {

AgingModel::AgingModel(AgingParams params, AmpereHours nameplate_capacity, int cells)
    : params_(params), capacity_(nameplate_capacity), cells_(cells) {
  BAAT_REQUIRE(capacity_.value() > 0.0, "nameplate capacity must be positive");
  BAAT_REQUIRE(cells_ > 0, "cell count must be positive");
}

void AgingModel::step(const OperatingPoint& op, Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(op.soc >= 0.0 && op.soc <= 1.0, "soc must be in [0, 1]");

  const double arr = arrhenius_factor(op.temperature);
  const double dt_s = dt.value();
  const double i = op.current.value();  // >0 discharge
  const double v_cell = op.terminal_voltage.value() / cells_;

  // Active-mass shedding: proportional to Ah moved (both directions stress
  // the plates, discharge dominates), amplified at low SoC and by fast
  // temperature changes (§II-B.2).
  const double efc_moved = std::fabs(i) * dt_s / 3600.0 / capacity_.value();
  if (efc_moved > 0.0) {
    const double low_soc = 1.0 + params_.shedding_low_soc_gain * (1.0 - op.soc);
    const double dtemp = 1.0 + params_.shedding_dtemp_gain * op.temperature_rate_k_per_h;
    const double direction = i > 0.0 ? 1.0 : 0.35;  // charging stresses less
    state_.shedding +=
        params_.shedding_per_efc * efc_moved * low_soc * dtemp * arr * direction;
  }

  // Sulphation: grows while sitting below the knee, worse the deeper the
  // discharge and the longer since the last full recharge (§II-B.3).
  if (op.soc < params_.sulphation_knee_soc) {
    const double depth = (params_.sulphation_knee_soc - op.soc) / params_.sulphation_knee_soc;
    const double staleness =
        1.0 + op.time_since_full_charge.value() / params_.sulphation_memory.value();
    state_.sulphation += params_.sulphation_per_s * depth * staleness * arr * dt_s;
  }

  // Grid corrosion: calendar aging accelerated by temperature and by charge
  // polarization above float level (§II-B.1).
  const double over_v = std::max(0.0, v_cell - params_.corrosion_voltage_knee_cell.value());
  const double v_gain = 1.0 + params_.corrosion_voltage_gain * over_v;
  state_.corrosion += params_.corrosion_per_s * arr * (i < 0.0 ? v_gain : 1.0) * dt_s;

  // Water loss: the share of charge current that drives gassing once the
  // per-cell voltage passes the float knee (§II-B.4); the share ramps to 1
  // as the voltage approaches the gassing level.
  if (i < 0.0 && v_cell > params_.corrosion_voltage_knee_cell.value()) {
    const double gassing_frac =
        util::clamp01((v_cell - params_.corrosion_voltage_knee_cell.value()) / 0.15);
    const double gas_efc = std::fabs(i) * dt_s / 3600.0 * gassing_frac / capacity_.value();
    state_.water_loss += params_.water_per_gassing_efc * gas_efc * arr;
  }

  // Stratification: builds while deeply discharged with small currents and
  // no full recharge (§II-B.5); saturates, and on_full_charge() heals it.
  const double low_i_amperes = params_.stratification_low_current_c * capacity_.value();
  if (op.soc < 0.5 && std::fabs(i) < low_i_amperes) {
    state_.stratification =
        std::min(params_.stratification_cap,
                 state_.stratification + params_.stratification_per_s * arr * dt_s);
  }
}

void AgingModel::on_full_charge() {
  state_.stratification *= params_.stratification_heal_factor;
}

double AgingModel::capacity_fraction() const {
  const double fade = params_.capacity_w_corrosion * state_.corrosion +
                      state_.shedding + state_.sulphation + state_.stratification +
                      params_.capacity_w_water * state_.water_loss;
  return std::max(0.05, 1.0 - fade);
}

double AgingModel::resistance_factor() const {
  return 1.0 + params_.resistance_w_corrosion * state_.corrosion +
         params_.resistance_w_sulphation * state_.sulphation +
         params_.resistance_w_shedding * state_.shedding +
         params_.resistance_w_water * state_.water_loss;
}

Volts AgingModel::ocv_sag_per_cell() const {
  return Volts{params_.ocv_sag_v_per_fade_cell * (1.0 - capacity_fraction())};
}

double AgingModel::coulombic_derating() const {
  return std::max(0.6, 1.0 - params_.coulombic_fade * (1.0 - capacity_fraction()));
}

}  // namespace baat::battery
