#include "battery/kibam.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace baat::battery {

Kibam::Kibam(KibamParams params, double initial_soc)
    : params_(params), ekt_key_(std::numeric_limits<double>::quiet_NaN()) {
  BAAT_REQUIRE(params_.total_capacity.value() > 0.0, "capacity must be positive");
  BAAT_REQUIRE(params_.available_fraction > 0.0 && params_.available_fraction < 1.0,
               "available fraction must be in (0, 1)");
  BAAT_REQUIRE(params_.rate_constant_per_h > 0.0, "rate constant must be positive");
  BAAT_REQUIRE(initial_soc >= 0.0 && initial_soc <= 1.0, "soc must be in [0, 1]");
  const double q_total = params_.total_capacity.value() * initial_soc;
  q_avail_ = q_total * params_.available_fraction;
  q_bound_ = q_total * (1.0 - params_.available_fraction);
}

double Kibam::soc() const {
  return (q_avail_ + q_bound_) / params_.total_capacity.value();
}

double Kibam::ekt(double kt) const {
  if (kt != ekt_key_) {
    ekt_key_ = kt;
    ekt_val_ = std::exp(-kt);
  }
  return ekt_val_;
}

Amperes Kibam::step(Amperes current, Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  const double c = params_.available_fraction;
  const double k = params_.rate_constant_per_h;  // 1/h
  const double t = dt.value() / 3600.0;          // hours
  double i = current.value();                    // A (+ discharge)

  // Clamp: the available well cannot go negative on discharge, and the
  // whole battery cannot exceed capacity on charge.
  if (i > 0.0) {
    i = std::min(i, q_avail_ / t);
  } else if (i < 0.0) {
    const double headroom =
        params_.total_capacity.value() - (q_avail_ + q_bound_);
    i = -std::min(-i, headroom / t);
  }

  // Exact KiBaM update (Manwell–McGowan closed form) for constant current
  // over the step.
  const double q0 = q_avail_ + q_bound_;
  const double ekt = this->ekt(k * t);
  const double q_avail_new =
      q_avail_ * ekt + (q0 * k * c - i) * (1.0 - ekt) / k - i * c * (k * t - 1.0 + ekt) / k;
  const double q_bound_new =
      q_bound_ * ekt + q0 * (1.0 - c) * (1.0 - ekt) -
      i * (1.0 - c) * (k * t - 1.0 + ekt) / k;

  q_avail_ = std::max(0.0, q_avail_new);
  q_bound_ = std::max(0.0, q_bound_new);
  const double cap = params_.total_capacity.value();
  if (q_avail_ + q_bound_ > cap) {
    const double scale = cap / (q_avail_ + q_bound_);
    q_avail_ *= scale;
    q_bound_ *= scale;
  }
  return Amperes{i};
}

Amperes Kibam::max_discharge_current(Seconds duration) const {
  BAAT_REQUIRE(duration.value() > 0.0, "duration must be positive");
  const double c = params_.available_fraction;
  const double k = params_.rate_constant_per_h;
  const double t = duration.value() / 3600.0;
  const double q0 = q_avail_ + q_bound_;
  const double ekt = this->ekt(k * t);
  // Largest i such that q_avail stays >= 0 at the end of the window.
  const double denom =
      (1.0 - ekt) / k + c * (k * t - 1.0 + ekt) / k;
  if (denom <= 0.0) return Amperes{0.0};
  const double numer = q_avail_ * ekt + q0 * k * c * (1.0 - ekt) / k;
  return Amperes{std::max(0.0, numer / denom)};
}

}  // namespace baat::battery
