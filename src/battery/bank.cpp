#include "battery/bank.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::battery {

namespace {
double truncated_scale(util::Rng& rng, double sigma) {
  const double draw = rng.normal(1.0, sigma);
  return std::clamp(draw, 1.0 - 3.0 * sigma, 1.0 + 3.0 * sigma);
}

void check_spec(const BankSpec& spec) {
  BAAT_REQUIRE(spec.units > 0, "bank must have at least one unit");
  BAAT_REQUIRE(spec.capacity_sigma >= 0.0 && spec.capacity_sigma < 0.3,
               "capacity sigma out of plausible range");
  BAAT_REQUIRE(spec.resistance_sigma >= 0.0 && spec.resistance_sigma < 0.5,
               "resistance sigma out of plausible range");
}
}  // namespace

std::vector<Battery> make_bank(const BankSpec& spec, util::Rng& rng) {
  check_spec(spec);
  std::vector<Battery> bank;
  bank.reserve(spec.units);
  for (std::size_t i = 0; i < spec.units; ++i) {
    const double cap_scale =
        spec.capacity_sigma > 0.0 ? truncated_scale(rng, spec.capacity_sigma) : 1.0;
    const double res_scale =
        spec.resistance_sigma > 0.0 ? truncated_scale(rng, spec.resistance_sigma) : 1.0;
    bank.emplace_back(spec.chemistry, spec.aging, spec.thermal, cap_scale, res_scale,
                      spec.initial_soc, spec.math);
  }
  return bank;
}

void apply_chemistry_preset(BankSpec& spec, Chemistry kind) {
  const ChemistryModel m = chemistry_model(kind);
  spec.kind = m.kind;
  spec.ocv = m.ocv;
  spec.chemistry = m.electrical;
  spec.aging = m.aging;
  spec.li = m.li;
  spec.cycle_curve = m.cycle_curve;
}

std::unique_ptr<FleetState> make_fleet(const BankSpec& spec, util::Rng& rng) {
  check_spec(spec);
  ChemistryModel model;
  model.kind = spec.kind;
  model.ocv = spec.ocv;
  model.electrical = spec.chemistry;
  model.aging = spec.aging;
  model.li = spec.li;
  model.cycle_curve = spec.cycle_curve;
  auto fleet = std::make_unique<FleetState>(model, spec.thermal, spec.math);
  for (std::size_t i = 0; i < spec.units; ++i) {
    // Same draw order as make_bank: capacity first, then resistance.
    const double cap_scale =
        spec.capacity_sigma > 0.0 ? truncated_scale(rng, spec.capacity_sigma) : 1.0;
    const double res_scale =
        spec.resistance_sigma > 0.0 ? truncated_scale(rng, spec.resistance_sigma) : 1.0;
    fleet->add_cell(cap_scale, res_scale, spec.initial_soc);
  }
  return fleet;
}

std::vector<Battery> fleet_views(FleetState& fleet) {
  std::vector<Battery> views;
  views.reserve(fleet.size());
  for (std::size_t c = 0; c < fleet.size(); ++c) views.emplace_back(fleet, c);
  return views;
}

}  // namespace baat::battery
