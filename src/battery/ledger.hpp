#pragma once

// Aging-attribution ledger (DESIGN.md §5g): per-cell, per-mechanism
// accounting of capacity fade and cycle-life consumption, accumulated
// allocation-free inside the fleet kernel and rolled up per bank/cluster at
// day boundaries.
//
// The attribution is exact by construction: fade components are the very
// weighted terms detail::aging_capacity_fraction sums, taken in the same
// order, so for any cell (or any delta between two rollups) the mechanism
// parts reproduce the total fade to within a few ulps — the 1e-9 invariant
// the property suite asserts is generous.
//
// Cycle-life consumption runs on a *second* axis: an online rainflow
// counter (ASTM E1049, the same decomposition rainflow.hpp applies offline)
// tracks SoC turning points per cell in a bounded stack and converts every
// closed cycle into Miner's-rule damage under a CycleLifeCurve. It answers
// "how much rated cycle life did this usage consume", where the mechanism
// fade answers "how much capacity is physically gone"; the two deliberately
// do not sum.

#include <cstdint>
#include <vector>

#include "battery/aging.hpp"
#include "battery/cycle_life.hpp"
#include "snapshot/serialize.hpp"

namespace baat::battery {

/// Capacity fade split by mechanism, in fade units (fraction of nameplate
/// capacity destroyed). Each field is the exact weighted term that
/// detail::aging_capacity_fraction charges for the mechanism.
struct MechanismFade {
  double corrosion = 0.0;       ///< capacity_w_corrosion * state.corrosion
  double shedding = 0.0;
  double sulphation = 0.0;
  double stratification = 0.0;
  double water_loss = 0.0;      ///< capacity_w_water * state.water_loss

  /// Total fade, summed in aging_capacity_fraction's evaluation order so
  /// the attribution reproduces the kernel's number bit-for-bit (before the
  /// 0.05 capacity floor).
  [[nodiscard]] double total() const {
    return corrosion + shedding + sulphation + stratification + water_loss;
  }

  MechanismFade& operator+=(const MechanismFade& o) {
    corrosion += o.corrosion;
    shedding += o.shedding;
    sulphation += o.sulphation;
    stratification += o.stratification;
    water_loss += o.water_loss;
    return *this;
  }
  MechanismFade& operator-=(const MechanismFade& o) {
    corrosion -= o.corrosion;
    shedding -= o.shedding;
    sulphation -= o.sulphation;
    stratification -= o.stratification;
    water_loss -= o.water_loss;
    return *this;
  }
};

/// The fade attribution of an aging state: exactly the weighted terms of
/// detail::aging_capacity_fraction, one per mechanism.
[[nodiscard]] MechanismFade fade_components(const AgingParams& p, const AgingState& s);

/// One cell's ledger entry over a rollup window (or since birth). Fade
/// deltas can be negative: a full (equalizing) charge partially heals
/// stratification.
struct CellLedgerEntry {
  MechanismFade fade;            ///< per-mechanism capacity fade
  double cycle_damage = 0.0;     ///< Miner's-rule cycle-life fraction consumed
  double efc = 0.0;              ///< equivalent full cycles discharged
  double low_soc_dwell_s = 0.0;  ///< seconds spent below the 40% knee
};

/// Bank/cluster aggregate of cell entries.
struct LedgerRollup {
  MechanismFade fade;
  double cycle_damage = 0.0;
  double efc = 0.0;
  double low_soc_dwell_s = 0.0;
  std::size_t cells = 0;

  void add(const CellLedgerEntry& e) {
    fade += e.fade;
    cycle_damage += e.cycle_damage;
    efc += e.efc;
    low_soc_dwell_s += e.low_soc_dwell_s;
    ++cells;
  }
  LedgerRollup& operator+=(const LedgerRollup& o) {
    fade += o.fade;
    cycle_damage += o.cycle_damage;
    efc += o.efc;
    low_soc_dwell_s += o.low_soc_dwell_s;
    cells += o.cells;
    return *this;
  }
};

/// Online rainflow cycle counter over one cell's SoC trajectory.
///
/// Allocation-free after construction: turning points live in a fixed-size
/// stack. Each SoC sample either extends the current monotone excursion
/// (the overwhelmingly common case — two compares and a store) or commits a
/// turning point and runs the three-point ASTM E1049 reduction, converting
/// every closed cycle into damage under the curve. A full stack spills its
/// oldest point as a half cycle, so pathological nesting degrades the count
/// gracefully instead of growing memory. Residual (still-open) excursions
/// are *not* charged until flush_residuals(), mirroring the offline
/// counter's half-cycle treatment.
class OnlineRainflow {
 public:
  /// Fixed turning-point stack depth. 32 nests far deeper than any daily
  /// charge/discharge pattern reaches; the spill path is a safety valve.
  static constexpr std::size_t kStackDepth = 32;

  explicit OnlineRainflow(CycleLifeCurve curve = CycleLifeCurve{}) : curve_(curve) {}

  /// Feed the next SoC sample. Returns the damage charged by cycles closed
  /// (or spilled) by this sample; also accumulated into damage().
  ///
  /// Runs once per cell-tick on the kernel hot path, so the overwhelmingly
  /// common outcomes — a flat sample or a same-direction extension — are
  /// decided inline in a handful of compares; only genuine turning points
  /// take the out-of-line reduction path.
  double push(double soc) {
    // Clamp like the offline path: callers feed raw SoC which can sit a few
    // ulps outside [0,1] in fast-math mode. Ternaries keep it branchless.
    soc = soc < 0.0 ? 0.0 : (soc > 1.0 ? 1.0 : soc);
    const double d = soc - last_;
    if (d * dir_sign_ > kFlatEps) {
      // Same-direction extension beyond the noise floor — the hot case,
      // decided by one multiply (dir_sign_ is ±1, or 0 while the direction
      // is unknown, which routes every cold case to push_slow). Only last_
      // records the moving endpoint — stack_[depth_ - 1] is synced at the
      // commit points (push_reversal, flush_residuals, save_state), so
      // this path touches a single cache line and does no closure work:
      // like the offline walk, the E1049 reduction runs when the turning
      // point commits, with X as the full excursion range. Deferral moves
      // *when* a closed cycle's damage is recognized (to the reversal, as
      // offline does) but never its amount.
      last_ = soc;
      return 0.0;
    }
    if (d < kFlatEps && d > -kFlatEps) return 0.0;  // flat: numeric noise
    return push_slow(soc, d > 0.0 ? 1 : -1);
  }

  /// Charge the still-open excursions as half cycles and reset the stack
  /// (the accumulated damage is kept). Mirrors the offline counter's
  /// residual treatment; call at end of life, not per rollup — cycles that
  /// span rollup windows must stay open to be counted at full depth.
  double flush_residuals();

  [[nodiscard]] double damage() const { return damage_; }
  [[nodiscard]] std::size_t open_points() const { return depth_; }
  [[nodiscard]] const CycleLifeCurve& curve() const { return curve_; }

  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  /// Same flat threshold the offline counter uses when compressing turning
  /// points (rainflow.cpp); excursions below it are numeric noise.
  static constexpr double kFlatEps = 1e-12;

  [[nodiscard]] double cycle_damage(double depth, double count) const;
  double push_slow(double soc, int s);         ///< every non-extension case
  double push_first(double soc);               ///< opens the history
  double push_reversal(double soc, int dir);   ///< commits a turning point
  double reduce();  ///< three-point reduction; returns damage released

  // Hot fast-path scalars first so a same-direction extension (the
  // overwhelmingly common sample) reads and writes one cache line; the
  // turning-point stack is only touched when a point commits. Invariant:
  // whenever depth_ >= 1 the *logical* open endpoint is last_, and
  // stack_[depth_ - 1] is synced to it lazily at the commit points.
  double last_ = -1.0;              ///< previous sample (-1 = none yet)
  // Derived from dir_ whenever it changes; not serialized.
  double dir_sign_ = 0.0;           ///< dir_ as ±1.0 (0.0 = unknown)
  int dir_ = 0;                     ///< current excursion direction, 0 = unknown
  std::size_t depth_ = 0;
  double damage_ = 0.0;             ///< Miner fraction from closed cycles
  CycleLifeCurve curve_;
  double stack_[kStackDepth] = {};  ///< turning-point SoC values
};

}  // namespace baat::battery
