#pragma once

// First-order RC thermal model of a battery block. Ohmic (I²R) and gassing
// losses heat the mass; heat leaks to ambient through a fixed thermal
// resistance. Temperature feeds the Arrhenius factor in the aging model —
// the paper cites the classic "+10 °C halves lifetime" rule (§III-E, [26]).

#include "util/units.hpp"

namespace baat::battery {

using util::Celsius;
using util::Seconds;
using util::Watts;

struct ThermalParams {
  double heat_capacity_j_per_k = 8000.0;   ///< ~11 kg block, lead + acid + case
  double thermal_resistance_k_per_w = 0.8; ///< block surface to rack air
  Celsius ambient{25.0};
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params);

  /// Advance by dt with the given internal loss power.
  void step(Watts loss, Seconds dt);

  [[nodiscard]] Celsius temperature() const { return temp_; }
  [[nodiscard]] Celsius ambient() const { return params_.ambient; }
  void set_ambient(Celsius t) { params_.ambient = t; }

  /// Steady-state temperature for a sustained loss power.
  [[nodiscard]] Celsius steady_state(Watts loss) const;

 private:
  ThermalParams params_;
  Celsius temp_;
  double tau_;       ///< heat_capacity * thermal_resistance, seconds
  double decay_dt_;  ///< dt of the cached decay factor (NaN = none yet)
  double decay_ = 1.0;
};

/// Lifetime acceleration factor relative to 20 °C: doubles every +10 °C.
double arrhenius_factor(Celsius t);

}  // namespace baat::battery
