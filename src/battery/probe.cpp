#include "battery/probe.hpp"

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace baat::battery {

namespace {
constexpr double kMaxProbeHours = 48.0;
}

Battery charge_to_full(Battery b, Seconds step) {
  BAAT_REQUIRE(step.value() > 0.0, "step must be positive");
  const auto max_steps = static_cast<long>(kMaxProbeHours * 3600.0 / step.value());
  for (long i = 0; i < max_steps && b.soc() < 0.995; ++i) {
    const Amperes accept = b.max_charge_current();
    if (accept.value() <= 1e-6) break;
    b.step(Amperes{-accept.value()}, step);
  }
  return b;
}

ProbeResult run_probe(const Battery& b, Seconds step) {
  BAAT_REQUIRE(step.value() > 0.0, "step must be positive");
  ProbeResult r;

  Battery unit = charge_to_full(b, step);

  // Fig 3 measurement: terminal voltage of the fully charged unit under an
  // operating load. The prototype reads this during service, where a node
  // draws on the order of C/2 from its battery — that is where the aged
  // unit's resistance growth shows up as the paper's voltage droop.
  r.full_voltage = unit.terminal_voltage(Amperes{unit.nameplate().value() / 2.0});

  // Fig 4/5 discharge leg: ~C/10 constant current down to the cutoff.
  const Amperes i_test{unit.nameplate().value() / 10.0};
  const WattHours e_out_before = unit.counters().energy_discharged;
  const AmpereHours q_before = unit.counters().ah_discharged;
  const auto max_steps = static_cast<long>(kMaxProbeHours * 3600.0 / step.value());
  for (long k = 0; k < max_steps && unit.soc() > 0.0; ++k) {
    const auto res = unit.step(i_test, step);
    if (res.actual_current.value() <= 1e-6) break;  // low-voltage disconnect
  }
  const double ah_delivered = (unit.counters().ah_discharged - q_before).value();
  r.capacity_fraction = ah_delivered / unit.nameplate().value();
  r.energy_per_cycle = unit.counters().energy_discharged - e_out_before;

  // Fig 5 recharge leg: meter the energy needed to refill.
  const WattHours e_in_before = unit.counters().energy_charged;
  unit = charge_to_full(std::move(unit), step);
  const double e_in = (unit.counters().energy_charged - e_in_before).value();
  r.round_trip_efficiency = e_in > 0.0 ? r.energy_per_cycle.value() / e_in : 0.0;

  obs::global_registry().counter("battery.probes_run").inc();
  obs::emit(obs::EventKind::ProbeRun, -1, r.capacity_fraction,
            "offline capacity test");
  return r;
}

}  // namespace baat::battery
