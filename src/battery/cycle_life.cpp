#include "battery/cycle_life.hpp"

#include <cmath>

#include "util/require.hpp"

namespace baat::battery {

std::string_view manufacturer_name(Manufacturer m) {
  switch (m) {
    case Manufacturer::Hoppecke: return "Hoppecke";
    case Manufacturer::Trojan: return "Trojan";
    case Manufacturer::UPG: return "UPG";
  }
  return "?";
}

double CycleLifeCurve::cycles(double dod) const {
  BAAT_REQUIRE(dod > 0.0 && dod <= 1.0, "DoD must be in (0, 1]");
  const double d = std::max(dod, dod_min);
  return cycles_at_full * std::pow(d, -exponent);
}

AmpereHours CycleLifeCurve::lifetime_throughput(double dod, AmpereHours capacity) const {
  BAAT_REQUIRE(capacity.value() > 0.0, "capacity must be positive");
  return AmpereHours{cycles(dod) * std::max(dod, dod_min) * capacity.value()};
}

double CycleLifeCurve::damage_fraction(AmpereHours throughput, double dod,
                                       AmpereHours capacity) const {
  BAAT_REQUIRE(throughput.value() >= 0.0, "throughput must be >= 0");
  return throughput.value() / lifetime_throughput(dod, capacity).value();
}

CycleLifeCurve curve_for(Manufacturer m) {
  // Fits chosen so all three show the paper's headline property: cycle life
  // at DoD >= 50% is roughly half of the shallow-cycling life, with the
  // budget brand (UPG) both shorter-lived and more depth-sensitive.
  switch (m) {
    case Manufacturer::Hoppecke: return CycleLifeCurve{1400.0, 1.05, 0.05};
    case Manufacturer::Trojan: return CycleLifeCurve{1000.0, 1.10, 0.05};
    case Manufacturer::UPG: return CycleLifeCurve{450.0, 1.20, 0.05};
  }
  return CycleLifeCurve{};
}

}  // namespace baat::battery
