#include "battery/cycle_life.hpp"

#include <cmath>

#include "util/require.hpp"

namespace baat::battery {

std::string_view manufacturer_name(Manufacturer m) {
  switch (m) {
    case Manufacturer::Hoppecke: return "Hoppecke";
    case Manufacturer::Trojan: return "Trojan";
    case Manufacturer::UPG: return "UPG";
  }
  return "?";
}

namespace {

/// Log-log interpolation over the tabulated curve, extrapolating past both
/// ends on the end segments' slopes. `d` is already saturated at dod_min and
/// capped at 1 by the caller. The result is clamped to >= 1 cycle so Miner
/// damage per counted cycle can never exceed the cycle's count (and can
/// never be zero, negative, or infinite — the extrapolation bugs this guard
/// pins down).
double tabulated_cycles(const std::vector<std::pair<double, double>>& pts, double d) {
  BAAT_REQUIRE(pts.front().first > 0.0 && pts.front().second > 0.0,
               "cycle-life table entries must be positive");
  if (pts.size() == 1) return std::max(1.0, pts.front().second);
  // Find the segment bracketing d; before the first / past the last point we
  // reuse the nearest segment, which extends its log-log slope outward.
  std::size_t hi = 1;
  while (hi + 1 < pts.size() && pts[hi].first < d) ++hi;
  const auto& a = pts[hi - 1];
  const auto& b = pts[hi];
  BAAT_REQUIRE(b.first > a.first && a.second > 0.0 && b.second > 0.0,
               "cycle-life table must be strictly increasing in DoD with positive cycles");
  const double t = (std::log(d) - std::log(a.first)) /
                   (std::log(b.first) - std::log(a.first));
  const double log_n = std::log(a.second) + t * (std::log(b.second) - std::log(a.second));
  return std::max(1.0, std::exp(log_n));
}

}  // namespace

double CycleLifeCurve::cycles(double dod) const {
  BAAT_REQUIRE(dod > 0.0 && dod <= 1.0, "DoD must be in (0, 1]");
  const double d = std::max(dod, dod_min);
  if (!points.empty()) return tabulated_cycles(points, d);
  return cycles_at_full * std::pow(d, -exponent);
}

AmpereHours CycleLifeCurve::lifetime_throughput(double dod, AmpereHours capacity) const {
  BAAT_REQUIRE(capacity.value() > 0.0, "capacity must be positive");
  return AmpereHours{cycles(dod) * std::max(dod, dod_min) * capacity.value()};
}

double CycleLifeCurve::damage_fraction(AmpereHours throughput, double dod,
                                       AmpereHours capacity) const {
  BAAT_REQUIRE(throughput.value() >= 0.0, "throughput must be >= 0");
  return throughput.value() / lifetime_throughput(dod, capacity).value();
}

CycleLifeCurve curve_for(Manufacturer m) {
  // Fits chosen so all three show the paper's headline property: cycle life
  // at DoD >= 50% is roughly half of the shallow-cycling life, with the
  // budget brand (UPG) both shorter-lived and more depth-sensitive.
  switch (m) {
    case Manufacturer::Hoppecke: return CycleLifeCurve{1400.0, 1.05, 0.05};
    case Manufacturer::Trojan: return CycleLifeCurve{1000.0, 1.10, 0.05};
    case Manufacturer::UPG: return CycleLifeCurve{450.0, 1.20, 0.05};
  }
  return CycleLifeCurve{};
}

}  // namespace baat::battery
