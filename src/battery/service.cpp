#include "battery/service.hpp"

#include "util/require.hpp"

namespace baat::battery {

EqualizationResult equalize(Battery& unit, const EqualizationParams& params) {
  BAAT_REQUIRE(params.hold.value() > 0.0, "hold duration must be positive");
  BAAT_REQUIRE(params.step.value() > 0.0, "step must be positive");
  BAAT_REQUIRE(params.trickle_c_rate > 0.0, "trickle rate must be positive");
  BAAT_REQUIRE(params.residual_stratification >= 0.0 &&
                   params.residual_stratification <= 1.0,
               "residual fraction must be in [0, 1]");

  EqualizationResult result;
  result.stratification_before = unit.aging_state().stratification;
  const double water_before = unit.aging_state().water_loss;

  // Bulk charge to full at the natural acceptance rate.
  const auto max_bulk_steps =
      static_cast<long>(util::hours(24.0).value() / params.step.value());
  for (long i = 0; i < max_bulk_steps && unit.soc() < 0.995; ++i) {
    const Amperes accept = unit.max_charge_current();
    if (accept.value() <= 1e-6) break;
    unit.step(Amperes{-accept.value()}, params.step);
  }

  // Equalization hold: trickle overcharge at the full plateau. The cell is
  // full, so nearly all of this current gasses — the aging model accrues
  // the water loss and voltage-accelerated corrosion on its own.
  const double trickle = params.trickle_c_rate * unit.nameplate().value();
  const auto hold_steps = static_cast<long>(params.hold.value() / params.step.value());
  for (long i = 0; i < hold_steps; ++i) {
    unit.float_charge(Amperes{trickle}, params.step);
  }

  // The stirred electrolyte: stratification collapses to a residual.
  AgingState state = unit.aging_state();
  state.stratification *= params.residual_stratification;
  unit.set_aging_state(state);

  result.stratification_after = unit.aging_state().stratification;
  result.water_loss_added = unit.aging_state().water_loss - water_before;
  result.duration = params.hold;
  return result;
}

}  // namespace baat::battery
