#include "battery/ledger.hpp"

#include <algorithm>
#include <cmath>

namespace baat::battery {

MechanismFade fade_components(const AgingParams& p, const AgingState& s) {
  // Mirror detail::aging_capacity_fraction term by term: the attribution is
  // exact because these ARE the kernel's fade terms, not a re-derivation.
  MechanismFade f;
  f.corrosion = p.capacity_w_corrosion * s.corrosion;
  f.shedding = s.shedding;
  f.sulphation = s.sulphation;
  f.stratification = s.stratification;
  f.water_loss = p.capacity_w_water * s.water_loss;
  return f;
}

double OnlineRainflow::cycle_damage(double depth, double count) const {
  if (depth <= kFlatEps) return 0.0;
  return count / curve_.cycles(std::min(1.0, depth));
}

double OnlineRainflow::reduce() {
  double released = 0.0;
  // Three-point ASTM E1049 reduction, identical to the offline stack walk:
  // range Y = |s[-3]..s[-2]| closes once the newer range X reaches it. When
  // Y touches the history start (stack depth 3) it is a half cycle and the
  // start is discarded; interior ranges are full cycles.
  while (depth_ >= 3) {
    const double x = std::abs(stack_[depth_ - 1] - stack_[depth_ - 2]);
    const double y = std::abs(stack_[depth_ - 2] - stack_[depth_ - 3]);
    if (x < y) break;
    if (depth_ == 3) {
      released += cycle_damage(y, 0.5);
      stack_[0] = stack_[1];
      stack_[1] = stack_[2];
      depth_ = 2;
    } else {
      released += cycle_damage(y, 1.0);
      stack_[depth_ - 3] = stack_[depth_ - 1];
      depth_ -= 2;
    }
  }
  damage_ += released;
  return released;
}

double OnlineRainflow::push_slow(double soc, int s) {
  // Everything the inline fast path rejected: the opening sample, the
  // direction-fixing second sample, and genuine reversals. A same-direction
  // extension can never land here — the fast path's d * dir_sign_ test
  // accepts exactly the samples with |d| > kFlatEps and matching sign.
  if (last_ < 0.0) return push_first(soc);
  if (dir_ == 0) {
    // Direction now known: the start stays a committed turning point and
    // this sample opens the first excursion as its own stack slot.
    dir_ = s;
    dir_sign_ = static_cast<double>(s);
    stack_[depth_++] = soc;
    last_ = soc;
    return 0.0;
  }
  return push_reversal(soc, s);
}

double OnlineRainflow::push_first(double soc) {
  // First sample opens the history; it is the provisional first turning
  // point until the direction is known.
  stack_[depth_++] = soc;
  last_ = soc;
  return 0.0;
}

double OnlineRainflow::push_reversal(double soc, int dir) {
  // Reversal: the old endpoint becomes a committed turning point and the
  // new sample opens the next excursion. Extensions track the endpoint in
  // last_ only, so materialize it into the stack first, then run the
  // three-point reduction at the commit — the offline walk's per-point
  // order. X is the full excursion range here, closing any cycles the
  // excursion deepened past (the fast path defers all closure work to
  // this commit; the damage amount is identical, only recognized at the
  // turning point as the offline counter does).
  stack_[depth_ - 1] = last_;
  dir_ = dir;
  dir_sign_ = static_cast<double>(dir);
  double released = reduce();
  if (depth_ == kStackDepth) {
    // Safety valve: spill the oldest excursion as a half cycle so
    // pathological nesting degrades the count instead of growing memory.
    const double spilled = cycle_damage(std::abs(stack_[1] - stack_[0]), 0.5);
    released += spilled;
    damage_ += spilled;
    for (std::size_t i = 1; i < depth_; ++i) stack_[i - 1] = stack_[i];
    --depth_;
  }
  stack_[depth_++] = soc;
  last_ = soc;
  // The fresh reversal itself can already dominate the range below it
  // (a large single-sample jump), so the reduction runs again.
  return released + reduce();
}

double OnlineRainflow::flush_residuals() {
  // End of series: commit the open endpoint and run the reduction first —
  // a still-open excursion may dominate ranges below it, and those are
  // full cycles, not residue. What survives is the true residue, charged
  // as half cycles exactly like the offline counter's tail handling. The
  // stack resets but accumulated damage is kept.
  double released = 0.0;
  if (depth_ > 0) {
    stack_[depth_ - 1] = last_;
    released += reduce();  // reduce() accumulates into damage_ itself
  }
  double halves = 0.0;
  for (std::size_t i = 1; i < depth_; ++i) {
    halves += cycle_damage(std::abs(stack_[i] - stack_[i - 1]), 0.5);
  }
  depth_ = 0;
  dir_ = 0;
  dir_sign_ = 0.0;
  last_ = -1.0;
  damage_ += halves;
  return released + halves;
}

void OnlineRainflow::save_state(snapshot::SnapshotWriter& w) const {
  w.write_f64(curve_.cycles_at_full);
  w.write_f64(curve_.exponent);
  w.write_f64(curve_.dod_min);
  w.write_u64(static_cast<std::uint64_t>(depth_));
  // The open endpoint lives in last_ between commits; write the logical
  // stack so the snapshot format is unchanged by the lazy-sync optimization.
  for (std::size_t i = 0; i < depth_; ++i) {
    w.write_f64(i + 1 == depth_ ? last_ : stack_[i]);
  }
  w.write_f64(last_);
  w.write_i64(dir_);
  w.write_f64(damage_);
}

void OnlineRainflow::load_state(snapshot::SnapshotReader& r) {
  curve_.cycles_at_full = r.read_f64();
  curve_.exponent = r.read_f64();
  curve_.dod_min = r.read_f64();
  const std::uint64_t n = r.read_u64();
  if (n > kStackDepth) {
    throw snapshot::SnapshotError("rainflow stack depth exceeds kStackDepth");
  }
  depth_ = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < depth_; ++i) stack_[i] = r.read_f64();
  last_ = r.read_f64();
  dir_ = static_cast<int>(r.read_i64());
  damage_ = r.read_f64();
  dir_sign_ = static_cast<double>(dir_);  // derived, not serialized
}

}  // namespace baat::battery
