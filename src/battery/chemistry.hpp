#pragma once

// Electro-chemical behaviour of a valve-regulated lead-acid (VRLA) monoblock:
// open-circuit voltage curve, Peukert rate-capacity effect, internal
// resistance, and charge acceptance. The paper's prototype uses twelve
// 12 V / 35 Ah sealed lead-acid units (Fig 11); the defaults below model one
// such unit. All aging-induced drift (resistance growth, capacity fade) is
// layered on top by battery::AgingModel — this header is the *fresh-cell*
// physics.

#include <cstdint>
#include <string_view>

#include "util/units.hpp"

namespace baat::battery {

using util::Amperes;
using util::AmpereHours;
using util::Celsius;
using util::Volts;

/// Which chemistry model a fleet runs (DESIGN.md §5i). LeadAcid is the
/// paper-faithful default; the Li-ion presets and the energy-bucket tier are
/// hosted by the same SoA kernel behind `--chemistry`.
enum class Chemistry : std::uint8_t {
  LeadAcid = 0,  ///< VRLA monoblock, Shepherd/Peukert + five-mechanism aging
  LiNmc = 1,     ///< Li-ion NMC preset: rainflow cycle + Arrhenius calendar fade
  LiLfp = 2,     ///< Li-ion LFP preset: flat-OCV plateau, long cycle life
  Bucket = 3,    ///< low-fidelity energy bucket for huge sweeps
};

/// OCV-vs-SoC curve family; each chemistry picks one. The shapes map SoC in
/// [0,1] onto a normalized [0,1] voltage fraction between the chemistry's
/// empty and full per-cell OCV.
enum class OcvCurve : std::uint8_t {
  LeadAcidQuadratic = 0,  ///< mildly super-linear (steeper near empty)
  NmcCubic = 1,           ///< gentle S-shape, strictly increasing
  LfpPlateau = 2,         ///< flat mid-SoC plateau — stresses voltage-based SoC
  Linear = 3,             ///< the bucket tier's trivial curve
};

[[nodiscard]] std::string_view chemistry_name(Chemistry c);
/// Parse a `--chemistry` argument; returns false on an unknown name.
[[nodiscard]] bool parse_chemistry(std::string_view name, Chemistry& out);
/// The OCV curve family a chemistry preset uses.
[[nodiscard]] OcvCurve ocv_curve_for(Chemistry c);

/// Static parameters of one lead-acid monoblock (series string of cells).
struct LeadAcidParams {
  int cells = 6;                                  ///< 6 cells => 12 V nominal
  AmpereHours capacity_c20{35.0};                 ///< nameplate capacity at the 20 h rate
  Volts ocv_cell_full{2.125};                     ///< per-cell OCV at SoC = 1
  Volts ocv_cell_empty{1.95};                     ///< per-cell OCV at SoC = 0
  double r_internal_ohms = 0.015;                 ///< fresh internal resistance, whole block
  double peukert_exponent = 1.15;                 ///< rate-capacity exponent
  Volts cutoff_cell{1.75};                        ///< per-cell low-voltage disconnect (10.5 V)
  Volts gassing_cell{2.35};                       ///< per-cell gassing onset (14.1 V)
  Volts absorb_cell{2.40};                        ///< per-cell max charge voltage (14.4 V)
  double max_discharge_c_rate = 1.0;              ///< discharge current cap, multiples of C20
  double max_charge_c_rate = 0.25;                ///< bulk charge current cap (C/4)
  double coulombic_efficiency_bulk = 0.98;        ///< charge efficiency below the taper knee
  double coulombic_efficiency_full = 0.80;        ///< charge efficiency approaching SoC = 1
  double taper_knee_soc = 0.80;                   ///< SoC where CV taper begins
  double self_discharge_per_month = 0.03;         ///< standing loss (VRLA ~3%/month at 20°C)

  /// 20-hour-rate current (C20 / 20 h).
  [[nodiscard]] Amperes rated_current() const {
    return Amperes{capacity_c20.value() / 20.0};
  }
  [[nodiscard]] Volts cutoff_voltage() const { return Volts{cutoff_cell.value() * cells}; }
  [[nodiscard]] Volts gassing_voltage() const { return Volts{gassing_cell.value() * cells}; }
  [[nodiscard]] Volts absorb_voltage() const { return Volts{absorb_cell.value() * cells}; }
  [[nodiscard]] Volts nominal_voltage() const { return Volts{2.0 * cells}; }
};

/// Open-circuit voltage of the whole block at a given state of charge.
/// Mildly super-linear in SoC (steeper near empty), strictly increasing.
Volts open_circuit_voltage(const LeadAcidParams& p, double soc);

/// Inverse of open_circuit_voltage; finite out-of-range readings clamp to
/// [0, 1], but a non-finite reading (NaN/Inf sensor poison) propagates as NaN
/// so the run-health watchdog sees it instead of a silently pinned estimate
/// (the same poison-visibility contract the fastmath tiers keep). Used by
/// the telemetry layer to *estimate* SoC from a voltage reading, the way the
/// prototype's control server does (Table 2: "Voltage ... used for
/// calculating SoC").
double soc_from_voltage(const LeadAcidParams& p, Volts ocv);

/// Curve-aware inverse for the multi-chemistry estimator: same clamp/NaN
/// contract, inverting the given OCV family instead of the lead-acid
/// quadratic. `curve == LeadAcidQuadratic` is exactly soc_from_voltage.
double soc_from_voltage(const LeadAcidParams& p, Volts ocv, OcvCurve curve);

/// Curve-aware open-circuit voltage (the lead-acid overload above is the
/// `LeadAcidQuadratic` case, bit-for-bit).
Volts open_circuit_voltage(const LeadAcidParams& p, double soc, OcvCurve curve);

/// Peukert-corrected capacity available at a sustained discharge current.
/// At or below the 20 h rate this is the nameplate capacity; above it the
/// usable capacity shrinks as (I20/I)^(k-1).
AmpereHours effective_capacity(const LeadAcidParams& p, Amperes discharge_current);

/// Fraction [0,1] of the bulk charge current the cell accepts at `soc`
/// (constant-current below the taper knee, linear constant-voltage taper above).
double charge_acceptance(const LeadAcidParams& p, double soc);

/// Coulombic efficiency of charging at `soc` (drops near full as the charge
/// current increasingly drives gassing instead of conversion).
double coulombic_efficiency(const LeadAcidParams& p, double soc);

}  // namespace baat::battery
