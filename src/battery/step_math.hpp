#pragma once

// Single-definition inline physics of the battery tick. Every expression
// here is the one source of truth shared by the public wrappers in
// chemistry.cpp / aging.cpp / thermal.cpp and by the batched fleet kernel
// (fleet.cpp): the kernel inlines the whole step in one translation unit
// without duplicating a formula, so the two paths cannot drift apart.
// Bit-exactness contract (DESIGN.md §5e): these are the exact expressions
// the pre-kernel scalar code evaluated, in the same order, with no
// contraction-sensitive rewrites.

#include <algorithm>
#include <cmath>

#include "battery/aging.hpp"
#include "battery/chemistry.hpp"
#include "util/require.hpp"
#include "util/simd.hpp"
#include "util/units.hpp"

namespace baat::battery::detail {

// OCV shape: v(soc) = empty + span * (a*soc + (1-a)*soc^2) would be
// sub-linear near empty; lead-acid is the opposite (voltage collapses toward
// empty), so we use s(soc) = (1+c)*soc - c*soc^2 with c in (0,1):
// slope (1+c) at soc=0, (1-c) at soc=1, monotone on [0,1].
inline constexpr double kOcvCurvature = 0.25;

inline double ocv_shape(double soc) {
  return (1.0 + kOcvCurvature) * soc - kOcvCurvature * soc * soc;
}

/// Whole-block open-circuit voltage of the fresh cell, in volts.
inline double block_ocv_v(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double cell = p.ocv_cell_empty.value() + span * ocv_shape(soc);
  return cell * p.cells;
}

// --- multi-chemistry OCV curve families (DESIGN.md §5i) ----------------------
// Each maps SoC in [0,1] to a normalized voltage fraction in [0,1] between
// the chemistry's empty and full per-cell OCV. LeadAcidQuadratic dispatches
// to ocv_shape() above so the lead-acid path stays arithmetically identical.

/// LFP plateau knots: a steep toe below 8% SoC, a nearly flat mid plateau
/// (45%..55% of the span across 84% of the SoC range — the shape that makes
/// voltage-based SoC estimation genuinely hard on LFP), a steep shoulder.
inline constexpr double kLfpToeSoc = 0.08;
inline constexpr double kLfpShoulderSoc = 0.92;
inline constexpr double kLfpToeSpan = 0.45;
inline constexpr double kLfpShoulderSpan = 0.55;

inline double ocv_shape_for(OcvCurve curve, double soc) {
  switch (curve) {
    case OcvCurve::LeadAcidQuadratic:
      return ocv_shape(soc);
    case OcvCurve::NmcCubic:
      // Gentle S-shape, strictly increasing on [0,1] (the derivative
      // 1.4 - 1.6x + 1.2x^2 has no real roots), s(0)=0, s(1)=1.
      return soc * (1.4 + soc * (-0.8 + soc * 0.4));
    case OcvCurve::LfpPlateau:
      if (soc < kLfpToeSoc) return soc * (kLfpToeSpan / kLfpToeSoc);
      if (soc < kLfpShoulderSoc) {
        return kLfpToeSpan + (soc - kLfpToeSoc) * ((kLfpShoulderSpan - kLfpToeSpan) /
                                                   (kLfpShoulderSoc - kLfpToeSoc));
      }
      return kLfpShoulderSpan +
             (soc - kLfpShoulderSoc) * ((1.0 - kLfpShoulderSpan) / (1.0 - kLfpShoulderSoc));
    case OcvCurve::Linear:
      return soc;
  }
  return soc;
}

/// Inverse of ocv_shape_for on [0,1]: given a normalized voltage fraction,
/// recover SoC. Exact closed forms except NmcCubic, which runs a fixed
/// 8-step Newton iteration (deterministic — no convergence-dependent
/// branching; the derivative is bounded below by 0.86 so 8 steps land far
/// under 1e-12).
inline double soc_from_ocv_shape(OcvCurve curve, double s) {
  switch (curve) {
    case OcvCurve::LeadAcidQuadratic: {
      const double c = kOcvCurvature;
      const double disc = (1.0 + c) * (1.0 + c) - 4.0 * c * s;
      return ((1.0 + c) - std::sqrt(disc)) / (2.0 * c);
    }
    case OcvCurve::NmcCubic: {
      double x = s;
      for (int it = 0; it < 8; ++it) {
        const double f = x * (1.4 + x * (-0.8 + x * 0.4)) - s;
        const double df = 1.4 + x * (-1.6 + x * 1.2);
        x -= f / df;
      }
      return x;
    }
    case OcvCurve::LfpPlateau:
      if (s < kLfpToeSpan) return s * (kLfpToeSoc / kLfpToeSpan);
      if (s < kLfpShoulderSpan) {
        return kLfpToeSoc + (s - kLfpToeSpan) * ((kLfpShoulderSoc - kLfpToeSoc) /
                                                 (kLfpShoulderSpan - kLfpToeSpan));
      }
      return kLfpShoulderSoc +
             (s - kLfpShoulderSpan) * ((1.0 - kLfpShoulderSoc) / (1.0 - kLfpShoulderSpan));
    case OcvCurve::Linear:
      return s;
  }
  return s;
}

/// Curve-aware whole-block OCV; the LeadAcidQuadratic case evaluates the
/// exact expression of block_ocv_v above (same operations, same order).
inline double block_ocv_chem_v(const LeadAcidParams& p, double soc, OcvCurve curve) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double cell = p.ocv_cell_empty.value() + span * ocv_shape_for(curve, soc);
  return cell * p.cells;
}

/// Peukert-corrected capacity at a sustained discharge current, in Ah.
/// A NaN current propagates (poison must reach the watchdog, not become a
/// precondition crash mid-kernel); at and below the 20 h rate the nameplate
/// is returned exactly, so I -> 0 can neither divide by zero nor inflate
/// capacity past the C20 rating.
inline double effective_capacity_ah(const LeadAcidParams& p, double i) {
  if (std::isnan(i)) return i;
  BAAT_REQUIRE(i >= 0.0, "discharge current must be >= 0");
  const double i20 = p.rated_current().value();
  if (i <= i20) return p.capacity_c20.value();
  const double shrink = std::pow(i20 / i, p.peukert_exponent - 1.0);
  return p.capacity_c20.value() * shrink;
}

/// Fraction [0,1] of the bulk charge current accepted at `soc`.
inline double charge_acceptance_f(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  if (soc <= p.taper_knee_soc) return 1.0;
  // Linear taper from 1 at the knee down to a trickle at full; the residual
  // 2% keeps float charging alive so the unit can actually reach SoC = 1.
  const double frac = (1.0 - soc) / (1.0 - p.taper_knee_soc);
  return 0.02 + 0.98 * util::clamp01(frac);
}

/// Coulombic efficiency of charging at `soc`.
inline double coulombic_efficiency_f(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  if (soc <= p.taper_knee_soc) return p.coulombic_efficiency_bulk;
  const double frac = (soc - p.taper_knee_soc) / (1.0 - p.taper_knee_soc);
  return p.coulombic_efficiency_bulk +
         (p.coulombic_efficiency_full - p.coulombic_efficiency_bulk) * frac;
}

/// Lifetime acceleration factor relative to 20 °C: doubles every +10 °C.
inline double arrhenius_value(double temp_c) {
  return std::pow(2.0, (temp_c - 20.0) / 10.0);
}

/// Fraction of nameplate capacity remaining, in (0, 1].
inline double aging_capacity_fraction(const AgingParams& p, const AgingState& s) {
  const double fade = p.capacity_w_corrosion * s.corrosion + s.shedding + s.sulphation +
                      s.stratification + p.capacity_w_water * s.water_loss;
  return std::max(0.05, 1.0 - fade);
}

/// Multiplier on the fresh internal resistance, >= 1.
inline double aging_resistance_factor(const AgingParams& p, const AgingState& s) {
  return 1.0 + p.resistance_w_corrosion * s.corrosion +
         p.resistance_w_sulphation * s.sulphation + p.resistance_w_shedding * s.shedding +
         p.resistance_w_water * s.water_loss;
}

/// OCV depression of the aged cell, per cell, in volts.
inline double aging_ocv_sag_v(const AgingParams& p, double capacity_fraction) {
  return p.ocv_sag_v_per_fade_cell * (1.0 - capacity_fraction);
}

/// Multiplier (<= 1) on the fresh coulombic charge efficiency.
inline double aging_coulombic_derating_f(const AgingParams& p, double capacity_fraction) {
  return std::max(0.6, 1.0 - p.coulombic_fade * (1.0 - capacity_fraction));
}

/// One integration step of the five mechanism rate equations. `arr` is the
/// Arrhenius factor at op.temperature — hoisted to the caller so the fleet
/// kernel can serve it from its per-cell memo.
inline void aging_mechanism_step(const AgingParams& params, double capacity_ah, int cells,
                                 const OperatingPoint& op, util::Seconds dt, double arr,
                                 AgingState& state) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(op.soc >= 0.0 && op.soc <= 1.0, "soc must be in [0, 1]");

  const double dt_s = dt.value();
  const double i = op.current.value();  // >0 discharge
  const double v_cell = op.terminal_voltage.value() / cells;

  // Active-mass shedding: proportional to Ah moved (both directions stress
  // the plates, discharge dominates), amplified at low SoC and by fast
  // temperature changes (§II-B.2).
  const double efc_moved = std::fabs(i) * dt_s / 3600.0 / capacity_ah;
  if (efc_moved > 0.0) {
    const double low_soc = 1.0 + params.shedding_low_soc_gain * (1.0 - op.soc);
    const double dtemp = 1.0 + params.shedding_dtemp_gain * op.temperature_rate_k_per_h;
    const double direction = i > 0.0 ? 1.0 : 0.35;  // charging stresses less
    state.shedding += params.shedding_per_efc * efc_moved * low_soc * dtemp * arr * direction;
  }

  // Sulphation: grows while sitting below the knee, worse the deeper the
  // discharge and the longer since the last full recharge (§II-B.3).
  if (op.soc < params.sulphation_knee_soc) {
    const double depth = (params.sulphation_knee_soc - op.soc) / params.sulphation_knee_soc;
    const double staleness =
        1.0 + op.time_since_full_charge.value() / params.sulphation_memory.value();
    state.sulphation += params.sulphation_per_s * depth * staleness * arr * dt_s;
  }

  // Grid corrosion: calendar aging accelerated by temperature and by charge
  // polarization above float level (§II-B.1).
  const double over_v = std::max(0.0, v_cell - params.corrosion_voltage_knee_cell.value());
  const double v_gain = 1.0 + params.corrosion_voltage_gain * over_v;
  state.corrosion += params.corrosion_per_s * arr * (i < 0.0 ? v_gain : 1.0) * dt_s;

  // Water loss: the share of charge current that drives gassing once the
  // per-cell voltage passes the float knee (§II-B.4); the share ramps to 1
  // as the voltage approaches the gassing level.
  if (i < 0.0 && v_cell > params.corrosion_voltage_knee_cell.value()) {
    const double gassing_frac =
        util::clamp01((v_cell - params.corrosion_voltage_knee_cell.value()) / 0.15);
    const double gas_efc = std::fabs(i) * dt_s / 3600.0 * gassing_frac / capacity_ah;
    state.water_loss += params.water_per_gassing_efc * gas_efc * arr;
  }

  // Stratification: builds while deeply discharged with small currents and
  // no full recharge (§II-B.5); saturates, and on_full_charge() heals it.
  const double low_i_amperes = params.stratification_low_current_c * capacity_ah;
  if (op.soc < 0.5 && std::fabs(i) < low_i_amperes) {
    state.stratification =
        std::min(params.stratification_cap,
                 state.stratification + params.stratification_per_s * arr * dt_s);
  }
}

// --- lane-batched counterparts (MathMode::Simd) ------------------------------
// The same physics, evaluated W cells at a time on util::simd packs with
// branches turned into masked selects. These are *not* bit-identical to the
// scalar functions above (reassociated constants, fast transcendentals,
// multiplies by precomputed reciprocals) — the simd tier is toleranced like
// the fast tier (lifetime metrics within 0.1%, tests/fleet_kernel_test.cpp).
// What IS exact: a width-1 instantiation computes every lane of a width-W
// instantiation bit-identically (all ops are per-lane, no contraction in the
// kernel TUs), which keeps per-cell and batched simd stepping consistent.

namespace lanes {

template <int W>
using Pack = util::simd::Pack<W>;
template <int W>
using Mask = util::simd::Mask<W>;

/// SoA view of the five aging mechanisms for one lane group.
template <int W>
struct AgingLanes {
  Pack<W> corrosion, shedding, sulphation, water_loss, stratification;
};

template <int W>
inline Pack<W> ocv_shape(const Pack<W>& soc) {
  namespace s = util::simd;
  return s::broadcast<W>(1.0 + kOcvCurvature) * soc -
         s::broadcast<W>(kOcvCurvature) * soc * soc;
}

/// charge_acceptance_f: 1 below the knee, linear taper to the 2% float
/// residual above it. `knee`/`inv_rem` are per-cell (inv_rem is
/// 1/(1 - taper_knee_soc), precomputed in the fleet's derived mirrors).
template <int W>
inline Pack<W> charge_acceptance(const Pack<W>& soc, const Pack<W>& knee,
                                 const Pack<W>& inv_rem) {
  namespace s = util::simd;
  const Pack<W> one = s::broadcast<W>(1.0);
  const Pack<W> frac = (one - soc) * inv_rem;
  const Pack<W> clamped = s::min(s::max(frac, s::broadcast<W>(0.0)), one);
  const Pack<W> taper = s::broadcast<W>(0.02) + s::broadcast<W>(0.98) * clamped;
  return s::select(s::cmp_le(soc, knee), one, taper);
}

template <int W>
inline Pack<W> coulombic_efficiency(const Pack<W>& soc, const Pack<W>& knee,
                                    const Pack<W>& inv_rem, const Pack<W>& eta_bulk,
                                    const Pack<W>& eta_full) {
  namespace s = util::simd;
  const Pack<W> frac = (soc - knee) * inv_rem;
  const Pack<W> tapered = eta_bulk + (eta_full - eta_bulk) * frac;
  return s::select(s::cmp_le(soc, knee), eta_bulk, tapered);
}

template <int W>
inline Pack<W> aging_capacity_fraction(const AgingParams& p, const AgingLanes<W>& a) {
  namespace s = util::simd;
  const Pack<W> fade = s::broadcast<W>(p.capacity_w_corrosion) * a.corrosion +
                       a.shedding + a.sulphation + a.stratification +
                       s::broadcast<W>(p.capacity_w_water) * a.water_loss;
  return s::max(s::broadcast<W>(0.05), s::broadcast<W>(1.0) - fade);
}

template <int W>
inline Pack<W> aging_resistance_factor(const AgingParams& p, const AgingLanes<W>& a) {
  namespace s = util::simd;
  return s::broadcast<W>(1.0) + s::broadcast<W>(p.resistance_w_corrosion) * a.corrosion +
         s::broadcast<W>(p.resistance_w_sulphation) * a.sulphation +
         s::broadcast<W>(p.resistance_w_shedding) * a.shedding +
         s::broadcast<W>(p.resistance_w_water) * a.water_loss;
}

template <int W>
inline Pack<W> aging_coulombic_derating(const AgingParams& p,
                                        const Pack<W>& capacity_fraction) {
  namespace s = util::simd;
  const Pack<W> derated =
      s::broadcast<W>(1.0) -
      s::broadcast<W>(p.coulombic_fade) * (s::broadcast<W>(1.0) - capacity_fraction);
  return s::max(s::broadcast<W>(0.6), derated);
}

/// One masked integration step of the five mechanism rate equations —
/// the lane form of aging_mechanism_step. `current` > 0 discharges;
/// `inv_capacity_ah` is 1/nameplate; `arr` the Arrhenius factor at the
/// post-step temperature; unreferenced mechanisms on a lane stay untouched
/// because every conditional add is a masked select.
template <int W>
inline void aging_mechanism_step(const AgingParams& p, const Pack<W>& capacity_ah,
                                 const Pack<W>& inv_capacity_ah,
                                 const Pack<W>& soc, const Pack<W>& current,
                                 const Pack<W>& v_cell, const Pack<W>& tsfc_s,
                                 const Pack<W>& dtemp_per_h, double dt_s,
                                 const Pack<W>& arr, AgingLanes<W>& st) {
  namespace s = util::simd;
  const Pack<W> zero = s::broadcast<W>(0.0);
  const Pack<W> one = s::broadcast<W>(1.0);
  const Pack<W> abs_i = s::abs(current);
  const double dq_scale = dt_s / 3600.0;

  // Active-mass shedding (§II-B.2).
  const Pack<W> efc_moved = abs_i * s::broadcast<W>(dq_scale) * inv_capacity_ah;
  const Pack<W> low_soc = one + s::broadcast<W>(p.shedding_low_soc_gain) * (one - soc);
  const Pack<W> dtemp_f = one + s::broadcast<W>(p.shedding_dtemp_gain) * dtemp_per_h;
  const Pack<W> direction =
      s::select(s::cmp_gt(current, zero), one, s::broadcast<W>(0.35));
  const Pack<W> dshed = s::broadcast<W>(p.shedding_per_efc) * efc_moved * low_soc *
                        dtemp_f * arr * direction;
  st.shedding = st.shedding + s::select(s::cmp_gt(efc_moved, zero), dshed, zero);

  // Sulphation below the knee (§II-B.3).
  const Pack<W> knee = s::broadcast<W>(p.sulphation_knee_soc);
  const Pack<W> depth = (knee - soc) / knee;
  const Pack<W> staleness =
      one + tsfc_s * s::broadcast<W>(1.0 / p.sulphation_memory.value());
  const Pack<W> dsulph =
      s::broadcast<W>(p.sulphation_per_s * dt_s) * depth * staleness * arr;
  st.sulphation = st.sulphation + s::select(s::cmp_lt(soc, knee), dsulph, zero);

  // Grid corrosion (§II-B.1) — unconditional calendar term, voltage gain
  // only while charging above the float knee.
  const Pack<W> knee_v = s::broadcast<W>(p.corrosion_voltage_knee_cell.value());
  const Pack<W> over_v = s::max(zero, v_cell - knee_v);
  const Pack<W> v_gain = one + s::broadcast<W>(p.corrosion_voltage_gain) * over_v;
  const Mask<W> charging = s::cmp_lt(current, zero);
  const Pack<W> gain = s::select(charging, v_gain, one);
  st.corrosion = st.corrosion + s::broadcast<W>(p.corrosion_per_s * dt_s) * arr * gain;

  // Water loss from gassing (§II-B.4).
  const Pack<W> gassing_frac =
      s::min(one, s::max(zero, (v_cell - knee_v) * s::broadcast<W>(1.0 / 0.15)));
  const Pack<W> gas_efc =
      abs_i * s::broadcast<W>(dq_scale) * gassing_frac * inv_capacity_ah;
  const Pack<W> dwater = s::broadcast<W>(p.water_per_gassing_efc) * gas_efc * arr;
  const Mask<W> gassing = s::mask_and(charging, s::cmp_gt(v_cell, knee_v));
  st.water_loss = st.water_loss + s::select(gassing, dwater, zero);

  // Stratification (§II-B.5) — saturating, healed on full charge elsewhere.
  const Pack<W> low_i = s::broadcast<W>(p.stratification_low_current_c) * capacity_ah;
  const Mask<W> stratifying = s::mask_and(s::cmp_lt(soc, s::broadcast<W>(0.5)),
                                          s::cmp_lt(abs_i, low_i));
  const Pack<W> grown =
      s::min(s::broadcast<W>(p.stratification_cap),
             st.stratification + s::broadcast<W>(p.stratification_per_s * dt_s) * arr);
  st.stratification = s::select(stratifying, grown, st.stratification);
}

}  // namespace lanes

}  // namespace baat::battery::detail
