#pragma once

// Single-definition inline physics of the battery tick. Every expression
// here is the one source of truth shared by the public wrappers in
// chemistry.cpp / aging.cpp / thermal.cpp and by the batched fleet kernel
// (fleet.cpp): the kernel inlines the whole step in one translation unit
// without duplicating a formula, so the two paths cannot drift apart.
// Bit-exactness contract (DESIGN.md §5e): these are the exact expressions
// the pre-kernel scalar code evaluated, in the same order, with no
// contraction-sensitive rewrites.

#include <algorithm>
#include <cmath>

#include "battery/aging.hpp"
#include "battery/chemistry.hpp"
#include "util/require.hpp"
#include "util/units.hpp"

namespace baat::battery::detail {

// OCV shape: v(soc) = empty + span * (a*soc + (1-a)*soc^2) would be
// sub-linear near empty; lead-acid is the opposite (voltage collapses toward
// empty), so we use s(soc) = (1+c)*soc - c*soc^2 with c in (0,1):
// slope (1+c) at soc=0, (1-c) at soc=1, monotone on [0,1].
inline constexpr double kOcvCurvature = 0.25;

inline double ocv_shape(double soc) {
  return (1.0 + kOcvCurvature) * soc - kOcvCurvature * soc * soc;
}

/// Whole-block open-circuit voltage of the fresh cell, in volts.
inline double block_ocv_v(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double cell = p.ocv_cell_empty.value() + span * ocv_shape(soc);
  return cell * p.cells;
}

/// Peukert-corrected capacity at a sustained discharge current, in Ah.
inline double effective_capacity_ah(const LeadAcidParams& p, double i) {
  BAAT_REQUIRE(i >= 0.0, "discharge current must be >= 0");
  const double i20 = p.rated_current().value();
  if (i <= i20) return p.capacity_c20.value();
  const double shrink = std::pow(i20 / i, p.peukert_exponent - 1.0);
  return p.capacity_c20.value() * shrink;
}

/// Fraction [0,1] of the bulk charge current accepted at `soc`.
inline double charge_acceptance_f(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  if (soc <= p.taper_knee_soc) return 1.0;
  // Linear taper from 1 at the knee down to a trickle at full; the residual
  // 2% keeps float charging alive so the unit can actually reach SoC = 1.
  const double frac = (1.0 - soc) / (1.0 - p.taper_knee_soc);
  return 0.02 + 0.98 * util::clamp01(frac);
}

/// Coulombic efficiency of charging at `soc`.
inline double coulombic_efficiency_f(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  if (soc <= p.taper_knee_soc) return p.coulombic_efficiency_bulk;
  const double frac = (soc - p.taper_knee_soc) / (1.0 - p.taper_knee_soc);
  return p.coulombic_efficiency_bulk +
         (p.coulombic_efficiency_full - p.coulombic_efficiency_bulk) * frac;
}

/// Lifetime acceleration factor relative to 20 °C: doubles every +10 °C.
inline double arrhenius_value(double temp_c) {
  return std::pow(2.0, (temp_c - 20.0) / 10.0);
}

/// Fraction of nameplate capacity remaining, in (0, 1].
inline double aging_capacity_fraction(const AgingParams& p, const AgingState& s) {
  const double fade = p.capacity_w_corrosion * s.corrosion + s.shedding + s.sulphation +
                      s.stratification + p.capacity_w_water * s.water_loss;
  return std::max(0.05, 1.0 - fade);
}

/// Multiplier on the fresh internal resistance, >= 1.
inline double aging_resistance_factor(const AgingParams& p, const AgingState& s) {
  return 1.0 + p.resistance_w_corrosion * s.corrosion +
         p.resistance_w_sulphation * s.sulphation + p.resistance_w_shedding * s.shedding +
         p.resistance_w_water * s.water_loss;
}

/// OCV depression of the aged cell, per cell, in volts.
inline double aging_ocv_sag_v(const AgingParams& p, double capacity_fraction) {
  return p.ocv_sag_v_per_fade_cell * (1.0 - capacity_fraction);
}

/// Multiplier (<= 1) on the fresh coulombic charge efficiency.
inline double aging_coulombic_derating_f(const AgingParams& p, double capacity_fraction) {
  return std::max(0.6, 1.0 - p.coulombic_fade * (1.0 - capacity_fraction));
}

/// One integration step of the five mechanism rate equations. `arr` is the
/// Arrhenius factor at op.temperature — hoisted to the caller so the fleet
/// kernel can serve it from its per-cell memo.
inline void aging_mechanism_step(const AgingParams& params, double capacity_ah, int cells,
                                 const OperatingPoint& op, util::Seconds dt, double arr,
                                 AgingState& state) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(op.soc >= 0.0 && op.soc <= 1.0, "soc must be in [0, 1]");

  const double dt_s = dt.value();
  const double i = op.current.value();  // >0 discharge
  const double v_cell = op.terminal_voltage.value() / cells;

  // Active-mass shedding: proportional to Ah moved (both directions stress
  // the plates, discharge dominates), amplified at low SoC and by fast
  // temperature changes (§II-B.2).
  const double efc_moved = std::fabs(i) * dt_s / 3600.0 / capacity_ah;
  if (efc_moved > 0.0) {
    const double low_soc = 1.0 + params.shedding_low_soc_gain * (1.0 - op.soc);
    const double dtemp = 1.0 + params.shedding_dtemp_gain * op.temperature_rate_k_per_h;
    const double direction = i > 0.0 ? 1.0 : 0.35;  // charging stresses less
    state.shedding += params.shedding_per_efc * efc_moved * low_soc * dtemp * arr * direction;
  }

  // Sulphation: grows while sitting below the knee, worse the deeper the
  // discharge and the longer since the last full recharge (§II-B.3).
  if (op.soc < params.sulphation_knee_soc) {
    const double depth = (params.sulphation_knee_soc - op.soc) / params.sulphation_knee_soc;
    const double staleness =
        1.0 + op.time_since_full_charge.value() / params.sulphation_memory.value();
    state.sulphation += params.sulphation_per_s * depth * staleness * arr * dt_s;
  }

  // Grid corrosion: calendar aging accelerated by temperature and by charge
  // polarization above float level (§II-B.1).
  const double over_v = std::max(0.0, v_cell - params.corrosion_voltage_knee_cell.value());
  const double v_gain = 1.0 + params.corrosion_voltage_gain * over_v;
  state.corrosion += params.corrosion_per_s * arr * (i < 0.0 ? v_gain : 1.0) * dt_s;

  // Water loss: the share of charge current that drives gassing once the
  // per-cell voltage passes the float knee (§II-B.4); the share ramps to 1
  // as the voltage approaches the gassing level.
  if (i < 0.0 && v_cell > params.corrosion_voltage_knee_cell.value()) {
    const double gassing_frac =
        util::clamp01((v_cell - params.corrosion_voltage_knee_cell.value()) / 0.15);
    const double gas_efc = std::fabs(i) * dt_s / 3600.0 * gassing_frac / capacity_ah;
    state.water_loss += params.water_per_gassing_efc * gas_efc * arr;
  }

  // Stratification: builds while deeply discharged with small currents and
  // no full recharge (§II-B.5); saturates, and on_full_charge() heals it.
  const double low_i_amperes = params.stratification_low_current_c * capacity_ah;
  if (op.soc < 0.5 && std::fabs(i) < low_i_amperes) {
    state.stratification =
        std::min(params.stratification_cap,
                 state.stratification + params.stratification_per_s * arr * dt_s);
  }
}

}  // namespace baat::battery::detail
