// MathMode::Simd tick kernel: the branchless, lane-batched port of
// FleetState::step_cell. Cells advance util::simd::kLanes at a time over the
// SoA arrays; every scalar branch becomes a masked bitwise select, so both
// sides of each charge/discharge decision are computed and the untaken one
// is discarded exactly. Unselected lanes are allowed to produce inf/NaN
// garbage (0/0 overdrain scales, i20/0 Peukert ratios) — the selects are
// bitwise, and anything UB-adjacent (float->int casts, shifts inside the
// lane fast_exp2) first folds special lanes to 0.
//
// Staging: the kernel is fissioned into five phase loops over a block of up
// to kBlockCells cells, with small aligned scratch buffers carrying the
// handful of per-cell intermediates between phases. A single monolithic
// group body keeps ~30 packs live at once and drowns in register spills
// (every ymm round-trips through the stack); the staged form keeps each
// phase's working set inside the 16 vector registers. The per-cell math is
// untouched — only the visit order interleaves, and every memo is keyed
// per cell — so results are bitwise identical to the unstaged form.
//
// Consistency contract: step_cell_simd is the W = 1 instantiation of
// step_block_simd, compiled in this same TU with contraction off, so the
// router's per-cell active path and the batched step_all path are bitwise
// identical within the tier (tests/fleet_kernel_test.cpp pins this).
// Against the Exact tier the simd trajectories are toleranced like Fast:
// lifetime metrics within 0.1% (reassociated constants, precomputed
// reciprocals, lane fastmath transcendentals).
//
// This TU is compiled with the SIMD arch flags (AVX2 on x86) and
// -ffp-contract=off — see src/battery/CMakeLists.txt. The scalar
// fallback build (BAAT_SIMD=OFF) compiles the same source with the
// default flags and stays correct, just slower.

#include <array>
#include <cmath>
#include <cstdint>

#include "battery/fleet.hpp"
#include "battery/step_math.hpp"
#include "util/require.hpp"
#include "util/simd.hpp"

namespace baat::battery {

namespace {
constexpr double kFullChargeSoc = 0.995;  // keep in sync with fleet.cpp
// Cells staged per step_block_simd call. One W = 8 group per block measures
// fastest on the gated 384-cell config: the phase loops still get their
// spill-free register allocation (each phase body is its own loop nest),
// but every inter-phase scratch value and the block's slice of the SoA /
// aging / counter arrays stay L1-hot across all five phases instead of
// being re-streamed per phase. Larger blocks (16–128 were measured) only
// add scratch traffic.
constexpr std::size_t kBlockCells = 8;
}  // namespace

void FleetState::refresh_derived() {
  const std::size_t n = size();
  DerivedSoA& d = derived_;
  for (std::vector<double>* v :
       {&d.ocv_empty_b, &d.ocv_span_b, &d.cutoff_v, &d.absorb_v, &d.cells_d,
        &d.inv_cells, &d.r_base, &d.i20, &d.cap_c20, &d.pk_exp_m1, &d.max_dis_a,
        &d.max_chg_a, &d.taper_knee, &d.inv_taper_rem, &d.eta_bulk, &d.eta_full,
        &d.sd_rate, &d.ambient_c, &d.r_th, &d.inv_nameplate}) {
    v->resize(n);
  }
  for (std::size_t c = 0; c < n; ++c) {
    const LeadAcidParams& p = chem_[c];
    d.cells_d[c] = static_cast<double>(p.cells);
    d.inv_cells[c] = 1.0 / static_cast<double>(p.cells);
    d.ocv_empty_b[c] = p.ocv_cell_empty.value() * p.cells;
    d.ocv_span_b[c] = (p.ocv_cell_full - p.ocv_cell_empty).value() * p.cells;
    d.cutoff_v[c] = p.cutoff_voltage().value();
    d.absorb_v[c] = p.absorb_voltage().value();
    d.r_base[c] = p.r_internal_ohms * resistance_scale_[c];
    d.i20[c] = p.rated_current().value();
    d.cap_c20[c] = p.capacity_c20.value();
    d.pk_exp_m1[c] = p.peukert_exponent - 1.0;
    d.max_dis_a[c] = p.max_discharge_c_rate * nameplate_[c];
    d.max_chg_a[c] = p.max_charge_c_rate * nameplate_[c];
    d.taper_knee[c] = p.taper_knee_soc;
    d.inv_taper_rem[c] = 1.0 / (1.0 - p.taper_knee_soc);
    d.eta_bulk[c] = p.coulombic_efficiency_bulk;
    d.eta_full[c] = p.coulombic_efficiency_full;
    d.sd_rate[c] = p.self_discharge_per_month / (30.0 * 86400.0);
    d.ambient_c[c] = thermal_[c].ambient.value();
    d.r_th[c] = thermal_[c].thermal_resistance_k_per_w;
    d.inv_nameplate[c] = 1.0 / nameplate_[c];
  }
  derived_dirty_ = false;
}

template <int W>
#if defined(__GNUC__)
// Inline the whole lane-math call tree into the kernel body: at this size
// GCC's inliner gives up on fast_exp2<W>/fast_log2<W>/aging_mechanism_step<W>
// and emits out-of-line calls with every Pack spilled through memory, which
// costs more than the math itself.
__attribute__((flatten))
#endif
void FleetState::step_block_simd(std::size_t base, std::size_t count,
                                 const Amperes* requested, Seconds dt,
                                 StepResult* results) {
  namespace s = util::simd;
  using P = s::Pack<W>;
  using M = s::Mask<W>;

  const double dt_s = dt.value();
  const double dq_scale = dt_s / 3600.0;
  const P zero = s::broadcast<W>(0.0);
  const P one = s::broadcast<W>(1.0);
  const DerivedSoA& d = derived_;

  // Inter-phase scratch (indexed by block offset, not cell id). soc_ and
  // temp_c_ keep their pre-step values until phase 5, so the phases that
  // need pre-step state reload it from the SoA instead of buffering it.
  alignas(32) double actual_b[kBlockCells];
  alignas(32) double new_soc_b[kBlockCells];
  alignas(32) double soc2_b[kBlockCells];
  alignas(32) double tv_b[kBlockCells];
  alignas(32) double new_temp_b[kBlockCells];
  alignas(32) double dtemp_b[kBlockCells];
  alignas(32) double tsfc_b[kBlockCells];
  alignas(32) double r_b[kBlockCells];
  alignas(32) double sag_b[kBlockCells];
  alignas(32) std::uint64_t cutoff_b[kBlockCells];

  // --- phase 1: current transfer + usage accounting --------------------------
  for (std::size_t o = 0; o < count; o += W) {
    const std::size_t g = base + o;
    const P soc0 = s::load<W>(&soc_[g]);
    const P soc = soc0;
    P req;
    M open;
    for (int i = 0; i < W; ++i) {
      req.v[i] = requested[o + i].value();
      open.v[i] = open_[g + i] != 0 ? ~std::uint64_t{0} : 0;
    }
    detail::lanes::AgingLanes<W> ag;
    for (int i = 0; i < W; ++i) {
      const AgingState& a = aging_[g + i];
      ag.corrosion.v[i] = a.corrosion;
      ag.shedding.v[i] = a.shedding;
      ag.sulphation.v[i] = a.sulphation;
      ag.water_loss.v[i] = a.water_loss;
      ag.stratification.v[i] = a.stratification;
    }
    const P nameplate = s::load<W>(&nameplate_[g]);
    // Per-tick hoists (aging-derived factors, as in the scalar kernel).
    const P cap_frac = detail::lanes::aging_capacity_fraction<W>(aging_params_, ag);
    const P sag_block = s::broadcast<W>(aging_params_.ocv_sag_v_per_fade_cell) *
                        (one - cap_frac) * s::load<W>(&d.cells_d[g]);
    const P r = s::load<W>(&d.r_base[g]) *
                detail::lanes::aging_resistance_factor<W>(aging_params_, ag);
    const P ocv_empty_b = s::load<W>(&d.ocv_empty_b[g]);
    const P ocv_span_b = s::load<W>(&d.ocv_span_b[g]);
    const auto ocv_at = [&](const P& x) {
      return ocv_empty_b + ocv_span_b * detail::lanes::ocv_shape<W>(x) - sag_block;
    };

    P actual = s::select(open, zero, req);
    M hit_cutoff = s::mask_and(open, s::cmp_gt(req, zero));

    // Transfer (discharge and charge lanes share one masked body). The
    // scalar kernel's two branches are near-mirrors: clamp the request to
    // a voltage-headroom/rate cap, convert to a SoC delta against the
    // effective capacity, and rescale the current if the delta overruns the
    // available room. Fusing them per-direction-selected halves the OCV
    // chains and divisions versus evaluating both branches separately. The
    // whole body sits behind an any() guard: a group with no transferring
    // lane stores exactly what the masked computation would have stored
    // (everything here is select-discarded on non-member lanes), so skipping
    // is invisible to the W = 1 == W = kLanes contract and the idle 0 A path
    // (the router's step_cells batches) pays almost nothing.
    const M d0 = s::cmp_gt(actual, zero);
    const M c0 = s::cmp_lt(actual, zero);
    const M active = s::mask_or(d0, c0);
    P new_soc = soc;
    if (s::any(active)) {
      const P ocv0 = ocv_at(soc);
      P abs_a = s::abs(actual);
      const P headroom = s::select(d0, ocv0 - s::load<W>(&d.cutoff_v[g]),
                                   s::load<W>(&d.absorb_v[g]) - ocv0);
      const M soc_ok = s::mask_or(s::mask_and(d0, s::cmp_gt(soc, zero)),
                                  s::mask_and(c0, s::cmp_lt(soc, one)));
      const M can = s::mask_and(soc_ok, s::cmp_gt(headroom, zero));
      const P knee = s::load<W>(&d.taper_knee[g]);
      const P inv_rem = s::load<W>(&d.inv_taper_rem[g]);
      const P rate_cap =
          s::select(d0, s::load<W>(&d.max_dis_a[g]),
                    s::load<W>(&d.max_chg_a[g]) *
                        detail::lanes::charge_acceptance<W>(soc, knee, inv_rem));
      const P cap_a = s::select(can, s::min(headroom / r, rate_cap), zero);
      const M over = s::mask_and(active, s::cmp_gt(abs_a, cap_a));
      abs_a = s::select(over, cap_a, abs_a);
      hit_cutoff = s::mask_or(hit_cutoff, s::mask_and(over, d0));
      const P cap = nameplate * cap_frac;
      abs_a = s::select(s::mask_and(c0, s::cmp_le(cap, zero)), zero, abs_a);
      const M live = s::mask_and(active, s::cmp_gt(abs_a, zero));
      const M d1 = s::mask_and(live, d0);
      // Peukert shrink; lanes at or below rated current keep full capacity.
      // Misses go through the per-cell ratio memo shared with the scalar
      // peukert_capacity_ah: the key -> value mapping is the same pure
      // function (the lane fast_pow is bitwise the scalar fast_pow), so a
      // hit returns the exact double a recompute would produce, and the
      // constant-current stretches the router emits make hits the common
      // case. Per-cell keys keep the decision independent of lane grouping.
      const P i20 = s::load<W>(&d.i20[g]);
      const M need = s::mask_and(d1, s::cmp_gt(abs_a, i20));
      P shrink = one;
      if (s::any(need)) {
        const P ratio = i20 / abs_a;  // inf/NaN on non-need lanes: discarded
        const P keys = s::load<W>(&pk_key_[g]);
        P pkv = s::load<W>(&pk_val_[g]);
        // cmp_eq is false for the NaN sentinel keys, so fresh cells miss.
        const M miss = s::mask_and(need, s::mask_not(s::cmp_eq(ratio, keys)));
        if (s::any(miss)) {
          const P computed = s::fast_pow(ratio, s::load<W>(&d.pk_exp_m1[g]));
          pkv = s::select(miss, computed, pkv);
          s::store(&pk_key_[g], s::select(miss, ratio, keys));
          s::store(&pk_val_[g], pkv);
        }
        shrink = s::select(need, pkv, one);
      }
      const P eta =
          detail::lanes::coulombic_efficiency<W>(soc, knee, inv_rem,
                                                 s::load<W>(&d.eta_bulk[g]),
                                                 s::load<W>(&d.eta_full[g])) *
          detail::lanes::aging_coulombic_derating<W>(aging_params_, cap_frac);
      // One shared division: dsoc = transferred charge over the effective
      // capacity, with the direction-dependent numerator (charge keeps only
      // the eta fraction) and denominator (discharge shrinks by Peukert).
      const P num = s::select(d0, abs_a, eta * abs_a);
      const P den =
          s::select(d0, s::load<W>(&d.cap_c20[g]) * shrink, nameplate) * cap_frac;
      P dsoc = num * s::broadcast<W>(dq_scale) / den;
      const P room = s::select(d0, soc, one - soc);
      const M overrun = s::mask_and(live, s::cmp_gt(dsoc, room));
      if (s::any(overrun)) {  // only near the SoC rails; skips a division
        abs_a = s::select(overrun, abs_a * (room / dsoc), abs_a);
        dsoc = s::select(overrun, room, dsoc);
        hit_cutoff = s::mask_or(hit_cutoff, s::mask_and(overrun, d0));
      }
      new_soc = s::select(live, soc + s::select(d0, -dsoc, dsoc), soc);
      actual = s::select(c0, -abs_a, abs_a);

      // Accounting. Terminal voltage at the post-transfer SoC feeds the
      // energy counters (the scalar kernel reads it mid-branch, before
      // self-discharge); q and e match both scalar branches bitwise since
      // actual == +-abs_a exactly.
      const P tv_mid = ocv_at(new_soc) - actual * r;
      const P q_pack = abs_a * s::broadcast<W>(dq_scale);
      const P e_pack = tv_mid * abs_a * s::broadcast<W>(dq_scale);
      for (int i = 0; i < W; ++i) {
        if (!s::lane(live, i)) continue;
        UsageCounters& ctr = counters_[g + i];
        if (s::lane(d1, i)) {
          ctr.ah_discharged += AmpereHours{q_pack.v[i]};
          // Eq 3 SoC ranges: A = [0.8, 1], B = [0.6, 0.8), C = [0.4, 0.6),
          // D = [0, 0.4) — as a branchless index off the pre-step SoC.
          const int range = 3 - static_cast<int>(soc0.v[i] >= 0.4) -
                            static_cast<int>(soc0.v[i] >= 0.6) -
                            static_cast<int>(soc0.v[i] >= 0.8);
          ctr.ah_by_range[static_cast<std::size_t>(range)] += AmpereHours{q_pack.v[i]};
          ctr.energy_discharged += WattHours{e_pack.v[i]};
          ctr.min_soc_since_full = std::min(ctr.min_soc_since_full, new_soc.v[i]);
        } else {
          ctr.ah_charged += AmpereHours{q_pack.v[i]};
          ctr.energy_charged += WattHours{e_pack.v[i]};
        }
      }
    }

    s::store(&actual_b[o], actual);
    s::store(&new_soc_b[o], new_soc);
    s::store(&r_b[o], r);
    s::store(&sag_b[o], sag_block);
    s::store_mask(&cutoff_b[o], hit_cutoff);
  }

  // --- phase 2: self-discharge + terminal voltage + thermal ------------------
  for (std::size_t o = 0; o < count; o += W) {
    const std::size_t g = base + o;
    const P new_soc = s::load<W>(&new_soc_b[o]);
    const P actual = s::load<W>(&actual_b[o]);
    const P r = s::load<W>(&r_b[o]);
    const P sag_block = s::load<W>(&sag_b[o]);
    const P temp = s::load<W>(&temp_c_[g]);  // still pre-step
    M open;
    for (int i = 0; i < W; ++i) {
      open.v[i] = open_[g + i] != 0 ? ~std::uint64_t{0} : 0;
    }

    // Self-discharge (standing loss at the pre-step temperature). Arrhenius
    // factors go through the per-cell memo shared with the scalar
    // arrhenius(): same key -> value mapping (the lane fast_exp2 is bitwise
    // the scalar fast_exp2), so a hit returns the exact recompute value. The
    // arr2 lookup in phase 4 re-keys the memo at the post-step temperature,
    // which is next tick's pre-step temperature — once the thermal RC
    // settles, neither factor costs a transcendental. A NaN-poisoned
    // temperature always misses (NaN != key) and propagates through
    // fast_exp2.
    P arr_old = s::load<W>(&arr_val_[g]);
    {
      const P keys = s::load<W>(&arr_key_[g]);
      // cmp_eq is false both for the NaN sentinel keys of fresh cells and
      // for a NaN-poisoned temperature, so those lanes always recompute.
      const M miss = s::mask_not(s::cmp_eq(temp, keys));
      if (s::any(miss)) {
        const P computed =
            s::fast_exp2((temp - s::broadcast<W>(20.0)) / s::broadcast<W>(10.0));
        arr_old = s::select(miss, computed, arr_old);
        s::store(&arr_key_[g], s::select(miss, temp, keys));
        s::store(&arr_val_[g], arr_old);
      }
    }
    const P soc_sd =
        new_soc - s::load<W>(&d.sd_rate[g]) * arr_old * s::broadcast<W>(dt_s);
    // std::max(0.0, x) semantics, NaN included (a poisoned lane flushes to 0
    // exactly like the scalar kernel; the watchdog catches the NaN upstream).
    const P soc2 = s::select(s::cmp_gt(soc_sd, zero), soc_sd, zero);

    const P ocv2 = s::load<W>(&d.ocv_empty_b[g]) +
                   s::load<W>(&d.ocv_span_b[g]) * detail::lanes::ocv_shape<W>(soc2) -
                   sag_block;
    const P tv = s::select(open, zero, ocv2 - actual * r);

    // Thermal (exact RC exponential; decay memoized on the fixed dt).
    const P loss = actual * actual * r;
    const P t_inf = s::load<W>(&d.ambient_c[g]) + loss * s::load<W>(&d.r_th[g]);
    P decay = s::load<W>(&decay_val_[g]);
    {
      const P dt_pack = s::broadcast<W>(dt_s);
      const M miss = s::mask_not(s::cmp_eq(dt_pack, s::load<W>(&decay_key_[g])));
      if (s::any(miss)) {  // once per (cell, dt): the fixed sim dt makes this cold
        for (int i = 0; i < W; ++i) {
          const std::size_t c = g + i;
          if (s::lane(miss, i)) {
            decay_key_[c] = dt_s;
            decay_val_[c] = std::exp(-dt_s / tau_[c]);
            decay.v[i] = decay_val_[c];
          }
        }
      }
    }
    const P new_temp = t_inf + (temp - t_inf) * decay;
    const P dtemp_per_h =
        s::abs(new_temp - temp) / s::broadcast<W>(dt_s) * s::broadcast<W>(3600.0);

    s::store(&soc2_b[o], soc2);
    s::store(&tv_b[o], tv);
    s::store(&new_temp_b[o], new_temp);
    s::store(&dtemp_b[o], dtemp_per_h);
  }

  // --- phase 3: full-charge detection (before aging sees the tsfc clock) -----
  // Pack compares find crossing lanes (a NaN SoC compares false on both
  // sides, so a poisoned lane never registers an event — same as the scalar
  // `>=` pair); the event path itself is per-lane and cold. The
  // stratification heal writes straight to the AoS aging state, which phase
  // 4 re-gathers — same heal-before-mechanisms order as the scalar kernel.
  for (std::size_t o = 0; o < count; o += W) {
    const std::size_t g = base + o;
    const P soc0 = s::load<W>(&soc_[g]);  // still pre-step
    const P soc2 = s::load<W>(&soc2_b[o]);
    const P full_thresh = s::broadcast<W>(kFullChargeSoc);
    const M fully_charged =
        s::mask_and(s::cmp_ge(soc2, full_thresh),
                    s::mask_not(s::cmp_ge(soc0, full_thresh)));
    if (s::any(fully_charged)) {
      for (int i = 0; i < W; ++i) {
        UsageCounters& ctr = counters_[g + i];
        if (s::lane(fully_charged, i)) {
          ++ctr.full_charge_events;
          ctr.time_since_full_charge = Seconds{0.0};
          ctr.min_soc_since_full = soc2.v[i];
          aging_[g + i].stratification *= aging_params_.stratification_heal_factor;
        } else {
          ctr.time_since_full_charge += dt;
        }
        tsfc_b[o + i] = ctr.time_since_full_charge.value();
      }
    } else {
      for (int i = 0; i < W; ++i) {
        UsageCounters& ctr = counters_[g + i];
        ctr.time_since_full_charge += dt;
        tsfc_b[o + i] = ctr.time_since_full_charge.value();
      }
    }
  }

  // --- phase 4: aging --------------------------------------------------------
  for (std::size_t o = 0; o < count; o += W) {
    const std::size_t g = base + o;
    detail::lanes::AgingLanes<W> ag;
    for (int i = 0; i < W; ++i) {
      const AgingState& a = aging_[g + i];
      ag.corrosion.v[i] = a.corrosion;
      ag.shedding.v[i] = a.shedding;
      ag.sulphation.v[i] = a.sulphation;
      ag.water_loss.v[i] = a.water_loss;
      ag.stratification.v[i] = a.stratification;
    }
    const P new_temp = s::load<W>(&new_temp_b[o]);
    P arr2 = s::load<W>(&arr_val_[g]);
    {
      const P keys = s::load<W>(&arr_key_[g]);
      const M miss = s::mask_not(s::cmp_eq(new_temp, keys));
      if (s::any(miss)) {
        const P computed = s::fast_exp2((new_temp - s::broadcast<W>(20.0)) /
                                        s::broadcast<W>(10.0));
        arr2 = s::select(miss, computed, arr2);
        s::store(&arr_key_[g], s::select(miss, new_temp, keys));
        s::store(&arr_val_[g], arr2);
      }
    }
    detail::lanes::aging_mechanism_step<W>(
        aging_params_, s::load<W>(&nameplate_[g]), s::load<W>(&d.inv_nameplate[g]),
        s::load<W>(&soc2_b[o]), s::load<W>(&actual_b[o]),
        s::load<W>(&tv_b[o]) * s::load<W>(&d.inv_cells[g]), s::load<W>(&tsfc_b[o]),
        s::load<W>(&dtemp_b[o]), dt_s, arr2, ag);
    for (int i = 0; i < W; ++i) {
      AgingState& a = aging_[g + i];
      a.corrosion = ag.corrosion.v[i];
      a.shedding = ag.shedding.v[i];
      a.sulphation = ag.sulphation.v[i];
      a.water_loss = ag.water_loss.v[i];
      a.stratification = ag.stratification.v[i];
    }
  }

  // --- phase 5: state stores, time counters, ledger, results -----------------
  for (std::size_t o = 0; o < count; o += W) {
    const std::size_t g = base + o;
    const P soc0 = s::load<W>(&soc_[g]);  // pre-step, for the event recompute
    const P soc2 = s::load<W>(&soc2_b[o]);
    // Recomputing the event mask from (soc0, soc2) is bitwise the phase 3
    // mask — same inputs, same compares — and cheaper than buffering it.
    const P full_thresh = s::broadcast<W>(kFullChargeSoc);
    const M fully_charged =
        s::mask_and(s::cmp_ge(soc2, full_thresh),
                    s::mask_not(s::cmp_ge(soc0, full_thresh)));
    const M hit_cutoff = s::load_mask<W>(&cutoff_b[o]);
    s::store(&soc_[g], soc2);
    s::store(&temp_c_[g], s::load<W>(&new_temp_b[o]));
    for (int i = 0; i < W; ++i) {
      const std::size_t c = g + i;
      UsageCounters& ctr = counters_[c];
      ctr.time_total += dt;
      if (soc2.v[i] < 0.40) ctr.time_below_40 += dt;
      if (ledger_enabled_) rainflow_[c].push(soc2.v[i]);
      StepResult& res = results[o + i];
      res.actual_current = Amperes{actual_b[o + i]};
      res.terminal_voltage = Volts{tv_b[o + i]};
      res.hit_cutoff = s::lane(hit_cutoff, i);
      res.fully_charged = s::lane(fully_charged, i);
    }
    // Vector form of the per-lane `soc2 in [0, 1]` invariant: a NaN lane
    // fails both compares, so poisoned state still trips the check. The
    // per-lane re-check only runs on the (fatal) failure path to pinpoint
    // the lane.
    if (s::any(s::mask_not(
            s::mask_and(s::cmp_ge(soc2, zero), s::cmp_le(soc2, one))))) {
      for (int i = 0; i < W; ++i)
        BAAT_INVARIANT(soc2.v[i] >= 0.0 && soc2.v[i] <= 1.0, "soc escaped [0, 1]");
    }
  }
}

template void FleetState::step_block_simd<1>(std::size_t, std::size_t,
                                             const Amperes*, Seconds, StepResult*);
template void FleetState::step_block_simd<util::simd::kLanes>(std::size_t,
                                                              std::size_t,
                                                              const Amperes*, Seconds,
                                                              StepResult*);

StepResult FleetState::step_cell_simd(std::size_t c, Amperes requested, Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(c < size(), "cell index out of range");
  if (derived_dirty_) refresh_derived();
  StepResult result;
  step_block_simd<1>(c, 1, &requested, dt, &result);
  return result;
}

void FleetState::step_all_simd(std::span<const Amperes> requested, Seconds dt,
                               std::span<StepResult> results) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  if (derived_dirty_) refresh_derived();
  constexpr int W = util::simd::kLanes;
  const std::size_t n = size();
  std::size_t c = 0;
  while (c < n) {
    const std::size_t block = std::min(kBlockCells, n - c);
    const std::size_t vec = block - block % W;
    if (vec != 0) {
      step_block_simd<W>(c, vec, requested.data() + c, dt, results.data() + c);
    }
    if (vec != block) {
      step_block_simd<1>(c + vec, block - vec, requested.data() + c + vec, dt,
                         results.data() + c + vec);
    }
    c += block;
  }
}

}  // namespace baat::battery
