#pragma once

// Batched battery-fleet stepping kernel. Per-cell state lives in
// structure-of-arrays form inside FleetState and every cell of a bank is
// advanced by one fleet_step() call per tick — contiguous state, no
// per-cell virtual dispatch, and all tick-invariant subexpressions
// (aging-derived factors, Peukert/Arrhenius transcendentals, the fixed-dt
// thermal decay) hoisted or memoized per cell. battery::Battery remains as
// a thin view over one cell (see battery.hpp) so tests, probes and
// single-cell benches keep their object-per-cell API.
//
// Bit-exactness contract (DESIGN.md §5e): in MathMode::Exact a
// FleetState::step_cell is bit-identical to the pre-kernel scalar
// Battery::step — the memos are last-argument caches that return the exact
// double std::pow/std::exp produced for the same input, and every other
// hoist reuses a value of unchanged state within one step. MathMode::Fast
// swaps the Arrhenius/Peukert transcendentals for the bounded-error
// polynomials in util/fastmath.hpp (opt-in via --math=fast).
//
// Sign convention everywhere: current > 0 discharges, < 0 charges.

#include <cstdint>
#include <span>
#include <vector>

#include "battery/aging.hpp"
#include "battery/chemistry.hpp"
#include "battery/chemistry_model.hpp"
#include "battery/ledger.hpp"
#include "battery/thermal.hpp"
#include "snapshot/serialize.hpp"
#include "util/units.hpp"

namespace baat::battery {

using util::Seconds;
using util::WattHours;
using util::Watts;

/// Ground-truth usage counters accumulated over the battery's whole life.
/// The telemetry layer rebuilds an *estimated* version of these from sensor
/// samples; tests compare the two.
struct UsageCounters {
  AmpereHours ah_discharged{0.0};
  AmpereHours ah_charged{0.0};
  /// Discharge Ah binned by the SoC ranges of Eq 3:
  /// A = [80,100], B = [60,80), C = [40,60), D = [0,40).
  AmpereHours ah_by_range[4] = {AmpereHours{0}, AmpereHours{0}, AmpereHours{0}, AmpereHours{0}};
  Seconds time_total{0.0};
  Seconds time_below_40{0.0};
  Seconds time_since_full_charge{0.0};
  std::int64_t full_charge_events = 0;
  double min_soc_since_full = 1.0;
  WattHours energy_discharged{0.0};
  WattHours energy_charged{0.0};
};

/// Outcome of one step() call.
struct StepResult {
  Amperes actual_current{0.0};   ///< after clamping to physical limits
  Volts terminal_voltage{0.0};
  bool hit_cutoff = false;       ///< discharge was curtailed by the LVD
  bool fully_charged = false;    ///< this step completed a full charge
};

/// Transcendental tier of the tick kernel. Exact is the default and is
/// byte-identical to the pre-kernel code; Fast trades ~1e-9 relative error
/// in the aging stressors for avoiding libm pow on the hot path; Simd
/// additionally batches cells across SIMD lanes with branchless masked
/// selects (fleet_simd.cpp) — same 0.1% lifetime-metric tolerance as Fast,
/// largest per-tick speedup (DESIGN.md §5e).
enum class MathMode {
  Exact,
  Fast,
  Simd,
};

/// Structure-of-arrays state of a bank of battery units sharing one
/// chemistry/aging/thermal template (per-cell manufacturing variation is
/// baked into the per-cell parameter slots).
class FleetState {
 public:
  FleetState(LeadAcidParams chem, AgingParams aging, ThermalParams thermal,
             MathMode math = MathMode::Exact);
  /// Chemistry-hosting ctor (DESIGN.md §5i): the fleet adopts the model's
  /// tag, OCV curve, electrical/aging blocks, Li aging knobs and cycle-life
  /// curve. A default lead-acid model built this way is bit-identical to the
  /// legacy ctor above.
  FleetState(const ChemistryModel& model, ThermalParams thermal,
             MathMode math = MathMode::Exact);

  /// Append one unit; returns its cell index. `capacity_scale` and
  /// `resistance_scale` model unit-to-unit manufacturing variation.
  std::size_t add_cell(double capacity_scale, double resistance_scale, double initial_soc);

  [[nodiscard]] std::size_t size() const { return soc_.size(); }
  [[nodiscard]] MathMode math() const { return math_; }
  [[nodiscard]] const AgingParams& aging_params() const { return aging_params_; }
  /// The hosted chemistry tag (Chemistry::LeadAcid for legacy-ctor fleets).
  [[nodiscard]] Chemistry chemistry_kind() const { return kind_; }
  [[nodiscard]] OcvCurve ocv_curve() const { return ocv_curve_; }
  [[nodiscard]] const LiAgingParams& li_params() const { return li_; }

  // --- the tick kernel -------------------------------------------------------
  /// Advance cell `c` by dt, requesting `requested` (>0 discharge,
  /// <0 charge), clamped to what chemistry allows.
  StepResult step_cell(std::size_t c, Amperes requested, Seconds dt);
  /// Maintenance-rig entry: hold cell `c` at absorb voltage with a forced
  /// trickle current, bypassing the acceptance clamp.
  StepResult float_charge_cell(std::size_t c, Amperes trickle, Seconds dt);
  /// Step every cell with its own requested current.
  void step_all(std::span<const Amperes> requested, Seconds dt,
                std::span<StepResult> results);
  /// Step the listed cells with one common current (the router's batched
  /// idle pass uses this with 0 A).
  void step_cells(std::span<const std::size_t> cells, Amperes requested, Seconds dt);

  // --- per-cell observables (exact ports of the Battery accessors) ----------
  [[nodiscard]] double cell_soc(std::size_t c) const { return soc_[c]; }
  [[nodiscard]] Volts cell_open_circuit(std::size_t c) const;
  [[nodiscard]] Volts cell_terminal_voltage(std::size_t c, Amperes current) const;
  [[nodiscard]] Celsius cell_temperature(std::size_t c) const { return Celsius{temp_c_[c]}; }
  [[nodiscard]] double cell_internal_resistance_ohms(std::size_t c) const;
  [[nodiscard]] AmpereHours cell_nameplate(std::size_t c) const {
    return AmpereHours{nameplate_[c]};
  }
  [[nodiscard]] AmpereHours cell_usable_capacity(std::size_t c) const;
  [[nodiscard]] double cell_health(std::size_t c) const;
  [[nodiscard]] bool cell_end_of_life(std::size_t c) const;
  void fail_open_cell(std::size_t c) { open_[c] = 1; }
  [[nodiscard]] bool cell_open_failed(std::size_t c) const { return open_[c] != 0; }
  [[nodiscard]] const AgingState& cell_aging_state(std::size_t c) const { return aging_[c]; }
  void set_cell_aging_state(std::size_t c, const AgingState& s) { aging_[c] = s; }
  [[nodiscard]] Amperes cell_max_discharge_current(std::size_t c) const;
  [[nodiscard]] Amperes cell_max_charge_current(std::size_t c) const;
  [[nodiscard]] WattHours cell_stored_energy_above(std::size_t c, double floor_soc) const;
  [[nodiscard]] const UsageCounters& cell_counters(std::size_t c) const {
    return counters_[c];
  }
  [[nodiscard]] const LeadAcidParams& cell_chemistry(std::size_t c) const { return chem_[c]; }
  [[nodiscard]] double cell_equivalent_full_cycles(std::size_t c) const {
    return counters_[c].ah_discharged.value() / nameplate_[c];
  }

  // --- aging-attribution ledger (DESIGN.md §5g) ------------------------------
  /// The ledger itself is free — fade components are read out of the aging
  /// state on demand — but the online rainflow counter costs a few compares
  /// per tick; benches turn it off to measure the obs tax.
  void set_ledger_enabled(bool on) { ledger_enabled_ = on; }
  [[nodiscard]] bool ledger_enabled() const { return ledger_enabled_; }
  /// Cycle-life curve captured by subsequently added cells (set it before
  /// building the bank; defaults to the Trojan-like reference curve).
  void set_cycle_life_curve(const CycleLifeCurve& curve) { ledger_curve_ = curve; }

  /// Lifetime ledger entry of cell `c` (since birth).
  [[nodiscard]] CellLedgerEntry ledger_total(std::size_t c) const;
  /// Ledger entry since the last ledger_advance() (non-advancing peek, so
  /// the blackbox can read mid-window without disturbing the rollup).
  [[nodiscard]] CellLedgerEntry ledger_delta(std::size_t c) const;
  /// Move every cell's ledger baseline up to its current state; call at a
  /// rollup boundary after the deltas have been read.
  void ledger_advance();
  [[nodiscard]] double cell_cycle_damage(std::size_t c) const {
    return rainflow_[c].damage();
  }

  /// Test/fault hook: overwrite a cell's SoC with no validation — the
  /// nan_poison fault uses this to model a corrupted state word that the
  /// run-health watchdog must catch.
  void debug_set_soc(std::size_t c, double v) { soc_[c] = v; }

  // --- view support ----------------------------------------------------------
  /// A one-cell fleet carrying a deep copy of cell `c` (Battery's copy ctor).
  [[nodiscard]] FleetState clone_cell(std::size_t c) const;
  /// Overwrite cell `dst` with the full state of `src_cell` of `src`
  /// (Battery's copy/move-assignment into a bound view). A one-cell
  /// destination also adopts the source's shared templates; a multi-cell
  /// destination keeps its own (callers only ever assign units built from
  /// the same bank spec, so the shared aging parameters match).
  void copy_cell_from(std::size_t dst, const FleetState& src, std::size_t src_cell);

  // --- checkpoint support ----------------------------------------------------
  /// Serializes every per-cell slot, including the per-cell *parameter*
  /// vectors: faults can rewrite a cell's chemistry mid-run (cell_weak
  /// assigns a weakened unit into the bank view), so the parameters are
  /// state, not just configuration. The transcendental memos ride along too
  /// — they would repopulate with identical doubles on the next step, but
  /// carrying them keeps "restored state == live state" literal.
  void save_state(snapshot::SnapshotWriter& w) const;
  /// Refuses (SnapshotError) a snapshot whose cell count or math mode does
  /// not match this fleet — the config hash should have caught that first.
  void load_state(snapshot::SnapshotReader& r);

 private:
  double arrhenius(std::size_t c, double temp_c);
  double peukert_capacity_ah(std::size_t c, double i);
  double thermal_decay(std::size_t c, double dt_s);

  /// Low-fidelity energy-bucket tick: linear OCV coulomb bucket with flat
  /// C-rate caps and round-trip efficiency; no Peukert, no charge-acceptance
  /// taper, no thermal RC (temperature stays ambient), two-term aging
  /// (calendar + per-EFC throughput fade). The perf gate holds this path to
  /// >= 5x the lead-acid exact tier's cell-tick throughput.
  StepResult step_cell_bucket(std::size_t c, Amperes requested, Seconds dt);
  /// Batched bucket tick: the step_all hot loop, kept out-of-line so the
  /// bucket step can be force-inlined into it (one call per tick instead of
  /// one per cell, letting independent cells overlap in the pipeline).
  void step_all_bucket(std::span<const Amperes> requested, Seconds dt,
                       std::span<StepResult> results);
  /// Per-chemistry aging dispatch for the non-hot paths (float charge):
  /// lead-acid runs the five-mechanism rate equations, Li accrues calendar
  /// fade into the corrosion slot, the bucket adds calendar + throughput.
  void chemistry_aging_step(std::size_t c, const OperatingPoint& op, Seconds dt);

  // --- MathMode::Simd kernel (fleet_simd.cpp, compiled with the SIMD
  // flags — see src/battery/CMakeLists.txt) -----------------------------------
  /// Advance cells [base, base + count) branchlessly, W lanes at a time,
  /// staged as phase loops over a block (count must be a multiple of W and
  /// at most kBlockCells; `requested`/`results` are block-local, index 0 ==
  /// cell `base`). step_cell_simd is the W = 1 instantiation of the same
  /// code, so the per-cell and batched paths agree bitwise within the tier.
  template <int W>
  void step_block_simd(std::size_t base, std::size_t count, const Amperes* requested,
                       Seconds dt, StepResult* results);
  StepResult step_cell_simd(std::size_t c, Amperes requested, Seconds dt);
  void step_all_simd(std::span<const Amperes> requested, Seconds dt,
                     std::span<StepResult> results);
  /// Rebuild the derived per-cell constant mirrors below when dirty.
  void refresh_derived();

  // Per-cell constants derived from chem_/thermal_/resistance_scale_, kept
  // as flat SoA mirrors so the lane kernel loads contiguously instead of
  // gathering through the AoS parameter structs. Refreshed lazily (dirty_
  // set by anything that can change a cell's parameters); only the Simd
  // tier reads them.
  struct DerivedSoA {
    std::vector<double> ocv_empty_b;    ///< ocv_cell_empty * cells, V
    std::vector<double> ocv_span_b;     ///< (full - empty) * cells, V
    std::vector<double> cutoff_v;       ///< cutoff_cell * cells, V
    std::vector<double> absorb_v;       ///< absorb_cell * cells, V
    std::vector<double> cells_d;        ///< cell count, as a double
    std::vector<double> inv_cells;      ///< 1 / cells
    std::vector<double> r_base;         ///< r_internal * resistance_scale, ohm
    std::vector<double> i20;            ///< rated (C/20) current, A
    std::vector<double> cap_c20;        ///< capacity_c20 (cap-scaled), Ah
    std::vector<double> pk_exp_m1;      ///< peukert_exponent - 1
    std::vector<double> max_dis_a;      ///< max_discharge_c_rate * nameplate, A
    std::vector<double> max_chg_a;      ///< max_charge_c_rate * nameplate, A
    std::vector<double> taper_knee;     ///< taper_knee_soc
    std::vector<double> inv_taper_rem;  ///< 1 / (1 - taper_knee_soc)
    std::vector<double> eta_bulk;       ///< coulombic_efficiency_bulk
    std::vector<double> eta_full;       ///< coulombic_efficiency_full
    std::vector<double> sd_rate;        ///< self_discharge_per_month / month-s
    std::vector<double> ambient_c;      ///< thermal ambient, degC
    std::vector<double> r_th;           ///< thermal resistance, K/W
    std::vector<double> inv_nameplate;  ///< 1 / nameplate, 1/Ah
  };
  DerivedSoA derived_;
  bool derived_dirty_ = true;

  LeadAcidParams chem_base_;   ///< unscaled template for add_cell
  AgingParams aging_params_;   ///< shared by every cell
  ThermalParams thermal_base_;
  MathMode math_;

  // Hosted chemistry (configuration, not per-cell state: faults may swap a
  // cell's electrical block but never its chemistry). Snapshots of
  // non-lead-acid fleets record the tag so mismatched resumes are refused;
  // the lead-acid snapshot layout is unchanged from PR 9.
  Chemistry kind_ = Chemistry::LeadAcid;
  OcvCurve ocv_curve_ = OcvCurve::LeadAcidQuadratic;
  LiAgingParams li_{};

  // Per-cell parameter slots (capacity variation baked into chem_[c]).
  std::vector<LeadAcidParams> chem_;
  std::vector<ThermalParams> thermal_;
  std::vector<double> tau_;  ///< heat_capacity * thermal_resistance, s
  std::vector<double> nameplate_;
  std::vector<double> resistance_scale_;

  // Per-cell mutable state.
  std::vector<double> soc_;
  std::vector<double> temp_c_;
  std::vector<std::uint8_t> open_;
  std::vector<AgingState> aging_;
  std::vector<UsageCounters> counters_;

  // Last-argument transcendental memos (exact: same input → the exact
  // cached double). Keys start NaN so the first lookup always misses.
  std::vector<double> arr_key_, arr_val_;
  std::vector<double> pk_key_, pk_val_;
  std::vector<double> decay_key_, decay_val_;

  // Aging-attribution ledger state. Baselines hold each cell's state at the
  // last rollup boundary so a delta is two reads and a subtract; the online
  // rainflow counters are allocation-free after add_cell.
  bool ledger_enabled_ = true;
  CycleLifeCurve ledger_curve_;
  std::vector<OnlineRainflow> rainflow_;
  std::vector<AgingState> ledger_base_aging_;
  std::vector<double> ledger_base_damage_;
  std::vector<double> ledger_base_efc_;
  std::vector<double> ledger_base_dwell_;
};

/// Batched tick entry point: one call advances the whole fleet.
inline void fleet_step(FleetState& fleet, std::span<const Amperes> requested, Seconds dt,
                       std::span<StepResult> results) {
  fleet.step_all(requested, dt, results);
}

}  // namespace baat::battery
