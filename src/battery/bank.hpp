#pragma once

// A bank of battery units with manufacturing variation — the "twelve 12 V
// 35 Ah sealed lead-acid batteries" of the prototype (Fig 11), one node (of
// one or more units in series) per server in the per-server integration
// architecture (Fig 7).

#include <memory>
#include <vector>

#include "battery/battery.hpp"
#include "util/rng.hpp"

namespace baat::battery {

struct BankSpec {
  std::size_t units = 6;                 ///< number of independent battery nodes
  LeadAcidParams chemistry{};
  AgingParams aging{};
  ThermalParams thermal{};
  /// Hosted chemistry tier (--chemistry). The default lead-acid tag keeps
  /// every field below it at the historical behaviour; use
  /// apply_chemistry_preset() to load a non-default preset coherently.
  Chemistry kind = Chemistry::LeadAcid;
  OcvCurve ocv = OcvCurve::LeadAcidQuadratic;
  LiAgingParams li{};
  CycleLifeCurve cycle_curve{};
  /// Relative stddev of nameplate capacity across units (§IV-B.1: imperfect
  /// manufacturing). 2-3% is typical for commodity VRLA.
  double capacity_sigma = 0.025;
  /// Relative stddev of fresh internal resistance across units.
  double resistance_sigma = 0.05;
  double initial_soc = 1.0;
  /// Transcendental tier of the tick kernel (--math=fast selects Fast).
  MathMode math = MathMode::Exact;
};

/// Overwrites the spec's chemistry-dependent blocks (electrical, aging, Li
/// knobs, OCV curve, cycle-life curve) with the preset for `kind`, keeping
/// the bank-shape knobs (units, sigmas, initial SoC, math tier) untouched.
/// The lead-acid preset is the historical default, so applying it is a
/// no-op on a fresh spec.
void apply_chemistry_preset(BankSpec& spec, Chemistry kind);

/// Builds `spec.units` standalone batteries whose capacity/resistance scales
/// are drawn from truncated normals around 1.0 (clamped to ±3σ so no unit is
/// absurd).
std::vector<Battery> make_bank(const BankSpec& spec, util::Rng& rng);

/// SoA variant of make_bank: one FleetState holding every unit of the bank,
/// with the identical RNG draw sequence (capacity then resistance, per unit)
/// so a fleet and a bank built from the same forked Rng are the same units.
std::unique_ptr<FleetState> make_fleet(const BankSpec& spec, util::Rng& rng);

/// Thin Battery views over each cell of `fleet`, usable anywhere a bank is.
/// The fleet must outlive the views.
std::vector<Battery> fleet_views(FleetState& fleet);

}  // namespace baat::battery
