#include "battery/chemistry.hpp"

#include <cmath>

#include "battery/step_math.hpp"
#include "util/require.hpp"

namespace baat::battery {

// The formulas live in step_math.hpp (shared with the fleet tick kernel);
// these wrappers keep the public unit-typed API.

Volts open_circuit_voltage(const LeadAcidParams& p, double soc) {
  return Volts{detail::block_ocv_v(p, soc)};
}

double soc_from_voltage(const LeadAcidParams& p, Volts ocv) {
  const double cell = ocv.value() / p.cells;
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double s = (cell - p.ocv_cell_empty.value()) / span;  // = ocv_shape(soc)
  if (s <= 0.0) return 0.0;
  if (s >= 1.0) return 1.0;
  // Invert (1+c)x - cx^2 = s  =>  cx^2 - (1+c)x + s = 0, take the root in [0,1].
  const double c = detail::kOcvCurvature;
  const double disc = (1.0 + c) * (1.0 + c) - 4.0 * c * s;
  const double x = ((1.0 + c) - std::sqrt(disc)) / (2.0 * c);
  return util::clamp01(x);
}

AmpereHours effective_capacity(const LeadAcidParams& p, Amperes discharge_current) {
  return AmpereHours{detail::effective_capacity_ah(p, discharge_current.value())};
}

double charge_acceptance(const LeadAcidParams& p, double soc) {
  return detail::charge_acceptance_f(p, soc);
}

double coulombic_efficiency(const LeadAcidParams& p, double soc) {
  return detail::coulombic_efficiency_f(p, soc);
}

}  // namespace baat::battery
