#include "battery/chemistry.hpp"

#include <cmath>

#include "util/require.hpp"

namespace baat::battery {

namespace {
// OCV shape: v(soc) = empty + span * (a*soc + (1-a)*soc^2) would be
// sub-linear near empty; lead-acid is the opposite (voltage collapses toward
// empty), so we use s(soc) = (1+c)*soc - c*soc^2 with c in (0,1):
// slope (1+c) at soc=0, (1-c) at soc=1, monotone on [0,1].
constexpr double kCurvature = 0.25;

double ocv_shape(double soc) {
  return (1.0 + kCurvature) * soc - kCurvature * soc * soc;
}
}  // namespace

Volts open_circuit_voltage(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double cell = p.ocv_cell_empty.value() + span * ocv_shape(soc);
  return Volts{cell * p.cells};
}

double soc_from_voltage(const LeadAcidParams& p, Volts ocv) {
  const double cell = ocv.value() / p.cells;
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double s = (cell - p.ocv_cell_empty.value()) / span;  // = ocv_shape(soc)
  if (s <= 0.0) return 0.0;
  if (s >= 1.0) return 1.0;
  // Invert (1+c)x - cx^2 = s  =>  cx^2 - (1+c)x + s = 0, take the root in [0,1].
  const double c = kCurvature;
  const double disc = (1.0 + c) * (1.0 + c) - 4.0 * c * s;
  const double x = ((1.0 + c) - std::sqrt(disc)) / (2.0 * c);
  return util::clamp01(x);
}

AmpereHours effective_capacity(const LeadAcidParams& p, Amperes discharge_current) {
  BAAT_REQUIRE(discharge_current.value() >= 0.0, "discharge current must be >= 0");
  const double i20 = p.rated_current().value();
  const double i = discharge_current.value();
  if (i <= i20) return p.capacity_c20;
  const double shrink = std::pow(i20 / i, p.peukert_exponent - 1.0);
  return AmpereHours{p.capacity_c20.value() * shrink};
}

double charge_acceptance(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  if (soc <= p.taper_knee_soc) return 1.0;
  // Linear taper from 1 at the knee down to a trickle at full; the residual
  // 2% keeps float charging alive so the unit can actually reach SoC = 1.
  const double frac = (1.0 - soc) / (1.0 - p.taper_knee_soc);
  return 0.02 + 0.98 * util::clamp01(frac);
}

double coulombic_efficiency(const LeadAcidParams& p, double soc) {
  BAAT_REQUIRE(soc >= 0.0 && soc <= 1.0, "soc must be in [0, 1]");
  if (soc <= p.taper_knee_soc) return p.coulombic_efficiency_bulk;
  const double frac = (soc - p.taper_knee_soc) / (1.0 - p.taper_knee_soc);
  return p.coulombic_efficiency_bulk +
         (p.coulombic_efficiency_full - p.coulombic_efficiency_bulk) * frac;
}

}  // namespace baat::battery
