#include "battery/chemistry.hpp"

#include <cmath>
#include <limits>

#include "battery/step_math.hpp"
#include "util/require.hpp"

namespace baat::battery {

// The formulas live in step_math.hpp (shared with the fleet tick kernel);
// these wrappers keep the public unit-typed API.

std::string_view chemistry_name(Chemistry c) {
  switch (c) {
    case Chemistry::LeadAcid: return "lead_acid";
    case Chemistry::LiNmc: return "li_nmc";
    case Chemistry::LiLfp: return "li_lfp";
    case Chemistry::Bucket: return "bucket";
  }
  return "?";
}

bool parse_chemistry(std::string_view name, Chemistry& out) {
  if (name == "lead_acid") {
    out = Chemistry::LeadAcid;
  } else if (name == "li_nmc") {
    out = Chemistry::LiNmc;
  } else if (name == "li_lfp") {
    out = Chemistry::LiLfp;
  } else if (name == "bucket") {
    out = Chemistry::Bucket;
  } else {
    return false;
  }
  return true;
}

OcvCurve ocv_curve_for(Chemistry c) {
  switch (c) {
    case Chemistry::LeadAcid: return OcvCurve::LeadAcidQuadratic;
    case Chemistry::LiNmc: return OcvCurve::NmcCubic;
    case Chemistry::LiLfp: return OcvCurve::LfpPlateau;
    case Chemistry::Bucket: return OcvCurve::Linear;
  }
  return OcvCurve::LeadAcidQuadratic;
}

Volts open_circuit_voltage(const LeadAcidParams& p, double soc) {
  return Volts{detail::block_ocv_v(p, soc)};
}

Volts open_circuit_voltage(const LeadAcidParams& p, double soc, OcvCurve curve) {
  return Volts{detail::block_ocv_chem_v(p, soc, curve)};
}

double soc_from_voltage(const LeadAcidParams& p, Volts ocv) {
  return soc_from_voltage(p, ocv, OcvCurve::LeadAcidQuadratic);
}

double soc_from_voltage(const LeadAcidParams& p, Volts ocv, OcvCurve curve) {
  // A non-finite reading must come out as NaN, not a confident 0 or 1: the
  // clamp below would otherwise launder sensor poison into a plausible
  // estimate and hide it from the run-health watchdog (the same contract the
  // fastmath tiers keep for the physics transcendentals).
  if (!std::isfinite(ocv.value())) return std::numeric_limits<double>::quiet_NaN();
  const double cell = ocv.value() / p.cells;
  const double span = (p.ocv_cell_full - p.ocv_cell_empty).value();
  const double s = (cell - p.ocv_cell_empty.value()) / span;  // = ocv_shape(soc)
  if (s <= 0.0) return 0.0;
  if (s >= 1.0) return 1.0;
  const double x = detail::soc_from_ocv_shape(curve, s);
  return util::clamp01(x);
}

AmpereHours effective_capacity(const LeadAcidParams& p, Amperes discharge_current) {
  return AmpereHours{detail::effective_capacity_ah(p, discharge_current.value())};
}

double charge_acceptance(const LeadAcidParams& p, double soc) {
  return detail::charge_acceptance_f(p, soc);
}

double coulombic_efficiency(const LeadAcidParams& p, double soc) {
  return detail::coulombic_efficiency_f(p, soc);
}

}  // namespace baat::battery
