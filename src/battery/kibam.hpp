#pragma once

// KiBaM — the Kinetic Battery Model (Manwell & McGowan), the standard
// higher-fidelity charge model for lead-acid cells in renewable-energy
// system studies (it underlies the Risø lifetime models the paper cites
// [32]). Charge sits in two wells: an *available* well that supplies the
// load directly and a *bound* well that replenishes it through a valve of
// conductance k. The model reproduces two behaviours the simple coulomb
// integrator cannot:
//
//   * rate-capacity effect — sustained high current drains the available
//     well faster than the bound well can refill it, so usable capacity
//     shrinks with current (an emergent Peukert effect);
//   * recovery effect — after a heavy discharge, resting lets bound charge
//     flow back and the battery "recovers" voltage/charge headroom.
//
// The class is self-contained and deliberately independent of
// battery::Battery: it is the charge-bookkeeping layer a higher-fidelity
// unit model can be built on, and the tests cross-validate its emergent
// rate-capacity behaviour against the explicit Peukert law in chemistry.hpp.

#include "util/units.hpp"

namespace baat::battery {

using util::Amperes;
using util::AmpereHours;
using util::Seconds;

struct KibamParams {
  AmpereHours total_capacity{35.0};  ///< q_max: both wells at full charge
  /// Fraction of total capacity in the available well (c in the literature;
  /// lead-acid is typically 0.2–0.4).
  double available_fraction = 0.30;
  /// Valve conductance between the wells, 1/hour (k'); larger = faster
  /// internal equalization, weaker rate effects.
  double rate_constant_per_h = 1.2;
};

class Kibam {
 public:
  explicit Kibam(KibamParams params, double initial_soc = 1.0);

  /// Advance by dt with `current` (> 0 discharge, < 0 charge). The request
  /// is clamped to what the available well can supply (or absorb); returns
  /// the actual current.
  Amperes step(Amperes current, Seconds dt);

  /// Total state of charge across both wells, in [0, 1].
  [[nodiscard]] double soc() const;
  /// Charge immediately deliverable (the available well), Ah.
  [[nodiscard]] AmpereHours available_charge() const { return AmpereHours{q_avail_}; }
  /// Charge bound behind the valve, Ah.
  [[nodiscard]] AmpereHours bound_charge() const { return AmpereHours{q_bound_}; }

  /// Largest constant current sustainable for `duration` from the present
  /// state (the KiBaM closed-form maximum-discharge bound).
  [[nodiscard]] Amperes max_discharge_current(Seconds duration) const;

  [[nodiscard]] const KibamParams& params() const { return params_; }

 private:
  /// exp(-kt), cached on kt: step() and max_discharge_current() are almost
  /// always called with the same fixed dt, so the std::exp runs once. A hit
  /// returns the exact cached double, so results are bitwise unchanged.
  double ekt(double kt) const;

  KibamParams params_;
  double q_avail_;  // Ah
  double q_bound_;  // Ah
  mutable double ekt_key_;  // NaN = nothing cached yet
  mutable double ekt_val_ = 1.0;
};

}  // namespace baat::battery
