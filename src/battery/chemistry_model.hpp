#pragma once

// Chemistry-model concept (DESIGN.md §5i): everything the SoA fleet kernel
// needs to host a battery chemistry — the OCV curve family, the electrical
// block (rate-capacity effect, charge acceptance, internal resistance,
// voltage limits), the aging-mechanism set with per-mechanism fade weights
// feeding the attribution ledger, and the cycle-life curve driving rainflow
// Miner damage. Deliberately *not* a virtual interface: the kernel's
// bit-exactness and throughput contracts (DESIGN.md §5e) rule out per-cell
// indirect calls, so a model is an enum tag plus parameter blocks and the
// kernel dispatches on the tag once per step.
//
// The electrical block reuses LeadAcidParams for every chemistry: its
// fields (capacity, per-cell OCV endpoints, Peukert exponent, C-rate caps,
// taper knee, coulombic efficiencies) are chemistry-agnostic knobs once the
// OCV *shape* is factored out into OcvCurve. Li presets express their pack
// voltages on the same 6-slot per-cell grid as the lead-acid prototype so
// nominal_voltage() stays 12 V and the router/telemetry stack needs no
// special cases.

#include <array>
#include <cstddef>

#include "battery/aging.hpp"
#include "battery/chemistry.hpp"
#include "battery/cycle_life.hpp"

namespace baat::battery {

/// Li-ion aging knobs: calendar fade (Arrhenius in temperature with a
/// SoC-stress term) plus rainflow cycle fade scaled by the capacity loss at
/// end-of-life. The energy-bucket tier reuses the calendar term and a flat
/// per-EFC throughput fade.
struct LiAgingParams {
  /// Base calendar fade per second at 20 °C and SoC 0; the kernel applies
  /// the Arrhenius factor and the SoC stress multiplier on top.
  double calendar_per_s = 0.0;
  /// Calendar stress slope in SoC: rate multiplier = 1 + gain * soc
  /// (storage at high SoC ages Li-ion faster).
  double calendar_soc_stress_gain = 0.0;
  /// Capacity fade attributed to cycling when accumulated rainflow Miner
  /// damage reaches 1.0 (e.g. 0.20 = the 80%-capacity EOL convention).
  double cycle_fade_at_eol = 0.0;
  /// Bucket tier only: flat capacity fade per equivalent full cycle.
  double throughput_fade_per_efc = 0.0;
};

/// One hosted chemistry: tag + parameter blocks. Aggregate, copyable,
/// assembled by chemistry_model() or customized field-by-field in tests.
struct ChemistryModel {
  Chemistry kind = Chemistry::LeadAcid;
  OcvCurve ocv = OcvCurve::LeadAcidQuadratic;
  LeadAcidParams electrical{};
  AgingParams aging{};
  LiAgingParams li{};
  /// Cycle-life curve for rainflow damage; Li presets carry tabulated
  /// datasheet points, lead-acid keeps the fleet's configured curve.
  CycleLifeCurve cycle_curve{};
};

/// The built-in preset for a chemistry (the `--chemistry` table).
[[nodiscard]] ChemistryModel chemistry_model(Chemistry kind);

/// The ledger/series mechanism axis of a chemistry: how many of the five
/// generic fade slots are active and what each is called. Lead-acid uses
/// all five (corrosion, shedding, sulphation, stratification, water_loss —
/// the historical series column order); Li maps slot 0 to calendar fade and
/// slot 1 to cycle fade; the bucket maps slot 0 to calendar and slot 1 to
/// throughput fade.
struct MechanismAxis {
  std::size_t count = 5;
  std::array<const char*, 5> names{};
};

[[nodiscard]] MechanismAxis mechanism_axis(Chemistry c);

/// The per-slot fade components of `f` in the axis order of `c` (weighted
/// exactly like fade_components / aging_capacity_fraction, so the first
/// `count` entries sum to the total fade to 1e-9).
[[nodiscard]] std::array<double, 5> mechanism_values(Chemistry c, const AgingParams& p,
                                                     const AgingState& s);

}  // namespace baat::battery
