#pragma once

// The five lead-acid aging mechanisms of §II-B, driven by the operating
// conditions Fig 6 correlates with each of them:
//
//   grid corrosion        — calendar time, high charge voltage, temperature
//   active-mass shedding  — Ah throughput, low SoC, temperature swings
//   sulphation            — time spent at low SoC without a full recharge
//   water loss            — overcharge (gassing) current, temperature
//   stratification        — deep discharge + rarely-full recharge; partially
//                           reversed by a full (equalizing) charge
//
// Each mechanism accumulates a dimensionless damage state. The states map
// onto the two observables the rest of the system sees: capacity fade
// (Fig 4; end-of-life at 80% of nameplate, [30]) and internal-resistance
// growth (drives the Fig 3 voltage droop and the Fig 5 round-trip
// efficiency loss).

#include "battery/thermal.hpp"
#include "util/units.hpp"

namespace baat::battery {

using util::Amperes;
using util::AmpereHours;
using util::Celsius;
using util::Seconds;
using util::Volts;

/// Accumulated damage per mechanism. Each state is roughly "fraction of
/// nameplate capacity destroyed by this mechanism" (see effect weights in
/// AgingParams); they are unbounded above but ~0.2 total means end-of-life.
struct AgingState {
  double corrosion = 0.0;
  double shedding = 0.0;
  double sulphation = 0.0;
  double water_loss = 0.0;
  double stratification = 0.0;

  [[nodiscard]] double total() const {
    return corrosion + shedding + sulphation + water_loss + stratification;
  }
};

/// Operating conditions for one simulation step, as seen by the aging model.
struct OperatingPoint {
  double soc = 1.0;                 ///< state of charge [0, 1]
  Amperes current{0.0};             ///< >0 discharge, <0 charge
  Volts terminal_voltage{12.6};
  Celsius temperature{25.0};
  Seconds time_since_full_charge{0.0};
  double temperature_rate_k_per_h = 0.0;  ///< |dT/dt|, drives AM shedding
};

struct AgingParams {
  // -- shedding: damage per equivalent full cycle (Ah moved / nameplate),
  // amplified at low SoC. Base chosen so shallow cycling consumes the life
  // in ~5000 full-cycle equivalents while deep low-SoC cycling lands near
  // the Fig 10 fits (the low-SoC gain below raises deep-cycle damage ~5×).
  // Normalizing per EFC (not per absolute Ah) makes damage scale correctly
  // with battery size.
  double shedding_per_efc = 1.0 / 5000.0;
  double shedding_low_soc_gain = 4.0;    ///< multiplier growth toward SoC = 0
  double shedding_dtemp_gain = 0.05;     ///< per (K/h) of temperature swing

  // -- sulphation: damage per second below the sulphation knee -------------
  double sulphation_knee_soc = 0.40;     ///< §III-D: below 40% SoC
  double sulphation_per_s = 2.6e-8;      ///< at SoC = 0, 20°C, fresh since full charge
  Seconds sulphation_memory{14.0 * 86400.0};  ///< time-since-full-charge doubling scale

  // -- corrosion: calendar damage per second, voltage-accelerated ----------
  // Tuned to ~8 year float life at 20°C acting alone.
  double corrosion_per_s = 1.0 / (8.0 * 365.0 * 86400.0) * 0.2;
  Volts corrosion_voltage_knee_cell{2.23};   ///< float-level polarization
  double corrosion_voltage_gain = 6.0;       ///< per volt/cell above the knee

  // -- water loss: damage per equivalent full cycle of gassing current -----
  double water_per_gassing_efc = 1.0 / 400.0;

  // -- stratification -------------------------------------------------------
  double stratification_per_s = 2.0e-8;  ///< while deeply discharged at low current
  double stratification_low_current_c = 0.1;  ///< "low current" threshold, ×C20
  double stratification_heal_factor = 0.6;    ///< surviving fraction after a full charge
  double stratification_cap = 0.08;           ///< stratification saturates

  // -- effect mapping -------------------------------------------------------
  double capacity_w_corrosion = 0.25;  ///< corrosion mostly raises resistance
  double capacity_w_water = 0.60;
  double resistance_w_corrosion = 14.0;
  double resistance_w_sulphation = 20.0;
  double resistance_w_shedding = 24.0;  ///< lost active surface raises R too
  double resistance_w_water = 5.0;
  /// Full-charge OCV sags as the plates degrade (drives the Fig 3 terminal
  /// voltage drop): volts per cell per unit of capacity fade.
  double ocv_sag_v_per_fade_cell = 0.08;
  /// Aged plates gas more on charge: fractional coulombic-efficiency loss
  /// per unit of capacity fade (drives the Fig 5 round-trip efficiency drop).
  double coulombic_fade = 0.35;
};

/// Integrates the five mechanism rate equations.
class AgingModel {
 public:
  AgingModel(AgingParams params, AmpereHours nameplate_capacity, int cells);

  /// Advance by dt at the given operating point.
  void step(const OperatingPoint& op, Seconds dt);

  /// A full (equalizing) charge partially reverses stratification.
  void on_full_charge();

  [[nodiscard]] const AgingState& state() const { return state_; }
  [[nodiscard]] const AgingParams& params() const { return params_; }

  /// Fraction of nameplate capacity remaining, in (0, 1].
  [[nodiscard]] double capacity_fraction() const;
  /// Multiplier on the fresh internal resistance, >= 1.
  [[nodiscard]] double resistance_factor() const;
  /// End-of-life per [30]: capacity below 80% of nameplate.
  [[nodiscard]] bool end_of_life() const { return capacity_fraction() < 0.80; }
  /// OCV depression of the aged cell, per cell (Fig 3's voltage droop).
  [[nodiscard]] Volts ocv_sag_per_cell() const;
  /// Multiplier (≤ 1) on the fresh coulombic charge efficiency (Fig 5).
  [[nodiscard]] double coulombic_derating() const;

  /// Test/benchmark hook: seed a pre-aged state.
  void set_state(const AgingState& s) { state_ = s; }

 private:
  AgingParams params_;
  AmpereHours capacity_;
  int cells_;
  AgingState state_;
};

}  // namespace baat::battery
