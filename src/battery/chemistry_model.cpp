#include "battery/chemistry_model.hpp"

#include "battery/ledger.hpp"

namespace baat::battery {

namespace {

/// Li-ion NMC preset. Pack voltages are a 3s NMC string (9.0–12.6 V)
/// expressed on the 6-slot per-cell grid (so nominal_voltage() stays 12 V):
/// full 12.6 V, empty/cutoff 9.0 V, CV limit 12.6 V. Nearly
/// rate-independent capacity (Peukert 1.02), high coulombic efficiency,
/// CC-CV taper knee at 90% SoC. Cycle life follows tabulated datasheet
/// points (~1500 full cycles to 80% capacity); calendar fade targets ~20%
/// over ~15 years at 20 °C and mid SoC.
ChemistryModel li_nmc_model() {
  ChemistryModel m;
  m.kind = Chemistry::LiNmc;
  m.ocv = OcvCurve::NmcCubic;

  LeadAcidParams& e = m.electrical;
  e.cells = 6;
  e.capacity_c20 = AmpereHours{35.0};
  e.ocv_cell_full = Volts{2.10};    // 12.6 V pack
  e.ocv_cell_empty = Volts{1.50};   // 9.0 V pack
  e.r_internal_ohms = 0.012;
  e.peukert_exponent = 1.02;
  e.cutoff_cell = Volts{1.50};      // 9.0 V low-voltage disconnect
  e.gassing_cell = Volts{2.10};     // no gassing chemistry: pinned at CV limit
  e.absorb_cell = Volts{2.10};      // 12.6 V CV limit
  e.max_discharge_c_rate = 2.0;
  e.max_charge_c_rate = 0.5;
  e.coulombic_efficiency_bulk = 0.995;
  e.coulombic_efficiency_full = 0.99;
  e.taper_knee_soc = 0.90;
  e.self_discharge_per_month = 0.02;

  // Only the fade/resistance weights of the generic five-slot aging state
  // matter for Li (the lead-acid rate equations never run): slot 0 carries
  // calendar fade at full weight, slot 1 carries cycle fade (weight 1 by
  // construction), the other three slots stay zero.
  AgingParams& a = m.aging;
  a.capacity_w_corrosion = 1.0;
  a.resistance_w_corrosion = 0.8;
  a.resistance_w_shedding = 1.2;
  a.resistance_w_sulphation = 0.0;
  a.resistance_w_water = 0.0;
  a.ocv_sag_v_per_fade_cell = 0.02;
  a.coulombic_fade = 0.05;

  m.li.calendar_per_s = 3.1e-10;
  m.li.calendar_soc_stress_gain = 0.6;
  m.li.cycle_fade_at_eol = 0.20;

  m.cycle_curve.cycles_at_full = 1500.0;
  m.cycle_curve.exponent = 1.4;
  m.cycle_curve.dod_min = 0.02;
  m.cycle_curve.points = {{0.1, 40000.0}, {0.2, 15000.0}, {0.4, 6000.0},
                          {0.6, 3500.0},  {0.8, 2200.0},  {1.0, 1500.0}};
  return m;
}

/// Li-ion LFP preset. Pack voltages are a 4s LFP string (10.0–13.8 V rest,
/// 14.6 V CV) on the 6-slot grid. The LfpPlateau curve keeps 84% of the SoC
/// range inside 10% of the voltage span — the flat curve that stresses any
/// voltage-based SoC estimator. Longest cycle life of the presets (~4500
/// full cycles to 80%), slowest calendar fade (~20% over ~20 years).
ChemistryModel li_lfp_model() {
  ChemistryModel m;
  m.kind = Chemistry::LiLfp;
  m.ocv = OcvCurve::LfpPlateau;

  LeadAcidParams& e = m.electrical;
  e.cells = 6;
  e.capacity_c20 = AmpereHours{35.0};
  e.ocv_cell_full = Volts{2.30};            // 13.8 V pack at rest
  e.ocv_cell_empty = Volts{11.6 / 6.0};     // 11.6 V pack
  e.r_internal_ohms = 0.008;
  e.peukert_exponent = 1.01;
  e.cutoff_cell = Volts{10.0 / 6.0};        // 10.0 V low-voltage disconnect
  e.gassing_cell = Volts{14.6 / 6.0};
  e.absorb_cell = Volts{14.6 / 6.0};        // 14.6 V CV limit
  e.max_discharge_c_rate = 2.0;
  e.max_charge_c_rate = 0.5;
  e.coulombic_efficiency_bulk = 0.998;
  e.coulombic_efficiency_full = 0.995;
  e.taper_knee_soc = 0.95;
  e.self_discharge_per_month = 0.01;

  AgingParams& a = m.aging;
  a.capacity_w_corrosion = 1.0;
  a.resistance_w_corrosion = 0.6;
  a.resistance_w_shedding = 1.0;
  a.resistance_w_sulphation = 0.0;
  a.resistance_w_water = 0.0;
  a.ocv_sag_v_per_fade_cell = 0.01;
  a.coulombic_fade = 0.03;

  m.li.calendar_per_s = 2.4e-10;
  m.li.calendar_soc_stress_gain = 0.4;
  m.li.cycle_fade_at_eol = 0.20;

  m.cycle_curve.cycles_at_full = 4500.0;
  m.cycle_curve.exponent = 1.35;
  m.cycle_curve.dod_min = 0.02;
  m.cycle_curve.points = {{0.1, 120000.0}, {0.2, 45000.0}, {0.4, 16000.0},
                          {0.6, 9000.0},   {0.8, 6000.0},  {1.0, 4500.0}};
  return m;
}

/// Energy-bucket preset: a linear-OCV coulomb bucket with a flat round-trip
/// efficiency, no Peukert effect, no thermal state and two-term aging
/// (calendar + throughput). The low-fidelity tier for huge sweeps — the
/// perf gate holds it to >= 5x the lead-acid exact tier's throughput.
ChemistryModel bucket_model() {
  ChemistryModel m;
  m.kind = Chemistry::Bucket;
  m.ocv = OcvCurve::Linear;

  LeadAcidParams& e = m.electrical;
  e.r_internal_ohms = 0.010;
  e.peukert_exponent = 1.0;
  e.max_discharge_c_rate = 1.0;
  e.max_charge_c_rate = 0.5;
  e.coulombic_efficiency_bulk = 0.95;
  e.coulombic_efficiency_full = 0.95;
  e.taper_knee_soc = 1.0;
  e.self_discharge_per_month = 0.0;

  AgingParams& a = m.aging;
  a.capacity_w_corrosion = 1.0;
  a.resistance_w_corrosion = 0.5;
  a.resistance_w_shedding = 0.5;
  a.resistance_w_sulphation = 0.0;
  a.resistance_w_water = 0.0;
  a.ocv_sag_v_per_fade_cell = 0.0;
  a.coulombic_fade = 0.0;

  m.li.calendar_per_s = 6.3e-10;             // ~20% over ~10 years
  m.li.calendar_soc_stress_gain = 0.0;
  m.li.throughput_fade_per_efc = 0.2 / 3000.0;  // 20% fade over 3000 EFC
  return m;
}

}  // namespace

ChemistryModel chemistry_model(Chemistry kind) {
  switch (kind) {
    case Chemistry::LeadAcid: return ChemistryModel{};
    case Chemistry::LiNmc: return li_nmc_model();
    case Chemistry::LiLfp: return li_lfp_model();
    case Chemistry::Bucket: return bucket_model();
  }
  return ChemistryModel{};
}

MechanismAxis mechanism_axis(Chemistry c) {
  switch (c) {
    case Chemistry::LeadAcid:
      return MechanismAxis{
          5, {"corrosion", "shedding", "sulphation", "stratification", "water_loss"}};
    case Chemistry::LiNmc:
    case Chemistry::LiLfp:
      return MechanismAxis{2, {"calendar", "cycle", nullptr, nullptr, nullptr}};
    case Chemistry::Bucket:
      return MechanismAxis{2, {"calendar", "throughput", nullptr, nullptr, nullptr}};
  }
  return MechanismAxis{
      5, {"corrosion", "shedding", "sulphation", "stratification", "water_loss"}};
}

std::array<double, 5> mechanism_values(Chemistry c, const AgingParams& p,
                                       const AgingState& s) {
  const MechanismFade f = fade_components(p, s);
  switch (c) {
    case Chemistry::LeadAcid:
      // Historical series column order.
      return {f.corrosion, f.shedding, f.sulphation, f.stratification, f.water_loss};
    case Chemistry::LiNmc:
    case Chemistry::LiLfp:
    case Chemistry::Bucket:
      // Slot 0 = calendar (corrosion slot), slot 1 = cycle/throughput
      // (shedding slot); the remaining slots are structurally zero but are
      // still summed by total(), so parts == total holds by construction.
      return {f.corrosion, f.shedding, f.sulphation, f.stratification, f.water_loss};
  }
  return {f.corrosion, f.shedding, f.sulphation, f.stratification, f.water_loss};
}

}  // namespace baat::battery
