#pragma once

// Battery service procedures. Equalization is the classic lead-acid
// maintenance treatment (§II-B.5's stratification is "reduced by a full
// recharge"; field practice goes further with a controlled overcharge):
// hold the unit at absorb voltage for a few hours so gassing stirs the
// electrolyte. It reverses stratification almost completely — at the price
// of water loss and some corrosion, which the aging model charges
// faithfully since the hold happens above the gassing knee.

#include "battery/battery.hpp"

namespace baat::battery {

struct EqualizationResult {
  double stratification_before = 0.0;
  double stratification_after = 0.0;
  double water_loss_added = 0.0;
  Seconds duration{0.0};
};

struct EqualizationParams {
  Seconds hold{util::hours(3.0)};          ///< time at absorb voltage once full
  Seconds step{util::minutes(1.0)};        ///< integration step of the rig
  double trickle_c_rate = 0.04;            ///< hold current, ×C20 (forces gassing)
  double residual_stratification = 0.05;   ///< surviving fraction after the stir
};

/// Run an equalization charge on the unit (in place: this is maintenance on
/// the real battery, not a probe). Charges to full first, then holds.
EqualizationResult equalize(Battery& unit, const EqualizationParams& params = {});

}  // namespace baat::battery
