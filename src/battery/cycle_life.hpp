#pragma once

// Cycle life versus depth of discharge (Fig 10 of the paper). The paper
// plots manufacturer data from Hoppecke, Trojan and UPG showing that cycle
// life drops by ~50% when a battery is frequently discharged at DoD above
// 50%. We fit each curve with the standard power law N(DoD) = N100 * DoD^-k,
// which also reproduces the "total cycled charge is nearly constant"
// observation ([31, 32], §III-A) when k ≈ 1.

#include <string_view>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace baat::battery {

using util::AmpereHours;

enum class Manufacturer { Hoppecke, Trojan, UPG };

[[nodiscard]] std::string_view manufacturer_name(Manufacturer m);

/// N(DoD) = cycles_at_full * DoD^-exponent, clamped to DoD in [dod_min, 1].
/// When `points` is non-empty the power law is replaced by log-log linear
/// interpolation over the tabulated (DoD, cycles) pairs — the shape
/// manufacturer Li-ion datasheets publish. Outside the tabulated range the
/// end segments extrapolate on the same log-log slope (still saturated at
/// dod_min), so micro-cycles below the smallest tabulated DoD accrue small
/// but strictly positive Miner damage instead of zero, and depths past the
/// largest point keep shrinking N instead of flattening. An empty table is
/// bit-identical to the historical power law.
struct CycleLifeCurve {
  double cycles_at_full = 1000.0;  ///< rated cycles at 100% DoD
  double exponent = 1.1;           ///< >1 ⇒ deep cycling wastes total throughput
  double dod_min = 0.05;           ///< below this the curve saturates
  /// Tabulated (DoD, cycles) pairs, strictly increasing in DoD, all in
  /// (0, 1] x (0, inf). Configuration, not state: checkpoints serialize only
  /// the power-law scalars and rebuild the table from the scenario (a
  /// mismatched table is refused upstream via the scenario fingerprint).
  std::vector<std::pair<double, double>> points;

  /// Rated cycle count when every cycle reaches the given depth of discharge.
  /// Always finite and >= 1 for dod in (0, 1].
  [[nodiscard]] double cycles(double dod) const;

  /// Total Ah a battery of the given nameplate capacity can deliver over its
  /// life when cycled at a fixed DoD: N(DoD) * DoD * C.
  [[nodiscard]] AmpereHours lifetime_throughput(double dod, AmpereHours capacity) const;

  /// Fractional life consumed by discharging `throughput` Ah at depth `dod`.
  [[nodiscard]] double damage_fraction(AmpereHours throughput, double dod,
                                       AmpereHours capacity) const;
};

/// Fitted curve for one of the three manufacturers shown in Fig 10.
[[nodiscard]] CycleLifeCurve curve_for(Manufacturer m);

}  // namespace baat::battery
