#pragma once

// Rainflow cycle counting over an SoC time series. The cycle-life curves of
// Fig 10 are defined per *cycle at a depth*; a real usage log is an
// irregular SoC wiggle, so predicting damage from it requires decomposing
// the wiggle into equivalent full and half cycles — the rainflow algorithm
// (ASTM E1049, the same tool the battery-lifetime literature the paper
// cites [32] uses). The extracted spectrum feeds CycleLifeCurve damage and
// the lifetime predictor in core/.

#include <vector>

#include "battery/cycle_life.hpp"

namespace baat::battery {

/// One counted cycle: a depth-of-discharge swing and how many times it
/// occurred (0.5 for residual half cycles).
struct RainflowCycle {
  double depth = 0.0;  ///< SoC swing, fraction of capacity
  double count = 1.0;  ///< 1 full cycle or 0.5 half cycle
  double mean = 0.0;   ///< mean SoC of the swing (for low-SoC weighting)
};

/// Extract the rainflow cycle spectrum from an SoC series (values in [0,1]).
/// The series is reduced to turning points first; series shorter than two
/// turning points yield an empty spectrum.
std::vector<RainflowCycle> rainflow_count(const std::vector<double>& soc_series);

/// Equivalent full cycles in a spectrum: Σ count · depth.
double equivalent_full_cycles(const std::vector<RainflowCycle>& spectrum);

/// Fractional life consumed by a spectrum under a cycle-life curve:
/// Σ count / N(depth)  (Miner's linear damage accumulation).
double rainflow_damage(const std::vector<RainflowCycle>& spectrum,
                       const CycleLifeCurve& curve);

}  // namespace baat::battery
