#pragma once

// One battery unit: SoC book-keeping with Peukert and coulombic losses,
// terminal voltage under load, thermal state, the five-mechanism aging
// model, and the ground-truth usage counters that the paper's power table
// (Table 2) derives its metrics from.
//
// Since the SoA tick kernel landed (fleet.hpp), Battery is a thin view over
// one cell of a battery::FleetState. A standalone Battery owns a private
// one-cell fleet, so the object-per-cell API (tests, probes, single-unit
// experiments) is unchanged; banks share one FleetState and hand out bound
// views (see fleet_views()), which is what makes the batched fleet_step()
// possible. Value semantics are deep: copying a Battery clones the cell,
// and assigning into a bound view copies the unit's state into the fleet
// slot so every other view of that slot sees the replacement.
//
// Sign convention everywhere: current > 0 discharges the battery,
// current < 0 charges it.

#include <cstddef>
#include <memory>

#include "battery/fleet.hpp"

namespace baat::battery {

class Battery {
 public:
  /// Standalone unit owning a private one-cell fleet. `capacity_scale` and
  /// `resistance_scale` model unit-to-unit manufacturing variation (§IV-B:
  /// "deviations ... from their nominal specification"); both default to a
  /// perfectly nominal unit.
  Battery(LeadAcidParams chem, AgingParams aging, ThermalParams thermal,
          double capacity_scale = 1.0, double resistance_scale = 1.0,
          double initial_soc = 1.0, MathMode math = MathMode::Exact);

  /// Non-owning view over cell `cell` of `fleet` (see fleet_views()). The
  /// fleet must outlive the view.
  Battery(FleetState& fleet, std::size_t cell);

  Battery(const Battery& other);
  Battery(Battery&& other) noexcept;
  Battery& operator=(const Battery& other);
  Battery& operator=(Battery&& other) noexcept;
  ~Battery() = default;

  /// Advance by dt, requesting `requested` (>0 discharge, <0 charge). The
  /// battery clamps the request to what chemistry allows (low-voltage
  /// disconnect, charge acceptance taper, rate caps) and reports the actual
  /// current that flowed.
  StepResult step(Amperes requested, Seconds dt) {
    return fleet_->step_cell(cell_, requested, dt);
  }

  /// Maintenance-rig entry: hold the unit at absorb voltage with a forced
  /// trickle current for dt, bypassing the acceptance clamp. Whatever the
  /// SoC cannot absorb drives gassing — this is how an equalization charger
  /// works, and the aging model charges the water loss and corrosion for it.
  StepResult float_charge(Amperes trickle, Seconds dt) {
    return fleet_->float_charge_cell(cell_, trickle, dt);
  }

  // --- physical observables ------------------------------------------------
  [[nodiscard]] double soc() const { return fleet_->cell_soc(cell_); }
  [[nodiscard]] Volts open_circuit() const { return fleet_->cell_open_circuit(cell_); }
  /// Terminal voltage if `current` were flowing right now.
  [[nodiscard]] Volts terminal_voltage(Amperes current) const {
    return fleet_->cell_terminal_voltage(cell_, current);
  }
  [[nodiscard]] Celsius temperature() const { return fleet_->cell_temperature(cell_); }
  [[nodiscard]] double internal_resistance_ohms() const {
    return fleet_->cell_internal_resistance_ohms(cell_);
  }

  // --- capacity and health --------------------------------------------------
  /// Nameplate capacity of this unit (includes manufacturing variation).
  [[nodiscard]] AmpereHours nameplate() const { return fleet_->cell_nameplate(cell_); }
  /// Present usable capacity after aging fade.
  [[nodiscard]] AmpereHours usable_capacity() const {
    return fleet_->cell_usable_capacity(cell_);
  }
  /// usable_capacity / nameplate, the paper's health measure ([30]).
  [[nodiscard]] double health() const { return fleet_->cell_health(cell_); }
  [[nodiscard]] bool end_of_life() const { return fleet_->cell_end_of_life(cell_); }

  /// Open-cell failure (a broken inter-cell weld, a dried-out cell): the
  /// unit instantly stops sourcing or sinking any current — 0 V at the
  /// terminals, zero usable capacity, health 0. Irreversible.
  void fail_open() { fleet_->fail_open_cell(cell_); }
  [[nodiscard]] bool open_failed() const { return fleet_->cell_open_failed(cell_); }
  /// Fault/test hook: overwrite the stored SoC with no validation — the
  /// nan_poison fault smuggles a NaN past the kernel's input guards so the
  /// run-health watchdog (not an assertion) is what catches it.
  void debug_set_soc(double soc) { fleet_->debug_set_soc(cell_, soc); }
  [[nodiscard]] const AgingState& aging_state() const {
    return fleet_->cell_aging_state(cell_);
  }
  /// Test/benchmark hook: seed a pre-aged state.
  void set_aging_state(const AgingState& s) { fleet_->set_cell_aging_state(cell_, s); }

  // --- limits the router needs ----------------------------------------------
  /// Largest discharge current sustainable right now without dipping below
  /// the low-voltage disconnect.
  [[nodiscard]] Amperes max_discharge_current() const {
    return fleet_->cell_max_discharge_current(cell_);
  }
  /// Largest charge current the cell will accept right now.
  [[nodiscard]] Amperes max_charge_current() const {
    return fleet_->cell_max_charge_current(cell_);
  }
  /// Energy retrievable before the SoC floor `floor_soc` at a modest rate.
  [[nodiscard]] WattHours stored_energy_above(double floor_soc) const {
    return fleet_->cell_stored_energy_above(cell_, floor_soc);
  }

  [[nodiscard]] const UsageCounters& counters() const {
    return fleet_->cell_counters(cell_);
  }
  [[nodiscard]] const LeadAcidParams& chemistry() const {
    return fleet_->cell_chemistry(cell_);
  }

  /// Equivalent full cycles delivered so far (Ah discharged / nameplate).
  [[nodiscard]] double equivalent_full_cycles() const {
    return fleet_->cell_equivalent_full_cycles(cell_);
  }

  // --- fleet plumbing --------------------------------------------------------
  /// The fleet this unit's state lives in (the private one for standalones).
  /// The router uses pointer equality to detect banks sharing one fleet and
  /// batch their idle steps.
  [[nodiscard]] FleetState* fleet() { return fleet_; }
  [[nodiscard]] const FleetState* fleet() const { return fleet_; }
  [[nodiscard]] std::size_t cell_index() const { return cell_; }

 private:
  FleetState* fleet_ = nullptr;
  std::size_t cell_ = 0;
  std::unique_ptr<FleetState> owned_;  ///< set when this Battery owns its one-cell fleet
};

}  // namespace baat::battery
