#pragma once

// One battery unit: SoC book-keeping with Peukert and coulombic losses,
// terminal voltage under load, thermal state, the five-mechanism aging
// model, and the ground-truth usage counters that the paper's power table
// (Table 2) derives its metrics from.
//
// Sign convention everywhere: current > 0 discharges the battery,
// current < 0 charges it.

#include <cstdint>

#include "battery/aging.hpp"
#include "battery/chemistry.hpp"
#include "battery/thermal.hpp"
#include "util/units.hpp"

namespace baat::battery {

using util::Seconds;
using util::WattHours;
using util::Watts;

/// Ground-truth usage counters accumulated over the battery's whole life.
/// The telemetry layer rebuilds an *estimated* version of these from sensor
/// samples; tests compare the two.
struct UsageCounters {
  AmpereHours ah_discharged{0.0};
  AmpereHours ah_charged{0.0};
  /// Discharge Ah binned by the SoC ranges of Eq 3:
  /// A = [80,100], B = [60,80), C = [40,60), D = [0,40).
  AmpereHours ah_by_range[4] = {AmpereHours{0}, AmpereHours{0}, AmpereHours{0}, AmpereHours{0}};
  Seconds time_total{0.0};
  Seconds time_below_40{0.0};
  Seconds time_since_full_charge{0.0};
  std::int64_t full_charge_events = 0;
  double min_soc_since_full = 1.0;
  WattHours energy_discharged{0.0};
  WattHours energy_charged{0.0};
};

/// Outcome of one step() call.
struct StepResult {
  Amperes actual_current{0.0};   ///< after clamping to physical limits
  Volts terminal_voltage{0.0};
  bool hit_cutoff = false;       ///< discharge was curtailed by the LVD
  bool fully_charged = false;    ///< this step completed a full charge
};

class Battery {
 public:
  /// `capacity_scale` and `resistance_scale` model unit-to-unit
  /// manufacturing variation (§IV-B: "deviations ... from their nominal
  /// specification"); both default to a perfectly nominal unit.
  Battery(LeadAcidParams chem, AgingParams aging, ThermalParams thermal,
          double capacity_scale = 1.0, double resistance_scale = 1.0,
          double initial_soc = 1.0);

  /// Advance by dt, requesting `requested` (>0 discharge, <0 charge). The
  /// battery clamps the request to what chemistry allows (low-voltage
  /// disconnect, charge acceptance taper, rate caps) and reports the actual
  /// current that flowed.
  StepResult step(Amperes requested, Seconds dt);

  /// Maintenance-rig entry: hold the unit at absorb voltage with a forced
  /// trickle current for dt, bypassing the acceptance clamp. Whatever the
  /// SoC cannot absorb drives gassing — this is how an equalization charger
  /// works, and the aging model charges the water loss and corrosion for it.
  StepResult float_charge(Amperes trickle, Seconds dt);

  // --- physical observables ------------------------------------------------
  [[nodiscard]] double soc() const { return soc_; }
  [[nodiscard]] Volts open_circuit() const;
  /// Terminal voltage if `current` were flowing right now.
  [[nodiscard]] Volts terminal_voltage(Amperes current) const;
  [[nodiscard]] Celsius temperature() const { return thermal_.temperature(); }
  [[nodiscard]] double internal_resistance_ohms() const;

  // --- capacity and health --------------------------------------------------
  /// Nameplate capacity of this unit (includes manufacturing variation).
  [[nodiscard]] AmpereHours nameplate() const { return nameplate_; }
  /// Present usable capacity after aging fade.
  [[nodiscard]] AmpereHours usable_capacity() const;
  /// usable_capacity / nameplate, the paper's health measure ([30]).
  [[nodiscard]] double health() const {
    return open_ ? 0.0 : aging_.capacity_fraction();
  }
  [[nodiscard]] bool end_of_life() const { return open_ || aging_.end_of_life(); }

  /// Open-cell failure (a broken inter-cell weld, a dried-out cell): the
  /// unit instantly stops sourcing or sinking any current — 0 V at the
  /// terminals, zero usable capacity, health 0. Irreversible.
  void fail_open() { open_ = true; }
  [[nodiscard]] bool open_failed() const { return open_; }
  [[nodiscard]] const AgingState& aging_state() const { return aging_.state(); }
  [[nodiscard]] AgingModel& aging_model() { return aging_; }

  // --- limits the router needs ----------------------------------------------
  /// Largest discharge current sustainable right now without dipping below
  /// the low-voltage disconnect.
  [[nodiscard]] Amperes max_discharge_current() const;
  /// Largest charge current the cell will accept right now.
  [[nodiscard]] Amperes max_charge_current() const;
  /// Energy retrievable before the SoC floor `floor_soc` at a modest rate.
  [[nodiscard]] WattHours stored_energy_above(double floor_soc) const;

  [[nodiscard]] const UsageCounters& counters() const { return counters_; }
  [[nodiscard]] const LeadAcidParams& chemistry() const { return chem_; }

  /// Equivalent full cycles delivered so far (Ah discharged / nameplate).
  [[nodiscard]] double equivalent_full_cycles() const;

 private:
  void account_discharge(Amperes i, Seconds dt, double soc_before);
  void account_charge(Amperes i, Seconds dt);

  LeadAcidParams chem_;
  AmpereHours nameplate_;
  double resistance_scale_;
  AgingModel aging_;
  ThermalModel thermal_;
  double soc_;
  UsageCounters counters_;
  double last_temp_c_;
  bool open_ = false;
};

}  // namespace baat::battery
