#include "battery/thermal.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace baat::battery {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params),
      temp_(params.ambient),
      tau_(params.heat_capacity_j_per_k * params.thermal_resistance_k_per_w),
      decay_dt_(std::numeric_limits<double>::quiet_NaN()) {
  BAAT_REQUIRE(params_.heat_capacity_j_per_k > 0.0, "heat capacity must be positive");
  BAAT_REQUIRE(params_.thermal_resistance_k_per_w > 0.0, "thermal resistance must be positive");
}

void ThermalModel::step(Watts loss, Seconds dt) {
  BAAT_REQUIRE(loss.value() >= 0.0, "loss power must be >= 0");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  // Exact exponential update of dT/dt = (P - (T - Ta)/Rth) / Cth; this stays
  // stable even if a caller steps with a very large dt. The decay factor
  // only depends on dt and the fixed time constant, so cache it across the
  // (overwhelmingly common) fixed-dt tick sequence — a hit returns the exact
  // double std::exp produced for the same dt.
  const double t_inf = steady_state(loss).value();
  if (dt.value() != decay_dt_) {
    decay_dt_ = dt.value();
    decay_ = std::exp(-dt.value() / tau_);
  }
  temp_ = Celsius{t_inf + (temp_.value() - t_inf) * decay_};
}

Celsius ThermalModel::steady_state(Watts loss) const {
  return Celsius{params_.ambient.value() + loss.value() * params_.thermal_resistance_k_per_w};
}

double arrhenius_factor(Celsius t) {
  return std::pow(2.0, (t.value() - 20.0) / 10.0);
}

}  // namespace baat::battery
