#include "battery/thermal.hpp"

#include <cmath>

#include "util/require.hpp"

namespace baat::battery {

ThermalModel::ThermalModel(ThermalParams params) : params_(params), temp_(params.ambient) {
  BAAT_REQUIRE(params_.heat_capacity_j_per_k > 0.0, "heat capacity must be positive");
  BAAT_REQUIRE(params_.thermal_resistance_k_per_w > 0.0, "thermal resistance must be positive");
}

void ThermalModel::step(Watts loss, Seconds dt) {
  BAAT_REQUIRE(loss.value() >= 0.0, "loss power must be >= 0");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  // Exact exponential update of dT/dt = (P - (T - Ta)/Rth) / Cth; this stays
  // stable even if a caller steps with a very large dt.
  const double tau = params_.heat_capacity_j_per_k * params_.thermal_resistance_k_per_w;
  const double t_inf = steady_state(loss).value();
  const double decay = std::exp(-dt.value() / tau);
  temp_ = Celsius{t_inf + (temp_.value() - t_inf) * decay};
}

Celsius ThermalModel::steady_state(Watts loss) const {
  return Celsius{params_.ambient.value() + loss.value() * params_.thermal_resistance_k_per_w};
}

double arrhenius_factor(Celsius t) {
  return std::pow(2.0, (t.value() - 20.0) / 10.0);
}

}  // namespace baat::battery
