#include "battery/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "battery/step_math.hpp"
#include "obs/timer.hpp"
#include "util/fastmath.hpp"
#include "util/require.hpp"

namespace baat::battery {

namespace {
constexpr double kFullChargeSoc = 0.995;
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

FleetState::FleetState(LeadAcidParams chem, AgingParams aging, ThermalParams thermal,
                       MathMode math)
    : chem_base_(chem), aging_params_(aging), thermal_base_(thermal), math_(math) {
  BAAT_REQUIRE(chem_base_.cells > 0, "cell count must be positive");
  BAAT_REQUIRE(thermal_base_.heat_capacity_j_per_k > 0.0, "heat capacity must be positive");
  BAAT_REQUIRE(thermal_base_.thermal_resistance_k_per_w > 0.0,
               "thermal resistance must be positive");
}

FleetState::FleetState(const ChemistryModel& model, ThermalParams thermal, MathMode math)
    : FleetState(model.electrical, model.aging, thermal, math) {
  kind_ = model.kind;
  ocv_curve_ = model.ocv;
  li_ = model.li;
  ledger_curve_ = model.cycle_curve;
}

std::size_t FleetState::add_cell(double capacity_scale, double resistance_scale,
                                 double initial_soc) {
  BAAT_REQUIRE(capacity_scale > 0.0, "capacity_scale must be positive");
  BAAT_REQUIRE(resistance_scale > 0.0, "resistance_scale must be positive");
  BAAT_REQUIRE(initial_soc >= 0.0 && initial_soc <= 1.0, "initial soc must be in [0, 1]");
  const double nameplate = chem_base_.capacity_c20.value() * capacity_scale;
  BAAT_REQUIRE(nameplate > 0.0, "nameplate capacity must be positive");

  const std::size_t c = soc_.size();
  LeadAcidParams chem = chem_base_;
  // Bake the manufacturing variation into the chemistry view so Peukert and
  // rate caps all see this unit's true capacity.
  chem.capacity_c20 = AmpereHours{nameplate};
  chem_.push_back(chem);
  thermal_.push_back(thermal_base_);
  tau_.push_back(thermal_base_.heat_capacity_j_per_k *
                 thermal_base_.thermal_resistance_k_per_w);
  nameplate_.push_back(nameplate);
  resistance_scale_.push_back(resistance_scale);
  soc_.push_back(initial_soc);
  temp_c_.push_back(thermal_base_.ambient.value());
  open_.push_back(0);
  aging_.emplace_back();
  UsageCounters counters;
  counters.min_soc_since_full = initial_soc;
  counters_.push_back(counters);
  arr_key_.push_back(kNaN);
  arr_val_.push_back(1.0);
  pk_key_.push_back(kNaN);
  pk_val_.push_back(1.0);
  decay_key_.push_back(kNaN);
  decay_val_.push_back(1.0);
  rainflow_.emplace_back(ledger_curve_);
  rainflow_.back().push(initial_soc);  // history opens at the birth SoC
  ledger_base_aging_.emplace_back();
  ledger_base_damage_.push_back(0.0);
  ledger_base_efc_.push_back(0.0);
  ledger_base_dwell_.push_back(0.0);
  derived_dirty_ = true;
  return c;
}

// --- aging-attribution ledger ------------------------------------------------

CellLedgerEntry FleetState::ledger_total(std::size_t c) const {
  BAAT_REQUIRE(c < soc_.size(), "cell index out of range");
  CellLedgerEntry e;
  e.fade = fade_components(aging_params_, aging_[c]);
  e.cycle_damage = rainflow_[c].damage();
  e.efc = counters_[c].ah_discharged.value() / nameplate_[c];
  e.low_soc_dwell_s = counters_[c].time_below_40.value();
  return e;
}

CellLedgerEntry FleetState::ledger_delta(std::size_t c) const {
  CellLedgerEntry e = ledger_total(c);
  e.fade -= fade_components(aging_params_, ledger_base_aging_[c]);
  e.cycle_damage -= ledger_base_damage_[c];
  e.efc -= ledger_base_efc_[c];
  e.low_soc_dwell_s -= ledger_base_dwell_[c];
  return e;
}

void FleetState::ledger_advance() {
  for (std::size_t c = 0; c < soc_.size(); ++c) {
    ledger_base_aging_[c] = aging_[c];
    ledger_base_damage_[c] = rainflow_[c].damage();
    ledger_base_efc_[c] = counters_[c].ah_discharged.value() / nameplate_[c];
    ledger_base_dwell_[c] = counters_[c].time_below_40.value();
  }
}

// --- transcendental memos ----------------------------------------------------
// Last-argument caches: a hit returns the exact double the library call
// produced for the same input, so Exact mode stays bit-identical. The keys
// start NaN (NaN != x for every x), so the first lookup always misses.

double FleetState::arrhenius(std::size_t c, double temp_c) {
  // Fast and Simd both serve the memo from the polynomial (the simd group
  // kernel bypasses this memo entirely, but float_charge_cell and any
  // scalar-path stepping in those tiers still land here).
  if (temp_c != arr_key_[c]) {
    arr_key_[c] = temp_c;
    arr_val_[c] = math_ != MathMode::Exact ? util::fast_exp2((temp_c - 20.0) / 10.0)
                                           : detail::arrhenius_value(temp_c);
  }
  return arr_val_[c];
}

double FleetState::peukert_capacity_ah(std::size_t c, double i) {
  const LeadAcidParams& p = chem_[c];
  BAAT_REQUIRE(i >= 0.0, "discharge current must be >= 0");
  const double i20 = p.rated_current().value();
  if (i <= i20) return p.capacity_c20.value();
  const double ratio = i20 / i;
  if (ratio != pk_key_[c]) {
    pk_key_[c] = ratio;
    pk_val_[c] = math_ != MathMode::Exact
                     ? util::fast_pow(ratio, p.peukert_exponent - 1.0)
                     : std::pow(ratio, p.peukert_exponent - 1.0);
  }
  return p.capacity_c20.value() * pk_val_[c];
}

double FleetState::thermal_decay(std::size_t c, double dt_s) {
  // Kept exact in every math tier: the decay feeds temperature directly
  // (state, not an aging rate), and the fixed simulation dt makes this a
  // once-per-run computation anyway.
  if (dt_s != decay_key_[c]) {
    decay_key_[c] = dt_s;
    decay_val_[c] = std::exp(-dt_s / tau_[c]);
  }
  return decay_val_[c];
}

// --- per-cell observables ----------------------------------------------------

Volts FleetState::cell_open_circuit(std::size_t c) const {
  if (open_[c] != 0) return Volts{0.0};
  const double fresh = detail::block_ocv_chem_v(chem_[c], soc_[c], ocv_curve_);
  const double sag = detail::aging_ocv_sag_v(
      aging_params_, detail::aging_capacity_fraction(aging_params_, aging_[c]));
  return Volts{fresh - sag * chem_[c].cells};
}

double FleetState::cell_internal_resistance_ohms(std::size_t c) const {
  return chem_[c].r_internal_ohms * resistance_scale_[c] *
         detail::aging_resistance_factor(aging_params_, aging_[c]);
}

Volts FleetState::cell_terminal_voltage(std::size_t c, Amperes current) const {
  if (open_[c] != 0) return Volts{0.0};  // no circuit, no IR drop
  return Volts{cell_open_circuit(c).value() -
               current.value() * cell_internal_resistance_ohms(c)};
}

AmpereHours FleetState::cell_usable_capacity(std::size_t c) const {
  if (open_[c] != 0) return AmpereHours{0.0};
  return AmpereHours{nameplate_[c] *
                     detail::aging_capacity_fraction(aging_params_, aging_[c])};
}

double FleetState::cell_health(std::size_t c) const {
  return open_[c] != 0 ? 0.0 : detail::aging_capacity_fraction(aging_params_, aging_[c]);
}

bool FleetState::cell_end_of_life(std::size_t c) const {
  return open_[c] != 0 ||
         detail::aging_capacity_fraction(aging_params_, aging_[c]) < 0.80;
}

Amperes FleetState::cell_max_discharge_current(std::size_t c) const {
  if (open_[c] != 0 || soc_[c] <= 0.0) return Amperes{0.0};
  const double headroom = cell_open_circuit(c).value() - chem_[c].cutoff_voltage().value();
  if (headroom <= 0.0) return Amperes{0.0};
  const double by_voltage = headroom / cell_internal_resistance_ohms(c);
  const double by_rate = chem_[c].max_discharge_c_rate * nameplate_[c];
  return Amperes{std::min(by_voltage, by_rate)};
}

Amperes FleetState::cell_max_charge_current(std::size_t c) const {
  if (open_[c] != 0 || soc_[c] >= 1.0) return Amperes{0.0};
  const double by_rate = chem_[c].max_charge_c_rate * nameplate_[c] *
                         detail::charge_acceptance_f(chem_[c], soc_[c]);
  const double headroom = chem_[c].absorb_voltage().value() - cell_open_circuit(c).value();
  if (headroom <= 0.0) return Amperes{0.0};
  const double by_voltage = headroom / cell_internal_resistance_ohms(c);
  return Amperes{std::min(by_rate, by_voltage)};
}

WattHours FleetState::cell_stored_energy_above(std::size_t c, double floor_soc) const {
  BAAT_REQUIRE(floor_soc >= 0.0 && floor_soc <= 1.0, "floor soc must be in [0, 1]");
  const double frac = std::max(0.0, soc_[c] - floor_soc);
  return WattHours{frac * cell_usable_capacity(c).value() *
                   chem_[c].nominal_voltage().value()};
}

// --- the tick kernel ---------------------------------------------------------

StepResult FleetState::step_cell(std::size_t c, Amperes requested, Seconds dt) {
  // The energy-bucket tier has its own reduced tick in every math mode.
  if (kind_ == Chemistry::Bucket) return step_cell_bucket(c, requested, dt);
  // The simd tier routes even single-cell steps through the branchless
  // lane kernel (width 1) so the router's per-cell active path and the
  // batched step_all path stay bitwise consistent within the tier. The lane
  // kernel is lead-acid physics; Li chemistries fall through to the scalar
  // path (their Fast and Simd trajectories coincide).
  if (math_ == MathMode::Simd && kind_ == Chemistry::LeadAcid) {
    return step_cell_simd(c, requested, dt);
  }
  BAAT_OBS_TIMED("battery_step");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(c < soc_.size(), "cell index out of range");

  const LeadAcidParams& chem = chem_[c];
  AgingState& ag = aging_[c];
  UsageCounters& ctr = counters_[c];
  const bool open = open_[c] != 0;
  double soc = soc_[c];
  const double soc_before = soc;

  // Aging-derived factors are pure functions of the aging state, which only
  // mutates in the aging step at the tail — hoist them once per tick. The
  // products below are the exact expressions the accessors evaluate.
  const double cap_frac = detail::aging_capacity_fraction(aging_params_, ag);
  const double sag_block = detail::aging_ocv_sag_v(aging_params_, cap_frac) * chem.cells;
  const double r = chem.r_internal_ohms * resistance_scale_[c] *
                   detail::aging_resistance_factor(aging_params_, ag);
  // Open-circuit voltage at a given SoC; only evaluated on non-open cells
  // (the scalar code's open_ early-outs are preserved at every call site).
  const auto ocv_at = [&](double s) {
    return detail::block_ocv_chem_v(chem, s, ocv_curve_) - sag_block;
  };

  StepResult result;
  // An open cell can neither source nor sink current; it still tracks
  // time, temperature relaxation and calendar effects below.
  Amperes actual = open ? Amperes{0.0} : requested;
  if (open && requested.value() > 0.0) result.hit_cutoff = true;

  if (actual.value() > 0.0) {
    // ---- discharge ----
    double cap_a = 0.0;  // max_discharge_current (cell is not open here)
    if (soc > 0.0) {
      const double headroom = ocv_at(soc) - chem.cutoff_voltage().value();
      if (headroom > 0.0) {
        const double by_voltage = headroom / r;
        const double by_rate = chem.max_discharge_c_rate * nameplate_[c];
        cap_a = std::min(by_voltage, by_rate);
      }
    }
    if (actual.value() > cap_a) {
      actual = Amperes{cap_a};
      result.hit_cutoff = true;
    }
    if (actual.value() > 0.0) {
      // Peukert-corrected SoC drain, then clamp so SoC cannot go negative.
      const double c_eff = peukert_capacity_ah(c, actual.value()) * cap_frac;
      const double dq = actual.value() * dt.value() / 3600.0;
      double dsoc = dq / c_eff;
      if (dsoc > soc) {
        const double scale = soc / dsoc;
        actual *= scale;
        dsoc = soc;
        result.hit_cutoff = true;
      }
      soc -= dsoc;
      // account_discharge(actual, dt, soc_before).
      const AmpereHours q = util::charge(actual, dt);
      ctr.ah_discharged += q;
      // Eq 3 SoC ranges: A = [0.8, 1], B = [0.6, 0.8), C = [0.4, 0.6), D = [0, 0.4).
      std::size_t range = 3;
      if (soc_before >= 0.8) {
        range = 0;
      } else if (soc_before >= 0.6) {
        range = 1;
      } else if (soc_before >= 0.4) {
        range = 2;
      }
      ctr.ah_by_range[range] += q;
      const Volts tv{ocv_at(soc) - actual.value() * r};
      ctr.energy_discharged += util::energy(tv * actual, dt);
      ctr.min_soc_since_full = std::min(ctr.min_soc_since_full, soc);
    }
  } else if (actual.value() < 0.0) {
    // ---- charge ----
    double accept = 0.0;  // max_charge_current (cell is not open here)
    if (soc < 1.0) {
      const double by_rate = chem.max_charge_c_rate * nameplate_[c] *
                             detail::charge_acceptance_f(chem, soc);
      const double headroom = chem.absorb_voltage().value() - ocv_at(soc);
      if (headroom > 0.0) accept = std::min(by_rate, headroom / r);
    }
    if (-actual.value() > accept) actual = Amperes{-accept};
    const double cap = open ? 0.0 : nameplate_[c] * cap_frac;  // usable_capacity
    if (cap <= 0.0) actual = Amperes{0.0};  // zero capacity accepts nothing
    if (actual.value() < 0.0) {
      const double eta = detail::coulombic_efficiency_f(chem, soc) *
                         detail::aging_coulombic_derating_f(aging_params_, cap_frac);
      const double dq = std::fabs(actual.value()) * dt.value() / 3600.0;
      double dsoc = eta * dq / cap;
      if (soc + dsoc > 1.0) {
        const double scale = (1.0 - soc) / dsoc;
        actual *= scale;
        dsoc = 1.0 - soc;
      }
      soc += dsoc;
      // account_charge(actual, dt).
      const AmpereHours q = util::charge(Amperes{std::fabs(actual.value())}, dt);
      ctr.ah_charged += q;
      const double tv = ocv_at(soc) - actual.value() * r;
      ctr.energy_charged += util::energy(Watts{tv * std::fabs(actual.value())}, dt);
    }
  }

  // ---- self-discharge (standing loss, temperature-accelerated) ----
  const double sd_rate =
      chem.self_discharge_per_month / (30.0 * 86400.0) * arrhenius(c, temp_c_[c]);
  soc = std::max(0.0, soc - sd_rate * dt.value());

  result.actual_current = actual;
  result.terminal_voltage = open ? Volts{0.0} : Volts{ocv_at(soc) - actual.value() * r};

  // ---- thermal (exact RC exponential; decay memoized on the fixed dt) ----
  const double loss = actual.value() * actual.value() * r;
  const double temp_before = temp_c_[c];
  const double t_inf =
      thermal_[c].ambient.value() + loss * thermal_[c].thermal_resistance_k_per_w;
  temp_c_[c] = t_inf + (temp_before - t_inf) * thermal_decay(c, dt.value());
  const double dtemp_per_h = std::fabs(temp_c_[c] - temp_before) / dt.value() * 3600.0;

  // ---- full-charge detection (before aging sees time_since_full_charge) ----
  const bool was_full = soc_before >= kFullChargeSoc;
  const bool is_full = soc >= kFullChargeSoc;
  if (is_full && !was_full) {
    result.fully_charged = true;
    ++ctr.full_charge_events;
    ctr.time_since_full_charge = Seconds{0.0};
    ctr.min_soc_since_full = soc;
    ag.stratification *= aging_params_.stratification_heal_factor;  // on_full_charge()
  } else {
    ctr.time_since_full_charge += dt;
  }

  // ---- aging (per-chemistry mechanism set) ----
  OperatingPoint op;
  op.soc = soc;
  op.current = actual;
  op.terminal_voltage = result.terminal_voltage;
  op.temperature = Celsius{temp_c_[c]};
  op.time_since_full_charge = ctr.time_since_full_charge;
  op.temperature_rate_k_per_h = dtemp_per_h;
  chemistry_aging_step(c, op, dt);

  // ---- time counters ----
  ctr.time_total += dt;
  if (soc < 0.40) ctr.time_below_40 += dt;

  soc_[c] = soc;
  // Li cycle fade is driven by the rainflow counter, so the push is
  // unconditional for Li (the ledger toggle only controls the *observation*
  // tax for lead-acid, where rainflow is not part of the physics).
  const bool is_li = kind_ == Chemistry::LiNmc || kind_ == Chemistry::LiLfp;
  if (ledger_enabled_ || is_li) rainflow_[c].push(soc);
  if (is_li) ag.shedding = li_.cycle_fade_at_eol * rainflow_[c].damage();
  BAAT_INVARIANT(soc >= 0.0 && soc <= 1.0, "soc escaped [0, 1]");
  return result;
}

StepResult FleetState::float_charge_cell(std::size_t c, Amperes trickle, Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(trickle.value() >= 0.0, "trickle must be >= 0 (magnitude)");
  BAAT_REQUIRE(c < soc_.size(), "cell index out of range");

  const LeadAcidParams& chem = chem_[c];
  AgingState& ag = aging_[c];
  UsageCounters& ctr = counters_[c];
  const bool open = open_[c] != 0;
  double soc = soc_[c];
  const double soc_before = soc;
  const Amperes i{-trickle.value()};

  const double cap_frac = detail::aging_capacity_fraction(aging_params_, ag);
  const double sag_block = detail::aging_ocv_sag_v(aging_params_, cap_frac) * chem.cells;
  const double r = chem.r_internal_ohms * resistance_scale_[c] *
                   detail::aging_resistance_factor(aging_params_, ag);
  const auto ocv_at = [&](double s) {
    return detail::block_ocv_chem_v(chem, s, ocv_curve_) - sag_block;
  };

  // Whatever fits below full still converts; the rest gasses.
  if (soc < 1.0 && trickle.value() > 0.0) {
    const double eta = detail::coulombic_efficiency_f(chem, soc) *
                       detail::aging_coulombic_derating_f(aging_params_, cap_frac);
    const double dq = trickle.value() * dt.value() / 3600.0;
    const double usable = open ? 0.0 : nameplate_[c] * cap_frac;
    soc = std::min(1.0, soc + eta * dq / usable);
    // account_charge(i, dt).
    const AmpereHours q = util::charge(Amperes{std::fabs(i.value())}, dt);
    ctr.ah_charged += q;
    const double tv = open ? 0.0 : ocv_at(soc) - i.value() * r;
    ctr.energy_charged += util::energy(Watts{tv * std::fabs(i.value())}, dt);
  }

  StepResult result;
  result.actual_current = i;
  result.terminal_voltage = chem.absorb_voltage();

  const double loss = trickle.value() * trickle.value() * r;
  const double t_inf =
      thermal_[c].ambient.value() + loss * thermal_[c].thermal_resistance_k_per_w;
  temp_c_[c] = t_inf + (temp_c_[c] - t_inf) * thermal_decay(c, dt.value());

  const bool was_full = soc_before >= kFullChargeSoc;
  if (soc >= kFullChargeSoc && !was_full) {
    result.fully_charged = true;
    ++ctr.full_charge_events;
    ctr.time_since_full_charge = Seconds{0.0};
    ctr.min_soc_since_full = soc;
    ag.stratification *= aging_params_.stratification_heal_factor;  // on_full_charge()
  } else {
    ctr.time_since_full_charge += dt;
  }

  OperatingPoint op;
  op.soc = soc;
  op.current = i;
  op.terminal_voltage = result.terminal_voltage;  // held at absorb level
  op.temperature = Celsius{temp_c_[c]};
  op.time_since_full_charge = ctr.time_since_full_charge;
  chemistry_aging_step(c, op, dt);

  ctr.time_total += dt;
  if (soc < 0.40) ctr.time_below_40 += dt;
  soc_[c] = soc;
  const bool is_li = kind_ == Chemistry::LiNmc || kind_ == Chemistry::LiLfp;
  if (ledger_enabled_ || is_li) rainflow_[c].push(soc);
  if (is_li) ag.shedding = li_.cycle_fade_at_eol * rainflow_[c].damage();
  return result;
}

void FleetState::chemistry_aging_step(std::size_t c, const OperatingPoint& op, Seconds dt) {
  AgingState& ag = aging_[c];
  switch (kind_) {
    case Chemistry::LeadAcid:
      // The five lead-acid rate equations (corrosion, shedding, sulphation,
      // water loss, stratification).
      detail::aging_mechanism_step(aging_params_, nameplate_[c], chem_[c].cells, op, dt,
                                   arrhenius(c, temp_c_[c]), ag);
      break;
    case Chemistry::LiNmc:
    case Chemistry::LiLfp:
      // Calendar fade (Arrhenius x SoC stress) accrues into the corrosion
      // slot; cycle fade is mirrored from the rainflow counter into the
      // shedding slot at the push site.
      ag.corrosion += li_.calendar_per_s * (1.0 + li_.calendar_soc_stress_gain * op.soc) *
                      arrhenius(c, temp_c_[c]) * dt.value();
      break;
    case Chemistry::Bucket:
      // Calendar fade plus a flat per-EFC throughput fade.
      ag.corrosion += li_.calendar_per_s * arrhenius(c, temp_c_[c]) * dt.value();
      ag.shedding += li_.throughput_fade_per_efc *
                     (std::fabs(op.current.value()) * dt.value() / 3600.0 / nameplate_[c]);
      break;
  }
}

StepResult FleetState::step_cell_bucket(std::size_t c, Amperes requested, Seconds dt) {
  BAAT_OBS_TIMED("battery_step");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(c < soc_.size(), "cell index out of range");
  // The bucket reads its per-cell constants from the same flat SoA mirrors
  // the Simd tier gathers from — one amortized cache line per cell instead
  // of walking the ~2-line LeadAcidParams struct.
  if (derived_dirty_) refresh_derived();

  AgingState& ag = aging_[c];
  UsageCounters& ctr = counters_[c];
  const bool open = open_[c] != 0;
  double soc = soc_[c];
  const double soc_before = soc;

  // The generic five-mechanism helpers stay on this path even though the
  // bucket tick itself only accrues corrosion + shedding: an installed aged
  // state (seed_aged_fleet, tests) may populate any slot, and the fade used
  // here must always equal 1 - cell_health().
  const double cap_frac = detail::aging_capacity_fraction(aging_params_, ag);
  const double inv_nameplate = derived_.inv_nameplate[c];
  // One reciprocal serves every per-capacity term below; the remaining
  // rates multiply by it instead of dividing (the tier's 5x-cheaper budget
  // is mostly bought here — the full kernel pays ~5 divides per tick).
  const double inv_cap = inv_nameplate / cap_frac;  // cap_frac >= 0.05
  const double r =
      derived_.r_base[c] * detail::aging_resistance_factor(aging_params_, ag);

  StepResult result;
  Amperes actual = open ? Amperes{0.0} : requested;
  if (open && requested.value() > 0.0) result.hit_cutoff = true;

  const double hours = dt.value() * (1.0 / 3600.0);
  if (actual.value() > 0.0) {
    // ---- discharge: flat C-rate cap, linear coulomb drain ----
    const double cap_a = soc > 0.0 ? derived_.max_dis_a[c] : 0.0;
    if (actual.value() > cap_a) {
      actual = Amperes{cap_a};
      result.hit_cutoff = true;
    }
    if (actual.value() > 0.0) {
      double dsoc = actual.value() * hours * inv_cap;
      if (dsoc > soc) {
        actual *= soc / dsoc;
        dsoc = soc;
        result.hit_cutoff = true;
      }
      soc -= dsoc;
      const AmpereHours q{actual.value() * hours};
      ctr.ah_discharged += q;
      ag.shedding += li_.throughput_fade_per_efc * (q.value() * inv_nameplate);
      std::size_t range = 3;
      if (soc_before >= 0.8) {
        range = 0;
      } else if (soc_before >= 0.6) {
        range = 1;
      } else if (soc_before >= 0.4) {
        range = 2;
      }
      ctr.ah_by_range[range] += q;
      ctr.min_soc_since_full = std::min(ctr.min_soc_since_full, soc);
    }
  } else if (actual.value() < 0.0) {
    // ---- charge: flat C-rate cap, flat coulombic efficiency ----
    const double accept = soc < 1.0 ? derived_.max_chg_a[c] : 0.0;
    if (-actual.value() > accept) actual = Amperes{-accept};
    if (actual.value() < 0.0) {
      double dsoc =
          derived_.eta_bulk[c] * (-actual.value()) * hours * inv_cap;
      if (soc + dsoc > 1.0) {
        actual *= (1.0 - soc) / dsoc;
        dsoc = 1.0 - soc;
      }
      soc += dsoc;
      const double q = -actual.value() * hours;
      ctr.ah_charged += AmpereHours{q};
      ag.shedding += li_.throughput_fade_per_efc * (q * inv_nameplate);
    }
  }

  // ---- linear OCV; no thermal RC (temperature stays ambient) ----
  const double ocv = derived_.ocv_empty_b[c] + derived_.ocv_span_b[c] * soc;
  result.actual_current = actual;
  result.terminal_voltage = open ? Volts{0.0} : Volts{ocv - actual.value() * r};
  if (actual.value() > 0.0) {
    ctr.energy_discharged +=
        WattHours{result.terminal_voltage.value() * actual.value() * hours};
  } else if (actual.value() < 0.0) {
    ctr.energy_charged +=
        WattHours{result.terminal_voltage.value() * -actual.value() * hours};
  }

  // ---- full-charge detection ----
  const bool was_full = soc_before >= kFullChargeSoc;
  if (soc >= kFullChargeSoc && !was_full) {
    result.fully_charged = true;
    ++ctr.full_charge_events;
    ctr.time_since_full_charge = Seconds{0.0};
    ctr.min_soc_since_full = soc;
  } else {
    ctr.time_since_full_charge += dt;
  }

  // ---- calendar aging (the per-EFC throughput fade accrues in the
  // discharge/charge branches above, off the already-computed Ah moved) ----
  // The bucket has no thermal RC, so the cell sits at ambient and the memo
  // hits every tick after the first; inlining the hit test keeps the
  // out-of-line arrhenius() call (and its register spills) off the hot path.
  const double tc = temp_c_[c];
  const double arr = tc == arr_key_[c] ? arr_val_[c] : arrhenius(c, tc);
  ag.corrosion += li_.calendar_per_s * arr * dt.value();

  ctr.time_total += dt;
  if (soc < 0.40) ctr.time_below_40 += dt;
  soc_[c] = soc;
  // No rainflow: the bucket tier has no cycle model (its mechanism axis is
  // calendar + throughput), so cycle_damage legitimately reads 0 and the
  // per-tick counting cost is dropped with it.
  BAAT_INVARIANT(soc >= 0.0 && soc <= 1.0, "soc escaped [0, 1]");
  return result;
}

void FleetState::step_all(std::span<const Amperes> requested, Seconds dt,
                          std::span<StepResult> results) {
  BAAT_REQUIRE(requested.size() == size() && results.size() == size(),
               "fleet_step span sizes must match the fleet size");
  if (math_ == MathMode::Simd && kind_ == Chemistry::LeadAcid) {
    step_all_simd(requested, dt, results);
    return;
  }
  if (kind_ == Chemistry::Bucket) {
    step_all_bucket(requested, dt, results);
    return;
  }
  for (std::size_t c = 0; c < size(); ++c) results[c] = step_cell(c, requested[c], dt);
}

// Dedicated bucket loop: skips the per-cell dispatch chain in step_cell and
// flattens step_cell_bucket into the loop body, so the per-tick invariants
// (dt-derived constants, dirty check, aging weights) hoist out and
// independent cells overlap in the pipeline instead of serializing on a
// call boundary per cell.
__attribute__((flatten)) void FleetState::step_all_bucket(
    std::span<const Amperes> requested, Seconds dt, std::span<StepResult> results) {
  if (derived_dirty_) refresh_derived();
  for (std::size_t c = 0; c < size(); ++c) {
    results[c] = step_cell_bucket(c, requested[c], dt);
  }
}

void FleetState::step_cells(std::span<const std::size_t> cells, Amperes requested,
                            Seconds dt) {
  for (const std::size_t c : cells) (void)step_cell(c, requested, dt);
}

// --- view support ------------------------------------------------------------

FleetState FleetState::clone_cell(std::size_t c) const {
  BAAT_REQUIRE(c < soc_.size(), "cell index out of range");
  FleetState out{chem_base_, aging_params_, thermal_base_, math_};
  out.kind_ = kind_;
  out.ocv_curve_ = ocv_curve_;
  out.li_ = li_;
  out.chem_.push_back(chem_[c]);
  out.thermal_.push_back(thermal_[c]);
  out.tau_.push_back(tau_[c]);
  out.nameplate_.push_back(nameplate_[c]);
  out.resistance_scale_.push_back(resistance_scale_[c]);
  out.soc_.push_back(soc_[c]);
  out.temp_c_.push_back(temp_c_[c]);
  out.open_.push_back(open_[c]);
  out.aging_.push_back(aging_[c]);
  out.counters_.push_back(counters_[c]);
  out.arr_key_.push_back(arr_key_[c]);
  out.arr_val_.push_back(arr_val_[c]);
  out.pk_key_.push_back(pk_key_[c]);
  out.pk_val_.push_back(pk_val_[c]);
  out.decay_key_.push_back(decay_key_[c]);
  out.decay_val_.push_back(decay_val_[c]);
  out.ledger_enabled_ = ledger_enabled_;
  out.ledger_curve_ = ledger_curve_;
  out.rainflow_.push_back(rainflow_[c]);
  out.ledger_base_aging_.push_back(ledger_base_aging_[c]);
  out.ledger_base_damage_.push_back(ledger_base_damage_[c]);
  out.ledger_base_efc_.push_back(ledger_base_efc_[c]);
  out.ledger_base_dwell_.push_back(ledger_base_dwell_[c]);
  return out;
}

void FleetState::copy_cell_from(std::size_t dst, const FleetState& src,
                                std::size_t src_cell) {
  BAAT_REQUIRE(dst < soc_.size(), "destination cell index out of range");
  BAAT_REQUIRE(src_cell < src.soc_.size(), "source cell index out of range");
  if (size() == 1) {
    chem_base_ = src.chem_base_;
    aging_params_ = src.aging_params_;
    thermal_base_ = src.thermal_base_;
    math_ = src.math_;
    kind_ = src.kind_;
    ocv_curve_ = src.ocv_curve_;
    li_ = src.li_;
  }
  chem_[dst] = src.chem_[src_cell];
  thermal_[dst] = src.thermal_[src_cell];
  tau_[dst] = src.tau_[src_cell];
  nameplate_[dst] = src.nameplate_[src_cell];
  resistance_scale_[dst] = src.resistance_scale_[src_cell];
  soc_[dst] = src.soc_[src_cell];
  temp_c_[dst] = src.temp_c_[src_cell];
  open_[dst] = src.open_[src_cell];
  aging_[dst] = src.aging_[src_cell];
  counters_[dst] = src.counters_[src_cell];
  arr_key_[dst] = src.arr_key_[src_cell];
  arr_val_[dst] = src.arr_val_[src_cell];
  pk_key_[dst] = src.pk_key_[src_cell];
  pk_val_[dst] = src.pk_val_[src_cell];
  decay_key_[dst] = src.decay_key_[src_cell];
  decay_val_[dst] = src.decay_val_[src_cell];
  rainflow_[dst] = src.rainflow_[src_cell];
  ledger_base_aging_[dst] = src.ledger_base_aging_[src_cell];
  ledger_base_damage_[dst] = src.ledger_base_damage_[src_cell];
  ledger_base_efc_[dst] = src.ledger_base_efc_[src_cell];
  ledger_base_dwell_[dst] = src.ledger_base_dwell_[src_cell];
  derived_dirty_ = true;  // cell_weak faults rewrite chemistry mid-run
}

namespace {

void save_chem(snapshot::SnapshotWriter& w, const LeadAcidParams& p) {
  w.write_i64(p.cells);
  w.write_f64(p.capacity_c20.value());
  w.write_f64(p.ocv_cell_full.value());
  w.write_f64(p.ocv_cell_empty.value());
  w.write_f64(p.r_internal_ohms);
  w.write_f64(p.peukert_exponent);
  w.write_f64(p.cutoff_cell.value());
  w.write_f64(p.gassing_cell.value());
  w.write_f64(p.absorb_cell.value());
  w.write_f64(p.max_discharge_c_rate);
  w.write_f64(p.max_charge_c_rate);
  w.write_f64(p.coulombic_efficiency_bulk);
  w.write_f64(p.coulombic_efficiency_full);
  w.write_f64(p.taper_knee_soc);
  w.write_f64(p.self_discharge_per_month);
}

void load_chem(snapshot::SnapshotReader& r, LeadAcidParams& p) {
  p.cells = static_cast<int>(r.read_i64());
  p.capacity_c20 = AmpereHours{r.read_f64()};
  p.ocv_cell_full = Volts{r.read_f64()};
  p.ocv_cell_empty = Volts{r.read_f64()};
  p.r_internal_ohms = r.read_f64();
  p.peukert_exponent = r.read_f64();
  p.cutoff_cell = Volts{r.read_f64()};
  p.gassing_cell = Volts{r.read_f64()};
  p.absorb_cell = Volts{r.read_f64()};
  p.max_discharge_c_rate = r.read_f64();
  p.max_charge_c_rate = r.read_f64();
  p.coulombic_efficiency_bulk = r.read_f64();
  p.coulombic_efficiency_full = r.read_f64();
  p.taper_knee_soc = r.read_f64();
  p.self_discharge_per_month = r.read_f64();
}

void save_thermal(snapshot::SnapshotWriter& w, const ThermalParams& p) {
  w.write_f64(p.heat_capacity_j_per_k);
  w.write_f64(p.thermal_resistance_k_per_w);
  w.write_f64(p.ambient.value());
}

void load_thermal(snapshot::SnapshotReader& r, ThermalParams& p) {
  p.heat_capacity_j_per_k = r.read_f64();
  p.thermal_resistance_k_per_w = r.read_f64();
  p.ambient = Celsius{r.read_f64()};
}

void save_aging_state(snapshot::SnapshotWriter& w, const AgingState& s) {
  w.write_f64(s.corrosion);
  w.write_f64(s.shedding);
  w.write_f64(s.sulphation);
  w.write_f64(s.water_loss);
  w.write_f64(s.stratification);
}

void load_aging_state(snapshot::SnapshotReader& r, AgingState& s) {
  s.corrosion = r.read_f64();
  s.shedding = r.read_f64();
  s.sulphation = r.read_f64();
  s.water_loss = r.read_f64();
  s.stratification = r.read_f64();
}

void save_counters(snapshot::SnapshotWriter& w, const UsageCounters& c) {
  w.write_f64(c.ah_discharged.value());
  w.write_f64(c.ah_charged.value());
  for (const AmpereHours& ah : c.ah_by_range) w.write_f64(ah.value());
  w.write_f64(c.time_total.value());
  w.write_f64(c.time_below_40.value());
  w.write_f64(c.time_since_full_charge.value());
  w.write_i64(c.full_charge_events);
  w.write_f64(c.min_soc_since_full);
  w.write_f64(c.energy_discharged.value());
  w.write_f64(c.energy_charged.value());
}

void load_counters(snapshot::SnapshotReader& r, UsageCounters& c) {
  c.ah_discharged = AmpereHours{r.read_f64()};
  c.ah_charged = AmpereHours{r.read_f64()};
  for (AmpereHours& ah : c.ah_by_range) ah = AmpereHours{r.read_f64()};
  c.time_total = Seconds{r.read_f64()};
  c.time_below_40 = Seconds{r.read_f64()};
  c.time_since_full_charge = Seconds{r.read_f64()};
  c.full_charge_events = r.read_i64();
  c.min_soc_since_full = r.read_f64();
  c.energy_discharged = WattHours{r.read_f64()};
  c.energy_charged = WattHours{r.read_f64()};
}

}  // namespace

namespace {
std::uint8_t math_mode_byte(MathMode m) {
  switch (m) {
    case MathMode::Exact:
      return 0;
    case MathMode::Fast:
      return 1;
    case MathMode::Simd:
      return 2;
  }
  return 0;
}

// Leading sentinel marking a non-lead-acid fleet snapshot. Lead-acid
// snapshots keep the PR 9 layout byte-for-byte (first byte = math mode,
// always 0/1/2, which can never collide with the sentinel); non-lead-acid
// snapshots prepend [sentinel, chemistry byte] so a resume under a
// different --chemistry is refused with a readable error instead of a
// garbled-stream failure.
constexpr std::uint8_t kChemistrySentinel = 0xC7;
}  // namespace

void FleetState::save_state(snapshot::SnapshotWriter& w) const {
  if (kind_ != Chemistry::LeadAcid) {
    w.write_u8(kChemistrySentinel);
    w.write_u8(static_cast<std::uint8_t>(kind_));
  }
  w.write_u8(math_mode_byte(math_));
  w.write_u64(size());
  for (const LeadAcidParams& p : chem_) save_chem(w, p);
  for (const ThermalParams& p : thermal_) save_thermal(w, p);
  w.write_f64_vec(tau_);
  w.write_f64_vec(nameplate_);
  w.write_f64_vec(resistance_scale_);
  w.write_f64_vec(soc_);
  w.write_f64_vec(temp_c_);
  w.write_u8_vec(open_);
  for (const AgingState& s : aging_) save_aging_state(w, s);
  for (const UsageCounters& c : counters_) save_counters(w, c);
  w.write_f64_vec(arr_key_);
  w.write_f64_vec(arr_val_);
  w.write_f64_vec(pk_key_);
  w.write_f64_vec(pk_val_);
  w.write_f64_vec(decay_key_);
  w.write_f64_vec(decay_val_);
  // Ledger state (format v2): baselines and the open rainflow stacks —
  // cycles that span a checkpoint must resume at full depth.
  w.write_bool(ledger_enabled_);
  for (const OnlineRainflow& rf : rainflow_) rf.save_state(w);
  for (const AgingState& s : ledger_base_aging_) save_aging_state(w, s);
  w.write_f64_vec(ledger_base_damage_);
  w.write_f64_vec(ledger_base_efc_);
  w.write_f64_vec(ledger_base_dwell_);
}

void FleetState::load_state(snapshot::SnapshotReader& r) {
  std::uint8_t saved_byte = r.read_u8();
  Chemistry saved_kind = Chemistry::LeadAcid;
  if (saved_byte == kChemistrySentinel) {
    saved_kind = static_cast<Chemistry>(r.read_u8());
    saved_byte = r.read_u8();  // the math-mode byte follows the tag
  }
  if (saved_kind != kind_) {
    throw snapshot::SnapshotError(
        std::string{"fleet snapshot was taken with --chemistry "} +
        std::string{chemistry_name(saved_kind)} + " but the scenario runs --chemistry " +
        std::string{chemistry_name(kind_)} + "; resume with the chemistry the "
        "checkpoint was written under");
  }
  if (saved_byte != math_mode_byte(math_)) {
    throw snapshot::SnapshotError(
        "fleet snapshot was taken in a different --math mode; resume with the "
        "same math tier the checkpoint was written under");
  }
  const auto n = static_cast<std::size_t>(r.read_u64());
  if (n != size()) {
    throw snapshot::SnapshotError("fleet snapshot holds " + std::to_string(n) +
                                  " cells but the scenario builds " + std::to_string(size()));
  }
  for (LeadAcidParams& p : chem_) load_chem(r, p);
  for (ThermalParams& p : thermal_) load_thermal(r, p);
  tau_ = r.read_f64_vec();
  nameplate_ = r.read_f64_vec();
  resistance_scale_ = r.read_f64_vec();
  soc_ = r.read_f64_vec();
  temp_c_ = r.read_f64_vec();
  open_ = r.read_u8_vec();
  if (tau_.size() != n || nameplate_.size() != n || resistance_scale_.size() != n ||
      soc_.size() != n || temp_c_.size() != n || open_.size() != n) {
    throw snapshot::SnapshotError("fleet snapshot per-cell arrays disagree on cell count");
  }
  for (AgingState& s : aging_) load_aging_state(r, s);
  for (UsageCounters& c : counters_) load_counters(r, c);
  arr_key_ = r.read_f64_vec();
  arr_val_ = r.read_f64_vec();
  pk_key_ = r.read_f64_vec();
  pk_val_ = r.read_f64_vec();
  decay_key_ = r.read_f64_vec();
  decay_val_ = r.read_f64_vec();
  if (arr_key_.size() != n || arr_val_.size() != n || pk_key_.size() != n ||
      pk_val_.size() != n || decay_key_.size() != n || decay_val_.size() != n) {
    throw snapshot::SnapshotError("fleet snapshot memo arrays disagree on cell count");
  }
  ledger_enabled_ = r.read_bool();
  for (OnlineRainflow& rf : rainflow_) rf.load_state(r);
  for (AgingState& s : ledger_base_aging_) load_aging_state(r, s);
  ledger_base_damage_ = r.read_f64_vec();
  ledger_base_efc_ = r.read_f64_vec();
  ledger_base_dwell_ = r.read_f64_vec();
  if (ledger_base_damage_.size() != n || ledger_base_efc_.size() != n ||
      ledger_base_dwell_.size() != n) {
    throw snapshot::SnapshotError("fleet snapshot ledger arrays disagree on cell count");
  }
  derived_dirty_ = true;  // restored chemistry invalidates the derived mirrors
}

}  // namespace baat::battery
