#include "battery/battery.hpp"

#include <algorithm>
#include <cmath>

#include "obs/timer.hpp"
#include "util/require.hpp"

namespace baat::battery {

namespace {
constexpr double kFullChargeSoc = 0.995;
}

Battery::Battery(LeadAcidParams chem, AgingParams aging, ThermalParams thermal,
                 double capacity_scale, double resistance_scale, double initial_soc)
    : chem_(chem),
      nameplate_(AmpereHours{chem.capacity_c20.value() * capacity_scale}),
      resistance_scale_(resistance_scale),
      aging_(aging, nameplate_, chem.cells),
      thermal_(thermal),
      soc_(initial_soc),
      last_temp_c_(thermal_.temperature().value()) {
  BAAT_REQUIRE(capacity_scale > 0.0, "capacity_scale must be positive");
  BAAT_REQUIRE(resistance_scale > 0.0, "resistance_scale must be positive");
  BAAT_REQUIRE(initial_soc >= 0.0 && initial_soc <= 1.0, "initial soc must be in [0, 1]");
  // Bake the manufacturing variation into the chemistry view so Peukert and
  // rate caps all see this unit's true capacity.
  chem_.capacity_c20 = nameplate_;
  counters_.min_soc_since_full = initial_soc;
}

Volts Battery::open_circuit() const {
  if (open_) return Volts{0.0};
  const Volts fresh = open_circuit_voltage(chem_, soc_);
  return Volts{fresh.value() - aging_.ocv_sag_per_cell().value() * chem_.cells};
}

double Battery::internal_resistance_ohms() const {
  return chem_.r_internal_ohms * resistance_scale_ * aging_.resistance_factor();
}

Volts Battery::terminal_voltage(Amperes current) const {
  if (open_) return Volts{0.0};  // no circuit, no IR drop
  return Volts{open_circuit().value() - current.value() * internal_resistance_ohms()};
}

AmpereHours Battery::usable_capacity() const {
  if (open_) return AmpereHours{0.0};
  return AmpereHours{nameplate_.value() * aging_.capacity_fraction()};
}

Amperes Battery::max_discharge_current() const {
  if (open_ || soc_ <= 0.0) return Amperes{0.0};
  const double headroom = open_circuit().value() - chem_.cutoff_voltage().value();
  if (headroom <= 0.0) return Amperes{0.0};
  const double by_voltage = headroom / internal_resistance_ohms();
  const double by_rate = chem_.max_discharge_c_rate * nameplate_.value();
  return Amperes{std::min(by_voltage, by_rate)};
}

Amperes Battery::max_charge_current() const {
  if (open_ || soc_ >= 1.0) return Amperes{0.0};
  const double by_rate =
      chem_.max_charge_c_rate * nameplate_.value() * charge_acceptance(chem_, soc_);
  const double headroom = chem_.absorb_voltage().value() - open_circuit().value();
  if (headroom <= 0.0) return Amperes{0.0};
  const double by_voltage = headroom / internal_resistance_ohms();
  return Amperes{std::min(by_rate, by_voltage)};
}

WattHours Battery::stored_energy_above(double floor_soc) const {
  BAAT_REQUIRE(floor_soc >= 0.0 && floor_soc <= 1.0, "floor soc must be in [0, 1]");
  const double frac = std::max(0.0, soc_ - floor_soc);
  return WattHours{frac * usable_capacity().value() * chem_.nominal_voltage().value()};
}

double Battery::equivalent_full_cycles() const {
  return counters_.ah_discharged.value() / nameplate_.value();
}

void Battery::account_discharge(Amperes i, Seconds dt, double soc_before) {
  const AmpereHours q = util::charge(i, dt);
  counters_.ah_discharged += q;
  // Eq 3 SoC ranges: A = [0.8, 1], B = [0.6, 0.8), C = [0.4, 0.6), D = [0, 0.4).
  std::size_t range = 3;
  if (soc_before >= 0.8) {
    range = 0;
  } else if (soc_before >= 0.6) {
    range = 1;
  } else if (soc_before >= 0.4) {
    range = 2;
  }
  counters_.ah_by_range[range] += q;
  counters_.energy_discharged += util::energy(terminal_voltage(i) * i, dt);
}

void Battery::account_charge(Amperes i, Seconds dt) {
  const AmpereHours q = util::charge(Amperes{std::fabs(i.value())}, dt);
  counters_.ah_charged += q;
  counters_.energy_charged +=
      util::energy(Watts{terminal_voltage(i).value() * std::fabs(i.value())}, dt);
}

StepResult Battery::float_charge(Amperes trickle, Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(trickle.value() >= 0.0, "trickle must be >= 0 (magnitude)");
  const double soc_before = soc_;
  const Amperes i{-trickle.value()};

  // Whatever fits below full still converts; the rest gasses.
  if (soc_ < 1.0 && trickle.value() > 0.0) {
    const double eta = coulombic_efficiency(chem_, soc_) * aging_.coulombic_derating();
    const double dq = trickle.value() * dt.value() / 3600.0;
    soc_ = std::min(1.0, soc_ + eta * dq / usable_capacity().value());
    account_charge(i, dt);
  }

  StepResult result;
  result.actual_current = i;
  result.terminal_voltage = chem_.absorb_voltage();

  const Watts loss{trickle.value() * trickle.value() * internal_resistance_ohms()};
  thermal_.step(loss, dt);

  const bool was_full = soc_before >= kFullChargeSoc;
  if (soc_ >= kFullChargeSoc && !was_full) {
    result.fully_charged = true;
    ++counters_.full_charge_events;
    counters_.time_since_full_charge = Seconds{0.0};
    counters_.min_soc_since_full = soc_;
    aging_.on_full_charge();
  } else {
    counters_.time_since_full_charge += dt;
  }

  OperatingPoint op;
  op.soc = soc_;
  op.current = i;
  op.terminal_voltage = result.terminal_voltage;  // held at absorb level
  op.temperature = thermal_.temperature();
  op.time_since_full_charge = counters_.time_since_full_charge;
  aging_.step(op, dt);

  counters_.time_total += dt;
  if (soc_ < 0.40) counters_.time_below_40 += dt;
  return result;
}

StepResult Battery::step(Amperes requested, Seconds dt) {
  BAAT_OBS_TIMED("battery_step");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  const double soc_before = soc_;
  StepResult result;
  // An open cell can neither source nor sink current; it still tracks
  // time, temperature relaxation and calendar effects below.
  Amperes actual = open_ ? Amperes{0.0} : requested;
  if (open_ && requested.value() > 0.0) result.hit_cutoff = true;

  if (actual.value() > 0.0) {
    // ---- discharge ----
    const Amperes cap = max_discharge_current();
    if (actual > cap) {
      actual = cap;
      result.hit_cutoff = true;
    }
    if (actual.value() > 0.0) {
      // Peukert-corrected SoC drain, then clamp so SoC cannot go negative.
      const double c_eff =
          effective_capacity(chem_, actual).value() * aging_.capacity_fraction();
      const double dq = actual.value() * dt.value() / 3600.0;
      double dsoc = dq / c_eff;
      if (dsoc > soc_) {
        const double scale = soc_ / dsoc;
        actual *= scale;
        dsoc = soc_;
        result.hit_cutoff = true;
      }
      soc_ -= dsoc;
      account_discharge(actual, dt, soc_before);
      counters_.min_soc_since_full = std::min(counters_.min_soc_since_full, soc_);
    }
  } else if (actual.value() < 0.0) {
    // ---- charge ----
    const Amperes accept = max_charge_current();
    if (-actual > accept) actual = -accept;
    const double cap = usable_capacity().value();
    if (cap <= 0.0) actual = Amperes{0.0};  // zero capacity accepts nothing
    if (actual.value() < 0.0) {
      const double eta = coulombic_efficiency(chem_, soc_) * aging_.coulombic_derating();
      const double dq = std::fabs(actual.value()) * dt.value() / 3600.0;
      double dsoc = eta * dq / cap;
      if (soc_ + dsoc > 1.0) {
        const double scale = (1.0 - soc_) / dsoc;
        actual *= scale;
        dsoc = 1.0 - soc_;
      }
      soc_ += dsoc;
      account_charge(actual, dt);
    }
  }

  // ---- self-discharge (standing loss, temperature-accelerated) ----
  const double sd_rate =
      chem_.self_discharge_per_month / (30.0 * 86400.0) *
      arrhenius_factor(thermal_.temperature());
  soc_ = std::max(0.0, soc_ - sd_rate * dt.value());

  result.actual_current = actual;
  result.terminal_voltage = terminal_voltage(actual);

  // ---- thermal ----
  const double r = internal_resistance_ohms();
  const Watts loss{actual.value() * actual.value() * r};
  const double temp_before = thermal_.temperature().value();
  thermal_.step(loss, dt);
  const double dtemp_per_h =
      std::fabs(thermal_.temperature().value() - temp_before) / dt.value() * 3600.0;
  last_temp_c_ = thermal_.temperature().value();

  // ---- full-charge detection (before aging sees time_since_full_charge) ----
  const bool was_full = soc_before >= kFullChargeSoc;
  const bool is_full = soc_ >= kFullChargeSoc;
  if (is_full && !was_full) {
    result.fully_charged = true;
    ++counters_.full_charge_events;
    counters_.time_since_full_charge = Seconds{0.0};
    counters_.min_soc_since_full = soc_;
    aging_.on_full_charge();
  } else {
    counters_.time_since_full_charge += dt;
  }

  // ---- aging ----
  OperatingPoint op;
  op.soc = soc_;
  op.current = actual;
  op.terminal_voltage = result.terminal_voltage;
  op.temperature = thermal_.temperature();
  op.time_since_full_charge = counters_.time_since_full_charge;
  op.temperature_rate_k_per_h = dtemp_per_h;
  aging_.step(op, dt);

  // ---- time counters ----
  counters_.time_total += dt;
  if (soc_ < 0.40) counters_.time_below_40 += dt;

  BAAT_INVARIANT(soc_ >= 0.0 && soc_ <= 1.0, "soc escaped [0, 1]");
  return result;
}

}  // namespace baat::battery
