#include "battery/battery.hpp"

#include "util/require.hpp"

namespace baat::battery {

Battery::Battery(LeadAcidParams chem, AgingParams aging, ThermalParams thermal,
                 double capacity_scale, double resistance_scale, double initial_soc,
                 MathMode math)
    : owned_(std::make_unique<FleetState>(chem, aging, thermal, math)) {
  fleet_ = owned_.get();
  cell_ = fleet_->add_cell(capacity_scale, resistance_scale, initial_soc);
}

Battery::Battery(FleetState& fleet, std::size_t cell) : fleet_(&fleet), cell_(cell) {
  BAAT_REQUIRE(cell < fleet.size(), "cell index out of range");
}

Battery::Battery(const Battery& other)
    : owned_(std::make_unique<FleetState>(other.fleet_->clone_cell(other.cell_))) {
  fleet_ = owned_.get();
  cell_ = 0;
}

Battery::Battery(Battery&& other) noexcept
    : fleet_(other.fleet_), cell_(other.cell_), owned_(std::move(other.owned_)) {
  other.fleet_ = nullptr;
  other.cell_ = 0;
}

Battery& Battery::operator=(const Battery& other) {
  if (this == &other) return *this;
  if (fleet_ != nullptr) {
    // Deep copy into our slot — bound views propagate the new state to the
    // fleet, standalones overwrite their private cell.
    fleet_->copy_cell_from(cell_, *other.fleet_, other.cell_);
  } else {
    // Moved-from shell: become a fresh standalone clone.
    owned_ = std::make_unique<FleetState>(other.fleet_->clone_cell(other.cell_));
    fleet_ = owned_.get();
    cell_ = 0;
  }
  return *this;
}

Battery& Battery::operator=(Battery&& other) noexcept {
  if (this == &other) return *this;
  if (fleet_ != nullptr && owned_ == nullptr) {
    // Bound view: assignment replaces the unit in place so the fleet slot
    // (and every other view of it) sees the replacement — this is how the
    // fault injector swaps a degraded unit into a bank.
    fleet_->copy_cell_from(cell_, *other.fleet_, other.cell_);
  } else {
    owned_ = std::move(other.owned_);
    fleet_ = other.fleet_;
    cell_ = other.cell_;
    other.fleet_ = nullptr;
    other.cell_ = 0;
  }
  return *this;
}

}  // namespace baat::battery
