#include "battery/rainflow.hpp"

#include <cmath>

#include "util/require.hpp"

namespace baat::battery {

namespace {

/// Faulted/degraded telemetry legitimately produces SoC estimates a few ULP
/// outside [0, 1] (sensor-noise injection plus coulomb-counting drift).
/// Aborting the whole report over a 1e-12 excursion is wrong; silently
/// accepting an estimator bug that yields 1.3 is worse. Clamp within this
/// tolerance, reject beyond it.
constexpr double kSocTolerance = 1e-9;

/// Compress a series to its turning points (local extrema), dropping flats.
std::vector<double> turning_points(const std::vector<double>& xs) {
  std::vector<double> tp;
  for (double x : xs) {
    BAAT_REQUIRE(x >= -kSocTolerance && x <= 1.0 + kSocTolerance,
                 "SoC values must be in [0, 1]");
    x = std::min(1.0, std::max(0.0, x));
    if (!tp.empty() && std::fabs(x - tp.back()) < 1e-12) continue;
    if (tp.size() >= 2) {
      const double a = tp[tp.size() - 2];
      const double b = tp.back();
      // b is not a turning point if the series keeps moving the same way.
      if ((b - a > 0.0 && x > b) || (b - a < 0.0 && x < b)) {
        tp.back() = x;
        continue;
      }
    }
    tp.push_back(x);
  }
  return tp;
}

}  // namespace

std::vector<RainflowCycle> rainflow_count(const std::vector<double>& soc_series) {
  const std::vector<double> tp = turning_points(soc_series);
  std::vector<RainflowCycle> cycles;
  if (tp.size() < 2) return cycles;

  // ASTM E1049-85 §5.4.4 rainflow counting. Ranges that include the series'
  // starting point count as half cycles; interior ranges count as full
  // cycles; the residue counts as half cycles.
  std::vector<double> stack;
  for (double point : tp) {
    stack.push_back(point);
    while (stack.size() >= 3) {
      const double x = std::fabs(stack[stack.size() - 1] - stack[stack.size() - 2]);
      const double y = std::fabs(stack[stack.size() - 2] - stack[stack.size() - 3]);
      if (x < y) break;
      const double hi = stack[stack.size() - 2];
      const double lo = stack[stack.size() - 3];
      if (stack.size() == 3) {
        // Y contains the starting point: half cycle, drop the start.
        if (y > 1e-12) cycles.push_back(RainflowCycle{y, 0.5, (hi + lo) / 2.0});
        stack.erase(stack.begin());
      } else {
        // Interior range: one full cycle, remove its two points.
        if (y > 1e-12) cycles.push_back(RainflowCycle{y, 1.0, (hi + lo) / 2.0});
        stack.erase(stack.end() - 3, stack.end() - 1);
      }
    }
  }
  // Residue: successive pairs count as half cycles.
  for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
    const double depth = std::fabs(stack[i + 1] - stack[i]);
    if (depth < 1e-12) continue;
    cycles.push_back(RainflowCycle{depth, 0.5, (stack[i + 1] + stack[i]) / 2.0});
  }
  return cycles;
}

double equivalent_full_cycles(const std::vector<RainflowCycle>& spectrum) {
  double efc = 0.0;
  for (const RainflowCycle& c : spectrum) efc += c.count * c.depth;
  return efc;
}

double rainflow_damage(const std::vector<RainflowCycle>& spectrum,
                       const CycleLifeCurve& curve) {
  double damage = 0.0;
  for (const RainflowCycle& c : spectrum) {
    if (c.depth <= 0.0) continue;
    damage += c.count / curve.cycles(std::min(1.0, c.depth));
  }
  return damage;
}

}  // namespace baat::battery
