#pragma once

// Fault-injection plans — the scenario-level description of everything that
// can go wrong in the field and that the six-month prototype actually saw:
// drifting NI sensors, PV feed dropouts, weak and open battery cells, and
// glitching power meters (§II-B, §V-A). A FaultPlan is pure configuration:
// parsed from the `baatsim --faults` spec (or built programmatically),
// validated eagerly, and interpreted at runtime by fault::FaultInjector.
//
// Spec grammar (comma-separated list of faults, fields colon-separated):
//
//   sensor_noise:<channel>:<sigma>      extra zero-mean Gaussian noise
//   sensor_bias:<channel>:<bias>        constant additive offset
//   sensor_stuck:p=<prob>[:hold=<min>]  reading freezes for `hold` minutes
//   probe_stale:p=<prob>                read returns the previous sample
//                                       (timestamp included — staleness is
//                                       detectable downstream)
//   pv_dropout:day=<d>:hours=<h>[:start=<hour>]   PV feed drops to zero
//   pv_derate:factor=<f>[:day=<d>]      PV output scaled by f (all days when
//                                       day is omitted)
//   cell_weak:bank=<i>:capacity=<f>[:resistance=<f>]  manufacturing outlier
//   cell_open:bank=<i>[:day=<d>]        open-cell failure from day d on
//   meter_glitch:p=<prob>[:scale=<s>]   controller power readings corrupted
//   nan_poison:bank=<i>[:day=<d>]       battery state poisoned with NaN at
//                                       the start of day d — a watchdog /
//                                       flight-recorder drill, not a field
//                                       fault
//
// Channels: voltage | current | temp | soc (soc = current-channel noise in
// fractions of C20 capacity, which corrupts coulomb-counted SoC estimates).
//
// Everything is validated here with readable errors — a malformed key, an
// out-of-range probability, a duplicate dropout window or an empty spec is
// a PreconditionError, never UB.

#include <cstdint>
#include <string>
#include <vector>

namespace baat::fault {

enum class FaultKind {
  SensorNoise,
  SensorBias,
  SensorStuck,
  ProbeStale,
  PvDropout,
  PvDerate,
  CellWeak,
  CellOpen,
  MeterGlitch,
  NanPoison,
};

/// Stable snake_case name (matches the spec keyword and the
/// `fault.injected{...}` counter label).
[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

enum class SensorChannel { Voltage, Current, Temperature, Soc };

[[nodiscard]] std::string_view sensor_channel_name(SensorChannel channel);

/// One parsed fault. Only the fields relevant to `kind` are meaningful.
struct FaultSpec {
  FaultKind kind{};
  SensorChannel channel = SensorChannel::Voltage;  ///< sensor_noise/bias
  double magnitude = 0.0;   ///< sigma, bias, derate factor or capacity factor
  double resistance = 1.0;  ///< cell_weak resistance multiplier
  double probability = 0.0; ///< sensor_stuck / probe_stale / meter_glitch
  double hold_minutes = 10.0;  ///< sensor_stuck freeze duration
  double glitch_scale = 0.5;   ///< meter_glitch relative amplitude
  long day = -1;            ///< pv_dropout / cell_open day (-1 = every day /
                            ///< day 0 for cell_open, all days for pv_derate)
  double start_hour = 12.0; ///< pv_dropout window start (hour of day)
  double hours = 0.0;       ///< pv_dropout window length
  std::size_t bank = 0;     ///< cell_weak / cell_open unit index

  /// Canonical spec-string form (round-trips through parse_fault_plan).
  [[nodiscard]] std::string to_string() const;
};

/// A validated set of faults. Empty plan = clean run; everything downstream
/// must be byte-identical to a build without the fault layer.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  [[nodiscard]] std::size_t size() const { return faults.size(); }

  /// Canonical comma-joined spec string (for reports and CLI echo).
  [[nodiscard]] std::string to_string() const;
};

/// Parse one fault spec (e.g. "pv_dropout:day=2:hours=4"). Throws
/// util::PreconditionError with a message naming the offending field.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& spec);

/// Parse a comma-separated list of fault specs and cross-validate the plan
/// (e.g. overlapping pv_dropout windows are rejected). Throws
/// util::PreconditionError on any malformed or empty spec.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& specs);

/// Merge `extra` into `plan`, re-running the cross-fault validation.
void append_fault_plan(FaultPlan& plan, const FaultPlan& extra);

}  // namespace baat::fault
