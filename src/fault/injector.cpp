#include "fault/injector.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace baat::fault {

namespace {

/// SplitMix64 finalizer — the stateless mixer behind the hash draws.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t time_key(util::Seconds t) {
  // Millisecond resolution keys every tick the simulator can produce.
  return static_cast<std::uint64_t>(std::llround(t.value() * 1000.0));
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed, std::size_t nodes,
                             std::size_t shard)
    : plan_(std::move(plan)), seed_(seed) {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind == FaultKind::CellWeak || f.kind == FaultKind::CellOpen ||
        f.kind == FaultKind::NanPoison) {
      BAAT_REQUIRE(f.bank < nodes,
                   "fault '" + f.to_string() + "': bank index out of range (" +
                       std::to_string(nodes) + " nodes)");
    }
  }
  util::Rng root = util::Rng::stream(seed, "fault");
  if (shard > 0) {
    // Per-shard fork, keyed on the shard index (not the shard count), so
    // adding shards never perturbs the streams of existing ones — and the
    // stateless hash draws get their own keyspace too. Shard 0 keeps the
    // unsharded seed and stream bit-for-bit.
    const std::string tag = "shard-" + std::to_string(shard);
    root = root.fork(tag);
    seed_ = seed ^ util::fnv1a(tag);
  }
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.emplace_back(root.fork("node-" + std::to_string(i)));
  }
  open_fired_.assign(nodes, false);
  poison_fired_.assign(nodes, false);
  if (!plan_.empty()) {
    obs::Registry& reg = obs::global_registry();
    for (const FaultSpec& f : plan_.faults) {
      auto& slot = counters_[static_cast<std::size_t>(f.kind)];
      if (slot == nullptr) {
        slot = &reg.counter("fault.injected", std::string(fault_kind_name(f.kind)));
      }
    }
  }
}

void FaultInjector::count(FaultKind kind) const {
  obs::Counter* c = counters_[static_cast<std::size_t>(kind)];
  if (c != nullptr) c->inc();
}

double FaultInjector::hash_uniform(std::string_view tag, std::uint64_t a,
                                   std::uint64_t b) const {
  std::uint64_t h = util::fnv1a(tag) ^ mix(seed_);
  h = mix(h ^ a);
  h = mix(h ^ b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjector::apply_bank_faults(std::vector<battery::Battery>& bank,
                                      const battery::BankSpec& spec) {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::CellWeak) continue;
    BAAT_REQUIRE(f.bank < bank.size(), "cell_weak bank index out of range");
    bank[f.bank] = battery::Battery{spec.chemistry, spec.aging, spec.thermal,
                                    f.magnitude, f.resistance, spec.initial_soc};
    count(FaultKind::CellWeak);
    obs::emit(obs::EventKind::FaultInjected, static_cast<int>(f.bank), f.magnitude,
              f.to_string());
  }
}

void FaultInjector::begin_day(long day, std::vector<battery::Battery>& bank) {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind == FaultKind::CellOpen) {
      if (open_fired_[f.bank] || day < f.day) continue;
      BAAT_REQUIRE(f.bank < bank.size(), "cell_open bank index out of range");
      bank[f.bank].fail_open();
      open_fired_[f.bank] = true;
      count(FaultKind::CellOpen);
      obs::emit(obs::EventKind::FaultInjected, static_cast<int>(f.bank),
                static_cast<double>(day), f.to_string());
    } else if (f.kind == FaultKind::NanPoison) {
      // Watchdog drill: corrupt the stored SoC with a NaN. The day-start
      // health sentinel runs right after this hook, so the poison is caught
      // there — producing a readable abort and a flight-recorder bundle —
      // rather than tripping a kernel assertion ticks later.
      if (poison_fired_[f.bank] || day < f.day) continue;
      BAAT_REQUIRE(f.bank < bank.size(), "nan_poison bank index out of range");
      bank[f.bank].debug_set_soc(std::numeric_limits<double>::quiet_NaN());
      poison_fired_[f.bank] = true;
      count(FaultKind::NanPoison);
      obs::emit(obs::EventKind::FaultInjected, static_cast<int>(f.bank),
                static_cast<double>(day), f.to_string());
    }
  }
}

double FaultInjector::solar_scale(long day, util::Seconds time_of_day) {
  double scale = 1.0;
  bool in_dropout = false;
  const double hour = time_of_day.value() / 3600.0;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind == FaultKind::PvDropout) {
      if (f.day == day && hour >= f.start_hour && hour < f.start_hour + f.hours) {
        scale = 0.0;
        in_dropout = true;
      }
    } else if (f.kind == FaultKind::PvDerate) {
      if (f.day < 0 || f.day == day) scale *= f.magnitude;
    }
  }
  if (in_dropout && !dropout_active_) {
    count(FaultKind::PvDropout);
    obs::emit(obs::EventKind::FaultInjected, -1, hour, "pv_dropout window entered");
  }
  dropout_active_ = in_dropout;
  return scale;
}

telemetry::SensorReading FaultInjector::perturb_reading(
    std::size_t node, const telemetry::SensorReading& reading) {
  BAAT_REQUIRE(node < nodes_.size(), "sensor fault node index out of range");
  NodeState& st = nodes_[node];

  // A stuck sensor repeats its frozen sample — timestamps included — until
  // the hold expires; nothing else applies while it holds.
  if (st.stuck_until >= 0.0 && reading.time.value() < st.stuck_until) {
    st.last = st.stuck;
    st.has_last = true;
    return st.stuck;
  }
  st.stuck_until = -1.0;

  telemetry::SensorReading out = reading;
  for (const FaultSpec& f : plan_.faults) {
    switch (f.kind) {
      case FaultKind::SensorBias:
      case FaultKind::SensorNoise: {
        const bool noise = f.kind == FaultKind::SensorNoise;
        const double delta = noise ? st.rng.normal(0.0, f.magnitude) : f.magnitude;
        switch (f.channel) {
          case SensorChannel::Voltage:
            out.voltage = util::Volts{out.voltage.value() + delta};
            break;
          case SensorChannel::Current:
            out.current = util::Amperes{out.current.value() + delta};
            break;
          case SensorChannel::Temperature:
            out.temperature = util::Celsius{out.temperature.value() + delta};
            break;
          case SensorChannel::Soc:
            // SoC corruption enters through the current channel, in
            // fractions of an hour's worth of C20 capacity — this is what
            // skews a coulomb-counting estimator without touching physics.
            out.current = util::Amperes{out.current.value() + delta * 35.0};
            break;
        }
        count(f.kind);
        break;
      }
      case FaultKind::SensorStuck: {
        if (st.rng.bernoulli(f.probability)) {
          st.stuck = out;
          st.stuck_until = reading.time.value() + f.hold_minutes * 60.0;
          count(FaultKind::SensorStuck);
          obs::emit(obs::EventKind::FaultInjected, static_cast<int>(node),
                    f.hold_minutes, "sensor_stuck onset");
        }
        break;
      }
      case FaultKind::ProbeStale: {
        if (st.has_last && st.rng.bernoulli(f.probability)) {
          out = st.last;  // previous sample, previous timestamp
          count(FaultKind::ProbeStale);
        }
        break;
      }
      default:
        break;  // not a sensor fault
    }
  }
  st.last = out;
  st.has_last = true;
  return out;
}

double FaultInjector::meter_scale(int node, util::Seconds now) const {
  double scale = 1.0;
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::MeterGlitch) continue;
    const auto key = static_cast<std::uint64_t>(node + 1);
    if (hash_uniform("meter-hit", key, time_key(now)) < f.probability) {
      // Symmetric multiplicative spike in [1 - s, 1 + s].
      const double u = hash_uniform("meter-amp", key, time_key(now));
      scale *= 1.0 + f.glitch_scale * (2.0 * u - 1.0);
      count(FaultKind::MeterGlitch);
    }
  }
  return scale;
}

bool FaultInjector::probe_is_stale(int index) const {
  for (const FaultSpec& f : plan_.faults) {
    if (f.kind != FaultKind::ProbeStale) continue;
    if (hash_uniform("probe-stale", static_cast<std::uint64_t>(index), 0) <
        f.probability) {
      count(FaultKind::ProbeStale);
      return true;
    }
  }
  return false;
}

void FaultInjector::save_state(snapshot::SnapshotWriter& w) const {
  w.write_u64(nodes_.size());
  for (const NodeState& n : nodes_) {
    n.rng.save_state(w);
    w.write_bool(n.has_last);
    telemetry::save_state(w, n.last);
    w.write_f64(n.stuck_until);
    telemetry::save_state(w, n.stuck);
  }
  w.write_bool_vec(open_fired_);
  w.write_bool_vec(poison_fired_);
  w.write_bool(dropout_active_);
}

void FaultInjector::load_state(snapshot::SnapshotReader& r) {
  const auto n = static_cast<std::size_t>(r.read_u64());
  if (n != nodes_.size()) {
    throw snapshot::SnapshotError("fault-injector snapshot covers " + std::to_string(n) +
                                  " nodes but the scenario builds " +
                                  std::to_string(nodes_.size()));
  }
  for (NodeState& node : nodes_) {
    node.rng.load_state(r);
    node.has_last = r.read_bool();
    telemetry::load_state(r, node.last);
    node.stuck_until = r.read_f64();
    telemetry::load_state(r, node.stuck);
  }
  const std::vector<bool> fired = r.read_bool_vec();
  if (fired.size() != open_fired_.size()) {
    throw snapshot::SnapshotError("fault-injector snapshot cell_open latches disagree "
                                  "with the plan's bank size");
  }
  open_fired_ = fired;
  const std::vector<bool> poisoned = r.read_bool_vec();
  if (poisoned.size() != poison_fired_.size()) {
    throw snapshot::SnapshotError("fault-injector snapshot nan_poison latches disagree "
                                  "with the plan's bank size");
  }
  poison_fired_ = poisoned;
  dropout_active_ = r.read_bool();
}

}  // namespace baat::fault
