#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace baat::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos == std::string::npos ? std::string::npos
                                                           : pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

double parse_number(const std::string& spec, const std::string& field,
                    const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size() || !std::isfinite(v)) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw util::PreconditionError("fault spec '" + spec + "': " + field +
                                  " needs a finite number, got '" + value + "'");
  }
}

long parse_day(const std::string& spec, const std::string& value) {
  const double v = parse_number(spec, "day", value);
  BAAT_REQUIRE(v >= 0.0 && v == std::floor(v) && v <= 1e6,
               "fault spec '" + spec + "': day must be a non-negative integer");
  return static_cast<long>(v);
}

SensorChannel parse_channel(const std::string& spec, const std::string& name) {
  if (name == "voltage") return SensorChannel::Voltage;
  if (name == "current") return SensorChannel::Current;
  if (name == "temp" || name == "temperature") return SensorChannel::Temperature;
  if (name == "soc") return SensorChannel::Soc;
  throw util::PreconditionError("fault spec '" + spec + "': unknown channel '" + name +
                                "' (voltage|current|temp|soc)");
}

/// Key=value fields after the keyword (and any positional fields).
struct Fields {
  const std::string& spec;
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] const std::string& require(const std::string& key) const {
    const std::string* v = find(key);
    if (v == nullptr) {
      throw util::PreconditionError("fault spec '" + spec + "': missing required field '" +
                                    key + "='");
    }
    return *v;
  }

  void reject_unknown(std::initializer_list<const char*> known) const {
    for (const auto& [k, v] : kv) {
      const bool ok = std::any_of(known.begin(), known.end(),
                                  [&k](const char* name) { return k == name; });
      if (!ok) {
        throw util::PreconditionError("fault spec '" + spec + "': unknown field '" + k +
                                      "'");
      }
    }
  }
};

Fields key_values(const std::string& spec, const std::vector<std::string>& parts,
                  std::size_t from) {
  Fields f{spec, {}};
  for (std::size_t i = from; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 > parts[i].size()) {
      throw util::PreconditionError("fault spec '" + spec + "': expected key=value, got '" +
                                    parts[i] + "'");
    }
    const std::string key = parts[i].substr(0, eq);
    if (f.find(key) != nullptr) {
      throw util::PreconditionError("fault spec '" + spec + "': duplicate field '" + key +
                                    "'");
    }
    f.kv.emplace_back(key, parts[i].substr(eq + 1));
  }
  return f;
}

double parse_probability(const Fields& f) {
  const double p = parse_number(f.spec, "p", f.require("p"));
  BAAT_REQUIRE(p >= 0.0 && p <= 1.0,
               "fault spec '" + f.spec + "': p must be in [0, 1]");
  return p;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::SensorNoise: return "sensor_noise";
    case FaultKind::SensorBias: return "sensor_bias";
    case FaultKind::SensorStuck: return "sensor_stuck";
    case FaultKind::ProbeStale: return "probe_stale";
    case FaultKind::PvDropout: return "pv_dropout";
    case FaultKind::PvDerate: return "pv_derate";
    case FaultKind::CellWeak: return "cell_weak";
    case FaultKind::CellOpen: return "cell_open";
    case FaultKind::MeterGlitch: return "meter_glitch";
    case FaultKind::NanPoison: return "nan_poison";
  }
  return "unknown";
}

std::string_view sensor_channel_name(SensorChannel channel) {
  switch (channel) {
    case SensorChannel::Voltage: return "voltage";
    case SensorChannel::Current: return "current";
    case SensorChannel::Temperature: return "temp";
    case SensorChannel::Soc: return "soc";
  }
  return "unknown";
}

FaultSpec parse_fault_spec(const std::string& spec) {
  BAAT_REQUIRE(!spec.empty(), "fault spec must not be empty");
  const std::vector<std::string> parts = split(spec, ':');
  const std::string& kind = parts.front();
  FaultSpec f;

  if (kind == "sensor_noise" || kind == "sensor_bias") {
    f.kind = kind == "sensor_noise" ? FaultKind::SensorNoise : FaultKind::SensorBias;
    if (parts.size() != 3) {
      throw util::PreconditionError("fault spec '" + spec + "': expected " + kind +
                                    ":<channel>:<value>");
    }
    f.channel = parse_channel(spec, parts[1]);
    f.magnitude = parse_number(spec, "value", parts[2]);
    if (f.kind == FaultKind::SensorNoise) {
      BAAT_REQUIRE(f.magnitude >= 0.0 && f.magnitude <= 100.0,
                   "fault spec '" + spec + "': noise sigma must be in [0, 100]");
    } else {
      BAAT_REQUIRE(std::fabs(f.magnitude) <= 1000.0,
                   "fault spec '" + spec + "': bias magnitude out of range");
    }
  } else if (kind == "sensor_stuck") {
    f.kind = FaultKind::SensorStuck;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"p", "hold"});
    f.probability = parse_probability(kv);
    if (const std::string* hold = kv.find("hold")) {
      f.hold_minutes = parse_number(spec, "hold", *hold);
      BAAT_REQUIRE(f.hold_minutes > 0.0 && f.hold_minutes <= 24.0 * 60.0,
                   "fault spec '" + spec + "': hold must be in (0, 1440] minutes");
    }
  } else if (kind == "probe_stale") {
    f.kind = FaultKind::ProbeStale;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"p"});
    f.probability = parse_probability(kv);
  } else if (kind == "pv_dropout") {
    f.kind = FaultKind::PvDropout;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"day", "hours", "start"});
    f.day = parse_day(spec, kv.require("day"));
    f.hours = parse_number(spec, "hours", kv.require("hours"));
    BAAT_REQUIRE(f.hours > 0.0 && f.hours <= 24.0,
                 "fault spec '" + spec + "': hours must be in (0, 24]");
    if (const std::string* start = kv.find("start")) {
      f.start_hour = parse_number(spec, "start", *start);
      BAAT_REQUIRE(f.start_hour >= 0.0 && f.start_hour < 24.0,
                   "fault spec '" + spec + "': start must be in [0, 24)");
    }
  } else if (kind == "pv_derate") {
    f.kind = FaultKind::PvDerate;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"factor", "day"});
    f.magnitude = parse_number(spec, "factor", kv.require("factor"));
    BAAT_REQUIRE(f.magnitude >= 0.0 && f.magnitude <= 1.0,
                 "fault spec '" + spec + "': factor must be in [0, 1]");
    if (const std::string* day = kv.find("day")) f.day = parse_day(spec, *day);
  } else if (kind == "cell_weak") {
    f.kind = FaultKind::CellWeak;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"bank", "capacity", "resistance"});
    const double bank = parse_number(spec, "bank", kv.require("bank"));
    BAAT_REQUIRE(bank >= 0.0 && bank == std::floor(bank) && bank < 4096.0,
                 "fault spec '" + spec + "': bank must be a small non-negative integer");
    f.bank = static_cast<std::size_t>(bank);
    f.magnitude = parse_number(spec, "capacity", kv.require("capacity"));
    BAAT_REQUIRE(f.magnitude > 0.0 && f.magnitude <= 1.0,
                 "fault spec '" + spec + "': capacity factor must be in (0, 1]");
    if (const std::string* r = kv.find("resistance")) {
      f.resistance = parse_number(spec, "resistance", *r);
      BAAT_REQUIRE(f.resistance >= 1.0 && f.resistance <= 100.0,
                   "fault spec '" + spec + "': resistance factor must be in [1, 100]");
    }
  } else if (kind == "cell_open") {
    f.kind = FaultKind::CellOpen;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"bank", "day"});
    const double bank = parse_number(spec, "bank", kv.require("bank"));
    BAAT_REQUIRE(bank >= 0.0 && bank == std::floor(bank) && bank < 4096.0,
                 "fault spec '" + spec + "': bank must be a small non-negative integer");
    f.bank = static_cast<std::size_t>(bank);
    f.day = 0;
    if (const std::string* day = kv.find("day")) f.day = parse_day(spec, *day);
  } else if (kind == "nan_poison") {
    f.kind = FaultKind::NanPoison;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"bank", "day"});
    const double bank = parse_number(spec, "bank", kv.require("bank"));
    BAAT_REQUIRE(bank >= 0.0 && bank == std::floor(bank) && bank < 4096.0,
                 "fault spec '" + spec + "': bank must be a small non-negative integer");
    f.bank = static_cast<std::size_t>(bank);
    f.day = 0;
    if (const std::string* day = kv.find("day")) f.day = parse_day(spec, *day);
  } else if (kind == "meter_glitch") {
    f.kind = FaultKind::MeterGlitch;
    const Fields kv = key_values(spec, parts, 1);
    kv.reject_unknown({"p", "scale"});
    f.probability = parse_probability(kv);
    if (const std::string* scale = kv.find("scale")) {
      f.glitch_scale = parse_number(spec, "scale", *scale);
      BAAT_REQUIRE(f.glitch_scale > 0.0 && f.glitch_scale <= 1.0,
                   "fault spec '" + spec + "': scale must be in (0, 1]");
    }
  } else {
    throw util::PreconditionError(
        "unknown fault kind '" + kind +
        "' (sensor_noise|sensor_bias|sensor_stuck|probe_stale|pv_dropout|pv_derate|"
        "cell_weak|cell_open|meter_glitch|nan_poison)");
  }
  return f;
}

namespace {

void validate_plan(const FaultPlan& plan) {
  // Duplicate / overlapping pv_dropout windows on the same day are almost
  // certainly a typo in a sweep spec; reject them loudly.
  for (std::size_t a = 0; a < plan.faults.size(); ++a) {
    const FaultSpec& fa = plan.faults[a];
    if (fa.kind != FaultKind::PvDropout) continue;
    for (std::size_t b = a + 1; b < plan.faults.size(); ++b) {
      const FaultSpec& fb = plan.faults[b];
      if (fb.kind != FaultKind::PvDropout || fa.day != fb.day) continue;
      const double a_end = fa.start_hour + fa.hours;
      const double b_end = fb.start_hour + fb.hours;
      if (fa.start_hour < b_end && fb.start_hour < a_end) {
        throw util::PreconditionError(
            "fault plan: overlapping pv_dropout windows on day " +
            std::to_string(fa.day) + " ('" + fa.to_string() + "' and '" + fb.to_string() +
            "')");
      }
    }
  }
  // One battery cannot both be weak and fail open ambiguously twice.
  for (std::size_t a = 0; a < plan.faults.size(); ++a) {
    const FaultSpec& fa = plan.faults[a];
    if (fa.kind != FaultKind::CellOpen && fa.kind != FaultKind::CellWeak &&
        fa.kind != FaultKind::NanPoison) {
      continue;
    }
    for (std::size_t b = a + 1; b < plan.faults.size(); ++b) {
      const FaultSpec& fb = plan.faults[b];
      if (fb.kind == fa.kind && fb.bank == fa.bank) {
        throw util::PreconditionError("fault plan: duplicate " +
                                      std::string(fault_kind_name(fa.kind)) +
                                      " for bank " + std::to_string(fa.bank));
      }
    }
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& specs) {
  BAAT_REQUIRE(!specs.empty(), "--faults needs at least one fault spec");
  FaultPlan plan;
  for (const std::string& item : split(specs, ',')) {
    BAAT_REQUIRE(!item.empty(), "fault list contains an empty spec (stray comma?)");
    plan.faults.push_back(parse_fault_spec(item));
  }
  validate_plan(plan);
  return plan;
}

void append_fault_plan(FaultPlan& plan, const FaultPlan& extra) {
  // Validate on a copy: a rejected merge must leave `plan` untouched.
  FaultPlan merged = plan;
  merged.faults.insert(merged.faults.end(), extra.faults.begin(),
                       extra.faults.end());
  validate_plan(merged);
  plan = std::move(merged);
}

namespace {

std::string trimmed_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  switch (kind) {
    case FaultKind::SensorNoise:
    case FaultKind::SensorBias:
      os << ':' << sensor_channel_name(channel) << ':' << trimmed_number(magnitude);
      break;
    case FaultKind::SensorStuck:
      os << ":p=" << trimmed_number(probability) << ":hold=" << trimmed_number(hold_minutes);
      break;
    case FaultKind::ProbeStale:
      os << ":p=" << trimmed_number(probability);
      break;
    case FaultKind::PvDropout:
      os << ":day=" << day << ":hours=" << trimmed_number(hours)
         << ":start=" << trimmed_number(start_hour);
      break;
    case FaultKind::PvDerate:
      os << ":factor=" << trimmed_number(magnitude);
      if (day >= 0) os << ":day=" << day;
      break;
    case FaultKind::CellWeak:
      os << ":bank=" << bank << ":capacity=" << trimmed_number(magnitude);
      if (resistance != 1.0) os << ":resistance=" << trimmed_number(resistance);
      break;
    case FaultKind::CellOpen:
      os << ":bank=" << bank << ":day=" << day;
      break;
    case FaultKind::MeterGlitch:
      os << ":p=" << trimmed_number(probability)
         << ":scale=" << trimmed_number(glitch_scale);
      break;
    case FaultKind::NanPoison:
      os << ":bank=" << bank << ":day=" << day;
      break;
  }
  return os.str();
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultSpec& f : faults) {
    if (!out.empty()) out += ',';
    out += f.to_string();
  }
  return out;
}

}  // namespace baat::fault
