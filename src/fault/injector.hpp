#pragma once

// Runtime interpreter of a FaultPlan — the piece that actually corrupts
// sensor readings, drops the PV feed, weakens battery cells and glitches
// the controller's power meters. One injector per Cluster, seeded from the
// experiment seed, so a faulted run is as reproducible as a clean one and
// sweep jobs (which each own their Cluster) stay byte-identical at any
// --jobs count.
//
// Determinism rules:
//  * Faults applied from the deterministic per-tick telemetry loop (noise,
//    bias, stuck, stale) may keep per-node mutable state and draw from
//    per-node forked Rng streams — the loop visits nodes in a fixed order.
//  * Faults evaluated from paths whose call count per tick is not fixed
//    (meter glitches inside build_context, probe staleness) use stateless
//    hash draws keyed on (seed, tag, node, time), so re-evaluating at the
//    same instant always agrees.

#include <cstdint>
#include <memory>
#include <vector>

#include "battery/bank.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "telemetry/sensor.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace baat::fault {

class FaultInjector {
 public:
  /// Validates the plan against the node count (e.g. cell_weak bank index
  /// in range). `seed` is the experiment seed the clean run already uses.
  /// `shard` forks the RNG root and the stateless-draw key per shard so a
  /// sharded datacenter gets independent fault streams on every shard;
  /// shard 0 is bit-identical to the historical unsharded injector.
  FaultInjector(FaultPlan plan, std::uint64_t seed, std::size_t nodes,
                std::size_t shard = 0);

  [[nodiscard]] bool active() const { return !plan_.empty(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Construction-time bank faults: replace each cell_weak unit with a
  /// manufacturing outlier built at the spec's capacity/resistance scales.
  /// Units without a fault are left untouched (their RNG draws are already
  /// fixed by the clean bank construction).
  void apply_bank_faults(std::vector<battery::Battery>& bank,
                         const battery::BankSpec& spec);

  /// Day boundary: fire cell_open failures whose day has arrived.
  void begin_day(long day, std::vector<battery::Battery>& bank);

  /// Physical PV availability factor in [0, 1] for this day and time-of-day
  /// (pv_dropout windows and pv_derate). Call once per tick.
  [[nodiscard]] double solar_scale(long day, util::Seconds time_of_day);

  /// Corrupt one sensor reading (bias, extra noise, stuck, stale). Stale and
  /// stuck readings keep their original timestamps, so staleness stays
  /// detectable downstream.
  [[nodiscard]] telemetry::SensorReading perturb_reading(
      std::size_t node, const telemetry::SensorReading& reading);

  /// Controller-side meter glitch: multiplicative factor on a power reading
  /// taken at `now` (node = -1 for the plant-level solar meter). Stateless
  /// in (seed, node, now); safe to call any number of times per tick.
  [[nodiscard]] double meter_scale(int node, util::Seconds now) const;

  /// Whether the `index`-th offline capacity probe returns the previous
  /// (stale) measurement instead of a fresh one.
  [[nodiscard]] bool probe_is_stale(int index) const;

  /// Checkpoint support: per-node forked RNG positions, stuck/last reading
  /// slots, the cell_open latches and the dropout latch. The stateless hash
  /// draws need nothing — they are pure in (seed, tag, node, time).
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  struct NodeState {
    util::Rng rng;
    bool has_last = false;
    telemetry::SensorReading last{};   ///< previous delivered reading
    double stuck_until = -1.0;         ///< absolute seconds, exclusive
    telemetry::SensorReading stuck{};  ///< frozen reading while stuck
    explicit NodeState(util::Rng r) : rng(r) {}
  };

  void count(FaultKind kind) const;
  [[nodiscard]] double hash_uniform(std::string_view tag, std::uint64_t a,
                                    std::uint64_t b) const;

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  std::vector<NodeState> nodes_;
  std::vector<bool> open_fired_;       ///< per-bank cell_open already applied
  std::vector<bool> poison_fired_;     ///< per-bank nan_poison already applied
  bool dropout_active_ = false;        ///< inside a pv_dropout window (latch)
  /// Injection counters, one per fault kind present in the plan. Registered
  /// only when the plan is non-empty — a clean run must not grow the metrics
  /// export by a single row.
  obs::Counter* counters_[10] = {};
};

}  // namespace baat::fault
