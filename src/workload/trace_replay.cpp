#include "workload/trace_replay.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace baat::workload {

UtilizationTrace::UtilizationTrace(util::Seconds sample_period,
                                   std::vector<double> samples)
    : period_(sample_period), samples_(std::move(samples)) {
  BAAT_REQUIRE(period_.value() > 0.0, "sample period must be positive");
  BAAT_REQUIRE(!samples_.empty(), "trace must be non-empty");
  for (double s : samples_) {
    BAAT_REQUIRE(s >= 0.0 && s <= 1.0, "utilization samples must be in [0, 1]");
  }
}

double UtilizationTrace::at(util::Seconds t, bool finite) const {
  BAAT_REQUIRE(t.value() >= 0.0, "t must be >= 0");
  const auto idx = static_cast<std::size_t>(t.value() / period_.value());
  if (idx >= samples_.size()) {
    return finite ? 0.0 : samples_.back();
  }
  return samples_[idx];
}

util::Seconds UtilizationTrace::duration() const {
  return util::Seconds{static_cast<double>(samples_.size()) * period_.value()};
}

double UtilizationTrace::mean() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double UtilizationTrace::peak() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<UtilizationTrace> read_utilization_csv(std::istream& in) {
  std::string line;
  BAAT_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty trace file");

  // Header: "seconds,vm0,vm1,..." — count columns.
  std::size_t columns = 0;
  {
    std::istringstream cells{line};
    std::string cell;
    while (std::getline(cells, cell, ',')) ++columns;
  }
  BAAT_REQUIRE(columns >= 2, "trace needs a time column plus at least one VM");
  const std::size_t vms = columns - 1;

  std::vector<std::vector<double>> series(vms);
  double prev_t = -1.0;
  double period = -1.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream cells{line};
    std::string cell;
    BAAT_REQUIRE(static_cast<bool>(std::getline(cells, cell, ',')),
                 "missing time cell");
    double t = 0.0;
    try {
      t = std::stod(cell);
    } catch (const std::exception&) {
      throw util::PreconditionError("unparseable time cell: " + cell);
    }
    if (prev_t < 0.0) {
      BAAT_REQUIRE(t == 0.0, "trace must start at second 0");
    } else if (period < 0.0) {
      period = t - prev_t;
      BAAT_REQUIRE(period > 0.0, "timestamps must increase");
    } else {
      BAAT_REQUIRE(std::fabs((t - prev_t) - period) < 1e-6,
                   "samples must be evenly spaced");
    }
    prev_t = t;
    for (std::size_t v = 0; v < vms; ++v) {
      BAAT_REQUIRE(static_cast<bool>(std::getline(cells, cell, ',')),
                   "row has fewer columns than the header");
      double u = 0.0;
      try {
        u = std::stod(cell);
      } catch (const std::exception&) {
        throw util::PreconditionError("unparseable utilization cell: " + cell);
      }
      series[v].push_back(u);
    }
  }
  BAAT_REQUIRE(!series[0].empty() && series[0].size() >= 2,
               "trace needs at least two rows");

  std::vector<UtilizationTrace> traces;
  traces.reserve(vms);
  for (auto& s : series) {
    traces.emplace_back(util::Seconds{period}, std::move(s));
  }
  return traces;
}

std::vector<UtilizationTrace> read_utilization_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_utilization_csv(in);
}

void write_utilization_csv(std::ostream& out,
                           const std::vector<UtilizationTrace>& traces) {
  BAAT_REQUIRE(!traces.empty(), "nothing to write");
  const double period = traces[0].sample_period().value();
  const std::size_t rows = traces[0].samples().size();
  for (const auto& t : traces) {
    BAAT_REQUIRE(t.sample_period().value() == period &&
                     t.samples().size() == rows,
                 "all traces must share period and length");
  }
  out << "seconds";
  for (std::size_t v = 0; v < traces.size(); ++v) out << ",vm" << v;
  out << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    out << static_cast<long>(static_cast<double>(r) * period);
    for (const auto& t : traces) out << ',' << t.samples()[r];
    out << '\n';
  }
  if (!out) throw std::runtime_error("utilization trace write failed");
}

}  // namespace baat::workload
