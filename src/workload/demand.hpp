#pragma once

// Request-level demand model (DESIGN.md §5h): millions of simulated users
// mapped deterministically to per-shard daily job schedules.
//
// The six fixed workload generators (workload.hpp) model what one job
// looks like; this layer models *how many* jobs a shard sees and *when*
// they arrive. A `--demand` spec names a user population and a shape —
// diurnal swing around a peak hour, optional flash-crowd events, and a
// regional offset that staggers shards across time zones — and
// `shard_day_jobs` turns that into a concrete job list for one shard-day.
//
// Everything here is a pure function of (spec, shard, shards, day): no
// RNG, no global state. That is what makes sharded runs deterministic
// under any worker count and invariant when shards are re-ordered across
// workers — two calls with the same arguments always produce the same
// schedule, no matter which thread asks.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace baat::workload {

/// One flash-crowd event: demand multiplied by `mult` inside the window
/// [hour, hour + hours) on `day`. Hours are absolute datacenter time, not
/// shard-local time — a flash crowd (breaking news, product launch) hits
/// every region at the same instant.
struct FlashCrowd {
  long day = 0;
  double mult = 2.0;
  double hour = 12.0;
  double hours = 2.0;
};

/// One scheduled job: which generator to instantiate and where in the day
/// window it arrives (fraction of the window, so the sim layer can map it
/// onto its own day start/end without this layer knowing about clocks).
struct DemandJob {
  Kind kind;
  double start_frac = 0.0;
};

/// Parsed `--demand` spec. Default-constructed (users == 0) means "no
/// demand model": the cluster keeps its six fixed default jobs.
struct DemandModel {
  std::uint64_t users = 0;          ///< total simulated users (0 = inactive)
  double requests_per_user = 150.0; ///< requests per user per day
  double peak_hour = 14.0;          ///< diurnal peak, shard-local hours
  double amplitude = 0.6;           ///< diurnal swing in [0, 1]
  double region_spread_hours = 0.0; ///< shards staggered across this many hours
  std::size_t max_jobs = 64;        ///< per-shard-day job cap
  std::vector<FlashCrowd> flashes;

  [[nodiscard]] bool empty() const { return users == 0; }

  /// Canonical spec string; parse_demand_spec(to_string()) round-trips.
  [[nodiscard]] std::string to_string() const;

  /// Relative demand intensity for `shard` of `shards` at `hour` (absolute
  /// datacenter hours in [0, 24)) on `day`. Mean over a day is 1.0 before
  /// flash crowds.
  [[nodiscard]] double intensity(std::size_t shard, std::size_t shards, long day,
                                 double hour) const;

  /// The job schedule for one shard-day: job kinds and fractional start
  /// times in [0, 1) of the day window, arrival-sorted. Empty model yields
  /// an empty schedule (caller keeps its defaults).
  [[nodiscard]] std::vector<DemandJob> shard_day_jobs(std::size_t shard, std::size_t shards,
                                                      long day) const;
};

/// Parses a `--demand` spec, e.g.
///   "users=2000000,requests=200,peak=14,amplitude=0.7,spread=8,
///    flash:day=3:mult=5,flash:day=10:mult=3:hour=20:hours=1"
/// Throws util::PreconditionError on any malformed field, mirroring the
/// `--faults` grammar (fault.hpp).
[[nodiscard]] DemandModel parse_demand_spec(const std::string& spec);

}  // namespace baat::workload
