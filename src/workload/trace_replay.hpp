#pragma once

// Utilization trace replay. §IV-B.2a builds on "detailed and accurate
// workload power profiling"; a downstream user will have recorded CPU
// traces rather than our synthetic shapes. This reads a one-column-per-VM
// CSV of utilization samples and exposes them through the same
// `utilization(t)` interface the synthetic generator provides, so recorded
// profiles can drive placement studies.

#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace baat::workload {

/// One VM's recorded utilization series at a fixed sample period.
class UtilizationTrace {
 public:
  UtilizationTrace(util::Seconds sample_period, std::vector<double> samples);

  /// Utilization at `t` since trace start, zero-order hold; clamps past the
  /// end to the final sample (services) unless `finite` — then 0.
  [[nodiscard]] double at(util::Seconds t, bool finite = true) const;

  [[nodiscard]] util::Seconds duration() const;
  [[nodiscard]] util::Seconds sample_period() const { return period_; }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double peak() const;

 private:
  util::Seconds period_;
  std::vector<double> samples_;
};

/// Read a multi-column trace CSV: header "seconds,vm0,vm1,..." then rows of
/// evenly spaced samples starting at 0. Returns one trace per VM column.
std::vector<UtilizationTrace> read_utilization_csv(std::istream& in);
std::vector<UtilizationTrace> read_utilization_csv(const std::string& path);

/// Write traces in the same format (all must share period and length).
void write_utilization_csv(std::ostream& out,
                           const std::vector<UtilizationTrace>& traces);

}  // namespace baat::workload
