#pragma once

// The six datacenter workloads the prototype runs (§V-B): three HiBench
// jobs — Nutch Indexing, K-Means Clustering, Word Count — and three
// CloudSuite applications — Software Testing, Web Serving, Data Analytics.
// We model each as a CPU-utilization shape (its "coarse granularity power
// profile", §IV-B.2a) plus a resource footprint. The shapes are synthetic
// but class-calibrated: together the six cover all four (power, energy)
// demand quadrants of Table 3.

#include <string_view>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace baat::workload {

using util::Seconds;

enum class Kind {
  NutchIndexing,
  KMeansClustering,
  WordCount,
  SoftwareTesting,
  WebServing,
  DataAnalytics,
};

inline constexpr Kind kAllKinds[] = {
    Kind::NutchIndexing,  Kind::KMeansClustering, Kind::WordCount,
    Kind::SoftwareTesting, Kind::WebServing,       Kind::DataAnalytics,
};

[[nodiscard]] std::string_view kind_name(Kind k);

/// Shape classes for the utilization generator.
enum class Shape {
  Steady,     ///< sustained level + noise (SoftwareTesting, DataAnalytics)
  Diurnal,    ///< slow sine over the day + noise (WebServing)
  Bursty,     ///< square-wave iterations (KMeans, NutchIndexing)
  TwoPhase,   ///< map phase then reduce phase (WordCount)
};

struct Spec {
  Kind kind;
  Shape shape;
  double base_util;       ///< plateau / mean utilization of one instance
  double swing;           ///< amplitude of the shape around base_util
  Seconds period;         ///< burst / sine period
  double duty = 0.5;      ///< high fraction of a burst period
  double noise_sigma = 0.03;
  Seconds duration;       ///< batch length; 0 ⇒ long-running service
  double cores = 2.0;     ///< vCPU footprint
  double mem_gb = 4.0;    ///< memory footprint
};

/// Paper-calibrated spec for each workload.
[[nodiscard]] Spec spec_for(Kind k);

/// Instantaneous CPU utilization of one instance at time `t` since its own
/// start, with per-instance `phase` (seconds) decorrelating replicas.
/// Deterministic apart from the additive noise drawn from `rng`.
double utilization(const Spec& spec, Seconds t_since_start, double phase, util::Rng& rng);

/// True if the batch job has finished by `t_since_start` (services never do).
[[nodiscard]] bool finished(const Spec& spec, Seconds t_since_start);

}  // namespace baat::workload
