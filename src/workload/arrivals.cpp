#include "workload/arrivals.hpp"

#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace baat::workload {

std::vector<Arrival> sample_arrivals(const ArrivalPlanParams& params, util::Rng& rng) {
  BAAT_REQUIRE(params.rate_per_hour > 0.0, "arrival rate must be positive");
  BAAT_REQUIRE(params.window.value() > 0.0, "window must be positive");

  std::vector<double> weights = params.kind_weights;
  if (weights.empty()) weights.assign(std::size(kAllKinds), 1.0);
  BAAT_REQUIRE(weights.size() == std::size(kAllKinds),
               "kind_weights must cover all six workloads");
  double total_weight = 0.0;
  for (double w : weights) {
    BAAT_REQUIRE(w >= 0.0, "kind weights must be >= 0");
    total_weight += w;
  }
  BAAT_REQUIRE(total_weight > 0.0, "at least one kind weight must be positive");

  std::vector<Arrival> plan;
  double t = 0.0;
  while (true) {
    // Exponential inter-arrival via inverse CDF.
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    t += -std::log(u) / params.rate_per_hour * 3600.0;
    if (t >= params.window.value()) break;

    double pick = rng.uniform(0.0, total_weight);
    std::size_t k = 0;
    for (; k + 1 < weights.size(); ++k) {
      if (pick < weights[k]) break;
      pick -= weights[k];
    }
    plan.push_back(Arrival{kAllKinds[k], util::Seconds{t}});
  }
  return plan;
}

}  // namespace baat::workload
