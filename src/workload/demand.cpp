#include "workload/demand.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numbers>
#include <sstream>
#include <utility>

#include "util/require.hpp"

namespace baat::workload {

namespace {

/// One job absorbs this many requests per day — the knob that maps a user
/// population onto a sane per-shard job count. 25M requests/job/day keeps
/// the paper's 6-server prototype at ~6 jobs for a million-user shard.
constexpr double kRequestsPerJob = 2.5e7;

/// Intensity is integrated on this grid (15-minute resolution) — fine
/// enough to resolve a 1-hour flash crowd, coarse enough to stay cheap.
constexpr int kGridSteps = 96;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos == std::string::npos ? std::string::npos
                                                           : pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

double parse_number(const std::string& spec, const std::string& field,
                    const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size() || !std::isfinite(v)) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw util::PreconditionError("demand spec '" + spec + "': " + field +
                                  " needs a finite number, got '" + value + "'");
  }
}

/// Key=value fields of one item (same shape as the --faults parser).
struct Fields {
  const std::string& spec;
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] const std::string& require(const std::string& key) const {
    const std::string* v = find(key);
    if (v == nullptr) {
      throw util::PreconditionError("demand spec '" + spec + "': missing required field '" +
                                    key + "='");
    }
    return *v;
  }

  void reject_unknown(std::initializer_list<const char*> known) const {
    for (const auto& [k, v] : kv) {
      const bool ok = std::any_of(known.begin(), known.end(),
                                  [&k](const char* name) { return k == name; });
      if (!ok) {
        throw util::PreconditionError("demand spec '" + spec + "': unknown field '" + k +
                                      "'");
      }
    }
  }
};

Fields key_values(const std::string& spec, const std::vector<std::string>& parts,
                  std::size_t from) {
  Fields f{spec, {}};
  for (std::size_t i = from; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      throw util::PreconditionError("demand spec '" + spec + "': expected key=value, got '" +
                                    parts[i] + "'");
    }
    const std::string key = parts[i].substr(0, eq);
    if (f.find(key) != nullptr) {
      throw util::PreconditionError("demand spec '" + spec + "': duplicate field '" + key +
                                    "'");
    }
    f.kv.emplace_back(key, parts[i].substr(eq + 1));
  }
  return f;
}

FlashCrowd parse_flash(const std::string& item) {
  const std::vector<std::string> parts = split(item, ':');
  const Fields kv = key_values(item, parts, 1);
  kv.reject_unknown({"day", "mult", "hour", "hours"});
  FlashCrowd f;
  const double day = parse_number(item, "day", kv.require("day"));
  BAAT_REQUIRE(day >= 0.0 && day == std::floor(day) && day <= 1e6,
               "demand spec '" + item + "': day must be a non-negative integer");
  f.day = static_cast<long>(day);
  f.mult = parse_number(item, "mult", kv.require("mult"));
  BAAT_REQUIRE(f.mult > 1.0 && f.mult <= 1000.0,
               "demand spec '" + item + "': mult must be in (1, 1000]");
  if (const std::string* hour = kv.find("hour")) {
    f.hour = parse_number(item, "hour", *hour);
    BAAT_REQUIRE(f.hour >= 0.0 && f.hour < 24.0,
                 "demand spec '" + item + "': hour must be in [0, 24)");
  }
  if (const std::string* hours = kv.find("hours")) {
    f.hours = parse_number(item, "hours", *hours);
    BAAT_REQUIRE(f.hours > 0.0 && f.hours <= 24.0,
                 "demand spec '" + item + "': hours must be in (0, 24]");
  }
  return f;
}

std::string trimmed_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

DemandModel parse_demand_spec(const std::string& spec) {
  BAAT_REQUIRE(!spec.empty(), "--demand needs a demand spec");
  DemandModel m;
  bool seen_users = false;
  bool seen_requests = false;
  bool seen_peak = false;
  bool seen_amplitude = false;
  bool seen_spread = false;
  bool seen_cap = false;
  for (const std::string& item : split(spec, ',')) {
    BAAT_REQUIRE(!item.empty(), "demand spec contains an empty item (stray comma?)");
    if (item.rfind("flash", 0) == 0 &&
        (item.size() == 5 || item[5] == ':')) {
      m.flashes.push_back(parse_flash(item));
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw util::PreconditionError("demand spec '" + item + "': expected key=value or "
                                    "flash:day=<d>:mult=<m>[:hour=<h>][:hours=<len>]");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    auto once = [&item](bool& seen, const std::string& k) {
      if (seen) {
        throw util::PreconditionError("demand spec '" + item + "': duplicate field '" + k +
                                      "'");
      }
      seen = true;
    };
    if (key == "users") {
      once(seen_users, key);
      const double users = parse_number(item, "users", value);
      BAAT_REQUIRE(users >= 1.0 && users == std::floor(users) && users <= 1e10,
                   "demand spec '" + item + "': users must be an integer in [1, 1e10]");
      m.users = static_cast<std::uint64_t>(users);
    } else if (key == "requests") {
      once(seen_requests, key);
      m.requests_per_user = parse_number(item, "requests", value);
      BAAT_REQUIRE(m.requests_per_user > 0.0 && m.requests_per_user <= 1e6,
                   "demand spec '" + item + "': requests must be in (0, 1e6]");
    } else if (key == "peak") {
      once(seen_peak, key);
      m.peak_hour = parse_number(item, "peak", value);
      BAAT_REQUIRE(m.peak_hour >= 0.0 && m.peak_hour < 24.0,
                   "demand spec '" + item + "': peak must be in [0, 24)");
    } else if (key == "amplitude") {
      once(seen_amplitude, key);
      m.amplitude = parse_number(item, "amplitude", value);
      BAAT_REQUIRE(m.amplitude >= 0.0 && m.amplitude <= 1.0,
                   "demand spec '" + item + "': amplitude must be in [0, 1]");
    } else if (key == "spread") {
      once(seen_spread, key);
      m.region_spread_hours = parse_number(item, "spread", value);
      BAAT_REQUIRE(m.region_spread_hours >= 0.0 && m.region_spread_hours <= 24.0,
                   "demand spec '" + item + "': spread must be in [0, 24]");
    } else if (key == "cap") {
      once(seen_cap, key);
      const double cap = parse_number(item, "cap", value);
      BAAT_REQUIRE(cap >= 1.0 && cap == std::floor(cap) && cap <= 4096.0,
                   "demand spec '" + item + "': cap must be an integer in [1, 4096]");
      m.max_jobs = static_cast<std::size_t>(cap);
    } else {
      throw util::PreconditionError("demand spec '" + item + "': unknown field '" + key +
                                    "' (users|requests|peak|amplitude|spread|cap|flash:...)");
    }
  }
  if (!seen_users) {
    throw util::PreconditionError("demand spec '" + spec +
                                  "': missing required field 'users='");
  }
  return m;
}

std::string DemandModel::to_string() const {
  if (empty()) return "";
  std::ostringstream os;
  os << "users=" << users << ",requests=" << trimmed_number(requests_per_user)
     << ",peak=" << trimmed_number(peak_hour)
     << ",amplitude=" << trimmed_number(amplitude)
     << ",spread=" << trimmed_number(region_spread_hours) << ",cap=" << max_jobs;
  for (const FlashCrowd& f : flashes) {
    os << ",flash:day=" << f.day << ":mult=" << trimmed_number(f.mult)
       << ":hour=" << trimmed_number(f.hour) << ":hours=" << trimmed_number(f.hours);
  }
  return os.str();
}

double DemandModel::intensity(std::size_t shard, std::size_t shards, long day,
                              double hour) const {
  BAAT_REQUIRE(shards >= 1 && shard < shards, "demand: shard index out of range");
  // Shard-local clock: regions are staggered evenly across the spread.
  const double offset =
      shards > 1 ? region_spread_hours * static_cast<double>(shard) /
                       static_cast<double>(shards)
                 : 0.0;
  const double local = hour + offset;
  // Mean-1 diurnal swing: 1 + a·cos keeps the day's total request count
  // independent of amplitude, so `users` alone sets the job budget.
  double v = 1.0 + amplitude * std::cos(2.0 * std::numbers::pi *
                                        (local - peak_hour) / 24.0);
  // Flash crowds hit at absolute datacenter time, all regions at once.
  for (const FlashCrowd& f : flashes) {
    if (day == f.day && hour >= f.hour && hour < f.hour + f.hours) {
      v *= f.mult;
    }
  }
  return v;
}

std::vector<DemandJob> DemandModel::shard_day_jobs(std::size_t shard, std::size_t shards,
                                                   long day) const {
  if (empty()) return {};
  BAAT_REQUIRE(shards >= 1 && shard < shards, "demand: shard index out of range");

  // Integrate intensity over the day on a fixed grid: the mean sizes the
  // job count, the cumulative sum places arrivals by inverse CDF.
  double cum[kGridSteps + 1];
  cum[0] = 0.0;
  for (int g = 0; g < kGridSteps; ++g) {
    const double hour = 24.0 * (static_cast<double>(g) + 0.5) /
                        static_cast<double>(kGridSteps);
    cum[g + 1] = cum[g] + intensity(shard, shards, day, hour);
  }
  const double total = cum[kGridSteps];
  const double mean = total / static_cast<double>(kGridSteps);

  const double shard_users = static_cast<double>(users) / static_cast<double>(shards);
  const double raw = shard_users * requests_per_user * mean / kRequestsPerJob;
  const double capped = std::min(std::max(std::round(raw), 1.0),
                                 static_cast<double>(max_jobs));
  const std::size_t jobs = static_cast<std::size_t>(capped);

  std::vector<DemandJob> out;
  out.reserve(jobs);
  int g = 0;
  for (std::size_t k = 0; k < jobs; ++k) {
    // Arrival of job k at the quantile (k+0.5)/J of the day's cumulative
    // intensity — jobs bunch where demand peaks. Targets are increasing,
    // so the grid cursor only moves forward.
    const double target =
        total * (static_cast<double>(k) + 0.5) / static_cast<double>(jobs);
    while (g < kGridSteps - 1 && cum[g + 1] < target) ++g;
    const double step = cum[g + 1] - cum[g];
    const double within = step > 0.0 ? (target - cum[g]) / step : 0.5;
    const double frac = (static_cast<double>(g) + within) /
                        static_cast<double>(kGridSteps);
    DemandJob job;
    job.kind = kAllKinds[(static_cast<std::size_t>(day) + 2 * shard + k) %
                         std::size(kAllKinds)];
    job.start_frac = std::min(std::max(frac, 0.0), 0.999);
    out.push_back(job);
  }
  return out;
}

}  // namespace baat::workload
