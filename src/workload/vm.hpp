#pragma once

// Virtual machine abstraction. The prototype hosts every workload in a Xen
// VM so it can be spawned, paused and migrated between server nodes (§V-B).
// We model live migration as a stop-and-copy pause: while migrating, the VM
// does no work and draws no CPU — the "frequent VM stop and restart"
// overhead the paper blames for BAAT-h's performance loss (§VI-F).

#include <cstdint>

#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/workload.hpp"

namespace baat::workload {

using VmId = std::int32_t;

enum class VmState { Running, Migrating, Paused, Finished };

class Vm {
 public:
  /// `phase` decorrelates replicas of the same workload; `noise` is this
  /// VM's private noise stream.
  Vm(VmId id, Kind kind, double phase, util::Rng noise);

  [[nodiscard]] VmId id() const { return id_; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const Spec& spec() const { return spec_; }
  [[nodiscard]] VmState state() const { return state_; }
  [[nodiscard]] double progress_work() const { return progress_; }
  [[nodiscard]] std::int64_t migrations() const { return migrations_; }

  /// CPU utilization demanded right now (0 while migrating/paused/finished).
  double demand_utilization(util::Seconds dt);

  /// Record the utilization the host actually granted (after DVFS slowdown):
  /// progress accumulates `granted_util * freq_factor * dt` core-seconds.
  void grant(double granted_util, double freq_factor, util::Seconds dt);

  /// Begin a live migration taking `pause` seconds of downtime.
  void start_migration(util::Seconds pause);
  [[nodiscard]] bool migratable() const { return state_ == VmState::Running; }

  void pause();
  void resume();

 private:
  VmId id_;
  Kind kind_;
  Spec spec_;
  double phase_;
  util::Rng noise_;
  VmState state_ = VmState::Running;
  util::Seconds runtime_{0.0};          ///< active (running) time accumulated
  util::Seconds migrate_remaining_{0.0};
  double progress_ = 0.0;               ///< core-seconds of useful work done
  std::int64_t migrations_ = 0;
};

}  // namespace baat::workload
