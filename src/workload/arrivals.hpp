#pragma once

// Stochastic job arrival generation. The paper deploys a fixed six-workload
// mix each day; a production scheduler sees Poisson-ish arrivals instead.
// This generator produces reproducible arrival plans (kind + offset) that
// plug into sim::ScenarioConfig::daily_jobs for open-loop experiments.

#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/workload.hpp"

namespace baat::workload {

struct ArrivalPlanParams {
  /// Mean arrivals per hour over the submission window.
  double rate_per_hour = 2.0;
  /// Submission window length (offsets are in [0, window)).
  util::Seconds window{util::hours(8.0)};
  /// Relative mix across the six kinds, in kAllKinds order; need not be
  /// normalized. Default: uniform.
  std::vector<double> kind_weights{};
};

struct Arrival {
  Kind kind{};
  util::Seconds offset{0.0};
};

/// Sample one day's arrival plan: exponential inter-arrival times at the
/// given rate, kinds drawn from the weighted mix. Sorted by offset.
std::vector<Arrival> sample_arrivals(const ArrivalPlanParams& params, util::Rng& rng);

}  // namespace baat::workload
