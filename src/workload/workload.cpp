#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace baat::workload {

std::string_view kind_name(Kind k) {
  switch (k) {
    case Kind::NutchIndexing: return "NutchIndexing";
    case Kind::KMeansClustering: return "KMeansClustering";
    case Kind::WordCount: return "WordCount";
    case Kind::SoftwareTesting: return "SoftwareTesting";
    case Kind::WebServing: return "WebServing";
    case Kind::DataAnalytics: return "DataAnalytics";
  }
  return "?";
}

Spec spec_for(Kind k) {
  using util::hours;
  using util::minutes;
  switch (k) {
    case Kind::NutchIndexing:
      // Search indexing: spiky crawl/index bursts, finishes in ~1.5 h.
      return Spec{k, Shape::Bursty, 0.55, 0.35, minutes(12.0), 0.55, 0.04, hours(1.5), 2.0, 4.0};
    case Kind::KMeansClustering:
      // ML iterations: hard compute bursts with sync gaps, ~2 h batch.
      return Spec{k, Shape::Bursty, 0.65, 0.30, minutes(20.0), 0.65, 0.03, hours(2.0), 5.0, 8.0};
    case Kind::WordCount:
      // MapReduce: busy map phase, lighter reduce, ~1 h batch.
      return Spec{k, Shape::TwoPhase, 0.50, 0.20, minutes(30.0), 0.6, 0.03, hours(1.0), 2.0, 4.0};
    case Kind::SoftwareTesting:
      // "Resource-hungry and time-consuming ... stresses our servers and
      // distributed batteries" (§V-B): near-flat heavy load, long batch.
      return Spec{k, Shape::Steady, 0.85, 0.05, hours(1.0), 0.5, 0.04, hours(6.0), 5.0, 10.0};
    case Kind::WebServing:
      // Long-running service with a daytime swell.
      return Spec{k, Shape::Diurnal, 0.35, 0.20, hours(24.0), 0.5, 0.05, Seconds{0.0}, 3.0, 6.0};
    case Kind::DataAnalytics:
      // Sustained heavy analytics, ~5 h batch.
      return Spec{k, Shape::Steady, 0.75, 0.08, hours(1.0), 0.5, 0.04, hours(5.0), 4.0, 8.0};
  }
  return Spec{k, Shape::Steady, 0.5, 0.1, util::hours(1.0), 0.5, 0.03, util::hours(1.0), 2.0, 4.0};
}

double utilization(const Spec& spec, Seconds t_since_start, double phase, util::Rng& rng) {
  BAAT_REQUIRE(t_since_start.value() >= 0.0, "time since start must be >= 0");
  if (finished(spec, t_since_start)) return 0.0;

  const double t = t_since_start.value() + phase;
  double u = spec.base_util;
  switch (spec.shape) {
    case Shape::Steady:
      break;
    case Shape::Diurnal: {
      const double x = 2.0 * std::numbers::pi * t / spec.period.value();
      u += spec.swing * std::sin(x);
      break;
    }
    case Shape::Bursty: {
      const double frac = std::fmod(t, spec.period.value()) / spec.period.value();
      u += frac < spec.duty ? spec.swing : -spec.swing;
      break;
    }
    case Shape::TwoPhase: {
      // First 70% of the batch is the heavy map phase, the rest the reduce.
      const double progress = spec.duration.value() > 0.0
                                  ? t_since_start.value() / spec.duration.value()
                                  : 0.0;
      u += progress < 0.7 ? spec.swing : -spec.swing;
      break;
    }
  }
  u += spec.noise_sigma * rng.normal();
  return util::clamp01(u);
}

bool finished(const Spec& spec, Seconds t_since_start) {
  return spec.duration.value() > 0.0 && t_since_start.value() >= spec.duration.value();
}

}  // namespace baat::workload
