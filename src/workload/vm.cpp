#include "workload/vm.hpp"

#include "util/require.hpp"

namespace baat::workload {

Vm::Vm(VmId id, Kind kind, double phase, util::Rng noise)
    : id_(id), kind_(kind), spec_(spec_for(kind)), phase_(phase), noise_(noise) {}

double Vm::demand_utilization(util::Seconds dt) {
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  switch (state_) {
    case VmState::Finished:
    case VmState::Paused:
      return 0.0;
    case VmState::Migrating:
      migrate_remaining_ -= dt;
      if (migrate_remaining_.value() <= 0.0) state_ = VmState::Running;
      return 0.0;
    case VmState::Running:
      break;
  }
  if (finished(spec_, runtime_)) {
    state_ = VmState::Finished;
    return 0.0;
  }
  return utilization(spec_, runtime_, phase_, noise_);
}

void Vm::grant(double granted_util, double freq_factor, util::Seconds dt) {
  BAAT_REQUIRE(granted_util >= 0.0 && granted_util <= 1.0, "granted util must be in [0, 1]");
  BAAT_REQUIRE(freq_factor > 0.0 && freq_factor <= 1.0, "freq factor must be in (0, 1]");
  if (state_ != VmState::Running) return;
  // Batch progress advances with delivered cycles; a DVFS-throttled VM also
  // takes proportionally longer wall-clock to finish, which we model by
  // advancing its internal runtime at the delivered rate.
  progress_ += granted_util * spec_.cores * freq_factor * dt.value();
  runtime_ += util::Seconds{dt.value() * freq_factor};
}

void Vm::start_migration(util::Seconds pause) {
  BAAT_REQUIRE(pause.value() > 0.0, "migration pause must be positive");
  BAAT_REQUIRE(state_ == VmState::Running, "only running VMs can migrate");
  state_ = VmState::Migrating;
  migrate_remaining_ = pause;
  ++migrations_;
}

void Vm::pause() {
  if (state_ == VmState::Running) state_ = VmState::Paused;
}

void Vm::resume() {
  if (state_ == VmState::Paused) state_ = VmState::Running;
}

}  // namespace baat::workload
