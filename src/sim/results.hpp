#pragma once

// Result records produced by the cluster simulation, aligned with what the
// paper's figures report.

#include <optional>
#include <vector>

#include "power/meter.hpp"
#include "snapshot/serialize.hpp"
#include "solar/weather.hpp"
#include "telemetry/metrics.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace baat::sim {

using util::AmpereHours;
using util::Seconds;
using util::WattHours;

/// Fig 19's seven SoC bins: [0,15) [15,30) [30,45) [45,60) [60,75) [75,90) [90,100].
util::Histogram make_soc_histogram();

struct NodeDayStats {
  telemetry::AgingMetrics metrics_day{};   ///< metrics over this day only
  telemetry::AgingMetrics metrics_life{};  ///< cumulative at day end
  double soc_min = 1.0;
  double soc_end = 1.0;
  Seconds low_soc_time{0.0};   ///< below 40% SoC this day (Fig 18)
  /// Below 15% SoC — the bottom Fig 19 bin, where a load spike means a
  /// single point of failure (§VI-E).
  Seconds critical_soc_time{0.0};
  Seconds downtime{0.0};       ///< server brownout time this day
  double health = 1.0;         ///< battery capacity fraction at day end
  AmpereHours ah_discharged{0.0};  ///< this day
  int brownouts = 0;
};

struct DayResult {
  solar::DayType day_type = solar::DayType::Sunny;
  WattHours solar_energy{0.0};
  double throughput_work = 0.0;  ///< delivered core-seconds across all VMs (Fig 20)
  int jobs_finished = 0;
  int migrations = 0;
  int dvfs_transitions = 0;
  std::vector<NodeDayStats> nodes;
  power::EnergyMeter meter;
  util::Histogram soc_histogram = make_soc_histogram();  ///< node-seconds per bin

  /// Index of the most-stressed node (largest Ah throughput today) — the
  /// paper's "worst battery node" selection rule (§VI-B).
  [[nodiscard]] std::size_t worst_node() const;
  [[nodiscard]] Seconds total_downtime() const;
  [[nodiscard]] Seconds worst_low_soc_time() const;
  [[nodiscard]] Seconds worst_critical_soc_time() const;
};

/// Fold per-shard day results into one datacenter-wide DayResult
/// (DESIGN.md §5h): node stats concatenate in shard order (global node
/// index = shard * nodes_per_shard + local index), scalars and meters sum,
/// histograms merge bucket-wise. All sums start from zero, so a 1-shard
/// merge is bit-identical to the shard's own result.
[[nodiscard]] DayResult merge_day_results(const std::vector<DayResult>& shards);

/// One monthly instrumented measurement (Figs 3–5).
struct MonthlyProbe {
  int month = 0;               ///< months since deployment, 1-based
  double full_voltage = 0.0;   ///< loaded terminal voltage at full charge (V)
  double capacity_fraction = 0.0;
  double energy_per_cycle_wh = 0.0;
  double round_trip_efficiency = 0.0;
  double health = 0.0;
};

struct MultiDayResult {
  std::vector<DayResult> days;
  std::vector<MonthlyProbe> monthly;   ///< probe of the worst node, per month
  double total_throughput = 0.0;
  /// Mean/min battery health across nodes at the end of the run.
  double mean_health_end = 1.0;
  double min_health_end = 1.0;
  util::Histogram soc_histogram = make_soc_histogram();  ///< aggregated (Fig 19)
  /// Least-squares end-of-life projection from the monthly probe series
  /// (§IV-D "proactively predicts battery lifetime"); needs ≥ 2 probes and
  /// an observed fade.
  std::optional<double> projected_eol_day;

  [[nodiscard]] double days_simulated() const { return static_cast<double>(days.size()); }
};

/// Checkpoint serialization of the result records (DESIGN.md §5f): the
/// multi-day accumulators are part of the simulation state a resumed run
/// must reproduce byte-for-byte.
void save_state(snapshot::SnapshotWriter& w, const NodeDayStats& s);
void load_state(snapshot::SnapshotReader& r, NodeDayStats& s);
void save_state(snapshot::SnapshotWriter& w, const DayResult& d);
void load_state(snapshot::SnapshotReader& r, DayResult& d);
void save_state(snapshot::SnapshotWriter& w, const MonthlyProbe& p);
void load_state(snapshot::SnapshotReader& r, MonthlyProbe& p);
void save_state(snapshot::SnapshotWriter& w, const MultiDayResult& m);
void load_state(snapshot::SnapshotReader& r, MultiDayResult& m);

}  // namespace baat::sim
