#include "sim/scenario.hpp"

namespace baat::sim {

std::vector<JobSpec> default_daily_jobs(int replicas) {
  // Big-footprint jobs are submitted first each morning (as any operator
  // would) so that a simple least-loaded scheduler can pack them without
  // fragmentation — keeping the policy comparison about power management,
  // not bin-packing luck.
  const workload::Kind order[] = {
      workload::Kind::SoftwareTesting, workload::Kind::KMeansClustering,
      workload::Kind::DataAnalytics,   workload::Kind::WebServing,
      workload::Kind::NutchIndexing,   workload::Kind::WordCount,
  };
  std::vector<JobSpec> jobs;
  double slot = 0.0;
  for (int r = 0; r < replicas; ++r) {
    for (workload::Kind k : order) {
      jobs.push_back(JobSpec{k, util::minutes(20.0 * slot)});
      slot += 1.0;
    }
  }
  return jobs;
}

ScenarioConfig prototype_scenario() {
  ScenarioConfig cfg;
  cfg.nodes = 6;

  // One active 12 V 35 Ah block per node (420 Wh; the prototype's twelve
  // units give each of the six nodes a working block plus a maintenance
  // spare), ~2.5 kWh of working storage fleet-wide.
  cfg.bank.units = cfg.nodes;
  cfg.bank.chemistry.cells = 6;
  cfg.bank.chemistry.capacity_c20 = util::ampere_hours(35.0);
  cfg.bank.chemistry.r_internal_ohms = 0.015;

  cfg.server.idle = util::watts(62.0);
  cfg.server.peak = util::watts(150.0);
  cfg.server.cores = 8.0;
  cfg.server.mem_gb = 16.0;

  // Peak sized so the Sunny/Cloudy/Rainy energy normalization (8/6/3 kWh)
  // needs only mild scaling.
  cfg.plant.peak = util::watts(1500.0);

  cfg.metrics.nameplate = cfg.bank.chemistry.capacity_c20;
  // CAP_nom of Eq 1: nameplate × rated full cycles (Trojan-class midpoint).
  cfg.metrics.lifetime_throughput =
      util::ampere_hours(cfg.bank.chemistry.capacity_c20.value() * 1000.0);

  cfg.policy_params.planned.total_throughput = cfg.metrics.lifetime_throughput;
  cfg.policy_params.planned.nameplate = cfg.bank.chemistry.capacity_c20;
  cfg.policy_params.day_end = cfg.day_end;
  cfg.policy_params.forecast.plant_peak = cfg.plant.peak;
  cfg.policy_params.forecast.window = cfg.plant.window;

  cfg.daily_jobs = default_daily_jobs(cfg.replicas);
  return cfg;
}

}  // namespace baat::sim
