#include "sim/experiment.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::sim {

DayResult run_matched_day(const ScenarioConfig& cfg, core::PolicyKind policy,
                          const solar::SolarDay& day) {
  ScenarioConfig local = cfg;
  local.policy = policy;
  Cluster cluster{local};
  return cluster.run_day(day);
}

void age_fleet(Cluster& cluster, std::size_t days,
               const std::vector<solar::DayType>& weather) {
  BAAT_REQUIRE(!weather.empty(), "weather mix must be non-empty");
  util::Rng solar_rng = util::Rng::stream(cluster.config().seed, "age-fleet");
  for (std::size_t d = 0; d < days; ++d) {
    const solar::SolarDay day{cluster.config().plant, weather[d % weather.size()],
                              solar_rng.fork("day")};
    cluster.run_day(day);
  }
}

void seed_aged_fleet(Cluster& cluster, const battery::AgingState& state) {
  for (battery::Battery& b : cluster.batteries_mutable()) {
    b.set_aging_state(state);
  }
}

battery::AgingState six_month_aged_state() {
  battery::AgingState s;
  s.corrosion = 0.018;
  s.shedding = 0.080;
  s.sulphation = 0.035;
  s.water_loss = 0.002;
  s.stratification = 0.008;
  return s;
}

LifetimeSummary estimate_lifetime(const ScenarioConfig& cfg, core::PolicyKind policy,
                                  double sunshine_fraction, std::size_t sim_days) {
  ScenarioConfig local = cfg;
  local.policy = policy;
  Cluster cluster{local};

  MultiDayOptions opts;
  opts.days = sim_days;
  opts.sunshine_fraction = sunshine_fraction;
  opts.probe_every_days = 0;
  opts.keep_days = false;
  const MultiDayResult run = run_multi_day(cluster, opts);

  LifetimeSummary summary;
  summary.sim_days = static_cast<double>(sim_days);
  summary.mean_health_end = run.mean_health_end;
  summary.min_health_end = run.min_health_end;
  summary.throughput = run.total_throughput;
  summary.lifetime_days =
      core::extrapolate_lifetime(1.0, run.min_health_end, summary.sim_days).days;
  summary.lifetime_days_mean =
      core::extrapolate_lifetime(1.0, run.mean_health_end, summary.sim_days).days;
  return summary;
}

ScenarioConfig with_server_battery_ratio(ScenarioConfig cfg, double watts_per_ah) {
  BAAT_REQUIRE(watts_per_ah > 0.0, "ratio must be positive");
  const double ah = cfg.server.peak.value() / watts_per_ah;
  cfg.bank.chemistry.capacity_c20 = util::ampere_hours(ah);
  cfg.metrics.nameplate = cfg.bank.chemistry.capacity_c20;
  cfg.metrics.lifetime_throughput = util::ampere_hours(ah * 1000.0);
  cfg.policy_params.planned.total_throughput = cfg.metrics.lifetime_throughput;
  cfg.policy_params.planned.nameplate = cfg.bank.chemistry.capacity_c20;
  return cfg;
}

}  // namespace baat::sim
