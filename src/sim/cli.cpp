#include "sim/cli.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "core/lifetime.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "sim/datacenter.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

namespace {

core::PolicyKind parse_policy(const std::string& name) {
  if (name == "ebuff" || name == "e-Buff") return core::PolicyKind::EBuff;
  if (name == "baat-s") return core::PolicyKind::BaatS;
  if (name == "baat-h") return core::PolicyKind::BaatH;
  if (name == "baat") return core::PolicyKind::Baat;
  if (name == "baat-planned") return core::PolicyKind::BaatPlanned;
  if (name == "baat-p") return core::PolicyKind::BaatPredictive;
  throw util::PreconditionError(
      "unknown policy '" + name +
      "' (ebuff|baat-s|baat-h|baat|baat-planned|baat-p)");
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw util::PreconditionError("bad value for " + flag + ": '" + value + "'");
  }
}

// Integer flags must never round-trip through double: above 2^53 a double
// cannot represent every integer, so large --seed values were silently
// corrupted (or spuriously rejected by the exactness check).
long parse_long(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    if (v < std::numeric_limits<long>::min() || v > std::numeric_limits<long>::max()) {
      throw std::out_of_range(value);
    }
    return static_cast<long>(v);
  } catch (const std::exception&) {
    throw util::PreconditionError("expected an integer for " + flag + ": '" + value +
                                  "'");
  }
}

std::uint64_t parse_uint64(const std::string& flag, const std::string& value) {
  try {
    // stoull happily wraps "-1" to 2^64-1; reject signs explicitly.
    if (value.empty() || value[0] == '-' || value[0] == '+') {
      throw std::invalid_argument(value);
    }
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw util::PreconditionError("expected an unsigned integer for " + flag + ": '" +
                                  value + "'");
  }
}

std::vector<double> parse_fraction_list(const std::string& flag,
                                        const std::string& value) {
  std::vector<double> out;
  if (value.empty()) {
    throw util::PreconditionError(flag + " needs at least one fraction");
  }
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string item = value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    // An empty item means a leading/trailing/doubled comma. parse_double
    // would reject it anyway, but with a message about '' being a bad
    // number; name the actual mistake instead.
    if (item.empty()) {
      throw util::PreconditionError(
          flag + " has an empty item (leading, trailing or doubled comma) in '" +
          value + "'");
    }
    const double f = parse_double(flag, item);
    BAAT_REQUIRE(f >= 0.0 && f <= 1.0, flag + " fractions must be in [0, 1]");
    out.push_back(f);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  BAAT_REQUIRE(!out.empty(), flag + " needs at least one fraction");
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string cli_usage() {
  return "baatsim — green-datacenter battery-aging simulator (BAAT, DSN'15)\n"
         "\n"
         "usage: baatsim [options]\n"
         "  --policy <p>      ebuff | baat-s | baat-h | baat | baat-planned | baat-p (default baat)\n"
         "  --days <n>        days to simulate (default 30)\n"
         "  --sunshine <f>    sunshine fraction 0..1 (default 0.5)\n"
         "  --nodes <n>       server/battery nodes (default 6)\n"
         "  --ratio <w>       server-to-battery ratio, W/Ah (default: prototype)\n"
         "  --cycles-plan <c> Eq 7 planned cycles (enables baat-planned input)\n"
         "  --seed <s>        experiment seed (default 42)\n"
         "  --faults <spec>   comma-separated fault-injection plan, e.g.\n"
         "                    sensor_noise:soc:0.03,pv_dropout:day=2:hours=4 or\n"
         "                    cell_weak:bank=1:capacity=0.8,probe_stale:p=0.01;\n"
         "                    repeatable; enables the degraded-mode telemetry guard\n"
         "  --shards <n>      split the datacenter into n self-contained shards of\n"
         "                    --nodes servers each, stepped in parallel; every\n"
         "                    output byte is independent of the worker count, and\n"
         "                    --shards 1 reproduces the unsharded run exactly\n"
         "  --shard-workers <n>\n"
         "                    worker threads stepping shards (default: BAAT_JOBS\n"
         "                    env or all cores); never changes results\n"
         "  --demand <spec>   request-level demand model replacing the fixed daily\n"
         "                    job plan, e.g. users=2000000,requests=150,peak=14,\n"
         "                    amplitude=0.6,spread=3,flash:day=5:mult=4:hours=2;\n"
         "                    implies datacenter mode (one shard unless --shards)\n"
         "  --sweep-sunshine <f1,f2,...>\n"
         "                    sweep mode: one multi-day run per sunshine fraction,\n"
         "                    executed on the parallel sweep engine\n"
         "  --jobs <n>        sweep worker threads (default: BAAT_JOBS env or all\n"
         "                    cores); never changes results, only wall-clock time\n"
         "  --math <tier>     exact | fast | simd (default exact). fast swaps the\n"
         "                    aging stressor transcendentals for bounded-error\n"
         "                    polynomials (~2e-9 relative error; lifetime metrics\n"
         "                    within 0.1%); simd additionally batches cells across\n"
         "                    SIMD lanes (same tolerance, fastest); exact is\n"
         "                    bit-identical to the reference\n"
         "  --chemistry <c>   lead_acid | li_nmc | li_lfp | bucket (default\n"
         "                    lead_acid, byte-identical to the historical\n"
         "                    simulator). li_nmc/li_lfp swap in Li-ion presets\n"
         "                    (rainflow cycle + calendar aging; li_lfp's flat OCV\n"
         "                    stresses voltage-based SoC estimation); bucket is a\n"
         "                    low-fidelity energy bucket for huge sweeps\n"
         "  --old-fleet       start from a six-month-aged fleet\n"
         "  --checkpoint-every <n>\n"
         "                    write a crash-safe resume snapshot every n days\n"
         "                    (single-run mode; sweeps checkpoint per point)\n"
         "  --checkpoint-dir <d>\n"
         "                    directory for checkpoint files (default '.'); in\n"
         "                    sweep mode this alone enables per-point resume\n"
         "  --resume <path>   resume a single run from a snapshot; the scenario\n"
         "                    flags must match the checkpointed run exactly\n"
         "  --csv <path>      write per-day results to CSV (per-point in sweep mode)\n"
         "  --report <path>   write a markdown experiment report\n"
         "  --metrics-out <p> dump the metrics registry (JSON; .csv suffix for CSV)\n"
         "                    and enable hot-path timer histograms\n"
         "  --trace-out <p>   write the event trace (Chrome trace_event JSON — open\n"
         "                    in chrome://tracing or Perfetto; .jsonl suffix for JSONL)\n"
         "  --trace-events <n> trace ring capacity in events (default 65536)\n"
         "  --series-out <p>  stream a per-day aging-attribution/health time-series\n"
         "                    to <p> (columnar CSV; .jsonl suffix for JSONL). Rows\n"
         "                    are flushed per day — O(1) memory at any horizon. In\n"
         "                    sweep mode each point writes <stem>-point-<i>.<ext>\n"
         "  --series-every <n> emit every nth day of the series (default 1)\n"
         "  --no-health       disable the run-health watchdog (on by default)\n"
         "  --no-blackbox     disable the crash flight recorder (on by default)\n"
         "  --blackbox-dir <d> parent directory for blackbox-<day>/ bundles\n"
         "                    (default: current directory)\n"
         "  --log-level <l>   debug | info | warn | error | off (default warn)\n"
         "  --help            this text\n";
}

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* flag) -> const std::string& {
      BAAT_REQUIRE(i + 1 < args.size(), std::string(flag) + " needs a value");
      return args[++i];
    };
    if (a == "--help" || a == "-h") {
      options.show_help = true;
    } else if (a == "--policy") {
      options.policy = parse_policy(next("--policy"));
    } else if (a == "--days") {
      const long v = parse_long(a, next("--days"));
      BAAT_REQUIRE(v > 0, "--days must be positive");
      options.days = static_cast<std::size_t>(v);
    } else if (a == "--sunshine") {
      options.sunshine_fraction = parse_double(a, next("--sunshine"));
      BAAT_REQUIRE(options.sunshine_fraction >= 0.0 && options.sunshine_fraction <= 1.0,
                   "--sunshine must be in [0, 1]");
    } else if (a == "--nodes") {
      const long v = parse_long(a, next("--nodes"));
      BAAT_REQUIRE(v > 0, "--nodes must be positive");
      options.nodes = static_cast<std::size_t>(v);
    } else if (a == "--ratio") {
      options.watts_per_ah = parse_double(a, next("--ratio"));
      BAAT_REQUIRE(options.watts_per_ah > 0.0, "--ratio must be positive");
    } else if (a == "--cycles-plan") {
      options.cycles_plan = parse_double(a, next("--cycles-plan"));
      BAAT_REQUIRE(options.cycles_plan > 0.0, "--cycles-plan must be positive");
    } else if (a == "--seed") {
      options.seed = parse_uint64(a, next("--seed"));
    } else if (a == "--faults") {
      fault::append_fault_plan(options.faults,
                               fault::parse_fault_plan(next("--faults")));
    } else if (a == "--shards") {
      const long v = parse_long(a, next("--shards"));
      BAAT_REQUIRE(v > 0, "--shards must be positive");
      BAAT_REQUIRE(v <= 4096, "--shards must be at most 4096");
      options.shards = static_cast<std::size_t>(v);
    } else if (a == "--shard-workers") {
      const long v = parse_long(a, next("--shard-workers"));
      BAAT_REQUIRE(v > 0, "--shard-workers must be positive");
      options.shard_workers = static_cast<std::size_t>(v);
    } else if (a == "--demand") {
      if (!options.demand.empty()) {
        throw util::PreconditionError(
            "--demand given twice; put flash segments into one spec "
            "(comma-separated) instead");
      }
      options.demand = workload::parse_demand_spec(next("--demand"));
    } else if (a == "--sweep-sunshine") {
      options.sweep_sunshine = parse_fraction_list(a, next("--sweep-sunshine"));
    } else if (a == "--jobs") {
      const long v = parse_long(a, next("--jobs"));
      BAAT_REQUIRE(v > 0, "--jobs must be positive");
      options.jobs = static_cast<std::size_t>(v);
    } else if (a == "--math") {
      const std::string& tier = next("--math");
      if (tier == "exact") {
        options.math = battery::MathMode::Exact;
      } else if (tier == "fast") {
        options.math = battery::MathMode::Fast;
      } else if (tier == "simd") {
        options.math = battery::MathMode::Simd;
      } else {
        throw util::PreconditionError("bad value for --math: '" + tier +
                                      "' (exact|fast|simd)");
      }
    } else if (a == "--chemistry") {
      const std::string& name = next("--chemistry");
      if (!battery::parse_chemistry(name, options.chemistry)) {
        throw util::PreconditionError("bad value for --chemistry: '" + name +
                                      "' (lead_acid|li_nmc|li_lfp|bucket)");
      }
    } else if (a == "--old-fleet") {
      options.old_fleet = true;
    } else if (a == "--checkpoint-every") {
      const long v = parse_long(a, next("--checkpoint-every"));
      BAAT_REQUIRE(v > 0, "--checkpoint-every must be positive");
      options.checkpoint_every = static_cast<std::size_t>(v);
    } else if (a == "--checkpoint-dir") {
      options.checkpoint_dir = next("--checkpoint-dir");
      BAAT_REQUIRE(!options.checkpoint_dir.empty(),
                   "--checkpoint-dir needs a non-empty path");
    } else if (a == "--resume") {
      options.resume_path = next("--resume");
      BAAT_REQUIRE(!options.resume_path.empty(), "--resume needs a non-empty path");
    } else if (a == "--csv") {
      options.csv_path = next("--csv");
    } else if (a == "--report") {
      options.report_path = next("--report");
    } else if (a == "--metrics-out") {
      options.metrics_path = next("--metrics-out");
    } else if (a == "--trace-out") {
      options.trace_path = next("--trace-out");
    } else if (a == "--trace-events") {
      const long v = parse_long(a, next("--trace-events"));
      BAAT_REQUIRE(v > 0, "--trace-events must be positive");
      options.trace_events = static_cast<std::size_t>(v);
    } else if (a == "--series-out") {
      options.series_path = next("--series-out");
      BAAT_REQUIRE(!options.series_path.empty(), "--series-out needs a non-empty path");
    } else if (a == "--series-every") {
      const long v = parse_long(a, next("--series-every"));
      BAAT_REQUIRE(v > 0, "--series-every must be positive");
      options.series_every = v;
    } else if (a == "--no-health") {
      options.health = false;
    } else if (a == "--no-blackbox") {
      options.blackbox = false;
    } else if (a == "--blackbox-dir") {
      options.blackbox_dir = next("--blackbox-dir");
      BAAT_REQUIRE(!options.blackbox_dir.empty(),
                   "--blackbox-dir needs a non-empty path");
    } else if (a == "--log-level") {
      const std::string& name = next("--log-level");
      const auto level = util::parse_log_level(name);
      BAAT_REQUIRE(level.has_value(),
                   "bad value for --log-level: '" + name +
                       "' (debug|info|warn|error|off)");
      options.log_level = level;
    } else {
      throw util::PreconditionError("unknown option '" + a + "' (see --help)");
    }
  }
  if (options.policy == core::PolicyKind::BaatPlanned && options.cycles_plan <= 0.0) {
    throw util::PreconditionError("--policy baat-planned requires --cycles-plan");
  }
  if (options.shard_workers > 0 && options.shards == 0 && options.demand.empty()) {
    throw util::PreconditionError(
        "--shard-workers only applies to datacenter mode (add --shards)");
  }
  if (options.shards > 0 || !options.demand.empty()) {
    if (!options.sweep_sunshine.empty()) {
      throw util::PreconditionError(
          "--shards/--demand cannot combine with --sweep-sunshine; sweep points "
          "are single clusters");
    }
    if (options.shards > 1 && !options.report_path.empty()) {
      throw util::PreconditionError(
          "--report renders a single cluster; it is not available with "
          "--shards > 1");
    }
  }
  if (!options.sweep_sunshine.empty()) {
    // Sweep checkpoints are whole completed points, not day boundaries: the
    // engine skips any point whose `.ckpt` file is already in
    // --checkpoint-dir, so the day-granular flags don't apply.
    if (!options.resume_path.empty()) {
      throw util::PreconditionError(
          "--resume applies to single runs; an interrupted sweep resumes by "
          "re-running with the same --checkpoint-dir (finished points are "
          "skipped)");
    }
    if (options.checkpoint_every > 0) {
      throw util::PreconditionError(
          "--checkpoint-every applies to single runs; sweeps checkpoint each "
          "completed point into --checkpoint-dir");
    }
  }
  return options;
}

ScenarioConfig scenario_from_cli(const CliOptions& options) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = options.nodes;
  cfg.seed = options.seed;
  cfg.policy = options.policy;
  cfg.bank.math = options.math;
  if (options.chemistry != battery::Chemistry::LeadAcid) {
    // Applied before the --ratio rescale so the server-to-battery ratio
    // reshapes the preset's capacity, not the lead-acid default's.
    battery::apply_chemistry_preset(cfg.bank, options.chemistry);
    cfg.metrics.nameplate = cfg.bank.chemistry.capacity_c20;
    // CAP_nom follows the preset's rated full cycles, as prototype_scenario
    // derives it for lead-acid.
    cfg.metrics.lifetime_throughput = util::ampere_hours(
        cfg.bank.chemistry.capacity_c20.value() * cfg.bank.cycle_curve.cycles_at_full);
    cfg.policy_params.planned.total_throughput = cfg.metrics.lifetime_throughput;
    cfg.policy_params.planned.nameplate = cfg.metrics.nameplate;
  }
  if (options.cycles_plan > 0.0) {
    cfg.policy_params.planned.cycles_plan = options.cycles_plan;
  }
  if (options.watts_per_ah > 0.0) {
    cfg = with_server_battery_ratio(cfg, options.watts_per_ah);
  }
  cfg.watchdog.enabled = options.health;
  cfg.faults = options.faults;
  if (!cfg.faults.empty()) {
    // Degraded-mode posture rides with the fault plan: telemetry guarding
    // on, forecast collapse rate-limited. A clean run keeps the exact
    // pre-fault-layer behaviour.
    cfg.guard.enabled = true;
    cfg.policy_params.forecast.max_attenuation_drop_per_obs = 0.2;
  }
  return cfg;
}

namespace {

/// Fold a value into a fingerprint (Boost-style hash combine). Used for the
/// CLI knobs that shape the trajectory but live outside ScenarioConfig /
/// MultiDayOptions (old fleet, the sweep's fraction list).
std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h == 0 ? 1 : h;
}

/// Per-point series file name: "series.csv" → "series-point-3.csv". A sweep
/// writing every point into one file would interleave; give each its own.
std::string point_series_path(const std::string& path, std::size_t i) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  const std::string suffix = "-point-" + std::to_string(i);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

/// Scenario fingerprint for one CLI-described run, stamped into snapshot
/// headers so a resume under different flags fails loudly.
std::uint64_t cli_config_hash(const CliOptions& options, const ScenarioConfig& cfg,
                              const MultiDayOptions& opts) {
  std::uint64_t h = scenario_fingerprint(cfg, opts);
  h = mix_hash(h, options.old_fleet ? 1 : 0);
  return h;
}

/// Sweep mode: one multi-day simulation per sunshine fraction, run on the
/// parallel engine. Per-point summaries print (and export) in point order,
/// so stdout, the CSV and the merged obs exports are byte-identical at any
/// --jobs value. With --checkpoint-dir, every finished point commits
/// `point-<i>.ckpt`; re-running the same sweep restores those points and
/// simulates only the missing ones.
void run_sunshine_sweep(const CliOptions& options, const ScenarioConfig& cfg) {
  const std::vector<double>& fractions = options.sweep_sunshine;
  SweepOptions sweep_opts;
  sweep_opts.jobs = options.jobs;
  sweep_opts.trace_capacity = options.trace_events;
  sweep_opts.checkpoint_dir = options.checkpoint_dir;

  MultiDayOptions base_opts;
  base_opts.days = options.days;
  base_opts.probe_every_days = 0;
  base_opts.keep_days = false;
  std::uint64_t sweep_hash = cli_config_hash(options, cfg, base_opts);
  for (double f : fractions) {
    sweep_hash = mix_hash(sweep_hash, std::bit_cast<std::uint64_t>(f));
  }
  sweep_opts.config_hash = sweep_hash;

  std::vector<LifetimeSummary> points(fractions.size());
  std::vector<SweepJob> jobs;
  jobs.reserve(fractions.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    SweepJob job;
    job.name = "point-" + std::to_string(i);
    job.work = [&, i] {
      Cluster cluster{cfg};
      if (options.old_fleet) seed_aged_fleet(cluster, six_month_aged_state());
      MultiDayOptions opts;
      opts.days = options.days;
      opts.sunshine_fraction = fractions[i];
      opts.probe_every_days = 0;
      opts.keep_days = false;
      if (!options.series_path.empty()) {
        opts.series.path = point_series_path(options.series_path, i);
        opts.series.every = options.series_every;
      }
      opts.blackbox = options.blackbox;
      opts.blackbox_dir = options.blackbox_dir;
      const MultiDayResult run = run_multi_day(cluster, opts);
      LifetimeSummary s;
      s.sim_days = static_cast<double>(options.days);
      s.mean_health_end = run.mean_health_end;
      s.min_health_end = run.min_health_end;
      s.throughput = run.total_throughput;
      s.lifetime_days =
          core::extrapolate_lifetime(1.0, run.min_health_end, s.sim_days).days;
      s.lifetime_days_mean =
          core::extrapolate_lifetime(1.0, run.mean_health_end, s.sim_days).days;
      points[i] = s;
    };
    job.save_result = [&points, i](snapshot::SnapshotWriter& w) {
      const LifetimeSummary& s = points[i];
      w.write_f64(s.sim_days);
      w.write_f64(s.mean_health_end);
      w.write_f64(s.min_health_end);
      w.write_f64(s.throughput);
      w.write_f64(s.lifetime_days);
      w.write_f64(s.lifetime_days_mean);
    };
    job.restore_result = [&points, i](snapshot::SnapshotReader& r) {
      LifetimeSummary& s = points[i];
      s.sim_days = r.read_f64();
      s.mean_health_end = r.read_f64();
      s.min_health_end = r.read_f64();
      s.throughput = r.read_f64();
      s.lifetime_days = r.read_f64();
      s.lifetime_days_mean = r.read_f64();
    };
    jobs.push_back(std::move(job));
  }

  const std::vector<SweepResult> results = run_sweep(std::move(jobs), sweep_opts);
  std::size_t resumed = 0;
  for (const SweepResult& r : results) {
    if (!r.ok) {
      throw util::PreconditionError("sweep job '" + r.name + "' failed: " + r.error);
    }
    if (r.resumed) ++resumed;
  }
  if (resumed > 0) {
    std::fprintf(stderr, "[checkpoint] restored %zu of %zu sweep points from '%s'\n",
                 resumed, results.size(), options.checkpoint_dir.c_str());
  }

  std::printf("policy        : %s\n",
              std::string(core::policy_kind_name(cfg.policy)).c_str());
  if (!cfg.faults.empty()) {
    std::printf("faults        : %s\n", cfg.faults.to_string().c_str());
  }
  // Only printed off the default so lead-acid output stays byte-identical
  // to the pre-chemistry-backend simulator.
  if (cfg.bank.kind != battery::Chemistry::LeadAcid) {
    std::printf("chemistry     : %s\n",
                std::string(battery::chemistry_name(cfg.bank.kind)).c_str());
  }
  std::printf("sweep         : %zu sunshine points x %zu days (seed %llu%s)\n",
              fractions.size(), options.days,
              static_cast<unsigned long long>(options.seed),
              options.old_fleet ? ", old fleet" : "");
  std::printf("%10s %12s %12s %14s %12s\n", "sunshine", "lifetime", "mean life",
              "work (Mcs)", "min health");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("%10.2f %11.0fd %11.0fd %14.2f %12.4f\n", fractions[i],
                points[i].lifetime_days, points[i].lifetime_days_mean,
                points[i].throughput / 1e6, points[i].min_health_end);
  }

  if (!options.csv_path.empty()) {
    util::CsvWriter csv{options.csv_path,
                        {"sunshine_fraction", "policy", "days", "lifetime_days",
                         "lifetime_days_mean", "throughput", "mean_health_end",
                         "min_health_end"}};
    for (std::size_t i = 0; i < points.size(); ++i) {
      csv.write_row({util::CsvWriter::cell(fractions[i]),
                     std::string(core::policy_kind_name(cfg.policy)),
                     util::CsvWriter::cell(static_cast<double>(options.days)),
                     util::CsvWriter::cell(points[i].lifetime_days),
                     util::CsvWriter::cell(points[i].lifetime_days_mean),
                     util::CsvWriter::cell(points[i].throughput),
                     util::CsvWriter::cell(points[i].mean_health_end),
                     util::CsvWriter::cell(points[i].min_health_end)});
    }
    std::printf("per-point CSV : %s\n", options.csv_path.c_str());
  }
}

/// Datacenter mode (--shards / --demand): the sharded analogue of the
/// single-run path below. Output parity is deliberate — at --shards 1 with
/// no --demand, every stdout/CSV/series byte matches the unsharded engine,
/// which the CI smoke test pins.
int run_datacenter_cli(const CliOptions& options, const ScenarioConfig& cfg) {
  obs::Registry& registry = obs::global_registry();
  obs::TraceBuffer& trace = obs::global_trace();

  DatacenterConfig dcfg;
  dcfg.scenario = cfg;
  dcfg.shards = options.shards == 0 ? 1 : options.shards;
  dcfg.workers = options.shard_workers;
  dcfg.demand = options.demand;

  MultiDayOptions opts;
  opts.days = options.days;
  opts.sunshine_fraction = options.sunshine_fraction;
  opts.probe_every_days = 30;
  opts.checkpoint.every_days = options.checkpoint_every;
  opts.checkpoint.dir = options.checkpoint_dir;
  opts.checkpoint.resume_path = options.resume_path;
  opts.checkpoint.config_hash = mix_hash(datacenter_fingerprint(dcfg, opts),
                                         options.old_fleet ? 1 : 0);
  opts.series.path = options.series_path;
  opts.series.every = options.series_every;
  opts.blackbox = options.blackbox;
  opts.blackbox_dir = options.blackbox_dir;

  Datacenter dc{dcfg};
  if (options.old_fleet) {
    for (std::size_t s = 0; s < dc.shard_count(); ++s) {
      seed_aged_fleet(dc.shard(s), six_month_aged_state());
    }
  }

  MultiDayResult run;
  try {
    run = run_datacenter_multi_day(dc, opts);
  } catch (const obs::WatchdogError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    obs::set_trace_enabled(false);
    obs::set_profiling_enabled(false);
    util::set_sim_time(-1.0);
    return 3;
  }

  if (!options.csv_path.empty()) {
    util::CsvWriter csv{options.csv_path,
                        {"day", "weather", "work", "worst_ah", "worst_low_soc_h",
                         "downtime_h", "migrations", "dvfs"}};
    for (std::size_t d = 0; d < run.days.size(); ++d) {
      const DayResult& r = run.days[d];
      csv.write_row({util::CsvWriter::cell(static_cast<double>(d)),
                     std::string(solar::day_type_name(r.day_type)),
                     util::CsvWriter::cell(r.throughput_work),
                     util::CsvWriter::cell(r.nodes[r.worst_node()].ah_discharged.value()),
                     util::CsvWriter::cell(r.worst_low_soc_time().value() / 3600.0),
                     util::CsvWriter::cell(r.total_downtime().value() / 3600.0),
                     util::CsvWriter::cell(static_cast<double>(r.migrations)),
                     util::CsvWriter::cell(static_cast<double>(r.dvfs_transitions))});
    }
  }

  std::printf("policy        : %s\n",
              std::string(core::policy_kind_name(cfg.policy)).c_str());
  if (!cfg.faults.empty()) {
    std::printf("faults        : %s\n", cfg.faults.to_string().c_str());
  }
  // Only printed off the default so lead-acid output stays byte-identical
  // to the pre-chemistry-backend simulator.
  if (cfg.bank.kind != battery::Chemistry::LeadAcid) {
    std::printf("chemistry     : %s\n",
                std::string(battery::chemistry_name(cfg.bank.kind)).c_str());
  }
  // Topology/demand lines only when they deviate from the classic engine, so
  // --shards 1 output stays byte-identical to the unsharded run.
  if (dc.shard_count() > 1) {
    std::printf("shards        : %zu x %zu nodes (%zu total)\n", dc.shard_count(),
                cfg.nodes, dc.node_count());
  }
  if (!dcfg.demand.empty()) {
    std::printf("demand        : %s\n", dcfg.demand.to_string().c_str());
  }
  std::printf("days          : %zu (sunshine %.2f, seed %llu%s)\n", options.days,
              options.sunshine_fraction,
              static_cast<unsigned long long>(options.seed),
              options.old_fleet ? ", old fleet" : "");
  std::printf("throughput    : %.2f M core-seconds\n", run.total_throughput / 1e6);
  std::printf("fleet health  : mean %.4f, min %.4f\n", run.mean_health_end,
              run.min_health_end);
  const core::LifetimeEstimate life = core::extrapolate_lifetime(
      1.0, run.min_health_end, static_cast<double>(options.days));
  if (life.beyond_horizon) {
    std::printf("worst battery : no end-of-life within the %.0f-day projection horizon\n",
                life.days);
  } else {
    std::printf("worst battery : projected end-of-life in %.0f days\n", life.days);
  }
  for (const MonthlyProbe& p : run.monthly) {
    std::printf("probe month %d : Vfull %.2f V, capacity %.1f%%, round-trip %.1f%%\n",
                p.month, p.full_voltage, p.capacity_fraction * 100.0,
                p.round_trip_efficiency * 100.0);
  }
  if (!options.report_path.empty()) {
    // parse_cli only lets --report through at one shard.
    ReportInputs report;
    report.config = &cfg;
    report.result = &run;
    report.cluster = &dc.shard(0);
    report.sunshine_fraction = options.sunshine_fraction;
    report.registry = &registry;
    report.trace = options.trace_path.empty() ? nullptr : &trace;
    write_report(options.report_path, report);
    std::printf("report        : %s\n", options.report_path.c_str());
  }
  if (!options.csv_path.empty()) {
    std::printf("per-day CSV   : %s\n", options.csv_path.c_str());
  }
  if (!options.series_path.empty()) {
    std::printf("series        : %s\n", options.series_path.c_str());
  }

  if (!options.metrics_path.empty()) {
    // The shards' metrics live in their private registries; fold them into
    // the caller's registry (shard order) for the export.
    dc.merge_metrics_into(registry);
    std::ofstream out{options.metrics_path};
    if (!out) throw std::runtime_error("cannot open " + options.metrics_path);
    if (ends_with(options.metrics_path, ".csv")) {
      registry.write_csv(out);
    } else {
      registry.write_json(out);
    }
    std::printf("metrics       : %s\n", options.metrics_path.c_str());
  }
  if (!options.trace_path.empty()) {
    std::ofstream out{options.trace_path};
    if (!out) throw std::runtime_error("cannot open " + options.trace_path);
    if (ends_with(options.trace_path, ".jsonl")) {
      trace.write_jsonl(out);
    } else {
      trace.write_chrome_trace(out);
    }
    std::printf("trace         : %s (%zu events, %zu dropped)\n",
                options.trace_path.c_str(), trace.size(), trace.dropped());
  }

  obs::set_trace_enabled(false);
  obs::set_profiling_enabled(false);
  util::set_sim_time(-1.0);
  return 0;
}

}  // namespace

int run_cli(const CliOptions& options) {
  if (options.show_help) {
    std::fputs(cli_usage().c_str(), stdout);
    return 0;
  }

  if (options.log_level) util::set_log_level(*options.log_level);

  // Observability session: fresh numbers per invocation. Profiling rides on
  // --metrics-out (wall-clock histograms are only useful when exported);
  // tracing rides on --trace-out.
  obs::Registry& registry = obs::global_registry();
  registry.reset();
  obs::TraceBuffer& trace = obs::global_trace();
  trace.set_capacity(options.trace_events);
  obs::set_trace_enabled(!options.trace_path.empty());
  obs::set_profiling_enabled(!options.metrics_path.empty());

  const ScenarioConfig cfg = scenario_from_cli(options);

  if (options.shards > 0 || !options.demand.empty()) {
    return run_datacenter_cli(options, cfg);
  }

  if (!options.sweep_sunshine.empty()) {
    run_sunshine_sweep(options, cfg);

    if (!options.metrics_path.empty()) {
      std::ofstream out{options.metrics_path};
      if (!out) throw std::runtime_error("cannot open " + options.metrics_path);
      if (ends_with(options.metrics_path, ".csv")) {
        registry.write_csv(out);
      } else {
        registry.write_json(out);
      }
      std::printf("metrics       : %s\n", options.metrics_path.c_str());
    }
    if (!options.trace_path.empty()) {
      std::ofstream out{options.trace_path};
      if (!out) throw std::runtime_error("cannot open " + options.trace_path);
      if (ends_with(options.trace_path, ".jsonl")) {
        trace.write_jsonl(out);
      } else {
        trace.write_chrome_trace(out);
      }
      std::printf("trace         : %s (%zu events, %zu dropped)\n",
                  options.trace_path.c_str(), trace.size(), trace.dropped());
    }
    obs::set_trace_enabled(false);
    obs::set_profiling_enabled(false);
    util::set_sim_time(-1.0);
    return 0;
  }

  Cluster cluster{cfg};
  if (options.old_fleet) seed_aged_fleet(cluster, six_month_aged_state());

  MultiDayOptions opts;
  opts.days = options.days;
  opts.sunshine_fraction = options.sunshine_fraction;
  opts.probe_every_days = 30;
  opts.checkpoint.every_days = options.checkpoint_every;
  opts.checkpoint.dir = options.checkpoint_dir;
  opts.checkpoint.resume_path = options.resume_path;
  opts.checkpoint.config_hash = cli_config_hash(options, cfg, opts);
  opts.series.path = options.series_path;
  opts.series.every = options.series_every;
  opts.blackbox = options.blackbox;
  opts.blackbox_dir = options.blackbox_dir;

  MultiDayResult run;
  try {
    run = run_multi_day(cluster, opts);
  } catch (const obs::WatchdogError& e) {
    // The watchdog's what() is the full abort report: score, incident list,
    // day and node of every trip. The flight-recorder bundle (unless
    // --no-blackbox) was already written by run_multi_day.
    std::fprintf(stderr, "%s\n", e.what());
    obs::set_trace_enabled(false);
    obs::set_profiling_enabled(false);
    util::set_sim_time(-1.0);
    return 3;
  }

  if (!options.csv_path.empty()) {
    util::CsvWriter csv{options.csv_path,
                        {"day", "weather", "work", "worst_ah", "worst_low_soc_h",
                         "downtime_h", "migrations", "dvfs"}};
    for (std::size_t d = 0; d < run.days.size(); ++d) {
      const DayResult& r = run.days[d];
      csv.write_row({util::CsvWriter::cell(static_cast<double>(d)),
                     std::string(solar::day_type_name(r.day_type)),
                     util::CsvWriter::cell(r.throughput_work),
                     util::CsvWriter::cell(r.nodes[r.worst_node()].ah_discharged.value()),
                     util::CsvWriter::cell(r.worst_low_soc_time().value() / 3600.0),
                     util::CsvWriter::cell(r.total_downtime().value() / 3600.0),
                     util::CsvWriter::cell(static_cast<double>(r.migrations)),
                     util::CsvWriter::cell(static_cast<double>(r.dvfs_transitions))});
    }
  }

  std::printf("policy        : %s\n", std::string(core::policy_kind_name(cfg.policy)).c_str());
  if (!cfg.faults.empty()) {
    std::printf("faults        : %s\n", cfg.faults.to_string().c_str());
  }
  // Only printed off the default so lead-acid output stays byte-identical
  // to the pre-chemistry-backend simulator.
  if (cfg.bank.kind != battery::Chemistry::LeadAcid) {
    std::printf("chemistry     : %s\n",
                std::string(battery::chemistry_name(cfg.bank.kind)).c_str());
  }
  std::printf("days          : %zu (sunshine %.2f, seed %llu%s)\n", options.days,
              options.sunshine_fraction,
              static_cast<unsigned long long>(options.seed),
              options.old_fleet ? ", old fleet" : "");
  std::printf("throughput    : %.2f M core-seconds\n", run.total_throughput / 1e6);
  std::printf("fleet health  : mean %.4f, min %.4f\n", run.mean_health_end,
              run.min_health_end);
  const core::LifetimeEstimate life = core::extrapolate_lifetime(
      1.0, run.min_health_end, static_cast<double>(options.days));
  if (life.beyond_horizon) {
    // The clamp value is a horizon, not a prediction — presenting it as a
    // day number ("end-of-life in 7300 days") misread as a forecast.
    std::printf("worst battery : no end-of-life within the %.0f-day projection horizon\n",
                life.days);
  } else {
    std::printf("worst battery : projected end-of-life in %.0f days\n", life.days);
  }
  for (const MonthlyProbe& p : run.monthly) {
    std::printf("probe month %d : Vfull %.2f V, capacity %.1f%%, round-trip %.1f%%\n",
                p.month, p.full_voltage, p.capacity_fraction * 100.0,
                p.round_trip_efficiency * 100.0);
  }
  if (!options.report_path.empty()) {
    ReportInputs report;
    report.config = &cfg;
    report.result = &run;
    report.cluster = &cluster;
    report.sunshine_fraction = options.sunshine_fraction;
    report.registry = &registry;
    report.trace = options.trace_path.empty() ? nullptr : &trace;
    write_report(options.report_path, report);
    std::printf("report        : %s\n", options.report_path.c_str());
  }
  if (!options.csv_path.empty()) {
    std::printf("per-day CSV   : %s\n", options.csv_path.c_str());
  }
  if (!options.series_path.empty()) {
    std::printf("series        : %s\n", options.series_path.c_str());
  }

  if (!options.metrics_path.empty()) {
    std::ofstream out{options.metrics_path};
    if (!out) throw std::runtime_error("cannot open " + options.metrics_path);
    if (ends_with(options.metrics_path, ".csv")) {
      registry.write_csv(out);
    } else {
      registry.write_json(out);
    }
    std::printf("metrics       : %s\n", options.metrics_path.c_str());
  }
  if (!options.trace_path.empty()) {
    std::ofstream out{options.trace_path};
    if (!out) throw std::runtime_error("cannot open " + options.trace_path);
    if (ends_with(options.trace_path, ".jsonl")) {
      trace.write_jsonl(out);
    } else {
      trace.write_chrome_trace(out);
    }
    std::printf("trace         : %s (%zu events, %zu dropped)\n",
                options.trace_path.c_str(), trace.size(), trace.dropped());
  }

  // Leave the process-global switches the way we found them (matters when
  // run_cli is driven from tests rather than main()).
  obs::set_trace_enabled(false);
  obs::set_profiling_enabled(false);
  util::set_sim_time(-1.0);
  return 0;
}

}  // namespace baat::sim
