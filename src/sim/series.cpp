#include "sim/series.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "battery/chemistry_model.hpp"
#include "obs/metrics.hpp"

namespace baat::sim {

namespace {

/// Per-chemistry fade slot values in the axis order (slot mapping is fixed:
/// Li's calendar fade lives in the corrosion slot, its cycle fade in the
/// shedding slot — see battery/chemistry_model.hpp).
std::array<double, 5> mech_slots(const battery::MechanismFade& f) {
  return {f.corrosion, f.shedding, f.sulphation, f.stratification, f.water_loss};
}

/// For lead-acid this reproduces the historical header byte-for-byte
/// (corrosion, shedding, sulphation, stratification, water_loss); Li and
/// bucket chemistries emit only their active mechanism columns
/// (fade_calendar, fade_cycle / fade_throughput).
std::string csv_header(const battery::MechanismAxis& axis) {
  std::string h = "day,node,soc_end,soc_min,health";
  for (std::size_t i = 0; i < axis.count; ++i) {
    h += std::string(",fade_") + axis.names[i];
  }
  h += ",fade_total,cycle_damage,efc,low_soc_dwell_s,health_score,throughput_work\n";
  return h;
}

std::string csv_row(long day, const std::string& node, const NodeDayStats* n,
                    const battery::MechanismAxis& axis,
                    const battery::MechanismFade& fade, double cycle_damage, double efc,
                    double dwell, double health_score, double throughput) {
  using obs::format_number;
  std::string row = std::to_string(day) + "," + node + ",";
  row += (n != nullptr ? format_number(n->soc_end) : "") + ",";
  row += (n != nullptr ? format_number(n->soc_min) : "") + ",";
  row += (n != nullptr ? format_number(n->health) : "") + ",";
  const std::array<double, 5> slots = mech_slots(fade);
  for (std::size_t i = 0; i < axis.count; ++i) row += format_number(slots[i]) + ",";
  row += format_number(fade.total()) + ",";
  row += format_number(cycle_damage) + "," + format_number(efc) + "," +
         format_number(dwell) + "," + format_number(health_score) + "," +
         format_number(throughput) + "\n";
  return row;
}

std::string jsonl_row(long day, const std::string& node, const NodeDayStats* n,
                      const battery::MechanismAxis& axis,
                      const battery::MechanismFade& fade, double cycle_damage,
                      double efc, double dwell, double health_score,
                      double throughput) {
  using obs::format_number;
  std::string row = "{\"day\": " + std::to_string(day) + ", \"node\": " +
                    obs::json_quote(node);
  if (n != nullptr) {
    row += ", \"soc_end\": " + format_number(n->soc_end) +
           ", \"soc_min\": " + format_number(n->soc_min) +
           ", \"health\": " + format_number(n->health);
  }
  const std::array<double, 5> slots = mech_slots(fade);
  row += ", \"fade\": {";
  for (std::size_t i = 0; i < axis.count; ++i) {
    row += std::string("\"") + axis.names[i] + "\": " + format_number(slots[i]) + ", ";
  }
  row += "\"total\": " + format_number(fade.total()) + "}";
  row += ", \"cycle_damage\": " + format_number(cycle_damage) +
         ", \"efc\": " + format_number(efc) +
         ", \"low_soc_dwell_s\": " + format_number(dwell) +
         ", \"health_score\": " + format_number(health_score) +
         ", \"throughput_work\": " + format_number(throughput) + "}\n";
  return row;
}

}  // namespace

void SeriesWriter::configure(const SeriesOptions& options) {
  options_ = options;
  if (options_.every <= 0) options_.every = 1;
  const std::string& p = options_.path;
  jsonl_ = p.size() >= 6 && p.compare(p.size() - 6, 6, ".jsonl") == 0;
}

void SeriesWriter::ensure_open() {
  if (out_.is_open()) return;
  out_.open(options_.path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("cannot open series output file: " + options_.path);
  }
  out_ << emitted_;  // resume case: replay the checkpointed prefix
  out_.flush();
}

void SeriesWriter::append(const std::string& text) {
  emitted_ += text;
  out_ << text;
}

void SeriesWriter::write_day(long day, const Cluster& cluster, const DayResult& result) {
  if (!active()) return;
  ensure_open();
  const battery::MechanismAxis axis =
      battery::mechanism_axis(cluster.config().bank.kind);
  if (!jsonl_ && !header_written_) {
    append(csv_header(axis));
    header_written_ = true;
  }

  const double score = cluster.watchdog().log().score();
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const battery::CellLedgerEntry e = cluster.node_ledger_delta(i);
    const NodeDayStats& n = result.nodes[i];
    const std::string label = std::to_string(i);
    append(jsonl_ ? jsonl_row(day, label, &n, axis, e.fade, e.cycle_damage, e.efc,
                              e.low_soc_dwell_s, score, result.throughput_work)
                  : csv_row(day, label, &n, axis, e.fade, e.cycle_damage, e.efc,
                            e.low_soc_dwell_s, score, result.throughput_work));
  }
  const battery::LedgerRollup roll = cluster.ledger_rollup(false);
  append(jsonl_ ? jsonl_row(day, "cluster", nullptr, axis, roll.fade, roll.cycle_damage,
                            roll.efc, roll.low_soc_dwell_s, score,
                            result.throughput_work)
                : csv_row(day, "cluster", nullptr, axis, roll.fade, roll.cycle_damage,
                          roll.efc, roll.low_soc_dwell_s, score,
                          result.throughput_work));
  out_.flush();
}

void SeriesWriter::write_day(long day, const std::vector<const Cluster*>& shards,
                             const DayResult& merged) {
  if (!active()) return;
  ensure_open();
  const battery::MechanismAxis axis =
      battery::mechanism_axis(shards.front()->config().bank.kind);
  if (!jsonl_ && !header_written_) {
    append(csv_header(axis));
    header_written_ = true;
  }

  std::size_t global = 0;
  for (const Cluster* shard : shards) {
    const double score = shard->watchdog().log().score();
    for (std::size_t i = 0; i < shard->node_count(); ++i, ++global) {
      const battery::CellLedgerEntry e = shard->node_ledger_delta(i);
      const NodeDayStats& n = merged.nodes[global];
      const std::string label = std::to_string(global);
      append(jsonl_ ? jsonl_row(day, label, &n, axis, e.fade, e.cycle_damage, e.efc,
                                e.low_soc_dwell_s, score, merged.throughput_work)
                    : csv_row(day, label, &n, axis, e.fade, e.cycle_damage, e.efc,
                              e.low_soc_dwell_s, score, merged.throughput_work));
    }
  }
  battery::LedgerRollup roll;
  double worst_score = shards.front()->watchdog().log().score();
  for (const Cluster* shard : shards) {
    roll += shard->ledger_rollup(false);
    worst_score = std::min(worst_score, shard->watchdog().log().score());
  }
  append(jsonl_ ? jsonl_row(day, "cluster", nullptr, axis, roll.fade, roll.cycle_damage,
                            roll.efc, roll.low_soc_dwell_s, worst_score,
                            merged.throughput_work)
                : csv_row(day, "cluster", nullptr, axis, roll.fade, roll.cycle_damage,
                          roll.efc, roll.low_soc_dwell_s, worst_score,
                          merged.throughput_work));
  out_.flush();
}

void SeriesWriter::save_state(snapshot::SnapshotWriter& w) const {
  w.write_bool(header_written_);
  w.write_string(emitted_);
}

void SeriesWriter::load_state(snapshot::SnapshotReader& r) {
  header_written_ = r.read_bool();
  emitted_ = r.read_string();
  if (active()) {
    // Truncate-and-replay: rows the interrupted run wrote past the
    // checkpoint day vanish, restoring exactly the checkpointed prefix.
    if (out_.is_open()) out_.close();
    ensure_open();
  }
}

}  // namespace baat::sim
