#pragma once

// The digital twin of the paper's prototype (Fig 11): six server nodes, one
// battery node each, a shared solar line, the power switcher, per-battery
// sensors/power tables and the BAAT controller, stepped at a fixed period
// over simulated days.

#include <functional>
#include <memory>
#include <vector>

#include "battery/bank.hpp"
#include "core/guard.hpp"
#include "core/policy.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "power/meter.hpp"
#include "power/router.hpp"
#include "server/server.hpp"
#include "sim/results.hpp"
#include "sim/scenario.hpp"
#include "solar/solar_day.hpp"
#include "telemetry/power_table.hpp"
#include "telemetry/sensor.hpp"
#include "workload/vm.hpp"

namespace baat::sim {

/// Snapshot passed to the per-tick observer — the hook the Fig 12 runtime
/// profiling bench (and debugging) uses to sample intra-day state. The hook
/// is layered on top of the obs event stream: coarse-grained structured
/// events (policy switches, low-SoC crossings, brownouts, ...) go to
/// obs::global_trace(); this callback remains the raw per-tick firehose.
struct TickObservation {
  util::Seconds time_of_day{0.0};
  util::Watts solar{0.0};
  util::Watts total_demand{0.0};
  const power::RouteResult* route = nullptr;
  const std::vector<battery::Battery>* batteries = nullptr;
  const std::vector<telemetry::PowerTable>* day_tables = nullptr;
};

class Cluster {
 public:
  explicit Cluster(ScenarioConfig cfg);

  /// Simulate one full calendar day against a given solar trace. Jobs from
  /// the daily plan are deployed at their arrival offsets; all VMs are
  /// retired at day end ("each power management scheme is run one day",
  /// §VI-B).
  DayResult run_day(const solar::SolarDay& day);

  /// Convenience: generates the day's solar trace internally (deterministic
  /// in the cluster seed and the running day counter).
  DayResult run_day(solar::DayType type);

  /// Swap the management policy between days (Fig 13's matched comparisons).
  void set_policy(core::PolicyKind kind);

  /// Replace the daily job plan between days — the demand-model hook: a
  /// sharded datacenter recomputes each shard's schedule every morning.
  /// Only legal at a day boundary (no live VMs or queued jobs).
  void set_daily_jobs(std::vector<JobSpec> jobs);

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t node_count() const { return batteries_.size(); }
  [[nodiscard]] const std::vector<battery::Battery>& batteries() const { return batteries_; }
  /// Mutable access for experiment setup (e.g. seeding an "old" fleet).
  [[nodiscard]] std::vector<battery::Battery>& batteries_mutable() { return batteries_; }
  [[nodiscard]] const core::AgingPolicy& policy() const { return *policy_; }
  [[nodiscard]] long days_run() const { return day_counter_; }
  /// Non-null iff the scenario carries a fault plan.
  [[nodiscard]] fault::FaultInjector* injector() { return injector_.get(); }
  /// The degraded-mode guard (disabled unless the scenario enables it).
  [[nodiscard]] const core::TelemetryGuard& guard() const { return guard_; }
  /// The run-health watchdog (on by default; see WatchdogParams).
  [[nodiscard]] const Watchdog& watchdog() const { return watchdog_; }

  // --- aging-attribution ledger ----------------------------------------------
  /// One node's ledger entry since the last ledger_advance() (non-advancing).
  [[nodiscard]] battery::CellLedgerEntry node_ledger_delta(std::size_t node) const;
  /// One node's lifetime ledger entry (since birth).
  [[nodiscard]] battery::CellLedgerEntry node_ledger_total(std::size_t node) const;
  /// Cluster-wide rollup of per-node entries (deltas or lifetime totals).
  [[nodiscard]] battery::LedgerRollup ledger_rollup(bool lifetime_totals) const;
  /// Move every node's ledger baseline to its current state (call after the
  /// deltas of a rollup window have been exported).
  void ledger_advance();
  /// Life-long metrics of one node, as the controller sees them.
  [[nodiscard]] telemetry::AgingMetrics life_metrics(std::size_t node) const;

  /// Install a per-tick observer (pass nullptr-like empty function to clear).
  void set_tick_observer(std::function<void(const TickObservation&)> observer) {
    observer_ = std::move(observer);
  }

  /// Checkpoint support (DESIGN.md §5f). Valid only at a day boundary —
  /// run_day drains every VM and powers servers off at day end, so the
  /// workload microstate never enters the snapshot; save refuses otherwise.
  /// load_state runs on a freshly constructed Cluster for the *same*
  /// scenario: construction makes its usual deterministic RNG draws, then
  /// every drawn-from stream and mutable field is overwritten with the
  /// checkpointed values, leaving exactly the state the saved cluster had.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  struct VmRecord {
    workload::Vm vm;
    std::size_t host;
    double last_util = 0.0;
  };

  /// Try to place one job; returns false if no node can host it right now
  /// (the caller queues it for retry — a batch queue, not a silent drop).
  bool deploy_job(const JobSpec& job);
  /// Non-const: the telemetry guard advances its per-node acceptance state
  /// while filtering SoC estimates for the controller's view.
  core::PolicyContext build_context(util::Seconds now,
                                    const power::RouteResult* last_route,
                                    util::Watts solar_now = util::Watts{0.0});
  void apply_actions(const core::Actions& actions, DayResult& result);
  VmRecord* find_vm(workload::VmId id);

  ScenarioConfig cfg_;
  util::Rng rng_;
  /// All per-cell battery state, stepped through the batched fleet kernel.
  /// Declared before batteries_: the views must die before the fleet.
  std::unique_ptr<battery::FleetState> fleet_;
  std::vector<battery::Battery> batteries_;  ///< views into *fleet_, one per node
  std::vector<server::Server> servers_;
  std::vector<telemetry::PowerTable> life_tables_;
  /// Daily-reset logs: the "recent" metric horizon the slowdown check reads.
  std::vector<telemetry::PowerTable> day_tables_;
  std::vector<telemetry::BatterySensor> sensors_;
  std::unique_ptr<fault::FaultInjector> injector_;  ///< null = clean run
  core::TelemetryGuard guard_;
  Watchdog watchdog_;
  std::unique_ptr<core::AgingPolicy> policy_;
  std::vector<VmRecord> vms_;
  std::vector<JobSpec> pending_jobs_;  ///< arrived but not yet placeable
  std::vector<std::size_t> charge_priority_;
  /// True once the policy has installed an explicit charge order — switches
  /// the router from the physical proportional split to strict priority.
  bool charge_priority_explicit_ = false;
  std::vector<double> discharge_floor_;
  workload::VmId next_vm_id_ = 0;
  long day_counter_ = 0;
  std::function<void(const TickObservation&)> observer_;
  /// Reused per-tick buffers (run_day performs no per-tick allocation).
  std::vector<util::Watts> demands_;
  power::RouterScratch router_scratch_;

  // --- observability ---------------------------------------------------------
  // Handles into obs::global_registry(), resolved once in the constructor
  // (registry entries are never erased, so the pointers stay valid). All of
  // this is read-only with respect to simulation state: metrics and events
  // must never perturb the deterministic run (regression-tested).
  struct ObsHandles {
    obs::Counter* jobs_deployed = nullptr;
    obs::Counter* deploy_retries = nullptr;
    obs::Counter* low_soc_ticks = nullptr;
    obs::Counter* critical_soc_ticks = nullptr;
    obs::Counter* brownouts = nullptr;
    obs::Counter* migrations = nullptr;
    obs::Counter* dvfs_transitions = nullptr;
    obs::Counter* days_run = nullptr;
    std::vector<obs::Gauge*> node_soc;
    std::vector<obs::Gauge*> node_health;
  };
  ObsHandles obs_;
  std::vector<bool> node_low_soc_;   ///< per-node "currently below 40%" latch
  std::vector<bool> node_eol_seen_;  ///< per-node "EOL event already emitted"
};

}  // namespace baat::sim
