#include "sim/results.hpp"

#include "util/require.hpp"

namespace baat::sim {

util::Histogram make_soc_histogram() {
  // Fig 19 bins; the top edge is nudged past 100 so a full battery lands in
  // the [90, 100] bin instead of overflow.
  return util::Histogram{{0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0, 100.0001}};
}

std::size_t DayResult::worst_node() const {
  BAAT_REQUIRE(!nodes.empty(), "day result has no nodes");
  std::size_t worst = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].ah_discharged > nodes[worst].ah_discharged) worst = i;
  }
  return worst;
}

Seconds DayResult::total_downtime() const {
  Seconds t{0.0};
  for (const NodeDayStats& n : nodes) t += n.downtime;
  return t;
}

Seconds DayResult::worst_low_soc_time() const {
  Seconds t{0.0};
  for (const NodeDayStats& n : nodes) t = std::max(t, n.low_soc_time);
  return t;
}

Seconds DayResult::worst_critical_soc_time() const {
  Seconds t{0.0};
  for (const NodeDayStats& n : nodes) t = std::max(t, n.critical_soc_time);
  return t;
}

}  // namespace baat::sim
