#include "sim/results.hpp"

#include "util/require.hpp"

namespace baat::sim {

util::Histogram make_soc_histogram() {
  // Fig 19 bins; the top edge is nudged past 100 so a full battery lands in
  // the [90, 100] bin instead of overflow.
  return util::Histogram{{0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0, 100.0001}};
}

std::size_t DayResult::worst_node() const {
  BAAT_REQUIRE(!nodes.empty(), "day result has no nodes");
  std::size_t worst = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].ah_discharged > nodes[worst].ah_discharged) worst = i;
  }
  return worst;
}

Seconds DayResult::total_downtime() const {
  Seconds t{0.0};
  for (const NodeDayStats& n : nodes) t += n.downtime;
  return t;
}

Seconds DayResult::worst_low_soc_time() const {
  Seconds t{0.0};
  for (const NodeDayStats& n : nodes) t = std::max(t, n.low_soc_time);
  return t;
}

Seconds DayResult::worst_critical_soc_time() const {
  Seconds t{0.0};
  for (const NodeDayStats& n : nodes) t = std::max(t, n.critical_soc_time);
  return t;
}

DayResult merge_day_results(const std::vector<DayResult>& shards) {
  BAAT_REQUIRE(!shards.empty(), "merge_day_results needs at least one shard");
  DayResult out;
  out.day_type = shards.front().day_type;
  for (const DayResult& s : shards) {
    out.solar_energy += s.solar_energy;
    out.throughput_work += s.throughput_work;
    out.jobs_finished += s.jobs_finished;
    out.migrations += s.migrations;
    out.dvfs_transitions += s.dvfs_transitions;
    out.nodes.insert(out.nodes.end(), s.nodes.begin(), s.nodes.end());
    out.meter.merge(s.meter);
    out.soc_histogram.merge(s.soc_histogram);
  }
  return out;
}

namespace {

void save_metrics(snapshot::SnapshotWriter& w, const telemetry::AgingMetrics& m) {
  w.write_f64(m.nat);
  w.write_f64(m.cf);
  w.write_f64(m.pc);
  w.write_f64(m.pc_health);
  w.write_f64(m.ddt);
  w.write_f64(m.dr_c_rate);
}

void load_metrics(snapshot::SnapshotReader& r, telemetry::AgingMetrics& m) {
  m.nat = r.read_f64();
  m.cf = r.read_f64();
  m.pc = r.read_f64();
  m.pc_health = r.read_f64();
  m.ddt = r.read_f64();
  m.dr_c_rate = r.read_f64();
}

}  // namespace

void save_state(snapshot::SnapshotWriter& w, const NodeDayStats& s) {
  save_metrics(w, s.metrics_day);
  save_metrics(w, s.metrics_life);
  w.write_f64(s.soc_min);
  w.write_f64(s.soc_end);
  w.write_f64(s.low_soc_time.value());
  w.write_f64(s.critical_soc_time.value());
  w.write_f64(s.downtime.value());
  w.write_f64(s.health);
  w.write_f64(s.ah_discharged.value());
  w.write_i64(s.brownouts);
}

void load_state(snapshot::SnapshotReader& r, NodeDayStats& s) {
  load_metrics(r, s.metrics_day);
  load_metrics(r, s.metrics_life);
  s.soc_min = r.read_f64();
  s.soc_end = r.read_f64();
  s.low_soc_time = Seconds{r.read_f64()};
  s.critical_soc_time = Seconds{r.read_f64()};
  s.downtime = Seconds{r.read_f64()};
  s.health = r.read_f64();
  s.ah_discharged = AmpereHours{r.read_f64()};
  s.brownouts = static_cast<int>(r.read_i64());
}

void save_state(snapshot::SnapshotWriter& w, const DayResult& d) {
  w.write_u8(static_cast<std::uint8_t>(d.day_type));
  w.write_f64(d.solar_energy.value());
  w.write_f64(d.throughput_work);
  w.write_i64(d.jobs_finished);
  w.write_i64(d.migrations);
  w.write_i64(d.dvfs_transitions);
  w.write_u64(d.nodes.size());
  for (const NodeDayStats& n : d.nodes) save_state(w, n);
  d.meter.save_state(w);
  d.soc_histogram.save_state(w);
}

void load_state(snapshot::SnapshotReader& r, DayResult& d) {
  d.day_type = static_cast<solar::DayType>(r.read_u8());
  d.solar_energy = WattHours{r.read_f64()};
  d.throughput_work = r.read_f64();
  d.jobs_finished = static_cast<int>(r.read_i64());
  d.migrations = static_cast<int>(r.read_i64());
  d.dvfs_transitions = static_cast<int>(r.read_i64());
  d.nodes.assign(static_cast<std::size_t>(r.read_u64()), NodeDayStats{});
  for (NodeDayStats& n : d.nodes) load_state(r, n);
  d.meter.load_state(r);
  d.soc_histogram.load_state(r);
}

void save_state(snapshot::SnapshotWriter& w, const MonthlyProbe& p) {
  w.write_i64(p.month);
  w.write_f64(p.full_voltage);
  w.write_f64(p.capacity_fraction);
  w.write_f64(p.energy_per_cycle_wh);
  w.write_f64(p.round_trip_efficiency);
  w.write_f64(p.health);
}

void load_state(snapshot::SnapshotReader& r, MonthlyProbe& p) {
  p.month = static_cast<int>(r.read_i64());
  p.full_voltage = r.read_f64();
  p.capacity_fraction = r.read_f64();
  p.energy_per_cycle_wh = r.read_f64();
  p.round_trip_efficiency = r.read_f64();
  p.health = r.read_f64();
}

void save_state(snapshot::SnapshotWriter& w, const MultiDayResult& m) {
  w.write_u64(m.days.size());
  for (const DayResult& d : m.days) save_state(w, d);
  w.write_u64(m.monthly.size());
  for (const MonthlyProbe& p : m.monthly) save_state(w, p);
  w.write_f64(m.total_throughput);
  w.write_f64(m.mean_health_end);
  w.write_f64(m.min_health_end);
  m.soc_histogram.save_state(w);
  w.write_bool(m.projected_eol_day.has_value());
  w.write_f64(m.projected_eol_day.value_or(0.0));
}

void load_state(snapshot::SnapshotReader& r, MultiDayResult& m) {
  m.days.clear();
  const auto n_days = r.read_u64();
  m.days.reserve(static_cast<std::size_t>(n_days));
  for (std::uint64_t i = 0; i < n_days; ++i) {
    DayResult d;
    load_state(r, d);
    m.days.push_back(std::move(d));
  }
  m.monthly.assign(static_cast<std::size_t>(r.read_u64()), MonthlyProbe{});
  for (MonthlyProbe& p : m.monthly) load_state(r, p);
  m.total_throughput = r.read_f64();
  m.mean_health_end = r.read_f64();
  m.min_health_end = r.read_f64();
  m.soc_histogram.load_state(r);
  const bool has_eol = r.read_bool();
  const double eol = r.read_f64();
  m.projected_eol_day = has_eol ? std::optional<double>(eol) : std::nullopt;
}

}  // namespace baat::sim
