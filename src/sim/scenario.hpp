#pragma once

// Scenario configuration — the knobs of the prototype (§V) plus the sweep
// axes of the evaluation (§VI): policy, weather/location, server-to-battery
// ratio, planned-aging parameters.

#include <cstdint>
#include <vector>

#include "battery/bank.hpp"
#include "core/guard.hpp"
#include "core/policy.hpp"
#include "fault/fault.hpp"
#include "power/router.hpp"
#include "server/server.hpp"
#include "sim/watchdog.hpp"
#include "solar/solar_day.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/power_table.hpp"
#include "telemetry/sensor.hpp"
#include "util/units.hpp"
#include "workload/workload.hpp"

namespace baat::sim {

using util::Seconds;

/// One job to deploy during a day.
struct JobSpec {
  workload::Kind kind{};
  Seconds arrival{0.0};  ///< offset from day_start
};

struct ScenarioConfig {
  std::size_t nodes = 6;                       ///< servers, one battery node each
  battery::BankSpec bank{};                    ///< bank.units is overridden by `nodes`
  server::ServerSpec server{};
  solar::PlantSpec plant{};
  power::RouterParams router{};
  telemetry::SensorNoise sensor_noise{};
  telemetry::MetricParams metrics{};
  telemetry::SocEstimation soc_estimation = telemetry::SocEstimation::RestAnchoredCoulomb;
  core::PolicyKind policy = core::PolicyKind::EBuff;
  core::PolicyParams policy_params{};
  /// Fault-injection plan; empty (the default) is a clean run and leaves
  /// every output byte-identical to a build without the fault layer.
  fault::FaultPlan faults{};
  /// Degraded-mode telemetry guard; enabled alongside the fault plan.
  core::GuardParams guard{};
  /// Run-health watchdog (DESIGN.md §5g); on by default, cheap enough to
  /// stay on (the obs-tax perf gate enforces that).
  WatchdogParams watchdog{};

  Seconds dt{60.0};                            ///< simulation step
  Seconds control_period{util::minutes(5.0)};  ///< BAAT controller cadence
  Seconds day_start{util::hours(8.5)};         ///< "first server at 8:30 AM" (§V-B)
  Seconds day_end{util::hours(18.5)};          ///< "shut down after 6:30 PM"
  Seconds migration_pause{90.0};               ///< VM stop-and-copy downtime
  double brownout_restart_soc = 0.35;          ///< restart a downed node above this
  std::uint64_t seed = 42;
  /// Shard index inside a sharded datacenter (DESIGN.md §5h). Shard 0 draws
  /// the historical unsharded RNG streams bit-for-bit; shard i > 0 re-keys
  /// every stream on "shard-i" so shards evolve independently of how many
  /// siblings exist.
  std::size_t shard = 0;

  /// Jobs deployed each day; empty ⇒ the default six-workload mix.
  std::vector<JobSpec> daily_jobs;
  int replicas = 2;  ///< copies of each default workload when daily_jobs is empty
};

/// The default deployment: all six paper workloads × replicas, arriving
/// 20 minutes apart from day start.
std::vector<JobSpec> default_daily_jobs(int replicas);

/// Paper-prototype defaults: six nodes, 2 × 12 V 35 Ah per node (the twelve
/// batteries of Fig 11 modeled as one 24 V 35 Ah string per server),
/// 80–180 W servers, a plant normalized to the 8/6/3 kWh weather budgets.
ScenarioConfig prototype_scenario();

}  // namespace baat::sim
