#pragma once

// Run-health watchdog (DESIGN.md §5g): declarative invariants evaluated at
// tick and day boundaries of the cluster loop. Violations are recorded into
// an obs::HealthLog (trace event + lazy health.* counter + bounded incident
// list); a Fatal incident — or a fatal cumulative score — aborts the run
// with a readable report via obs::WatchdogError, which the multi-day driver
// turns into a crash flight-recorder bundle.
//
// The checks are read-only with respect to simulation state and run by
// default; their cost is a handful of compares per node per tick, gated by
// the perf harness's obs-tax bench.

#include <cstddef>
#include <vector>

#include "battery/battery.hpp"
#include "obs/health.hpp"
#include "power/router.hpp"
#include "sim/results.hpp"
#include "snapshot/serialize.hpp"

namespace baat::sim {

struct WatchdogParams {
  bool enabled = true;
  /// Slack on the SoC ∈ [0, 1] invariant (fast-math can sit a few ulps out).
  double soc_tolerance = 1e-9;
  /// Absolute per-node power-balance slack: demand must equal
  /// solar + utility + battery + unmet within this many watts.
  double energy_tolerance_w = 1e-6;
  /// SoH may *rise* by up to this much day-over-day: a full equalizing
  /// charge heals stratification (stratification_cap is 0.08 by default).
  double soh_heal_allowance = 0.09;
  /// Consecutive days of zero throughput before a stall Warn is raised.
  long stall_days = 7;
  /// Cumulative health score that aborts the run even without a single
  /// Fatal incident (Error incidents score 10 each).
  double fatal_score = 1000.0;
};

class Watchdog {
 public:
  Watchdog() = default;
  Watchdog(const WatchdogParams& params, std::size_t nodes)
      : params_(params), nodes_(nodes) {}

  [[nodiscard]] bool enabled() const { return params_.enabled; }
  [[nodiscard]] const obs::HealthLog& log() const { return log_; }
  [[nodiscard]] bool tripped() const { return tripped_; }

  /// NaN/Inf and range sentinels on the raw battery state, before the day's
  /// first kernel step — a poisoned state word must become a readable abort
  /// here, not a precondition crash deep in the tick kernel.
  void check_day_start(long day, const std::vector<battery::Battery>& batteries);

  /// Per-tick invariants: SoC range/finiteness and per-node power balance
  /// across the router (demand = solar + utility + battery + unmet).
  void check_tick(long day, const power::RouteResult& route,
                  const std::vector<battery::Battery>& batteries);

  /// Day-boundary invariants: monotone SoH (modulo the stratification heal
  /// allowance) and stall detection over consecutive zero-throughput days.
  void check_day_end(long day, const DayResult& result,
                     const std::vector<battery::Battery>& batteries);

  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  /// Record one violation; throws obs::WatchdogError once the incident is
  /// Fatal or the cumulative score crosses params_.fatal_score.
  void incident(const char* check, obs::HealthSeverity severity, long day, int node,
                double value, std::string detail);

  WatchdogParams params_;
  std::size_t nodes_ = 0;
  obs::HealthLog log_;
  std::vector<double> prev_health_;  ///< empty until the first day completes
  long stall_run_ = 0;
  bool tripped_ = false;
};

}  // namespace baat::sim
