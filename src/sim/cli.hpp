#pragma once

// Command-line front end for the simulator — the `baatsim` tool. The parser
// lives in the library so it is unit-testable; tools/baatsim.cpp is a thin
// main() around run_cli().

#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"
#include "util/logging.hpp"
#include "workload/demand.hpp"

namespace baat::sim {

struct CliOptions {
  core::PolicyKind policy = core::PolicyKind::Baat;
  std::size_t days = 30;
  double sunshine_fraction = 0.5;
  std::size_t nodes = 6;
  /// Server-to-battery capacity ratio in W/Ah; 0 keeps the prototype value.
  double watts_per_ah = 0.0;
  std::uint64_t seed = 42;
  /// Eq 7 planned cycles; 0 disables planned aging.
  double cycles_plan = 0.0;
  /// Optional CSV path for per-day results.
  std::string csv_path;
  /// Optional markdown report path.
  std::string report_path;
  bool old_fleet = false;
  bool show_help = false;
  /// Transcendental-math tier for the battery kernel. Exact (default) is
  /// bit-identical to the reference implementation; Fast swaps the aging
  /// Arrhenius/Peukert pow and exp for bounded-error polynomials.
  battery::MathMode math = battery::MathMode::Exact;
  /// Battery chemistry preset (--chemistry). The lead-acid default keeps
  /// every output byte-identical to the pre-chemistry-backend simulator.
  battery::Chemistry chemistry = battery::Chemistry::LeadAcid;
  /// Parsed --faults plan (repeatable flag; specs accumulate). Empty = clean
  /// run with byte-identical outputs to a build without the fault layer.
  fault::FaultPlan faults;

  // --- sharded datacenter -------------------------------------------------
  /// Shard count; 0 keeps the classic single-cluster engine. `--shards 1`
  /// runs the datacenter engine and stays byte-identical to the unsharded
  /// run (stdout, CSV, series, trace) — only the checkpoint container
  /// format differs (sectioned vs flat).
  std::size_t shards = 0;
  /// Worker threads stepping shards; 0 = default_sweep_jobs(). Never
  /// changes any output byte, only wall-clock time.
  std::size_t shard_workers = 0;
  /// Request-level demand model (--demand). Non-empty switches the daily
  /// workload from the fixed six-job plan to per-shard schedules derived
  /// from the model; implies datacenter mode (with one shard if --shards
  /// was not given).
  workload::DemandModel demand;

  // --- sweep mode ---------------------------------------------------------
  /// Sunshine fractions to sweep; non-empty switches run_cli into sweep
  /// mode (one multi-day simulation per fraction on the parallel engine).
  std::vector<double> sweep_sunshine;
  /// Worker threads for sweep mode; 0 = default_sweep_jobs(). The thread
  /// count never changes any output byte, only the wall-clock time.
  std::size_t jobs = 0;

  // --- checkpointing ------------------------------------------------------
  /// Write a resume snapshot every N completed days; 0 disables. Single-run
  /// mode only — sweeps checkpoint at point granularity instead.
  std::size_t checkpoint_every = 0;
  /// Directory for checkpoint files (single-run `checkpoint-day-<N>.snap`,
  /// sweep `point-<i>.ckpt`); empty keeps checkpointing off in sweep mode
  /// and means "." in single-run mode.
  std::string checkpoint_dir;
  /// Snapshot file to resume a single run from; empty = fresh run.
  std::string resume_path;

  // --- observability ------------------------------------------------------
  /// Metrics-registry JSON dump (`.csv` suffix switches to CSV). Also turns
  /// hot-path profiling on so the dump carries timer histograms.
  std::string metrics_path;
  /// Event-trace path: Chrome trace_event JSON by default, JSONL when the
  /// path ends in `.jsonl`. Enables tracing for the run.
  std::string trace_path;
  /// Trace ring capacity (events kept; older ones are dropped).
  std::size_t trace_events = obs::TraceBuffer::kDefaultCapacity;
  /// Logger threshold for the run, when given on the command line.
  std::optional<util::LogLevel> log_level;

  // --- run health / flight recorder ---------------------------------------
  /// Streamed per-day ledger/health time-series (off when empty; `.jsonl`
  /// suffix switches from columnar CSV to JSONL). In sweep mode each point
  /// writes its own `<stem>-point-<i>.<ext>` file.
  std::string series_path;
  /// Emit every Nth day of the series (downsampling for long horizons).
  long series_every = 1;
  /// Run-health watchdog; on by default, --no-health disables.
  bool health = true;
  /// Crash flight recorder; on by default, --no-blackbox disables.
  bool blackbox = true;
  /// Parent directory for `blackbox-<day>/` bundles (default '.').
  std::string blackbox_dir;
};

/// Parse argv. Throws util::PreconditionError with a readable message on a
/// bad flag or value.
CliOptions parse_cli(const std::vector<std::string>& args);

/// Human-readable usage text.
std::string cli_usage();

/// Build the scenario a CLI run describes.
ScenarioConfig scenario_from_cli(const CliOptions& options);

/// Run the simulation described by `options`, printing a summary (and the
/// per-day CSV when requested). Returns the process exit code.
int run_cli(const CliOptions& options);

}  // namespace baat::sim
