#include "sim/multiday.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>

#include "battery/chemistry_model.hpp"
#include "fault/injector.hpp"
#include "obs/blackbox.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/soh.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

namespace {

void save_probe(snapshot::SnapshotWriter& w, const battery::ProbeResult& p) {
  w.write_f64(p.full_voltage.value());
  w.write_f64(p.capacity_fraction);
  w.write_f64(p.energy_per_cycle.value());
  w.write_f64(p.round_trip_efficiency);
}

void load_probe(snapshot::SnapshotReader& r, battery::ProbeResult& p) {
  p.full_voltage = util::Volts{r.read_f64()};
  p.capacity_fraction = r.read_f64();
  p.energy_per_cycle = util::WattHours{r.read_f64()};
  p.round_trip_efficiency = r.read_f64();
}

std::string ledger_csv(const Cluster& cluster) {
  using obs::format_number;
  // Mechanism columns follow the chemistry's axis (lead-acid reproduces the
  // historical five-column header byte-for-byte).
  const battery::MechanismAxis axis =
      battery::mechanism_axis(cluster.config().bank.kind);
  std::string csv = "scope,node";
  for (std::size_t i = 0; i < axis.count; ++i) csv += std::string(",fade_") + axis.names[i];
  csv += ",fade_total,cycle_damage,efc,low_soc_dwell_s\n";
  const auto row = [&](const char* scope, const std::string& node,
                       const battery::MechanismFade& f, double damage, double efc,
                       double dwell) {
    const std::array<double, 5> slots = {f.corrosion, f.shedding, f.sulphation,
                                         f.stratification, f.water_loss};
    csv += std::string(scope) + "," + node;
    for (std::size_t i = 0; i < axis.count; ++i) csv += "," + format_number(slots[i]);
    csv += "," + format_number(f.total()) + "," + format_number(damage) + "," +
           format_number(efc) + "," + format_number(dwell) + "\n";
  };
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const battery::CellLedgerEntry t = cluster.node_ledger_total(i);
    row("total", std::to_string(i), t.fade, t.cycle_damage, t.efc, t.low_soc_dwell_s);
    const battery::CellLedgerEntry d = cluster.node_ledger_delta(i);
    row("window", std::to_string(i), d.fade, d.cycle_damage, d.efc, d.low_soc_dwell_s);
  }
  const battery::LedgerRollup roll = cluster.ledger_rollup(true);
  row("total", "cluster", roll.fade, roll.cycle_damage, roll.efc, roll.low_soc_dwell_s);
  return csv;
}

}  // namespace

void dump_cluster_blackbox(Cluster& cluster, long day, const char* reason,
                           const std::string& parent_dir, std::uint64_t config_hash) {
  try {
    std::vector<obs::BlackboxFile> files;

    std::ostringstream manifest;
    manifest << "{\"format\": 1, \"day\": " << day << ", \"reason\": "
             << obs::json_quote(reason)
             << ", \"sim_time\": " << obs::format_number(util::sim_time())
             << ", \"health_score\": "
             << obs::format_number(cluster.watchdog().log().score())
             << ", \"incidents\": " << cluster.watchdog().log().count() << "}\n";
    files.push_back({"MANIFEST.json", manifest.str()});

    files.push_back({"health.txt", cluster.watchdog().log().report(
                                       std::string("blackbox: ") + reason)});

    std::ostringstream trace;
    obs::global_trace().write_jsonl(trace);
    files.push_back({"trace.jsonl", trace.str()});
    files.push_back({"metrics.json", obs::global_registry().json()});
    files.push_back({"ledger.csv", ledger_csv(cluster)});

    // A snapshot is only well-defined at a day boundary (no live workload
    // microstate); mid-day deaths ship the bundle without one.
    try {
      snapshot::SnapshotWriter w;
      cluster.save_state(w);
      const std::vector<std::uint8_t> container =
          snapshot::snapshot_container_bytes(config_hash, w.bytes());
      files.push_back({"cluster.snap",
                       std::string(reinterpret_cast<const char*>(container.data()),
                                   container.size())});
    } catch (const snapshot::SnapshotError&) {
      // mid-day: skip the snapshot, keep the rest of the bundle
    }

    const std::string path = obs::write_blackbox_bundle(parent_dir, day, files);
    std::cerr << "[blackbox] wrote flight-recorder bundle '" << path << "' (" << reason
              << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "[blackbox] bundle write failed: " << e.what() << "\n";
  }
}


std::vector<solar::DayType> mixed_weather(std::size_t days, std::size_t sunny,
                                          std::size_t cloudy, std::size_t rainy) {
  BAAT_REQUIRE(sunny + cloudy + rainy > 0, "weather mix must be non-empty");
  std::vector<solar::DayType> pattern;
  for (std::size_t i = 0; i < sunny; ++i) pattern.push_back(solar::DayType::Sunny);
  for (std::size_t i = 0; i < cloudy; ++i) pattern.push_back(solar::DayType::Cloudy);
  for (std::size_t i = 0; i < rainy; ++i) pattern.push_back(solar::DayType::Rainy);
  std::vector<solar::DayType> seq(days);
  for (std::size_t d = 0; d < days; ++d) seq[d] = pattern[d % pattern.size()];
  return seq;
}

MultiDayResult run_multi_day(Cluster& cluster, const MultiDayOptions& options) {
  BAAT_OBS_TIMED("run_multi_day");
  BAAT_REQUIRE(options.days > 0, "must simulate at least one day");

  std::vector<solar::DayType> weather = options.weather;
  if (weather.empty()) {
    util::Rng weather_rng = util::Rng::stream(cluster.config().seed, "weather-seq");
    weather = solar::Location{options.sunshine_fraction}.sample_days(options.days,
                                                                     weather_rng);
  }
  BAAT_REQUIRE(weather.size() >= options.days, "weather sequence shorter than run");

  util::Rng solar_rng = util::Rng::stream(cluster.config().seed, "solar-days");

  MultiDayResult result;
  // The probe series feeds an online SoH estimator — the least-squares fit
  // behind the lifetime projection. A probe_stale fault repeats the previous
  // measurement instead of running a fresh one (the series still advances).
  telemetry::SohEstimator soh;
  std::optional<battery::ProbeResult> last_probe;

  SeriesWriter series;
  series.configure(options.series);

  std::size_t start_day = 0;
  const CheckpointOptions& ckpt = options.checkpoint;
  if (!ckpt.resume_path.empty()) {
    // Restore the loop exactly where the snapshot left it. Status goes to
    // stderr: stdout must stay byte-identical to the uninterrupted run.
    const std::vector<std::uint8_t> payload =
        snapshot::read_snapshot_file(ckpt.resume_path, ckpt.config_hash);
    snapshot::SnapshotReader r{payload};
    start_day = static_cast<std::size_t>(r.read_u64());
    if (start_day > options.days) {
      throw snapshot::SnapshotError("snapshot '" + ckpt.resume_path + "' has already passed day " +
                                    std::to_string(options.days) +
                                    "; nothing left to resume");
    }
    const std::vector<std::uint8_t> saved_weather = r.read_u8_vec();
    for (std::size_t d = 0; d < saved_weather.size() && d < weather.size(); ++d) {
      if (saved_weather[d] != static_cast<std::uint8_t>(weather[d])) {
        throw snapshot::SnapshotError(
            "snapshot '" + ckpt.resume_path + "' was taken under a different weather "
            "sequence (day " + std::to_string(d) + " differs); the config hash should "
            "normally catch this — check seed and sunshine options");
      }
    }
    solar_rng.load_state(r);
    soh.load_state(r);
    const bool has_probe = r.read_bool();
    battery::ProbeResult probe;
    load_probe(r, probe);
    if (has_probe) last_probe = probe;
    load_state(r, result);
    cluster.load_state(r);
    obs::global_registry().load_state(r);
    obs::global_trace().load_state(r);
    util::set_sim_time(r.read_f64());
    series.load_state(r);
    if (!r.exhausted()) {
      throw snapshot::SnapshotError("snapshot '" + ckpt.resume_path + "' carries " +
                                    std::to_string(r.remaining()) +
                                    " trailing bytes past the restored state");
    }
    std::cerr << "[checkpoint] resumed from '" << ckpt.resume_path << "' at day "
              << start_day << " of " << options.days << "\n";
  }

  // Fatal signals and uncaught exceptions land here via the crash handlers
  // (when installed): dump a flight-recorder bundle for the day being run.
  long blackbox_day = static_cast<long>(start_day);
  struct HookGuard {
    bool active;
    ~HookGuard() {
      if (active) obs::clear_crash_dump_hook();
    }
  } hook_guard{options.blackbox};
  if (options.blackbox) {
    obs::set_crash_dump_hook([&cluster, &blackbox_day, &options, &ckpt](const char* reason) {
      dump_cluster_blackbox(cluster, blackbox_day, reason, options.blackbox_dir, ckpt.config_hash);
    });
  }

  for (std::size_t d = start_day; d < options.days; ++d) {
    blackbox_day = static_cast<long>(d);
    const solar::SolarDay day{cluster.config().plant, weather[d], solar_rng.fork("day")};
    DayResult day_result;
    try {
      day_result = cluster.run_day(day);
    } catch (const std::exception& e) {
      // The watchdog tripped or the day loop died some other way: ship the
      // flight-recorder bundle, then let the error propagate untouched.
      if (options.blackbox) {
        dump_cluster_blackbox(cluster, static_cast<long>(d), e.what(), options.blackbox_dir,
                      ckpt.config_hash);
      }
      throw;
    }
    result.total_throughput += day_result.throughput_work;
    // Same-edge merge, not re-binning: re-adding bin weights at bin_lo()
    // silently dropped each day's underflow/overflow weight — exactly the
    // out-of-range low-SoC (and pegged-full) node-seconds Figs 18/19 read.
    result.soc_histogram.merge(day_result.soc_histogram);

    const bool probe_due = options.probe_every_days > 0 &&
                           (d + 1) % options.probe_every_days == 0;
    if (probe_due) {
      // Probe the unit with the largest *cumulative* throughput so the
      // monthly series tracks one physical battery, as the prototype did.
      std::size_t worst = 0;
      for (std::size_t b = 1; b < cluster.node_count(); ++b) {
        if (cluster.batteries()[b].counters().ah_discharged >
            cluster.batteries()[worst].counters().ah_discharged) {
          worst = b;
        }
      }
      MonthlyProbe mp;
      mp.month = static_cast<int>((d + 1) / options.probe_every_days);
      fault::FaultInjector* injector = cluster.injector();
      battery::ProbeResult probe;
      if (injector != nullptr && last_probe.has_value() &&
          injector->probe_is_stale(mp.month)) {
        probe = *last_probe;
      } else {
        probe = battery::run_probe(cluster.batteries()[worst]);
        last_probe = probe;
      }
      soh.add_probe(static_cast<double>(d + 1), probe.capacity_fraction);
      mp.full_voltage = probe.full_voltage.value();
      mp.capacity_fraction = probe.capacity_fraction;
      mp.energy_per_cycle_wh = probe.energy_per_cycle.value();
      mp.round_trip_efficiency = probe.round_trip_efficiency;
      mp.health = cluster.batteries()[worst].health();
      result.monthly.push_back(mp);
    }

    if (series.should_write(static_cast<long>(d))) {
      series.write_day(static_cast<long>(d), cluster, day_result);
      // Advance the attribution window so the next row reports per-window
      // deltas, not lifetime totals repeated.
      cluster.ledger_advance();
    }

    if (options.keep_days) {
      result.days.push_back(std::move(day_result));
    }

    const bool checkpoint_due = ckpt.every_days > 0 && (d + 1) % ckpt.every_days == 0 &&
                                d + 1 < options.days;
    if (checkpoint_due) {
      snapshot::SnapshotWriter w;
      w.write_u64(d + 1);
      std::vector<std::uint8_t> weather_bytes;
      weather_bytes.reserve(weather.size());
      for (solar::DayType t : weather) {
        weather_bytes.push_back(static_cast<std::uint8_t>(t));
      }
      w.write_u8_vec(weather_bytes);
      solar_rng.save_state(w);
      soh.save_state(w);
      w.write_bool(last_probe.has_value());
      save_probe(w, last_probe.value_or(battery::ProbeResult{}));
      save_state(w, result);
      cluster.save_state(w);
      obs::global_registry().save_state(w);
      obs::global_trace().save_state(w);
      w.write_f64(util::sim_time());
      series.save_state(w);

      const std::string dir = ckpt.dir.empty() ? std::string(".") : ckpt.dir;
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        throw snapshot::SnapshotError("cannot create checkpoint directory '" + dir +
                                      "': " + ec.message());
      }
      const std::string path = dir + "/checkpoint-day-" + std::to_string(d + 1) + ".snap";
      snapshot::write_snapshot_file(path, ckpt.config_hash, w.bytes());
      std::cerr << "[checkpoint] wrote '" << path << "' after day " << (d + 1) << "\n";
    }
  }

  double mean_health = 0.0;
  double min_health = 1.0;
  for (const battery::Battery& b : cluster.batteries()) {
    mean_health += b.health();
    min_health = std::min(min_health, b.health());
  }
  result.mean_health_end = mean_health / static_cast<double>(cluster.node_count());
  result.min_health_end = min_health;
  if (soh.probe_count() >= 2) result.projected_eol_day = soh.projected_eol_day();
  return result;
}

std::uint64_t scenario_fingerprint(const ScenarioConfig& cfg, const MultiDayOptions& options) {
  // Serialize every trajectory-shaping knob into a buffer and hash it. The
  // encoding only has to be stable within one format version — it is never
  // decoded, just compared.
  snapshot::SnapshotWriter w;
  w.write_u64(cfg.nodes);
  w.write_u64(cfg.seed);
  w.write_u8(static_cast<std::uint8_t>(cfg.policy));
  w.write_u8(static_cast<std::uint8_t>(cfg.soc_estimation));
  w.write_f64(cfg.dt.value());
  w.write_f64(cfg.control_period.value());
  w.write_f64(cfg.day_start.value());
  w.write_f64(cfg.day_end.value());
  w.write_f64(cfg.migration_pause.value());
  w.write_f64(cfg.brownout_restart_soc);
  w.write_i64(cfg.replicas);
  w.write_u64(cfg.daily_jobs.size());
  // Math tier bytes: 0 exact, 1 fast, 2 simd (exact/fast values unchanged so
  // pre-simd checkpoints keep their config hashes).
  w.write_u8(cfg.bank.math == battery::MathMode::Simd
                 ? 2
                 : (cfg.bank.math == battery::MathMode::Fast ? 1 : 0));
  w.write_f64(cfg.bank.chemistry.capacity_c20.value());
  w.write_i64(cfg.bank.chemistry.cells);
  w.write_f64(cfg.bank.capacity_sigma);
  w.write_f64(cfg.bank.resistance_sigma);
  w.write_f64(cfg.bank.initial_soc);
  w.write_f64(cfg.policy_params.planned.cycles_plan);
  w.write_bool(cfg.guard.enabled);
  w.write_string(cfg.faults.to_string());
  w.write_u64(options.days);
  w.write_f64(options.sunshine_fraction);
  w.write_u64(options.probe_every_days);
  w.write_u64(options.weather.size());
  for (solar::DayType t : options.weather) w.write_u8(static_cast<std::uint8_t>(t));
  // Appended only off the default so every pre-chemistry checkpoint keeps
  // its config hash; a non-default chemistry changes the hash, refusing
  // mismatched resumes before the fleet-level sentinel even loads.
  if (cfg.bank.kind != battery::Chemistry::LeadAcid) {
    w.write_u8(static_cast<std::uint8_t>(cfg.bank.kind));
  }
  // FNV-1a over the buffer, folded with the payload CRC so both byte order
  // and content contribute; never zero (0 means "unchecked").
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : w.bytes()) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  h ^= static_cast<std::uint64_t>(snapshot::crc32(w.bytes())) << 32;
  return h == 0 ? 1 : h;
}

}  // namespace baat::sim
