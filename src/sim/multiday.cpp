#include "sim/multiday.hpp"

#include <algorithm>
#include <optional>

#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "telemetry/soh.hpp"
#include "util/require.hpp"

namespace baat::sim {

std::vector<solar::DayType> mixed_weather(std::size_t days, std::size_t sunny,
                                          std::size_t cloudy, std::size_t rainy) {
  BAAT_REQUIRE(sunny + cloudy + rainy > 0, "weather mix must be non-empty");
  std::vector<solar::DayType> pattern;
  for (std::size_t i = 0; i < sunny; ++i) pattern.push_back(solar::DayType::Sunny);
  for (std::size_t i = 0; i < cloudy; ++i) pattern.push_back(solar::DayType::Cloudy);
  for (std::size_t i = 0; i < rainy; ++i) pattern.push_back(solar::DayType::Rainy);
  std::vector<solar::DayType> seq(days);
  for (std::size_t d = 0; d < days; ++d) seq[d] = pattern[d % pattern.size()];
  return seq;
}

MultiDayResult run_multi_day(Cluster& cluster, const MultiDayOptions& options) {
  BAAT_OBS_TIMED("run_multi_day");
  BAAT_REQUIRE(options.days > 0, "must simulate at least one day");

  std::vector<solar::DayType> weather = options.weather;
  if (weather.empty()) {
    util::Rng weather_rng = util::Rng::stream(cluster.config().seed, "weather-seq");
    weather = solar::Location{options.sunshine_fraction}.sample_days(options.days,
                                                                     weather_rng);
  }
  BAAT_REQUIRE(weather.size() >= options.days, "weather sequence shorter than run");

  util::Rng solar_rng = util::Rng::stream(cluster.config().seed, "solar-days");

  MultiDayResult result;
  // The probe series feeds an online SoH estimator — the least-squares fit
  // behind the lifetime projection. A probe_stale fault repeats the previous
  // measurement instead of running a fresh one (the series still advances).
  telemetry::SohEstimator soh;
  std::optional<battery::ProbeResult> last_probe;
  for (std::size_t d = 0; d < options.days; ++d) {
    const solar::SolarDay day{cluster.config().plant, weather[d], solar_rng.fork("day")};
    DayResult day_result = cluster.run_day(day);
    result.total_throughput += day_result.throughput_work;
    // Same-edge merge, not re-binning: re-adding bin weights at bin_lo()
    // silently dropped each day's underflow/overflow weight — exactly the
    // out-of-range low-SoC (and pegged-full) node-seconds Figs 18/19 read.
    result.soc_histogram.merge(day_result.soc_histogram);

    const bool probe_due = options.probe_every_days > 0 &&
                           (d + 1) % options.probe_every_days == 0;
    if (probe_due) {
      // Probe the unit with the largest *cumulative* throughput so the
      // monthly series tracks one physical battery, as the prototype did.
      std::size_t worst = 0;
      for (std::size_t b = 1; b < cluster.node_count(); ++b) {
        if (cluster.batteries()[b].counters().ah_discharged >
            cluster.batteries()[worst].counters().ah_discharged) {
          worst = b;
        }
      }
      MonthlyProbe mp;
      mp.month = static_cast<int>((d + 1) / options.probe_every_days);
      fault::FaultInjector* injector = cluster.injector();
      battery::ProbeResult probe;
      if (injector != nullptr && last_probe.has_value() &&
          injector->probe_is_stale(mp.month)) {
        probe = *last_probe;
      } else {
        probe = battery::run_probe(cluster.batteries()[worst]);
        last_probe = probe;
      }
      soh.add_probe(static_cast<double>(d + 1), probe.capacity_fraction);
      mp.full_voltage = probe.full_voltage.value();
      mp.capacity_fraction = probe.capacity_fraction;
      mp.energy_per_cycle_wh = probe.energy_per_cycle.value();
      mp.round_trip_efficiency = probe.round_trip_efficiency;
      mp.health = cluster.batteries()[worst].health();
      result.monthly.push_back(mp);
    }

    if (options.keep_days) {
      result.days.push_back(std::move(day_result));
    }
  }

  double mean_health = 0.0;
  double min_health = 1.0;
  for (const battery::Battery& b : cluster.batteries()) {
    mean_health += b.health();
    min_health = std::min(min_health, b.health());
  }
  result.mean_health_end = mean_health / static_cast<double>(cluster.node_count());
  result.min_health_end = min_health;
  if (soh.probe_count() >= 2) result.projected_eol_day = soh.projected_eol_day();
  return result;
}

}  // namespace baat::sim
