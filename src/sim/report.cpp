#include "sim/report.hpp"

#include <fstream>
#include <iomanip>
#include <map>

#include "core/lifetime.hpp"
#include "util/require.hpp"

namespace baat::sim {

namespace {

std::ostream& pct(std::ostream& out, double fraction) {
  return out << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
}

void write_runtime_section(std::ostream& out, const obs::Registry& registry,
                           const obs::TraceBuffer* trace) {
  out << "## Runtime & events\n\n";

  out << "### Counters\n\n";
  out << "| counter | value |\n|---|---|\n";
  for (const auto& [name, c] : registry.counters()) {
    if (c.value() == 0.0) continue;  // keep the table to what actually happened
    out << "| `" << name << "` | " << obs::format_number(c.value()) << " |\n";
  }
  out << "\n";

  bool profile_header = false;
  for (const auto& [name, h] : registry.histograms()) {
    if (name.rfind("profile.", 0) != 0 || h.count() == 0) continue;
    if (!profile_header) {
      out << "### Hot-path profile\n\n";
      out << "| section | calls | mean µs | max µs |\n|---|---|---|---|\n";
      profile_header = true;
    }
    out << "| `" << name << "` | " << h.count() << " | " << std::fixed
        << std::setprecision(2) << h.mean() / 1e3 << " | " << h.max() / 1e3 << " |\n";
  }
  if (profile_header) out << "\n";

  if (trace != nullptr) {
    out << "### Event summary\n\n";
    std::map<std::string, std::size_t> by_kind;
    for (const obs::TraceEvent& e : trace->events()) {
      ++by_kind[std::string(obs::event_kind_name(e.kind))];
    }
    out << "| event | count |\n|---|---|\n";
    for (const auto& [kind, count] : by_kind) {
      out << "| `" << kind << "` | " << count << " |\n";
    }
    out << "\n" << trace->size() << " events retained";
    if (trace->dropped() > 0) {
      out << " (" << trace->dropped() << " dropped; ring capacity " << trace->capacity()
          << ")";
    }
    out << ".\n\n";
  }
}

}  // namespace

void write_report(std::ostream& out, const ReportInputs& inputs) {
  BAAT_REQUIRE(inputs.config != nullptr, "report needs a scenario config");
  BAAT_REQUIRE(inputs.result != nullptr, "report needs a result");
  const ScenarioConfig& cfg = *inputs.config;
  const MultiDayResult& r = *inputs.result;

  out << "# " << inputs.title << "\n\n";

  out << "## Configuration\n\n";
  out << "| parameter | value |\n|---|---|\n";
  out << "| policy | " << core::policy_kind_name(cfg.policy) << " |\n";
  out << "| nodes | " << cfg.nodes << " |\n";
  out << "| battery | " << cfg.bank.chemistry.cells * 2 << " V / "
      << cfg.bank.chemistry.capacity_c20.value() << " Ah per node |\n";
  out << "| server | " << cfg.server.idle.value() << "-" << cfg.server.peak.value()
      << " W, " << cfg.server.cores << " cores |\n";
  if (inputs.sunshine_fraction >= 0.0) {
    out << "| sunshine fraction | " << inputs.sunshine_fraction << " |\n";
  }
  out << "| seed | " << cfg.seed << " |\n";
  if (!cfg.faults.empty()) {
    out << "| faults | `" << cfg.faults.to_string() << "` |\n";
  }
  out << "| days simulated | " << r.days_simulated() << " |\n\n";

  out << "## Outcome\n\n";
  out << "- throughput: " << std::fixed << std::setprecision(2)
      << r.total_throughput / 1e6 << " M core-seconds\n";
  out << "- fleet health: mean ";
  pct(out, r.mean_health_end) << ", min ";
  pct(out, r.min_health_end) << "\n";
  if (r.days_simulated() > 0.0 && r.min_health_end < 1.0) {
    const core::LifetimeEstimate life =
        core::extrapolate_lifetime(1.0, r.min_health_end, r.days_simulated());
    if (life.beyond_horizon) {
      out << "- worst battery projected end-of-life: beyond the "
          << std::setprecision(0) << life.days << "-day horizon\n";
    } else {
      out << "- worst battery projected end-of-life: day " << std::setprecision(0)
          << life.days << "\n";
    }
  }
  out << "\n";

  out << "## SoC distribution (node-time share)\n\n";
  out << "| bin | share |\n|---|---|\n";
  for (std::size_t b = 0; b < r.soc_histogram.bin_count(); ++b) {
    out << "| " << r.soc_histogram.bin_label(b) << " | ";
    pct(out, r.soc_histogram.fraction(b)) << " |\n";
  }
  out << "\n";

  if (!r.monthly.empty()) {
    out << "## Battery probes (worst unit)\n\n";
    out << "| month | V_full (V) | capacity | round-trip |\n|---|---|---|---|\n";
    for (const MonthlyProbe& p : r.monthly) {
      out << "| " << p.month << " | " << std::setprecision(2) << p.full_voltage
          << " | ";
      pct(out, p.capacity_fraction) << " | ";
      pct(out, p.round_trip_efficiency) << " |\n";
    }
    out << "\n";
  }

  if (!r.days.empty()) {
    out << "## Per-day summary\n\n";
    out << "| day | weather | work (Mcs) | worst Ah | low-SoC h | downtime h | "
           "migr | dvfs |\n|---|---|---|---|---|---|---|---|\n";
    for (std::size_t d = 0; d < r.days.size(); ++d) {
      const DayResult& day = r.days[d];
      out << "| " << d << " | " << solar::day_type_name(day.day_type) << " | "
          << std::setprecision(2) << day.throughput_work / 1e6 << " | "
          << std::setprecision(1)
          << day.nodes[day.worst_node()].ah_discharged.value() << " | "
          << day.worst_low_soc_time().value() / 3600.0 << " | "
          << day.total_downtime().value() / 3600.0 << " | " << day.migrations
          << " | " << day.dvfs_transitions << " |\n";
    }
    out << "\n";
  }

  if (inputs.cluster != nullptr) {
    out << "## Fleet detail\n\n";
    out << "| node | health | NAT | CF | PC-health | DDT |\n|---|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < inputs.cluster->node_count(); ++i) {
      const auto m = inputs.cluster->life_metrics(i);
      out << "| " << i << " | ";
      pct(out, inputs.cluster->batteries()[i].health()) << " | "
          << std::setprecision(4) << m.nat << " | " << std::setprecision(2) << m.cf
          << " | " << m.pc_health << " | " << m.ddt << " |\n";
    }
    out << "\n";
  }

  if (inputs.registry != nullptr) {
    write_runtime_section(out, *inputs.registry, inputs.trace);
  }

  if (!out) throw std::runtime_error("report write failed");
}

void write_report(const std::string& path, const ReportInputs& inputs) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot open " + path);
  write_report(out, inputs);
}

}  // namespace baat::sim
