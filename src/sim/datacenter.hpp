#pragma once

// Sharded datacenter simulation (DESIGN.md §5h): N self-contained Cluster
// shards — one SoA battery fleet, power router, policy, watchdog and fault
// stream each — stepped in parallel by a persistent WorkerPool and merged
// deterministically at day boundaries.
//
// Determinism contract (the PR 2 discipline, one level up):
//  * each shard permanently owns a private obs::Registry, obs::TraceBuffer
//    and log-line buffer; its Cluster binds metric handles into that
//    registry at construction and every run_day executes under an
//    ObsSinkScope installing those sinks on whichever worker thread picked
//    the shard up;
//  * after the pool joins, traces and log lines are drained into the
//    caller's global sinks in shard-index order and metric registries are
//    merged into an export registry only when asked (merge_metrics_into),
//    so every output byte is independent of the worker count and of which
//    worker ran which shard;
//  * all cross-shard reductions (DayResult merge, series rollup, probe
//    selection) run on the caller thread in shard order over IEEE-exact
//    sums, so a 1-shard datacenter reproduces the unsharded Cluster
//    pipeline byte-for-byte.
//
// Demand model: when DatacenterConfig::demand is non-empty, each shard's
// daily job plan is recomputed every morning from the request-level demand
// model (workload/demand.hpp) — a pure function of (spec, shard, day), so
// schedules survive checkpoint/resume without being serialized.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/multiday.hpp"
#include "sim/sweep.hpp"
#include "snapshot/sections.hpp"
#include "workload/demand.hpp"

namespace baat::sim {

struct DatacenterConfig {
  /// Per-shard scenario. `scenario.shard` must stay 0 — the datacenter
  /// stamps the shard index per clone. `scenario.nodes` is the per-shard
  /// node count; the datacenter totals shards × nodes.
  ScenarioConfig scenario{};
  std::size_t shards = 1;
  /// Worker threads stepping shards; 0 = default_sweep_jobs(), clamped to
  /// the shard count. Never affects any output byte.
  std::size_t workers = 0;
  /// Request-level demand model; empty keeps the scenario's fixed job plan.
  workload::DemandModel demand{};
};

class Datacenter {
 public:
  explicit Datacenter(DatacenterConfig cfg);

  [[nodiscard]] const DatacenterConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t node_count() const {
    return shards_.size() * cfg_.scenario.nodes;
  }
  [[nodiscard]] Cluster& shard(std::size_t i) { return *shards_[i]->cluster; }
  [[nodiscard]] const Cluster& shard(std::size_t i) const { return *shards_[i]->cluster; }
  /// Shard-ordered view for the series writer and other read-only walkers.
  [[nodiscard]] std::vector<const Cluster*> shard_ptrs() const;
  [[nodiscard]] long days_run() const { return day_counter_; }
  /// Shard whose run_day threw most recently (0 when none has) — the
  /// flight-recorder picks this shard's state for the blackbox bundle.
  [[nodiscard]] std::size_t last_failed_shard() const { return last_failed_shard_; }

  /// Advance every shard's solar-day stream once and return the sampled
  /// SolarDay per shard (caller thread, shard order) — the multi-day loop
  /// feeds these to run_day so the streams live in checkpointable state.
  [[nodiscard]] std::vector<solar::SolarDay> sample_solar_days(solar::DayType type);

  /// Step every shard through one simulated day in parallel and return the
  /// merged datacenter-wide result. `days` holds one solar trace per shard
  /// (sample_solar_days). If a shard throws, all shards' traces/logs are
  /// still drained in shard order, then the first failing shard's exception
  /// is rethrown with its original type (watchdog trips keep exit code 3).
  DayResult run_day(const std::vector<solar::SolarDay>& days);

  /// Convenience for tests/benches: every shard generates its own solar
  /// trace for `type` from its shard-keyed per-day stream.
  DayResult run_day(solar::DayType type);

  /// Fold every shard's metric registry into `target`, in shard order.
  /// Called once at export/blackbox time; counters add, gauges last-write-
  /// wins, histograms merge bucket-wise (obs::Registry::merge).
  void merge_metrics_into(obs::Registry& target) const;

  /// Append one "shard-i" section per shard (solar stream, metric registry,
  /// cluster state) to a sectioned checkpoint. Day-boundary only.
  void save_shard_sections(snapshot::SectionFileWriter& out) const;
  /// Restore the per-shard sections save_shard_sections wrote, in order.
  void load_shard_sections(snapshot::SectionFileReader& in);
  /// Restore the day counter after load_shard_sections (the loop's global
  /// state lives in checkpoint section 0, not in any shard).
  void resume_at_day(long day) { day_counter_ = day; }

 private:
  struct Shard {
    obs::Registry registry;
    obs::TraceBuffer trace;
    std::vector<std::pair<util::LogLevel, std::string>> log_lines;
    util::LogSink log_sink;
    util::Rng solar_rng;
    std::unique_ptr<Cluster> cluster;
    DayResult result;
    std::exception_ptr error;
    Shard(std::size_t trace_capacity, util::Rng rng)
        : trace(trace_capacity), solar_rng(rng) {}
  };

  /// Drain one shard's trace and log lines into the caller's global sinks
  /// (caller thread; invoked in shard order).
  void drain_obs(Shard& s);
  DayResult dispatch_day(const std::function<DayResult(Cluster&)>& step_shard);
  void install_demand_jobs();

  DatacenterConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  WorkerPool pool_;
  long day_counter_ = 0;
  std::size_t last_failed_shard_ = 0;
};

/// Config fingerprint for sectioned checkpoints: the scenario fingerprint
/// folded with the shard count and the canonical demand spec. Worker count
/// is deliberately excluded — resuming under a different --shard-workers
/// must succeed (and stay byte-identical).
std::uint64_t datacenter_fingerprint(const DatacenterConfig& cfg,
                                     const MultiDayOptions& options);

/// The sharded analogue of run_multi_day: same weather stream, probe
/// cadence, series cadence, blackbox hooks and checkpoint cadence, with
/// sectioned checkpoint files (snapshot/sections.hpp) whose section 0 is
/// the loop state and sections 1..N are one shard each.
MultiDayResult run_datacenter_multi_day(Datacenter& dc, const MultiDayOptions& options);

}  // namespace baat::sim
