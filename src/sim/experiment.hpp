#pragma once

// Experiment helpers shared by the bench harnesses: matched single-day
// policy comparisons (§VI-B's "most similar solar generation scenarios"
// methodology), fleet pre-aging for the "old battery" conditions, and
// lifetime estimation sweeps (Figs 14/15).

#include "core/lifetime.hpp"
#include "sim/cluster.hpp"
#include "sim/multiday.hpp"

namespace baat::sim {

/// Run one policy for one day on a fresh prototype cluster against an
/// externally fixed solar trace, so every policy sees the identical supply.
DayResult run_matched_day(const ScenarioConfig& cfg, core::PolicyKind policy,
                          const solar::SolarDay& day);

/// Age a cluster's fleet by running `days` of the given weather mix under
/// its current policy ("we regularly use the batteries and make them
/// gradually and synchronously aging", §VI-B).
void age_fleet(Cluster& cluster, std::size_t days,
               const std::vector<solar::DayType>& weather);

/// Install an identical pre-aged state on every unit — the fast path to the
/// "old battery" condition for matched experiments.
void seed_aged_fleet(Cluster& cluster, const battery::AgingState& state);

/// A representative "old" state: roughly six months of aggressive cycling
/// (health ≈ 0.88, visibly higher resistance).
battery::AgingState six_month_aged_state();

struct LifetimeSummary {
  double lifetime_days = 0.0;     ///< worst-node extrapolated service life
  double lifetime_days_mean = 0.0;  ///< fleet-mean extrapolated service life
  double mean_health_end = 1.0;
  double min_health_end = 1.0;
  double throughput = 0.0;
  double sim_days = 0.0;
};

/// Simulate `sim_days` at a location and extrapolate battery lifetime from
/// the observed fade (end-of-life at 80% health, [30]).
LifetimeSummary estimate_lifetime(const ScenarioConfig& cfg, core::PolicyKind policy,
                                  double sunshine_fraction, std::size_t sim_days);

/// Rescale the scenario to a server-to-battery capacity ratio in W/Ah
/// (Fig 15's x-axis): battery Ah = server peak / ratio.
ScenarioConfig with_server_battery_ratio(ScenarioConfig cfg, double watts_per_ah);

}  // namespace baat::sim
