#pragma once

// Streamed per-day time-series export (DESIGN.md §5g): one row per node per
// emitted day — ledger deltas by mechanism, health/SoC gauges — plus a
// cluster rollup row, appended to a columnar CSV or JSONL file as the run
// progresses. Rows are flushed per day and never accumulated beyond the
// current day's text, so a 100k-cell multi-year run exports in O(1) memory.
//
// Resume bit-identity: the emitted text also accumulates in a bounded
// in-memory buffer (per-day cluster-level rows only — it grows with days,
// not cells×ticks) that rides through checkpoints. On resume the file is
// rewritten from the restored buffer and appending continues, so an
// interrupted-and-resumed run produces a byte-identical series file even
// when the interrupted process had written rows past the checkpoint day.

#include <fstream>
#include <string>

#include "sim/cluster.hpp"
#include "sim/results.hpp"
#include "snapshot/serialize.hpp"

namespace baat::sim {

struct SeriesOptions {
  std::string path;  ///< empty = series export off
  long every = 1;    ///< emit every Nth day (downsampling)
};

class SeriesWriter {
 public:
  SeriesWriter() = default;

  /// Set destination before the run. Format is chosen by extension:
  /// ".jsonl" streams JSON objects, anything else columnar CSV.
  void configure(const SeriesOptions& options);

  [[nodiscard]] bool active() const { return !options_.path.empty(); }
  /// True when `day` (0-based, just completed) is an emission day.
  [[nodiscard]] bool should_write(long day) const {
    return active() && options_.every > 0 && (day + 1) % options_.every == 0;
  }

  /// Append the rows of one completed day; the caller advances the ledger
  /// afterwards so the next emission's deltas cover the next window.
  void write_day(long day, const Cluster& cluster, const DayResult& result);

  /// Sharded-datacenter variant: per-node rows walk the shards in shard
  /// order with *global* node labels, each row scored by its owning shard's
  /// watchdog; the rollup row sums the shard ledgers and reports the worst
  /// (minimum) shard score. At one shard this is byte-identical to the
  /// single-cluster overload. `merged` is the day's merged DayResult.
  void write_day(long day, const std::vector<const Cluster*>& shards,
                 const DayResult& merged);

  /// Checkpoint round-trip of the emitted text (not the path/cadence —
  /// those come from the CLI flags, which resume must repeat).
  void save_state(snapshot::SnapshotWriter& w) const;
  /// Restores the buffer and, when configured, rewrites the file from it so
  /// appending resumes exactly where the checkpointed run stood.
  void load_state(snapshot::SnapshotReader& r);

 private:
  void append(const std::string& text);
  void ensure_open();

  SeriesOptions options_;
  bool jsonl_ = false;
  bool header_written_ = false;
  std::ofstream out_;
  std::string emitted_;  ///< everything written so far (checkpoint payload)
};

}  // namespace baat::sim
