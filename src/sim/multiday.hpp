#pragma once

// Multi-day / multi-month simulation — the substitute for the paper's six
// months of wall-clock prototype operation. Chains daily runs over a
// weather sequence, aggregates results, and performs the monthly
// instrumented battery probes behind Figs 3–5.

#include <string>

#include "battery/probe.hpp"
#include "sim/cluster.hpp"
#include "sim/series.hpp"
#include "solar/location.hpp"

namespace baat::sim {

/// Crash-safe checkpointing of a multi-day run (DESIGN.md §5f). Checkpoints
/// are written at day boundaries — the only instants where the cluster's
/// workload microstate is empty — and capture everything the loop needs to
/// continue bit-identically: cluster state, the solar-day RNG, the SoH probe
/// series, the result accumulators and the obs registry/trace.
struct CheckpointOptions {
  /// Write a snapshot every N completed days; 0 disables periodic
  /// checkpoints (a `resume_path` alone is still honoured).
  std::size_t every_days = 0;
  /// Directory for `checkpoint-day-<N>.snap` files (created on demand).
  std::string dir;
  /// Snapshot file to restore before the loop starts; empty = fresh run.
  std::string resume_path;
  /// Scenario fingerprint stamped into written snapshots and demanded from
  /// resumed ones; 0 skips the check (tests exercising raw files).
  std::uint64_t config_hash = 0;
};

struct MultiDayOptions {
  std::size_t days = 180;
  /// Explicit weather sequence; when empty it is sampled from
  /// `sunshine_fraction` with the run's seed.
  std::vector<solar::DayType> weather;
  double sunshine_fraction = 0.5;
  /// Probe cadence for the Fig 3–5 measurements; 0 disables probing.
  std::size_t probe_every_days = 30;
  /// Keep per-day results (memory grows with days); aggregates are always kept.
  bool keep_days = true;
  CheckpointOptions checkpoint{};
  /// Streamed per-day ledger/health time-series export (off when path empty).
  SeriesOptions series{};
  /// Crash flight recorder: dump a `blackbox-<day>/` bundle when the day
  /// loop dies (watchdog trip or any uncaught exception).
  bool blackbox = true;
  /// Parent directory for blackbox bundles; empty = current directory.
  std::string blackbox_dir{};
};

MultiDayResult run_multi_day(Cluster& cluster, const MultiDayOptions& options);

/// Assemble and atomically publish a flight-recorder bundle for one cluster
/// (DESIGN.md §5g). Best-effort by design: this runs while a simulation is
/// dying, so failures go to stderr and are never thrown over the original
/// error. Shared by the single-cluster day loop and the sharded datacenter
/// loop (which dumps the failing shard).
void dump_cluster_blackbox(Cluster& cluster, long day, const char* reason,
                           const std::string& parent_dir, std::uint64_t config_hash);

/// Fingerprint of everything that shapes a run's trajectory (scenario knobs,
/// fault plan, math tier, weather/probe options). Stamped into snapshot
/// headers so resuming under a different scenario fails loudly instead of
/// continuing a subtly different simulation.
std::uint64_t scenario_fingerprint(const ScenarioConfig& cfg, const MultiDayOptions& options);

/// A repeating Sunny→Cloudy→Rainy mix with the given counts — handy for
/// matched long-run comparisons.
std::vector<solar::DayType> mixed_weather(std::size_t days, std::size_t sunny,
                                          std::size_t cloudy, std::size_t rainy);

}  // namespace baat::sim
