#pragma once

// Multi-day / multi-month simulation — the substitute for the paper's six
// months of wall-clock prototype operation. Chains daily runs over a
// weather sequence, aggregates results, and performs the monthly
// instrumented battery probes behind Figs 3–5.

#include "battery/probe.hpp"
#include "sim/cluster.hpp"
#include "solar/location.hpp"

namespace baat::sim {

struct MultiDayOptions {
  std::size_t days = 180;
  /// Explicit weather sequence; when empty it is sampled from
  /// `sunshine_fraction` with the run's seed.
  std::vector<solar::DayType> weather;
  double sunshine_fraction = 0.5;
  /// Probe cadence for the Fig 3–5 measurements; 0 disables probing.
  std::size_t probe_every_days = 30;
  /// Keep per-day results (memory grows with days); aggregates are always kept.
  bool keep_days = true;
};

MultiDayResult run_multi_day(Cluster& cluster, const MultiDayOptions& options);

/// A repeating Sunny→Cloudy→Rainy mix with the given counts — handy for
/// matched long-run comparisons.
std::vector<solar::DayType> mixed_weather(std::size_t days, std::size_t sunny,
                                          std::size_t cloudy, std::size_t rainy);

}  // namespace baat::sim
