#pragma once

// Markdown experiment reports — what an operator (or CI job) files after a
// simulation campaign: configuration, per-day table, fleet health, probe
// history, and lifetime projections, in one reviewable document.

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "sim/results.hpp"

namespace baat::sim {

struct ReportInputs {
  std::string title = "BAAT simulation report";
  const ScenarioConfig* config = nullptr;      ///< required
  const MultiDayResult* result = nullptr;      ///< required
  const Cluster* cluster = nullptr;            ///< optional: adds fleet detail
  double sunshine_fraction = -1.0;             ///< < 0 hides the line
  /// Optional: adds the "Runtime & events" section (counters, hot-path
  /// profile, event summary) from the observability layer.
  const obs::Registry* registry = nullptr;
  const obs::TraceBuffer* trace = nullptr;
};

/// Render the report as markdown. Throws util::PreconditionError if the
/// required inputs are missing.
void write_report(std::ostream& out, const ReportInputs& inputs);
void write_report(const std::string& path, const ReportInputs& inputs);

}  // namespace baat::sim
