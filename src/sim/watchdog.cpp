#include "sim/watchdog.hpp"

#include <cmath>
#include <string>

#include "util/logging.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

void Watchdog::incident(const char* check, obs::HealthSeverity severity, long day,
                        int node, double value, std::string detail) {
  obs::HealthIncident i;
  i.check = check;
  i.severity = severity;
  i.node = node;
  i.value = value;
  i.detail = std::move(detail);
  i.ts = std::max(0.0, util::sim_time());
  i.day = day;
  log_.record(std::move(i));

  if (severity == obs::HealthSeverity::Fatal || log_.score() >= params_.fatal_score) {
    tripped_ = true;
    throw obs::WatchdogError(
        log_.report("run-health watchdog aborted the simulation"));
  }
}

void Watchdog::check_day_start(long day, const std::vector<battery::Battery>& batteries) {
  if (!params_.enabled) return;
  for (std::size_t i = 0; i < batteries.size(); ++i) {
    const double soc = batteries[i].soc();
    const double temp = batteries[i].temperature().value();
    if (!std::isfinite(soc)) {
      incident("finite_state", obs::HealthSeverity::Fatal, day, static_cast<int>(i),
               soc, "battery SoC is not finite at day start");
    }
    if (!std::isfinite(temp)) {
      incident("finite_state", obs::HealthSeverity::Fatal, day, static_cast<int>(i),
               temp, "battery temperature is not finite at day start");
    }
    if (soc < -params_.soc_tolerance || soc > 1.0 + params_.soc_tolerance) {
      incident("soc_range", obs::HealthSeverity::Fatal, day, static_cast<int>(i), soc,
               "battery SoC escaped [0, 1] at day start");
    }
  }
}

void Watchdog::check_tick(long day, const power::RouteResult& route,
                          const std::vector<battery::Battery>& batteries) {
  if (!params_.enabled) return;
  for (std::size_t i = 0; i < batteries.size(); ++i) {
    const double soc = batteries[i].soc();
    if (!std::isfinite(soc)) {
      incident("finite_state", obs::HealthSeverity::Fatal, day, static_cast<int>(i),
               soc, "battery SoC became non-finite mid-day");
    }
    if (soc < -params_.soc_tolerance || soc > 1.0 + params_.soc_tolerance) {
      incident("soc_range", obs::HealthSeverity::Fatal, day, static_cast<int>(i), soc,
               "battery SoC escaped [0, 1]");
    }

    const power::NodeRoute& n = route.nodes[i];
    const double covered = n.solar_used.value() + n.utility_used.value() +
                           n.battery_delivered.value() + n.unmet.value();
    const double gap = n.demand.value() - covered;
    const double slack =
        params_.energy_tolerance_w + 1e-9 * std::fabs(n.demand.value());
    if (!std::isfinite(gap)) {
      incident("finite_state", obs::HealthSeverity::Fatal, day, static_cast<int>(i),
               gap, "router power components are not finite");
    }
    if (std::fabs(gap) > slack) {
      incident("energy_balance", obs::HealthSeverity::Error, day, static_cast<int>(i),
               gap, "node demand not covered by solar+utility+battery+unmet");
    }
  }
}

void Watchdog::check_day_end(long day, const DayResult& result,
                             const std::vector<battery::Battery>& batteries) {
  if (!params_.enabled) return;
  if (prev_health_.empty()) prev_health_.assign(batteries.size(), 1.0);
  for (std::size_t i = 0; i < batteries.size(); ++i) {
    const double h = batteries[i].health();
    if (!std::isfinite(h)) {
      incident("finite_state", obs::HealthSeverity::Fatal, day, static_cast<int>(i),
               h, "battery SoH is not finite");
    }
    // SoH is monotone non-increasing except for the stratification heal on
    // a full equalizing charge, which the allowance covers.
    if (h > prev_health_[i] + params_.soh_heal_allowance) {
      incident("soh_monotone", obs::HealthSeverity::Error, day, static_cast<int>(i),
               h - prev_health_[i], "battery SoH rose beyond the heal allowance");
    }
    prev_health_[i] = h;
  }

  if (result.throughput_work <= 0.0) {
    ++stall_run_;
    if (stall_run_ == params_.stall_days) {
      incident("stall", obs::HealthSeverity::Warn, day, -1,
               static_cast<double>(stall_run_),
               "no work delivered for " + std::to_string(stall_run_) +
                   " consecutive days");
      util::log_warn() << "watchdog: cluster stalled for " << stall_run_
                       << " consecutive days";
    }
  } else {
    stall_run_ = 0;
  }
}

void Watchdog::save_state(snapshot::SnapshotWriter& w) const {
  log_.save_state(w);
  w.write_f64_vec(prev_health_);
  w.write_i64(stall_run_);
  w.write_bool(tripped_);
}

void Watchdog::load_state(snapshot::SnapshotReader& r) {
  log_.load_state(r);
  prev_health_ = r.read_f64_vec();
  stall_run_ = static_cast<long>(r.read_i64());
  tripped_ = r.read_bool();
}

}  // namespace baat::sim
