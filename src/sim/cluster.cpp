#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "core/demand.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

namespace {
constexpr double kBrownoutWatts = 1.0;  ///< unmet power that counts as a brownout
}

Cluster::Cluster(ScenarioConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  BAAT_REQUIRE(cfg_.nodes > 0, "cluster needs at least one node");
  BAAT_REQUIRE(cfg_.dt.value() > 0.0 && cfg_.dt.value() <= 300.0,
               "dt must be in (0, 300] seconds");
  BAAT_REQUIRE(cfg_.day_start < cfg_.day_end, "day window must be non-empty");

  // Sharded datacenters re-key every stream on the shard index; shard 0
  // keeps the historical unsharded draws bit-for-bit, so a 1-shard
  // datacenter reproduces a plain Cluster exactly.
  if (cfg_.shard > 0) {
    rng_ = util::Rng::stream(cfg_.seed, "shard-" + std::to_string(cfg_.shard));
  }

  cfg_.bank.units = cfg_.nodes;
  util::Rng bank_rng = rng_.fork("bank");
  // One shared FleetState for the whole bank (same RNG draws as make_bank),
  // with a thin Battery view per node: the router batch-steps idle cells
  // through the fleet kernel while everything else keeps the object API.
  fleet_ = battery::make_fleet(cfg_.bank, bank_rng);
  batteries_ = battery::fleet_views(*fleet_);

  // Fault layer: the injector exists only when the plan is non-empty, so a
  // clean run takes exactly the code paths (and RNG draws) it always has.
  if (!cfg_.faults.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(cfg_.faults, cfg_.seed,
                                                       cfg_.nodes, cfg_.shard);
    injector_->apply_bank_faults(batteries_, cfg_.bank);
  }
  guard_ = core::TelemetryGuard{cfg_.guard, cfg_.nodes};
  watchdog_ = Watchdog{cfg_.watchdog, cfg_.nodes};

  telemetry::PowerTableParams table_params;
  table_params.chemistry = cfg_.bank.chemistry;
  table_params.ocv_curve = cfg_.bank.ocv;
  table_params.estimation = cfg_.soc_estimation;
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    servers_.emplace_back(cfg_.server);
    life_tables_.emplace_back(table_params);
    day_tables_.emplace_back(table_params);
    sensors_.emplace_back(cfg_.sensor_noise, rng_.fork("sensor"));
  }

  if (cfg_.daily_jobs.empty()) cfg_.daily_jobs = default_daily_jobs(cfg_.replicas);
  std::stable_sort(cfg_.daily_jobs.begin(), cfg_.daily_jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });

  charge_priority_.resize(cfg_.nodes);
  std::iota(charge_priority_.begin(), charge_priority_.end(), std::size_t{0});

  policy_ = core::make_policy(cfg_.policy, cfg_.policy_params);

  obs::Registry& reg = obs::global_registry();
  obs_.jobs_deployed = &reg.counter("sim.jobs_deployed");
  obs_.deploy_retries = &reg.counter("sim.vm_deploy_retries");
  obs_.low_soc_ticks = &reg.counter("battery.low_soc_ticks");
  obs_.critical_soc_ticks = &reg.counter("battery.critical_soc_ticks");
  obs_.brownouts = &reg.counter("sim.brownouts");
  obs_.migrations = &reg.counter("sim.migrations");
  obs_.dvfs_transitions = &reg.counter("sim.dvfs_transitions");
  obs_.days_run = &reg.counter("sim.days_run");
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    // Label by *global* node index: per-shard registries are merged into
    // one export, and shard-local labels would alias every shard's node 0
    // onto the same gauge (last-write-wins would silently drop data).
    const std::string label = std::to_string(cfg_.shard * cfg_.nodes + i);
    obs_.node_soc.push_back(&reg.gauge("node.soc", label));
    obs_.node_health.push_back(&reg.gauge("node.health", label));
  }
  node_low_soc_.assign(cfg_.nodes, false);
  node_eol_seen_.assign(cfg_.nodes, false);
}

void Cluster::set_policy(core::PolicyKind kind) {
  obs::emit(obs::EventKind::PolicySwitch, -1, static_cast<double>(day_counter_),
            std::string(core::policy_kind_name(kind)));
  cfg_.policy = kind;
  policy_ = core::make_policy(kind, cfg_.policy_params);
  // Reset router hints a previous policy may have installed.
  std::iota(charge_priority_.begin(), charge_priority_.end(), std::size_t{0});
  charge_priority_explicit_ = false;
  discharge_floor_.clear();
}

void Cluster::set_daily_jobs(std::vector<JobSpec> jobs) {
  BAAT_REQUIRE(vms_.empty() && pending_jobs_.empty(),
               "daily jobs can only change at a day boundary");
  BAAT_REQUIRE(!jobs.empty(), "daily job plan must not be empty");
  cfg_.daily_jobs = std::move(jobs);
  std::stable_sort(cfg_.daily_jobs.begin(), cfg_.daily_jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });
}

void Cluster::save_state(snapshot::SnapshotWriter& w) const {
  if (!vms_.empty() || !pending_jobs_.empty()) {
    throw snapshot::SnapshotError(
        "cluster snapshot requested mid-day: VMs or queued jobs are still "
        "live; snapshots are only taken at day boundaries");
  }
  rng_.save_state(w);
  fleet_->save_state(w);
  w.write_u64(servers_.size());
  for (const server::Server& s : servers_) s.save_state(w);
  w.write_u64(life_tables_.size());
  for (const telemetry::PowerTable& t : life_tables_) t.save_state(w);
  for (const telemetry::PowerTable& t : day_tables_) t.save_state(w);
  for (const telemetry::BatterySensor& s : sensors_) s.save_state(w);
  w.write_bool(injector_ != nullptr);
  if (injector_ != nullptr) injector_->save_state(w);
  guard_.save_state(w);
  policy_->save_state(w);
  w.write_u64_vec(std::vector<std::uint64_t>(charge_priority_.begin(), charge_priority_.end()));
  w.write_bool(charge_priority_explicit_);
  w.write_f64_vec(discharge_floor_);
  w.write_i64(next_vm_id_);
  w.write_i64(day_counter_);
  w.write_bool_vec(node_low_soc_);
  w.write_bool_vec(node_eol_seen_);
  watchdog_.save_state(w);
}

void Cluster::load_state(snapshot::SnapshotReader& r) {
  rng_.load_state(r);
  fleet_->load_state(r);
  const auto n_servers = static_cast<std::size_t>(r.read_u64());
  if (n_servers != servers_.size()) {
    throw snapshot::SnapshotError("cluster snapshot covers " + std::to_string(n_servers) +
                                  " servers but the scenario builds " +
                                  std::to_string(servers_.size()));
  }
  for (server::Server& s : servers_) s.load_state(r);
  const auto n_tables = static_cast<std::size_t>(r.read_u64());
  if (n_tables != life_tables_.size()) {
    throw snapshot::SnapshotError("cluster snapshot covers " + std::to_string(n_tables) +
                                  " telemetry tables but the scenario builds " +
                                  std::to_string(life_tables_.size()));
  }
  for (telemetry::PowerTable& t : life_tables_) t.load_state(r);
  for (telemetry::PowerTable& t : day_tables_) t.load_state(r);
  for (telemetry::BatterySensor& s : sensors_) s.load_state(r);
  const bool had_injector = r.read_bool();
  if (had_injector != (injector_ != nullptr)) {
    throw snapshot::SnapshotError(
        "cluster snapshot and scenario disagree on whether a fault plan is "
        "active; resume with the same --faults spec");
  }
  if (injector_ != nullptr) injector_->load_state(r);
  guard_.load_state(r);
  policy_->load_state(r);
  const std::vector<std::uint64_t> prio = r.read_u64_vec();
  if (prio.size() != charge_priority_.size()) {
    throw snapshot::SnapshotError("cluster snapshot charge priority covers " +
                                  std::to_string(prio.size()) + " nodes, scenario builds " +
                                  std::to_string(charge_priority_.size()));
  }
  charge_priority_.assign(prio.begin(), prio.end());
  charge_priority_explicit_ = r.read_bool();
  discharge_floor_ = r.read_f64_vec();
  next_vm_id_ = static_cast<workload::VmId>(r.read_i64());
  day_counter_ = static_cast<long>(r.read_i64());
  node_low_soc_ = r.read_bool_vec();
  node_eol_seen_ = r.read_bool_vec();
  if (node_low_soc_.size() != cfg_.nodes || node_eol_seen_.size() != cfg_.nodes) {
    throw snapshot::SnapshotError("cluster snapshot per-node latches disagree with the "
                                  "scenario's node count");
  }
  watchdog_.load_state(r);
}

battery::CellLedgerEntry Cluster::node_ledger_delta(std::size_t node) const {
  BAAT_REQUIRE(node < cfg_.nodes, "node index out of range");
  return fleet_->ledger_delta(node);
}

battery::CellLedgerEntry Cluster::node_ledger_total(std::size_t node) const {
  BAAT_REQUIRE(node < cfg_.nodes, "node index out of range");
  return fleet_->ledger_total(node);
}

battery::LedgerRollup Cluster::ledger_rollup(bool lifetime_totals) const {
  battery::LedgerRollup roll;
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    roll.add(lifetime_totals ? fleet_->ledger_total(i) : fleet_->ledger_delta(i));
  }
  return roll;
}

void Cluster::ledger_advance() { fleet_->ledger_advance(); }

telemetry::AgingMetrics Cluster::life_metrics(std::size_t node) const {
  BAAT_REQUIRE(node < life_tables_.size(), "node index out of range");
  return telemetry::compute_metrics(life_tables_[node], cfg_.metrics);
}

Cluster::VmRecord* Cluster::find_vm(workload::VmId id) {
  const auto it = std::find_if(vms_.begin(), vms_.end(),
                               [id](const VmRecord& r) { return r.vm.id() == id; });
  return it == vms_.end() ? nullptr : &*it;
}

core::PolicyContext Cluster::build_context(util::Seconds now,
                                           const power::RouteResult* last_route,
                                           util::Watts solar_now) {
  core::PolicyContext ctx;
  ctx.now = now;
  ctx.time_of_day = util::Seconds{std::fmod(now.value(), 86400.0)};
  ctx.solar_now = solar_now;
  if (injector_ != nullptr) {
    // The controller reads the plant meter, not the sun: glitch it.
    ctx.solar_now = util::Watts{std::max(
        0.0, solar_now.value() * injector_->meter_scale(-1, now))};
  }
  ctx.nodes.resize(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    core::NodeView& n = ctx.nodes[i];
    n.index = i;
    n.powered_on = servers_[i].powered_on();
    n.soc = life_tables_[i].estimated_soc();
    if (guard_.enabled()) {
      // Staleness is judged by the newest sensor sample behind the estimate
      // (stuck/stale injections deliver old timestamps, so it lags).
      const auto& hist = life_tables_[i].history();
      const util::Seconds reading_time = hist.empty() ? now : hist.back().time;
      n.soc = guard_.filter_soc(i, n.soc, reading_time, now);
    }
    n.metrics = telemetry::compute_metrics(day_tables_[i], cfg_.metrics);
    n.metrics_life = telemetry::compute_metrics(life_tables_[i], cfg_.metrics);
    n.cores_free = servers_[i].cores_free();
    n.mem_free_gb = servers_[i].mem_free_gb();
    n.dvfs_level = servers_[i].dvfs_level();
    n.dvfs_top = servers_[i].spec().dvfs.top();
    n.server_power = servers_[i].power_now();
    if (last_route != nullptr) {
      n.battery_draw = last_route->nodes[i].battery_delivered;
    }
    if (injector_ != nullptr) {
      // Per-node meter glitches corrupt what the controller *reads*, never
      // what physically flowed.
      const double m = injector_->meter_scale(static_cast<int>(i), now);
      n.server_power = util::Watts{std::max(0.0, n.server_power.value() * m)};
      n.battery_draw = util::Watts{std::max(0.0, n.battery_draw.value() * m)};
    }

    // P_threshold of Fig 9: the largest load power the battery can sustain
    // for the 2-minute reserve window, from the controller's SoC estimate.
    const battery::Battery& bat = batteries_[i];
    const double ah_est = n.soc * bat.nameplate().value();
    const double window_h = cfg_.policy_params.slowdown.reserve_window.value() / 3600.0;
    const double i_by_charge = window_h > 0.0 ? ah_est / window_h : 0.0;
    const double i_sus = std::min(bat.max_discharge_current().value(), i_by_charge);
    n.sustainable_reserve_power =
        util::Watts{bat.chemistry().nominal_voltage().value() * i_sus *
                    cfg_.router.inverter_efficiency};

    for (const server::HostedVm& h : servers_[i].hosted()) {
      const auto it = std::find_if(vms_.begin(), vms_.end(),
                                   [&h](const VmRecord& r) { return r.vm.id() == h.vm; });
      BAAT_INVARIANT(it != vms_.end(), "hosted VM missing from registry");
      core::VmView view;
      view.id = h.vm;
      view.kind = it->vm.kind();
      view.cores = h.cores;
      view.mem_gb = h.mem_gb;
      view.migratable = it->vm.migratable();
      view.demand = core::profile_for(it->vm.spec(), cfg_.server);
      n.vms.push_back(view);
    }
  }
  return ctx;
}

bool Cluster::deploy_job(const JobSpec& job) {
  const workload::Spec spec = workload::spec_for(job.kind);
  const core::PolicyContext ctx = build_context(
      util::Seconds{static_cast<double>(day_counter_) * 86400.0 + job.arrival.value() +
                    cfg_.day_start.value()},
      nullptr);
  const core::DemandProfile demand = core::profile_for(spec, cfg_.server);
  const auto target = policy_->place_vm(ctx, spec.cores, spec.mem_gb, demand);
  if (!target) return false;
  const workload::VmId id = next_vm_id_++;
  const double phase = rng_.uniform(0.0, spec.period.value());
  vms_.push_back(VmRecord{workload::Vm{id, job.kind, phase, rng_.fork("vm")}, *target, 0.0});
  servers_[*target].attach(id, spec.cores, spec.mem_gb);
  obs_.jobs_deployed->inc();
  obs::emit(obs::EventKind::JobDeploy, static_cast<int>(*target),
            static_cast<double>(id), std::string(workload::kind_name(job.kind)));
  return true;
}

void Cluster::apply_actions(const core::Actions& actions, DayResult& result) {
  for (const core::DvfsAction& a : actions.dvfs) {
    if (a.node >= servers_.size()) continue;
    if (a.level < 0 || a.level >= servers_[a.node].spec().dvfs.levels()) continue;
    if (servers_[a.node].dvfs_level() != a.level) {
      servers_[a.node].set_dvfs_level(a.level);
      ++result.dvfs_transitions;
      obs_.dvfs_transitions->inc();
      obs::emit(obs::EventKind::Dvfs, static_cast<int>(a.node),
                static_cast<double>(a.level), a.cause);
    }
  }

  for (const core::MigrationAction& m : actions.migrations) {
    VmRecord* rec = find_vm(m.vm);
    if (rec == nullptr || rec->host != m.from || m.to >= servers_.size()) continue;
    if (!rec->vm.migratable()) continue;
    const workload::Spec& spec = rec->vm.spec();
    if (!servers_[m.to].can_host(spec.cores, spec.mem_gb)) continue;
    servers_[m.from].detach(m.vm);
    servers_[m.to].attach(m.vm, spec.cores, spec.mem_gb);
    rec->host = m.to;
    rec->vm.start_migration(cfg_.migration_pause);
    ++result.migrations;
    obs_.migrations->inc();
    std::string detail = "to node " + std::to_string(m.to);
    if (m.cause[0] != '\0') detail += std::string(" (") + m.cause + ")";
    obs::emit(obs::EventKind::Migration, static_cast<int>(m.from),
              static_cast<double>(m.vm), detail);
  }

  if (actions.charge_priority.size() == cfg_.nodes) {
    // Accept only a valid permutation.
    std::vector<bool> seen(cfg_.nodes, false);
    bool ok = true;
    for (std::size_t i : actions.charge_priority) {
      if (i >= cfg_.nodes || seen[i]) {
        ok = false;
        break;
      }
      seen[i] = true;
    }
    if (ok) {
      if (!charge_priority_explicit_ || charge_priority_ != actions.charge_priority) {
        // Most-favoured node first in the detail string.
        std::string order;
        for (const std::size_t i : actions.charge_priority) {
          if (!order.empty()) order += ',';
          order += std::to_string(i);
        }
        obs::emit(obs::EventKind::ChargePriority,
                  static_cast<int>(actions.charge_priority.front()), 0.0, order);
      }
      charge_priority_ = actions.charge_priority;
      charge_priority_explicit_ = true;
    }
  }

  if (actions.discharge_floor_soc.size() == cfg_.nodes) {
    if (discharge_floor_ != actions.discharge_floor_soc) {
      const auto worst = std::max_element(actions.discharge_floor_soc.begin(),
                                          actions.discharge_floor_soc.end());
      obs::emit(obs::EventKind::DischargeFloor,
                static_cast<int>(worst - actions.discharge_floor_soc.begin()), *worst);
    }
    discharge_floor_ = actions.discharge_floor_soc;
  }
}

DayResult Cluster::run_day(solar::DayType type) {
  std::string stream_name = "solar-day-" + std::string(solar::day_type_name(type));
  if (cfg_.shard > 0) stream_name += "-shard-" + std::to_string(cfg_.shard);
  util::Rng day_rng = util::Rng::stream(cfg_.seed, stream_name);
  for (long i = 0; i <= day_counter_; ++i) day_rng.next();
  return run_day(solar::SolarDay{cfg_.plant, type, day_rng});
}

DayResult Cluster::run_day(const solar::SolarDay& day) {
  BAAT_OBS_TIMED("cluster_run_day");
  util::set_sim_time(static_cast<double>(day_counter_) * 86400.0);
  obs::emit(obs::EventKind::DayStart, -1, static_cast<double>(day_counter_),
            std::string(solar::day_type_name(day.type())));

  if (injector_ != nullptr) injector_->begin_day(day_counter_, batteries_);
  // Day-start sentinels run before the first kernel step: a poisoned state
  // word must become a readable watchdog abort, not a precondition crash.
  watchdog_.check_day_start(day_counter_, batteries_);

  DayResult result;
  result.day_type = day.type();
  result.solar_energy = day.daily_energy();
  result.nodes.resize(cfg_.nodes);

  // Fresh per-day power tables: "the logs contain ... aging metrics
  // information of six battery nodes" recorded per experiment day (§VI-B).
  telemetry::PowerTableParams table_params;
  table_params.chemistry = cfg_.bank.chemistry;
  table_params.ocv_curve = cfg_.bank.ocv;
  table_params.estimation = cfg_.soc_estimation;
  day_tables_.assign(cfg_.nodes, telemetry::PowerTable{table_params});

  std::vector<double> soc_min(cfg_.nodes, 1.0);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) soc_min[i] = batteries_[i].soc();

  std::size_t next_job = 0;
  const double dt = cfg_.dt.value();
  const auto ticks = static_cast<long>(86400.0 / dt);
  double next_control = cfg_.day_start.value();
  power::RouteResult last_route;
  bool window_open = false;

  for (long k = 0; k < ticks; ++k) {
    const double tod = static_cast<double>(k) * dt;
    const util::Seconds now{static_cast<double>(day_counter_) * 86400.0 + tod};
    util::set_sim_time(now.value());
    const bool in_window = tod >= cfg_.day_start.value() && tod < cfg_.day_end.value();

    // Physical PV feed this tick — the fault layer can drop or derate it.
    util::Watts solar_now = day.power(util::Seconds{tod});
    if (injector_ != nullptr) {
      solar_now = util::Watts{solar_now.value() *
                              injector_->solar_scale(day_counter_, util::Seconds{tod})};
    }

    // --- day window transitions -------------------------------------------
    if (in_window && !window_open) {
      window_open = true;
      for (auto& s : servers_) s.power_on();
    }
    if (!in_window && window_open) {
      // Day end: retire the day's VMs and shut the servers down (§V-B).
      window_open = false;
      for (VmRecord& r : vms_) {
        result.throughput_work += r.vm.progress_work();
        if (r.vm.state() == workload::VmState::Finished) ++result.jobs_finished;
        servers_[r.host].detach(r.vm.id());
      }
      vms_.clear();
      pending_jobs_.clear();
      for (auto& s : servers_) s.power_off();
    }

    if (in_window) {
      // --- job arrivals ------------------------------------------------------
      // Queue semantics: a job that cannot be placed yet (capacity
      // fragmentation) waits and is retried as earlier batches finish.
      if (!pending_jobs_.empty()) {
        std::vector<JobSpec> still_pending;
        for (const JobSpec& job : pending_jobs_) {
          if (!deploy_job(job)) {
            obs_.deploy_retries->inc();
            still_pending.push_back(job);
          }
        }
        pending_jobs_ = std::move(still_pending);
      }
      while (next_job < cfg_.daily_jobs.size() &&
             cfg_.daily_jobs[next_job].arrival.value() <= tod - cfg_.day_start.value()) {
        if (!deploy_job(cfg_.daily_jobs[next_job])) {
          obs::emit(obs::EventKind::JobQueued, -1,
                    static_cast<double>(pending_jobs_.size() + 1),
                    std::string(workload::kind_name(cfg_.daily_jobs[next_job].kind)));
          pending_jobs_.push_back(cfg_.daily_jobs[next_job]);
        }
        ++next_job;
      }

      // --- control tick -------------------------------------------------------
      if (tod >= next_control) {
        next_control += cfg_.control_period.value();
        const core::PolicyContext ctx =
            build_context(now, k > 0 ? &last_route : nullptr, solar_now);
        const core::Actions actions = policy_->on_control_tick(ctx);
        core::record_actions(actions);
        apply_actions(actions, result);
      }
    }

    // --- VM demand sampling ---------------------------------------------------
    for (VmRecord& r : vms_) {
      r.last_util = r.vm.demand_utilization(cfg_.dt);
      if (servers_[r.host].hosts(r.vm.id())) {
        servers_[r.host].set_demand(r.vm.id(), r.last_util);
      }
    }

    // --- power routing ----------------------------------------------------------
    demands_.assign(cfg_.nodes, util::Watts{0.0});
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
      demands_[i] = in_window ? servers_[i].power_now() : util::Watts{0.0};
    }
    power::RouterParams router = cfg_.router;
    router.charge_allocation = charge_priority_explicit_
                                   ? power::ChargeAllocation::PriorityOrder
                                   : power::ChargeAllocation::Proportional;
    power::route_power_into(solar_now, demands_, batteries_, charge_priority_, router,
                            cfg_.dt, discharge_floor_, last_route, router_scratch_);
    watchdog_.check_tick(day_counter_, last_route, batteries_);

    // --- brownout / restart ----------------------------------------------------
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
      server::Server& srv = servers_[i];
      if (srv.powered_on() && last_route.nodes[i].unmet.value() > kBrownoutWatts) {
        srv.power_off();
        ++result.nodes[i].brownouts;
        obs_.brownouts->inc();
        obs::emit(obs::EventKind::Brownout, static_cast<int>(i),
                  last_route.nodes[i].unmet.value());
        util::log_warn() << "node " << i << " brownout: "
                         << last_route.nodes[i].unmet.value() << " W unmet";
        for (VmRecord& r : vms_) {
          if (r.host == i) r.vm.pause();
        }
      } else if (!srv.powered_on() && in_window &&
                 batteries_[i].soc() >=
                     std::max(cfg_.brownout_restart_soc,
                              discharge_floor_.empty() ? 0.0
                                                       : discharge_floor_[i] + 0.05)) {
        srv.power_on();
        obs::emit(obs::EventKind::NodeRestart, static_cast<int>(i), batteries_[i].soc());
        for (VmRecord& r : vms_) {
          if (r.host == i) r.vm.resume();
        }
      }
    }

    // --- telemetry ---------------------------------------------------------------
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
      telemetry::SensorReading reading =
          sensors_[i].read(batteries_[i], last_route.nodes[i].battery_current, now);
      if (injector_ != nullptr) reading = injector_->perturb_reading(i, reading);
      life_tables_[i].record(reading, cfg_.dt);
      day_tables_[i].record(reading, cfg_.dt);
    }

    // --- work grants ----------------------------------------------------------------
    for (VmRecord& r : vms_) {
      const server::Server& srv = servers_[r.host];
      if (!srv.powered_on()) continue;
      r.vm.grant(r.last_util, srv.freq_factor(), cfg_.dt);
    }

    // --- observer ---------------------------------------------------------------
    if (observer_) {
      TickObservation obs;
      obs.time_of_day = util::Seconds{tod};
      obs.solar = solar_now;
      double total_demand = 0.0;
      for (const util::Watts& d : demands_) total_demand += d.value();
      obs.total_demand = util::Watts{total_demand};
      obs.route = &last_route;
      obs.batteries = &batteries_;
      obs.day_tables = &day_tables_;
      observer_(obs);
    }

    // --- per-tick stats ----------------------------------------------------------------
    result.meter.add(last_route, cfg_.dt);
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
      const double soc = batteries_[i].soc();
      soc_min[i] = std::min(soc_min[i], soc);
      result.soc_histogram.add(soc * 100.0, dt);
      if (soc < 0.40) {
        result.nodes[i].low_soc_time += cfg_.dt;
        obs_.low_soc_ticks->inc();
        if (!node_low_soc_[i]) {
          node_low_soc_[i] = true;
          obs::emit(obs::EventKind::LowSocEnter, static_cast<int>(i), soc);
        }
      } else if (node_low_soc_[i]) {
        node_low_soc_[i] = false;
        obs::emit(obs::EventKind::LowSocExit, static_cast<int>(i), soc);
      }
      if (soc < 0.15) {
        result.nodes[i].critical_soc_time += cfg_.dt;
        obs_.critical_soc_ticks->inc();
      }
      if (in_window && !servers_[i].powered_on()) result.nodes[i].downtime += cfg_.dt;
    }
  }

  // In case the loop ended with the window still open (day_end == 24 h).
  if (window_open) {
    for (VmRecord& r : vms_) {
      result.throughput_work += r.vm.progress_work();
      if (r.vm.state() == workload::VmState::Finished) ++result.jobs_finished;
      servers_[r.host].detach(r.vm.id());
    }
    vms_.clear();
    pending_jobs_.clear();
    for (auto& s : servers_) s.power_off();
  }

  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    NodeDayStats& n = result.nodes[i];
    n.metrics_day = telemetry::compute_metrics(day_tables_[i], cfg_.metrics);
    n.metrics_life = telemetry::compute_metrics(life_tables_[i], cfg_.metrics);
    n.soc_min = soc_min[i];
    n.soc_end = batteries_[i].soc();
    n.health = batteries_[i].health();
    n.ah_discharged = day_tables_[i].ah_discharged();

    obs_.node_soc[i]->set(n.soc_end);
    obs_.node_health[i]->set(n.health);
    if (batteries_[i].end_of_life() && !node_eol_seen_[i]) {
      node_eol_seen_[i] = true;
      obs::emit(obs::EventKind::BatteryEol, static_cast<int>(i), n.health);
      util::log_warn() << "node " << i << " battery reached end of life (health "
                       << n.health << ")";
    }
  }

  watchdog_.check_day_end(day_counter_, result, batteries_);

  obs_.days_run->inc();
  obs::emit(obs::EventKind::DayEnd, -1, result.throughput_work);
  ++day_counter_;
  util::set_sim_time(static_cast<double>(day_counter_) * 86400.0);
  return result;
}

}  // namespace baat::sim
