#pragma once

// Deterministic parallel scenario-sweep engine. The paper's headline
// results (Figs 13–17, Table 1) are grids of policy × sunshine × seed, and
// every point is an independent Cluster simulation: no shared RNG (streams
// derive from util::Rng::stream(seed, name)), no shared mutable state once
// the obs layer runs on per-thread sinks. run_sweep() executes a job list
// on a fixed-size worker pool and slots every result by job index, so the
// output — typed results, merged metrics, merged trace — is byte-identical
// whether it ran on 1 thread or 16, in whatever completion order.
//
// Concurrency contract (see DESIGN.md "Parallel sweeps"):
//  * per job: a private obs::Registry, obs::TraceBuffer and log capture,
//    installed as thread-local overrides for the duration of the job, plus
//    the thread-local simulated clock;
//  * shared read-only: the enable flags (tracing/profiling/log level) and
//    anything captured by const reference in the job closures;
//  * at join: job registries are merged into the caller's active registry,
//    job traces into the caller's active trace, and job log lines replayed
//    to the caller's log sink — all in job-index order.

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snapshot/serialize.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"

namespace baat::sim {

struct SweepOptions {
  /// Worker threads; 0 means default_sweep_jobs() (BAAT_JOBS env override,
  /// else hardware concurrency). 1 runs inline on the calling thread.
  std::size_t jobs = 0;
  /// Fold per-job metrics/trace into the caller's obs sinks at join.
  bool merge_obs = true;
  /// Ring capacity for each job's private trace buffer.
  std::size_t trace_capacity = obs::TraceBuffer::kDefaultCapacity;
  /// Job-granular checkpointing (DESIGN.md §5f): when non-empty, each job
  /// with a `save_result` callback commits `<dir>/<name>.ckpt` after it
  /// succeeds, and a job with a `restore_result` callback whose file is
  /// present and valid is *skipped* — its result is restored instead of
  /// recomputed. A corrupt, truncated or hash-mismatched file is warned
  /// about on stderr, ignored, and overwritten by the re-run. Restored jobs
  /// contribute no metrics/trace/log lines (no work ran).
  std::string checkpoint_dir;
  /// Fingerprint stamped into job checkpoint files and demanded back on
  /// restore; 0 skips the check.
  std::uint64_t config_hash = 0;
};

struct SweepJob {
  /// Label carried into the result (and error messages). Doubles as the
  /// checkpoint file stem, so it must be filesystem-safe when
  /// SweepOptions::checkpoint_dir is used.
  std::string name;
  /// The work. Runs with the job's private obs sinks installed; anything it
  /// captures must be immutable or owned by the job.
  std::function<void()> work;
  /// Serialize the job's externally visible result after `work` succeeded.
  /// Optional; required for the job to write a checkpoint.
  std::function<void(snapshot::SnapshotWriter&)> save_result;
  /// Restore the result `save_result` wrote, instead of running `work`.
  /// Optional; required for the job to resume from a checkpoint.
  std::function<void(snapshot::SnapshotReader&)> restore_result;
};

struct SweepResult {
  std::size_t index = 0;
  std::string name;
  bool ok = false;
  /// The job was skipped: its result was restored from a checkpoint file.
  bool resumed = false;
  /// Exception message when !ok.
  std::string error;
  /// The job's private metrics; already folded into the caller's registry
  /// when SweepOptions::merge_obs is set.
  obs::Registry metrics;
  /// The job's trace events (oldest first), when tracing was enabled.
  std::vector<obs::TraceEvent> trace;
  /// Formatted log lines the job emitted, in emission order; already
  /// replayed to the caller's sink when SweepOptions::merge_obs is set.
  std::vector<std::pair<util::LogLevel, std::string>> log_lines;
};

/// Worker count used when SweepOptions::jobs == 0: the BAAT_JOBS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency().
std::size_t default_sweep_jobs();

/// Run every job, slotting results by job index. Job exceptions are
/// captured per result, never thrown. Deterministic: results, merged
/// metrics and merged traces do not depend on the worker count.
std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& options = {});

/// Typed convenience over run_sweep: evaluate fn(0) … fn(n-1) in parallel
/// and return the values slotted by index. fn must be safe to call
/// concurrently (each call touching only its own state); any job failure
/// rethrows as util::PreconditionError after the pool joins.
template <typename Fn>
auto sweep_map(std::size_t n, Fn&& fn, const SweepOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using T = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<T>,
                "sweep_map results are pre-allocated and need a default state");
  std::vector<T> out(n);
  std::vector<SweepJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(SweepJob{"point-" + std::to_string(i),
                            [&out, &fn, i] { out[i] = fn(i); }});
  }
  const std::vector<SweepResult> results = run_sweep(std::move(jobs), options);
  for (const SweepResult& r : results) {
    if (!r.ok) {
      throw util::PreconditionError("sweep job '" + r.name + "' failed: " + r.error);
    }
  }
  return out;
}

}  // namespace baat::sim
