#pragma once

// Deterministic parallel scenario-sweep engine. The paper's headline
// results (Figs 13–17, Table 1) are grids of policy × sunshine × seed, and
// every point is an independent Cluster simulation: no shared RNG (streams
// derive from util::Rng::stream(seed, name)), no shared mutable state once
// the obs layer runs on per-thread sinks. run_sweep() executes a job list
// on a fixed-size worker pool and slots every result by job index, so the
// output — typed results, merged metrics, merged trace — is byte-identical
// whether it ran on 1 thread or 16, in whatever completion order.
//
// Concurrency contract (see DESIGN.md "Parallel sweeps"):
//  * per job: a private obs::Registry, obs::TraceBuffer and log capture,
//    installed as thread-local overrides for the duration of the job, plus
//    the thread-local simulated clock;
//  * shared read-only: the enable flags (tracing/profiling/log level) and
//    anything captured by const reference in the job closures;
//  * at join: job registries are merged into the caller's active registry,
//    job traces into the caller's active trace, and job log lines replayed
//    to the caller's log sink — all in job-index order.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snapshot/serialize.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

/// RAII bracket installing a job's private obs sinks on the current thread
/// and restoring whatever was there before (so inline execution at
/// --jobs 1 / --shard-workers 1 leaves the caller's sinks exactly as
/// found). Shared by the sweep engine's per-job sandboxes and the
/// datacenter's per-shard sandboxes.
class ObsSinkScope {
 public:
  ObsSinkScope(obs::Registry* registry, obs::TraceBuffer* trace,
               util::LogSink* log_sink)
      : prev_registry_(obs::set_thread_registry(registry)),
        prev_trace_(obs::set_thread_trace(trace)),
        prev_log_sink_(util::set_thread_log_sink(log_sink)),
        prev_sim_time_(util::sim_time()) {}
  ObsSinkScope(const ObsSinkScope&) = delete;
  ObsSinkScope& operator=(const ObsSinkScope&) = delete;
  ~ObsSinkScope() {
    obs::set_thread_registry(prev_registry_);
    obs::set_thread_trace(prev_trace_);
    util::set_thread_log_sink(prev_log_sink_);
    util::set_sim_time(prev_sim_time_);
  }

 private:
  obs::Registry* prev_registry_;
  obs::TraceBuffer* prev_trace_;
  util::LogSink* prev_log_sink_;
  double prev_sim_time_;
};

/// Persistent fixed-size thread pool: spawn once, dispatch many index
/// batches. run(n, fn) hands indices 0..n-1 to the workers through an
/// atomic cursor and blocks until all are done — the shape the datacenter
/// needs when it steps the same shards thousands of times (a thread-per-day
/// pool would pay spawn cost every simulated day). Constructed with
/// `workers <= 1` it owns no threads and run() executes inline on the
/// caller, which keeps thread-local obs sinks trivially correct in the
/// serial case.
///
/// `fn` must not throw — callers catch inside the callback and surface
/// failures through their own slots (see run_sweep / Datacenter).
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of execution lanes (1 when running inline).
  [[nodiscard]] std::size_t workers() const {
    return threads_.empty() ? 1 : threads_.size();
  }

  /// Runs fn(0) … fn(n-1), blocking until every call returned. The caller
  /// thread never executes fn when the pool owns threads, so fn may freely
  /// install thread-local state without touching the caller's.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

struct SweepOptions {
  /// Worker threads; 0 means default_sweep_jobs() (BAAT_JOBS env override,
  /// else hardware concurrency). 1 runs inline on the calling thread.
  std::size_t jobs = 0;
  /// Fold per-job metrics/trace into the caller's obs sinks at join.
  bool merge_obs = true;
  /// Ring capacity for each job's private trace buffer.
  std::size_t trace_capacity = obs::TraceBuffer::kDefaultCapacity;
  /// Job-granular checkpointing (DESIGN.md §5f): when non-empty, each job
  /// with a `save_result` callback commits `<dir>/<name>.ckpt` after it
  /// succeeds, and a job with a `restore_result` callback whose file is
  /// present and valid is *skipped* — its result is restored instead of
  /// recomputed. A corrupt, truncated or hash-mismatched file is warned
  /// about on stderr, ignored, and overwritten by the re-run. Restored jobs
  /// contribute no metrics/trace/log lines (no work ran).
  std::string checkpoint_dir;
  /// Fingerprint stamped into job checkpoint files and demanded back on
  /// restore; 0 skips the check.
  std::uint64_t config_hash = 0;
};

struct SweepJob {
  /// Label carried into the result (and error messages). Doubles as the
  /// checkpoint file stem, so it must be filesystem-safe when
  /// SweepOptions::checkpoint_dir is used.
  std::string name;
  /// The work. Runs with the job's private obs sinks installed; anything it
  /// captures must be immutable or owned by the job.
  std::function<void()> work;
  /// Serialize the job's externally visible result after `work` succeeded.
  /// Optional; required for the job to write a checkpoint.
  std::function<void(snapshot::SnapshotWriter&)> save_result;
  /// Restore the result `save_result` wrote, instead of running `work`.
  /// Optional; required for the job to resume from a checkpoint.
  std::function<void(snapshot::SnapshotReader&)> restore_result;
};

struct SweepResult {
  std::size_t index = 0;
  std::string name;
  bool ok = false;
  /// The job was skipped: its result was restored from a checkpoint file.
  bool resumed = false;
  /// Exception message when !ok.
  std::string error;
  /// The job's private metrics; already folded into the caller's registry
  /// when SweepOptions::merge_obs is set.
  obs::Registry metrics;
  /// The job's trace events (oldest first), when tracing was enabled.
  std::vector<obs::TraceEvent> trace;
  /// Formatted log lines the job emitted, in emission order; already
  /// replayed to the caller's sink when SweepOptions::merge_obs is set.
  std::vector<std::pair<util::LogLevel, std::string>> log_lines;
};

/// Worker count used when SweepOptions::jobs == 0: the BAAT_JOBS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency().
std::size_t default_sweep_jobs();

/// Run every job, slotting results by job index. Job exceptions are
/// captured per result, never thrown. Deterministic: results, merged
/// metrics and merged traces do not depend on the worker count.
std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& options = {});

/// Typed convenience over run_sweep: evaluate fn(0) … fn(n-1) in parallel
/// and return the values slotted by index. fn must be safe to call
/// concurrently (each call touching only its own state); any job failure
/// rethrows as util::PreconditionError after the pool joins.
template <typename Fn>
auto sweep_map(std::size_t n, Fn&& fn, const SweepOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using T = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<T>,
                "sweep_map results are pre-allocated and need a default state");
  std::vector<T> out(n);
  std::vector<SweepJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(SweepJob{"point-" + std::to_string(i),
                            [&out, &fn, i] { out[i] = fn(i); }});
  }
  const std::vector<SweepResult> results = run_sweep(std::move(jobs), options);
  for (const SweepResult& r : results) {
    if (!r.ok) {
      throw util::PreconditionError("sweep job '" + r.name + "' failed: " + r.error);
    }
  }
  return out;
}

}  // namespace baat::sim
