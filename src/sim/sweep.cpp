#include "sim/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <thread>

#include "snapshot/snapshot.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

namespace {

/// RAII bracket installing a job's private obs sinks on the current thread
/// and restoring whatever was there before (so inline execution at
/// --jobs 1 leaves the caller's sinks exactly as found).
class JobSinkScope {
 public:
  JobSinkScope(obs::Registry* registry, obs::TraceBuffer* trace,
               util::LogSink* log_sink)
      : prev_registry_(obs::set_thread_registry(registry)),
        prev_trace_(obs::set_thread_trace(trace)),
        prev_log_sink_(util::set_thread_log_sink(log_sink)),
        prev_sim_time_(util::sim_time()) {}
  JobSinkScope(const JobSinkScope&) = delete;
  JobSinkScope& operator=(const JobSinkScope&) = delete;
  ~JobSinkScope() {
    obs::set_thread_registry(prev_registry_);
    obs::set_thread_trace(prev_trace_);
    util::set_thread_log_sink(prev_log_sink_);
    util::set_sim_time(prev_sim_time_);
  }

 private:
  obs::Registry* prev_registry_;
  obs::TraceBuffer* prev_trace_;
  util::LogSink* prev_log_sink_;
  double prev_sim_time_;
};

void run_one(const SweepJob& job, std::size_t index, const SweepOptions& options,
             SweepResult& slot) {
  slot.index = index;
  slot.name = job.name;

  const bool checkpointing = !options.checkpoint_dir.empty();
  const std::string ckpt_path =
      checkpointing ? options.checkpoint_dir + "/" + job.name + ".ckpt"
                    : std::string();
  if (checkpointing && job.restore_result &&
      std::filesystem::exists(ckpt_path)) {
    // A valid per-job checkpoint means the job already ran to completion in
    // an earlier (interrupted) sweep: restore its result and skip the work.
    // Anything wrong with the file — truncation, CRC, version, config hash,
    // trailing bytes — downgrades to a warning and a normal re-run, which
    // overwrites the bad file.
    try {
      const std::vector<std::uint8_t> payload =
          snapshot::read_snapshot_file(ckpt_path, options.config_hash);
      snapshot::SnapshotReader r{payload};
      job.restore_result(r);
      if (!r.exhausted()) {
        throw snapshot::SnapshotError("checkpoint carries " +
                                      std::to_string(r.remaining()) +
                                      " trailing bytes");
      }
      slot.ok = true;
      slot.resumed = true;
      return;
    } catch (const std::exception& e) {
      std::cerr << "[checkpoint] ignoring '" << ckpt_path << "' (" << e.what()
                << "); re-running " << job.name << "\n";
    }
  }

  obs::TraceBuffer local_trace{options.trace_capacity};
  util::LogSink local_log = [&slot](util::LogLevel level, const std::string& line) {
    slot.log_lines.emplace_back(level, line);
  };
  {
    JobSinkScope sinks{&slot.metrics, &local_trace, &local_log};
    try {
      job.work();
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown exception";
    }
  }
  slot.trace = local_trace.events();

  if (slot.ok && checkpointing && job.save_result) {
    // Commit is atomic (write-then-rename) and each job owns a distinct
    // path, so concurrent workers never collide. A failed write (disk full,
    // permissions) costs the resume point, not the job's result.
    try {
      snapshot::SnapshotWriter w;
      job.save_result(w);
      snapshot::write_snapshot_file(ckpt_path, options.config_hash, w.bytes());
    } catch (const std::exception& e) {
      std::cerr << "[checkpoint] could not write '" << ckpt_path << "': "
                << e.what() << "\n";
    }
  }
}

}  // namespace

std::size_t default_sweep_jobs() {
  if (const char* env = std::getenv("BAAT_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& options) {
  for (const SweepJob& job : jobs) {
    BAAT_REQUIRE(static_cast<bool>(job.work), "sweep job must have work");
  }
  BAAT_REQUIRE(options.trace_capacity > 0, "trace capacity must be positive");

  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      throw snapshot::SnapshotError("cannot create checkpoint directory '" +
                                    options.checkpoint_dir + "': " + ec.message());
    }
  }

  const std::size_t n = jobs.size();
  std::vector<SweepResult> results(n);
  std::size_t workers = options.jobs > 0 ? options.jobs : default_sweep_jobs();
  if (workers > n) workers = n;

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      run_one(jobs[i], i, options, results[i]);
    }
  } else {
    // Fixed-size pool over an atomic work index. Each slot is written by
    // exactly one worker and read only after join, so no further
    // synchronisation is needed.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        run_one(jobs[i], i, options, results[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.merge_obs) {
    // Job-index order makes the merged exports independent of completion
    // order and worker count.
    obs::Registry& registry = obs::global_registry();
    obs::TraceBuffer& trace = obs::global_trace();
    for (const SweepResult& r : results) {
      registry.merge(r.metrics);
      for (const obs::TraceEvent& e : r.trace) trace.push(e);
      for (const auto& [level, line] : r.log_lines) {
        util::emit_log_line(level, line);
      }
    }
  }
  return results;
}

}  // namespace baat::sim
