#include "sim/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <thread>

#include "snapshot/snapshot.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

WorkerPool::WorkerPool(std::size_t workers) {
  if (workers <= 1) return;
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      n = n_;
    }
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  next_.store(0, std::memory_order_relaxed);
  active_ = threads_.size();
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
}

namespace {

void run_one(const SweepJob& job, std::size_t index, const SweepOptions& options,
             SweepResult& slot) {
  slot.index = index;
  slot.name = job.name;

  const bool checkpointing = !options.checkpoint_dir.empty();
  const std::string ckpt_path =
      checkpointing ? options.checkpoint_dir + "/" + job.name + ".ckpt"
                    : std::string();
  if (checkpointing && job.restore_result &&
      std::filesystem::exists(ckpt_path)) {
    // A valid per-job checkpoint means the job already ran to completion in
    // an earlier (interrupted) sweep: restore its result and skip the work.
    // Anything wrong with the file — truncation, CRC, version, config hash,
    // trailing bytes — downgrades to a warning and a normal re-run, which
    // overwrites the bad file.
    try {
      const std::vector<std::uint8_t> payload =
          snapshot::read_snapshot_file(ckpt_path, options.config_hash);
      snapshot::SnapshotReader r{payload};
      job.restore_result(r);
      if (!r.exhausted()) {
        throw snapshot::SnapshotError("checkpoint carries " +
                                      std::to_string(r.remaining()) +
                                      " trailing bytes");
      }
      slot.ok = true;
      slot.resumed = true;
      return;
    } catch (const std::exception& e) {
      std::cerr << "[checkpoint] ignoring '" << ckpt_path << "' (" << e.what()
                << "); re-running " << job.name << "\n";
    }
  }

  obs::TraceBuffer local_trace{options.trace_capacity};
  util::LogSink local_log = [&slot](util::LogLevel level, const std::string& line) {
    slot.log_lines.emplace_back(level, line);
  };
  {
    ObsSinkScope sinks{&slot.metrics, &local_trace, &local_log};
    try {
      job.work();
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown exception";
    }
  }
  slot.trace = local_trace.events();

  if (slot.ok && checkpointing && job.save_result) {
    // Commit is atomic (write-then-rename) and each job owns a distinct
    // path, so concurrent workers never collide. A failed write (disk full,
    // permissions) costs the resume point, not the job's result.
    try {
      snapshot::SnapshotWriter w;
      job.save_result(w);
      snapshot::write_snapshot_file(ckpt_path, options.config_hash, w.bytes());
    } catch (const std::exception& e) {
      std::cerr << "[checkpoint] could not write '" << ckpt_path << "': "
                << e.what() << "\n";
    }
  }
}

}  // namespace

std::size_t default_sweep_jobs() {
  if (const char* env = std::getenv("BAAT_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& options) {
  for (const SweepJob& job : jobs) {
    BAAT_REQUIRE(static_cast<bool>(job.work), "sweep job must have work");
  }
  BAAT_REQUIRE(options.trace_capacity > 0, "trace capacity must be positive");

  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      throw snapshot::SnapshotError("cannot create checkpoint directory '" +
                                    options.checkpoint_dir + "': " + ec.message());
    }
  }

  const std::size_t n = jobs.size();
  std::vector<SweepResult> results(n);
  std::size_t workers = options.jobs > 0 ? options.jobs : default_sweep_jobs();
  if (workers > n) workers = n;

  // Each slot is written by exactly one worker and read only after run()
  // returns, so no synchronisation beyond the pool's own barrier is needed.
  WorkerPool pool{workers};
  pool.run(n, [&](std::size_t i) { run_one(jobs[i], i, options, results[i]); });

  if (options.merge_obs) {
    // Job-index order makes the merged exports independent of completion
    // order and worker count.
    obs::Registry& registry = obs::global_registry();
    obs::TraceBuffer& trace = obs::global_trace();
    for (const SweepResult& r : results) {
      registry.merge(r.metrics);
      for (const obs::TraceEvent& e : r.trace) trace.push(e);
      for (const auto& [level, line] : r.log_lines) {
        util::emit_log_line(level, line);
      }
    }
  }
  return results;
}

}  // namespace baat::sim
