#include "sim/datacenter.hpp"

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <optional>

#include "battery/probe.hpp"
#include "fault/injector.hpp"
#include "obs/blackbox.hpp"
#include "obs/obs.hpp"
#include "telemetry/soh.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {

namespace {

std::size_t pool_lanes(const DatacenterConfig& cfg) {
  std::size_t workers = cfg.workers > 0 ? cfg.workers : default_sweep_jobs();
  return std::min(workers, cfg.shards);
}

void save_probe(snapshot::SnapshotWriter& w, const battery::ProbeResult& p) {
  w.write_f64(p.full_voltage.value());
  w.write_f64(p.capacity_fraction);
  w.write_f64(p.energy_per_cycle.value());
  w.write_f64(p.round_trip_efficiency);
}

void load_probe(snapshot::SnapshotReader& r, battery::ProbeResult& p) {
  p.full_voltage = util::Volts{r.read_f64()};
  p.capacity_fraction = r.read_f64();
  p.energy_per_cycle = util::WattHours{r.read_f64()};
  p.round_trip_efficiency = r.read_f64();
}

}  // namespace

Datacenter::Datacenter(DatacenterConfig cfg)
    : cfg_(std::move(cfg)), pool_(pool_lanes(cfg_)) {
  BAAT_REQUIRE(cfg_.shards >= 1, "datacenter needs at least one shard");
  BAAT_REQUIRE(cfg_.shards <= 4096, "shard count out of range (max 4096)");
  BAAT_REQUIRE(cfg_.scenario.shard == 0,
               "DatacenterConfig::scenario.shard must be 0; the datacenter "
               "stamps shard indices itself");

  const std::size_t trace_capacity = obs::global_trace().capacity();
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    // Per-shard solar-day stream, keyed on the shard index so adding shards
    // never perturbs existing ones; shard 0 keeps the exact unsharded
    // "solar-days" stream run_multi_day has always used.
    const std::string stream =
        i == 0 ? std::string("solar-days") : "solar-days-shard-" + std::to_string(i);
    auto s = std::make_unique<Shard>(trace_capacity,
                                     util::Rng::stream(cfg_.scenario.seed, stream));
    s->log_sink = [slot = s.get()](util::LogLevel level, const std::string& line) {
      slot->log_lines.emplace_back(level, line);
    };
    {
      // Construct under the shard's sinks so the Cluster binds its metric
      // handles into the shard registry, not the global one.
      ObsSinkScope scope{&s->registry, &s->trace, &s->log_sink};
      ScenarioConfig sc = cfg_.scenario;
      sc.shard = i;
      s->cluster = std::make_unique<Cluster>(std::move(sc));
    }
    shards_.push_back(std::move(s));
  }
  // Construction-time events/log lines (if any) surface immediately, in
  // shard order — matching a plain Cluster constructed under global sinks.
  for (const std::unique_ptr<Shard>& s : shards_) drain_obs(*s);
}

std::vector<const Cluster*> Datacenter::shard_ptrs() const {
  std::vector<const Cluster*> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& s : shards_) out.push_back(s->cluster.get());
  return out;
}

void Datacenter::drain_obs(Shard& s) {
  obs::global_trace().merge(s.trace);
  s.trace.clear();
  for (const auto& [level, line] : s.log_lines) util::emit_log_line(level, line);
  s.log_lines.clear();
}

void Datacenter::install_demand_jobs() {
  if (cfg_.demand.empty()) return;
  const Seconds window = cfg_.scenario.day_end - cfg_.scenario.day_start;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::vector<workload::DemandJob> schedule =
        cfg_.demand.shard_day_jobs(i, shards_.size(), day_counter_);
    std::vector<JobSpec> jobs;
    jobs.reserve(schedule.size());
    for (const workload::DemandJob& j : schedule) {
      jobs.push_back(JobSpec{j.kind, Seconds{j.start_frac * window.value()}});
    }
    shards_[i]->cluster->set_daily_jobs(std::move(jobs));
  }
}

std::vector<solar::SolarDay> Datacenter::sample_solar_days(solar::DayType type) {
  std::vector<solar::SolarDay> days;
  days.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& s : shards_) {
    days.emplace_back(cfg_.scenario.plant, type, s->solar_rng.fork("day"));
  }
  return days;
}

DayResult Datacenter::dispatch_day(const std::function<DayResult(Cluster&)>& step_shard) {
  install_demand_jobs();

  pool_.run(shards_.size(), [&](std::size_t i) {
    Shard& s = *shards_[i];
    // The worker's sinks point at the shard's private buffers for the whole
    // day; the scope restores the worker's previous sinks (and the caller's
    // when running inline), so nothing leaks across shards.
    ObsSinkScope scope{&s.registry, &s.trace, &s.log_sink};
    s.error = nullptr;
    try {
      s.result = step_shard(*s.cluster);
    } catch (...) {
      s.error = std::current_exception();
    }
  });

  // Shard-ordered merge on the caller thread — even when a shard failed,
  // every shard's events up to the failure reach the global trace first.
  for (const std::unique_ptr<Shard>& s : shards_) drain_obs(*s);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->error) {
      last_failed_shard_ = i;
      std::rethrow_exception(shards_[i]->error);
    }
  }

  std::vector<DayResult> per_shard;
  per_shard.reserve(shards_.size());
  for (std::unique_ptr<Shard>& s : shards_) per_shard.push_back(std::move(s->result));
  ++day_counter_;
  // Shards advanced their thread-local sim clocks on worker threads; bring
  // the caller's clock to the same day boundary for probe/checkpoint stamps.
  util::set_sim_time(static_cast<double>(day_counter_) * 86400.0);
  return merge_day_results(per_shard);
}

DayResult Datacenter::run_day(const std::vector<solar::SolarDay>& days) {
  BAAT_REQUIRE(days.size() == shards_.size(),
               "run_day needs exactly one SolarDay per shard");
  return dispatch_day([&days, this](Cluster& c) {
    return c.run_day(days[c.config().shard]);
  });
}

DayResult Datacenter::run_day(solar::DayType type) {
  return dispatch_day([type](Cluster& c) { return c.run_day(type); });
}

void Datacenter::merge_metrics_into(obs::Registry& target) const {
  for (const std::unique_ptr<Shard>& s : shards_) target.merge(s->registry);
}

void Datacenter::save_shard_sections(snapshot::SectionFileWriter& out) const {
  for (const std::unique_ptr<Shard>& s : shards_) {
    snapshot::SnapshotWriter w;
    s->solar_rng.save_state(w);
    s->registry.save_state(w);
    s->cluster->save_state(w);
    out.append(w.bytes());
  }
}

void Datacenter::load_shard_sections(snapshot::SectionFileReader& in) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    const std::vector<std::uint8_t> payload = in.read_section();
    snapshot::SnapshotReader r{payload};
    s.solar_rng.load_state(r);
    s.registry.load_state(r);
    s.cluster->load_state(r);
    if (!r.exhausted()) {
      throw snapshot::SnapshotError("shard section " + std::to_string(i) + " carries " +
                                    std::to_string(r.remaining()) +
                                    " trailing bytes past the restored state");
    }
  }
}

std::uint64_t datacenter_fingerprint(const DatacenterConfig& cfg,
                                     const MultiDayOptions& options) {
  std::uint64_t h = scenario_fingerprint(cfg.scenario, options);
  // Fold in the topology knobs (never the worker count: resume must work —
  // and stay byte-identical — under any --shard-workers).
  h ^= cfg.shards * 0x9E3779B97F4A7C15ULL;
  h ^= util::fnv1a(cfg.demand.to_string()) << 1;
  return h == 0 ? 1 : h;
}

MultiDayResult run_datacenter_multi_day(Datacenter& dc, const MultiDayOptions& options) {
  BAAT_OBS_TIMED("run_multi_day");
  BAAT_REQUIRE(options.days > 0, "must simulate at least one day");

  const std::uint64_t seed = dc.config().scenario.seed;
  std::vector<solar::DayType> weather = options.weather;
  if (weather.empty()) {
    util::Rng weather_rng = util::Rng::stream(seed, "weather-seq");
    weather = solar::Location{options.sunshine_fraction}.sample_days(options.days,
                                                                     weather_rng);
  }
  BAAT_REQUIRE(weather.size() >= options.days, "weather sequence shorter than run");

  MultiDayResult result;
  telemetry::SohEstimator soh;
  std::optional<battery::ProbeResult> last_probe;

  SeriesWriter series;
  series.configure(options.series);

  std::size_t start_day = 0;
  const CheckpointOptions& ckpt = options.checkpoint;
  if (!ckpt.resume_path.empty()) {
    snapshot::SectionFileReader in(ckpt.resume_path, ckpt.config_hash);
    if (in.header().section_count != 1 + dc.shard_count()) {
      throw snapshot::SnapshotError(
          "snapshot '" + ckpt.resume_path + "' holds " +
          std::to_string(in.header().section_count) + " sections but a " +
          std::to_string(dc.shard_count()) + "-shard datacenter needs " +
          std::to_string(1 + dc.shard_count()));
    }
    const std::vector<std::uint8_t> sec0 = in.read_section();
    snapshot::SnapshotReader r{sec0};
    start_day = static_cast<std::size_t>(r.read_u64());
    if (start_day > options.days) {
      throw snapshot::SnapshotError("snapshot '" + ckpt.resume_path + "' has already passed day " +
                                    std::to_string(options.days) +
                                    "; nothing left to resume");
    }
    const std::vector<std::uint8_t> saved_weather = r.read_u8_vec();
    for (std::size_t d = 0; d < saved_weather.size() && d < weather.size(); ++d) {
      if (saved_weather[d] != static_cast<std::uint8_t>(weather[d])) {
        throw snapshot::SnapshotError(
            "snapshot '" + ckpt.resume_path + "' was taken under a different weather "
            "sequence (day " + std::to_string(d) + " differs); the config hash should "
            "normally catch this — check seed and sunshine options");
      }
    }
    soh.load_state(r);
    const bool has_probe = r.read_bool();
    battery::ProbeResult probe;
    load_probe(r, probe);
    if (has_probe) last_probe = probe;
    load_state(r, result);
    obs::global_registry().load_state(r);
    obs::global_trace().load_state(r);
    util::set_sim_time(r.read_f64());
    series.load_state(r);
    if (!r.exhausted()) {
      throw snapshot::SnapshotError("snapshot '" + ckpt.resume_path + "' carries " +
                                    std::to_string(r.remaining()) +
                                    " trailing bytes past the restored state");
    }
    dc.load_shard_sections(in);
    in.finish();
    dc.resume_at_day(static_cast<long>(start_day));
    std::cerr << "[checkpoint] resumed from '" << ckpt.resume_path << "' at day "
              << start_day << " of " << options.days << "\n";
  }

  long blackbox_day = static_cast<long>(start_day);
  struct HookGuard {
    bool active;
    ~HookGuard() {
      if (active) obs::clear_crash_dump_hook();
    }
  } hook_guard{options.blackbox};
  const auto dump_failed_shard = [&dc, &options, &ckpt](long day, const char* reason) {
    // The bundle's metrics/trace come from the global sinks; fold the shard
    // registries in first so the post-mortem sees the whole datacenter.
    dc.merge_metrics_into(obs::global_registry());
    dump_cluster_blackbox(dc.shard(dc.last_failed_shard()), day, reason,
                          options.blackbox_dir, ckpt.config_hash);
  };
  if (options.blackbox) {
    obs::set_crash_dump_hook([&dump_failed_shard, &blackbox_day](const char* reason) {
      dump_failed_shard(blackbox_day, reason);
    });
  }

  for (std::size_t d = start_day; d < options.days; ++d) {
    blackbox_day = static_cast<long>(d);
    const std::vector<solar::SolarDay> days = dc.sample_solar_days(weather[d]);
    DayResult day_result;
    try {
      day_result = dc.run_day(days);
    } catch (const std::exception& e) {
      if (options.blackbox) dump_failed_shard(static_cast<long>(d), e.what());
      throw;
    }
    result.total_throughput += day_result.throughput_work;
    result.soc_histogram.merge(day_result.soc_histogram);

    const bool probe_due = options.probe_every_days > 0 &&
                           (d + 1) % options.probe_every_days == 0;
    if (probe_due) {
      // Worst cumulative-throughput battery across the whole datacenter,
      // scanned shard-major with strict > — at one shard this is exactly
      // the single-cluster selection rule.
      std::size_t worst_shard = 0;
      std::size_t worst_node = 0;
      for (std::size_t s = 0; s < dc.shard_count(); ++s) {
        const std::vector<battery::Battery>& bank = dc.shard(s).batteries();
        for (std::size_t b = 0; b < bank.size(); ++b) {
          if (s == 0 && b == 0) continue;
          if (bank[b].counters().ah_discharged >
              dc.shard(worst_shard).batteries()[worst_node].counters().ah_discharged) {
            worst_shard = s;
            worst_node = b;
          }
        }
      }
      MonthlyProbe mp;
      mp.month = static_cast<int>((d + 1) / options.probe_every_days);
      fault::FaultInjector* injector = dc.shard(worst_shard).injector();
      battery::ProbeResult probe;
      if (injector != nullptr && last_probe.has_value() &&
          injector->probe_is_stale(mp.month)) {
        probe = *last_probe;
      } else {
        probe = battery::run_probe(dc.shard(worst_shard).batteries()[worst_node]);
        last_probe = probe;
      }
      soh.add_probe(static_cast<double>(d + 1), probe.capacity_fraction);
      mp.full_voltage = probe.full_voltage.value();
      mp.capacity_fraction = probe.capacity_fraction;
      mp.energy_per_cycle_wh = probe.energy_per_cycle.value();
      mp.round_trip_efficiency = probe.round_trip_efficiency;
      mp.health = dc.shard(worst_shard).batteries()[worst_node].health();
      result.monthly.push_back(mp);
    }

    if (series.should_write(static_cast<long>(d))) {
      series.write_day(static_cast<long>(d), dc.shard_ptrs(), day_result);
      for (std::size_t s = 0; s < dc.shard_count(); ++s) dc.shard(s).ledger_advance();
    }

    if (options.keep_days) {
      result.days.push_back(std::move(day_result));
    }

    const bool checkpoint_due = ckpt.every_days > 0 && (d + 1) % ckpt.every_days == 0 &&
                                d + 1 < options.days;
    if (checkpoint_due) {
      snapshot::SnapshotWriter w;
      w.write_u64(d + 1);
      std::vector<std::uint8_t> weather_bytes;
      weather_bytes.reserve(weather.size());
      for (solar::DayType t : weather) {
        weather_bytes.push_back(static_cast<std::uint8_t>(t));
      }
      w.write_u8_vec(weather_bytes);
      soh.save_state(w);
      w.write_bool(last_probe.has_value());
      save_probe(w, last_probe.value_or(battery::ProbeResult{}));
      save_state(w, result);
      obs::global_registry().save_state(w);
      obs::global_trace().save_state(w);
      w.write_f64(util::sim_time());
      series.save_state(w);

      const std::string dir = ckpt.dir.empty() ? std::string(".") : ckpt.dir;
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        throw snapshot::SnapshotError("cannot create checkpoint directory '" + dir +
                                      "': " + ec.message());
      }
      const std::string path = dir + "/checkpoint-day-" + std::to_string(d + 1) + ".snap";
      snapshot::SectionFileWriter out(path, ckpt.config_hash, 1 + dc.shard_count());
      out.append(w.bytes());
      dc.save_shard_sections(out);
      out.commit();
      std::cerr << "[checkpoint] wrote '" << path << "' after day " << (d + 1) << "\n";
    }
  }

  double mean_health = 0.0;
  double min_health = 1.0;
  for (std::size_t s = 0; s < dc.shard_count(); ++s) {
    for (const battery::Battery& b : dc.shard(s).batteries()) {
      mean_health += b.health();
      min_health = std::min(min_health, b.health());
    }
  }
  result.mean_health_end = mean_health / static_cast<double>(dc.node_count());
  result.min_health_end = min_health;
  if (soh.probe_count() >= 2) result.projected_eol_day = soh.projected_eol_day();
  return result;
}

}  // namespace baat::sim
