#pragma once

// The power switcher (§V-A.4): dynamically routes power among the solar
// line, the utility tie and the per-node batteries — "switch the power
// sources among utility, battery power and renewable energy ... and also
// switch the utility or renewable power to charge batteries".
//
// Dispatch order per tick (the prototype's relay logic):
//   1. solar feeds the server load, split proportionally to demand;
//   2. the utility budget (zero in pure-green operation) covers deficits;
//   3. each node's battery covers its remaining deficit through the
//      DC-AC inverter, limited by chemistry;
//   4. leftover solar charges batteries in a caller-chosen priority order
//      (BAAT points it at the most-aged unit first, §VI-B);
//   5. anything still left is curtailed.
//
// Every battery is stepped exactly once per call, including idle ones, so
// calendar aging and time counters always advance.

#include <cstdint>
#include <span>
#include <vector>

#include "battery/battery.hpp"
#include "util/units.hpp"

namespace baat::power {

using util::Amperes;
using util::Seconds;
using util::Watts;

/// How surplus solar is split across the chargers.
enum class ChargeAllocation {
  /// Parallel bus behaviour: every battery draws in proportion to its
  /// charge acceptance (the physical default without a controller).
  Proportional,
  /// Strict order: the first node in `charge_priority` charges at full
  /// acceptance before the next sees anything — the knob BAAT uses to give
  /// the most-aged unit "more solar charging chances" (§VI-B).
  PriorityOrder,
};

struct RouterParams {
  double charger_efficiency = 0.90;   ///< bus → battery terminals
  double inverter_efficiency = 0.92;  ///< battery terminals → load
  Watts utility_budget{0.0};          ///< 0 = pure green operation
  ChargeAllocation charge_allocation = ChargeAllocation::Proportional;
};

/// Per-node outcome of one routing tick.
struct NodeRoute {
  Watts demand{0.0};
  Watts solar_used{0.0};
  Watts utility_used{0.0};
  Watts battery_delivered{0.0};  ///< at the load, after inverter loss
  Watts unmet{0.0};              ///< demand nobody could cover (→ brownout)
  Watts charge_drawn{0.0};       ///< from the bus into the charger
  Amperes battery_current{0.0};  ///< signed, >0 discharge
  bool battery_cutoff = false;   ///< LVD curtailed the discharge
};

struct RouteResult {
  std::vector<NodeRoute> nodes;
  Watts solar_available{0.0};
  Watts solar_curtailed{0.0};
  Watts utility_drawn{0.0};
};

/// Reusable per-call working memory for route_power_into. Keeping one of
/// these alive across ticks (Cluster does) makes routing allocation-free in
/// steady state: the vectors grow once to the node count and are reused.
struct RouterScratch {
  std::vector<std::uint8_t> stepped;
  std::vector<std::size_t> idle_cells;
};

/// Routes one tick. `demands[i]` is node i's server power; `batteries[i]` is
/// its battery (spans must be equal length). `charge_priority` lists node
/// indices in the order surplus solar should charge them; pass the natural
/// order for aging-oblivious policies. `discharge_floor_soc[i]` (optional)
/// forbids discharging node i below that SoC — the planned-aging knob (Eq 7).
/// Results are written into `out` (previous contents reset in place) using
/// `scratch` for working memory, so a caller looping over ticks performs no
/// per-tick allocation.
void route_power_into(Watts solar, std::span<const Watts> demands,
                      std::span<battery::Battery> batteries,
                      std::span<const std::size_t> charge_priority,
                      const RouterParams& params, Seconds dt,
                      std::span<const double> discharge_floor_soc, RouteResult& out,
                      RouterScratch& scratch);

/// Convenience wrapper over route_power_into with fresh result/scratch.
RouteResult route_power(Watts solar, std::span<const Watts> demands,
                        std::span<battery::Battery> batteries,
                        std::span<const std::size_t> charge_priority,
                        const RouterParams& params, Seconds dt,
                        std::span<const double> discharge_floor_soc = {});

/// Current that extracts `dc_power` from a source with open-circuit voltage
/// `ocv` and internal resistance `r` (solves I·(ocv − I·r) = P; returns the
/// small root, or the maximum-power current if P is unreachable).
Amperes current_for_dc_power(Watts dc_power, util::Volts ocv, double r);

}  // namespace baat::power
