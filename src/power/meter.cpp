#include "power/meter.hpp"

namespace baat::power {

void EnergyMeter::add(const RouteResult& route, util::Seconds dt) {
  solar_available_ += util::energy(route.solar_available, dt);
  solar_curtailed_ += util::energy(route.solar_curtailed, dt);
  utility_used_ += util::energy(route.utility_drawn, dt);
  for (const NodeRoute& n : route.nodes) {
    solar_to_load_ += util::energy(n.solar_used, dt);
    solar_to_charge_ += util::energy(n.charge_drawn, dt);
    battery_to_load_ += util::energy(n.battery_delivered, dt);
    unmet_ += util::energy(n.unmet, dt);
  }
}

void EnergyMeter::merge(const EnergyMeter& other) {
  solar_available_ += other.solar_available_;
  solar_to_load_ += other.solar_to_load_;
  solar_to_charge_ += other.solar_to_charge_;
  solar_curtailed_ += other.solar_curtailed_;
  battery_to_load_ += other.battery_to_load_;
  utility_used_ += other.utility_used_;
  unmet_ += other.unmet_;
}

double EnergyMeter::solar_utilization() const {
  const double avail = solar_available_.value();
  if (avail <= 0.0) return 0.0;
  return (solar_to_load_.value() + solar_to_charge_.value()) / avail;
}

void EnergyMeter::save_state(snapshot::SnapshotWriter& w) const {
  w.write_f64(solar_available_.value());
  w.write_f64(solar_to_load_.value());
  w.write_f64(solar_to_charge_.value());
  w.write_f64(solar_curtailed_.value());
  w.write_f64(battery_to_load_.value());
  w.write_f64(utility_used_.value());
  w.write_f64(unmet_.value());
}

void EnergyMeter::load_state(snapshot::SnapshotReader& r) {
  solar_available_ = WattHours{r.read_f64()};
  solar_to_load_ = WattHours{r.read_f64()};
  solar_to_charge_ = WattHours{r.read_f64()};
  solar_curtailed_ = WattHours{r.read_f64()};
  battery_to_load_ = WattHours{r.read_f64()};
  utility_used_ = WattHours{r.read_f64()};
  unmet_ = WattHours{r.read_f64()};
}

}  // namespace baat::power
