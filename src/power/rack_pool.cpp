#include "power/rack_pool.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace baat::power {

RackLayout even_racks(std::size_t nodes, std::size_t racks) {
  BAAT_REQUIRE(nodes > 0 && racks > 0, "nodes and racks must be positive");
  BAAT_REQUIRE(racks <= nodes, "cannot have more racks than nodes");
  RackLayout layout(racks);
  for (std::size_t i = 0; i < nodes; ++i) {
    layout[i % racks].push_back(i);
  }
  // Keep node indices contiguous per rack for readability: rack r gets the
  // block [r*base + min(r, extra), ...).
  RackLayout contiguous(racks);
  const std::size_t base = nodes / racks;
  const std::size_t extra = nodes % racks;
  std::size_t next = 0;
  for (std::size_t r = 0; r < racks; ++r) {
    const std::size_t count = base + (r < extra ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) contiguous[r].push_back(next++);
  }
  return contiguous;
}

RackRouteResult route_power_racked(util::Watts solar,
                                   std::span<const util::Watts> demands,
                                   const RackLayout& layout,
                                   std::span<battery::Battery> pools,
                                   const RouterParams& params, util::Seconds dt) {
  BAAT_REQUIRE(pools.size() == layout.size(), "one pool per rack required");
  BAAT_REQUIRE(solar.value() >= 0.0, "solar must be >= 0");

  // Validate the layout covers each node exactly once.
  std::vector<bool> seen(demands.size(), false);
  for (const auto& rack : layout) {
    BAAT_REQUIRE(!rack.empty(), "empty rack in layout");
    for (std::size_t i : rack) {
      BAAT_REQUIRE(i < demands.size(), "rack layout index out of range");
      BAAT_REQUIRE(!seen[i], "node assigned to two racks");
      seen[i] = true;
    }
  }
  for (bool s : seen) BAAT_REQUIRE(s, "node missing from rack layout");

  RackRouteResult result;
  result.nodes.resize(demands.size());
  result.solar_available = solar;

  // Split solar across racks proportional to rack demand.
  std::vector<double> rack_demand(layout.size(), 0.0);
  double total_demand = 0.0;
  for (std::size_t r = 0; r < layout.size(); ++r) {
    for (std::size_t i : layout[r]) rack_demand[r] += demands[i].value();
    total_demand += rack_demand[r];
  }

  double surplus = solar.value();
  std::vector<double> rack_solar(layout.size(), 0.0);
  if (total_demand > 0.0) {
    const double coverage = std::min(1.0, solar.value() / total_demand);
    for (std::size_t r = 0; r < layout.size(); ++r) {
      rack_solar[r] = rack_demand[r] * coverage;
      surplus -= rack_solar[r];
    }
  }
  surplus = std::max(0.0, surplus);
  // Spread the remaining surplus evenly so every pool can recharge.
  const double surplus_share = surplus / static_cast<double>(layout.size());

  result.racks.reserve(layout.size());
  for (std::size_t r = 0; r < layout.size(); ++r) {
    std::vector<util::Watts> rack_demands;
    rack_demands.reserve(layout[r].size());
    for (std::size_t i : layout[r]) rack_demands.push_back(demands[i]);

    const auto rack_result = route_power_centralized(
        util::Watts{rack_solar[r] + surplus_share}, rack_demands, pools[r], params, dt);

    for (std::size_t k = 0; k < layout[r].size(); ++k) {
      result.nodes[layout[r][k]] = rack_result.nodes[k];
    }
    result.solar_curtailed += rack_result.solar_curtailed;
    result.racks.push_back(rack_result);
  }
  return result;
}

}  // namespace baat::power
