#pragma once

// Energy meters — the IPDU role in the prototype (§V-A.4): accumulate where
// every watt-hour went so experiments can report solar utilization, battery
// round-trip efficiency (Fig 5) and unmet demand.

#include "power/router.hpp"
#include "snapshot/serialize.hpp"
#include "util/units.hpp"

namespace baat::power {

using util::WattHours;

class EnergyMeter {
 public:
  /// Fold one routing tick into the meters.
  void add(const RouteResult& route, util::Seconds dt);

  [[nodiscard]] WattHours solar_available() const { return solar_available_; }
  [[nodiscard]] WattHours solar_to_load() const { return solar_to_load_; }
  [[nodiscard]] WattHours solar_to_charge() const { return solar_to_charge_; }
  [[nodiscard]] WattHours solar_curtailed() const { return solar_curtailed_; }
  [[nodiscard]] WattHours battery_to_load() const { return battery_to_load_; }
  [[nodiscard]] WattHours utility_used() const { return utility_used_; }
  [[nodiscard]] WattHours unmet() const { return unmet_; }

  /// Fraction of available solar energy that reached load or storage.
  [[nodiscard]] double solar_utilization() const;

  /// Folds another meter's accumulators into this one — the shard-merge
  /// path (DESIGN.md §5h). Plain sums; merging into a zeroed meter is
  /// bit-exact, so a 1-shard datacenter reproduces the unsharded totals.
  void merge(const EnergyMeter& other);

  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  WattHours solar_available_{0.0};
  WattHours solar_to_load_{0.0};
  WattHours solar_to_charge_{0.0};
  WattHours solar_curtailed_{0.0};
  WattHours battery_to_load_{0.0};
  WattHours utility_used_{0.0};
  WattHours unmet_{0.0};
};

}  // namespace baat::power
