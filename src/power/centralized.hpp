#pragma once

// Centralized battery topology — the design alternative §II-A contrasts
// with the per-server/per-rack distributed architecture (and that prior
// work [6, 7, 11] provisions at the datacenter level). One shared bank
// serves the whole fleet through a single conversion chain. The ablation
// bench compares it against the distributed router on aging and on the
// single-point-of-failure behaviour the paper warns about (§VI-E).

#include <span>
#include <vector>

#include "battery/battery.hpp"
#include "power/router.hpp"

namespace baat::power {

/// Outcome of one centralized routing tick.
struct CentralRouteResult {
  std::vector<NodeRoute> nodes;      ///< battery fields aggregated on node 0
  util::Watts solar_available{0.0};
  util::Watts solar_curtailed{0.0};
  util::Watts utility_drawn{0.0};
  util::Watts battery_delivered{0.0};  ///< total, at the load
  util::Watts charge_drawn{0.0};
  util::Amperes battery_current{0.0};
  bool battery_cutoff = false;
};

/// Routes one tick through a single shared battery. Deficits are pooled:
/// either the shared bank covers the *entire* remaining deficit or the
/// shortfall is spread over every node proportionally — the SPOF coupling
/// a distributed design avoids.
CentralRouteResult route_power_centralized(util::Watts solar,
                                           std::span<const util::Watts> demands,
                                           battery::Battery& shared,
                                           const RouterParams& params,
                                           util::Seconds dt,
                                           double discharge_floor_soc = 0.0);

}  // namespace baat::power
