#include "power/router.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace baat::power {

Amperes current_for_dc_power(Watts dc_power, util::Volts ocv, double r) {
  BAAT_REQUIRE(dc_power.value() >= 0.0, "power must be >= 0");
  BAAT_REQUIRE(ocv.value() > 0.0 && r > 0.0, "ocv and resistance must be positive");
  const double p = dc_power.value();
  if (p == 0.0) return Amperes{0.0};
  const double v = ocv.value();
  const double disc = v * v - 4.0 * r * p;
  if (disc <= 0.0) {
    // Requested power exceeds the source's maximum (v²/4r): deliver at the
    // maximum-power current.
    return Amperes{v / (2.0 * r)};
  }
  return Amperes{(v - std::sqrt(disc)) / (2.0 * r)};
}

void route_power_into(Watts solar, std::span<const Watts> demands,
                      std::span<battery::Battery> batteries,
                      std::span<const std::size_t> charge_priority,
                      const RouterParams& params, Seconds dt,
                      std::span<const double> discharge_floor_soc, RouteResult& out,
                      RouterScratch& scratch) {
  BAAT_OBS_TIMED("router_route");
  const std::size_t n = demands.size();
  BAAT_REQUIRE(batteries.size() == n, "demands/batteries size mismatch");
  BAAT_REQUIRE(charge_priority.size() == n, "charge priority must list every node");
  BAAT_REQUIRE(discharge_floor_soc.empty() || discharge_floor_soc.size() == n,
               "discharge floor must be empty or per-node");
  BAAT_REQUIRE(solar.value() >= 0.0, "solar power must be >= 0");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(params.charger_efficiency > 0.0 && params.charger_efficiency <= 1.0 &&
                   params.inverter_efficiency > 0.0 && params.inverter_efficiency <= 1.0,
               "efficiencies must be in (0, 1]");

  RouteResult& result = out;
  // assign (not resize): every slot must be reset to a default NodeRoute,
  // including the ones a previous tick already wrote.
  result.nodes.assign(n, NodeRoute{});
  result.solar_available = solar;
  result.solar_curtailed = Watts{0.0};
  result.utility_drawn = Watts{0.0};

  double total_demand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    BAAT_REQUIRE(demands[i].value() >= 0.0, "demand must be >= 0");
    result.nodes[i].demand = demands[i];
    total_demand += demands[i].value();
  }

  // 1. Solar → load, proportional to demand.
  double solar_left = solar.value();
  if (total_demand > 0.0 && solar_left > 0.0) {
    const double coverage = std::min(1.0, solar_left / total_demand);
    for (std::size_t i = 0; i < n; ++i) {
      const double used = demands[i].value() * coverage;
      result.nodes[i].solar_used = Watts{used};
      solar_left -= used;
    }
  }
  solar_left = std::max(0.0, solar_left);

  // 2. Utility budget → remaining deficits, proportional.
  double deficit_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deficit_total += (result.nodes[i].demand - result.nodes[i].solar_used).value();
  }
  if (params.utility_budget.value() > 0.0 && deficit_total > 0.0) {
    const double coverage = std::min(1.0, params.utility_budget.value() / deficit_total);
    for (std::size_t i = 0; i < n; ++i) {
      const double deficit = (result.nodes[i].demand - result.nodes[i].solar_used).value();
      const double used = deficit * coverage;
      result.nodes[i].utility_used = Watts{used};
      result.utility_drawn += Watts{used};
    }
  }

  scratch.stepped.assign(n, 0);
  std::vector<std::uint8_t>& stepped = scratch.stepped;

  // 3. Batteries → remaining per-node deficits.
  for (std::size_t i = 0; i < n; ++i) {
    auto& node = result.nodes[i];
    const double deficit =
        (node.demand - node.solar_used - node.utility_used).value();
    if (deficit <= 1e-12) continue;

    battery::Battery& bat = batteries[i];
    const double floor = discharge_floor_soc.empty() ? 0.0 : discharge_floor_soc[i];
    if (bat.soc() <= floor) {
      node.unmet = Watts{deficit};
      node.battery_cutoff = true;
      continue;
    }
    // An open-cell failure leaves no source at all (0 V OCV) — skip it
    // instead of asking current_for_dc_power to divide by a dead battery.
    if (bat.open_circuit().value() <= 0.0) {
      node.unmet = Watts{deficit};
      node.battery_cutoff = true;
      continue;
    }

    const Watts dc_needed{deficit / params.inverter_efficiency};
    Amperes i_req = current_for_dc_power(dc_needed, bat.open_circuit(),
                                         bat.internal_resistance_ohms());
    i_req = std::min(i_req, bat.max_discharge_current());
    // Respect the policy's SoC floor: don't draw more charge than sits above it.
    const double cap_ah = bat.usable_capacity().value();
    const double ah_above_floor = std::max(0.0, bat.soc() - floor) * cap_ah;
    const double ah_requested = i_req.value() * dt.value() / 3600.0;
    if (ah_requested > ah_above_floor) {
      i_req = Amperes{ah_above_floor * 3600.0 / dt.value()};
      node.battery_cutoff = true;
    }

    const auto step = bat.step(i_req, dt);
    stepped[i] = true;
    node.battery_current = step.actual_current;
    node.battery_cutoff = node.battery_cutoff || step.hit_cutoff;
    const double delivered_dc =
        step.terminal_voltage.value() * step.actual_current.value();
    const double delivered = std::max(0.0, delivered_dc) * params.inverter_efficiency;
    node.battery_delivered = Watts{std::min(delivered, deficit)};
    node.unmet = Watts{std::max(0.0, deficit - delivered)};
  }

  // 4. Leftover solar → charging. Under Proportional allocation every
  // eligible battery draws a share of the bus scaled by its acceptance;
  // under PriorityOrder the listed order is strict. Either way a battery
  // that discharged this tick cannot also charge.
  const bool proportional =
      params.charge_allocation == ChargeAllocation::Proportional;
  double acceptance_power_total = 0.0;
  if (proportional) {
    for (std::size_t i = 0; i < n; ++i) {
      if (stepped[i]) continue;
      const Amperes accept = batteries[i].max_charge_current();
      if (accept.value() <= 0.0) continue;
      acceptance_power_total +=
          accept.value() *
          batteries[i].terminal_voltage(Amperes{-accept.value()}).value();
    }
  }
  const double terminal_bus = solar_left * params.charger_efficiency;
  const double share_scale =
      acceptance_power_total > 0.0 ? std::min(1.0, terminal_bus / acceptance_power_total)
                                   : 0.0;

  for (std::size_t rank = 0; rank < n && solar_left > 1e-9; ++rank) {
    const std::size_t i = charge_priority[rank];
    BAAT_REQUIRE(i < n, "charge priority index out of range");
    if (stepped[i]) continue;
    battery::Battery& bat = batteries[i];
    const Amperes accept = bat.max_charge_current();
    if (accept.value() <= 0.0) continue;

    const double v_est = bat.terminal_voltage(Amperes{-accept.value()}).value();
    // Whatever the allocation mode proposes, never draw more than the bus
    // still holds (keeps solar attribution exactly conservative).
    const double terminal_budget = solar_left * params.charger_efficiency;
    const double i_by_budget = terminal_budget / std::max(1.0, v_est);
    double i_chg = 0.0;
    if (proportional) {
      i_chg = std::min(accept.value() * share_scale, i_by_budget);
    } else {
      i_chg = std::min(accept.value(), i_by_budget);
    }
    if (i_chg <= 0.0) continue;

    const auto step = bat.step(Amperes{-i_chg}, dt);
    stepped[i] = true;
    const double into_terminals =
        step.terminal_voltage.value() * std::fabs(step.actual_current.value());
    // The step reports the end-of-step terminal voltage (the OCV rose a
    // little while charging); cap the bus-side draw at what is actually
    // left so solar attribution stays exactly conservative.
    const double from_bus =
        std::min(into_terminals / params.charger_efficiency, solar_left);
    result.nodes[i].charge_drawn = Watts{from_bus};
    result.nodes[i].battery_current = step.actual_current;
    solar_left = std::max(0.0, solar_left - from_bus);
  }

  // 5. Idle batteries still age on the calendar. When every node's battery
  // is a view into one shared FleetState (a cluster bank), the zero-current
  // steps go through the batched kernel entry in one call; mixed or
  // standalone banks take the per-object loop. Cell order matches the loop,
  // so the two paths are identical.
  battery::FleetState* fleet = n > 0 ? batteries[0].fleet() : nullptr;
  for (std::size_t i = 1; i < n && fleet != nullptr; ++i) {
    if (batteries[i].fleet() != fleet) fleet = nullptr;
  }
  if (fleet != nullptr) {
    scratch.idle_cells.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!stepped[i]) scratch.idle_cells.push_back(batteries[i].cell_index());
    }
    fleet->step_cells(scratch.idle_cells, Amperes{0.0}, dt);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (!stepped[i]) batteries[i].step(Amperes{0.0}, dt);
    }
  }

  result.solar_curtailed = Watts{solar_left};

  // Observability: one "redirect" = a tick where solar alone could not
  // carry the load and the switcher pulled in battery or utility power.
  // Counter handles are interned per registry id, not per call (four map
  // lookups per tick was measurable) and not in bare statics: the active
  // registry is per-thread under the sweep engine, and a static handle
  // would alias every thread onto one job's registry. The id check catches
  // a registry swap or death (Registry retires its id when nodes go away).
  obs::Registry& reg = obs::global_registry();
  struct CounterCache {
    std::uint64_t reg_id = 0;
    obs::Counter* ticks = nullptr;
    obs::Counter* redirects = nullptr;
    obs::Counter* cutoffs = nullptr;
    obs::Counter* curtailed = nullptr;
  };
  thread_local CounterCache cache;
  if (cache.reg_id != reg.id()) {
    cache.ticks = &reg.counter("router.ticks");
    cache.redirects = &reg.counter("router.redirects");
    cache.cutoffs = &reg.counter("router.cutoff_ticks");
    cache.curtailed = &reg.counter("router.curtailed_ticks");
    cache.reg_id = reg.id();
  }
  cache.ticks->inc();
  if (result.solar_curtailed.value() > 1e-9) cache.curtailed->inc();
  bool redirected = false;
  bool cutoff = false;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeRoute& node = result.nodes[i];
    redirected = redirected || node.battery_delivered.value() > 1e-9 ||
                 node.utility_used.value() > 1e-9;
    cutoff = cutoff || node.battery_cutoff;
    if (node.unmet.value() > 1e-9) {
      obs::emit(obs::EventKind::UnmetDemand, static_cast<int>(i), node.unmet.value());
    }
  }
  if (redirected) cache.redirects->inc();
  if (cutoff) cache.cutoffs->inc();
}

RouteResult route_power(Watts solar, std::span<const Watts> demands,
                        std::span<battery::Battery> batteries,
                        std::span<const std::size_t> charge_priority,
                        const RouterParams& params, Seconds dt,
                        std::span<const double> discharge_floor_soc) {
  RouteResult result;
  RouterScratch scratch;
  route_power_into(solar, demands, batteries, charge_priority, params, dt,
                   discharge_floor_soc, result, scratch);
  return result;
}

}  // namespace baat::power
