#include "power/centralized.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace baat::power {

CentralRouteResult route_power_centralized(util::Watts solar,
                                           std::span<const util::Watts> demands,
                                           battery::Battery& shared,
                                           const RouterParams& params,
                                           util::Seconds dt,
                                           double discharge_floor_soc) {
  BAAT_REQUIRE(solar.value() >= 0.0, "solar power must be >= 0");
  BAAT_REQUIRE(dt.value() > 0.0, "dt must be positive");
  BAAT_REQUIRE(discharge_floor_soc >= 0.0 && discharge_floor_soc <= 1.0,
               "discharge floor must be in [0, 1]");

  CentralRouteResult result;
  const std::size_t n = demands.size();
  result.nodes.resize(n);
  result.solar_available = solar;

  double total_demand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    BAAT_REQUIRE(demands[i].value() >= 0.0, "demand must be >= 0");
    result.nodes[i].demand = demands[i];
    total_demand += demands[i].value();
  }

  // Solar → load.
  double solar_left = solar.value();
  if (total_demand > 0.0 && solar_left > 0.0) {
    const double coverage = std::min(1.0, solar_left / total_demand);
    for (std::size_t i = 0; i < n; ++i) {
      const double used = demands[i].value() * coverage;
      result.nodes[i].solar_used = util::Watts{used};
      solar_left -= used;
    }
  }
  solar_left = std::max(0.0, solar_left);

  // Utility → pooled deficit.
  double deficit = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deficit += (result.nodes[i].demand - result.nodes[i].solar_used).value();
  }
  if (params.utility_budget.value() > 0.0 && deficit > 0.0) {
    const double coverage = std::min(1.0, params.utility_budget.value() / deficit);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = (result.nodes[i].demand - result.nodes[i].solar_used).value();
      result.nodes[i].utility_used = util::Watts{d * coverage};
      result.utility_drawn += util::Watts{d * coverage};
    }
    deficit *= 1.0 - coverage;
  }

  bool stepped = false;

  // Shared bank → pooled deficit.
  if (deficit > 1e-12 && shared.soc() > discharge_floor_soc) {
    const util::Watts dc_needed{deficit / params.inverter_efficiency};
    util::Amperes i_req = current_for_dc_power(dc_needed, shared.open_circuit(),
                                               shared.internal_resistance_ohms());
    i_req = std::min(i_req, shared.max_discharge_current());
    const double ah_above =
        std::max(0.0, shared.soc() - discharge_floor_soc) *
        shared.usable_capacity().value();
    const double ah_req = i_req.value() * dt.value() / 3600.0;
    if (ah_req > ah_above) {
      i_req = util::Amperes{ah_above * 3600.0 / dt.value()};
      result.battery_cutoff = true;
    }
    const auto step = shared.step(i_req, dt);
    stepped = true;
    result.battery_current = step.actual_current;
    result.battery_cutoff = result.battery_cutoff || step.hit_cutoff;
    const double delivered = std::max(0.0, step.terminal_voltage.value() *
                                               step.actual_current.value()) *
                             params.inverter_efficiency;
    result.battery_delivered = util::Watts{std::min(delivered, deficit)};

    // Spread battery power (and any shortfall) proportionally over deficits.
    const double fraction = deficit > 0.0 ? result.battery_delivered.value() / deficit : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = (result.nodes[i].demand - result.nodes[i].solar_used -
                        result.nodes[i].utility_used)
                           .value();
      result.nodes[i].battery_delivered = util::Watts{d * fraction};
      result.nodes[i].unmet = util::Watts{std::max(0.0, d * (1.0 - fraction))};
      result.nodes[i].battery_cutoff = result.battery_cutoff;
    }
  } else if (deficit > 1e-12) {
    result.battery_cutoff = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = (result.nodes[i].demand - result.nodes[i].solar_used -
                        result.nodes[i].utility_used)
                           .value();
      result.nodes[i].unmet = util::Watts{d};
      result.nodes[i].battery_cutoff = true;
    }
  }

  // Surplus → shared charger.
  if (!stepped && solar_left > 1e-9) {
    const util::Amperes accept = shared.max_charge_current();
    if (accept.value() > 0.0) {
      const double terminal_budget = solar_left * params.charger_efficiency;
      const double v_est =
          shared.terminal_voltage(util::Amperes{-accept.value()}).value();
      const double i_chg = std::min(accept.value(), terminal_budget / std::max(1.0, v_est));
      if (i_chg > 0.0) {
        const auto step = shared.step(util::Amperes{-i_chg}, dt);
        stepped = true;
        result.battery_current = step.actual_current;
        const double into =
            step.terminal_voltage.value() * std::fabs(step.actual_current.value());
        result.charge_drawn = util::Watts{into / params.charger_efficiency};
        solar_left = std::max(0.0, solar_left - result.charge_drawn.value());
      }
    }
  }

  if (!stepped) shared.step(util::Amperes{0.0}, dt);
  result.solar_curtailed = util::Watts{solar_left};
  return result;
}

}  // namespace baat::power
