#pragma once

// Per-rack battery pools — the second distributed architecture Fig 7
// supports: "several racks share a pool of batteries (akin to Facebook's
// Open Rack design [3])". Sits between the per-server integration (one
// battery per node, router.hpp) and the fully centralized bank
// (centralized.hpp): nodes within a rack share one pool, racks are
// independent, so a pool exhaustion browns out one rack instead of one node
// or the whole fleet.

#include <span>
#include <vector>

#include "power/centralized.hpp"
#include "power/router.hpp"

namespace baat::power {

/// Node-index grouping: rack r contains the node indices racks[r].
using RackLayout = std::vector<std::vector<std::size_t>>;

/// Evenly split n nodes into `racks` racks (remainders go to the front racks).
RackLayout even_racks(std::size_t nodes, std::size_t racks);

struct RackRouteResult {
  std::vector<NodeRoute> nodes;            ///< per node, like route_power
  std::vector<CentralRouteResult> racks;   ///< per rack aggregate
  util::Watts solar_available{0.0};
  util::Watts solar_curtailed{0.0};
};

/// Routes one tick with one shared battery pool per rack. Solar is split
/// across racks proportional to rack demand; within a rack the pool covers
/// the pooled deficit (centralized semantics per rack). `pools` must have
/// one battery per rack.
RackRouteResult route_power_racked(util::Watts solar,
                                   std::span<const util::Watts> demands,
                                   const RackLayout& layout,
                                   std::span<battery::Battery> pools,
                                   const RouterParams& params, util::Seconds dt);

}  // namespace baat::power
