#pragma once

// Strong-typed physical quantities for the BAAT library.
//
// Battery control code mixes watts, watt-hours, ampere-hours, volts and
// amperes constantly; a silent W/Wh confusion is exactly the kind of bug a
// six-month aging simulation would hide. Every public interface therefore
// takes and returns these wrappers. Cross-unit relations (V*A = W,
// W*duration = Wh, A*duration = Ah, ...) are expressed as explicit free
// functions/operators below; anything not listed requires going through
// .value(), which makes the escape hatch visible in review.

#include <cmath>
#include <compare>
#include <cstdint>

namespace baat::util {

template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.v_ + b.v_}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.v_ - b.v_}; }
  friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.v_}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.v_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{a.v_ * s}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.v_ / s}; }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.v_ / b.v_; }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double v_ = 0.0;
};

using Watts = Quantity<struct WattsTag>;
using WattHours = Quantity<struct WattHoursTag>;
using Volts = Quantity<struct VoltsTag>;
using Amperes = Quantity<struct AmperesTag>;
using AmpereHours = Quantity<struct AmpereHoursTag>;
using Celsius = Quantity<struct CelsiusTag>;
/// Simulation time and durations, in seconds.
using Seconds = Quantity<struct SecondsTag>;
/// US dollars, for the cost model.
using Dollars = Quantity<struct DollarsTag>;

// --- literal-style constructors -------------------------------------------

constexpr Watts watts(double v) { return Watts{v}; }
constexpr WattHours watt_hours(double v) { return WattHours{v}; }
constexpr WattHours kilowatt_hours(double v) { return WattHours{v * 1000.0}; }
constexpr Volts volts(double v) { return Volts{v}; }
constexpr Amperes amperes(double v) { return Amperes{v}; }
constexpr AmpereHours ampere_hours(double v) { return AmpereHours{v}; }
constexpr Celsius celsius(double v) { return Celsius{v}; }
constexpr Seconds seconds(double v) { return Seconds{v}; }
constexpr Seconds minutes(double v) { return Seconds{v * 60.0}; }
constexpr Seconds hours(double v) { return Seconds{v * 3600.0}; }
constexpr Seconds days(double v) { return Seconds{v * 86400.0}; }
constexpr Dollars dollars(double v) { return Dollars{v}; }

// --- cross-unit relations --------------------------------------------------

/// Electrical power from voltage and current.
constexpr Watts operator*(Volts v, Amperes a) { return Watts{v.value() * a.value()}; }
constexpr Watts operator*(Amperes a, Volts v) { return v * a; }

/// Energy accumulated by a power level over a duration.
constexpr WattHours energy(Watts p, Seconds dt) {
  return WattHours{p.value() * dt.value() / 3600.0};
}

/// Electric charge moved by a current over a duration.
constexpr AmpereHours charge(Amperes i, Seconds dt) {
  return AmpereHours{i.value() * dt.value() / 3600.0};
}

/// Current required to deliver a power level at a voltage.
constexpr Amperes current_for(Watts p, Volts v) { return Amperes{p.value() / v.value()}; }

/// Energy stored as charge at a voltage.
constexpr WattHours energy_at(AmpereHours q, Volts v) {
  return WattHours{q.value() * v.value()};
}

/// Average power that drains an energy amount over a duration.
constexpr Watts power_over(WattHours e, Seconds dt) {
  return Watts{e.value() * 3600.0 / dt.value()};
}

// --- small numeric helpers used across modules -----------------------------

constexpr double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

template <typename Tag>
constexpr Quantity<Tag> clamp(Quantity<Tag> x, Quantity<Tag> lo, Quantity<Tag> hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Approximate equality for doubles accumulated over long simulations.
inline bool nearly_equal(double a, double b, double rel = 1e-9, double abs = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

}  // namespace baat::util
