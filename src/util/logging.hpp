#pragma once

// Tiny leveled logger. The simulator is deterministic and single-threaded
// per experiment, so this deliberately avoids locking; benches set the level
// to Warn to keep output clean.

#include <sstream>
#include <string>

namespace baat::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) log_message(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine{LogLevel::Debug}; }
inline detail::LogLine log_info() { return detail::LogLine{LogLevel::Info}; }
inline detail::LogLine log_warn() { return detail::LogLine{LogLevel::Warn}; }
inline detail::LogLine log_error() { return detail::LogLine{LogLevel::Error}; }

}  // namespace baat::util
