#pragma once

// Leveled logger with pluggable sinks. The simulator is deterministic and
// single-threaded per experiment, so this deliberately avoids locking;
// benches set the level to Warn to keep output clean. Parallel sweeps stay
// safe under the same discipline: the level and the process-wide sink are
// only mutated while no workers run, and each sweep worker installs a
// per-thread sink override (set_thread_log_sink) that captures its job's
// lines for deterministic replay in job-index order at join.
//
// Each line carries a level tag and — when the simulated clock has been
// published (util/sim_clock.hpp) — a `dDDD hh:mm:ss` simulated-time prefix,
// mirroring what the prototype's control-server logs looked like. The sink
// is replaceable: stderr by default, a capture sink for tests, or anything
// a tool wants to install.

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace baat::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "DEBUG", "INFO", ... — stable names used in line prefixes and the CLI.
const char* log_level_name(LogLevel level);

/// Parse a CLI-style level name ("debug" | "info" | "warn" | "error" |
/// "off", case-sensitive). Returns nullopt on an unknown name.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// A sink receives the fully formatted line (prefix included, no trailing
/// newline) plus the level for sinks that want to split streams.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Install a sink; an empty function restores the stderr default.
void set_log_sink(LogSink sink);

/// Install a per-thread sink override, shadowing the process-wide sink on
/// the calling thread. Used by the sweep engine so each worker captures its
/// job's log lines for deterministic replay at join. Returns the previous
/// override (for nesting); nullptr removes the override.
LogSink* set_thread_log_sink(LogSink* sink);

/// Deliver an already formatted line to the active sink (thread override,
/// then process sink, then stderr) without re-formatting or level
/// filtering. The sweep engine uses this to replay captured job logs.
void emit_log_line(LogLevel level, const std::string& line);

/// Format `[LEVEL dDDD hh:mm:ss] msg` (the sim-time fields appear only when
/// the simulated clock is set). Exposed for tests of the prefix format.
std::string format_log_line(LogLevel level, const std::string& msg);

void log_message(LogLevel level, const std::string& msg);

/// RAII capture sink for tests: installs itself on construction, records
/// every formatted line, and restores the stderr default on destruction.
class CaptureLog {
 public:
  CaptureLog();
  ~CaptureLog();
  CaptureLog(const CaptureLog&) = delete;
  CaptureLog& operator=(const CaptureLog&) = delete;

  [[nodiscard]] const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) log_message(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine{LogLevel::Debug}; }
inline detail::LogLine log_info() { return detail::LogLine{LogLevel::Info}; }
inline detail::LogLine log_warn() { return detail::LogLine{LogLevel::Warn}; }
inline detail::LogLine log_error() { return detail::LogLine{LogLevel::Error}; }

}  // namespace baat::util
