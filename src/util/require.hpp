#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace baat::util {

/// Thrown when a precondition on a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace baat::util

/// Check a caller-facing precondition; throws PreconditionError on failure.
#define BAAT_REQUIRE(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) ::baat::util::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws InvariantError on failure.
#define BAAT_INVARIANT(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::baat::util::detail::fail_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
