#pragma once

// Bounded-error polynomial replacements for the transcendentals on the
// battery tick hot path (std::pow in the Arrhenius and Peukert laws). The
// default math tier never touches these — they back the opt-in
// `--math=fast` tier (battery::MathMode::Fast), where a relative error of
// ~1e-9 in an aging *rate* is far below the 0.1% lifetime-metric tolerance
// the tier guarantees (see tests/fleet_kernel_test.cpp).
//
// Construction:
//   fast_exp2: split x = n + f with f in [0, 1); 2^f by a degree-10 Taylor
//     expansion of exp(f ln 2) (truncation < 3e-10 relative), scaled by 2^n
//     through direct exponent-bit assembly.
//   fast_log2: reduce the mantissa to [sqrt(1/2), sqrt(2)); ln m by the
//     atanh series in z = (m-1)/(m+1) (|z| <= 0.172, truncation < 1e-11).
//   fast_pow:  a^b = 2^(b * log2 a), for a > 0.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace baat::util {

inline double fast_exp2(double x) {
  if (!(x > -1022.0)) return 0.0;  // underflow (and NaN) to zero
  if (x > 1023.0) return std::numeric_limits<double>::infinity();
  const double xf = std::floor(x);
  const int n = static_cast<int>(xf);
  const double f = x - xf;  // [0, 1)
  // 2^f = sum_k (f ln2)^k / k!, truncated at k = 10.
  double p = 7.054911620801123e-9;
  p = p * f + 1.0178086009239699e-7;
  p = p * f + 1.3215486790144307e-6;
  p = p * f + 1.5252733804059841e-5;
  p = p * f + 1.5403530393381609e-4;
  p = p * f + 1.3333558146428443e-3;
  p = p * f + 9.618129107628477e-3;
  p = p * f + 5.550410866482158e-2;
  p = p * f + 2.402265069591007e-1;
  p = p * f + 6.931471805599453e-1;
  p = p * f + 1.0;
  const auto scale_bits = static_cast<std::uint64_t>(n + 1023) << 52;
  return p * std::bit_cast<double>(scale_bits);
}

inline double fast_log2(double x) {
  // Domain: finite x > 0 (callers pass positive physical ratios).
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  int e = static_cast<int>((bits >> 52) & 0x7ffU) - 1023;
  if (e == -1023) {  // subnormal: renormalize through a 2^54 lift
    bits = std::bit_cast<std::uint64_t>(x * 0x1p54);
    e = static_cast<int>((bits >> 52) & 0x7ffU) - 1023 - 54;
  }
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);
  if (m > 1.4142135623730951) {  // keep m in [sqrt(1/2), sqrt(2)) so |z| stays small
    m *= 0.5;
    ++e;
  }
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  // ln m = 2 z (1 + z^2/3 + z^4/5 + z^6/7 + z^8/9 + z^10/11)
  double p = 1.0 / 11.0;
  p = p * z2 + 1.0 / 9.0;
  p = p * z2 + 1.0 / 7.0;
  p = p * z2 + 1.0 / 5.0;
  p = p * z2 + 1.0 / 3.0;
  p = p * z2 + 1.0;
  const double ln_m = 2.0 * z * p;
  return static_cast<double>(e) + ln_m * 1.4426950408889634;  // 1/ln 2
}

/// a^b for a > 0. Relative error bounded by the exp2/log2 errors scaled by
/// |b * log2 a| — well under 1e-8 for the exponent ranges the aging
/// stressors use (Peukert k-1 = 0.15, Arrhenius (T-20)/10 within ±10).
inline double fast_pow(double a, double b) {
  return fast_exp2(b * fast_log2(a));
}

}  // namespace baat::util
