#pragma once

// Bounded-error polynomial replacements for the transcendentals on the
// battery tick hot path (std::pow in the Arrhenius and Peukert laws). The
// default math tier never touches these — they back the opt-in
// `--math=fast` tier (battery::MathMode::Fast) and, lane-batched through
// util/simd.hpp, the `--math=simd` tier, where a relative error of ~1e-9
// in an aging *rate* is far below the 0.1% lifetime-metric tolerance the
// tiers guarantee (see tests/fleet_kernel_test.cpp).
//
// Construction:
//   fast_exp2: split x = n + f with f in [0, 1); 2^f by a degree-10 Taylor
//     expansion of exp(f ln 2) (truncation < 3e-10 relative), scaled by 2^n
//     through direct exponent-bit assembly.
//   fast_log2: reduce the mantissa to [sqrt(1/2), sqrt(2)); ln m by the
//     atanh series in z = (m-1)/(m+1) (|z| <= 0.172, truncation < 1e-11).
//   fast_pow:  a^b = 2^(b * log2 a), for a > 0.
//
// Edge-case contract (regression-tested in tests/util_simd_test.cpp):
//   - NaN propagates: fast_exp2(NaN) is NaN, never silently 0 — the
//     run-health watchdog's finite_state invariant must be able to see a
//     NaN-poisoned state through the fast tiers.
//   - fast_exp2(-1022.0) == 0x1p-1022 exactly (DBL_MIN is a normal double;
//     the old `!(x > -1022.0)` guard flushed the boundary itself to zero).
//   - x in [-1074, -1022) underflows gradually through the subnormal range
//     (the 2^n scale is assembled as a subnormal and the p*scale product
//     rounds at subnormal granularity); only x < -1074 flushes to 0.
//   - x >= 1024 overflows to +inf; [1023, 1024) still computes (the scale
//     2^1023 is the largest normal exponent).
//   - fast_pow returns exactly 1.0 for a == 1.0 or b == 0.0, matching
//     std::pow (including pow(1, NaN) == pow(NaN, 0) == 1).
//
// The lane-batched counterparts in util/simd.hpp evaluate the identical
// operation sequence branchlessly and are bit-identical per lane; keep the
// two in sync (tests pin scalar-vs-lane agreement across these edges).

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace baat::util {

/// Degree-10 Taylor coefficients of 2^f (highest degree first). The scalar
/// and lane-batched Horner loops both walk this array in the same order, so
/// the two evaluations are the same per-lane operation sequence and stay
/// bitwise identical (the lane form vectorizes across lanes, never across
/// the — inherently serial — coefficient recurrence).
inline constexpr double kExp2PolyCoeff[11] = {
    7.054911620801123e-9,  1.0178086009239699e-7, 1.3215486790144307e-6,
    1.5252733804059841e-5, 1.5403530393381609e-4, 1.3333558146428443e-3,
    9.618129107628477e-3,  5.550410866482158e-2,  2.402265069591007e-1,
    6.931471805599453e-1,  1.0};

/// Degree-10 Taylor core of 2^f for f in [0, 1): shared verbatim by the
/// lane-batched form so scalar and simd tiers agree bitwise.
inline double fast_exp2_poly(double f) {
  double p = kExp2PolyCoeff[0];
  for (int k = 1; k < 11; ++k) p = p * f + kExp2PolyCoeff[k];
  return p;
}

/// 2^n as a double for integer n in [-1074, 1023]: normal exponents are
/// assembled directly in the exponent field, the subnormal range as a
/// mantissa bit. Shared by the scalar and lane-batched paths.
inline double exp2_scale(int n) {
  const std::uint64_t bits = n >= -1022
                                 ? static_cast<std::uint64_t>(n + 1023) << 52
                                 : std::uint64_t{1} << (n + 1074);
  return std::bit_cast<double>(bits);
}

inline double fast_exp2(double x) {
  if (std::isnan(x)) return x;       // propagate, never mask poisoned state
  if (x < -1074.0) return 0.0;       // below the smallest subnormal
  if (x >= 1024.0) return std::numeric_limits<double>::infinity();
  const double xf = std::floor(x);
  const int n = static_cast<int>(xf);  // in [-1074, 1023]
  const double f = x - xf;             // [0, 1)
  return fast_exp2_poly(f) * exp2_scale(n);
}

inline double fast_log2(double x) {
  // Domain: finite x > 0 (callers pass positive physical ratios).
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  int e = static_cast<int>((bits >> 52) & 0x7ffU) - 1023;
  if (e == -1023) {  // subnormal: renormalize through a 2^54 lift
    bits = std::bit_cast<std::uint64_t>(x * 0x1p54);
    e = static_cast<int>((bits >> 52) & 0x7ffU) - 1023 - 54;
  }
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);
  if (m > 1.4142135623730951) {  // keep m in [sqrt(1/2), sqrt(2)) so |z| stays small
    m *= 0.5;
    ++e;
  }
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  // ln m = 2 z (1 + z^2/3 + z^4/5 + z^6/7 + z^8/9 + z^10/11)
  double p = 1.0 / 11.0;
  p = p * z2 + 1.0 / 9.0;
  p = p * z2 + 1.0 / 7.0;
  p = p * z2 + 1.0 / 5.0;
  p = p * z2 + 1.0 / 3.0;
  p = p * z2 + 1.0;
  const double ln_m = 2.0 * z * p;
  return static_cast<double>(e) + ln_m * 1.4426950408889634;  // 1/ln 2
}

/// a^b for a > 0. Relative error bounded by the exp2/log2 errors scaled by
/// |b * log2 a| — well under 1e-8 for the exponent ranges the aging
/// stressors use (Peukert k-1 = 0.15, Arrhenius (T-20)/10 within ±10).
/// The a == 1 and b == 0 hot corners return exactly 1.0 (std::pow does,
/// even for a NaN partner operand; sub-ulp drift here would shift fast-tier
/// lifetime metrics for nothing).
inline double fast_pow(double a, double b) {
  if (a == 1.0 || b == 0.0) return 1.0;
  return fast_exp2(b * fast_log2(a));
}

}  // namespace baat::util
