#include "util/sim_clock.hpp"

#include <cmath>

namespace baat::util {

namespace {
// One clock per thread: each parallel sweep job simulates its own timeline,
// so sharing a single store would both race and interleave unrelated runs'
// timestamps. Single-threaded behaviour is unchanged.
thread_local double g_sim_time = -1.0;
}

void set_sim_time(double seconds) { g_sim_time = seconds; }

double sim_time() { return g_sim_time; }

long sim_day() {
  if (g_sim_time < 0.0) return -1;
  return static_cast<long>(g_sim_time / 86400.0);
}

double sim_time_of_day() {
  if (g_sim_time < 0.0) return -1.0;
  return std::fmod(g_sim_time, 86400.0);
}

}  // namespace baat::util
