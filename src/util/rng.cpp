#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"
#include "util/units.hpp"

namespace baat::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // xoshiro's all-zero state is absorbing; splitmix64 of consecutive values
  // cannot produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::stream(std::uint64_t seed, std::string_view name) {
  return Rng{seed ^ fnv1a(name)};
}

Rng Rng::fork(std::string_view name) {
  return Rng{next() ^ fnv1a(name)};
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa → uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BAAT_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  BAAT_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (~0ULL / n);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  BAAT_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  return uniform() < clamp01(p);
}

void Rng::save_state(snapshot::SnapshotWriter& w) const {
  for (std::uint64_t word : s_) w.write_u64(word);
  w.write_f64(cached_normal_);
  w.write_bool(has_cached_normal_);
}

void Rng::load_state(snapshot::SnapshotReader& r) {
  for (auto& word : s_) word = r.read_u64();
  cached_normal_ = r.read_f64();
  has_cached_normal_ = r.read_bool();
}

}  // namespace baat::util
