#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace baat::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  BAAT_REQUIRE(n_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  BAAT_REQUIRE(n_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  BAAT_REQUIRE(n_ > 0, "max of empty RunningStats");
  return max_;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  BAAT_REQUIRE(edges_.size() >= 2, "histogram needs at least two edges");
  BAAT_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
               "histogram edges must be strictly increasing");
  counts_.assign(edges_.size() - 1, 0.0);
}

Histogram Histogram::uniform(double lo, double hi, std::size_t n_bins) {
  BAAT_REQUIRE(n_bins > 0 && lo < hi, "invalid uniform histogram spec");
  std::vector<double> edges(n_bins + 1);
  for (std::size_t i = 0; i <= n_bins; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n_bins);
  }
  return Histogram{std::move(edges)};
}

void Histogram::add(double x, double weight) {
  // NaN fails every ordered comparison: it would fall through both range
  // guards and upper_bound would return end(), indexing one past the last
  // bin. Catch it first and keep it out of the bins entirely.
  if (std::isnan(x)) {
    nan_ += weight;
    return;
  }
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[idx] += weight;
}

void Histogram::merge(const Histogram& other) {
  BAAT_REQUIRE(edges_ == other.edges_, "histogram merge requires identical edges");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nan_ += other.nan_;
}

double Histogram::bin_weight(std::size_t i) const {
  BAAT_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::total_weight() const {
  double t = underflow_ + overflow_;
  for (double c : counts_) t += c;
  return t;
}

double Histogram::fraction(std::size_t i) const {
  const double total = total_weight();
  if (total <= 0.0) return 0.0;
  return bin_weight(i) / total;
}

double Histogram::bin_lo(std::size_t i) const {
  BAAT_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return edges_[i];
}

double Histogram::bin_hi(std::size_t i) const {
  BAAT_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return edges_[i + 1];
}

std::string Histogram::bin_label(std::size_t i) const {
  std::ostringstream os;
  os << '[' << bin_lo(i) << ", " << bin_hi(i) << ')';
  return os.str();
}

void RunningStats::save_state(snapshot::SnapshotWriter& w) const {
  w.write_u64(n_);
  w.write_f64(mean_);
  w.write_f64(m2_);
  w.write_f64(min_);
  w.write_f64(max_);
}

void RunningStats::load_state(snapshot::SnapshotReader& r) {
  n_ = static_cast<std::size_t>(r.read_u64());
  mean_ = r.read_f64();
  m2_ = r.read_f64();
  min_ = r.read_f64();
  max_ = r.read_f64();
}

void Histogram::save_state(snapshot::SnapshotWriter& w) const {
  w.write_f64_vec(edges_);
  w.write_f64_vec(counts_);
  w.write_f64(underflow_);
  w.write_f64(overflow_);
  w.write_f64(nan_);
}

void Histogram::load_state(snapshot::SnapshotReader& r) {
  edges_ = r.read_f64_vec();
  counts_ = r.read_f64_vec();
  if (edges_.size() < 2 || counts_.size() + 1 != edges_.size()) {
    throw snapshot::SnapshotError("histogram state is inconsistent: " +
                                  std::to_string(edges_.size()) + " edges for " +
                                  std::to_string(counts_.size()) + " bins");
  }
  underflow_ = r.read_f64();
  overflow_ = r.read_f64();
  nan_ = r.read_f64();
}

double quantile(std::span<const double> xs, double q) {
  BAAT_REQUIRE(!xs.empty(), "quantile of empty sample");
  BAAT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> xs) {
  BAAT_REQUIRE(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace baat::util
