#include "util/logging.hpp"

#include <cstdio>
#include <iostream>

#include "util/sim_clock.hpp"

namespace baat::util {

namespace {
LogLevel g_level = LogLevel::Warn;
LogSink g_sink;  // empty = stderr default
// Per-thread override installed by the sweep engine; the level and the
// process-wide sink are only mutated in single-threaded phases.
thread_local LogSink* t_sink = nullptr;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return std::nullopt;
}

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

LogSink* set_thread_log_sink(LogSink* sink) {
  LogSink* previous = t_sink;
  t_sink = sink;
  return previous;
}

void emit_log_line(LogLevel level, const std::string& line) {
  if (t_sink != nullptr && *t_sink) {
    (*t_sink)(level, line);
  } else if (g_sink) {
    g_sink(level, line);
  } else {
    std::cerr << line << '\n';
  }
}

std::string format_log_line(LogLevel level, const std::string& msg) {
  std::string line = "[";
  line += log_level_name(level);
  if (sim_time() >= 0.0) {
    const double tod = sim_time_of_day();
    const auto h = static_cast<int>(tod / 3600.0);
    const auto m = static_cast<int>(tod / 60.0) % 60;
    const auto s = static_cast<int>(tod) % 60;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " d%03ld %02d:%02d:%02d", sim_day(), h, m, s);
    line += buf;
  }
  line += "] ";
  line += msg;
  return line;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  emit_log_line(level, format_log_line(level, msg));
}

CaptureLog::CaptureLog() {
  set_log_sink([this](LogLevel, const std::string& line) { lines_.push_back(line); });
}

CaptureLog::~CaptureLog() { set_log_sink({}); }

}  // namespace baat::util
