#include "util/csv.hpp"

#include <iomanip>
#include <limits>

#include "util/require.hpp"

namespace baat::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  BAAT_REQUIRE(!header.empty(), "CSV header must be non-empty");
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_line(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  BAAT_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  write_line(cells);
  ++rows_;
}

std::string CsvWriter::cell(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) throw std::runtime_error("CsvWriter: write failed");
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace baat::util
