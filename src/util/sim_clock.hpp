#pragma once

// Global simulated-time clock. The cluster loop publishes the current
// simulated timestamp once per tick so that layers with no access to the
// simulation state (logging prefixes, trace-event stamping, offline probes)
// can stamp their output with *simulated* time rather than wall time.
//
// The clock is a plain thread-local double store: writing it never perturbs
// simulation state, and reading it is a single load. Each thread owns its
// own clock, so parallel sweep jobs (sim/sweep.hpp) keep independent
// timelines without synchronisation. Negative means "unset" (e.g. unit
// tests of lower layers that never run a cluster).

namespace baat::util {

/// Publish the current simulated time in seconds since the start of the
/// run. Pass a negative value to clear the clock.
void set_sim_time(double seconds);

/// Current simulated time in seconds, or a negative value when unset.
double sim_time();

/// Simulated day index derived from the clock (86400 s days), or -1 when
/// the clock is unset.
long sim_day();

/// Seconds since midnight of the current simulated day, or a negative
/// value when the clock is unset.
double sim_time_of_day();

}  // namespace baat::util
