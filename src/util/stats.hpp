#pragma once

// Streaming statistics and histograms used by the telemetry and result
// aggregation layers. Everything here is O(1) per sample (except quantile,
// which sorts a retained sample vector) so six-month simulations can log
// every step without blowing up memory.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "snapshot/serialize.hpp"

namespace baat::util {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-edge histogram. Edges must be strictly increasing; samples outside
/// [edges.front(), edges.back()) land in underflow/overflow counters. NaN
/// samples land in a separate counter and never reach the bins (they are
/// unordered, so no bin or edge comparison is meaningful for them).
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  /// Convenience: n equal-width bins over [lo, hi).
  static Histogram uniform(double lo, double hi, std::size_t n_bins);

  void add(double x, double weight = 1.0);

  /// Accumulate another histogram with identical edges: bins, underflow,
  /// overflow and the NaN counter are all carried over.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_weight(std::size_t i) const;
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] double overflow() const { return overflow_; }
  /// Weight of NaN samples; excluded from total_weight() and fractions.
  [[nodiscard]] double nan_weight() const { return nan_; }
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] double total_weight() const;
  /// Fraction of total weight in bin i (0 if histogram is empty).
  [[nodiscard]] double fraction(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::string bin_label(std::size_t i) const;

  /// Checkpoint support. load_state replaces edges and all counters, so a
  /// restored histogram merges bit-identically with one that never paused.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double nan_ = 0.0;
};

/// Linear-interpolated quantile of a sample set; q in [0, 1]. Copies + sorts.
double quantile(std::span<const double> xs, double q);

/// Arithmetic mean of a sample set; requires non-empty.
double mean_of(std::span<const double> xs);

}  // namespace baat::util
