#pragma once

// Deterministic random number generation.
//
// Every stochastic element of the simulator (weather, workload jitter,
// manufacturing variation, sensor noise) draws from a named stream derived
// from a single experiment seed. Two streams with different names are
// statistically independent; the same (seed, name) pair always yields the
// same sequence, so every experiment in the paper reproduction is
// bit-for-bit repeatable.

#include <cstdint>
#include <string_view>

#include "snapshot/serialize.hpp"

namespace baat::util {

/// xoshiro256** — fast, high-quality, tiny-state PRNG.
class Rng {
 public:
  /// Seeds from a 64-bit value via SplitMix64 (never produces the all-zero state).
  explicit Rng(std::uint64_t seed);

  /// Derives an independent stream for (seed, name) — e.g. Rng::stream(42, "weather").
  static Rng stream(std::uint64_t seed, std::string_view name);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (cached second variate).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Independent child stream (e.g. per battery node).
  Rng fork(std::string_view name);

  /// Checkpoint support: serializes the full generator state (xoshiro words
  /// plus the Box–Muller cache) so a restored stream continues the exact
  /// sequence the saved one would have produced.
  void save_state(snapshot::SnapshotWriter& w) const;
  void load_state(snapshot::SnapshotReader& r);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// FNV-1a hash for deriving stream names; exposed for testability.
std::uint64_t fnv1a(std::string_view s);

}  // namespace baat::util
