#pragma once

// Small portable SIMD layer for the lane-batched tick kernel
// (battery::MathMode::Simd). A Pack<W> is W doubles advanced in lockstep;
// Mask<W> is the all-bits lane predicate the branchless kernel selects
// with. Everything is written as fixed-trip-count lane loops over plain
// arrays, and on x86 TUs compiled with AVX2 flags (see
// src/battery/CMakeLists.txt) the Pack<4>/Mask<4> operations are overridden
// by intrinsic forms below — the autovectorizer handles the straight-line
// lane arithmetic well, but the mask plumbing, selects, and the
// integer-domain 2^n assembly in fast_exp2 each cost it a pile of
// lane-extraction shuffles that the intrinsics collapse to one instruction.
// aarch64 builds get 2-lane NEON from the stock autovectorizer, and any
// other target falls back to correct scalar code — the same generic source
// is the fallback, so the portable path cannot rot separately from the
// fast one.
//
// Bit-exactness contract: every op is a per-lane IEEE-754 double op (no
// FMA contraction — the kernel TUs compile with -ffp-contract=off, and the
// intrinsic forms use no FMA), so a Pack<1> program is bit-identical to
// each lane of the same Pack<W> program, the intrinsic forms are
// bit-identical to the generic loops (vminpd/vmaxpd/vroundpd/vblendvpd
// reproduce the ternary/floor/bitwise-select semantics exactly), and the
// lane-batched fast_exp2/fast_log2/fast_pow below are bit-identical to
// their scalar forms in util/fastmath.hpp (they share the polynomial-core
// coefficients; the branchless select()s pick exactly the value the scalar
// early-returns produce). tests/util_simd_test.cpp pins this lane-vs-scalar
// agreement across the domain edges.
//
// The inline ABI namespace keeps the two implementations ODR-clean: a TU
// compiled with AVX2 flags and one compiled without instantiate Pack<4>
// code against different primitives, so the symbols must not merge across
// TUs. Each TU is internally consistent; the bitwise contract above is
// what keeps the *values* identical across the boundary.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "util/fastmath.hpp"

namespace baat::util::simd {

/// Lane count of the batched kernel tier. Fixed at 8 on every target: two
/// AVX2 registers, four NEON registers, or eight scalar iterations — keeping
/// the width target-independent keeps trajectories byte-identical across
/// machines (the same property the sweep engine guarantees across --jobs).
/// Two AVX2 registers rather than one: the kernel's dependency chains are
/// long (poly → scale → select), and the wider group gives the scheduler a
/// second independent chain to interleave at no extra register pressure.
inline constexpr int kLanes = 8;

/// Compile-time description of what the enclosing TU's flags turned the
/// lane loops into; surfaced by benches so a mis-flagged build is visible.
constexpr const char* backend_name() {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

#if defined(__AVX2__)
inline namespace abi_avx2 {
#else
inline namespace abi_portable {
#endif

template <int W>
struct alignas(W >= 4 ? 32 : 8) Pack {
  double v[W];
};

template <int W>
struct alignas(W >= 4 ? 32 : 8) Mask {
  std::uint64_t v[W];  ///< all-ones (true) or all-zeros per lane
};

template <int W>
inline Pack<W> broadcast(double x) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = x;
  return r;
}

template <int W>
inline Pack<W> load(const double* p) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = p[i];
  return r;
}

template <int W>
inline void store(double* p, const Pack<W>& a) {
  for (int i = 0; i < W; ++i) p[i] = a.v[i];
}

// Mask spill/reload for staged kernels that carry a mask across phase
// boundaries through a scratch buffer. Plain 64-bit copies — the compiler
// vectorizes these fixed-trip loops on its own, so no intrinsic forms.
template <int W>
inline void store_mask(std::uint64_t* p, const Mask<W>& m) {
  for (int i = 0; i < W; ++i) p[i] = m.v[i];
}

template <int W>
inline Mask<W> load_mask(const std::uint64_t* p) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) m.v[i] = p[i];
  return m;
}

#define BAAT_SIMD_BINOP(op)                                     \
  template <int W>                                              \
  inline Pack<W> operator op(const Pack<W>& a, const Pack<W>& b) { \
    Pack<W> r;                                                  \
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] op b.v[i];      \
    return r;                                                   \
  }
BAAT_SIMD_BINOP(+)
BAAT_SIMD_BINOP(-)
BAAT_SIMD_BINOP(*)
BAAT_SIMD_BINOP(/)
#undef BAAT_SIMD_BINOP

template <int W>
inline Pack<W> operator-(const Pack<W>& a) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = -a.v[i];
  return r;
}

template <int W>
inline Pack<W> min(const Pack<W>& a, const Pack<W>& b) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}

template <int W>
inline Pack<W> max(const Pack<W>& a, const Pack<W>& b) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}

template <int W>
inline Pack<W> abs(const Pack<W>& a) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = std::fabs(a.v[i]);
  return r;
}

template <int W>
inline Pack<W> floor(const Pack<W>& a) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = std::floor(a.v[i]);
  return r;
}

#define BAAT_SIMD_CMP(name, op)                                  \
  template <int W>                                               \
  inline Mask<W> name(const Pack<W>& a, const Pack<W>& b) {      \
    Mask<W> m;                                                   \
    for (int i = 0; i < W; ++i)                                  \
      m.v[i] = a.v[i] op b.v[i] ? ~std::uint64_t{0} : 0;         \
    return m;                                                    \
  }
BAAT_SIMD_CMP(cmp_lt, <)
BAAT_SIMD_CMP(cmp_le, <=)
BAAT_SIMD_CMP(cmp_gt, >)
BAAT_SIMD_CMP(cmp_ge, >=)
BAAT_SIMD_CMP(cmp_eq, ==)
#undef BAAT_SIMD_CMP

template <int W>
inline Mask<W> is_nan(const Pack<W>& a) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) m.v[i] = a.v[i] != a.v[i] ? ~std::uint64_t{0} : 0;
  return m;
}

template <int W>
inline Mask<W> mask_and(const Mask<W>& a, const Mask<W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) m.v[i] = a.v[i] & b.v[i];
  return m;
}

template <int W>
inline Mask<W> mask_or(const Mask<W>& a, const Mask<W>& b) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) m.v[i] = a.v[i] | b.v[i];
  return m;
}

template <int W>
inline Mask<W> mask_not(const Mask<W>& a) {
  Mask<W> m;
  for (int i = 0; i < W; ++i) m.v[i] = ~a.v[i];
  return m;
}

template <int W>
inline bool lane(const Mask<W>& m, int i) {
  return m.v[i] != 0;
}

template <int W>
inline bool any(const Mask<W>& m) {
  std::uint64_t acc = 0;
  for (int i = 0; i < W; ++i) acc |= m.v[i];
  return acc != 0;
}

/// Bitwise per-lane select: lane = m ? a : b. Bitwise (not arithmetic) so
/// NaN/inf garbage in the unselected operand never leaks into the result —
/// the branchless kernel computes both sides of every branch and relies on
/// this to discard the untaken one exactly.
template <int W>
inline Pack<W> select(const Mask<W>& m, const Pack<W>& a, const Pack<W>& b) {
  Pack<W> r;
  for (int i = 0; i < W; ++i) {
    const std::uint64_t ab = std::bit_cast<std::uint64_t>(a.v[i]);
    const std::uint64_t bb = std::bit_cast<std::uint64_t>(b.v[i]);
    r.v[i] = std::bit_cast<double>((ab & m.v[i]) | (bb & ~m.v[i]));
  }
  return r;
}

/// Masked accumulate into a scalar slot: adds a.v[i] only on true lanes.
/// (Adding a literal 0.0 instead would still be exact for the kernel's
/// non-negative counters, but skipping keeps -0.0 slots untouched too.)
template <int W>
inline void accumulate_lane(double& slot, const Mask<W>& m, const Pack<W>& a, int i) {
  if (m.v[i] != 0) slot += a.v[i];
}

/// 2^n per lane for the integer n = (int)xf.v[i] in [-1074, 1023]; the lane
/// form of exp2_scale, overridden with integer SIMD under AVX2.
template <int W>
inline Pack<W> exp2_scale_lanes(const Pack<W>& xf) {
  Pack<W> scale;
  for (int i = 0; i < W; ++i) scale.v[i] = exp2_scale(static_cast<int>(xf.v[i]));
  return scale;
}

/// Exponent/mantissa split for fast_log2: per lane, x = mv * 2^ev with
/// mv in [sqrt(1/2), sqrt(2)) and ev an integer-valued double. Mirrors the
/// scalar fast_log2 extraction exactly (including the 2^54 subnormal lift);
/// overridden with integer SIMD under AVX2 — this runs on every Peukert
/// memo miss, which a load-following duty cycle makes the common case.
template <int W>
inline void log2_extract_lanes(const Pack<W>& x, Pack<W>& mv, Pack<W>& ev) {
  for (int i = 0; i < W; ++i) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(x.v[i]);
    int e = static_cast<int>((bits >> 52) & 0x7ffU) - 1023;
    if (e == -1023) {  // subnormal: renormalize through a 2^54 lift
      bits = std::bit_cast<std::uint64_t>(x.v[i] * 0x1p54);
      e = static_cast<int>((bits >> 52) & 0x7ffU) - 1023 - 54;
    }
    double m =
        std::bit_cast<double>((bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL);
    if (m > 1.4142135623730951) {
      m *= 0.5;
      ++e;
    }
    mv.v[i] = m;
    ev.v[i] = static_cast<double>(e);
  }
}

#if defined(__AVX2__)

// --- AVX2 forms of the Pack<4>/Mask<4> primitives ----------------------------
// Plain overloads: for W = 4 calls with deduced arguments these win over the
// templates above, including inside the fastmath templates below (resolved
// at instantiation via ADL). Each is bit-identical to its generic loop:
// vminpd/vmaxpd implement exactly the `a op b ? a : b` ternary (second
// operand on false/NaN), vroundpd(0x9) is std::floor, vblendvpd keys on the
// mask sign bit (set exactly on all-ones lanes), and the cmp intrinsics use
// the quiet ordered/unordered predicates matching the scalar comparisons.

namespace avx {
inline __m256d pd(const Pack<4>& a) { return _mm256_load_pd(a.v); }
inline Pack<4> from_pd(__m256d x) {
  Pack<4> r;
  _mm256_store_pd(r.v, x);
  return r;
}
inline __m256d mask_pd(const Mask<4>& m) {
  return _mm256_load_pd(reinterpret_cast<const double*>(m.v));
}
inline Mask<4> from_mask_pd(__m256d x) {
  Mask<4> r;
  _mm256_store_pd(reinterpret_cast<double*>(r.v), x);
  return r;
}
}  // namespace avx

inline Pack<4> operator+(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_add_pd(avx::pd(a), avx::pd(b)));
}
inline Pack<4> operator-(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_sub_pd(avx::pd(a), avx::pd(b)));
}
inline Pack<4> operator*(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_mul_pd(avx::pd(a), avx::pd(b)));
}
inline Pack<4> operator/(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_div_pd(avx::pd(a), avx::pd(b)));
}
inline Pack<4> operator-(const Pack<4>& a) {
  return avx::from_pd(_mm256_xor_pd(avx::pd(a), _mm256_set1_pd(-0.0)));
}
inline Pack<4> min(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_min_pd(avx::pd(a), avx::pd(b)));
}
inline Pack<4> max(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_max_pd(avx::pd(a), avx::pd(b)));
}
inline Pack<4> abs(const Pack<4>& a) {
  return avx::from_pd(
      _mm256_andnot_pd(_mm256_set1_pd(-0.0), avx::pd(a)));
}
inline Pack<4> floor(const Pack<4>& a) {
  return avx::from_pd(
      _mm256_round_pd(avx::pd(a), _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC));
}
inline Mask<4> cmp_lt(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_mask_pd(_mm256_cmp_pd(avx::pd(a), avx::pd(b), _CMP_LT_OQ));
}
inline Mask<4> cmp_le(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_mask_pd(_mm256_cmp_pd(avx::pd(a), avx::pd(b), _CMP_LE_OQ));
}
inline Mask<4> cmp_gt(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_mask_pd(_mm256_cmp_pd(avx::pd(a), avx::pd(b), _CMP_GT_OQ));
}
inline Mask<4> cmp_ge(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_mask_pd(_mm256_cmp_pd(avx::pd(a), avx::pd(b), _CMP_GE_OQ));
}
inline Mask<4> cmp_eq(const Pack<4>& a, const Pack<4>& b) {
  return avx::from_mask_pd(_mm256_cmp_pd(avx::pd(a), avx::pd(b), _CMP_EQ_OQ));
}
inline Mask<4> is_nan(const Pack<4>& a) {
  return avx::from_mask_pd(_mm256_cmp_pd(avx::pd(a), avx::pd(a), _CMP_UNORD_Q));
}
inline Mask<4> mask_and(const Mask<4>& a, const Mask<4>& b) {
  return avx::from_mask_pd(_mm256_and_pd(avx::mask_pd(a), avx::mask_pd(b)));
}
inline Mask<4> mask_or(const Mask<4>& a, const Mask<4>& b) {
  return avx::from_mask_pd(_mm256_or_pd(avx::mask_pd(a), avx::mask_pd(b)));
}
inline Mask<4> mask_not(const Mask<4>& a) {
  return avx::from_mask_pd(
      _mm256_xor_pd(avx::mask_pd(a), _mm256_castsi256_pd(_mm256_set1_epi64x(-1))));
}
inline bool any(const Mask<4>& m) {
  return _mm256_movemask_pd(avx::mask_pd(m)) != 0;
}
inline Pack<4> select(const Mask<4>& m, const Pack<4>& a, const Pack<4>& b) {
  return avx::from_pd(_mm256_blendv_pd(avx::pd(b), avx::pd(a), avx::mask_pd(m)));
}
namespace avx {
inline __m256d exp2_scale_256(__m256d xf) {
  // Same two-arm bit assembly as exp2_scale, in the integer domain: normal
  // exponents as (n + 1023) << 52, the subnormal range as 1 << (n + 1074).
  // Each arm's garbage on the other's lanes (shift counts out of [0, 64))
  // is discarded by the blend, and the intrinsic shifts are defined for
  // any count.
  const __m256i n = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(xf));
  const __m256i normal = _mm256_cmpgt_epi64(n, _mm256_set1_epi64x(-1023));
  const __m256i normal_bits =
      _mm256_slli_epi64(_mm256_add_epi64(n, _mm256_set1_epi64x(1023)), 52);
  const __m256i sub_bits = _mm256_sllv_epi64(
      _mm256_set1_epi64x(1), _mm256_add_epi64(n, _mm256_set1_epi64x(1074)));
  return _mm256_castsi256_pd(_mm256_blendv_epi8(sub_bits, normal_bits, normal));
}
}  // namespace avx

inline Pack<4> exp2_scale_lanes(const Pack<4>& xf) {
  return avx::from_pd(avx::exp2_scale_256(avx::pd(xf)));
}

namespace avx {
inline void log2_extract_256(__m256d x, __m256d* m, __m256d* e) {
  // Integer-domain form of the fast_log2 extraction, bit-identical to the
  // scalar branch structure: both the subnormal lift and the sqrt(2) fold
  // are computed unconditionally and blended in. All arithmetic is on
  // exactly-representable integers, so no rounding can diverge.
  const __m256i mant_mask = _mm256_set1_epi64x(0x000fffffffffffffLL);
  const __m256i one_bits = _mm256_set1_epi64x(0x3ff0000000000000LL);
  const __m256i exp_mask = _mm256_set1_epi64x(0x7ffLL);
  __m256i bits = _mm256_castpd_si256(x);
  __m256i e_raw = _mm256_and_si256(_mm256_srli_epi64(bits, 52), exp_mask);
  // Subnormal lanes (raw exponent 0): extract from x * 2^54 and rebias by 54.
  const __m256i is_sub = _mm256_cmpeq_epi64(e_raw, _mm256_setzero_si256());
  const __m256i bits_l =
      _mm256_castpd_si256(_mm256_mul_pd(x, _mm256_set1_pd(0x1p54)));
  const __m256i e_raw_l = _mm256_sub_epi64(
      _mm256_and_si256(_mm256_srli_epi64(bits_l, 52), exp_mask),
      _mm256_set1_epi64x(54));
  bits = _mm256_blendv_epi8(bits, bits_l, is_sub);
  e_raw = _mm256_blendv_epi8(e_raw, e_raw_l, is_sub);
  __m256d mm = _mm256_castsi256_pd(
      _mm256_or_si256(_mm256_and_si256(bits, mant_mask), one_bits));
  // e_raw is in [-54, 2047]; shift by +1077 so the int64 -> double trick
  // (OR into a 2^52 payload, subtract the bias as a double) sees a
  // non-negative value.
  const __m256i e_biased = _mm256_add_epi64(e_raw, _mm256_set1_epi64x(1077));
  __m256d ee = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(e_biased,
                                          _mm256_set1_epi64x(0x4330000000000000LL))),
      _mm256_set1_pd(0x1p52 + 1077.0 + 1023.0));
  // Fold m in [sqrt(2), 2) down by one octave.
  const __m256d fold =
      _mm256_cmp_pd(mm, _mm256_set1_pd(1.4142135623730951), _CMP_GT_OQ);
  mm = _mm256_blendv_pd(mm, _mm256_mul_pd(mm, _mm256_set1_pd(0.5)), fold);
  ee = _mm256_blendv_pd(ee, _mm256_add_pd(ee, _mm256_set1_pd(1.0)), fold);
  *m = mm;
  *e = ee;
}
}  // namespace avx

inline void log2_extract_lanes(const Pack<4>& x, Pack<4>& mv, Pack<4>& ev) {
  __m256d m, e;
  avx::log2_extract_256(avx::pd(x), &m, &e);
  mv = avx::from_pd(m);
  ev = avx::from_pd(e);
}

// --- AVX2 forms of the Pack<8>/Mask<8> primitives ----------------------------
// kLanes is 8: a group carries two independent 256-bit streams, which gives
// the out-of-order core a second dependency chain to overlap with the first
// through the kernel's serial OCV -> clamp -> divide spine. Each op forwards
// the intrinsic to both halves; per-lane results are identical to the
// Pack<4> forms and therefore to the generic loops.

namespace avx {
inline __m256d lo_pd(const Pack<8>& a) { return _mm256_load_pd(a.v); }
inline __m256d hi_pd(const Pack<8>& a) { return _mm256_load_pd(a.v + 4); }
inline Pack<8> join_pd(__m256d l, __m256d h) {
  Pack<8> r;
  _mm256_store_pd(r.v, l);
  _mm256_store_pd(r.v + 4, h);
  return r;
}
inline __m256d lo_mask(const Mask<8>& m) {
  return _mm256_load_pd(reinterpret_cast<const double*>(m.v));
}
inline __m256d hi_mask(const Mask<8>& m) {
  return _mm256_load_pd(reinterpret_cast<const double*>(m.v) + 4);
}
inline Mask<8> join_mask(__m256d l, __m256d h) {
  Mask<8> r;
  auto* p = reinterpret_cast<double*>(r.v);
  _mm256_store_pd(p, l);
  _mm256_store_pd(p + 4, h);
  return r;
}
}  // namespace avx

#define BAAT_SIMD_AVX8_OP(fn, intrin)                             \
  inline Pack<8> fn(const Pack<8>& a, const Pack<8>& b) {         \
    return avx::join_pd(intrin(avx::lo_pd(a), avx::lo_pd(b)),     \
                        intrin(avx::hi_pd(a), avx::hi_pd(b)));    \
  }
BAAT_SIMD_AVX8_OP(operator+, _mm256_add_pd)
BAAT_SIMD_AVX8_OP(operator-, _mm256_sub_pd)
BAAT_SIMD_AVX8_OP(operator*, _mm256_mul_pd)
BAAT_SIMD_AVX8_OP(operator/, _mm256_div_pd)
BAAT_SIMD_AVX8_OP(min, _mm256_min_pd)
BAAT_SIMD_AVX8_OP(max, _mm256_max_pd)
#undef BAAT_SIMD_AVX8_OP

inline Pack<8> operator-(const Pack<8>& a) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  return avx::join_pd(_mm256_xor_pd(avx::lo_pd(a), sign),
                      _mm256_xor_pd(avx::hi_pd(a), sign));
}
inline Pack<8> abs(const Pack<8>& a) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  return avx::join_pd(_mm256_andnot_pd(sign, avx::lo_pd(a)),
                      _mm256_andnot_pd(sign, avx::hi_pd(a)));
}
inline Pack<8> floor(const Pack<8>& a) {
  constexpr int kMode = _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC;
  return avx::join_pd(_mm256_round_pd(avx::lo_pd(a), kMode),
                      _mm256_round_pd(avx::hi_pd(a), kMode));
}

#define BAAT_SIMD_AVX8_CMP(fn, pred)                                    \
  inline Mask<8> fn(const Pack<8>& a, const Pack<8>& b) {               \
    return avx::join_mask(_mm256_cmp_pd(avx::lo_pd(a), avx::lo_pd(b), pred), \
                          _mm256_cmp_pd(avx::hi_pd(a), avx::hi_pd(b), pred)); \
  }
BAAT_SIMD_AVX8_CMP(cmp_lt, _CMP_LT_OQ)
BAAT_SIMD_AVX8_CMP(cmp_le, _CMP_LE_OQ)
BAAT_SIMD_AVX8_CMP(cmp_gt, _CMP_GT_OQ)
BAAT_SIMD_AVX8_CMP(cmp_ge, _CMP_GE_OQ)
BAAT_SIMD_AVX8_CMP(cmp_eq, _CMP_EQ_OQ)
#undef BAAT_SIMD_AVX8_CMP

inline Mask<8> is_nan(const Pack<8>& a) {
  return avx::join_mask(
      _mm256_cmp_pd(avx::lo_pd(a), avx::lo_pd(a), _CMP_UNORD_Q),
      _mm256_cmp_pd(avx::hi_pd(a), avx::hi_pd(a), _CMP_UNORD_Q));
}
inline Mask<8> mask_and(const Mask<8>& a, const Mask<8>& b) {
  return avx::join_mask(_mm256_and_pd(avx::lo_mask(a), avx::lo_mask(b)),
                        _mm256_and_pd(avx::hi_mask(a), avx::hi_mask(b)));
}
inline Mask<8> mask_or(const Mask<8>& a, const Mask<8>& b) {
  return avx::join_mask(_mm256_or_pd(avx::lo_mask(a), avx::lo_mask(b)),
                        _mm256_or_pd(avx::hi_mask(a), avx::hi_mask(b)));
}
inline Mask<8> mask_not(const Mask<8>& a) {
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return avx::join_mask(_mm256_xor_pd(avx::lo_mask(a), ones),
                        _mm256_xor_pd(avx::hi_mask(a), ones));
}
inline bool any(const Mask<8>& m) {
  return _mm256_movemask_pd(_mm256_or_pd(avx::lo_mask(m), avx::hi_mask(m))) != 0;
}
inline Pack<8> select(const Mask<8>& m, const Pack<8>& a, const Pack<8>& b) {
  return avx::join_pd(
      _mm256_blendv_pd(avx::lo_pd(b), avx::lo_pd(a), avx::lo_mask(m)),
      _mm256_blendv_pd(avx::hi_pd(b), avx::hi_pd(a), avx::hi_mask(m)));
}
inline Pack<8> exp2_scale_lanes(const Pack<8>& xf) {
  return avx::join_pd(avx::exp2_scale_256(avx::lo_pd(xf)),
                      avx::exp2_scale_256(avx::hi_pd(xf)));
}

inline void log2_extract_lanes(const Pack<8>& x, Pack<8>& mv, Pack<8>& ev) {
  __m256d ml, el, mh, eh;
  avx::log2_extract_256(avx::lo_pd(x), &ml, &el);
  avx::log2_extract_256(avx::hi_pd(x), &mh, &eh);
  mv = avx::join_pd(ml, mh);
  ev = avx::join_pd(el, eh);
}

#endif  // __AVX2__

// --- lane-batched fastmath ---------------------------------------------------

/// Branchless lane form of util::fast_exp2 — bit-identical per lane
/// (shared polynomial core and 2^n assembly; the masks reproduce the
/// scalar early-returns: NaN propagates, x < -1074 flushes to 0,
/// x >= 1024 overflows to inf, [-1074, -1022) underflows gradually).
template <int W>
inline Pack<W> fast_exp2(const Pack<W>& x) {
  const Mask<W> nan_m = is_nan(x);
  const Mask<W> under = cmp_lt(x, broadcast<W>(-1074.0));
  const Mask<W> over = cmp_ge(x, broadcast<W>(1024.0));
  // Special lanes are overwritten below; fold them to 0 first so the
  // floor/int/shift lane math stays defined everywhere.
  const Mask<W> special = mask_or(mask_or(nan_m, under), over);
  const Pack<W> xc = select(special, broadcast<W>(0.0), x);
  const Pack<W> xf = floor(xc);
  const Pack<W> f = xc - xf;
  // Pack-wide Horner over the shared coefficient array: the same op
  // sequence per lane as the scalar fast_exp2_poly, vectorized across
  // lanes (the coefficient recurrence itself is serial either way).
  Pack<W> p = broadcast<W>(kExp2PolyCoeff[0]);
  for (int k = 1; k < 11; ++k) p = p * f + broadcast<W>(kExp2PolyCoeff[k]);
  const Pack<W> scale = exp2_scale_lanes(xf);
  Pack<W> r = p * scale;
  r = select(under, broadcast<W>(0.0), r);
  r = select(over, broadcast<W>(std::numeric_limits<double>::infinity()), r);
  r = select(nan_m, x, r);
  return r;
}

/// Lane form of util::fast_log2, bit-identical per lane. The
/// exponent/mantissa extraction (including the subnormal renormalization)
/// goes through log2_extract_lanes — per-lane integer code mirroring the
/// scalar branch structure, or its integer-SIMD override under AVX2; the
/// atanh-series core vectorizes. A load-following duty cycle misses the
/// Peukert memo on most discharge ticks, so this whole path is hot.
template <int W>
inline Pack<W> fast_log2(const Pack<W>& x) {
  Pack<W> mv;
  Pack<W> ev;
  log2_extract_lanes(x, mv, ev);
  const Pack<W> one = broadcast<W>(1.0);
  const Pack<W> z = (mv - one) / (mv + one);
  const Pack<W> z2 = z * z;
  Pack<W> p = broadcast<W>(1.0 / 11.0);
  p = p * z2 + broadcast<W>(1.0 / 9.0);
  p = p * z2 + broadcast<W>(1.0 / 7.0);
  p = p * z2 + broadcast<W>(1.0 / 5.0);
  p = p * z2 + broadcast<W>(1.0 / 3.0);
  p = p * z2 + one;
  const Pack<W> ln_m = broadcast<W>(2.0) * z * p;
  return ev + ln_m * broadcast<W>(1.4426950408889634);
}

/// Lane form of util::fast_pow, bit-identical per lane, including the
/// exact-1.0 hot corners (a == 1 or b == 0, NaN partner included).
template <int W>
inline Pack<W> fast_pow(const Pack<W>& a, const Pack<W>& b) {
  const Mask<W> one_m =
      mask_or(cmp_eq(a, broadcast<W>(1.0)), cmp_eq(b, broadcast<W>(0.0)));
  const Pack<W> r = fast_exp2(b * fast_log2(a));
  return select(one_m, broadcast<W>(1.0), r);
}

}  // namespace abi_avx2 / abi_portable
}  // namespace baat::util::simd
