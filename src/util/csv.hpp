#pragma once

// Minimal CSV writer for bench/experiment output. Values are written with
// full double precision; strings containing separators/quotes are quoted
// per RFC 4180.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace baat::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; the cell count must match the header width.
  void write_row(const std::vector<std::string>& cells);

  /// Formats a double with round-trippable precision.
  static std::string cell(double v);
  static std::string cell(const std::string& v) { return v; }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_line(const std::vector<std::string>& cells);
  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace baat::util
