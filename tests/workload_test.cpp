#include <gtest/gtest.h>

#include "util/require.hpp"
#include "workload/vm.hpp"
#include "workload/workload.hpp"

namespace baat::workload {
namespace {

using util::hours;
using util::minutes;
using util::seconds;

TEST(Workload, AllKindsHaveSaneSpecs) {
  for (Kind k : kAllKinds) {
    const Spec s = spec_for(k);
    EXPECT_EQ(s.kind, k);
    EXPECT_GT(s.base_util, 0.0);
    EXPECT_LE(s.base_util + s.swing, 1.01);
    EXPECT_GT(s.cores, 0.0);
    EXPECT_GT(s.mem_gb, 0.0);
    EXPECT_FALSE(kind_name(k).empty());
  }
}

TEST(Workload, WebServingIsTheOnlyService) {
  for (Kind k : kAllKinds) {
    const Spec s = spec_for(k);
    if (k == Kind::WebServing) {
      EXPECT_DOUBLE_EQ(s.duration.value(), 0.0);
    } else {
      EXPECT_GT(s.duration.value(), 0.0);
    }
  }
}

// Parameterized sweep: utilization stays in [0, 1] for every kind across
// the whole runtime.
class UtilizationBounds : public ::testing::TestWithParam<Kind> {};

TEST_P(UtilizationBounds, StaysInRange) {
  const Spec s = spec_for(GetParam());
  util::Rng rng{3};
  const double horizon = s.duration.value() > 0.0 ? s.duration.value() : 86400.0;
  for (int i = 0; i < 500; ++i) {
    const double t = horizon * i / 500.0;
    const double u = utilization(s, seconds(t), 123.0, rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, UtilizationBounds, ::testing::ValuesIn(kAllKinds));

TEST(Workload, FinishedAfterDuration) {
  const Spec s = spec_for(Kind::WordCount);
  EXPECT_FALSE(finished(s, seconds(0.0)));
  EXPECT_FALSE(finished(s, util::Seconds{s.duration.value() - 1.0}));
  EXPECT_TRUE(finished(s, s.duration));
  util::Rng rng{1};
  EXPECT_DOUBLE_EQ(utilization(s, s.duration, 0.0, rng), 0.0);
}

TEST(Workload, ServicesNeverFinish) {
  const Spec s = spec_for(Kind::WebServing);
  EXPECT_FALSE(finished(s, hours(1000.0)));
}

TEST(Workload, BurstyShapeSwitchesLevels) {
  const Spec s = spec_for(Kind::KMeansClustering);
  Spec noiseless = s;
  noiseless.noise_sigma = 0.0;
  util::Rng rng{1};
  const double hi = utilization(noiseless, seconds(60.0), 0.0, rng);
  const double lo = utilization(
      noiseless, util::Seconds{s.period.value() * s.duty + 60.0}, 0.0, rng);
  EXPECT_GT(hi, lo + 0.3);
}

TEST(Workload, TwoPhaseDropsInReducePhase) {
  Spec s = spec_for(Kind::WordCount);
  s.noise_sigma = 0.0;
  util::Rng rng{1};
  const double map = utilization(s, util::Seconds{s.duration.value() * 0.3}, 0.0, rng);
  const double reduce = utilization(s, util::Seconds{s.duration.value() * 0.9}, 0.0, rng);
  EXPECT_GT(map, reduce);
}

TEST(Vm, RunsAndAccumulatesProgress) {
  Vm vm{1, Kind::SoftwareTesting, 0.0, util::Rng{2}};
  EXPECT_EQ(vm.state(), VmState::Running);
  const double u = vm.demand_utilization(minutes(1.0));
  EXPECT_GT(u, 0.0);
  vm.grant(u, 1.0, minutes(1.0));
  EXPECT_NEAR(vm.progress_work(), u * vm.spec().cores * 60.0, 1e-9);
}

TEST(Vm, DvfsSlowsProgressAndRuntime) {
  Vm fast{1, Kind::DataAnalytics, 0.0, util::Rng{2}};
  Vm slow{2, Kind::DataAnalytics, 0.0, util::Rng{2}};
  for (int i = 0; i < 60; ++i) {
    const double uf = fast.demand_utilization(minutes(1.0));
    const double us = slow.demand_utilization(minutes(1.0));
    fast.grant(uf, 1.0, minutes(1.0));
    slow.grant(us, 0.5, minutes(1.0));
  }
  EXPECT_GT(fast.progress_work(), 1.8 * slow.progress_work());
}

TEST(Vm, MigrationPausesWork) {
  Vm vm{1, Kind::WebServing, 0.0, util::Rng{2}};
  vm.start_migration(seconds(120.0));
  EXPECT_EQ(vm.state(), VmState::Migrating);
  EXPECT_FALSE(vm.migratable());
  EXPECT_DOUBLE_EQ(vm.demand_utilization(minutes(1.0)), 0.0);
  vm.grant(0.5, 1.0, minutes(1.0));  // ignored while migrating
  EXPECT_DOUBLE_EQ(vm.progress_work(), 0.0);
  // Second minute completes the 120 s pause.
  EXPECT_DOUBLE_EQ(vm.demand_utilization(minutes(1.0)), 0.0);
  EXPECT_GT(vm.demand_utilization(minutes(1.0)), 0.0);
  EXPECT_EQ(vm.state(), VmState::Running);
  EXPECT_EQ(vm.migrations(), 1);
}

TEST(Vm, PauseAndResume) {
  Vm vm{1, Kind::WebServing, 0.0, util::Rng{2}};
  vm.pause();
  EXPECT_EQ(vm.state(), VmState::Paused);
  EXPECT_DOUBLE_EQ(vm.demand_utilization(minutes(1.0)), 0.0);
  vm.resume();
  EXPECT_EQ(vm.state(), VmState::Running);
  EXPECT_GT(vm.demand_utilization(minutes(1.0)), 0.0);
}

TEST(Vm, BatchJobFinishes) {
  Vm vm{1, Kind::WordCount, 0.0, util::Rng{2}};
  // WordCount runs 1 h of delivered runtime.
  for (int i = 0; i < 90; ++i) {
    const double u = vm.demand_utilization(minutes(1.0));
    vm.grant(u, 1.0, minutes(1.0));
  }
  EXPECT_EQ(vm.state(), VmState::Finished);
  EXPECT_DOUBLE_EQ(vm.demand_utilization(minutes(1.0)), 0.0);
}

TEST(Vm, CannotMigrateWhileMigrating) {
  Vm vm{1, Kind::WebServing, 0.0, util::Rng{2}};
  vm.start_migration(seconds(60.0));
  EXPECT_THROW(vm.start_migration(seconds(60.0)), util::PreconditionError);
}

TEST(Vm, GrantValidatesArguments) {
  Vm vm{1, Kind::WebServing, 0.0, util::Rng{2}};
  EXPECT_THROW(vm.grant(1.5, 1.0, minutes(1.0)), util::PreconditionError);
  EXPECT_THROW(vm.grant(0.5, 0.0, minutes(1.0)), util::PreconditionError);
}

}  // namespace
}  // namespace baat::workload
