#include <gtest/gtest.h>

#include <algorithm>

#include "util/require.hpp"
#include "workload/arrivals.hpp"

namespace baat::workload {
namespace {

TEST(Arrivals, MeanCountMatchesRate) {
  ArrivalPlanParams p;
  p.rate_per_hour = 3.0;
  p.window = util::hours(8.0);
  util::Rng rng{11};
  double total = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(sample_arrivals(p, rng).size());
  }
  EXPECT_NEAR(total / trials, 24.0, 1.5);  // λ·T = 24 ± sampling noise
}

TEST(Arrivals, OffsetsSortedWithinWindow) {
  ArrivalPlanParams p;
  util::Rng rng{5};
  const auto plan = sample_arrivals(p, rng);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].offset.value(), 0.0);
    EXPECT_LT(plan[i].offset.value(), p.window.value());
    if (i > 0) EXPECT_GE(plan[i].offset.value(), plan[i - 1].offset.value());
  }
}

TEST(Arrivals, DeterministicForSameStream) {
  ArrivalPlanParams p;
  util::Rng a{9};
  util::Rng b{9};
  const auto pa = sample_arrivals(p, a);
  const auto pb = sample_arrivals(p, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].kind, pb[i].kind);
    EXPECT_DOUBLE_EQ(pa[i].offset.value(), pb[i].offset.value());
  }
}

TEST(Arrivals, WeightedMixRespected) {
  ArrivalPlanParams p;
  p.rate_per_hour = 50.0;
  p.kind_weights = {0.0, 0.0, 0.0, 1.0, 0.0, 1.0};  // SoftwareTesting + DataAnalytics
  util::Rng rng{3};
  const auto plan = sample_arrivals(p, rng);
  ASSERT_FALSE(plan.empty());
  for (const Arrival& a : plan) {
    EXPECT_TRUE(a.kind == Kind::SoftwareTesting || a.kind == Kind::DataAnalytics);
  }
  const auto st = std::count_if(plan.begin(), plan.end(), [](const Arrival& a) {
    return a.kind == Kind::SoftwareTesting;
  });
  const double frac = static_cast<double>(st) / static_cast<double>(plan.size());
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(Arrivals, UniformMixCoversAllKinds) {
  ArrivalPlanParams p;
  p.rate_per_hour = 100.0;
  util::Rng rng{7};
  const auto plan = sample_arrivals(p, rng);
  for (Kind k : kAllKinds) {
    const bool seen = std::any_of(plan.begin(), plan.end(),
                                  [k](const Arrival& a) { return a.kind == k; });
    EXPECT_TRUE(seen) << kind_name(k);
  }
}

TEST(Arrivals, RejectsBadParams) {
  util::Rng rng{1};
  ArrivalPlanParams p;
  p.rate_per_hour = 0.0;
  EXPECT_THROW(sample_arrivals(p, rng), util::PreconditionError);
  p = ArrivalPlanParams{};
  p.kind_weights = {1.0, 1.0};  // wrong arity
  EXPECT_THROW(sample_arrivals(p, rng), util::PreconditionError);
  p.kind_weights = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(sample_arrivals(p, rng), util::PreconditionError);
  p.kind_weights = {1.0, 1.0, 1.0, 1.0, 1.0, -1.0};
  EXPECT_THROW(sample_arrivals(p, rng), util::PreconditionError);
}

}  // namespace
}  // namespace baat::workload
