// Bit-identity and cache-soundness tests for the batched tick kernel
// (DESIGN.md §5e). The contract under test: a FleetState stepping N cells
// through one fleet_step() per tick produces *bit-identical* trajectories
// to N standalone Battery objects stepped in a loop, across sunny, cloudy
// and faulted duty cycles — and the transcendental memos (Arrhenius,
// Peukert, thermal decay, KiBaM e^{-kt}) return the exact double a cold
// computation would, hit or miss.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "battery/battery.hpp"
#include "battery/fleet.hpp"
#include "battery/kibam.hpp"
#include "battery/thermal.hpp"
#include "util/fastmath.hpp"

namespace baat::battery {
namespace {

using util::Amperes;
using util::Seconds;

constexpr std::size_t kCells = 6;
constexpr long kTicks = 10000;
const Seconds kDt{60.0};

/// Deterministic day-shaped duty cycle: night discharge, midday charge,
/// evening discharge, detuned per cell so trajectories decorrelate.
double requested_amps(long tick, std::size_t cell, double charge_amps) {
  const long phase = tick % 1440;  // one simulated day at 60 s ticks
  const double detune = 0.25 * static_cast<double>(cell);
  if (phase < 480) return 4.0 + detune;
  if (phase < 1080) return -(charge_amps + 2.0 * detune);
  return 2.0 + 0.5 * detune;
}

struct Mismatch {
  long count = 0;
  long first_tick = -1;
  void note(long tick) {
    if (count == 0) first_tick = tick;
    ++count;
  }
};

/// Runs the same scenario through a shared fleet and through standalone
/// Battery objects, comparing every StepResult and the full end state with
/// exact floating-point equality.
void expect_fleet_matches_objects(double charge_amps, bool faulted) {
  const LeadAcidParams chem{};
  const AgingParams aging{};
  const ThermalParams thermal{};

  FleetState fleet{chem, aging, thermal};
  std::vector<Battery> objects;
  objects.reserve(kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    // Cell 1 of the faulted scenario is a weak unit (cell_weak shape:
    // derated capacity, raised resistance).
    const bool weak = faulted && i == 1;
    const double cap = weak ? 0.8 : 1.0 + 0.001 * static_cast<double>(i % 7);
    const double res = weak ? 1.3 : 1.0;
    fleet.add_cell(cap, res, 0.7);
    objects.emplace_back(chem, aging, thermal, cap, res, 0.7);
  }
  if (faulted) {
    // Cell 3 additionally starts life pre-aged (a fleet seeded mid-life).
    AgingState aged;
    aged.corrosion = 0.04;
    aged.sulphation = 0.06;
    aged.water_loss = 0.02;
    fleet.set_cell_aging_state(3, aged);
    objects[3].set_aging_state(aged);
  }

  std::vector<Amperes> req(kCells);
  std::vector<StepResult> fleet_res(kCells);
  Mismatch bad;
  for (long k = 0; k < kTicks; ++k) {
    if (faulted && k == 3000) {
      fleet.fail_open_cell(2);
      objects[2].fail_open();
    }
    for (std::size_t i = 0; i < kCells; ++i) {
      req[i] = Amperes{requested_amps(k, i, charge_amps)};
    }
    fleet_step(fleet, req, kDt, fleet_res);
    for (std::size_t i = 0; i < kCells; ++i) {
      const StepResult obj = objects[i].step(req[i], kDt);
      if (obj.actual_current.value() != fleet_res[i].actual_current.value() ||
          obj.terminal_voltage.value() != fleet_res[i].terminal_voltage.value() ||
          obj.hit_cutoff != fleet_res[i].hit_cutoff ||
          obj.fully_charged != fleet_res[i].fully_charged) {
        bad.note(k);
      }
      if (objects[i].soc() != fleet.cell_soc(i) ||
          objects[i].temperature().value() != fleet.cell_temperature(i).value()) {
        bad.note(k);
      }
    }
    if (bad.count > 0) break;  // the first divergence is the diagnosis
  }
  EXPECT_EQ(bad.count, 0) << "fleet and object paths diverged at tick "
                          << bad.first_tick;

  for (std::size_t i = 0; i < kCells; ++i) {
    const Battery& obj = objects[i];
    EXPECT_EQ(obj.soc(), fleet.cell_soc(i)) << "cell " << i;
    EXPECT_EQ(obj.temperature().value(), fleet.cell_temperature(i).value());
    EXPECT_EQ(obj.health(), fleet.cell_health(i));
    EXPECT_EQ(obj.open_circuit().value(), fleet.cell_open_circuit(i).value());
    EXPECT_EQ(obj.internal_resistance_ohms(), fleet.cell_internal_resistance_ohms(i));
    EXPECT_EQ(obj.open_failed(), fleet.cell_open_failed(i));

    const AgingState& a = obj.aging_state();
    const AgingState& b = fleet.cell_aging_state(i);
    EXPECT_EQ(a.corrosion, b.corrosion);
    EXPECT_EQ(a.shedding, b.shedding);
    EXPECT_EQ(a.sulphation, b.sulphation);
    EXPECT_EQ(a.water_loss, b.water_loss);
    EXPECT_EQ(a.stratification, b.stratification);

    const UsageCounters& ca = obj.counters();
    const UsageCounters& cb = fleet.cell_counters(i);
    EXPECT_EQ(ca.ah_discharged.value(), cb.ah_discharged.value());
    EXPECT_EQ(ca.ah_charged.value(), cb.ah_charged.value());
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(ca.ah_by_range[r].value(), cb.ah_by_range[r].value());
    }
    EXPECT_EQ(ca.time_total.value(), cb.time_total.value());
    EXPECT_EQ(ca.time_below_40.value(), cb.time_below_40.value());
    EXPECT_EQ(ca.time_since_full_charge.value(), cb.time_since_full_charge.value());
    EXPECT_EQ(ca.full_charge_events, cb.full_charge_events);
    EXPECT_EQ(ca.min_soc_since_full, cb.min_soc_since_full);
    EXPECT_EQ(ca.energy_discharged.value(), cb.energy_discharged.value());
    EXPECT_EQ(ca.energy_charged.value(), cb.energy_charged.value());
  }
}

TEST(FleetKernel, BitIdenticalToObjectLoopSunny) {
  expect_fleet_matches_objects(10.0, false);
}

TEST(FleetKernel, BitIdenticalToObjectLoopCloudy) {
  expect_fleet_matches_objects(4.0, false);
}

TEST(FleetKernel, BitIdenticalToObjectLoopFaulted) {
  expect_fleet_matches_objects(6.0, true);
}

TEST(FleetKernel, BatchedIdleStepMatchesPerCellStep) {
  const LeadAcidParams chem{};
  const AgingParams aging{};
  const ThermalParams thermal{};
  FleetState a{chem, aging, thermal};
  FleetState b{chem, aging, thermal};
  for (std::size_t i = 0; i < kCells; ++i) {
    a.add_cell(1.0, 1.0, 0.3 + 0.1 * static_cast<double>(i));
    b.add_cell(1.0, 1.0, 0.3 + 0.1 * static_cast<double>(i));
  }
  std::vector<std::size_t> cells = {0, 2, 3, 5};  // the router's idle subset shape
  for (long k = 0; k < 2000; ++k) {
    a.step_cells(cells, Amperes{0.0}, kDt);
    for (const std::size_t c : cells) b.step_cell(c, Amperes{0.0}, kDt);
  }
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(a.cell_soc(i), b.cell_soc(i));
    EXPECT_EQ(a.cell_temperature(i).value(), b.cell_temperature(i).value());
    EXPECT_EQ(a.cell_aging_state(i).total(), b.cell_aging_state(i).total());
    EXPECT_EQ(a.cell_counters(i).time_total.value(), b.cell_counters(i).time_total.value());
  }
}

TEST(FleetKernel, ViewsForwardToFleetState) {
  FleetState fleet{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  fleet.add_cell(1.0, 1.0, 0.6);
  fleet.add_cell(0.9, 1.1, 0.5);
  Battery v0{fleet, 0};
  Battery v1{fleet, 1};
  EXPECT_EQ(v0.soc(), fleet.cell_soc(0));
  EXPECT_EQ(v1.soc(), fleet.cell_soc(1));
  const auto r = v1.step(Amperes{3.0}, kDt);
  EXPECT_GT(r.actual_current.value(), 0.0);
  EXPECT_LT(v1.soc(), 0.5);
  EXPECT_EQ(v1.soc(), fleet.cell_soc(1));  // same storage, not a copy
  EXPECT_EQ(v0.soc(), fleet.cell_soc(0));  // untouched neighbour
}

// --- transcendental memo soundness ----------------------------------------

TEST(FleetKernel, ThermalDecayCacheIsBitExactAcrossVaryingDt) {
  ThermalParams params{};
  ThermalModel model{params};
  const double tau =
      params.heat_capacity_j_per_k * params.thermal_resistance_k_per_w;
  double temp = params.ambient.value();
  // Alternating dt forces miss/hit/miss sequences through the decay cache;
  // the reference recomputes std::exp cold every step.
  const double dts[] = {60.0, 60.0, 30.0, 45.0, 60.0, 30.0, 30.0, 900.0, 60.0, 60.0};
  int j = 0;
  for (const double dt : dts) {
    const double loss = 2.0 + 0.3 * static_cast<double>(j++);
    model.step(util::Watts{loss}, Seconds{dt});
    const double t_inf =
        params.ambient.value() + loss * params.thermal_resistance_k_per_w;
    temp = t_inf + (temp - t_inf) * std::exp(-dt / tau);
    EXPECT_EQ(model.temperature().value(), temp) << "dt " << dt;
  }
}

TEST(FleetKernel, KibamEktCacheHitEqualsColdCompute) {
  KibamParams params{};
  Kibam primed{params, 0.7};
  // Prime the e^{-kt} cache at one duration, then query another: the second
  // call misses and must equal a cold instance's first (also-miss) compute,
  // and a repeat (hit) must return the very same double.
  (void)primed.max_discharge_current(Seconds{3600.0});
  const double miss = primed.max_discharge_current(Seconds{1800.0}).value();
  const double hit = primed.max_discharge_current(Seconds{1800.0}).value();
  Kibam cold{params, 0.7};
  EXPECT_EQ(miss, cold.max_discharge_current(Seconds{1800.0}).value());
  EXPECT_EQ(hit, miss);
}

TEST(FleetKernel, KibamStepUnaffectedByCacheDetours) {
  KibamParams params{};
  Kibam a{params, 0.8};
  Kibam b{params, 0.8};
  for (long k = 0; k < 200; ++k) {
    // `a` takes a const-method detour that re-keys its cache before every
    // step; `b` steps straight through (cache stays hot). Identical state
    // evolution proves hits and misses return the same double.
    (void)a.max_discharge_current(Seconds{7200.0 + static_cast<double>(k)});
    const Amperes ia = a.step(Amperes{2.0}, Seconds{60.0});
    const Amperes ib = b.step(Amperes{2.0}, Seconds{60.0});
    ASSERT_EQ(ia.value(), ib.value()) << "tick " << k;
    ASSERT_EQ(a.soc(), b.soc()) << "tick " << k;
  }
}

// --- fast-math tier bounds -------------------------------------------------

TEST(FleetKernel, FastExp2WithinBound) {
  for (double x = -60.0; x <= 60.0; x += 0.0173) {
    const double ref = std::exp2(x);
    const double got = util::fast_exp2(x);
    EXPECT_NEAR(got, ref, 1e-8 * ref) << "x = " << x;
  }
  EXPECT_EQ(util::fast_exp2(-1100.0), 0.0);
  EXPECT_TRUE(std::isinf(util::fast_exp2(1100.0)));
}

TEST(FleetKernel, FastLog2WithinBound) {
  for (double a = 1e-6; a < 1e6; a *= 1.0137) {
    const double ref = std::log2(a);
    const double got = util::fast_log2(a);
    EXPECT_NEAR(got, ref, 1e-8 * std::max(1.0, std::fabs(ref))) << "a = " << a;
  }
}

TEST(FleetKernel, FastPowCoversAgingStressorRanges) {
  // Arrhenius: 2^((T-20)/10) over any plausible block temperature.
  for (double t = -10.0; t <= 70.0; t += 0.37) {
    const double ref = std::pow(2.0, (t - 20.0) / 10.0);
    const double got = util::fast_pow(2.0, (t - 20.0) / 10.0);
    EXPECT_NEAR(got, ref, 1e-8 * ref) << "T = " << t;
  }
  // Peukert: ratio^(k-1) with k = 1.15 over the current ratios the router
  // can produce.
  for (double ratio = 0.05; ratio <= 20.0; ratio *= 1.07) {
    const double ref = std::pow(ratio, 0.15);
    const double got = util::fast_pow(ratio, 0.15);
    EXPECT_NEAR(got, ref, 1e-8 * ref) << "ratio = " << ratio;
  }
}

TEST(FleetKernel, FastTierOnlyPerturbsWithinTolerance) {
  // A fast-tier fleet must track the exact tier closely at the physics
  // level (the 0.1% lifetime-metric property lives in property_test.cpp).
  FleetState exact{LeadAcidParams{}, AgingParams{}, ThermalParams{}, MathMode::Exact};
  FleetState fast{LeadAcidParams{}, AgingParams{}, ThermalParams{}, MathMode::Fast};
  for (std::size_t i = 0; i < kCells; ++i) {
    exact.add_cell(1.0, 1.0, 0.7);
    fast.add_cell(1.0, 1.0, 0.7);
  }
  std::vector<Amperes> req(kCells);
  std::vector<StepResult> res_e(kCells), res_f(kCells);
  for (long k = 0; k < kTicks; ++k) {
    for (std::size_t i = 0; i < kCells; ++i) {
      req[i] = Amperes{requested_amps(k, i, 8.0)};
    }
    fleet_step(exact, req, kDt, res_e);
    fleet_step(fast, req, kDt, res_f);
  }
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_NEAR(fast.cell_soc(i), exact.cell_soc(i), 1e-6);
    EXPECT_NEAR(fast.cell_health(i), exact.cell_health(i), 1e-6);
    EXPECT_NEAR(fast.cell_aging_state(i).total(), exact.cell_aging_state(i).total(),
                1e-6 * std::max(1e-3, exact.cell_aging_state(i).total()));
  }
}

TEST(FleetKernel, SimdStepAllMatchesPerCellSimdBitwise) {
  // The W = 8 block kernel and the W = 1 instantiation of the same template
  // must produce bit-identical trajectories — 19 cells covers two full
  // lane groups plus a 3-cell masked tail, under a load-following duty
  // cycle that keeps the Peukert/Arrhenius paths live.
  constexpr std::size_t kSimdCells = 19;
  FleetState blocked{LeadAcidParams{}, AgingParams{}, ThermalParams{}, MathMode::Simd};
  FleetState percell{LeadAcidParams{}, AgingParams{}, ThermalParams{}, MathMode::Simd};
  for (std::size_t i = 0; i < kSimdCells; ++i) {
    const double cap = 1.0 + 0.001 * static_cast<double>(i % 7);
    blocked.add_cell(cap, 1.0, 0.7);
    percell.add_cell(cap, 1.0, 0.7);
  }
  std::vector<Amperes> req(kSimdCells);
  std::vector<StepResult> res_b(kSimdCells);
  std::vector<double> sign(kSimdCells, 1.0);
  Mismatch bad;
  for (long k = 0; k < kTicks; ++k) {
    for (std::size_t i = 0; i < kSimdCells; ++i) {
      const double amps =
          10.0 + 0.5 * static_cast<double>((k * 7 + static_cast<long>(i) * 13) % 32);
      req[i] = Amperes{sign[i] * amps};
    }
    fleet_step(blocked, req, kDt, res_b);
    for (std::size_t i = 0; i < kSimdCells; ++i) {
      const StepResult r = percell.step_cell(i, req[i], kDt);
      if (r.actual_current.value() != res_b[i].actual_current.value() ||
          r.terminal_voltage.value() != res_b[i].terminal_voltage.value() ||
          r.hit_cutoff != res_b[i].hit_cutoff ||
          r.fully_charged != res_b[i].fully_charged ||
          percell.cell_soc(i) != blocked.cell_soc(i) ||
          percell.cell_temperature(i).value() != blocked.cell_temperature(i).value()) {
        bad.note(k);
      }
      if (blocked.cell_soc(i) < 0.2) sign[i] = -1.0;
      if (blocked.cell_soc(i) > 0.9) sign[i] = 1.0;
    }
    if (bad.count > 0) break;
  }
  EXPECT_EQ(bad.count, 0) << "block and per-cell simd paths diverged at tick "
                          << bad.first_tick;
  for (std::size_t i = 0; i < kSimdCells; ++i) {
    EXPECT_EQ(percell.cell_health(i), blocked.cell_health(i)) << "cell " << i;
    EXPECT_EQ(percell.cell_aging_state(i).total(), blocked.cell_aging_state(i).total());
    EXPECT_EQ(percell.cell_counters(i).ah_discharged.value(),
              blocked.cell_counters(i).ah_discharged.value());
  }
}

TEST(FleetKernel, SimdTierOnlyPerturbsWithinTolerance) {
  // Same contract as the fast tier above: the lane-batched tier tracks the
  // exact tier at the physics level (the 0.1% lifetime-metric property
  // lives in property_test.cpp).
  FleetState exact{LeadAcidParams{}, AgingParams{}, ThermalParams{}, MathMode::Exact};
  FleetState simd{LeadAcidParams{}, AgingParams{}, ThermalParams{}, MathMode::Simd};
  for (std::size_t i = 0; i < kCells; ++i) {
    exact.add_cell(1.0, 1.0, 0.7);
    simd.add_cell(1.0, 1.0, 0.7);
  }
  std::vector<Amperes> req(kCells);
  std::vector<StepResult> res_e(kCells), res_s(kCells);
  for (long k = 0; k < kTicks; ++k) {
    for (std::size_t i = 0; i < kCells; ++i) {
      req[i] = Amperes{requested_amps(k, i, 8.0)};
    }
    fleet_step(exact, req, kDt, res_e);
    fleet_step(simd, req, kDt, res_s);
  }
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_NEAR(simd.cell_soc(i), exact.cell_soc(i), 1e-6);
    EXPECT_NEAR(simd.cell_health(i), exact.cell_health(i), 1e-6);
    EXPECT_NEAR(simd.cell_aging_state(i).total(), exact.cell_aging_state(i).total(),
                1e-6 * std::max(1e-3, exact.cell_aging_state(i).total()));
  }
}

// --- Battery value semantics over the shared-fleet representation ----------

TEST(FleetKernel, CopyDetachesFromSourceFleet) {
  FleetState fleet{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  fleet.add_cell(1.0, 1.0, 0.8);
  Battery view{fleet, 0};
  Battery copy{view};  // snapshot into a private one-cell fleet
  view.step(Amperes{5.0}, kDt);
  EXPECT_LT(view.soc(), 0.8);
  EXPECT_EQ(copy.soc(), 0.8);  // unaffected by the source stepping
  copy.step(Amperes{5.0}, kDt);
  EXPECT_EQ(copy.soc(), view.soc());  // same physics once stepped identically
}

TEST(FleetKernel, AssignIntoBoundViewReplacesCellInPlace) {
  // The fault injector's cell_weak move-assigns a fresh standalone unit
  // into a bank slot; for a fleet-backed bank that must replace the cell's
  // state inside the shared arrays, not detach the view.
  FleetState fleet{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  fleet.add_cell(1.0, 1.0, 0.9);
  fleet.add_cell(1.0, 1.0, 0.9);
  Battery v0{fleet, 0};
  v0 = Battery{LeadAcidParams{}, AgingParams{}, ThermalParams{}, 0.8, 1.3, 0.5};
  EXPECT_EQ(v0.fleet(), &fleet);         // still a view into the bank
  EXPECT_EQ(fleet.cell_soc(0), 0.5);     // the cell took the new state
  EXPECT_EQ(fleet.cell_soc(1), 0.9);     // the neighbour did not
  EXPECT_EQ(v0.nameplate().value(),
            LeadAcidParams{}.capacity_c20.value() * 0.8);
}

}  // namespace
}  // namespace baat::battery
