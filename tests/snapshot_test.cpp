#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "snapshot/sections.hpp"
#include "snapshot/serialize.hpp"
#include "snapshot/snapshot.hpp"

namespace baat::snapshot {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("baat_snapshot_test_" + name)).string();
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void put_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Serialize, ScalarRoundTrip) {
  SnapshotWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEFu);
  w.write_u64(0xFFFFFFFFFFFFFFFFull);
  w.write_i64(-42);
  w.write_f64(3.141592653589793);
  w.write_bool(true);
  w.write_bool(false);
  w.write_string("hello\0world");  // embedded NUL truncates the literal; still round-trips
  w.write_string("");

  SnapshotReader r{w.bytes()};
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.141592653589793);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, DoublesTransportRawBits) {
  // Bit identity is the whole point: NaN payloads, signed zero, denormals
  // and the extremes must survive a round trip exactly.
  const double nan_payload =
      std::bit_cast<double>(std::uint64_t{0x7FF8DEADBEEF0001ull});
  const std::vector<double> values = {
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::infinity(),
      nan_payload,
  };
  SnapshotWriter w;
  for (double v : values) w.write_f64(v);
  SnapshotReader r{w.bytes()};
  for (double v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.read_f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Serialize, VectorRoundTrip) {
  SnapshotWriter w;
  w.write_f64_vec({1.5, -2.5, 0.0});
  w.write_u64_vec({7, 0, 0xFFFFFFFFFFFFFFFFull});
  w.write_u8_vec({1, 2, 3});
  w.write_bool_vec({true, false, true, true});
  w.write_f64_vec({});

  SnapshotReader r{w.bytes()};
  EXPECT_EQ(r.read_f64_vec(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.read_u64_vec(), (std::vector<std::uint64_t>{7, 0, 0xFFFFFFFFFFFFFFFFull}));
  EXPECT_EQ(r.read_u8_vec(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.read_bool_vec(), (std::vector<bool>{true, false, true, true}));
  EXPECT_TRUE(r.read_f64_vec().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, ReaderUnderrunThrowsNotUB) {
  SnapshotWriter w;
  w.write_u32(1);
  SnapshotReader r{w.bytes()};
  EXPECT_EQ(r.read_u32(), 1u);
  EXPECT_THROW(r.read_u8(), SnapshotError);
  SnapshotReader r2{w.bytes()};
  EXPECT_THROW(r2.read_u64(), SnapshotError);  // partial bytes available
}

TEST(Serialize, CorruptedLengthPrefixCannotDriveHugeAllocation) {
  // A length prefix claiming more elements than there are bytes left must
  // fail before materializing the vector, not after a multi-GB reserve.
  SnapshotWriter w;
  w.write_u64(0x7FFFFFFFFFFFFFFFull);  // absurd element count, no payload
  SnapshotReader r{w.bytes()};
  EXPECT_THROW(r.read_f64_vec(), SnapshotError);
}

TEST(Serialize, Crc32KnownAnswer) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(SnapshotFile, RoundTripAndHeader) {
  const std::string path = temp_path("roundtrip.snap");
  SnapshotWriter w;
  w.write_u64(1234);
  w.write_f64(0.25);
  write_snapshot_file(path, 0xABCDEF1234567890ull, w.bytes());

  // The atomic-commit tmp file must not linger after a successful write.
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  const SnapshotHeader h = read_snapshot_header(path);
  EXPECT_EQ(h.version, kFormatVersion);
  EXPECT_EQ(h.config_hash, 0xABCDEF1234567890ull);
  EXPECT_EQ(h.payload_size, w.size());

  const std::vector<std::uint8_t> payload =
      read_snapshot_file(path, 0xABCDEF1234567890ull);
  EXPECT_EQ(payload, w.bytes());
  SnapshotReader r{payload};
  EXPECT_EQ(r.read_u64(), 1234u);
  EXPECT_DOUBLE_EQ(r.read_f64(), 0.25);
  fs::remove(path);
}

TEST(SnapshotFile, ZeroExpectedHashSkipsTheCheck) {
  const std::string path = temp_path("anyhash.snap");
  SnapshotWriter w;
  w.write_u8(9);
  write_snapshot_file(path, 777, w.bytes());
  EXPECT_EQ(read_snapshot_file(path, 0), w.bytes());
  fs::remove(path);
}

TEST(SnapshotFile, ConfigHashMismatchRefused) {
  const std::string path = temp_path("hashmismatch.snap");
  SnapshotWriter w;
  w.write_u8(9);
  write_snapshot_file(path, 111, w.bytes());
  try {
    read_snapshot_file(path, 222);
    FAIL() << "mismatched config hash must be refused";
  } catch (const SnapshotError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("config hash"), std::string::npos) << msg;
  }
  fs::remove(path);
}

TEST(SnapshotFile, MissingFileIsReadableError) {
  try {
    read_snapshot_file(temp_path("does_not_exist.snap"), 0);
    FAIL() << "missing file must throw";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(SnapshotFile, BadMagicRefused) {
  const std::string path = temp_path("notasnapshot.snap");
  put_bytes(path, std::vector<std::uint8_t>(64, 0x55));
  try {
    read_snapshot_file(path, 0);
    FAIL() << "non-snapshot bytes must be refused";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
  fs::remove(path);
}

TEST(SnapshotFile, TruncationAtEveryPrefixIsAReadableError) {
  // Chop a valid snapshot at every length from 0 to full-minus-one byte;
  // each prefix must fail with SnapshotError, never read out of bounds
  // (this test earns its keep under ASan).
  const std::string path = temp_path("trunc_src.snap");
  SnapshotWriter w;
  w.write_u64(42);
  w.write_string("payload");
  write_snapshot_file(path, 5, w.bytes());
  const std::vector<std::uint8_t> full = file_bytes(path);
  ASSERT_GT(full.size(), 32u);

  const std::string cut = temp_path("trunc_cut.snap");
  for (std::size_t n = 0; n < full.size(); ++n) {
    put_bytes(cut, std::vector<std::uint8_t>(full.begin(), full.begin() + n));
    EXPECT_THROW(read_snapshot_file(cut, 5), SnapshotError) << "prefix length " << n;
  }
  fs::remove(path);
  fs::remove(cut);
}

TEST(SnapshotFile, TrailingPaddingRefused) {
  const std::string path = temp_path("padded.snap");
  SnapshotWriter w;
  w.write_u64(42);
  write_snapshot_file(path, 0, w.bytes());
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes.push_back(0x00);
  put_bytes(path, bytes);
  EXPECT_THROW(read_snapshot_file(path, 0), SnapshotError);
  fs::remove(path);
}

TEST(SnapshotFile, PayloadCorruptionCaughtByCrc) {
  const std::string path = temp_path("corrupt.snap");
  SnapshotWriter w;
  for (int i = 0; i < 16; ++i) w.write_f64(i * 1.25);
  write_snapshot_file(path, 0, w.bytes());
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes[40] ^= 0x01;  // single bit flip inside the payload
  put_bytes(path, bytes);
  try {
    read_snapshot_file(path, 0);
    FAIL() << "flipped payload bit must be caught";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
  fs::remove(path);
}

TEST(SnapshotFile, FutureFormatVersionRefused) {
  const std::string path = temp_path("version.snap");
  SnapshotWriter w;
  w.write_u8(1);
  write_snapshot_file(path, 0, w.bytes());
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes[8] = static_cast<std::uint8_t>(kFormatVersion + 1);  // version is not CRC'd
  put_bytes(path, bytes);
  try {
    read_snapshot_file(path, 0);
    FAIL() << "future format version must be refused";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("format version"), std::string::npos);
  }
  fs::remove(path);
}

TEST(SnapshotFile, OverwriteIsAtomicReplace) {
  // Writing over an existing snapshot replaces it wholesale: afterwards the
  // file holds exactly the new payload and no tmp residue.
  const std::string path = temp_path("overwrite.snap");
  SnapshotWriter w1;
  w1.write_u64(1);
  write_snapshot_file(path, 10, w1.bytes());
  SnapshotWriter w2;
  w2.write_u64(2);
  w2.write_u64(3);
  write_snapshot_file(path, 20, w2.bytes());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(read_snapshot_header(path).config_hash, 20u);
  EXPECT_EQ(read_snapshot_file(path, 20), w2.bytes());
  fs::remove(path);
}

TEST(SnapshotFile, UnwritableDestinationIsReadableError) {
  const std::string path =
      temp_path("no_such_dir_for_snapshots") + "/nested/deep/file.snap";
  SnapshotWriter w;
  w.write_u8(1);
  EXPECT_THROW(write_snapshot_file(path, 0, w.bytes()), SnapshotError);
}

// ---- sectioned "BAATSECT" container (snapshot/sections.hpp) -------------

std::vector<std::uint8_t> payload_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

void write_three_sections(const std::string& path, std::uint64_t hash) {
  SectionFileWriter w(path, hash, 3);
  w.append(payload_of({1, 2, 3}));
  w.append(payload_of({}));  // empty sections are legal
  w.append(payload_of({9, 8, 7, 6}));
  w.commit();
}

TEST(SectionFile, RoundTripsSectionsInOrder) {
  const std::string path = temp_path("sect_roundtrip.snap");
  write_three_sections(path, 0xFEED);
  SectionFileReader r(path, 0xFEED);
  EXPECT_EQ(r.header().version, kSectionFormatVersion);
  EXPECT_EQ(r.header().config_hash, 0xFEEDu);
  EXPECT_EQ(r.header().section_count, 3u);
  EXPECT_EQ(r.read_section(), payload_of({1, 2, 3}));
  EXPECT_EQ(r.read_section(), payload_of({}));
  EXPECT_EQ(r.read_section(), payload_of({9, 8, 7, 6}));
  r.finish();
  fs::remove(path);
}

TEST(SectionFile, CommitDemandsTheDeclaredSectionCount) {
  const std::string path = temp_path("sect_short.snap");
  {
    SectionFileWriter w(path, 1, 2);
    w.append(payload_of({1}));
    EXPECT_THROW(w.commit(), SnapshotError);
  }
  // Uncommitted writer leaves no file behind (tmp removed, target untouched).
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SectionFile, AbandonedWriterPreservesThePreviousFile) {
  const std::string path = temp_path("sect_abandon.snap");
  write_three_sections(path, 5);
  {
    SectionFileWriter w(path, 5, 3);
    w.append(payload_of({42}));
    // destroyed without commit — simulated crash mid-checkpoint
  }
  SectionFileReader r(path, 5);
  EXPECT_EQ(r.read_section(), payload_of({1, 2, 3}));
  fs::remove(path);
}

TEST(SectionFile, ConfigHashMismatchRefusedAndZeroSkips) {
  const std::string path = temp_path("sect_hash.snap");
  write_three_sections(path, 1234);
  EXPECT_THROW(SectionFileReader(path, 999), SnapshotError);
  EXPECT_NO_THROW(SectionFileReader(path, 0));
  fs::remove(path);
}

TEST(SectionFile, PayloadCorruptionNamesTheSectionIndex) {
  const std::string path = temp_path("sect_crc.snap");
  write_three_sections(path, 7);
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes[bytes.size() - 1] ^= 0xFF;  // last byte of section 2's payload
  put_bytes(path, bytes);
  SectionFileReader r(path, 7);
  r.read_section();
  r.read_section();
  try {
    r.read_section();
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("section 2"), std::string::npos);
  }
  fs::remove(path);
}

TEST(SectionFile, TruncationAtEveryPrefixIsAReadableError) {
  const std::string path = temp_path("sect_trunc.snap");
  write_three_sections(path, 7);
  const std::vector<std::uint8_t> whole = file_bytes(path);
  for (std::size_t len = 0; len < whole.size(); ++len) {
    put_bytes(path, {whole.begin(), whole.begin() + static_cast<long>(len)});
    try {
      SectionFileReader r(path, 7);
      while (r.sections_read() < r.header().section_count) r.read_section();
      r.finish();
      FAIL() << "truncation to " << len << " bytes went unnoticed";
    } catch (const SnapshotError&) {
      // expected: every prefix must fail loudly, never crash or hang
    }
  }
  fs::remove(path);
}

TEST(SectionFile, TrailingGarbageRefusedByFinish) {
  const std::string path = temp_path("sect_trailing.snap");
  write_three_sections(path, 7);
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes.push_back(0);
  put_bytes(path, bytes);
  SectionFileReader r(path, 7);
  r.read_section();
  r.read_section();
  r.read_section();
  EXPECT_THROW(r.finish(), SnapshotError);
  fs::remove(path);
}

TEST(SectionFile, ReadingPastTheDeclaredCountThrows) {
  const std::string path = temp_path("sect_overread.snap");
  write_three_sections(path, 7);
  SectionFileReader r(path, 7);
  r.read_section();
  r.read_section();
  r.read_section();
  EXPECT_THROW(r.read_section(), SnapshotError);
  fs::remove(path);
}

TEST(SectionFile, FinishBeforeAllSectionsReadThrows) {
  const std::string path = temp_path("sect_underread.snap");
  write_three_sections(path, 7);
  SectionFileReader r(path, 7);
  r.read_section();
  EXPECT_THROW(r.finish(), SnapshotError);
  fs::remove(path);
}

TEST(SectionFile, CorruptedSizePrefixCannotDriveHugeAllocation) {
  const std::string path = temp_path("sect_hugesize.snap");
  write_three_sections(path, 7);
  std::vector<std::uint8_t> bytes = file_bytes(path);
  // Section 0's u64 size field starts right after the 28-byte header; stamp
  // an absurd size and make sure the reader errors instead of allocating.
  for (int i = 0; i < 8; ++i) bytes[28 + i] = 0xFF;
  put_bytes(path, bytes);
  SectionFileReader r(path, 7);
  EXPECT_THROW(r.read_section(), SnapshotError);
  fs::remove(path);
}

TEST(SectionFile, BadMagicAndVersionRefused) {
  const std::string path = temp_path("sect_magic.snap");
  write_three_sections(path, 7);
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes[0] = 'X';
  put_bytes(path, bytes);
  EXPECT_THROW(SectionFileReader(path, 7), SnapshotError);
  bytes = file_bytes(path);
  bytes[0] = 'B';
  bytes[8] = 0xEE;  // version low byte
  put_bytes(path, bytes);
  EXPECT_THROW(SectionFileReader(path, 7), SnapshotError);
  fs::remove(path);
}

}  // namespace
}  // namespace baat::snapshot
