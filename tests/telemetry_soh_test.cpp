#include <gtest/gtest.h>

#include "telemetry/soh.hpp"
#include "util/require.hpp"

namespace baat::telemetry {
namespace {

TEST(Soh, LinearFadeRecoveredExactly) {
  SohEstimator e;
  // capacity(t) = 1.0 − 0.001·t
  for (double day : {0.0, 30.0, 60.0, 90.0}) e.add_probe(day, 1.0 - 0.001 * day);
  EXPECT_NEAR(e.fade_per_day(), 0.001, 1e-12);
  EXPECT_NEAR(e.capacity_at(120.0), 0.88, 1e-12);
  const auto eol = e.projected_eol_day();
  ASSERT_TRUE(eol.has_value());
  EXPECT_NEAR(*eol, 200.0, 1e-9);  // crosses 0.8 at day 200
}

TEST(Soh, NoisyProbesStillCloseToTruth) {
  SohEstimator e;
  const double noise[] = {0.004, -0.003, 0.002, -0.004, 0.001, 0.0};
  int i = 0;
  for (double day : {0.0, 30.0, 60.0, 90.0, 120.0, 150.0}) {
    e.add_probe(day, 1.0 - 0.0008 * day + noise[i++]);
  }
  EXPECT_NEAR(e.fade_per_day(), 0.0008, 0.0002);
  const auto eol = e.projected_eol_day();
  ASSERT_TRUE(eol.has_value());
  EXPECT_NEAR(*eol, 250.0, 50.0);
}

TEST(Soh, HealthyBatteryHasNoProjection) {
  SohEstimator e;
  e.add_probe(0.0, 0.98);
  e.add_probe(30.0, 0.98);
  EXPECT_DOUBLE_EQ(e.fade_per_day(), 0.0);
  EXPECT_FALSE(e.projected_eol_day().has_value());
}

TEST(Soh, ImprovingFitClampsToZeroFade) {
  SohEstimator e;
  e.add_probe(0.0, 0.95);
  e.add_probe(30.0, 0.96);  // probe noise can show "improvement"
  EXPECT_DOUBLE_EQ(e.fade_per_day(), 0.0);
  EXPECT_FALSE(e.projected_eol_day().has_value());
}

TEST(Soh, MeasuredEol) {
  SohEstimator e;
  e.add_probe(0.0, 0.95);
  EXPECT_FALSE(e.measured_eol());
  e.add_probe(30.0, 0.79);
  EXPECT_TRUE(e.measured_eol());
}

TEST(Soh, CustomEolLine) {
  SohEstimator e{0.70};
  for (double day : {0.0, 100.0}) e.add_probe(day, 1.0 - 0.001 * day);
  const auto eol = e.projected_eol_day();
  ASSERT_TRUE(eol.has_value());
  EXPECT_NEAR(*eol, 300.0, 1e-9);
}

TEST(Soh, RejectsBadInput) {
  EXPECT_THROW(SohEstimator{1.0}, util::PreconditionError);
  SohEstimator e;
  EXPECT_THROW(e.add_probe(-1.0, 0.9), util::PreconditionError);
  e.add_probe(10.0, 0.9);
  EXPECT_THROW(e.add_probe(5.0, 0.9), util::PreconditionError);  // out of order
  EXPECT_THROW(e.fade_per_day(), util::PreconditionError);       // one probe
  EXPECT_FALSE(e.projected_eol_day().has_value());
}

}  // namespace
}  // namespace baat::telemetry
