#include <gtest/gtest.h>

#include "solar/irradiance.hpp"
#include "solar/location.hpp"
#include "solar/solar_day.hpp"
#include "solar/weather.hpp"
#include "util/require.hpp"

namespace baat::solar {
namespace {

using util::hours;
using util::seconds;

TEST(Irradiance, ZeroOutsideSunWindow) {
  const SunWindow w;
  EXPECT_DOUBLE_EQ(clear_sky_fraction(w, hours(3.0)), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_fraction(w, hours(22.0)), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_fraction(w, w.sunrise), 0.0);
}

TEST(Irradiance, PeaksAtSolarNoon) {
  const SunWindow w;
  const auto noon = util::Seconds{(w.sunrise + w.sunset).value() / 2.0};
  EXPECT_NEAR(clear_sky_fraction(w, noon), 1.0, 1e-9);
  EXPECT_LT(clear_sky_fraction(w, hours(9.0)), 1.0);
}

TEST(Irradiance, SymmetricAroundNoon) {
  const SunWindow w;
  const double noon_h = (w.sunrise + w.sunset).value() / 2.0 / 3600.0;
  for (double dh : {1.0, 2.0, 4.0}) {
    EXPECT_NEAR(clear_sky_fraction(w, hours(noon_h - dh)),
                clear_sky_fraction(w, hours(noon_h + dh)), 1e-9);
  }
}

TEST(Irradiance, ClearSkyHoursIsHalfWindow) {
  const SunWindow w;
  EXPECT_NEAR(clear_sky_hours(w), w.length().value() / 3600.0 / 2.0, 1e-12);
}

TEST(Weather, ParamsMatchPaperBudgets) {
  EXPECT_DOUBLE_EQ(weather_params(DayType::Sunny).daily_energy_kwh, 8.0);
  EXPECT_DOUBLE_EQ(weather_params(DayType::Cloudy).daily_energy_kwh, 6.0);
  EXPECT_DOUBLE_EQ(weather_params(DayType::Rainy).daily_energy_kwh, 3.0);
}

TEST(Weather, CloudProcessStaysInBounds) {
  CloudProcess p{weather_params(DayType::Cloudy), util::Rng{5}};
  for (int i = 0; i < 10000; ++i) {
    const double a = p.next();
    EXPECT_GE(a, 0.02);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Weather, CloudyIsChurnierThanSunny) {
  CloudProcess sunny{weather_params(DayType::Sunny), util::Rng{5}};
  CloudProcess cloudy{weather_params(DayType::Cloudy), util::Rng{5}};
  double sunny_var = 0.0;
  double cloudy_var = 0.0;
  double prev_s = sunny.next();
  double prev_c = cloudy.next();
  for (int i = 0; i < 5000; ++i) {
    const double s = sunny.next();
    const double c = cloudy.next();
    sunny_var += (s - prev_s) * (s - prev_s);
    cloudy_var += (c - prev_c) * (c - prev_c);
    prev_s = s;
    prev_c = c;
  }
  EXPECT_GT(cloudy_var, 3.0 * sunny_var);
}

TEST(SolarDay, EnergyNormalizedToWeatherBudget) {
  const PlantSpec spec;
  for (DayType t : {DayType::Sunny, DayType::Cloudy, DayType::Rainy}) {
    const SolarDay day{spec, t, util::Rng{11}};
    const double target = weather_params(t).daily_energy_kwh * 1000.0;
    // ±3σ of the 5% jitter.
    EXPECT_NEAR(day.daily_energy().value(), target, target * 0.16);
  }
}

TEST(SolarDay, PowerIntegralMatchesReportedEnergy) {
  const PlantSpec spec;
  const SolarDay day{spec, DayType::Cloudy, util::Rng{3}};
  double wh = 0.0;
  for (int m = 0; m < 1440; ++m) {
    wh += day.power(util::minutes(static_cast<double>(m))).value() / 60.0;
  }
  EXPECT_NEAR(wh, day.daily_energy().value(), 1.0);
}

TEST(SolarDay, DarkAtNight) {
  const SolarDay day{PlantSpec{}, DayType::Sunny, util::Rng{1}};
  EXPECT_DOUBLE_EQ(day.power(hours(2.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(day.power(hours(23.0)).value(), 0.0);
  EXPECT_GT(day.power(hours(13.0)).value(), 0.0);
}

TEST(SolarDay, DeterministicForSameRng) {
  const PlantSpec spec;
  const SolarDay a{spec, DayType::Cloudy, util::Rng{42}};
  const SolarDay b{spec, DayType::Cloudy, util::Rng{42}};
  for (double h : {9.0, 12.0, 15.0, 18.0}) {
    EXPECT_DOUBLE_EQ(a.power(hours(h)).value(), b.power(hours(h)).value());
  }
}

TEST(SolarDay, RejectsOutOfDayQuery) {
  const SolarDay day{PlantSpec{}, DayType::Sunny, util::Rng{1}};
  EXPECT_THROW(day.power(seconds(-1.0)), util::PreconditionError);
  EXPECT_THROW(day.power(hours(24.0)), util::PreconditionError);
}

TEST(Location, ProbabilitiesSumToOne) {
  for (double f : {0.0, 0.3, 0.7, 1.0}) {
    const Location loc{f};
    const double sum = loc.probability(DayType::Sunny) +
                       loc.probability(DayType::Cloudy) +
                       loc.probability(DayType::Rainy);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Location, MoreSunshineMoreEnergy) {
  EXPECT_GT(Location{0.8}.expected_daily_energy_kwh(),
            Location{0.3}.expected_daily_energy_kwh());
  EXPECT_DOUBLE_EQ(Location{1.0}.expected_daily_energy_kwh(), 8.0);
}

TEST(Location, SampledMixMatchesProbabilities) {
  const Location loc{0.6};
  util::Rng rng{17};
  const auto days = loc.sample_days(20000, rng);
  double sunny = 0.0;
  for (DayType t : days) sunny += t == DayType::Sunny ? 1.0 : 0.0;
  EXPECT_NEAR(sunny / 20000.0, 0.6, 0.02);
}

TEST(Location, RejectsOutOfRangeFraction) {
  EXPECT_THROW(Location{-0.1}, util::PreconditionError);
  EXPECT_THROW(Location{1.1}, util::PreconditionError);
}

}  // namespace
}  // namespace baat::solar
