#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "sim/multiday.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {
namespace {

TEST(SweepMap, SlotsResultsByIndexAtAnyWorkerCount) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    SweepOptions opts;
    opts.jobs = workers;
    const std::vector<std::size_t> out =
        sweep_map(16, [](std::size_t i) { return i * i; }, opts);
    ASSERT_EQ(out.size(), 16u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(Sweep, CapturesJobExceptionsPerResult) {
  std::vector<SweepJob> jobs;
  jobs.push_back({"ok-job", [] {}});
  jobs.push_back({"bad-job", [] {
                    throw util::PreconditionError("deliberate failure");
                  }});
  jobs.push_back({"late-job", [] {}});
  SweepOptions opts;
  opts.jobs = 2;
  const std::vector<SweepResult> results = run_sweep(std::move(jobs), opts);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("deliberate failure"), std::string::npos);
  EXPECT_EQ(results[1].name, "bad-job");
  EXPECT_TRUE(results[2].ok);
}

TEST(SweepMap, RethrowsJobFailureAfterJoin) {
  EXPECT_THROW(sweep_map(4,
                         [](std::size_t i) {
                           if (i == 2) {
                             throw util::PreconditionError("boom");
                           }
                           return i;
                         }),
               util::PreconditionError);
}

TEST(Sweep, RejectsEmptyWork) {
  std::vector<SweepJob> jobs;
  jobs.push_back({"no-op", {}});
  EXPECT_THROW(run_sweep(std::move(jobs)), util::PreconditionError);
}

TEST(Sweep, GaugeAndCounterMergeInJobIndexOrder) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    obs::Registry& reg = obs::global_registry();
    reg.reset();
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < 6; ++i) {
      jobs.push_back({"job-" + std::to_string(i), [i] {
                        obs::global_registry().counter("sweep.test.hits").inc();
                        obs::global_registry()
                            .gauge("sweep.test.last_index")
                            .set(static_cast<double>(i));
                      }});
    }
    SweepOptions opts;
    opts.jobs = workers;
    run_sweep(std::move(jobs), opts);
    // Counters accumulate across jobs; gauges take the highest-index job's
    // value regardless of which worker finished last.
    EXPECT_DOUBLE_EQ(reg.counter("sweep.test.hits").value(), 6.0);
    EXPECT_DOUBLE_EQ(reg.gauge("sweep.test.last_index").value(), 5.0);
    reg.reset();
  }
}

TEST(Sweep, MergeObsOffLeavesCallerRegistryUntouched) {
  obs::Registry& reg = obs::global_registry();
  reg.reset();
  std::vector<SweepJob> jobs;
  jobs.push_back({"isolated", [] {
                    obs::global_registry().counter("sweep.test.private").inc(7.0);
                  }});
  SweepOptions opts;
  opts.merge_obs = false;
  const std::vector<SweepResult> results = run_sweep(std::move(jobs), opts);
  EXPECT_DOUBLE_EQ(reg.counter("sweep.test.private").value(), 0.0);
  // The job's own registry still carries the value for the caller to read.
  auto it = results[0].metrics.counters().find("sweep.test.private");
  ASSERT_NE(it, results[0].metrics.counters().end());
  EXPECT_DOUBLE_EQ(it->second.value(), 7.0);
  reg.reset();
}

TEST(Sweep, LogLinesReplayInJobIndexOrder) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    util::CaptureLog capture;
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < 8; ++i) {
      jobs.push_back({"job-" + std::to_string(i), [i] {
                        util::log_warn() << "sweep line " << i;
                      }});
    }
    SweepOptions opts;
    opts.jobs = workers;
    run_sweep(std::move(jobs), opts);
    ASSERT_EQ(capture.lines().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NE(capture.lines()[i].find("sweep line " + std::to_string(i)),
                std::string::npos)
          << "workers=" << workers << " line " << i << ": " << capture.lines()[i];
    }
  }
}

TEST(Sweep, CallerSimClockSurvivesJobs) {
  util::set_sim_time(1234.0);
  sweep_map(4, [](std::size_t i) {
    util::set_sim_time(static_cast<double>(i) * 1000.0);
    return i;
  });
  EXPECT_DOUBLE_EQ(util::sim_time(), 1234.0);
  util::set_sim_time(-1.0);
}

TEST(DefaultSweepJobs, ReadsEnvOverride) {
  ::setenv("BAAT_JOBS", "3", 1);
  EXPECT_EQ(default_sweep_jobs(), 3u);
  ::setenv("BAAT_JOBS", "not-a-number", 1);
  EXPECT_GE(default_sweep_jobs(), 1u);
  ::unsetenv("BAAT_JOBS");
  EXPECT_GE(default_sweep_jobs(), 1u);
}

// The tentpole guarantee: a grid of real simulations produces byte-identical
// merged metrics and trace exports whether it runs on one worker or eight.
TEST(Sweep, SimulationExportsByteIdenticalAcrossWorkerCounts) {
  const std::vector<double> fractions{0.2, 0.5, 0.8};
  auto run_grid = [&](std::size_t workers) {
    obs::Registry& reg = obs::global_registry();
    obs::TraceBuffer& trace = obs::global_trace();
    reg.reset();
    trace.clear();
    obs::set_profiling_enabled(false);  // wall-clock timers are the documented
                                        // exception to determinism
    obs::set_trace_enabled(true);
    SweepOptions opts;
    opts.jobs = workers;
    const std::vector<double> healths = sweep_map(
        fractions.size(),
        [&](std::size_t i) {
          ScenarioConfig cfg = prototype_scenario();
          cfg.nodes = 3;
          cfg.seed = 2026;
          Cluster cluster{cfg};
          MultiDayOptions md;
          md.days = 2;
          md.sunshine_fraction = fractions[i];
          md.probe_every_days = 0;
          md.keep_days = false;
          return run_multi_day(cluster, md).min_health_end;
        },
        opts);
    obs::set_trace_enabled(false);
    std::ostringstream trace_out;
    trace.write_jsonl(trace_out);
    struct Snapshot {
      std::vector<double> healths;
      std::string metrics_json;
      std::string metrics_csv;
      std::string trace_jsonl;
    };
    Snapshot snap{healths, reg.json(), reg.csv(), trace_out.str()};
    reg.reset();
    trace.clear();
    util::set_sim_time(-1.0);
    return snap;
  };

  const auto serial = run_grid(1);
  const auto parallel = run_grid(8);
  ASSERT_EQ(serial.healths.size(), parallel.healths.size());
  for (std::size_t i = 0; i < serial.healths.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.healths[i], parallel.healths[i]);
  }
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  EXPECT_EQ(serial.metrics_csv, parallel.metrics_csv);
  EXPECT_EQ(serial.trace_jsonl, parallel.trace_jsonl);
  EXPECT_GT(serial.trace_jsonl.size(), 0u);
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    WorkerPool pool{workers};
    std::vector<std::atomic<int>> hits(100);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << workers << " workers";
    }
  }
}

TEST(WorkerPool, SingleWorkerRunsInlineWithoutThreads) {
  WorkerPool pool{1};
  EXPECT_EQ(pool.workers(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  // Inline execution is what keeps thread-local obs sinks trivially correct
  // in the serial case — pin it.
  EXPECT_EQ(seen, caller);
  WorkerPool zero{0};
  EXPECT_EQ(zero.workers(), 1u);
}

TEST(WorkerPool, PoolThreadsNeverRunOnTheCaller) {
  WorkerPool pool{4};
  EXPECT_EQ(pool.workers(), 4u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(32);
  pool.run(seen.size(), [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_NE(id, caller);
}

TEST(WorkerPool, ReusableAcrossManyBatches) {
  WorkerPool pool{3};
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(10, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 50 * 45);
}

TEST(WorkerPool, HandlesEmptyAndOversubscribedBatches) {
  WorkerPool pool{4};
  pool.run(0, [](std::size_t) { FAIL() << "no index should run"; });
  std::atomic<int> count{0};
  pool.run(1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
  pool.run(2, [&](std::size_t) { count.fetch_add(1); });  // fewer tasks than lanes
  EXPECT_EQ(count.load(), 1002);
}

}  // namespace
}  // namespace baat::sim
