#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace baat::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), PreconditionError);
  EXPECT_THROW(s.min(), PreconditionError);
  EXPECT_THROW(s.max(), PreconditionError);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, BinsAndBoundaries) {
  Histogram h{{0.0, 1.0, 2.0, 4.0}};
  ASSERT_EQ(h.bin_count(), 3u);
  h.add(0.0);    // bin 0 (left edge inclusive)
  h.add(0.999);  // bin 0
  h.add(1.0);    // bin 1 (right edge exclusive of bin 0)
  h.add(3.9);    // bin 2
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(2), 1.0);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h{{0.0, 1.0}};
  h.add(-0.1);
  h.add(1.0);  // top edge is exclusive → overflow
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(Histogram, WeightedSamplesAndFractions) {
  Histogram h{{0.0, 10.0, 20.0}};
  h.add(5.0, 3.0);
  h.add(15.0, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h{{0.0, 1.0}};
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, UniformFactory) {
  Histogram h = Histogram::uniform(0.0, 100.0, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 30.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 40.0);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), PreconditionError);
}

// Regression: NaN fails every ordered comparison, so upper_bound used to
// return end() and the bin increment wrote one past the counts array. NaN
// weight now lands in its own counter, outside total_weight().
TEST(Histogram, NanGoesToNanCounterNotOutOfBounds) {
  Histogram h{{0.0, 1.0, 2.0}};
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::nan(""), 2.5);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.nan_weight(), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
}

TEST(Histogram, MergeAddsBinsUnderflowOverflowAndNan) {
  Histogram a{{0.0, 1.0, 2.0}};
  Histogram b{{0.0, 1.0, 2.0}};
  a.add(0.5);
  a.add(-1.0);  // underflow
  b.add(1.5, 2.0);
  b.add(3.0);  // overflow
  b.add(-2.0, 0.5);
  b.add(std::numeric_limits<double>::quiet_NaN(), 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(a.bin_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(a.underflow(), 1.5);
  EXPECT_DOUBLE_EQ(a.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(a.nan_weight(), 4.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 5.5);
}

TEST(Histogram, MergeRejectsMismatchedEdges) {
  Histogram a{{0.0, 1.0}};
  Histogram b{{0.0, 2.0}};
  Histogram c{{0.0, 0.5, 1.0}};
  EXPECT_THROW(a.merge(b), PreconditionError);
  EXPECT_THROW(a.merge(c), PreconditionError);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a{{0.0, 1.0}};
  a.add(0.5, 2.0);
  Histogram empty{{0.0, 1.0}};
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2.0);
}

TEST(Histogram, LabelFormat) {
  Histogram h{{0.0, 15.0, 30.0}};
  EXPECT_EQ(h.bin_label(0), "[0, 15)");
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, RejectsBadArguments) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), PreconditionError);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), PreconditionError);
}

TEST(MeanOf, BasicAndEmpty) {
  const std::vector<double> xs{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_THROW(mean_of(std::vector<double>{}), PreconditionError);
}

}  // namespace
}  // namespace baat::util
