#include <gtest/gtest.h>

#include <sstream>

#include "solar/trace_io.hpp"
#include "util/require.hpp"

namespace baat::solar {
namespace {

using util::hours;
using util::seconds;

SolarTrace small_trace() {
  SolarTrace t;
  t.sample_period = seconds(3600.0);
  t.watts = {0.0, 100.0, 400.0, 200.0};
  return t;
}

TEST(SolarTrace, EnergyIntegration) {
  // 0+100+400+200 W for an hour each = 700 Wh.
  EXPECT_DOUBLE_EQ(small_trace().daily_energy().value(), 700.0);
}

TEST(SolarTrace, PowerLookupIsStairstep) {
  const SolarTrace t = small_trace();
  EXPECT_DOUBLE_EQ(t.power(seconds(0.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(t.power(seconds(3650.0)).value(), 100.0);
  EXPECT_DOUBLE_EQ(t.power(hours(2.5)).value(), 400.0);
  // Beyond the last sample it holds the final value.
  EXPECT_DOUBLE_EQ(t.power(hours(20.0)).value(), 200.0);
  EXPECT_THROW(t.power(seconds(-1.0)), util::PreconditionError);
}

TEST(SolarTrace, WriteReadRoundTrip) {
  const SolarTrace t = small_trace();
  std::stringstream buffer;
  write_trace_csv(buffer, t);
  const SolarTrace back = read_trace_csv(buffer);
  ASSERT_EQ(back.watts.size(), t.watts.size());
  EXPECT_DOUBLE_EQ(back.sample_period.value(), t.sample_period.value());
  for (std::size_t i = 0; i < t.watts.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.watts[i], t.watts[i]);
  }
}

TEST(SolarTrace, ReadAcceptsHeaderless) {
  std::stringstream in{"0,10\n60,20\n120,30\n"};
  const SolarTrace t = read_trace_csv(in);
  EXPECT_EQ(t.watts.size(), 3u);
  EXPECT_DOUBLE_EQ(t.sample_period.value(), 60.0);
}

TEST(SolarTrace, ReadRejectsMalformedInput) {
  {
    std::stringstream in{"60,10\n120,20\n"};  // does not start at 0
    EXPECT_THROW(read_trace_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"0,10\n60,20\n180,30\n"};  // uneven spacing
    EXPECT_THROW(read_trace_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"0,10\n60,-5\n"};  // negative power
    EXPECT_THROW(read_trace_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"0,ten\n60,20\n"};  // unparseable
    EXPECT_THROW(read_trace_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"0,10\n"};  // too short
    EXPECT_THROW(read_trace_csv(in), util::PreconditionError);
  }
}

TEST(SolarTrace, FromGeneratedDayPreservesEnergy) {
  const SolarDay day{PlantSpec{}, DayType::Cloudy, util::Rng{17}};
  const SolarTrace t = trace_from_day(day);
  EXPECT_NEAR(t.daily_energy().value(), day.daily_energy().value(), 5.0);
  // Pointwise agreement on the shared grid.
  for (double h : {9.0, 12.0, 16.0}) {
    EXPECT_DOUBLE_EQ(t.power(hours(h)).value(), day.power(hours(h)).value());
  }
}

}  // namespace
}  // namespace baat::solar
