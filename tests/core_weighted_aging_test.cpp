#include <gtest/gtest.h>

#include <vector>

#include "core/weighted_aging.hpp"

namespace baat::core {
namespace {

AgingMetrics metrics(double nat, double cf, double pc, double ddt = 0.0,
                     double dr = 0.0) {
  AgingMetrics m;
  m.nat = nat;
  m.cf = cf;
  m.pc = pc;
  m.pc_health = 1.0 - (pc - 0.25) / 0.75;
  m.ddt = ddt;
  m.dr_c_rate = dr;
  return m;
}

TEST(AgingSignals, HealthyBatteryScoresNearZero) {
  const AgingSignals s = aging_signals(metrics(0.0, 1.1, 0.25));
  EXPECT_DOUBLE_EQ(s.s_nat, 0.0);
  EXPECT_DOUBLE_EQ(s.s_cf, 0.0);
  EXPECT_DOUBLE_EQ(s.s_pc, 0.0);
}

TEST(AgingSignals, LowCfIsStress) {
  const AgingSignals low = aging_signals(metrics(0.0, 0.5, 0.25));
  EXPECT_GT(low.s_cf, 0.0);
  // Lower CF ⇒ more stress.
  const AgingSignals lower = aging_signals(metrics(0.0, 0.2, 0.25));
  EXPECT_GT(lower.s_cf, low.s_cf);
}

TEST(AgingSignals, OverchargeCfAlsoStress) {
  const AgingSignals over = aging_signals(metrics(0.0, 2.0, 0.25));
  EXPECT_GT(over.s_cf, 0.0);
  // §III-B: the overcharge tail matters less than chronic under-recharge.
  const AgingSignals under = aging_signals(metrics(0.0, 0.35, 0.25));
  EXPECT_GT(under.s_cf, over.s_cf);
}

TEST(AgingSignals, PcSignalNormalized) {
  EXPECT_DOUBLE_EQ(aging_signals(metrics(0.0, 1.1, 0.25)).s_pc, 0.0);
  EXPECT_DOUBLE_EQ(aging_signals(metrics(0.0, 1.1, 1.0)).s_pc, 1.0);
  EXPECT_NEAR(aging_signals(metrics(0.0, 1.1, 0.625)).s_pc, 0.5, 1e-12);
}

TEST(AgingSignals, NatScaled) {
  AgingSignalParams p;
  EXPECT_DOUBLE_EQ(aging_signals(metrics(0.1, 1.1, 0.25), p).s_nat, 0.1 * p.nat_scale);
}

TEST(WeightedAging, Eq6IsWeightedSum) {
  const AgingWeights w{0.5, 0.3, 0.2};
  const AgingMetrics m = metrics(0.2, 0.8, 0.7);
  const AgingSignals s = aging_signals(m);
  EXPECT_NEAR(weighted_aging(m, w),
              0.5 * s.s_cf + 0.3 * s.s_pc + 0.2 * s.s_nat, 1e-12);
}

TEST(WeightedAging, MonotoneInEachSignal) {
  const AgingWeights w{0.4, 0.4, 0.4};
  const double base = weighted_aging(metrics(0.1, 1.0, 0.5), w);
  EXPECT_GT(weighted_aging(metrics(0.2, 1.0, 0.5), w), base);  // more NAT
  EXPECT_GT(weighted_aging(metrics(0.1, 0.7, 0.5), w), base);  // lower CF
  EXPECT_GT(weighted_aging(metrics(0.1, 1.0, 0.8), w), base);  // deeper PC
}

TEST(RankByWeightedAging, HealthiestFirst) {
  const std::vector<AgingMetrics> fleet{
      metrics(0.3, 0.6, 0.8),   // heavily aged
      metrics(0.0, 1.1, 0.25),  // fresh
      metrics(0.1, 0.9, 0.5),   // middling
  };
  const AgingWeights w{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto order = rank_by_weighted_aging(fleet, w);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(RankByWeightedAging, StableForTies) {
  const std::vector<AgingMetrics> fleet{metrics(0.0, 1.1, 0.25),
                                        metrics(0.0, 1.1, 0.25)};
  const auto order = rank_by_weighted_aging(fleet, AgingWeights{});
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(RankByWeightedAging, EmptyFleet) {
  const std::vector<AgingMetrics> fleet;
  EXPECT_TRUE(rank_by_weighted_aging(fleet, AgingWeights{}).empty());
}

}  // namespace
}  // namespace baat::core
