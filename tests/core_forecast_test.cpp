#include <gtest/gtest.h>

#include "core/forecast.hpp"
#include "solar/solar_day.hpp"
#include "util/require.hpp"

namespace baat::core {
namespace {

using util::hours;
using util::watts;

TEST(Forecast, PriorBeforeObservations) {
  SolarForecaster f{ForecastParams{}};
  EXPECT_DOUBLE_EQ(f.attenuation(), ForecastParams{}.prior_attenuation);
}

TEST(Forecast, ConvergesToObservedAttenuation) {
  ForecastParams p;
  SolarForecaster f{p};
  // Feed a perfectly clear noon for an hour: attenuation → 1.
  for (int m = 0; m < 60; ++m) {
    const auto t = util::Seconds{13.0 * 3600.0 + m * 60.0};
    const double clear = solar::clear_sky_fraction(p.window, t);
    f.observe(t, watts(p.plant_peak.value() * clear));
  }
  EXPECT_NEAR(f.attenuation(), 1.0, 0.05);
}

TEST(Forecast, TracksOvercastConditions) {
  ForecastParams p;
  SolarForecaster f{p};
  for (int m = 0; m < 60; ++m) {
    const auto t = util::Seconds{12.0 * 3600.0 + m * 60.0};
    const double clear = solar::clear_sky_fraction(p.window, t);
    f.observe(t, watts(p.plant_peak.value() * clear * 0.25));
  }
  EXPECT_NEAR(f.attenuation(), 0.25, 0.05);
}

TEST(Forecast, IgnoresDawnDuskNoise) {
  ForecastParams p;
  SolarForecaster f{p};
  const double before = f.attenuation();
  // 4 AM readings carry no clear-sky signal and must not move the estimate.
  f.observe(hours(4.0), watts(0.0));
  EXPECT_DOUBLE_EQ(f.attenuation(), before);
}

TEST(Forecast, PowerForecastFollowsEnvelope) {
  ForecastParams p;
  SolarForecaster f{p};
  for (int m = 0; m < 30; ++m) {
    const auto t = util::Seconds{11.0 * 3600.0 + m * 60.0};
    f.observe(t, watts(p.plant_peak.value() *
                       solar::clear_sky_fraction(p.window, t) * 0.5));
  }
  const double at_noon = f.forecast_power(hours(13.0)).value();
  const double at_dusk = f.forecast_power(hours(19.0)).value();
  EXPECT_GT(at_noon, at_dusk);
  EXPECT_NEAR(at_noon, p.plant_peak.value() * 0.5, p.plant_peak.value() * 0.06);
  EXPECT_DOUBLE_EQ(f.forecast_power(hours(23.0)).value(), 0.0);
}

TEST(Forecast, RemainingEnergyShrinksThroughTheDay) {
  ForecastParams p;
  SolarForecaster f{p};
  f.observe(hours(10.0),
            watts(p.plant_peak.value() *
                  solar::clear_sky_fraction(p.window, hours(10.0)) * 0.8));
  const double morning = f.forecast_remaining_energy(hours(10.0)).value();
  const double noon = f.forecast_remaining_energy(hours(14.0)).value();
  const double dusk = f.forecast_remaining_energy(hours(19.0)).value();
  EXPECT_GT(morning, noon);
  EXPECT_GT(noon, dusk);
  EXPECT_NEAR(dusk, 0.0, 30.0);
}

TEST(Forecast, MorningForecastPredictsRealDayWithinBand) {
  // End-to-end: feed the forecaster the first two hours of a generated
  // sunny day, then compare its remaining-energy forecast to the truth.
  solar::PlantSpec spec;
  const solar::SolarDay day{spec, solar::DayType::Sunny, util::Rng{7}};
  ForecastParams p;
  p.plant_peak = spec.peak;
  p.window = spec.window;
  SolarForecaster f{p};
  for (double t = 8.0 * 3600.0; t < 10.0 * 3600.0; t += 60.0) {
    f.observe(util::Seconds{t}, day.power(util::Seconds{t}));
  }
  double truth_wh = 0.0;
  for (double t = 10.0 * 3600.0; t < 86400.0; t += 60.0) {
    truth_wh += day.power(util::Seconds{t}).value() / 60.0;
  }
  const double forecast_wh = f.forecast_remaining_energy(hours(10.0)).value();
  // Sunny days are persistence-friendly: within 30%.
  EXPECT_NEAR(forecast_wh, truth_wh, 0.3 * truth_wh);
}

TEST(Forecast, RejectsBadInput) {
  EXPECT_THROW(SolarForecaster({solar::SunWindow{}, watts(0.0)}),
               util::PreconditionError);
  SolarForecaster f{ForecastParams{}};
  EXPECT_THROW(f.observe(hours(12.0), watts(-1.0)), util::PreconditionError);
}

}  // namespace
}  // namespace baat::core
