#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "sim/multiday.hpp"
#include "sim/scenario.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {
namespace {

ScenarioConfig small_scenario() {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = 3;
  cfg.seed = 2026;
  return cfg;
}

MultiDayResult run_once(const ScenarioConfig& cfg) {
  Cluster cluster{cfg};
  MultiDayOptions opts;
  opts.days = 2;
  opts.weather = mixed_weather(opts.days, 1, 1, 0);
  opts.probe_every_days = 2;  // exercise the probe path (and its event)
  return run_multi_day(cluster, opts);
}

/// The observability layer must be a pure observer: identically seeded runs
/// produce byte-identical metric and trace exports, and enabling it does
/// not change the simulation outcome.
TEST(ObsDeterminism, ExportsAreByteIdenticalAcrossRuns) {
  const ScenarioConfig cfg = small_scenario();
  obs::Registry& reg = obs::global_registry();
  obs::TraceBuffer& trace = obs::global_trace();

  // Profiling stays off: wall-clock histograms are the documented exception
  // to the determinism contract.
  obs::set_profiling_enabled(false);
  obs::set_trace_enabled(true);

  reg.reset();
  trace.clear();
  const MultiDayResult first = run_once(cfg);
  const std::string metrics_a = reg.json();
  const std::string metrics_csv_a = reg.csv();
  std::ostringstream trace_a;
  trace.write_jsonl(trace_a);
  std::ostringstream chrome_a;
  trace.write_chrome_trace(chrome_a);

  reg.reset();
  trace.clear();
  const MultiDayResult second = run_once(cfg);
  const std::string metrics_b = reg.json();
  const std::string metrics_csv_b = reg.csv();
  std::ostringstream trace_b;
  trace.write_jsonl(trace_b);
  std::ostringstream chrome_b;
  trace.write_chrome_trace(chrome_b);

  obs::set_trace_enabled(false);
  util::set_sim_time(-1.0);

  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(metrics_csv_a, metrics_csv_b);
  EXPECT_EQ(trace_a.str(), trace_b.str());
  EXPECT_EQ(chrome_a.str(), chrome_b.str());
  EXPECT_GT(trace.size(), 0u);

  EXPECT_DOUBLE_EQ(first.total_throughput, second.total_throughput);
  EXPECT_DOUBLE_EQ(first.min_health_end, second.min_health_end);
}

TEST(ObsDeterminism, TracingDoesNotPerturbSimulation) {
  const ScenarioConfig cfg = small_scenario();

  obs::set_trace_enabled(false);
  obs::set_profiling_enabled(false);
  const MultiDayResult plain = run_once(cfg);

  obs::global_trace().clear();
  obs::set_trace_enabled(true);
  obs::set_profiling_enabled(true);  // timers read the wall clock, never the sim
  const MultiDayResult observed = run_once(cfg);
  obs::set_trace_enabled(false);
  obs::set_profiling_enabled(false);
  util::set_sim_time(-1.0);

  EXPECT_DOUBLE_EQ(plain.total_throughput, observed.total_throughput);
  EXPECT_DOUBLE_EQ(plain.mean_health_end, observed.mean_health_end);
  EXPECT_DOUBLE_EQ(plain.min_health_end, observed.min_health_end);
  ASSERT_EQ(plain.days.size(), observed.days.size());
  for (std::size_t d = 0; d < plain.days.size(); ++d) {
    EXPECT_DOUBLE_EQ(plain.days[d].throughput_work, observed.days[d].throughput_work);
    for (std::size_t n = 0; n < plain.days[d].nodes.size(); ++n) {
      EXPECT_DOUBLE_EQ(plain.days[d].nodes[n].soc_end,
                       observed.days[d].nodes[n].soc_end);
    }
  }
}

/// The metrics actually carry the run: spot-check a few counters and the
/// per-node gauges against the simulation result.
TEST(ObsDeterminism, MetricsReflectSimulation) {
  const ScenarioConfig cfg = small_scenario();
  obs::Registry& reg = obs::global_registry();
  reg.reset();
  const MultiDayResult run = run_once(cfg);

  EXPECT_DOUBLE_EQ(reg.counter("sim.days_run").value(), 2.0);
  EXPECT_GT(reg.counter("sim.jobs_deployed").value(), 0.0);
  EXPECT_GT(reg.counter("policy.control_ticks").value(), 0.0);
  EXPECT_GT(reg.counter("router.ticks").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("battery.probes_run").value(), 1.0);

  const DayResult& last = run.days.back();
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    EXPECT_DOUBLE_EQ(reg.gauge("node.soc", std::to_string(i)).value(),
                     last.nodes[i].soc_end);
    EXPECT_DOUBLE_EQ(reg.gauge("node.health", std::to_string(i)).value(),
                     last.nodes[i].health);
  }

  // low-SoC tick counter agrees with the per-day accounting (dt seconds per
  // tick, summed over nodes and days).
  double low_soc_seconds = 0.0;
  for (const DayResult& day : run.days) {
    for (const NodeDayStats& n : day.nodes) low_soc_seconds += n.low_soc_time.value();
  }
  EXPECT_DOUBLE_EQ(reg.counter("battery.low_soc_ticks").value() * cfg.dt.value(),
                   low_soc_seconds);
}

}  // namespace
}  // namespace baat::sim
