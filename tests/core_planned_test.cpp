#include <gtest/gtest.h>

#include "core/planned.hpp"
#include "util/require.hpp"

namespace baat::core {
namespace {

using util::ampere_hours;

TEST(Planned, Eq7BasicArithmetic) {
  // (35000 − 0) / 2000 = 17.5 Ah per cycle → 50% DoD of a 35 Ah unit.
  const DodGoal g =
      planned_dod(ampere_hours(35000.0), ampere_hours(0.0), 2000.0, ampere_hours(35.0));
  EXPECT_NEAR(g.dod, 0.5, 1e-12);
  EXPECT_NEAR(g.soc_trigger, 0.5, 1e-12);
}

TEST(Planned, UsedThroughputShrinksGoal) {
  const DodGoal fresh =
      planned_dod(ampere_hours(35000.0), ampere_hours(0.0), 2000.0, ampere_hours(35.0));
  const DodGoal worn = planned_dod(ampere_hours(35000.0), ampere_hours(17500.0), 2000.0,
                                   ampere_hours(35.0));
  EXPECT_NEAR(worn.dod, fresh.dod / 2.0, 1e-12);
}

TEST(Planned, FewCyclesLeftMeansAggressiveDod) {
  const DodGoal g =
      planned_dod(ampere_hours(35000.0), ampere_hours(0.0), 400.0, ampere_hours(35.0));
  // Raw DoD would be 2.5 — clamped to the 90% upper bound (§VI-G).
  EXPECT_DOUBLE_EQ(g.dod, 0.90);
  EXPECT_DOUBLE_EQ(g.soc_trigger, 0.10);
}

TEST(Planned, ManyCyclesLeftClampsAtFloor) {
  const DodGoal g = planned_dod(ampere_hours(35000.0), ampere_hours(0.0), 100000.0,
                                ampere_hours(35.0));
  EXPECT_DOUBLE_EQ(g.dod, 0.10);
  EXPECT_DOUBLE_EQ(g.soc_trigger, 0.90);
}

TEST(Planned, OverusedBatteryClampsAtFloor) {
  // C_used beyond C_total must not produce a negative DoD.
  const DodGoal g = planned_dod(ampere_hours(35000.0), ampere_hours(40000.0), 1000.0,
                                ampere_hours(35.0));
  EXPECT_DOUBLE_EQ(g.dod, 0.10);
}

TEST(Planned, DodMonotoneInRemainingBudget) {
  double prev = 0.0;
  for (double used : {30000.0, 20000.0, 10000.0, 0.0}) {
    const DodGoal g = planned_dod(ampere_hours(35000.0), ampere_hours(used), 3000.0,
                                  ampere_hours(35.0));
    EXPECT_GE(g.dod, prev);
    prev = g.dod;
  }
}

TEST(Planned, CustomBand) {
  const DodGoal g = planned_dod(ampere_hours(35000.0), ampere_hours(0.0), 400.0,
                                ampere_hours(35.0), 0.2, 0.6);
  EXPECT_DOUBLE_EQ(g.dod, 0.60);
}

TEST(Planned, CyclesRemainingFromCadence) {
  EXPECT_DOUBLE_EQ(cycles_remaining(365.0, 1.0), 365.0);
  EXPECT_DOUBLE_EQ(cycles_remaining(100.0, 0.5), 50.0);
  // Never below one planned cycle.
  EXPECT_DOUBLE_EQ(cycles_remaining(0.0, 2.0), 1.0);
}

TEST(Planned, RejectsBadInput) {
  EXPECT_THROW(planned_dod(ampere_hours(0.0), ampere_hours(0.0), 100.0,
                           ampere_hours(35.0)),
               util::PreconditionError);
  EXPECT_THROW(planned_dod(ampere_hours(100.0), ampere_hours(0.0), 0.0,
                           ampere_hours(35.0)),
               util::PreconditionError);
  EXPECT_THROW(planned_dod(ampere_hours(100.0), ampere_hours(0.0), 100.0,
                           ampere_hours(35.0), 0.5, 0.4),
               util::PreconditionError);
  EXPECT_THROW(cycles_remaining(-1.0, 1.0), util::PreconditionError);
  EXPECT_THROW(cycles_remaining(1.0, 0.0), util::PreconditionError);
}

}  // namespace
}  // namespace baat::core
