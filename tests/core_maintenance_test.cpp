#include <gtest/gtest.h>

#include "core/maintenance.hpp"
#include "util/require.hpp"

namespace baat::core {
namespace {

MaintenancePlanParams short_horizon() {
  MaintenancePlanParams p;
  p.horizon_days = 1000.0;
  p.batching_window_days = 30.0;
  return p;
}

TEST(Maintenance, SingleNodePeriodicReplacements) {
  const std::vector<NodeWear> fleet{{0, 300.0}};
  const MaintenancePlan plan =
      plan_replacements(fleet, short_horizon(), CostParams{});
  // Due at 300, 600, 900 — three replacements, three visits.
  EXPECT_DOUBLE_EQ(plan.total_replacements, 3.0);
  ASSERT_EQ(plan.visits.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.visits[0].day, 300.0);
  EXPECT_DOUBLE_EQ(plan.visits[2].day, 900.0);
}

TEST(Maintenance, SynchronizedFleetBatchesIntoOneVisit) {
  // BAAT's hiding makes the fleet wear out together → one truck roll.
  std::vector<NodeWear> fleet;
  for (std::size_t i = 0; i < 6; ++i) fleet.push_back({i, 400.0 + 2.0 * i});
  MaintenancePlanParams p = short_horizon();
  const MaintenancePlan plan = plan_replacements(fleet, p, CostParams{});
  // All six due within 10 days of each other → batched per cycle.
  ASSERT_EQ(plan.visits.size(), 2u);  // cycles at ~400 and ~800
  EXPECT_EQ(plan.visits[0].nodes.size(), 6u);
  EXPECT_EQ(visits_saved(plan), 12u - 2u);
}

TEST(Maintenance, ScatteredFleetRollsManyTrucks) {
  // e-Buff-style irregular aging → many separate visits (the paper's
  // maintenance-cost complaint).
  std::vector<NodeWear> fleet;
  for (std::size_t i = 0; i < 6; ++i) fleet.push_back({i, 250.0 + 90.0 * i});
  const MaintenancePlan scattered =
      plan_replacements(fleet, short_horizon(), CostParams{});
  std::vector<NodeWear> synced;
  for (std::size_t i = 0; i < 6; ++i) synced.push_back({i, 500.0});
  const MaintenancePlan tight =
      plan_replacements(synced, short_horizon(), CostParams{});
  EXPECT_GT(scattered.visits.size(), tight.visits.size());
}

TEST(Maintenance, CostAddsUnitsAndTruckRolls) {
  const std::vector<NodeWear> fleet{{0, 400.0}, {1, 405.0}};
  MaintenancePlanParams p = short_horizon();
  p.truck_roll_cost = util::dollars(100.0);
  CostParams cost;
  cost.battery_unit_cost = util::dollars(90.0);
  const MaintenancePlan plan = plan_replacements(fleet, p, cost);
  // Due at {400,405} and {800,810}: 4 units, 2 batched visits.
  EXPECT_DOUBLE_EQ(plan.total_replacements, 4.0);
  EXPECT_EQ(plan.visits.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.total_cost.value(), 4.0 * 90.0 + 2.0 * 100.0);
  EXPECT_NEAR(plan.annualized(p.horizon_days).value(),
              plan.total_cost.value() / (1000.0 / 365.0), 1e-9);
}

TEST(Maintenance, LongerLifeCutsPlanCost) {
  auto plan_for = [](double eol) {
    std::vector<NodeWear> fleet;
    for (std::size_t i = 0; i < 6; ++i) fleet.push_back({i, eol});
    MaintenancePlanParams p;
    p.horizon_days = 3650.0;
    return plan_replacements(fleet, p, CostParams{});
  };
  // The paper's lifetime → cost chain: +69% lifetime cuts the plan cost.
  const double ebuff_cost = plan_for(240.0).total_cost.value();
  const double baat_cost = plan_for(240.0 * 1.69).total_cost.value();
  EXPECT_LT(baat_cost, 0.65 * ebuff_cost);
}

TEST(Maintenance, EmptyFleetEmptyPlan) {
  const MaintenancePlan plan =
      plan_replacements({}, short_horizon(), CostParams{});
  EXPECT_TRUE(plan.visits.empty());
  EXPECT_DOUBLE_EQ(plan.total_cost.value(), 0.0);
}

TEST(Maintenance, OutlivingTheHorizonMeansNoReplacement) {
  const std::vector<NodeWear> fleet{{0, 2000.0}};
  const MaintenancePlan plan =
      plan_replacements(fleet, short_horizon(), CostParams{});
  EXPECT_TRUE(plan.visits.empty());
}

TEST(Maintenance, RejectsBadInput) {
  MaintenancePlanParams p;
  p.horizon_days = 0.0;
  EXPECT_THROW(plan_replacements({}, p, CostParams{}), util::PreconditionError);
  const std::vector<NodeWear> bad{{0, 0.0}};
  EXPECT_THROW(plan_replacements(bad, short_horizon(), CostParams{}),
               util::PreconditionError);
}

}  // namespace
}  // namespace baat::core
