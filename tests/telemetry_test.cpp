#include <gtest/gtest.h>

#include "battery/battery.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/power_table.hpp"
#include "telemetry/sensor.hpp"
#include "util/require.hpp"

namespace baat::telemetry {
namespace {

using util::amperes;
using util::hours;
using util::minutes;

battery::Battery fresh(double soc = 1.0) {
  return battery::Battery{battery::LeadAcidParams{}, battery::AgingParams{},
                          battery::ThermalParams{}, 1.0, 1.0, soc};
}

PowerTable make_table() {
  PowerTableParams p;
  p.chemistry = battery::LeadAcidParams{};
  return PowerTable{p};
}

/// Drives a battery and logs every step through a noiseless sensor.
void drive(battery::Battery& bat, PowerTable& table, double amps, double hours_len) {
  BatterySensor sensor{SensorNoise{0.0, 0.0, 0.0}, util::Rng{1}};
  const auto steps = static_cast<long>(hours_len * 60.0);
  for (long i = 0; i < steps; ++i) {
    const auto res = bat.step(amperes(amps), minutes(1.0));
    const auto reading = sensor.read(bat, res.actual_current,
                                     util::Seconds{table.time_total().value()});
    table.record(reading, minutes(1.0));
  }
}

TEST(Sensor, NoiselessSensorMatchesGroundTruth) {
  battery::Battery b = fresh(0.8);
  BatterySensor s{SensorNoise{0.0, 0.0, 0.0}, util::Rng{1}};
  const auto r = s.read(b, amperes(5.0), util::Seconds{0.0});
  EXPECT_DOUBLE_EQ(r.voltage.value(), b.terminal_voltage(amperes(5.0)).value());
  EXPECT_DOUBLE_EQ(r.current.value(), 5.0);
  EXPECT_DOUBLE_EQ(r.temperature.value(), b.temperature().value());
}

TEST(Sensor, NoiseIsBoundedInPractice) {
  battery::Battery b = fresh(0.8);
  BatterySensor s{SensorNoise{}, util::Rng{1}};
  for (int i = 0; i < 1000; ++i) {
    const auto r = s.read(b, amperes(5.0), util::Seconds{0.0});
    EXPECT_NEAR(r.voltage.value(), b.terminal_voltage(amperes(5.0)).value(), 0.1);
    EXPECT_NEAR(r.current.value(), 5.0, 0.5);
  }
}

TEST(PowerTable, SocEstimateTracksTruthOnFreshUnit) {
  battery::Battery b = fresh(1.0);
  PowerTable t = make_table();
  drive(b, t, 5.0, 3.0);  // 15 Ah out of 35 → soc ≈ 0.55 (Peukert a bit lower)
  EXPECT_NEAR(t.estimated_soc(), b.soc(), 0.08);
}

TEST(PowerTable, AccumulatesChargeAndDischargeSeparately) {
  battery::Battery b = fresh(0.9);
  PowerTable t = make_table();
  drive(b, t, 5.0, 2.0);
  drive(b, t, -5.0, 1.0);
  EXPECT_NEAR(t.ah_discharged().value(), 10.0, 0.01);
  EXPECT_NEAR(t.ah_charged().value(), 5.0, 0.01);
}

TEST(PowerTable, RangeBinsSumToTotal) {
  battery::Battery b = fresh(1.0);
  PowerTable t = make_table();
  drive(b, t, 6.0, 5.0);  // deep drain across ranges
  const double sum = t.ah_in_range(0).value() + t.ah_in_range(1).value() +
                     t.ah_in_range(2).value() + t.ah_in_range(3).value();
  EXPECT_NEAR(sum, t.ah_discharged().value(), 1e-9);
  EXPECT_THROW(t.ah_in_range(4), util::PreconditionError);
}

TEST(PowerTable, TimeBelow40Tracked) {
  battery::Battery b = fresh(0.2);
  PowerTable t = make_table();
  drive(b, t, 0.0, 2.0);
  // The estimator starts at SoC 1 and needs a few rest anchors to converge
  // onto the deeply discharged unit, so allow a short warm-up slack.
  EXPECT_NEAR(t.time_below_40().value(), 7200.0, 900.0);
  EXPECT_NEAR(t.time_total().value(), 7200.0, 1e-9);
}

TEST(PowerTable, DrEwmaRisesAndDecays) {
  battery::Battery b = fresh(1.0);
  PowerTable t = make_table();
  drive(b, t, 10.0, 1.0);
  const double during = t.recent_discharge_amps();
  EXPECT_NEAR(during, 10.0, 0.5);
  drive(b, t, 0.0, 1.0);
  EXPECT_LT(t.recent_discharge_amps(), 0.1);
}

TEST(PowerTable, HistoryRingBounded) {
  PowerTableParams p;
  p.chemistry = battery::LeadAcidParams{};
  p.history_depth = 16;
  PowerTable t{p};
  battery::Battery b = fresh(0.9);
  drive(b, t, 1.0, 2.0);
  EXPECT_EQ(t.history().size(), 16u);
}

TEST(Metrics, FreshTableIsNeutral) {
  PowerTable t = make_table();
  const AgingMetrics m = compute_metrics(t, MetricParams{});
  EXPECT_DOUBLE_EQ(m.nat, 0.0);
  EXPECT_DOUBLE_EQ(m.cf, 1.0);
  EXPECT_DOUBLE_EQ(m.ddt, 0.0);
  EXPECT_DOUBLE_EQ(m.dr_c_rate, 0.0);
}

TEST(Metrics, NatIsLifeFraction) {
  battery::Battery b = fresh(1.0);
  PowerTable t = make_table();
  drive(b, t, 7.0, 2.0);  // 14 Ah
  MetricParams p;
  p.lifetime_throughput = util::ampere_hours(1400.0);
  const AgingMetrics m = compute_metrics(t, p);
  EXPECT_NEAR(m.nat, 0.01, 1e-4);
}

TEST(Metrics, CfReflectsRechargeRatio) {
  battery::Battery b = fresh(0.8);
  PowerTable t = make_table();
  drive(b, t, 5.0, 2.0);   // 10 Ah out
  drive(b, t, -5.0, 2.0);  // 10 Ah in
  const AgingMetrics m = compute_metrics(t, MetricParams{});
  EXPECT_NEAR(m.cf, 1.0, 0.05);
}

TEST(Metrics, PcHighSocIsHealthy) {
  battery::Battery b = fresh(1.0);
  PowerTable t = make_table();
  drive(b, t, 3.0, 1.0);  // all output at high SoC
  const AgingMetrics m = compute_metrics(t, MetricParams{});
  EXPECT_NEAR(m.pc, 0.25, 0.01);
  EXPECT_NEAR(m.pc_health, 1.0, 0.05);
}

TEST(Metrics, PcDeepDischargeIsWorse) {
  battery::Battery shallow_b = fresh(1.0);
  PowerTable shallow_t = make_table();
  drive(shallow_b, shallow_t, 3.0, 1.0);
  battery::Battery deep_b = fresh(0.3);
  PowerTable deep_t = make_table();
  drive(deep_b, deep_t, 3.0, 1.0);
  const AgingMetrics shallow = compute_metrics(shallow_t, MetricParams{});
  const AgingMetrics deep = compute_metrics(deep_t, MetricParams{});
  EXPECT_GT(deep.pc, shallow.pc + 0.3);
  EXPECT_LT(deep.pc_health, shallow.pc_health - 0.3);
}

TEST(Metrics, DdtIsTimeFraction) {
  battery::Battery b = fresh(0.2);
  PowerTable t = make_table();
  drive(b, t, 0.0, 1.0);   // 1 h deep
  battery::Battery b2 = fresh(0.9);
  drive(b2, t, 0.0, 3.0);  // 3 h high (same table: 25% of time deep)
  const AgingMetrics m = compute_metrics(t, MetricParams{});
  EXPECT_NEAR(m.ddt, 0.25, 0.035);  // small estimator warm-up slack
}

TEST(Metrics, DrIsCRate) {
  battery::Battery b = fresh(1.0);
  PowerTable t = make_table();
  drive(b, t, 17.5, 0.5);  // C/2
  const AgingMetrics m = compute_metrics(t, MetricParams{});
  EXPECT_NEAR(m.dr_c_rate, 0.5, 0.05);
}

TEST(Metrics, CfClampedAgainstGlitches) {
  PowerTable t = make_table();
  battery::Battery b = fresh(0.5);
  // Tiny discharge, huge charge: CF would explode without the clamp.
  drive(b, t, 0.1, 0.1);
  drive(b, t, -8.0, 6.0);
  const AgingMetrics m = compute_metrics(t, MetricParams{});
  EXPECT_LE(m.cf, 5.0);
}

TEST(Metrics, RejectsBadParams) {
  PowerTable t = make_table();
  MetricParams p;
  p.lifetime_throughput = util::ampere_hours(0.0);
  EXPECT_THROW(compute_metrics(t, p), util::PreconditionError);
}

}  // namespace
}  // namespace baat::telemetry
