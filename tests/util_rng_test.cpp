#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace baat::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, NamedStreamsAreIndependentAndStable) {
  Rng a = Rng::stream(7, "weather");
  Rng a2 = Rng::stream(7, "weather");
  Rng b = Rng::stream(7, "sensor");
  EXPECT_EQ(a.next(), a2.next());
  Rng c = Rng::stream(7, "weather");
  EXPECT_NE(c.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r{11};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r{5};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
  Rng r{5};
  EXPECT_THROW(r.uniform(1.0, 0.0), PreconditionError);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng r{9};
  EXPECT_THROW(r.uniform_index(0), PreconditionError);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng r{13};
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng r{17};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_THROW(r.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r{19};
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliClampsP) {
  Rng r{19};
  EXPECT_FALSE(r.bernoulli(-1.0));
  EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{23};
  Rng child = parent.fork("child");
  // The fork consumed state, so the parent moved on; both still deterministic.
  Rng parent2{23};
  Rng child2 = parent2.fork("child");
  EXPECT_EQ(child.next(), child2.next());
  EXPECT_EQ(parent.next(), parent2.next());
}

TEST(Rng, Fnv1aStableValues) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("weather"), fnv1a("weather"));
}

}  // namespace
}  // namespace baat::util
