#include <gtest/gtest.h>

#include "battery/probe.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::amperes;
using util::minutes;

Battery fresh(double soc = 1.0) {
  return Battery{LeadAcidParams{}, AgingParams{}, ThermalParams{}, 1.0, 1.0, soc};
}

Battery aged_unit() {
  Battery b = fresh();
  AgingState s;
  s.corrosion = 0.018;
  s.shedding = 0.080;
  s.sulphation = 0.035;
  s.stratification = 0.008;
  b.set_aging_state(s);
  return b;
}

TEST(Probe, ChargeToFullReachesFull) {
  const Battery charged = charge_to_full(fresh(0.3));
  EXPECT_GE(charged.soc(), 0.995);
}

TEST(Probe, ProbeDoesNotPerturbOriginal) {
  const Battery b = fresh(0.6);
  const double soc = b.soc();
  const auto counters = b.counters().ah_discharged;
  (void)run_probe(b);
  EXPECT_DOUBLE_EQ(b.soc(), soc);
  EXPECT_DOUBLE_EQ(b.counters().ah_discharged.value(), counters.value());
}

TEST(Probe, FreshUnitLooksHealthy) {
  const ProbeResult r = run_probe(fresh());
  // Loaded full voltage near nominal OCV minus a small ohmic drop.
  EXPECT_GT(r.full_voltage.value(), 12.4);
  EXPECT_LT(r.full_voltage.value(), 12.8);
  // C/10 discharge with Peukert delivers most of nameplate.
  EXPECT_GT(r.capacity_fraction, 0.85);
  EXPECT_LE(r.capacity_fraction, 1.0);
  EXPECT_GT(r.round_trip_efficiency, 0.80);
  EXPECT_LT(r.round_trip_efficiency, 1.0);
  EXPECT_GT(r.energy_per_cycle.value(), 300.0);
}

TEST(Probe, AgedUnitShowsAllThreeDegradations) {
  const ProbeResult young = run_probe(fresh());
  const ProbeResult old = run_probe(aged_unit());
  // Fig 3: lower loaded terminal voltage.
  EXPECT_LT(old.full_voltage.value(), young.full_voltage.value());
  // Fig 4: less deliverable capacity / energy per cycle.
  EXPECT_LT(old.capacity_fraction, young.capacity_fraction - 0.05);
  EXPECT_LT(old.energy_per_cycle.value(), young.energy_per_cycle.value());
  // Fig 5: worse round-trip efficiency.
  EXPECT_LT(old.round_trip_efficiency, young.round_trip_efficiency - 0.02);
}

TEST(Probe, RejectsBadStep) {
  EXPECT_THROW(run_probe(fresh(), util::seconds(0.0)), util::PreconditionError);
  EXPECT_THROW(charge_to_full(fresh(), util::seconds(-1.0)), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
