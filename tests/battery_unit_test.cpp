#include <gtest/gtest.h>

#include "battery/battery.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::amperes;
using util::hours;
using util::minutes;
using util::seconds;

Battery fresh(double soc = 1.0) {
  return Battery{LeadAcidParams{}, AgingParams{}, ThermalParams{}, 1.0, 1.0, soc};
}

TEST(Battery, InitialState) {
  Battery b = fresh();
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_DOUBLE_EQ(b.health(), 1.0);
  EXPECT_DOUBLE_EQ(b.nameplate().value(), 35.0);
  EXPECT_FALSE(b.end_of_life());
  EXPECT_NEAR(b.open_circuit().value(), 12.75, 0.01);
}

TEST(Battery, DischargeLowersSocAndVoltage) {
  Battery b = fresh();
  const double v0 = b.open_circuit().value();
  for (int i = 0; i < 60; ++i) b.step(amperes(5.0), minutes(1.0));
  EXPECT_LT(b.soc(), 1.0);
  EXPECT_LT(b.open_circuit().value(), v0);
  EXPECT_NEAR(b.counters().ah_discharged.value(), 5.0, 1e-9);
}

TEST(Battery, TerminalVoltageDropsUnderLoad) {
  Battery b = fresh(0.8);
  const double ocv = b.open_circuit().value();
  EXPECT_LT(b.terminal_voltage(amperes(10.0)).value(), ocv);
  EXPECT_GT(b.terminal_voltage(amperes(-10.0)).value(), ocv);
  EXPECT_DOUBLE_EQ(b.terminal_voltage(amperes(0.0)).value(), ocv);
}

TEST(Battery, ChargeRaisesSocWithCoulombicLoss) {
  Battery b = fresh(0.5);
  const auto res = b.step(amperes(-7.0), hours(1.0));
  EXPECT_LT(res.actual_current.value(), 0.0);
  // 7 Ah at ≤98% efficiency into 35 Ah: ΔSoC ≤ 0.196.
  EXPECT_GT(b.soc(), 0.5);
  EXPECT_LE(b.soc(), 0.5 + 7.0 * 0.98 / 35.0 + 1e-9);
  EXPECT_NEAR(b.counters().ah_charged.value(), 7.0, 1e-9);
}

TEST(Battery, SocNeverEscapesBounds) {
  Battery b = fresh(0.05);
  for (int i = 0; i < 500; ++i) {
    b.step(amperes(30.0), minutes(5.0));
    EXPECT_GE(b.soc(), 0.0);
  }
  for (int i = 0; i < 5000; ++i) {
    b.step(amperes(-30.0), minutes(5.0));
    EXPECT_LE(b.soc(), 1.0);
  }
}

TEST(Battery, DischargeClampedAtEmpty) {
  Battery b = fresh(0.01);
  const auto res = b.step(amperes(35.0), hours(1.0));
  EXPECT_TRUE(res.hit_cutoff);
  EXPECT_LT(res.actual_current.value(), 35.0);
  EXPECT_GE(b.soc(), 0.0);
}

TEST(Battery, ChargeTapersAtFull) {
  Battery b = fresh(0.999);
  const auto res = b.step(amperes(-8.0), minutes(1.0));
  EXPECT_GT(res.actual_current.value(), -8.0);  // clamped toward zero
  EXPECT_LE(b.soc(), 1.0);
}

TEST(Battery, FullChargeEventDetected) {
  Battery b = fresh(0.90);
  bool saw_full = false;
  for (int i = 0; i < 24 * 60 && !saw_full; ++i) {
    saw_full = b.step(amperes(-4.0), minutes(1.0)).fully_charged;
  }
  EXPECT_TRUE(saw_full);
  EXPECT_EQ(b.counters().full_charge_events, 1);
  EXPECT_NEAR(b.counters().time_since_full_charge.value(), 0.0, 61.0);
}

TEST(Battery, PeukertReducesDeliverableCharge) {
  Battery slow = fresh();
  Battery fast = fresh();
  // Drain both from full to empty, slow at C/20, fast at ~C/2.
  for (int i = 0; i < 40 * 60; ++i) slow.step(amperes(1.75), minutes(1.0));
  for (int i = 0; i < 10 * 60; ++i) fast.step(amperes(17.5), minutes(1.0));
  EXPECT_DOUBLE_EQ(slow.soc(), 0.0);
  EXPECT_DOUBLE_EQ(fast.soc(), 0.0);
  EXPECT_GT(slow.counters().ah_discharged.value(),
            fast.counters().ah_discharged.value());
}

TEST(Battery, SocRangeAccounting) {
  Battery b = fresh();
  // Drain from 1.0 to ~0: Ah must be distributed over all four Eq 3 ranges
  // and sum to the total.
  for (int i = 0; i < 30 * 60; ++i) b.step(amperes(3.0), minutes(1.0));
  const auto& c = b.counters();
  const double sum = c.ah_by_range[0].value() + c.ah_by_range[1].value() +
                     c.ah_by_range[2].value() + c.ah_by_range[3].value();
  EXPECT_NEAR(sum, c.ah_discharged.value(), 1e-9);
  EXPECT_GT(c.ah_by_range[0].value(), 0.0);
  EXPECT_GT(c.ah_by_range[3].value(), 0.0);
}

TEST(Battery, SelfDischargeWhileStanding) {
  Battery b = fresh(0.8);
  for (int d = 0; d < 30 * 24 * 60; ++d) b.step(amperes(0.0), minutes(1.0));
  // ~3%/month at 20°C, accelerated a bit at the 25°C default ambient.
  EXPECT_LT(b.soc(), 0.78);
  EXPECT_GT(b.soc(), 0.72);
  // Self-discharge is internal: no terminal Ah is recorded.
  EXPECT_DOUBLE_EQ(b.counters().ah_discharged.value(), 0.0);
}

TEST(Battery, FloatChargeGassesWithoutOvershoot) {
  Battery b = fresh(1.0);
  const auto res = b.float_charge(amperes(1.4), hours(1.0));
  EXPECT_DOUBLE_EQ(res.terminal_voltage.value(),
                   LeadAcidParams{}.absorb_voltage().value());
  EXPECT_LE(b.soc(), 1.0);
  // Held at absorb voltage: water loss accrues.
  EXPECT_GT(b.aging_state().water_loss, 0.0);
}

TEST(Battery, TimeCountersAdvance) {
  Battery b = fresh(0.3);
  b.step(amperes(0.0), hours(2.0));
  EXPECT_DOUBLE_EQ(b.counters().time_total.value(), 7200.0);
  EXPECT_DOUBLE_EQ(b.counters().time_below_40.value(), 7200.0);
}

TEST(Battery, MaxDischargeCurrentLimits) {
  // On a fresh unit the 1C rate cap binds across the SoC range...
  Battery full = fresh(1.0);
  EXPECT_NEAR(full.max_discharge_current().value(), 35.0, 1e-9);
  Battery empty = fresh(0.0);
  EXPECT_DOUBLE_EQ(empty.max_discharge_current().value(), 0.0);
  // ...but an aged unit (higher resistance, sagging OCV) becomes
  // voltage-limited at low SoC: it cannot sustain the rated current anymore.
  Battery aged = fresh(0.1);
  AgingState s;
  s.shedding = 0.15;
  s.sulphation = 0.05;
  aged.set_aging_state(s);
  EXPECT_LT(aged.max_discharge_current().value(),
            fresh(0.1).max_discharge_current().value());
}

TEST(Battery, MaxChargeCurrentZeroAtFull) {
  Battery b = fresh(1.0);
  EXPECT_DOUBLE_EQ(b.max_charge_current().value(), 0.0);
  Battery half = fresh(0.5);
  EXPECT_GT(half.max_charge_current().value(), 0.0);
}

TEST(Battery, StoredEnergyAboveFloor) {
  Battery b = fresh(0.8);
  const double e = b.stored_energy_above(0.3).value();
  EXPECT_NEAR(e, 0.5 * 35.0 * 12.0, 1.0);
  EXPECT_DOUBLE_EQ(fresh(0.2).stored_energy_above(0.3).value(), 0.0);
}

TEST(Battery, EquivalentFullCycles) {
  Battery b = fresh();
  for (int i = 0; i < 60; ++i) b.step(amperes(35.0 / 2.0), minutes(1.0));
  EXPECT_NEAR(b.equivalent_full_cycles(), 0.5, 1e-9);
}

TEST(Battery, ManufacturingVariationScalesNameplate) {
  Battery small{LeadAcidParams{}, AgingParams{}, ThermalParams{}, 0.95, 1.1, 1.0};
  EXPECT_NEAR(small.nameplate().value(), 35.0 * 0.95, 1e-9);
  Battery nominal = fresh();
  EXPECT_GT(small.internal_resistance_ohms(), nominal.internal_resistance_ohms());
}

TEST(Battery, HeavyDischargeHeatsTheBlock) {
  Battery b = fresh();
  const double t0 = b.temperature().value();
  for (int i = 0; i < 60; ++i) b.step(amperes(30.0), minutes(1.0));
  EXPECT_GT(b.temperature().value(), t0);
}

TEST(Battery, CyclicUseAgesTheUnit) {
  Battery b = fresh();
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (int i = 0; i < 6 * 60; ++i) b.step(amperes(5.0), minutes(1.0));
    for (int i = 0; i < 8 * 60; ++i) b.step(amperes(-5.0), minutes(1.0));
  }
  EXPECT_LT(b.health(), 1.0);
  EXPECT_GT(b.internal_resistance_ohms(),
            LeadAcidParams{}.r_internal_ohms);
  EXPECT_LT(b.usable_capacity().value(), 35.0);
}

TEST(Battery, RejectsBadConstruction) {
  EXPECT_THROW(Battery(LeadAcidParams{}, AgingParams{}, ThermalParams{}, 0.0),
               util::PreconditionError);
  EXPECT_THROW(Battery(LeadAcidParams{}, AgingParams{}, ThermalParams{}, 1.0, 1.0, 1.5),
               util::PreconditionError);
}

TEST(Battery, RejectsZeroDt) {
  Battery b = fresh();
  EXPECT_THROW(b.step(amperes(1.0), seconds(0.0)), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
