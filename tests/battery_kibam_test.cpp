#include <gtest/gtest.h>

#include "battery/chemistry.hpp"
#include "battery/kibam.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::amperes;
using util::hours;
using util::minutes;
using util::seconds;

Kibam fresh(double soc = 1.0) { return Kibam{KibamParams{}, soc}; }

TEST(Kibam, InitialWellsSplitByFraction) {
  const KibamParams p;
  Kibam k = fresh();
  EXPECT_NEAR(k.available_charge().value(), 35.0 * p.available_fraction, 1e-9);
  EXPECT_NEAR(k.bound_charge().value(), 35.0 * (1.0 - p.available_fraction), 1e-9);
  EXPECT_DOUBLE_EQ(k.soc(), 1.0);
}

TEST(Kibam, SlowDischargeDeliversNameplate) {
  Kibam k = fresh();
  double delivered = 0.0;
  // C/20 discharge; the valve easily keeps up, so ~full capacity comes out.
  for (int i = 0; i < 40 * 60; ++i) {
    delivered += k.step(amperes(1.75), minutes(1.0)).value() / 60.0;
    if (k.soc() < 0.01) break;
  }
  EXPECT_GT(delivered, 0.95 * 35.0);
}

TEST(Kibam, RateCapacityEffectEmerges) {
  // At 1C the available well outruns the valve: usable capacity shrinks —
  // the emergent Peukert effect.
  Kibam k = fresh();
  double delivered = 0.0;
  for (int i = 0; i < 4 * 60; ++i) {
    const double got = k.step(amperes(35.0), minutes(1.0)).value();
    delivered += got / 60.0;
    if (got < 34.0) break;  // can no longer sustain the rate
  }
  EXPECT_LT(delivered, 0.8 * 35.0);
  EXPECT_GT(delivered, 0.2 * 35.0);
}

TEST(Kibam, RecoveryEffectAfterRest) {
  Kibam k = fresh();
  // Hammer the available well down.
  for (int i = 0; i < 20; ++i) k.step(amperes(30.0), minutes(1.0));
  const double drained = k.available_charge().value();
  // Rest an hour: bound charge flows back through the valve.
  for (int i = 0; i < 60; ++i) k.step(amperes(0.0), minutes(1.0));
  EXPECT_GT(k.available_charge().value(), drained + 0.5);
  // Total charge unchanged by resting.
}

TEST(Kibam, RestConservesTotalCharge) {
  Kibam k = fresh(0.6);
  const double before = k.available_charge().value() + k.bound_charge().value();
  for (int i = 0; i < 24 * 60; ++i) k.step(amperes(0.0), minutes(1.0));
  const double after = k.available_charge().value() + k.bound_charge().value();
  EXPECT_NEAR(before, after, 1e-6);
}

TEST(Kibam, ChargeConservation) {
  Kibam k = fresh(0.5);
  const double before = 35.0 * 0.5;
  double moved = 0.0;
  for (int i = 0; i < 120; ++i) {
    moved += k.step(amperes(5.0), minutes(1.0)).value() / 60.0;
  }
  const double now = k.available_charge().value() + k.bound_charge().value();
  EXPECT_NEAR(before - moved, now, 1e-6);
}

TEST(Kibam, ChargingFillsBothWells) {
  Kibam k = fresh(0.3);
  for (int i = 0; i < 10 * 60; ++i) k.step(amperes(-8.0), minutes(1.0));
  EXPECT_GT(k.soc(), 0.9);
  EXPECT_LE(k.soc(), 1.0 + 1e-9);
}

TEST(Kibam, CannotOvercharge) {
  Kibam k = fresh(0.99);
  for (int i = 0; i < 600; ++i) k.step(amperes(-20.0), minutes(1.0));
  EXPECT_LE(k.soc(), 1.0 + 1e-9);
}

TEST(Kibam, CannotOverDischarge) {
  Kibam k = fresh(0.02);
  for (int i = 0; i < 600; ++i) {
    k.step(amperes(35.0), minutes(1.0));
    EXPECT_GE(k.available_charge().value(), -1e-9);
    EXPECT_GE(k.soc(), -1e-9);
  }
}

TEST(Kibam, MaxDischargeCurrentBound) {
  Kibam k = fresh();
  const Amperes i2min = k.max_discharge_current(minutes(2.0));
  EXPECT_GT(i2min.value(), 0.0);
  // Drawing exactly the bound for the window must not exhaust the well.
  Kibam probe = k;
  for (int s = 0; s < 2; ++s) probe.step(i2min, minutes(1.0));
  EXPECT_GE(probe.available_charge().value(), -1e-6);
  // Longer windows support smaller sustained currents.
  EXPECT_LT(k.max_discharge_current(hours(2.0)).value(), i2min.value());
}

// Cross-validation against the explicit Peukert law: both models should
// agree on the *direction and rough scale* of capacity shrink at 4x the
// 20-hour rate.
TEST(Kibam, AgreesWithPeukertDirectionally) {
  const LeadAcidParams chem;
  const double peukert_frac =
      effective_capacity(chem, amperes(7.0)).value() / chem.capacity_c20.value();

  Kibam k = fresh();
  double delivered = 0.0;
  for (int i = 0; i < 10 * 3600; ++i) {
    const double got = k.step(amperes(7.0), seconds(10.0)).value();
    if (got < 6.9) break;
    delivered += got * 10.0 / 3600.0;
  }
  const double kibam_frac = delivered / 35.0;
  // Both models must predict a shrink; the KiBaM "sustainable until the
  // available well empties" notion is stricter than Peukert's extractable
  // capacity, so allow a generous band.
  EXPECT_LT(kibam_frac, 0.95);
  EXPECT_GT(kibam_frac, peukert_frac - 0.25);
  EXPECT_LT(kibam_frac, peukert_frac + 0.1);
}

TEST(Kibam, RejectsBadParams) {
  KibamParams p;
  p.available_fraction = 0.0;
  EXPECT_THROW(Kibam(p, 1.0), util::PreconditionError);
  p = KibamParams{};
  p.rate_constant_per_h = 0.0;
  EXPECT_THROW(Kibam(p, 1.0), util::PreconditionError);
  Kibam k = fresh();
  EXPECT_THROW(k.step(amperes(1.0), seconds(0.0)), util::PreconditionError);
  EXPECT_THROW(k.max_discharge_current(seconds(0.0)), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
