#include <gtest/gtest.h>

#include "util/units.hpp"

namespace baat::util {
namespace {

TEST(Units, ArithmeticOnLikeQuantities) {
  const Watts a = watts(100.0);
  const Watts b = watts(50.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ((-a).value(), -100.0);
}

TEST(Units, CompoundAssignment) {
  Watts w = watts(10.0);
  w += watts(5.0);
  EXPECT_DOUBLE_EQ(w.value(), 15.0);
  w -= watts(3.0);
  EXPECT_DOUBLE_EQ(w.value(), 12.0);
  w *= 2.0;
  EXPECT_DOUBLE_EQ(w.value(), 24.0);
  w /= 4.0;
  EXPECT_DOUBLE_EQ(w.value(), 6.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(watts(1.0), watts(2.0));
  EXPECT_GE(watts(2.0), watts(2.0));
  EXPECT_EQ(watts(3.0), watts(3.0));
}

TEST(Units, PowerFromVoltageAndCurrent) {
  EXPECT_DOUBLE_EQ((volts(12.0) * amperes(5.0)).value(), 60.0);
  EXPECT_DOUBLE_EQ((amperes(5.0) * volts(12.0)).value(), 60.0);
}

TEST(Units, EnergyIntegration) {
  // 100 W for 30 minutes = 50 Wh.
  EXPECT_DOUBLE_EQ(energy(watts(100.0), minutes(30.0)).value(), 50.0);
}

TEST(Units, ChargeIntegration) {
  // 7 A for 2 hours = 14 Ah.
  EXPECT_DOUBLE_EQ(charge(amperes(7.0), hours(2.0)).value(), 14.0);
}

TEST(Units, CurrentForPower) {
  EXPECT_DOUBLE_EQ(current_for(watts(120.0), volts(12.0)).value(), 10.0);
}

TEST(Units, EnergyAtVoltage) {
  EXPECT_DOUBLE_EQ(energy_at(ampere_hours(35.0), volts(12.0)).value(), 420.0);
}

TEST(Units, PowerOverDuration) {
  EXPECT_DOUBLE_EQ(power_over(watt_hours(100.0), hours(2.0)).value(), 50.0);
}

TEST(Units, TimeConstructors) {
  EXPECT_DOUBLE_EQ(minutes(2.0).value(), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5).value(), 5400.0);
  EXPECT_DOUBLE_EQ(days(2.0).value(), 172800.0);
  EXPECT_DOUBLE_EQ(kilowatt_hours(1.5).value(), 1500.0);
}

TEST(Units, Clamp01) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(Units, ClampQuantity) {
  EXPECT_EQ(clamp(watts(5.0), watts(0.0), watts(3.0)), watts(3.0));
  EXPECT_EQ(clamp(watts(-1.0), watts(0.0), watts(3.0)), watts(0.0));
  EXPECT_EQ(clamp(watts(2.0), watts(0.0), watts(3.0)), watts(2.0));
}

TEST(Units, NearlyEqual) {
  EXPECT_TRUE(nearly_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(nearly_equal(1.0, 1.001));
  EXPECT_TRUE(nearly_equal(0.0, 0.0));
  EXPECT_TRUE(nearly_equal(1e6, 1e6 * (1.0 + 1e-10)));
}

}  // namespace
}  // namespace baat::util
