#include <gtest/gtest.h>

#include "battery/service.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

Battery stratified_unit() {
  Battery b{LeadAcidParams{}, AgingParams{}, ThermalParams{}, 1.0, 1.0, 0.4};
  AgingState s;
  s.stratification = 0.06;
  s.shedding = 0.03;
  b.set_aging_state(s);
  return b;
}

TEST(Service, EqualizationReversesStratification) {
  Battery b = stratified_unit();
  const double health_before = b.health();
  const EqualizationResult r = equalize(b);
  EXPECT_DOUBLE_EQ(r.stratification_before, 0.06);
  EXPECT_LT(r.stratification_after, 0.01);
  EXPECT_DOUBLE_EQ(b.aging_state().stratification, r.stratification_after);
  // Stratification is recoverable capacity: health improves.
  EXPECT_GT(b.health(), health_before);
}

TEST(Service, EqualizationCostsWater) {
  Battery b = stratified_unit();
  const EqualizationResult r = equalize(b);
  EXPECT_GT(r.water_loss_added, 0.0);
  EXPECT_GT(b.aging_state().water_loss, 0.0);
  // The trade is worth it: water cost is far below the stratification healed.
  EXPECT_LT(r.water_loss_added, r.stratification_before - r.stratification_after);
}

TEST(Service, LeavesUnitFull) {
  Battery b = stratified_unit();
  equalize(b);
  EXPECT_GE(b.soc(), 0.99);
}

TEST(Service, FreshUnitIsNearNoop) {
  Battery b{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  const double health_before = b.health();
  const EqualizationResult r = equalize(b);
  EXPECT_DOUBLE_EQ(r.stratification_before, 0.0);
  EXPECT_NEAR(b.health(), health_before, 1e-3);  // only the water-loss dent
}

TEST(Service, ShorterHoldCostsLessWater) {
  Battery a = stratified_unit();
  Battery b = stratified_unit();
  EqualizationParams quick;
  quick.hold = util::hours(1.0);
  const double wa = equalize(a, quick).water_loss_added;
  const double wb = equalize(b).water_loss_added;  // default 3 h
  EXPECT_LT(wa, wb);
}

TEST(Service, RejectsBadParams) {
  Battery b = stratified_unit();
  EqualizationParams p;
  p.hold = util::seconds(0.0);
  EXPECT_THROW(equalize(b, p), util::PreconditionError);
  p = EqualizationParams{};
  p.residual_stratification = 1.5;
  EXPECT_THROW(equalize(b, p), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
