#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "battery/chemistry.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::amperes;
using util::PreconditionError;

constexpr OcvCurve kAllCurves[] = {OcvCurve::LeadAcidQuadratic, OcvCurve::NmcCubic,
                                   OcvCurve::LfpPlateau, OcvCurve::Linear};

TEST(Chemistry, OcvEndpoints) {
  const LeadAcidParams p;
  EXPECT_NEAR(open_circuit_voltage(p, 0.0).value(), p.ocv_cell_empty.value() * p.cells, 1e-9);
  EXPECT_NEAR(open_circuit_voltage(p, 1.0).value(), p.ocv_cell_full.value() * p.cells, 1e-9);
}

TEST(Chemistry, OcvStrictlyIncreasing) {
  const LeadAcidParams p;
  double prev = open_circuit_voltage(p, 0.0).value();
  for (int i = 1; i <= 100; ++i) {
    const double v = open_circuit_voltage(p, i / 100.0).value();
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Chemistry, OcvRejectsOutOfRangeSoc) {
  const LeadAcidParams p;
  EXPECT_THROW(open_circuit_voltage(p, -0.1), PreconditionError);
  EXPECT_THROW(open_circuit_voltage(p, 1.1), PreconditionError);
}

// Property sweep: soc_from_voltage must invert open_circuit_voltage across
// the whole SoC range.
class OcvRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(OcvRoundTrip, InverseOfOcv) {
  const LeadAcidParams p;
  const double soc = GetParam();
  const auto v = open_circuit_voltage(p, soc);
  EXPECT_NEAR(soc_from_voltage(p, v), soc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SocSweep, OcvRoundTrip,
                         ::testing::Values(0.0, 0.05, 0.2, 0.4, 0.5, 0.6, 0.8, 0.95, 1.0));

TEST(Chemistry, SocFromVoltageClamps) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(soc_from_voltage(p, util::volts(9.0)), 0.0);
  EXPECT_DOUBLE_EQ(soc_from_voltage(p, util::volts(15.0)), 1.0);
}

TEST(Chemistry, PeukertAtOrBelowRatedIsNameplate) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(effective_capacity(p, amperes(0.0)).value(), p.capacity_c20.value());
  EXPECT_DOUBLE_EQ(effective_capacity(p, p.rated_current()).value(), p.capacity_c20.value());
}

TEST(Chemistry, PeukertShrinksWithCurrent) {
  const LeadAcidParams p;
  const double c5 = effective_capacity(p, amperes(5.0)).value();
  const double c15 = effective_capacity(p, amperes(15.0)).value();
  const double c35 = effective_capacity(p, amperes(35.0)).value();
  EXPECT_LT(c5, p.capacity_c20.value());
  EXPECT_LT(c15, c5);
  EXPECT_LT(c35, c15);
  // 1C discharge of a 20h-rated battery loses tens of percent, not everything.
  EXPECT_GT(c35, 0.5 * p.capacity_c20.value());
}

TEST(Chemistry, PeukertRejectsNegativeCurrent) {
  const LeadAcidParams p;
  EXPECT_THROW(effective_capacity(p, amperes(-1.0)), PreconditionError);
}

TEST(Chemistry, ChargeAcceptanceFullBelowKneeTapersAbove) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(charge_acceptance(p, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(charge_acceptance(p, p.taper_knee_soc), 1.0);
  const double mid = charge_acceptance(p, 0.9);
  EXPECT_LT(mid, 1.0);
  EXPECT_GT(mid, charge_acceptance(p, 0.99));
  // Residual trickle keeps full charge reachable.
  EXPECT_GT(charge_acceptance(p, 1.0), 0.0);
}

TEST(Chemistry, CoulombicEfficiencyDropsNearFull) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(coulombic_efficiency(p, 0.5), p.coulombic_efficiency_bulk);
  EXPECT_NEAR(coulombic_efficiency(p, 1.0), p.coulombic_efficiency_full, 1e-12);
  EXPECT_GT(coulombic_efficiency(p, 0.85), coulombic_efficiency(p, 0.95));
}

// --- chemistry edge-case sweep ---------------------------------------------
// A non-finite sensor voltage must come out of the estimator as NaN, not a
// confident 0 or 1 — the old clamp laundered poisoned readings into a
// plausible SoC and hid them from the run-health watchdog.

TEST(Chemistry, SocFromVoltageNonFinitePropagatesAsNan) {
  const LeadAcidParams p;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (OcvCurve curve : kAllCurves) {
    EXPECT_TRUE(std::isnan(soc_from_voltage(p, util::Volts{nan}, curve)));
    EXPECT_TRUE(std::isnan(soc_from_voltage(p, util::Volts{inf}, curve)));
    EXPECT_TRUE(std::isnan(soc_from_voltage(p, util::Volts{-inf}, curve)));
  }
  // The historical 2-arg overload keeps the same contract.
  EXPECT_TRUE(std::isnan(soc_from_voltage(p, util::Volts{nan})));
}

TEST(Chemistry, SocFromVoltageFiniteFuzzStaysInUnitRange) {
  // Deterministic LCG fuzz: every *finite* voltage — however absurd — must
  // map into [0,1] for every OCV curve; NaN is reserved for non-finite input.
  const LeadAcidParams p;
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20000; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(s >> 11) / 9007199254740992.0;
    const double v = -50.0 + 200.0 * u;  // way past any physical block voltage
    for (OcvCurve curve : kAllCurves) {
      const double soc = soc_from_voltage(p, util::Volts{v}, curve);
      ASSERT_FALSE(std::isnan(soc)) << "curve " << static_cast<int>(curve) << " v=" << v;
      ASSERT_GE(soc, 0.0);
      ASSERT_LE(soc, 1.0);
    }
  }
}

// soc_from_voltage must invert open_circuit_voltage for every curve shape,
// including the LFP plateau whose flat middle is the estimator stress case.
class OcvRoundTripAllCurves
    : public ::testing::TestWithParam<std::tuple<OcvCurve, double>> {};

TEST_P(OcvRoundTripAllCurves, InverseOfOcv) {
  const LeadAcidParams p;
  const auto [curve, soc] = GetParam();
  const auto v = open_circuit_voltage(p, soc, curve);
  EXPECT_NEAR(soc_from_voltage(p, v, curve), soc, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    CurveBySoc, OcvRoundTripAllCurves,
    ::testing::Combine(::testing::ValuesIn(kAllCurves),
                       ::testing::Values(0.0, 0.05, 0.2, 0.5, 0.8, 0.95, 1.0)));

// --- Peukert edge cases -----------------------------------------------------
// Regression for the I -> 0 boundary: pow(i20/i, k-1) diverges as i -> 0, so
// the implementation must never evaluate it below the rated current — any
// capacity above nameplate from a vanishing current is Peukert *inflation*.

TEST(Chemistry, PeukertExactTwentyHourRateRegression) {
  const LeadAcidParams p;
  // Exactly the 20 h rate, and the neighbouring representable doubles: all
  // must return the nameplate (below/at) or at most the nameplate (above).
  const double i20 = p.capacity_c20.value() / 20.0;
  EXPECT_DOUBLE_EQ(effective_capacity(p, amperes(i20)).value(), p.capacity_c20.value());
  EXPECT_DOUBLE_EQ(effective_capacity(p, amperes(std::nextafter(i20, 0.0))).value(),
                   p.capacity_c20.value());
  const double above = effective_capacity(p, amperes(std::nextafter(i20, 1e9))).value();
  EXPECT_LE(above, p.capacity_c20.value());
  EXPECT_GT(above, 0.999 * p.capacity_c20.value());
}

TEST(Chemistry, PeukertVanishingCurrentNeverDividesOrInflates) {
  const LeadAcidParams p;
  for (double i : {0.0, std::numeric_limits<double>::denorm_min(), 1e-300, 1e-12, 1e-3}) {
    const double cap = effective_capacity(p, amperes(i)).value();
    EXPECT_TRUE(std::isfinite(cap)) << "i=" << i;
    EXPECT_DOUBLE_EQ(cap, p.capacity_c20.value()) << "i=" << i;
  }
}

TEST(Chemistry, PeukertNanCurrentPropagates) {
  const LeadAcidParams p;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(effective_capacity(p, amperes(nan)).value()));
}

// --- chemistry registry -----------------------------------------------------

TEST(Chemistry, NameParseRoundTrip) {
  for (Chemistry c : {Chemistry::LeadAcid, Chemistry::LiNmc, Chemistry::LiLfp,
                      Chemistry::Bucket}) {
    Chemistry parsed = Chemistry::LeadAcid;
    EXPECT_TRUE(parse_chemistry(chemistry_name(c), parsed));
    EXPECT_EQ(parsed, c);
  }
  Chemistry out = Chemistry::LeadAcid;
  EXPECT_FALSE(parse_chemistry("nicad", out));
  EXPECT_FALSE(parse_chemistry("", out));
}

TEST(Chemistry, DerivedVoltages) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(p.cutoff_voltage().value(), 10.5);
  EXPECT_DOUBLE_EQ(p.gassing_voltage().value(), 14.1);
  EXPECT_NEAR(p.absorb_voltage().value(), 14.4, 1e-9);
  EXPECT_DOUBLE_EQ(p.nominal_voltage().value(), 12.0);
  EXPECT_DOUBLE_EQ(p.rated_current().value(), 1.75);
}

}  // namespace
}  // namespace baat::battery
