#include <gtest/gtest.h>

#include "battery/chemistry.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::amperes;
using util::PreconditionError;

TEST(Chemistry, OcvEndpoints) {
  const LeadAcidParams p;
  EXPECT_NEAR(open_circuit_voltage(p, 0.0).value(), p.ocv_cell_empty.value() * p.cells, 1e-9);
  EXPECT_NEAR(open_circuit_voltage(p, 1.0).value(), p.ocv_cell_full.value() * p.cells, 1e-9);
}

TEST(Chemistry, OcvStrictlyIncreasing) {
  const LeadAcidParams p;
  double prev = open_circuit_voltage(p, 0.0).value();
  for (int i = 1; i <= 100; ++i) {
    const double v = open_circuit_voltage(p, i / 100.0).value();
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Chemistry, OcvRejectsOutOfRangeSoc) {
  const LeadAcidParams p;
  EXPECT_THROW(open_circuit_voltage(p, -0.1), PreconditionError);
  EXPECT_THROW(open_circuit_voltage(p, 1.1), PreconditionError);
}

// Property sweep: soc_from_voltage must invert open_circuit_voltage across
// the whole SoC range.
class OcvRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(OcvRoundTrip, InverseOfOcv) {
  const LeadAcidParams p;
  const double soc = GetParam();
  const auto v = open_circuit_voltage(p, soc);
  EXPECT_NEAR(soc_from_voltage(p, v), soc, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SocSweep, OcvRoundTrip,
                         ::testing::Values(0.0, 0.05, 0.2, 0.4, 0.5, 0.6, 0.8, 0.95, 1.0));

TEST(Chemistry, SocFromVoltageClamps) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(soc_from_voltage(p, util::volts(9.0)), 0.0);
  EXPECT_DOUBLE_EQ(soc_from_voltage(p, util::volts(15.0)), 1.0);
}

TEST(Chemistry, PeukertAtOrBelowRatedIsNameplate) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(effective_capacity(p, amperes(0.0)).value(), p.capacity_c20.value());
  EXPECT_DOUBLE_EQ(effective_capacity(p, p.rated_current()).value(), p.capacity_c20.value());
}

TEST(Chemistry, PeukertShrinksWithCurrent) {
  const LeadAcidParams p;
  const double c5 = effective_capacity(p, amperes(5.0)).value();
  const double c15 = effective_capacity(p, amperes(15.0)).value();
  const double c35 = effective_capacity(p, amperes(35.0)).value();
  EXPECT_LT(c5, p.capacity_c20.value());
  EXPECT_LT(c15, c5);
  EXPECT_LT(c35, c15);
  // 1C discharge of a 20h-rated battery loses tens of percent, not everything.
  EXPECT_GT(c35, 0.5 * p.capacity_c20.value());
}

TEST(Chemistry, PeukertRejectsNegativeCurrent) {
  const LeadAcidParams p;
  EXPECT_THROW(effective_capacity(p, amperes(-1.0)), PreconditionError);
}

TEST(Chemistry, ChargeAcceptanceFullBelowKneeTapersAbove) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(charge_acceptance(p, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(charge_acceptance(p, p.taper_knee_soc), 1.0);
  const double mid = charge_acceptance(p, 0.9);
  EXPECT_LT(mid, 1.0);
  EXPECT_GT(mid, charge_acceptance(p, 0.99));
  // Residual trickle keeps full charge reachable.
  EXPECT_GT(charge_acceptance(p, 1.0), 0.0);
}

TEST(Chemistry, CoulombicEfficiencyDropsNearFull) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(coulombic_efficiency(p, 0.5), p.coulombic_efficiency_bulk);
  EXPECT_NEAR(coulombic_efficiency(p, 1.0), p.coulombic_efficiency_full, 1e-12);
  EXPECT_GT(coulombic_efficiency(p, 0.85), coulombic_efficiency(p, 0.95));
}

TEST(Chemistry, DerivedVoltages) {
  const LeadAcidParams p;
  EXPECT_DOUBLE_EQ(p.cutoff_voltage().value(), 10.5);
  EXPECT_DOUBLE_EQ(p.gassing_voltage().value(), 14.1);
  EXPECT_NEAR(p.absorb_voltage().value(), 14.4, 1e-9);
  EXPECT_DOUBLE_EQ(p.nominal_voltage().value(), 12.0);
  EXPECT_DOUBLE_EQ(p.rated_current().value(), 1.75);
}

}  // namespace
}  // namespace baat::battery
