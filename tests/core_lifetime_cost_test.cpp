#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/lifetime.hpp"
#include "util/require.hpp"

namespace baat::core {
namespace {

using util::ampere_hours;
using util::dollars;

TEST(Lifetime, LinearExtrapolationToEol) {
  // 5% fade in 90 days → 20% fade (EoL) in 360 days.
  const LifetimeEstimate e = extrapolate_lifetime(1.0, 0.95, 90.0);
  EXPECT_NEAR(e.days, 360.0, 1e-9);
  EXPECT_NEAR(e.years(), 360.0 / 365.0, 1e-9);
}

TEST(Lifetime, NoFadeMeansHorizonCap) {
  const LifetimeEstimate e = extrapolate_lifetime(1.0, 1.0, 90.0);
  EXPECT_DOUBLE_EQ(e.days, 20.0 * 365.0);
}

// Regression for the horizon sentinel leaking into reports as a prediction:
// a clamped estimate must say so, because `days` is then a bound on the
// observation, not a forecast.
TEST(Lifetime, FlagsEstimatesClampedToTheHorizon) {
  // A real projection inside the horizon is not flagged.
  EXPECT_FALSE(extrapolate_lifetime(1.0, 0.95, 90.0).beyond_horizon);
  // No fade at all: the sentinel is the horizon itself.
  EXPECT_TRUE(extrapolate_lifetime(1.0, 1.0, 90.0).beyond_horizon);
  // Minuscule fade whose projection lands past the horizon: also flagged,
  // and still clamped.
  const LifetimeEstimate slow = extrapolate_lifetime(1.0, 1.0 - 1e-6, 365.0);
  EXPECT_TRUE(slow.beyond_horizon);
  EXPECT_DOUBLE_EQ(slow.days, 20.0 * 365.0);
  // A projection exactly inside a custom horizon is a prediction again.
  EXPECT_FALSE(extrapolate_lifetime(1.0, 0.95, 90.0, 0.8, 361.0).beyond_horizon);
  EXPECT_TRUE(extrapolate_lifetime(1.0, 0.95, 90.0, 0.8, 359.0).beyond_horizon);

  // Same contract for the throughput estimator.
  const auto curve = battery::curve_for(battery::Manufacturer::Trojan);
  EXPECT_TRUE(lifetime_from_throughput(curve, ampere_hours(35.0), 0.5,
                                       ampere_hours(0.0))
                  .beyond_horizon);
  EXPECT_FALSE(lifetime_from_throughput(curve, ampere_hours(35.0), 0.5,
                                        ampere_hours(17.5))
                   .beyond_horizon);
}

TEST(Lifetime, RespectsCustomEol) {
  const LifetimeEstimate e = extrapolate_lifetime(1.0, 0.9, 100.0, 0.7);
  EXPECT_NEAR(e.days, 300.0, 1e-9);
}

TEST(Lifetime, StartBelowOneSupported) {
  // An already-aged unit observed from health 0.9 → 0.85 over 50 days.
  const LifetimeEstimate e = extrapolate_lifetime(0.9, 0.85, 50.0);
  EXPECT_NEAR(e.days, 100.0, 1e-9);
}

TEST(Lifetime, ThroughputEstimator) {
  const auto curve = battery::curve_for(battery::Manufacturer::Trojan);
  const LifetimeEstimate e = lifetime_from_throughput(curve, ampere_hours(35.0), 0.5,
                                                      ampere_hours(17.5));
  // Budget = N(0.5)·0.5·35 Ah at 17.5 Ah/day = N(0.5) days ≈ 2143 days.
  EXPECT_NEAR(e.days, curve.cycles(0.5), 1.0);
}

TEST(Lifetime, ThroughputEstimatorIdleCapped) {
  const auto curve = battery::curve_for(battery::Manufacturer::Trojan);
  const LifetimeEstimate e =
      lifetime_from_throughput(curve, ampere_hours(35.0), 0.5, ampere_hours(0.0));
  EXPECT_DOUBLE_EQ(e.days, 20.0 * 365.0);
}

TEST(Lifetime, DeeperCyclingShortensThroughputLifetime) {
  const auto curve = battery::curve_for(battery::Manufacturer::UPG);
  const auto shallow =
      lifetime_from_throughput(curve, ampere_hours(35.0), 0.3, ampere_hours(10.0));
  const auto deep =
      lifetime_from_throughput(curve, ampere_hours(35.0), 0.9, ampere_hours(10.0));
  EXPECT_GT(shallow.days, deep.days);
}

TEST(Lifetime, RejectsBadInput) {
  EXPECT_THROW(extrapolate_lifetime(1.0, 1.1, 90.0), util::PreconditionError);
  EXPECT_THROW(extrapolate_lifetime(1.0, 0.9, 0.0), util::PreconditionError);
  EXPECT_THROW(extrapolate_lifetime(0.0, 0.0, 10.0), util::PreconditionError);
}

TEST(Cost, DepreciationInverseInLifetime) {
  const CostParams p;
  const double one_year = annual_battery_depreciation(p, 1.0).value();
  const double two_years = annual_battery_depreciation(p, 2.0).value();
  EXPECT_NEAR(one_year, 2.0 * two_years, 1e-9);
  EXPECT_NEAR(one_year, 90.0 * 12.0, 1e-9);
}

TEST(Cost, LongerLifeCutsCost) {
  const CostParams p;
  // The paper's 26% claim shape: +69% lifetime → 1 − 1/1.69 ≈ 41% lower
  // depreciation; even +35% lifetime cuts ≈ 26%.
  const double base = annual_battery_depreciation(p, 1.0).value();
  const double improved = annual_battery_depreciation(p, 1.35).value();
  EXPECT_NEAR(1.0 - improved / base, 0.26, 0.01);
}

TEST(Cost, ServerAnnualCost) {
  const CostParams p;
  EXPECT_NEAR(server_annual_cost(p).value(), 2000.0 / 5.0 + 150.0, 1e-9);
}

TEST(Cost, ExpansionScalesWithSavings) {
  const CostParams p;
  const double per_server = server_annual_cost(p).value();
  EXPECT_NEAR(servers_addable_at_constant_tco(p, dollars(per_server)), 1.0, 1e-12);
  EXPECT_NEAR(servers_addable_at_constant_tco(p, dollars(2.5 * per_server)), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(servers_addable_at_constant_tco(p, dollars(0.0)), 0.0);
}

TEST(Cost, RejectsBadInput) {
  const CostParams p;
  EXPECT_THROW(annual_battery_depreciation(p, 0.0), util::PreconditionError);
  EXPECT_THROW(servers_addable_at_constant_tco(p, dollars(-1.0)),
               util::PreconditionError);
}

}  // namespace
}  // namespace baat::core
