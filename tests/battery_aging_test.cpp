#include <gtest/gtest.h>

#include "battery/aging.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::amperes;
using util::ampere_hours;
using util::celsius;
using util::days;
using util::hours;
using util::minutes;
using util::volts;

AgingModel fresh_model() {
  return AgingModel{AgingParams{}, ampere_hours(35.0), 6};
}

OperatingPoint op_at(double soc, double amps, double temp_c = 25.0) {
  OperatingPoint op;
  op.soc = soc;
  op.current = amperes(amps);
  op.terminal_voltage = volts(12.3);
  op.temperature = celsius(temp_c);
  return op;
}

TEST(Aging, FreshModelIsHealthy) {
  AgingModel m = fresh_model();
  EXPECT_DOUBLE_EQ(m.capacity_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(m.resistance_factor(), 1.0);
  EXPECT_FALSE(m.end_of_life());
  EXPECT_DOUBLE_EQ(m.state().total(), 0.0);
}

TEST(Aging, SheddingGrowsWithThroughput) {
  AgingModel a = fresh_model();
  AgingModel b = fresh_model();
  for (int i = 0; i < 600; ++i) {
    a.step(op_at(0.7, 5.0), minutes(1.0));
    b.step(op_at(0.7, 10.0), minutes(1.0));
  }
  EXPECT_GT(a.state().shedding, 0.0);
  // Twice the current → about twice the Ah → about twice the shedding.
  EXPECT_NEAR(b.state().shedding / a.state().shedding, 2.0, 0.01);
}

TEST(Aging, SheddingWorseAtLowSoc) {
  AgingModel high = fresh_model();
  AgingModel low = fresh_model();
  for (int i = 0; i < 600; ++i) {
    high.step(op_at(0.9, 5.0), minutes(1.0));
    low.step(op_at(0.1, 5.0), minutes(1.0));
  }
  EXPECT_GT(low.state().shedding, 2.0 * high.state().shedding);
}

TEST(Aging, ChargingShedsLessThanDischarging) {
  AgingModel dis = fresh_model();
  AgingModel chg = fresh_model();
  for (int i = 0; i < 600; ++i) {
    dis.step(op_at(0.7, 5.0), minutes(1.0));
    chg.step(op_at(0.7, -5.0), minutes(1.0));
  }
  EXPECT_LT(chg.state().shedding, 0.5 * dis.state().shedding);
}

TEST(Aging, SulphationOnlyBelowKnee) {
  AgingModel above = fresh_model();
  AgingModel below = fresh_model();
  for (int i = 0; i < 24 * 60; ++i) {
    above.step(op_at(0.5, 0.0), minutes(1.0));
    below.step(op_at(0.2, 0.0), minutes(1.0));
  }
  EXPECT_DOUBLE_EQ(above.state().sulphation, 0.0);
  EXPECT_GT(below.state().sulphation, 0.0);
}

TEST(Aging, SulphationDeeperIsWorse) {
  AgingModel shallow = fresh_model();
  AgingModel deep = fresh_model();
  for (int i = 0; i < 24 * 60; ++i) {
    shallow.step(op_at(0.35, 0.0), minutes(1.0));
    deep.step(op_at(0.05, 0.0), minutes(1.0));
  }
  EXPECT_GT(deep.state().sulphation, 3.0 * shallow.state().sulphation);
}

TEST(Aging, SulphationAcceleratesWithoutFullCharge) {
  AgingModel fresh_charge = fresh_model();
  AgingModel stale = fresh_model();
  OperatingPoint op = op_at(0.2, 0.0);
  OperatingPoint op_stale = op;
  op_stale.time_since_full_charge = days(30.0);
  for (int i = 0; i < 24 * 60; ++i) {
    fresh_charge.step(op, minutes(1.0));
    stale.step(op_stale, minutes(1.0));
  }
  EXPECT_GT(stale.state().sulphation, 1.5 * fresh_charge.state().sulphation);
}

TEST(Aging, TemperatureAcceleratesAging) {
  AgingModel cool = fresh_model();
  AgingModel hot = fresh_model();
  for (int i = 0; i < 24 * 60; ++i) {
    cool.step(op_at(0.2, 5.0, 20.0), minutes(1.0));
    hot.step(op_at(0.2, 5.0, 30.0), minutes(1.0));
  }
  // +10 °C doubles the rates (the paper's rule of thumb, §III-E).
  EXPECT_NEAR(hot.state().shedding / cool.state().shedding, 2.0, 0.01);
  EXPECT_NEAR(hot.state().sulphation / cool.state().sulphation, 2.0, 0.01);
}

TEST(Aging, CorrosionIsCalendarDriven) {
  AgingModel m = fresh_model();
  OperatingPoint rest = op_at(1.0, 0.0, 20.0);
  rest.terminal_voltage = volts(12.7);
  m.step(rest, days(365.0));
  EXPECT_GT(m.state().corrosion, 0.0);
  // One idle year at 20 °C should consume only a modest slice of life.
  EXPECT_LT(m.state().corrosion, 0.08);
}

TEST(Aging, OverchargeVoltageAcceleratesCorrosion) {
  AgingModel normal = fresh_model();
  AgingModel over = fresh_model();
  OperatingPoint chg = op_at(0.9, -3.0);
  chg.terminal_voltage = volts(13.2);  // 2.2 V/cell, below knee
  OperatingPoint hot_chg = op_at(0.9, -3.0);
  hot_chg.terminal_voltage = volts(14.4);  // 2.4 V/cell, well above knee
  for (int i = 0; i < 24 * 60; ++i) {
    normal.step(chg, minutes(1.0));
    over.step(hot_chg, minutes(1.0));
  }
  EXPECT_GT(over.state().corrosion, 1.5 * normal.state().corrosion);
}

TEST(Aging, WaterLossOnlyWhenGassing) {
  AgingModel quiet = fresh_model();
  AgingModel gassing = fresh_model();
  OperatingPoint mild = op_at(0.9, -3.0);
  mild.terminal_voltage = volts(13.0);
  OperatingPoint hard = op_at(0.95, -3.0);
  hard.terminal_voltage = volts(14.4);
  for (int i = 0; i < 600; ++i) {
    quiet.step(mild, minutes(1.0));
    gassing.step(hard, minutes(1.0));
  }
  EXPECT_DOUBLE_EQ(quiet.state().water_loss, 0.0);
  EXPECT_GT(gassing.state().water_loss, 0.0);
}

TEST(Aging, StratificationBuildsAndHeals) {
  AgingModel m = fresh_model();
  for (int i = 0; i < 7 * 24 * 60; ++i) {
    m.step(op_at(0.3, 1.0), minutes(1.0));  // deep, trickle current
  }
  const double before = m.state().stratification;
  EXPECT_GT(before, 0.0);
  m.on_full_charge();
  EXPECT_NEAR(m.state().stratification,
              before * AgingParams{}.stratification_heal_factor, 1e-12);
}

TEST(Aging, StratificationSaturates) {
  AgingParams p;
  AgingModel m{p, ampere_hours(35.0), 6};
  for (int i = 0; i < 365 * 24 * 6; ++i) {
    m.step(op_at(0.3, 1.0), minutes(10.0));
  }
  EXPECT_LE(m.state().stratification, p.stratification_cap + 1e-12);
}

TEST(Aging, StratificationNotAtHighCurrent) {
  AgingModel m = fresh_model();
  for (int i = 0; i < 24 * 60; ++i) {
    m.step(op_at(0.3, 20.0), minutes(1.0));  // heavy current stirs the acid
  }
  EXPECT_DOUBLE_EQ(m.state().stratification, 0.0);
}

TEST(Aging, EndOfLifeAtEightyPercent) {
  AgingModel m = fresh_model();
  AgingState s;
  s.shedding = 0.15;
  m.set_state(s);
  EXPECT_FALSE(m.end_of_life());
  s.shedding = 0.21;
  m.set_state(s);
  EXPECT_TRUE(m.end_of_life());
}

TEST(Aging, ResistanceGrowsWithDamage) {
  AgingModel m = fresh_model();
  AgingState s;
  s.corrosion = 0.02;
  s.sulphation = 0.03;
  s.shedding = 0.05;
  m.set_state(s);
  EXPECT_GT(m.resistance_factor(), 1.3);
}

TEST(Aging, ObservableCouplingsScaleWithFade) {
  AgingModel m = fresh_model();
  EXPECT_DOUBLE_EQ(m.ocv_sag_per_cell().value(), 0.0);
  EXPECT_DOUBLE_EQ(m.coulombic_derating(), 1.0);
  AgingState s;
  s.shedding = 0.10;
  m.set_state(s);
  EXPECT_GT(m.ocv_sag_per_cell().value(), 0.0);
  EXPECT_LT(m.coulombic_derating(), 1.0);
  EXPECT_GE(m.coulombic_derating(), 0.6);
}

TEST(Aging, RejectsBadInput) {
  AgingModel m = fresh_model();
  EXPECT_THROW(m.step(op_at(1.5, 0.0), minutes(1.0)), util::PreconditionError);
  EXPECT_THROW(m.step(op_at(0.5, 0.0), util::seconds(0.0)), util::PreconditionError);
  EXPECT_THROW(AgingModel(AgingParams{}, ampere_hours(0.0), 6), util::PreconditionError);
  EXPECT_THROW(AgingModel(AgingParams{}, ampere_hours(35.0), 0), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
