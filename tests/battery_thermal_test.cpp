#include <gtest/gtest.h>

#include "battery/thermal.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::celsius;
using util::minutes;
using util::seconds;
using util::watts;

TEST(Thermal, StartsAtAmbient) {
  ThermalModel m{ThermalParams{}};
  EXPECT_DOUBLE_EQ(m.temperature().value(), 25.0);
}

TEST(Thermal, HeatsTowardSteadyState) {
  ThermalParams p;
  ThermalModel m{p};
  const double t_inf = m.steady_state(watts(10.0)).value();
  EXPECT_DOUBLE_EQ(t_inf, 25.0 + 10.0 * p.thermal_resistance_k_per_w);
  for (int i = 0; i < 10000; ++i) m.step(watts(10.0), minutes(1.0));
  EXPECT_NEAR(m.temperature().value(), t_inf, 1e-6);
}

TEST(Thermal, MonotoneApproachNoOvershoot) {
  ThermalModel m{ThermalParams{}};
  double prev = m.temperature().value();
  const double t_inf = m.steady_state(watts(20.0)).value();
  for (int i = 0; i < 200; ++i) {
    m.step(watts(20.0), minutes(1.0));
    EXPECT_GE(m.temperature().value(), prev);
    EXPECT_LE(m.temperature().value(), t_inf + 1e-9);
    prev = m.temperature().value();
  }
}

TEST(Thermal, CoolsBackToAmbient) {
  ThermalModel m{ThermalParams{}};
  for (int i = 0; i < 500; ++i) m.step(watts(20.0), minutes(1.0));
  EXPECT_GT(m.temperature().value(), 26.0);
  for (int i = 0; i < 20000; ++i) m.step(watts(0.0), minutes(1.0));
  EXPECT_NEAR(m.temperature().value(), 25.0, 1e-6);
}

TEST(Thermal, LargeStepIsStable) {
  // The exponential update must not oscillate even with dt >> tau.
  ThermalModel m{ThermalParams{}};
  m.step(watts(10.0), util::hours(100.0));
  EXPECT_NEAR(m.temperature().value(), m.steady_state(watts(10.0)).value(), 1e-9);
}

TEST(Thermal, AmbientTracking) {
  ThermalModel m{ThermalParams{}};
  m.set_ambient(celsius(35.0));
  for (int i = 0; i < 20000; ++i) m.step(watts(0.0), minutes(1.0));
  EXPECT_NEAR(m.temperature().value(), 35.0, 1e-6);
}

TEST(Thermal, RejectsBadInput) {
  ThermalModel m{ThermalParams{}};
  EXPECT_THROW(m.step(watts(-1.0), seconds(1.0)), util::PreconditionError);
  EXPECT_THROW(m.step(watts(1.0), seconds(0.0)), util::PreconditionError);
  ThermalParams bad;
  bad.heat_capacity_j_per_k = 0.0;
  EXPECT_THROW(ThermalModel{bad}, util::PreconditionError);
}

TEST(Thermal, ArrheniusRule) {
  // The paper's rule: +10 °C halves lifetime, i.e. doubles the aging rate.
  EXPECT_DOUBLE_EQ(arrhenius_factor(celsius(20.0)), 1.0);
  EXPECT_DOUBLE_EQ(arrhenius_factor(celsius(30.0)), 2.0);
  EXPECT_DOUBLE_EQ(arrhenius_factor(celsius(40.0)), 4.0);
  EXPECT_DOUBLE_EQ(arrhenius_factor(celsius(10.0)), 0.5);
}

}  // namespace
}  // namespace baat::battery
