#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"
#include "workload/trace_replay.hpp"

namespace baat::workload {
namespace {

using util::minutes;
using util::seconds;

UtilizationTrace small() {
  return UtilizationTrace{minutes(1.0), {0.2, 0.8, 0.5}};
}

TEST(TraceReplay, ZeroOrderHoldLookup) {
  const UtilizationTrace t = small();
  EXPECT_DOUBLE_EQ(t.at(seconds(0.0)), 0.2);
  EXPECT_DOUBLE_EQ(t.at(seconds(59.0)), 0.2);
  EXPECT_DOUBLE_EQ(t.at(seconds(60.0)), 0.8);
  EXPECT_DOUBLE_EQ(t.at(seconds(179.0)), 0.5);
}

TEST(TraceReplay, FiniteVsServiceSemantics) {
  const UtilizationTrace t = small();
  EXPECT_DOUBLE_EQ(t.at(minutes(10.0), /*finite=*/true), 0.0);   // batch ended
  EXPECT_DOUBLE_EQ(t.at(minutes(10.0), /*finite=*/false), 0.5);  // service holds
}

TEST(TraceReplay, Statistics) {
  const UtilizationTrace t = small();
  EXPECT_NEAR(t.mean(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(t.peak(), 0.8);
  EXPECT_DOUBLE_EQ(t.duration().value(), 180.0);
}

TEST(TraceReplay, CsvRoundTrip) {
  const std::vector<UtilizationTrace> traces{
      UtilizationTrace{minutes(1.0), {0.1, 0.2, 0.3}},
      UtilizationTrace{minutes(1.0), {0.9, 0.8, 0.7}},
  };
  std::stringstream buffer;
  write_utilization_csv(buffer, traces);
  const auto back = read_utilization_csv(buffer);
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t v = 0; v < 2; ++v) {
    ASSERT_EQ(back[v].samples().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(back[v].samples()[i], traces[v].samples()[i]);
    }
  }
}

TEST(TraceReplay, ReadRejectsMalformed) {
  {
    std::stringstream in{"seconds,vm0\n60,0.5\n120,0.6\n"};  // not from 0
    EXPECT_THROW(read_utilization_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"seconds,vm0\n0,0.5\n60,0.6\n180,0.7\n"};  // uneven
    EXPECT_THROW(read_utilization_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"seconds,vm0,vm1\n0,0.5\n60,0.6\n"};  // short row
    EXPECT_THROW(read_utilization_csv(in), util::PreconditionError);
  }
  {
    std::stringstream in{"seconds\n0\n60\n"};  // no VM columns
    EXPECT_THROW(read_utilization_csv(in), util::PreconditionError);
  }
}

TEST(TraceReplay, RejectsBadConstruction) {
  EXPECT_THROW(UtilizationTrace(seconds(0.0), {0.5}), util::PreconditionError);
  EXPECT_THROW(UtilizationTrace(minutes(1.0), {}), util::PreconditionError);
  EXPECT_THROW(UtilizationTrace(minutes(1.0), {1.5}), util::PreconditionError);
  const UtilizationTrace t = small();
  EXPECT_THROW(t.at(seconds(-1.0)), util::PreconditionError);
}

TEST(TraceReplay, WriteRejectsMismatchedTraces) {
  const std::vector<UtilizationTrace> mixed{
      UtilizationTrace{minutes(1.0), {0.1, 0.2}},
      UtilizationTrace{minutes(5.0), {0.9, 0.8}},
  };
  std::stringstream buffer;
  EXPECT_THROW(write_utilization_csv(buffer, mixed), util::PreconditionError);
}

}  // namespace
}  // namespace baat::workload
